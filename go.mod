module htap

go 1.22
