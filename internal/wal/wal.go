// Package wal implements a write-ahead log with group commit.
//
// Every TP technique in the paper's Table 2 pairs its concurrency control
// with "logging": MVCC+logging for the single-node engines and
// 2PC+Raft+logging for TiDB-style engines. This log is that substrate: DML
// operations append redo records; commit appends a commit record and flushes
// the accumulated buffer to the (simulated) device in a single write, which
// is the classic group-commit amortization. Replay rebuilds state after a
// simulated restart.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"sync"
	"time"

	"htap/internal/disk"
	"htap/internal/obs"
	"htap/internal/types"
)

// RecType enumerates log record kinds.
type RecType uint8

// Log record kinds.
const (
	RecInsert RecType = iota + 1
	RecUpdate
	RecDelete
	RecCommit
	RecAbort
)

// String implements fmt.Stringer.
func (t RecType) String() string {
	switch t {
	case RecInsert:
		return "INSERT"
	case RecUpdate:
		return "UPDATE"
	case RecDelete:
		return "DELETE"
	case RecCommit:
		return "COMMIT"
	case RecAbort:
		return "ABORT"
	default:
		return fmt.Sprintf("RecType(%d)", uint8(t))
	}
}

// Record is one redo log entry. Row is nil for DELETE/COMMIT/ABORT.
type Record struct {
	LSN   uint64
	Txn   uint64
	Type  RecType
	Table uint32
	Key   int64
	Row   types.Row
}

// Log is an append-only redo log. Records accumulate in an in-memory buffer
// and reach the device when Flush (or an auto-flush on commit) runs.
type Log struct {
	mu      sync.Mutex
	dev     *disk.Device
	name    string
	nextLSN uint64
	buf     []byte
	flushes int64
	records int64
	// failed is the sticky error after a torn flush: the device may hold a
	// partial record, so further appends could never be distinguished from
	// garbage. Only recovery (a new Log over the revived device) clears it.
	failed error
	// FlushOnCommit controls group commit: when true (default), appending a
	// COMMIT record flushes the buffer, making the transaction durable.
	FlushOnCommit bool

	// Observability (htap_wal_*, labeled by log name). Handles are resolved
	// once at New; the hot path pays only atomic adds.
	mRecords    *obs.Counter
	mAppendLat  *obs.Histogram
	mFlushLat   *obs.Histogram
	mFlushed    *obs.Counter
	mBytes      *obs.Counter
	mPoisonings *obs.Counter
}

// New returns a log writing to the named file on dev.
func New(dev *disk.Device, name string) *Log {
	l := obs.L("log", name)
	return &Log{
		dev: dev, name: name, nextLSN: 1, FlushOnCommit: true,
		mRecords:    obs.Default.Counter("htap_wal_records_total", l),
		mAppendLat:  obs.Default.Histogram("htap_wal_append_duration_ns", l),
		mFlushLat:   obs.Default.Histogram("htap_wal_flush_duration_ns", l),
		mFlushed:    obs.Default.Counter("htap_wal_flushes_total", l),
		mBytes:      obs.Default.Counter("htap_wal_flushed_bytes_total", l),
		mPoisonings: obs.Default.Counter("htap_wal_poisonings_total", l),
	}
}

// encode: uint32 length | uint32 crc | payload
// payload: uvarint lsn | uvarint txn | type byte | uvarint table | varint key | row? (present for insert/update)

// Append encodes rec, assigns it the next LSN, and buffers it. It returns
// the assigned LSN. COMMIT records trigger a flush when FlushOnCommit is
// set; if that flush fails, the COMMIT record is rolled back out of the
// buffer (so a later flush cannot make the aborted transaction durable) and
// the error is returned — the caller must treat the transaction as aborted.
func (l *Log) Append(rec Record) (uint64, error) {
	appendStart := time.Now()
	defer func() { l.mAppendLat.Since(appendStart) }()
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.failed != nil {
		return 0, l.failed
	}
	rec.LSN = l.nextLSN
	l.nextLSN++
	payload := make([]byte, 0, 64)
	payload = binary.AppendUvarint(payload, rec.LSN)
	payload = binary.AppendUvarint(payload, rec.Txn)
	payload = append(payload, byte(rec.Type))
	payload = binary.AppendUvarint(payload, uint64(rec.Table))
	payload = binary.AppendVarint(payload, rec.Key)
	if rec.Type == RecInsert || rec.Type == RecUpdate {
		payload = types.AppendRow(payload, rec.Row)
	}
	var hdr [8]byte
	binary.BigEndian.PutUint32(hdr[:4], uint32(len(payload)))
	binary.BigEndian.PutUint32(hdr[4:], crc32.ChecksumIEEE(payload))
	start := len(l.buf)
	l.buf = append(l.buf, hdr[:]...)
	l.buf = append(l.buf, payload...)
	l.records++
	if rec.Type == RecCommit && l.FlushOnCommit {
		if err := l.flushLocked(); err != nil {
			// The commit never became durable: un-buffer its record and
			// release the LSN (nothing with this LSN ever reached the
			// device).
			l.buf = l.buf[:start]
			l.records--
			l.nextLSN--
			return 0, err
		}
	}
	l.mRecords.Inc()
	return rec.LSN, nil
}

// DiscardTornTail cuts n trailing bytes off the durable log file. Recovery
// calls it with ReplayResult.DiscardedBytes after a torn-tail replay:
// appending new records after a partial one would make them unreachable to
// every future replay, so the tear must be amputated first.
func (l *Log) DiscardTornTail(n int64) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if n <= 0 {
		return nil
	}
	return l.dev.TruncateTo(l.name, l.dev.Size(l.name)-n)
}

// SetNextLSN raises the next LSN to assign; recovery calls it with one past
// the highest replayed LSN so post-recovery appends extend the history
// instead of reusing LSNs.
func (l *Log) SetNextLSN(lsn uint64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if lsn > l.nextLSN {
		l.nextLSN = lsn
	}
}

// Flush writes all buffered records to the device.
func (l *Log) Flush() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.flushLocked()
}

func (l *Log) flushLocked() error {
	if l.failed != nil {
		return l.failed
	}
	if len(l.buf) == 0 {
		return nil
	}
	n := len(l.buf)
	start := time.Now()
	if _, err := l.dev.Append(l.name, l.buf); err != nil {
		if errors.Is(err, disk.ErrInjected) {
			// Clean failure: nothing reached the device, the buffer is
			// intact, and a later flush may succeed.
			return err
		}
		// Torn or crashed: an unknown prefix of the buffer is on the
		// device. Re-flushing would append records after a partial one,
		// making them unreachable to replay — poison the log instead.
		l.failed = fmt.Errorf("wal: log failed: %w", err)
		l.mPoisonings.Inc()
		return l.failed
	}
	l.mFlushLat.Since(start)
	l.mFlushed.Inc()
	l.mBytes.Add(int64(n))
	l.buf = l.buf[:0]
	l.flushes++
	return nil
}

// Stats reports log activity.
type Stats struct {
	Records int64
	Flushes int64
	NextLSN uint64
}

// Stats returns a snapshot of counters.
func (l *Log) Stats() Stats {
	l.mu.Lock()
	defer l.mu.Unlock()
	return Stats{Records: l.records, Flushes: l.flushes, NextLSN: l.nextLSN}
}

// ReplayResult summarizes one Replay pass.
type ReplayResult struct {
	Records        int    // complete records delivered to fn
	MaxLSN         uint64 // highest LSN replayed (0 when the log is empty)
	DiscardedBytes int64  // torn-tail bytes dropped after the last good record
}

// Replay reads the durable portion of the log from the device and calls fn
// for each record in LSN order. Buffered-but-unflushed records are lost,
// exactly as a crash would lose them.
//
// A torn tail — a record whose header or payload is cut short, or whose
// checksum fails — ends the replay (ARIES-style): everything before it is
// recovered, the tail is discarded and reported via DiscardedBytes, and no
// error is returned. A crash tears at most the final flush, so the first
// bad record provably marks the end of durable history.
func (l *Log) Replay(fn func(Record) error) (ReplayResult, error) {
	var res ReplayResult
	size := l.dev.Size(l.name)
	if size == 0 {
		return res, nil
	}
	data := make([]byte, size)
	if err := l.dev.ReadAt(l.name, data, 0); err != nil {
		return res, err
	}
	pos := 0
	for pos+8 <= len(data) {
		length := int(binary.BigEndian.Uint32(data[pos : pos+4]))
		sum := binary.BigEndian.Uint32(data[pos+4 : pos+8])
		if pos+8+length > len(data) {
			break // record cut short mid-payload
		}
		payload := data[pos+8 : pos+8+length]
		if crc32.ChecksumIEEE(payload) != sum {
			break // record torn inside a sector (or corrupted)
		}
		rec, err := decodePayload(payload)
		if err != nil {
			// The checksum passed but the payload is malformed: this is
			// not a torn tail, it is an encoding bug. Fail loudly.
			return res, fmt.Errorf("wal: record at %d: %w", pos, err)
		}
		pos += 8 + length
		if err := fn(rec); err != nil {
			return res, err
		}
		res.Records++
		if rec.LSN > res.MaxLSN {
			res.MaxLSN = rec.LSN
		}
	}
	res.DiscardedBytes = int64(len(data) - pos)
	return res, nil
}

func decodePayload(p []byte) (Record, error) {
	var rec Record
	lsn, n := binary.Uvarint(p)
	if n <= 0 {
		return rec, fmt.Errorf("wal: bad lsn")
	}
	p = p[n:]
	txn, n := binary.Uvarint(p)
	if n <= 0 {
		return rec, fmt.Errorf("wal: bad txn")
	}
	p = p[n:]
	if len(p) == 0 {
		return rec, fmt.Errorf("wal: missing type")
	}
	typ := RecType(p[0])
	p = p[1:]
	table, n := binary.Uvarint(p)
	if n <= 0 {
		return rec, fmt.Errorf("wal: bad table")
	}
	p = p[n:]
	key, n := binary.Varint(p)
	if n <= 0 {
		return rec, fmt.Errorf("wal: bad key")
	}
	p = p[n:]
	rec = Record{LSN: lsn, Txn: txn, Type: typ, Table: uint32(table), Key: key}
	if typ == RecInsert || typ == RecUpdate {
		row, _, err := types.DecodeRow(p)
		if err != nil {
			return rec, err
		}
		rec.Row = row
	}
	return rec, nil
}
