package wal

import (
	"testing"

	"htap/internal/disk"
	"htap/internal/types"
)

func row(vals ...int64) types.Row {
	r := make(types.Row, len(vals))
	for i, v := range vals {
		r[i] = types.NewInt(v)
	}
	return r
}

func TestAppendReplayRoundTrip(t *testing.T) {
	dev := disk.New(disk.MemConfig())
	l := New(dev, "wal")
	recs := []Record{
		{Txn: 1, Type: RecInsert, Table: 2, Key: 10, Row: row(10, 20)},
		{Txn: 1, Type: RecUpdate, Table: 2, Key: 10, Row: row(10, 30)},
		{Txn: 1, Type: RecDelete, Table: 3, Key: 11},
		{Txn: 1, Type: RecCommit},
	}
	for i, r := range recs {
		lsn, err := l.Append(r)
		if err != nil {
			t.Fatal(err)
		}
		if lsn != uint64(i+1) {
			t.Fatalf("lsn = %d, want %d", lsn, i+1)
		}
	}
	var got []Record
	if err := l.Replay(func(r Record) error { got = append(got, r); return nil }); err != nil {
		t.Fatal(err)
	}
	if len(got) != len(recs) {
		t.Fatalf("replayed %d records, want %d", len(got), len(recs))
	}
	for i, r := range got {
		want := recs[i]
		if r.LSN != uint64(i+1) || r.Txn != want.Txn || r.Type != want.Type ||
			r.Table != want.Table || r.Key != want.Key {
			t.Fatalf("record %d = %+v, want %+v", i, r, want)
		}
		if want.Row != nil {
			if len(r.Row) != len(want.Row) || !r.Row[1].Equal(want.Row[1]) {
				t.Fatalf("record %d row = %v, want %v", i, r.Row, want.Row)
			}
		}
	}
}

func TestGroupCommitFlushesOnce(t *testing.T) {
	dev := disk.New(disk.MemConfig())
	l := New(dev, "wal")
	for i := 0; i < 10; i++ {
		l.Append(Record{Txn: 1, Type: RecInsert, Table: 1, Key: int64(i), Row: row(int64(i))})
	}
	if dev.Stats().WriteOps != 0 {
		t.Fatal("DML records should stay buffered before commit")
	}
	l.Append(Record{Txn: 1, Type: RecCommit})
	st := l.Stats()
	if st.Flushes != 1 {
		t.Fatalf("flushes = %d, want 1 (group commit)", st.Flushes)
	}
	if dev.Stats().WriteOps == 0 {
		t.Fatal("commit should reach the device")
	}
}

func TestUnflushedRecordsLostOnReplay(t *testing.T) {
	dev := disk.New(disk.MemConfig())
	l := New(dev, "wal")
	l.Append(Record{Txn: 1, Type: RecInsert, Table: 1, Key: 1, Row: row(1)})
	l.Append(Record{Txn: 1, Type: RecCommit}) // durable
	l.Append(Record{Txn: 2, Type: RecInsert, Table: 1, Key: 2, Row: row(2)})
	// Txn 2 never commits and never flushes: a crash here loses it.
	n := 0
	if err := l.Replay(func(r Record) error { n++; return nil }); err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Fatalf("replayed %d records, want 2 (txn 2 lost)", n)
	}
}

func TestExplicitFlush(t *testing.T) {
	dev := disk.New(disk.MemConfig())
	l := New(dev, "wal")
	l.FlushOnCommit = false
	l.Append(Record{Txn: 1, Type: RecCommit})
	if dev.Stats().WriteOps != 0 {
		t.Fatal("FlushOnCommit=false must not flush")
	}
	if err := l.Flush(); err != nil {
		t.Fatal(err)
	}
	n := 0
	l.Replay(func(r Record) error { n++; return nil })
	if n != 1 {
		t.Fatalf("replayed %d, want 1", n)
	}
	// Flushing an empty buffer is a no-op.
	before := dev.Stats().WriteOps
	l.Flush()
	if dev.Stats().WriteOps != before {
		t.Fatal("empty flush should not touch device")
	}
}

func TestReplayDetectsCorruption(t *testing.T) {
	dev := disk.New(disk.MemConfig())
	l := New(dev, "wal")
	l.Append(Record{Txn: 1, Type: RecCommit})
	// Corrupt a payload byte on the device.
	size := dev.Size("wal")
	buf := make([]byte, size)
	dev.ReadAt("wal", buf, 0)
	buf[len(buf)-1] ^= 0xff
	dev.Truncate("wal")
	dev.Append("wal", buf)
	if err := l.Replay(func(Record) error { return nil }); err == nil {
		t.Fatal("corrupted log replayed without error")
	}
}

func TestRowCodecStrings(t *testing.T) {
	r := types.Row{types.NewInt(-5), types.NewString("héllo"), types.NewFloat(2.25), types.Null}
	enc := types.AppendRow(nil, r)
	dec, n, err := types.DecodeRow(enc)
	if err != nil || n != len(enc) {
		t.Fatalf("decode: n=%d err=%v", n, err)
	}
	for i := range r {
		if !dec[i].Equal(r[i]) && !(r[i].IsNull() && dec[i].IsNull()) {
			t.Fatalf("col %d: got %v want %v", i, dec[i], r[i])
		}
	}
}
