package wal

import (
	"testing"

	"htap/internal/disk"
	"htap/internal/types"
)

func row(vals ...int64) types.Row {
	r := make(types.Row, len(vals))
	for i, v := range vals {
		r[i] = types.NewInt(v)
	}
	return r
}

func TestAppendReplayRoundTrip(t *testing.T) {
	dev := disk.New(disk.MemConfig())
	l := New(dev, "wal")
	recs := []Record{
		{Txn: 1, Type: RecInsert, Table: 2, Key: 10, Row: row(10, 20)},
		{Txn: 1, Type: RecUpdate, Table: 2, Key: 10, Row: row(10, 30)},
		{Txn: 1, Type: RecDelete, Table: 3, Key: 11},
		{Txn: 1, Type: RecCommit},
	}
	for i, r := range recs {
		lsn, err := l.Append(r)
		if err != nil {
			t.Fatal(err)
		}
		if lsn != uint64(i+1) {
			t.Fatalf("lsn = %d, want %d", lsn, i+1)
		}
	}
	var got []Record
	res, err := l.Replay(func(r Record) error { got = append(got, r); return nil })
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(recs) {
		t.Fatalf("replayed %d records, want %d", len(got), len(recs))
	}
	if res.Records != len(recs) || res.MaxLSN != uint64(len(recs)) || res.DiscardedBytes != 0 {
		t.Fatalf("replay result = %+v", res)
	}
	for i, r := range got {
		want := recs[i]
		if r.LSN != uint64(i+1) || r.Txn != want.Txn || r.Type != want.Type ||
			r.Table != want.Table || r.Key != want.Key {
			t.Fatalf("record %d = %+v, want %+v", i, r, want)
		}
		if want.Row != nil {
			if len(r.Row) != len(want.Row) || !r.Row[1].Equal(want.Row[1]) {
				t.Fatalf("record %d row = %v, want %v", i, r.Row, want.Row)
			}
		}
	}
}

func TestGroupCommitFlushesOnce(t *testing.T) {
	dev := disk.New(disk.MemConfig())
	l := New(dev, "wal")
	for i := 0; i < 10; i++ {
		l.Append(Record{Txn: 1, Type: RecInsert, Table: 1, Key: int64(i), Row: row(int64(i))})
	}
	if dev.Stats().WriteOps != 0 {
		t.Fatal("DML records should stay buffered before commit")
	}
	l.Append(Record{Txn: 1, Type: RecCommit})
	st := l.Stats()
	if st.Flushes != 1 {
		t.Fatalf("flushes = %d, want 1 (group commit)", st.Flushes)
	}
	if dev.Stats().WriteOps == 0 {
		t.Fatal("commit should reach the device")
	}
}

func TestUnflushedRecordsLostOnReplay(t *testing.T) {
	dev := disk.New(disk.MemConfig())
	l := New(dev, "wal")
	l.Append(Record{Txn: 1, Type: RecInsert, Table: 1, Key: 1, Row: row(1)})
	l.Append(Record{Txn: 1, Type: RecCommit}) // durable
	l.Append(Record{Txn: 2, Type: RecInsert, Table: 1, Key: 2, Row: row(2)})
	// Txn 2 never commits and never flushes: a crash here loses it.
	n := 0
	if _, err := l.Replay(func(r Record) error { n++; return nil }); err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Fatalf("replayed %d records, want 2 (txn 2 lost)", n)
	}
}

func TestExplicitFlush(t *testing.T) {
	dev := disk.New(disk.MemConfig())
	l := New(dev, "wal")
	l.FlushOnCommit = false
	l.Append(Record{Txn: 1, Type: RecCommit})
	if dev.Stats().WriteOps != 0 {
		t.Fatal("FlushOnCommit=false must not flush")
	}
	if err := l.Flush(); err != nil {
		t.Fatal(err)
	}
	n := 0
	l.Replay(func(r Record) error { n++; return nil })
	if n != 1 {
		t.Fatalf("replayed %d, want 1", n)
	}
	// Flushing an empty buffer is a no-op.
	before := dev.Stats().WriteOps
	l.Flush()
	if dev.Stats().WriteOps != before {
		t.Fatal("empty flush should not touch device")
	}
}

func TestReplayStopsAtCorruptedTail(t *testing.T) {
	dev := disk.New(disk.MemConfig())
	l := New(dev, "wal")
	l.Append(Record{Txn: 1, Type: RecInsert, Table: 1, Key: 1, Row: row(1)})
	l.Append(Record{Txn: 1, Type: RecCommit})
	intact := dev.Size("wal")
	l.Append(Record{Txn: 2, Type: RecInsert, Table: 1, Key: 2, Row: row(2)})
	l.Append(Record{Txn: 2, Type: RecCommit})
	// Corrupt a byte inside the final commit record: the durable prefix
	// (txn 1) must replay, the tail (txn 2) must be discarded.
	size := dev.Size("wal")
	buf := make([]byte, size)
	dev.ReadAt("wal", buf, 0)
	buf[len(buf)-1] ^= 0xff
	dev.Truncate("wal")
	dev.Append("wal", buf)
	n := 0
	res, err := l.Replay(func(Record) error { n++; return nil })
	if err != nil {
		t.Fatalf("torn-tail replay errored: %v", err)
	}
	if n != 3 {
		t.Fatalf("replayed %d records, want 3 (txn 2's commit discarded)", n)
	}
	if res.DiscardedBytes == 0 || res.DiscardedBytes > size-intact {
		t.Fatalf("discarded %d bytes, want in (0, %d]", res.DiscardedBytes, size-intact)
	}
}

func TestReplayStopsAtTruncatedTail(t *testing.T) {
	dev := disk.New(disk.MemConfig())
	l := New(dev, "wal")
	l.Append(Record{Txn: 1, Type: RecInsert, Table: 1, Key: 1, Row: row(1)})
	l.Append(Record{Txn: 1, Type: RecCommit})
	intact := dev.Size("wal")
	l.Append(Record{Txn: 2, Type: RecInsert, Table: 1, Key: 2, Row: row(2)})
	l.Append(Record{Txn: 2, Type: RecCommit})
	// Tear the final flush mid-record, as a crash during the device write
	// would: keep the intact prefix plus a few bytes of txn 2.
	size := dev.Size("wal")
	buf := make([]byte, size)
	dev.ReadAt("wal", buf, 0)
	cut := intact + 5
	dev.Truncate("wal")
	dev.Append("wal", buf[:cut])
	n := 0
	maxTxn := uint64(0)
	res, err := l.Replay(func(r Record) error {
		n++
		if r.Txn > maxTxn {
			maxTxn = r.Txn
		}
		return nil
	})
	if err != nil {
		t.Fatalf("truncated-tail replay errored: %v", err)
	}
	if n != 2 || maxTxn != 1 {
		t.Fatalf("replayed %d records (max txn %d), want txn 1 only", n, maxTxn)
	}
	if res.DiscardedBytes != 5 {
		t.Fatalf("discarded %d bytes, want 5", res.DiscardedBytes)
	}
	if res.MaxLSN != 2 {
		t.Fatalf("max LSN = %d, want 2", res.MaxLSN)
	}
}

func TestCommitFlushErrorRollsBackCommitRecord(t *testing.T) {
	dev := disk.New(disk.MemConfig())
	l := New(dev, "wal")
	// Durable txn 1 first.
	l.Append(Record{Txn: 1, Type: RecInsert, Table: 1, Key: 1, Row: row(1)})
	if _, err := l.Append(Record{Txn: 1, Type: RecCommit}); err != nil {
		t.Fatal(err)
	}
	// Txn 2's commit flush fails cleanly (nothing persisted).
	l.Append(Record{Txn: 2, Type: RecInsert, Table: 1, Key: 2, Row: row(2)})
	dev.SetFaultPlan(&disk.FaultPlan{Seed: 1, Rules: []disk.FaultRule{{WriteErrRate: 1.0}}})
	if _, err := l.Append(Record{Txn: 2, Type: RecCommit}); err == nil {
		t.Fatal("commit flush should have failed")
	}
	dev.SetFaultPlan(nil)
	// Txn 3 commits after the fault clears; its flush must not smuggle txn
	// 2's rolled-back commit record to the device.
	l.Append(Record{Txn: 3, Type: RecInsert, Table: 1, Key: 3, Row: row(3)})
	if _, err := l.Append(Record{Txn: 3, Type: RecCommit}); err != nil {
		t.Fatal(err)
	}
	committed := map[uint64]bool{}
	if _, err := l.Replay(func(r Record) error {
		if r.Type == RecCommit {
			committed[r.Txn] = true
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if !committed[1] || committed[2] || !committed[3] {
		t.Fatalf("committed txns = %v, want {1, 3}", committed)
	}
}

func TestTornFlushPoisonsLog(t *testing.T) {
	dev := disk.New(disk.MemConfig())
	l := New(dev, "wal")
	l.Append(Record{Txn: 1, Type: RecInsert, Table: 1, Key: 1, Row: row(1)})
	dev.SetFaultPlan(&disk.FaultPlan{Seed: 9, Rules: []disk.FaultRule{{TornRate: 1.0}}})
	if _, err := l.Append(Record{Txn: 1, Type: RecCommit}); err == nil {
		t.Fatal("torn flush should fail the commit")
	}
	dev.SetFaultPlan(nil)
	// The device may now hold a partial record; the log must refuse further
	// work rather than append after garbage.
	if _, err := l.Append(Record{Txn: 2, Type: RecInsert, Table: 1, Key: 2, Row: row(2)}); err == nil {
		t.Fatal("poisoned log accepted an append")
	}
	if err := l.Flush(); err == nil {
		t.Fatal("poisoned log flushed")
	}
	// A fresh log over the same device sees at most torn fragments of the
	// never-acknowledged flush — and in no case its COMMIT record, which was
	// the last byte range of the torn write.
	commits := 0
	if _, err := New(dev, "wal").Replay(func(r Record) error {
		if r.Type == RecCommit {
			commits++
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if commits != 0 {
		t.Fatal("torn flush made the commit durable")
	}
}

func TestSetNextLSNResumesNumbering(t *testing.T) {
	dev := disk.New(disk.MemConfig())
	l := New(dev, "wal")
	l.Append(Record{Txn: 1, Type: RecInsert, Table: 1, Key: 1, Row: row(1)})
	l.Append(Record{Txn: 1, Type: RecCommit})
	// Restart: a fresh log would reuse LSN 1; SetNextLSN resumes after the
	// replayed history.
	l2 := New(dev, "wal")
	res, err := l2.Replay(func(Record) error { return nil })
	if err != nil {
		t.Fatal(err)
	}
	l2.SetNextLSN(res.MaxLSN + 1)
	lsn, err := l2.Append(Record{Txn: 2, Type: RecCommit})
	if err != nil {
		t.Fatal(err)
	}
	if lsn != 3 {
		t.Fatalf("post-recovery LSN = %d, want 3", lsn)
	}
	// SetNextLSN never lowers the counter.
	l2.SetNextLSN(1)
	if lsn, _ := l2.Append(Record{Txn: 3, Type: RecCommit}); lsn != 4 {
		t.Fatalf("LSN after no-op SetNextLSN = %d, want 4", lsn)
	}
}

func TestRowCodecStrings(t *testing.T) {
	r := types.Row{types.NewInt(-5), types.NewString("héllo"), types.NewFloat(2.25), types.Null}
	enc := types.AppendRow(nil, r)
	dec, n, err := types.DecodeRow(enc)
	if err != nil || n != len(enc) {
		t.Fatalf("decode: n=%d err=%v", n, err)
	}
	for i := range r {
		if !dec[i].Equal(r[i]) && !(r[i].IsNull() && dec[i].IsNull()) {
			t.Fatalf("col %d: got %v want %v", i, dec[i], r[i])
		}
	}
}
