package wal

// Ablation: group commit vs per-record flushing, the design choice behind
// the log's FlushOnCommit default.

import (
	"testing"

	"htap/internal/disk"
	"htap/internal/types"
)

func benchTxn(b *testing.B, group bool) {
	dev := disk.New(disk.DefaultConfig())
	l := New(dev, "wal")
	l.FlushOnCommit = true
	row := types.Row{types.NewInt(1), types.NewInt(2)}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for r := 0; r < 10; r++ {
			l.Append(Record{Txn: uint64(i), Type: RecInsert, Table: 1, Key: int64(r), Row: row})
			if !group {
				l.Flush() // per-record durability: one device write each
			}
		}
		l.Append(Record{Txn: uint64(i), Type: RecCommit})
	}
	b.StopTimer()
	st := dev.Stats()
	b.ReportMetric(float64(st.WriteOps)/float64(b.N), "device-writes/txn")
}

// BenchmarkAblationGroupCommit amortizes ten DML records into one flush.
func BenchmarkAblationGroupCommit(b *testing.B) {
	b.Run("group", func(b *testing.B) { benchTxn(b, true) })
	b.Run("per-record", func(b *testing.B) { benchTxn(b, false) })
}
