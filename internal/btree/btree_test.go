package btree

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestEmptyTree(t *testing.T) {
	tr := New[int]()
	if tr.Len() != 0 {
		t.Fatal("empty tree has nonzero len")
	}
	if _, ok := tr.Get(1); ok {
		t.Fatal("Get on empty tree returned ok")
	}
	if _, _, ok := tr.Min(); ok {
		t.Fatal("Min on empty tree returned ok")
	}
	tr.Ascend(func(k int64, v int) bool { t.Fatal("ascend visited something"); return false })
}

func TestPutGetReplace(t *testing.T) {
	tr := New[string]()
	if _, replaced := tr.Put(1, "a"); replaced {
		t.Fatal("fresh insert reported replaced")
	}
	old, replaced := tr.Put(1, "b")
	if !replaced || old != "a" {
		t.Fatalf("replace got (%q,%v)", old, replaced)
	}
	if v, ok := tr.Get(1); !ok || v != "b" {
		t.Fatalf("Get got (%q,%v)", v, ok)
	}
	if tr.Len() != 1 {
		t.Fatalf("len = %d, want 1", tr.Len())
	}
}

func TestOrderedInsertScan(t *testing.T) {
	tr := New[int64]()
	const n = 10_000
	for i := int64(0); i < n; i++ {
		tr.Put(i, i*2)
	}
	var prev int64 = -1
	count := 0
	tr.Ascend(func(k int64, v int64) bool {
		if k <= prev {
			t.Fatalf("out of order: %d after %d", k, prev)
		}
		if v != k*2 {
			t.Fatalf("value mismatch at %d", k)
		}
		prev = k
		count++
		return true
	})
	if count != n {
		t.Fatalf("scan visited %d, want %d", count, n)
	}
}

func TestRandomInsertDeleteMatchesMap(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	tr := New[int]()
	ref := map[int64]int{}
	for i := 0; i < 20_000; i++ {
		k := int64(rng.Intn(5000))
		switch rng.Intn(3) {
		case 0, 1:
			v := rng.Int()
			_, repl := tr.Put(k, v)
			_, exists := ref[k]
			if repl != exists {
				t.Fatalf("step %d: replaced=%v exists=%v", i, repl, exists)
			}
			ref[k] = v
		case 2:
			_, del := tr.Delete(k)
			_, exists := ref[k]
			if del != exists {
				t.Fatalf("step %d: deleted=%v exists=%v", i, del, exists)
			}
			delete(ref, k)
		}
	}
	if tr.Len() != len(ref) {
		t.Fatalf("len = %d, want %d", tr.Len(), len(ref))
	}
	for k, v := range ref {
		got, ok := tr.Get(k)
		if !ok || got != v {
			t.Fatalf("Get(%d) = (%d,%v), want (%d,true)", k, got, ok, v)
		}
	}
	// Scan must visit exactly the reference keys in order.
	keys := make([]int64, 0, len(ref))
	for k := range ref {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	i := 0
	tr.Ascend(func(k int64, v int) bool {
		if i >= len(keys) || k != keys[i] {
			t.Fatalf("scan mismatch at position %d: got %d", i, k)
		}
		i++
		return true
	})
	if i != len(keys) {
		t.Fatalf("scan visited %d, want %d", i, len(keys))
	}
}

func TestAscendRange(t *testing.T) {
	tr := New[int]()
	for i := int64(0); i < 100; i += 2 {
		tr.Put(i, int(i))
	}
	var got []int64
	tr.AscendRange(10, 20, func(k int64, v int) bool {
		got = append(got, k)
		return true
	})
	want := []int64{10, 12, 14, 16, 18, 20}
	if len(got) != len(want) {
		t.Fatalf("range got %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("range got %v, want %v", got, want)
		}
	}
	// Range with early stop.
	n := 0
	tr.AscendRange(0, 98, func(k int64, v int) bool { n++; return n < 3 })
	if n != 3 {
		t.Fatalf("early stop visited %d", n)
	}
	// Range over odd bounds not in the tree.
	got = got[:0]
	tr.AscendRange(11, 13, func(k int64, v int) bool { got = append(got, k); return true })
	if len(got) != 1 || got[0] != 12 {
		t.Fatalf("odd-bound range got %v", got)
	}
}

func TestMinAfterDeletes(t *testing.T) {
	tr := New[int]()
	for i := int64(0); i < 200; i++ {
		tr.Put(i, int(i))
	}
	for i := int64(0); i < 150; i++ {
		tr.Delete(i)
	}
	k, v, ok := tr.Min()
	if !ok || k != 150 || v != 150 {
		t.Fatalf("Min = (%d,%d,%v), want (150,150,true)", k, v, ok)
	}
}

func TestHeightLogarithmic(t *testing.T) {
	tr := New[int]()
	for i := int64(0); i < 100_000; i++ {
		tr.Put(i, 0)
	}
	if h := tr.Height(); h > 6 {
		t.Fatalf("height %d too large for 1e5 keys at degree %d", h, degree)
	}
}

// Property: for any key set, Ascend yields exactly the sorted distinct keys.
func TestQuickSortedScan(t *testing.T) {
	f := func(keys []int64) bool {
		tr := New[struct{}]()
		set := map[int64]bool{}
		for _, k := range keys {
			tr.Put(k, struct{}{})
			set[k] = true
		}
		want := make([]int64, 0, len(set))
		for k := range set {
			want = append(want, k)
		}
		sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
		var got []int64
		tr.Ascend(func(k int64, _ struct{}) bool { got = append(got, k); return true })
		if len(got) != len(want) {
			return false
		}
		for i := range got {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: Get after Put always finds the latest value.
func TestQuickPutGet(t *testing.T) {
	f := func(ops []struct {
		K int64
		V int32
	}) bool {
		tr := New[int32]()
		ref := map[int64]int32{}
		for _, op := range ops {
			tr.Put(op.K, op.V)
			ref[op.K] = op.V
		}
		for k, v := range ref {
			got, ok := tr.Get(k)
			if !ok || got != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkPut(b *testing.B) {
	tr := New[int64]()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tr.Put(int64(i), int64(i))
	}
}

func BenchmarkGet(b *testing.B) {
	tr := New[int64]()
	const n = 1 << 20
	for i := int64(0); i < n; i++ {
		tr.Put(i, i)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Get(int64(i) & (n - 1))
	}
}
