// Package btree implements an in-memory B+-tree keyed by int64.
//
// It is the ordered-index substrate of the repository: the MVCC row store
// uses it as the primary-key index, delta stores use it to locate delta
// entries by key (the paper's §2.2(3)(ii): "the delta data can be indexed by
// a B+-tree, thus the delta items can be efficiently located with key
// lookups"), and secondary indexes in the workload layer reuse it.
//
// The tree is not safe for concurrent mutation; callers synchronize. Leaf
// nodes are linked for fast ascending range scans.
package btree

// degree is the maximum number of keys per node. 32 keeps nodes within a
// couple of cache lines of keys while staying shallow at benchmark sizes.
const degree = 32

type node[V any] struct {
	keys     []int64
	vals     []V        // leaf only, parallel to keys
	children []*node[V] // interior only, len(keys)+1
	next     *node[V]   // leaf chain
	leaf     bool
}

// Tree is a B+-tree from int64 keys to values of type V.
type Tree[V any] struct {
	root *node[V]
	size int
}

// New returns an empty tree.
func New[V any]() *Tree[V] {
	return &Tree[V]{root: &node[V]{leaf: true}}
}

// Len returns the number of keys stored.
func (t *Tree[V]) Len() int { return t.size }

// search returns the index of the first key >= k in n.keys.
func search(keys []int64, k int64) int {
	lo, hi := 0, len(keys)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if keys[mid] < k {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// Get returns the value stored under k.
func (t *Tree[V]) Get(k int64) (V, bool) {
	n := t.root
	for !n.leaf {
		i := search(n.keys, k)
		if i < len(n.keys) && n.keys[i] == k {
			i++ // interior separators are copied up; equal key lives right
		}
		n = n.children[i]
	}
	i := search(n.keys, k)
	if i < len(n.keys) && n.keys[i] == k {
		return n.vals[i], true
	}
	var zero V
	return zero, false
}

// Put inserts or replaces the value under k, returning the previous value.
func (t *Tree[V]) Put(k int64, v V) (old V, replaced bool) {
	old, replaced, splitKey, sibling := t.insert(t.root, k, v)
	if sibling != nil {
		newRoot := &node[V]{
			keys:     []int64{splitKey},
			children: []*node[V]{t.root, sibling},
		}
		t.root = newRoot
	}
	if !replaced {
		t.size++
	}
	return old, replaced
}

func (t *Tree[V]) insert(n *node[V], k int64, v V) (old V, replaced bool, splitKey int64, sibling *node[V]) {
	if n.leaf {
		i := search(n.keys, k)
		if i < len(n.keys) && n.keys[i] == k {
			old, n.vals[i] = n.vals[i], v
			return old, true, 0, nil
		}
		n.keys = append(n.keys, 0)
		copy(n.keys[i+1:], n.keys[i:])
		n.keys[i] = k
		var zero V
		n.vals = append(n.vals, zero)
		copy(n.vals[i+1:], n.vals[i:])
		n.vals[i] = v
		if len(n.keys) > degree {
			splitKey, sibling = t.splitLeaf(n)
		}
		return old, false, splitKey, sibling
	}
	i := search(n.keys, k)
	if i < len(n.keys) && n.keys[i] == k {
		i++
	}
	old, replaced, childKey, childSib := t.insert(n.children[i], k, v)
	if childSib != nil {
		n.keys = append(n.keys, 0)
		copy(n.keys[i+1:], n.keys[i:])
		n.keys[i] = childKey
		n.children = append(n.children, nil)
		copy(n.children[i+2:], n.children[i+1:])
		n.children[i+1] = childSib
		if len(n.keys) > degree {
			splitKey, sibling = t.splitInterior(n)
		}
	}
	return old, replaced, splitKey, sibling
}

func (t *Tree[V]) splitLeaf(n *node[V]) (int64, *node[V]) {
	mid := len(n.keys) / 2
	sib := &node[V]{leaf: true, next: n.next}
	sib.keys = append(sib.keys, n.keys[mid:]...)
	sib.vals = append(sib.vals, n.vals[mid:]...)
	n.keys = n.keys[:mid:mid]
	n.vals = n.vals[:mid:mid]
	n.next = sib
	return sib.keys[0], sib
}

func (t *Tree[V]) splitInterior(n *node[V]) (int64, *node[V]) {
	mid := len(n.keys) / 2
	sep := n.keys[mid]
	sib := &node[V]{}
	sib.keys = append(sib.keys, n.keys[mid+1:]...)
	sib.children = append(sib.children, n.children[mid+1:]...)
	n.keys = n.keys[:mid:mid]
	n.children = n.children[: mid+1 : mid+1]
	return sep, sib
}

// Delete removes k, returning the removed value. Nodes are allowed to
// underflow (no rebalancing): the engines only delete via MVCC tombstones,
// so physical deletes are rare and tree height stays bounded by inserts.
func (t *Tree[V]) Delete(k int64) (V, bool) {
	var zero V
	n := t.root
	for !n.leaf {
		i := search(n.keys, k)
		if i < len(n.keys) && n.keys[i] == k {
			i++
		}
		n = n.children[i]
	}
	i := search(n.keys, k)
	if i >= len(n.keys) || n.keys[i] != k {
		return zero, false
	}
	v := n.vals[i]
	n.keys = append(n.keys[:i], n.keys[i+1:]...)
	n.vals = append(n.vals[:i], n.vals[i+1:]...)
	t.size--
	return v, true
}

// leafFor returns the leaf that would contain k and is the starting point
// of an ascending scan from k.
func (t *Tree[V]) leafFor(k int64) *node[V] {
	n := t.root
	for !n.leaf {
		i := search(n.keys, k)
		if i < len(n.keys) && n.keys[i] == k {
			i++
		}
		n = n.children[i]
	}
	return n
}

// AscendRange calls fn for every key in [lo, hi] in ascending order until
// fn returns false. The full-range form is AscendRange(math.MinInt64,
// math.MaxInt64, fn).
func (t *Tree[V]) AscendRange(lo, hi int64, fn func(k int64, v V) bool) {
	n := t.leafFor(lo)
	for n != nil {
		i := search(n.keys, lo)
		for ; i < len(n.keys); i++ {
			if n.keys[i] > hi {
				return
			}
			if !fn(n.keys[i], n.vals[i]) {
				return
			}
		}
		n = n.next
	}
}

// Ascend calls fn for every key in ascending order until fn returns false.
func (t *Tree[V]) Ascend(fn func(k int64, v V) bool) {
	const minInt64 = -1 << 63
	const maxInt64 = 1<<63 - 1
	t.AscendRange(minInt64, maxInt64, fn)
}

// Min returns the smallest key and its value.
func (t *Tree[V]) Min() (int64, V, bool) {
	n := t.root
	for !n.leaf {
		n = n.children[0]
	}
	if len(n.keys) == 0 {
		// Underflowed leftmost leaf: fall back to a scan.
		var rk int64
		var rv V
		found := false
		t.Ascend(func(k int64, v V) bool { rk, rv, found = k, v, true; return false })
		return rk, rv, found
	}
	return n.keys[0], n.vals[0], true
}

// Height returns the tree height (1 for a lone leaf); used by tests.
func (t *Tree[V]) Height() int {
	h := 1
	for n := t.root; !n.leaf; n = n.children[0] {
		h++
	}
	return h
}
