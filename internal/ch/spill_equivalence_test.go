package ch

import (
	"runtime"
	"testing"

	"htap/internal/core"
	"htap/internal/exec"
)

// TestForcedSpillEquivalence is the bounded-memory determinism gate: all
// 22 CH queries, every architecture, at parallelism 1 and N, re-run under
// a per-query budget small enough that every materializing operator (hash
// join, hash aggregate, sort) abandons its in-memory algorithm and spills.
// The spilling algorithms are designed to be bit-equivalent to their
// in-memory counterparts at a fixed parallelism — grace partitioning
// replays build order, tagged merges reassemble probe order, aggregate
// ordinals preserve first-seen group order — so the governed run must
// match the ungoverned baseline exactly, not merely to an epsilon. The
// governor must actually have spilled (otherwise the gate tested nothing)
// and must leave zero spill files behind.
func TestForcedSpillEquivalence(t *testing.T) {
	engines := eqEngines(t)
	defer func() {
		for _, e := range engines {
			e.Close()
		}
	}()
	parN := runtime.GOMAXPROCS(0)
	if parN < 4 {
		parN = 4
	}

	for _, arch := range []string{"A", "B", "C", "D"} {
		e := engines[arch]
		base1 := runAll(t, e, 1)
		baseN := runAll(t, e, parN)

		gov := exec.NewGovernor(1<<30, nil)
		gov.SetQueryLimit(16 << 10) // tiny: forces spills on every heavy query
		mg, ok := e.(core.MemGoverned)
		if !ok {
			t.Fatalf("arch %s engine does not implement core.MemGoverned", arch)
		}
		mg.SetMemGovernor(gov)
		sp1 := runAll(t, e, 1)
		spN := runAll(t, e, parN)
		mg.SetMemGovernor(nil)

		for q := 1; q <= 22; q++ {
			if !exactEqual(base1[q], sp1[q]) {
				t.Errorf("%s Q%02d: forced-spill run diverges from baseline at parallelism 1 (%d vs %d rows)",
					arch, q, len(sp1[q]), len(base1[q]))
			}
			if !exactEqual(baseN[q], spN[q]) {
				t.Errorf("%s Q%02d: forced-spill run diverges from baseline at parallelism %d (%d vs %d rows)",
					arch, q, parN, len(spN[q]), len(baseN[q]))
			}
		}
		if gov.Spills() == 0 || gov.SpillBytes() == 0 {
			t.Errorf("%s: 16KB budget forced no spills (spills=%d bytes=%d) — gate is vacuous",
				arch, gov.Spills(), gov.SpillBytes())
		}
		if n := gov.LiveSpillFiles(); n != 0 {
			t.Errorf("%s: %d spill files leaked after all queries finished", arch, n)
		}
	}
}
