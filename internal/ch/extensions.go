package ch

// This file implements the benchmark extensions the paper's §2.4 calls
// for under "HTAP Benchmark Suite":
//
//  1. "HTAP benchmarks with TPC-H should incorporate the join-crossing
//     correlation with skew" (JCC-H): Scale.Skew drives a Zipf-skewed item
//     popularity in order lines and a warehouse↔nation correlation for
//     customers, so joins cross correlated, skewed columns instead of the
//     uniform independent data TPC-H generates.
//  2. "Gartner has defined HTAP transaction could contain analytical
//     operations … e.g., insert analytical operations to TPC-C": the
//     AnalyticalNewOrder transaction embeds a popularity-check aggregate
//     over the live order-line data inside the New-Order flow.

import (
	"context"
	"math/rand"

	"htap/internal/core"
	"htap/internal/exec"
	"htap/internal/types"
)

// SkewedScale returns scale with JCC-H-style skew enabled: s controls the
// Zipf exponent of item popularity (1 < s, larger = more skewed).
func SkewedScale(base Scale, s float64) Scale {
	base.Skew = s
	return base
}

// zipfFor builds a Zipf sampler over [1, items].
func zipfFor(rng *rand.Rand, s float64, items int) *rand.Zipf {
	if s <= 1 {
		s = 1.1
	}
	return rand.NewZipf(rng, s, 1, uint64(items-1))
}

// pickItem draws an item id, Zipf-skewed when Scale.Skew is set.
func (d *Driver) pickItem(rng *rand.Rand) int64 {
	if d.Scale.Skew <= 0 {
		return int64(1 + rng.Intn(d.Scale.Items))
	}
	d.zipfMu.Lock()
	if d.zipf == nil {
		d.zipf = zipfFor(rng, d.Scale.Skew, d.Scale.Items)
	}
	v := d.zipf.Uint64()
	d.zipfMu.Unlock()
	return int64(v + 1)
}

// AnalyticalNewOrder is the New-Order transaction enriched with an
// in-transaction analytical operation: before pricing the lines, it
// aggregates the recent sales volume of the ordered items over the
// engine's analytical view and applies a popularity surcharge. This is the
// "In-Process HTAP" transaction shape of §2.4 — OLTP and OLAP woven into
// one business task.
func (d *Driver) AnalyticalNewOrder(ctx context.Context, rng *rand.Rand) error {
	w, dist := d.pickWD(rng)
	c := d.pickCustomer(rng)
	olCnt := int64(5 + rng.Intn(11))
	items := make([]int64, olCnt)
	qtys := make([]int64, olCnt)
	for i := range items {
		items[i] = d.pickItem(rng)
		qtys[i] = int64(1 + rng.Intn(10))
	}

	// Analytical operation: per-item units sold, from the columnar view.
	popularity := make(map[int64]int64, len(items))
	rows := d.E.Query(ctx, TOrderLine, []string{"ol_i_id", "ol_quantity"}, nil).
		Filter(exec.InInts(exec.ColName("ol_i_id"), items...)).
		Agg([]string{"ol_i_id"},
			exec.Agg{Kind: exec.Sum, Expr: exec.ColName("ol_quantity"), Name: "sold"}).
		Run()
	for _, r := range rows {
		popularity[r[0].Int()] = r[1].Int()
	}

	var oKey int64
	err := core.Exec(ctx, d.E, func(tx core.Tx) error {
		drow, err := tx.Get(TDistrict, DistrictKey(w, dist))
		if err != nil {
			return err
		}
		oID := drow[6].Int()
		nd := drow.Clone()
		nd[6] = types.NewInt(oID + 1)
		if err := tx.Update(TDistrict, nd); err != nil {
			return err
		}
		oKey = OrderKey(w, dist, oID)
		if err := tx.Insert(TOrders, types.Row{
			types.NewInt(oKey), types.NewInt(w), types.NewInt(dist),
			types.NewInt(oID), types.NewInt(c), types.NewInt(CustomerKey(w, dist, c)),
			types.NewInt(oID * 7), types.NewInt(0), types.NewInt(olCnt),
		}); err != nil {
			return err
		}
		if err := tx.Insert(TNewOrder, types.Row{
			types.NewInt(oKey), types.NewInt(w), types.NewInt(dist), types.NewInt(oID),
		}); err != nil {
			return err
		}
		for l := int64(1); l <= olCnt; l++ {
			item := items[l-1]
			irow, err := tx.Get(TItem, ItemKey(item))
			if err != nil {
				return err
			}
			price := irow[4].Float()
			// Popular items carry a demand surcharge — the analytical
			// result feeds the transactional decision.
			if popularity[item] > 100 {
				price *= 1.05
			}
			if err := tx.Insert(TOrderLine, types.Row{
				types.NewInt(OrderLineKey(w, dist, oID, l)), types.NewInt(oKey),
				types.NewInt(w), types.NewInt(dist), types.NewInt(oID), types.NewInt(l),
				types.NewInt(item), types.NewInt(w), types.NewInt(0),
				types.NewInt(qtys[l-1]), types.NewFloat(float64(qtys[l-1]) * price),
				types.NewString("dist-info"),
			}); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		return err
	}
	d.mu.Lock()
	d.lastOrder[CustomerKey(w, dist, c)] = oKey
	d.undelivered[DistrictKey(w, dist)] = append(d.undelivered[DistrictKey(w, dist)], oKey)
	d.mu.Unlock()
	return nil
}
