package ch

// Cancellation regression tests: a cancelled context must stop a CH query
// mid-scan — abandoning the remaining batches — and surface the context
// error instead of partial rows. This is the engine-level half of the
// guarantee; internal/server tests the network half (client disconnect ->
// server cancels the scan).
//
// The scans observe cancellation by polling ctx.Err() batch-granularly, so
// the tests drive them with a context whose Err() flips after a fixed
// number of polls. That makes "cancelled mid-scan" deterministic on any
// GOMAXPROCS — no timers racing a busy scan loop.

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"
)

// pollCtx counts Err() polls and reports context.Canceled once the count
// exceeds trip (trip < 0 never cancels). Scans in this repo poll Err()
// rather than select on Done(), so flipping Err() is exactly the signal a
// cancelled parent context would deliver.
type pollCtx struct {
	context.Context
	polls atomic.Int64
	trip  int64
}

func (c *pollCtx) Err() error {
	if n := c.polls.Add(1); c.trip >= 0 && n > c.trip {
		return context.Canceled
	}
	return c.Context.Err()
}

func loadQ1Engine(t testing.TB) Engine {
	t.Helper()
	e := newEngineA()
	t.Cleanup(func() { e.Close() })
	s := SmallScale(2)
	s.Customers = 1500 // Orders is clamped to Customers; ~90k order lines
	s.Orders = 1500
	if _, err := NewGenerator(s).Load(e); err != nil {
		t.Fatal(err)
	}
	return e
}

func TestRunQueryCancelledMidScan(t *testing.T) {
	e := loadQ1Engine(t)

	// Baseline: count how often a full uncancelled Q1 polls the context.
	// The dataset is sized so the order_line scan spans many batches.
	base := &pollCtx{Context: context.Background(), trip: -1}
	rows, err := RunQuery(base, e, 1)
	if err != nil || len(rows) == 0 {
		t.Fatalf("baseline Q1: rows=%d err=%v", len(rows), err)
	}
	full := base.polls.Load()
	if full < 40 {
		t.Fatalf("baseline Q1 polled ctx only %d times; dataset too small to observe mid-scan cancellation", full)
	}

	// Cancel after 1/20 of the baseline polls: the scan must abandon its
	// remaining batches, not run to completion.
	cc := &pollCtx{Context: context.Background(), trip: full / 20}
	rows, err = RunQuery(cc, e, 1)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled Q1: err = %v, want context.Canceled", err)
	}
	if rows != nil {
		t.Fatalf("cancelled Q1 leaked %d partial rows", len(rows))
	}
	// Every source checks Err() at most once more after tripping, so a
	// scan that honors cancellation stops well short of the full poll
	// count. A scan that ignores it would poll ~full times again.
	if got := cc.polls.Load(); got > full/2 {
		t.Fatalf("cancelled Q1 still polled %d/%d times; scan did not stop early", got, full)
	}
}

func TestRunQueryPreCancelledReturnsImmediately(t *testing.T) {
	e := loadQ1Engine(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	t0 := time.Now()
	_, err := RunQuery(ctx, e, 1)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if took := time.Since(t0); took > time.Second {
		t.Fatalf("pre-cancelled Q1 still ran for %v", took)
	}
}

func TestRunQueryDeadlineSurfaces(t *testing.T) {
	e := loadQ1Engine(t)
	// A deadline already in the past cancels synchronously at creation —
	// no timer involved, so this is deterministic even on GOMAXPROCS=1.
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	rows, err := RunQuery(ctx, e, 1)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
	if rows != nil {
		t.Fatalf("expired deadline leaked %d rows", len(rows))
	}
}
