package ch

import (
	"context"
	"math/rand"
	"testing"

	"htap/internal/core"
	"htap/internal/exec"
	"htap/internal/rowstore"
)

func TestSkewedItemPopularity(t *testing.T) {
	e := newEngineA()
	defer e.Close()
	s := SkewedScale(SmallScale(1), 2.0)
	s.Items = 200
	if _, err := NewGenerator(s).Load(e); err != nil {
		t.Fatal(err)
	}
	d := NewDriver(e, s)
	rng := rand.New(rand.NewSource(1))
	counts := map[int64]int{}
	for i := 0; i < 20_000; i++ {
		counts[d.pickItem(rng)]++
	}
	// Zipf: the hottest item dominates; under uniform it would get ~100.
	if counts[1] < 2000 {
		t.Fatalf("item 1 drawn %d times; skew not applied", counts[1])
	}
	// Uniform driver draws flat.
	du := NewDriver(e, SmallScale(1))
	flat := map[int64]int{}
	for i := 0; i < 20_000; i++ {
		flat[du.pickItem(rng)]++
	}
	if flat[1] > 2000 {
		t.Fatalf("uniform driver skewed: %d", flat[1])
	}
}

func TestSkewedGeneratorCorrelatesNations(t *testing.T) {
	e := newEngineA()
	defer e.Close()
	s := SkewedScale(SmallScale(2), 1.5)
	if _, err := NewGenerator(s).Load(e); err != nil {
		t.Fatal(err)
	}
	// All customers of warehouse 1 share one nation under skew.
	rows := e.Query(context.Background(), TCustomer, []string{"c_w_id", "c_n_nationkey"}, nil).
		Filter(exec.Cmp(exec.EQ, exec.ColName("c_w_id"), exec.ConstInt(1))).
		Project(exec.NamedExpr{Name: "n", Expr: exec.ColName("c_n_nationkey")}).
		Distinct().Run()
	if len(rows) != 1 {
		t.Fatalf("warehouse 1 customers span %d nations, want 1 (correlated)", len(rows))
	}
}

func TestAnalyticalNewOrder(t *testing.T) {
	e := newEngineA()
	defer e.Close()
	s := loadSmall(t, e, 1)
	d := NewDriver(e, s)
	rng := rand.New(rand.NewSource(2))
	before := e.Query(context.Background(), TOrders, nil, nil).Count()
	for i := 0; i < 10; i++ {
		if err := d.AnalyticalNewOrder(context.Background(), rng); err != nil {
			t.Fatalf("analytical new-order %d: %v", i, err)
		}
	}
	e.Sync()
	after := e.Query(context.Background(), TOrders, nil, nil).Count()
	if after != before+10 {
		t.Fatalf("orders %d -> %d, want +10", before, after)
	}
	// Popular items carry the surcharge: compare a line amount against the
	// base price times quantity for a popular item. Indirect check: at
	// least the transaction completed with consistent order-line counts.
	tx := e.Begin(context.Background())
	defer tx.Abort()
	dr, err := tx.Get(TDistrict, DistrictKey(1, 1))
	if err != nil {
		t.Fatal(err)
	}
	if dr[6].Int() <= int64(s.Orders) {
		t.Fatal("district order counter did not advance")
	}
}

func TestAnalyticalNewOrderAppliesSurcharge(t *testing.T) {
	e := newEngineA()
	defer e.Close()
	s := SmallScale(1)
	s.Items = 3 // few items: every item is popular after the seed orders
	if _, err := NewGenerator(s).Load(e); err != nil {
		t.Fatal(err)
	}
	d := NewDriver(e, s)
	rng := rand.New(rand.NewSource(3))
	if err := d.AnalyticalNewOrder(context.Background(), rng); err != nil {
		t.Fatal(err)
	}
	e.Sync()
	// The newest order's line amounts must be price*qty*1.05 for popular
	// items; verify at least one line carries a non-integer multiple of
	// its base price (the 5% surcharge).
	rows := e.Query(context.Background(), TOrderLine, []string{"ol_o_id", "ol_i_id", "ol_quantity", "ol_amount"}, nil).
		Filter(exec.Cmp(exec.GT, exec.ColName("ol_o_id"), exec.ConstInt(int64(s.Orders)))).Run()
	if len(rows) == 0 {
		t.Fatal("no lines for the new order")
	}
	surcharged := 0
	for _, r := range rows {
		item, qty, amount := r[1].Int(), r[2].Int(), r[3].Float()
		tx := e.Begin(context.Background())
		irow, err := tx.Get(TItem, ItemKey(item))
		tx.Abort()
		if err != nil {
			t.Fatal(err)
		}
		base := irow[4].Float() * float64(qty)
		if amount > base*1.04 {
			surcharged++
		}
	}
	if surcharged == 0 {
		t.Fatal("no line carries the popularity surcharge")
	}
}

func TestByLastNameSelectionUsesIndex(t *testing.T) {
	e := newEngineA()
	defer e.Close()
	s := loadSmall(t, e, 1)
	d := NewDriver(e, s)
	if d.byLast == nil {
		t.Fatal("engine A supports indexes; driver did not register one")
	}
	// The index resolves a known last name to customers carrying it.
	last := lastNames[1] + lastNames[0] // customer c=1 -> OUGHTBAR... verify via lookup
	pks := d.byLast.IndexLookup(TCustomer, CustomerLastIndex, rowstore.HashString(last))
	if len(pks) == 0 {
		t.Fatalf("no customers under last name %q", last)
	}
	tx := e.Begin(context.Background())
	defer tx.Abort()
	r, err := tx.Get(TCustomer, pks[0])
	if err != nil || r[4].Str() != last {
		t.Fatalf("index hit resolves to %v (%v), want last name %q", r, err, last)
	}
	// Payments keep working with by-last-name selection in the mix.
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < 30; i++ {
		if err := d.Payment(context.Background(), rng); err != nil {
			t.Fatalf("payment %d: %v", i, err)
		}
	}
}

func TestDriverWithoutIndexerFallsBack(t *testing.T) {
	// Engine D has no primary row store, hence no Indexer support.
	e := core.NewEngineD(core.ConfigD{Schemas: Schemas()})
	defer e.Close()
	s := SmallScale(1)
	if _, err := NewGenerator(s).Load(e); err != nil {
		t.Fatal(err)
	}
	d := NewDriver(e, s)
	if d.byLast != nil {
		t.Fatal("engine D unexpectedly advertises indexes")
	}
	rng := rand.New(rand.NewSource(10))
	for i := 0; i < 20; i++ {
		if err := d.Payment(context.Background(), rng); err != nil {
			t.Fatalf("payment %d: %v", i, err)
		}
	}
}
