package ch

import (
	"context"
	"strings"
	"testing"

	"htap/internal/core"
	"htap/internal/exec"
)

// The profiled-execution gate: EXPLAIN ANALYZE must be a pure observer.
// All 22 CH queries run on all four architectures at a fixed parallelism,
// once plain and once under a QueryProfile, and the profiled rows must be
// bit-identical to the unprofiled rows — the statsOp wrappers forward
// batches untouched, so profiling can never change an answer. Alongside,
// the rendered profile must actually carry per-operator rows/timing
// annotations and name the architecture that ran it.
func TestProfiledExecutionEquivalence(t *testing.T) {
	engines := eqEngines(t)
	defer func() {
		for _, e := range engines {
			e.Close()
		}
	}()
	const parN = 4 // fixed DOP: determinism within one engine is per-DOP

	for _, arch := range []string{"A", "B", "C", "D"} {
		e := engines[arch]
		e.(core.Paralleler).SetParallelism(parN)
		for q := 1; q <= 22; q++ {
			plain, err := RunQuery(context.Background(), e, q)
			if err != nil {
				t.Fatalf("%s Q%02d: %v", arch, q, err)
			}
			prof := exec.NewQueryProfile()
			profiled, err := RunQuery(exec.WithProfile(context.Background(), prof), e, q)
			if err != nil {
				t.Fatalf("%s Q%02d profiled: %v", arch, q, err)
			}
			if !exactEqual(plain, profiled) {
				t.Fatalf("%s Q%02d: profiled run diverges from plain run (%d vs %d rows)",
					arch, q, len(plain), len(profiled))
			}
			if len(prof.Plans()) == 0 {
				t.Fatalf("%s Q%02d: profile captured no plans", arch, q)
			}
			r := prof.Render()
			if !strings.Contains(r, "[rows=") {
				t.Fatalf("%s Q%02d: profile lacks operator annotations:\n%s", arch, q, r)
			}
			if !strings.Contains(r, "arch="+arch) {
				t.Fatalf("%s Q%02d: profile lacks arch label %q:\n%s", arch, q, arch, r)
			}
			if prof.ExecNS() <= 0 {
				t.Fatalf("%s Q%02d: profile has no execution time", arch, q)
			}
		}
	}
}

// A profiled plan's Explain must match the unprofiled plan's byte for
// byte: statsOp delegates explain to the wrapped operator, so the shape
// output never betrays whether profiling was on.
func TestProfiledExplainUnchanged(t *testing.T) {
	engines := eqEngines(t)
	defer func() {
		for _, e := range engines {
			e.Close()
		}
	}()
	e := engines["A"]
	plain := e.Query(context.Background(), "item", []string{"i_id", "i_price"}, nil)
	prof := exec.NewQueryProfile()
	profiled := e.Query(exec.WithProfile(context.Background(), prof), "item", []string{"i_id", "i_price"}, nil)
	a, b := plain.Explain(), profiled.Explain()
	if a != b {
		t.Fatalf("Explain changed under profiling:\nplain:\n%s\nprofiled:\n%s", a, b)
	}
	if _, err := profiled.RunCtx(context.Background()); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(profiled.ExplainAnalyze(), "[rows=") {
		t.Fatalf("ExplainAnalyze lacks annotations:\n%s", profiled.ExplainAnalyze())
	}
}
