package ch

import (
	"context"
	"fmt"
	"time"

	"htap/internal/core"
	"htap/internal/exec"
	"htap/internal/obs"
	"htap/internal/types"
)

// Engine is the engine surface the CH-benCHmark workload needs: a
// transactional entry point for the five TPC-C transactions and a
// context-threaded analytical access path for the 22 queries. core.Engine
// satisfies it, and so does the network client's remote engine — the same
// driver code runs in-process and over the wire.
type Engine interface {
	core.Beginner
	Query(ctx context.Context, table string, cols []string, pred *exec.ScanPred) *exec.Plan
}

// boundQueryer fixes a context onto an Engine so the context-free Queryer
// surface the 22 query functions are written against stays unchanged: every
// scan the query issues inherits the bound context, which is how
// cancellation reaches column scans deep inside a multi-join plan. It also
// records the first engine-level scan failure (a plan carrying an error,
// exec.FromError) so RunQuery can report it instead of returning rows
// assembled from silently-empty scans.
//
// When the engine runs under a memory governor, every Query call starts a
// fresh per-query accountant — but one CH query builds several plans that
// join into a single tree. boundQueryer adopts the first plan's accountant
// and rebinds later plans to it (finishing their fresh ones immediately),
// so the whole CH query is charged against one budget and cleaned up as
// one unit.
type boundQueryer struct {
	ctx context.Context
	e   Engine
	err error
	qm  *exec.QueryMem
}

func (b *boundQueryer) Query(table string, cols []string, pred *exec.ScanPred) *exec.Plan {
	p := b.e.Query(b.ctx, table, cols, pred)
	if qm := p.Mem(); qm != nil {
		if b.qm == nil {
			b.qm = qm
		} else if qm != b.qm {
			qm.Finish()
			p = p.WithMem(b.qm)
		}
	}
	if err := p.Err(); err != nil && b.err == nil {
		b.err = err
	}
	return p
}

// Bind adapts an Engine to the Queryer interface under ctx. Queries run
// through the returned Queryer stop scanning when ctx is cancelled; use
// RunQuery to also surface the context error and scan failures.
func Bind(ctx context.Context, e Engine) Queryer {
	return &boundQueryer{ctx: ctx, e: e}
}

// RunQuery executes CH query n (1..22) against e under ctx. When ctx is
// cancelled or times out mid-query, the scans abandon their remaining
// segments and RunQuery returns the context error (context.Canceled or
// context.DeadlineExceeded) with nil rows — partial results never escape.
// A scan that fails outright (a remote engine whose request errored after
// retries) is reported the same way: nil rows and the scan error, never a
// result that is indistinguishable from an empty table.
func RunQuery(ctx context.Context, e Engine, n int) ([]types.Row, error) {
	q := Queries()[n]
	if q == nil {
		return nil, fmt.Errorf("ch: no such query Q%d", n)
	}
	start := time.Now()
	bq := &boundQueryer{ctx: ctx, e: e}
	rows := q(bq)
	if bq.qm != nil {
		// The executed plan's deferred FinishMem already drained the shared
		// accountant; this defensive Finish covers plans a query built but
		// never ran (Finish is idempotent). A spill failure means the rows
		// were assembled from a partially-spilled operator: suppress them.
		memErr := bq.qm.Err()
		bq.qm.Finish()
		if memErr != nil && bq.err == nil {
			bq.err = memErr
		}
	}
	err := ctx.Err()
	if err == nil {
		err = bq.err
	}
	if err != nil {
		rows = nil
	}
	// Offer every run — success or failure — to the slow-query log.
	// RunQuery is the single chokepoint: local benchmarks call it
	// directly and the server calls it for remote clients, so each query
	// execution is observed exactly once per process.
	observeSlow(ctx, n, start, int64(len(rows)), err)
	return rows, err
}

// observeSlow records one finished CH query in obs.DefaultSlowLog,
// attaching the trace ID and rendered profile when ctx carries them.
func observeSlow(ctx context.Context, n int, start time.Time, rows int64, err error) {
	sq := obs.SlowQuery{
		Class: fmt.Sprintf("q%d", n),
		Start: start,
		Dur:   time.Since(start),
		Rows:  rows,
	}
	if sp := obs.SpanFromContext(ctx); sp != nil {
		sq.TraceID = sp.TraceID()
	}
	if prof := exec.ProfileFrom(ctx); prof != nil {
		sq.Profile = prof.Render()
	}
	if err != nil {
		sq.Err = err.Error()
	}
	obs.DefaultSlowLog.Observe(sq)
}
