package ch

import (
	"context"
	"fmt"

	"htap/internal/core"
	"htap/internal/exec"
	"htap/internal/types"
)

// Engine is the engine surface the CH-benCHmark workload needs: a
// transactional entry point for the five TPC-C transactions and a
// context-threaded analytical access path for the 22 queries. core.Engine
// satisfies it, and so does the network client's remote engine — the same
// driver code runs in-process and over the wire.
type Engine interface {
	core.Beginner
	Query(ctx context.Context, table string, cols []string, pred *exec.ScanPred) *exec.Plan
}

// boundQueryer fixes a context onto an Engine so the context-free Queryer
// surface the 22 query functions are written against stays unchanged: every
// scan the query issues inherits the bound context, which is how
// cancellation reaches column scans deep inside a multi-join plan.
type boundQueryer struct {
	ctx context.Context
	e   Engine
}

func (b boundQueryer) Query(table string, cols []string, pred *exec.ScanPred) *exec.Plan {
	return b.e.Query(b.ctx, table, cols, pred)
}

// Bind adapts an Engine to the Queryer interface under ctx. Queries run
// through the returned Queryer stop scanning when ctx is cancelled; use
// RunQuery to also surface the context error.
func Bind(ctx context.Context, e Engine) Queryer {
	return boundQueryer{ctx: ctx, e: e}
}

// RunQuery executes CH query n (1..22) against e under ctx. When ctx is
// cancelled or times out mid-query, the scans abandon their remaining
// segments and RunQuery returns the context error (context.Canceled or
// context.DeadlineExceeded) with nil rows — partial results never escape.
func RunQuery(ctx context.Context, e Engine, n int) ([]types.Row, error) {
	q := Queries()[n]
	if q == nil {
		return nil, fmt.Errorf("ch: no such query Q%d", n)
	}
	rows := q(Bind(ctx, e))
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return rows, nil
}
