// Package ch implements the CH-benCHmark (paper §2.3): TPC-C's nine tables
// and five transactions for the OLTP half, and the 22 CH analytical
// queries (TPC-H queries rewritten against the TPC-C schema, plus the three
// TPC-H dimension tables supplier/nation/region) for the OLAP half.
//
// Composite benchmark keys are packed into a single int64 primary key; the
// packing functions are part of the public schema contract. Queries are
// expressed as exec.Plan trees against any core.Engine, and the data
// generator is fully deterministic given a seed.
package ch

import "htap/internal/types"

// Table names.
const (
	TWarehouse = "warehouse"
	TDistrict  = "district"
	TCustomer  = "customer"
	THistory   = "history"
	TNewOrder  = "neworder"
	TOrders    = "orders"
	TOrderLine = "orderline"
	TItem      = "item"
	TStock     = "stock"
	TSupplier  = "supplier"
	TNation    = "nation"
	TRegion    = "region"
)

// Key packing. Cardinalities follow TPC-C: up to 10 districts per
// warehouse, 100k customers per district (3k standard), 10M orders per
// district, 15 order lines per order, 1M items.
//
// The packed layouts keep related rows in contiguous key ranges, so
// key-range predicates (for hybrid row/column scans) select whole
// warehouses or districts.

// WarehouseKey packs a warehouse id.
func WarehouseKey(w int64) int64 { return w }

// DistrictKey packs (warehouse, district).
func DistrictKey(w, d int64) int64 { return w*100 + d }

// CustomerKey packs (warehouse, district, customer).
func CustomerKey(w, d, c int64) int64 { return DistrictKey(w, d)*100_000 + c }

// OrderKey packs (warehouse, district, order).
func OrderKey(w, d, o int64) int64 { return DistrictKey(w, d)*10_000_000 + o }

// OrderLineKey packs (warehouse, district, order, line).
func OrderLineKey(w, d, o, l int64) int64 { return OrderKey(w, d, o)*16 + l }

// ItemKey packs an item id.
func ItemKey(i int64) int64 { return i }

// StockKey packs (warehouse, item).
func StockKey(w, i int64) int64 { return w*1_000_000 + i }

// SupplierKey packs a supplier id.
func SupplierKey(s int64) int64 { return s }

// NationKey packs a nation id.
func NationKey(n int64) int64 { return n }

// RegionKey packs a region id.
func RegionKey(r int64) int64 { return r }

func col(name string, t types.ColType) types.Column { return types.Column{Name: name, Type: t} }

// Schemas returns the twelve CH-benCHmark schemas in registration order.
func Schemas() []*types.Schema {
	return []*types.Schema{
		types.NewSchema(TWarehouse, 0,
			col("w_key", types.Int), col("w_id", types.Int),
			col("w_name", types.String), col("w_state", types.String),
			col("w_tax", types.Float), col("w_ytd", types.Float),
		),
		types.NewSchema(TDistrict, 0,
			col("d_key", types.Int), col("d_w_id", types.Int), col("d_id", types.Int),
			col("d_name", types.String), col("d_tax", types.Float), col("d_ytd", types.Float),
			col("d_next_o_id", types.Int),
		),
		types.NewSchema(TCustomer, 0,
			col("c_key", types.Int), col("c_w_id", types.Int), col("c_d_id", types.Int),
			col("c_id", types.Int), col("c_last", types.String), col("c_first", types.String),
			col("c_credit", types.String), col("c_balance", types.Float),
			col("c_ytd_payment", types.Float), col("c_payment_cnt", types.Int),
			col("c_delivery_cnt", types.Int), col("c_state", types.String),
			col("c_phone", types.String), col("c_since", types.Int),
			col("c_n_nationkey", types.Int),
		),
		types.NewSchema(THistory, 0,
			col("h_key", types.Int), col("h_c_key", types.Int), col("h_w_id", types.Int),
			col("h_d_id", types.Int), col("h_date", types.Int), col("h_amount", types.Float),
			col("h_data", types.String),
		),
		types.NewSchema(TNewOrder, 0,
			col("no_key", types.Int), col("no_w_id", types.Int), col("no_d_id", types.Int),
			col("no_o_id", types.Int),
		),
		types.NewSchema(TOrders, 0,
			col("o_key", types.Int), col("o_w_id", types.Int), col("o_d_id", types.Int),
			col("o_id", types.Int), col("o_c_id", types.Int), col("o_c_key", types.Int),
			col("o_entry_d", types.Int), col("o_carrier_id", types.Int),
			col("o_ol_cnt", types.Int),
		),
		types.NewSchema(TOrderLine, 0,
			col("ol_key", types.Int), col("ol_o_key", types.Int), col("ol_w_id", types.Int),
			col("ol_d_id", types.Int), col("ol_o_id", types.Int), col("ol_number", types.Int),
			col("ol_i_id", types.Int), col("ol_supply_w_id", types.Int),
			col("ol_delivery_d", types.Int), col("ol_quantity", types.Int),
			col("ol_amount", types.Float), col("ol_dist_info", types.String),
		),
		types.NewSchema(TItem, 0,
			col("i_key", types.Int), col("i_id", types.Int), col("i_im_id", types.Int),
			col("i_name", types.String), col("i_price", types.Float), col("i_data", types.String),
		),
		types.NewSchema(TStock, 0,
			col("s_key", types.Int), col("s_w_id", types.Int), col("s_i_id", types.Int),
			col("s_quantity", types.Int), col("s_ytd", types.Int), col("s_order_cnt", types.Int),
			col("s_remote_cnt", types.Int), col("s_data", types.String),
			col("s_su_suppkey", types.Int),
		),
		types.NewSchema(TSupplier, 0,
			col("su_key", types.Int), col("su_suppkey", types.Int),
			col("su_name", types.String), col("su_nationkey", types.Int),
			col("su_acctbal", types.Float),
		),
		types.NewSchema(TNation, 0,
			col("n_key", types.Int), col("n_nationkey", types.Int),
			col("n_name", types.String), col("n_regionkey", types.Int),
		),
		types.NewSchema(TRegion, 0,
			col("r_key", types.Int), col("r_regionkey", types.Int),
			col("r_name", types.String),
		),
	}
}
