package ch

import (
	"fmt"
	"math/rand"
	"sync/atomic"

	"htap/internal/core"
	"htap/internal/types"
)

// Scale sizes a CH-benCHmark dataset. TPC-C's standard cardinalities are
// the defaults; tests shrink them. Per warehouse: Districts districts; per
// district: Customers customers and Orders initial orders.
type Scale struct {
	Warehouses int
	Districts  int
	Customers  int
	Orders     int
	Items      int
	Suppliers  int
	Seed       int64
	// Skew enables JCC-H-style join-crossing correlation with skew
	// (paper §2.4): > 1 sets the Zipf exponent of item popularity and
	// correlates customer nations with their warehouse. Zero means the
	// uniform, independent distribution of stock TPC-C/TPC-H.
	Skew float64
}

// SmallScale is a laptop-test dataset.
func SmallScale(warehouses int) Scale {
	return Scale{
		Warehouses: warehouses, Districts: 3, Customers: 30, Orders: 30,
		Items: 100, Suppliers: 10, Seed: 42,
	}
}

// DefaultScale follows TPC-C cardinalities (trimmed item count).
func DefaultScale(warehouses int) Scale {
	return Scale{
		Warehouses: warehouses, Districts: 10, Customers: 3000, Orders: 3000,
		Items: 100_000, Suppliers: 10_000, Seed: 42,
	}
}

func (s Scale) normalize() Scale {
	if s.Warehouses <= 0 {
		s.Warehouses = 1
	}
	if s.Districts <= 0 {
		s.Districts = 10
	}
	if s.Customers <= 0 {
		s.Customers = 3000
	}
	if s.Orders <= 0 {
		s.Orders = s.Customers
	}
	if s.Orders > s.Customers {
		s.Orders = s.Customers // initial orders are one per customer prefix
	}
	if s.Items <= 0 {
		s.Items = 100_000
	}
	if s.Suppliers <= 0 {
		s.Suppliers = 10_000
	}
	return s
}

var nationNames = []string{
	"GERMANY", "FRANCE", "JAPAN", "CHINA", "BRAZIL",
	"USA", "INDIA", "KENYA", "PERU", "EGYPT",
}

var regionNames = []string{"EUROPE", "ASIA", "AMERICA", "AFRICA", "MIDDLE EAST"}

var lastNames = []string{
	"BAR", "OUGHT", "ABLE", "PRI", "PRES", "ESE", "ANTI", "CALLY", "ATION", "EING",
}

// hKey hands out history primary keys.
var hKey atomic.Int64

// NextHistoryKey returns a fresh history key; the Payment transaction uses
// it.
func NextHistoryKey() int64 { return hKey.Add(1) }

// HistoryKeyWatermark reports the highest history key allocated so far. A
// server loading CH data advertises it to remote drivers so their Payment
// transactions do not collide with generated history rows.
func HistoryKeyWatermark() int64 { return hKey.Load() }

// BumpHistoryKey raises the history-key allocator to at least n. Remote
// benchmark drivers call it with the server's advertised watermark before
// running Payments.
func BumpHistoryKey(n int64) {
	for {
		cur := hKey.Load()
		if cur >= n || hKey.CompareAndSwap(cur, n) {
			return
		}
	}
}

// BenchScale is the dataset cmd/chbench and cmd/htapd share: SmallScale
// with the per-district cardinalities the in-process benchmark has always
// used. Server and remote driver must agree on it, since the driver's
// client-side directories (last order per customer, undelivered queues)
// are derived from the scale rather than read back from the engine.
func BenchScale(warehouses int) Scale {
	s := SmallScale(warehouses)
	s.Customers = 100
	s.Orders = 100
	s.Items = 500
	return s
}

// Generator produces a deterministic CH dataset.
type Generator struct {
	Scale Scale
	rng   *rand.Rand
	zipf  *rand.Zipf
}

// NewGenerator returns a generator for the given scale.
func NewGenerator(s Scale) *Generator {
	s = s.normalize()
	return &Generator{Scale: s, rng: rand.New(rand.NewSource(s.Seed))}
}

// Load populates the engine with the full dataset. It returns the number
// of rows loaded.
func (g *Generator) Load(e core.Engine) (int, error) {
	n := 0
	load := func(table string, row types.Row) error {
		if err := e.Load(table, row); err != nil {
			return fmt.Errorf("ch: loading %s: %w", table, err)
		}
		n++
		return nil
	}
	// Dimension tables.
	for r := int64(0); r < int64(len(regionNames)); r++ {
		if err := load(TRegion, types.Row{
			types.NewInt(RegionKey(r)), types.NewInt(r), types.NewString(regionNames[r]),
		}); err != nil {
			return n, err
		}
	}
	for i := int64(0); i < int64(len(nationNames)); i++ {
		if err := load(TNation, types.Row{
			types.NewInt(NationKey(i)), types.NewInt(i),
			types.NewString(nationNames[i]), types.NewInt(i % int64(len(regionNames))),
		}); err != nil {
			return n, err
		}
	}
	for s := int64(1); s <= int64(g.Scale.Suppliers); s++ {
		if err := load(TSupplier, types.Row{
			types.NewInt(SupplierKey(s)), types.NewInt(s),
			types.NewString(fmt.Sprintf("Supplier#%05d", s)),
			types.NewInt(s % int64(len(nationNames))),
			types.NewFloat(float64(g.rng.Intn(10_000))),
		}); err != nil {
			return n, err
		}
	}
	// Items.
	for i := int64(1); i <= int64(g.Scale.Items); i++ {
		data := fmt.Sprintf("item-data-%d", i)
		if g.rng.Intn(10) == 0 {
			data += "ORIGINAL"
		}
		if err := load(TItem, types.Row{
			types.NewInt(ItemKey(i)), types.NewInt(i), types.NewInt(int64(g.rng.Intn(10_000))),
			types.NewString(fmt.Sprintf("item-%d", i)),
			types.NewFloat(1 + float64(g.rng.Intn(10_000))/100),
			types.NewString(data),
		}); err != nil {
			return n, err
		}
	}
	// Warehouses and their hierarchies.
	for w := int64(1); w <= int64(g.Scale.Warehouses); w++ {
		if err := load(TWarehouse, types.Row{
			types.NewInt(WarehouseKey(w)), types.NewInt(w),
			types.NewString(fmt.Sprintf("W-%d", w)),
			types.NewString(stateFor(w)),
			types.NewFloat(float64(g.rng.Intn(20)) / 100),
			types.NewFloat(300_000),
		}); err != nil {
			return n, err
		}
		for i := int64(1); i <= int64(g.Scale.Items); i++ {
			if err := load(TStock, types.Row{
				types.NewInt(StockKey(w, i)), types.NewInt(w), types.NewInt(i),
				types.NewInt(int64(10 + g.rng.Intn(91))), types.NewInt(0),
				types.NewInt(0), types.NewInt(0),
				types.NewString(fmt.Sprintf("stock-%d-%d", w, i)),
				types.NewInt((w*i)%int64(g.Scale.Suppliers) + 1),
			}); err != nil {
				return n, err
			}
		}
		for d := int64(1); d <= int64(g.Scale.Districts); d++ {
			if err := load(TDistrict, types.Row{
				types.NewInt(DistrictKey(w, d)), types.NewInt(w), types.NewInt(d),
				types.NewString(fmt.Sprintf("D-%d-%d", w, d)),
				types.NewFloat(float64(g.rng.Intn(20)) / 100),
				types.NewFloat(30_000),
				types.NewInt(int64(g.Scale.Orders) + 1),
			}); err != nil {
				return n, err
			}
			if err := g.loadDistrict(load, w, d); err != nil {
				return n, err
			}
		}
	}
	e.Sync()
	return n, nil
}

func (g *Generator) loadDistrict(load func(string, types.Row) error, w, d int64) error {
	for c := int64(1); c <= int64(g.Scale.Customers); c++ {
		credit := "GC"
		if g.rng.Intn(10) == 0 {
			credit = "BC"
		}
		nation := (w + c) % int64(len(nationNames))
		if g.Scale.Skew > 0 {
			// Join-crossing correlation: a warehouse's customers cluster in
			// one nation, so customer-supplier joins cross correlated keys.
			nation = w % int64(len(nationNames))
		}
		if err := load(TCustomer, types.Row{
			types.NewInt(CustomerKey(w, d, c)), types.NewInt(w), types.NewInt(d),
			types.NewInt(c),
			types.NewString(lastNames[c%10] + lastNames[(c/10)%10]),
			types.NewString(fmt.Sprintf("First%d", c)),
			types.NewString(credit), types.NewFloat(-10),
			types.NewFloat(10), types.NewInt(1), types.NewInt(0),
			types.NewString(stateFor(w + c)),
			types.NewString(fmt.Sprintf("%d%d13-555-%04d", (c%8)+1, (c%8)+1, c%10_000)),
			types.NewInt(int64(g.rng.Intn(1_000_000))),
			types.NewInt(nation),
		}); err != nil {
			return err
		}
		if err := load(THistory, types.Row{
			types.NewInt(NextHistoryKey()), types.NewInt(CustomerKey(w, d, c)),
			types.NewInt(w), types.NewInt(d), types.NewInt(0),
			types.NewFloat(10), types.NewString("initial"),
		}); err != nil {
			return err
		}
	}
	// Initial orders: one per customer 1..Orders, the last third undelivered.
	for o := int64(1); o <= int64(g.Scale.Orders); o++ {
		cID := o
		olCnt := int64(5 + g.rng.Intn(11))
		carrier := int64(1 + g.rng.Intn(10))
		delivered := o <= int64(g.Scale.Orders)*2/3
		if !delivered {
			carrier = 0
		}
		entry := int64(g.rng.Intn(1_000_000))
		if err := load(TOrders, types.Row{
			types.NewInt(OrderKey(w, d, o)), types.NewInt(w), types.NewInt(d),
			types.NewInt(o), types.NewInt(cID), types.NewInt(CustomerKey(w, d, cID)),
			types.NewInt(entry), types.NewInt(carrier), types.NewInt(olCnt),
		}); err != nil {
			return err
		}
		if !delivered {
			if err := load(TNewOrder, types.Row{
				types.NewInt(OrderKey(w, d, o)), types.NewInt(w), types.NewInt(d), types.NewInt(o),
			}); err != nil {
				return err
			}
		}
		for l := int64(1); l <= olCnt; l++ {
			item := g.genItem()
			deliveryD := entry + int64(g.rng.Intn(100))
			if !delivered {
				deliveryD = 0
			}
			if err := load(TOrderLine, types.Row{
				types.NewInt(OrderLineKey(w, d, o, l)), types.NewInt(OrderKey(w, d, o)),
				types.NewInt(w), types.NewInt(d), types.NewInt(o), types.NewInt(l),
				types.NewInt(item), types.NewInt(w), types.NewInt(deliveryD),
				types.NewInt(int64(1 + g.rng.Intn(10))),
				types.NewFloat(float64(g.rng.Intn(10_000)) / 100),
				types.NewString(fmt.Sprintf("dist-%d", d)),
			}); err != nil {
				return err
			}
		}
	}
	return nil
}

// genItem draws an item id for initial order lines, honoring Skew.
func (g *Generator) genItem() int64 {
	if g.Scale.Skew <= 0 {
		return int64(1 + g.rng.Intn(g.Scale.Items))
	}
	if g.zipf == nil {
		g.zipf = zipfFor(g.rng, g.Scale.Skew, g.Scale.Items)
	}
	return int64(g.zipf.Uint64() + 1)
}

func stateFor(n int64) string {
	states := []string{"AA", "BB", "CC", "DD", "EE", "FF", "GG", "HH", "II", "JJ"}
	return states[n%int64(len(states))]
}
