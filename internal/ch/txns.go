package ch

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"

	"htap/internal/core"
	"htap/internal/rowstore"
	"htap/internal/types"
)

// TxnType enumerates the five TPC-C transactions.
type TxnType uint8

// TPC-C transaction types.
const (
	NewOrderTxn TxnType = iota + 1
	PaymentTxn
	OrderStatusTxn
	DeliveryTxn
	StockLevelTxn
)

// String implements fmt.Stringer.
func (t TxnType) String() string {
	return [...]string{"?", "new-order", "payment", "order-status", "delivery", "stock-level"}[t]
}

// Mix returns a transaction type drawn from the standard TPC-C mix
// (45/43/4/4/4).
func Mix(rng *rand.Rand) TxnType {
	switch r := rng.Intn(100); {
	case r < 45:
		return NewOrderTxn
	case r < 88:
		return PaymentTxn
	case r < 92:
		return OrderStatusTxn
	case r < 96:
		return DeliveryTxn
	default:
		return StockLevelTxn
	}
}

// Driver executes TPC-C transactions against an engine. It keeps the
// small client-side directories a terminal emulator would (last order per
// customer, undelivered-order queues) so that OrderStatus and Delivery
// need no secondary indexes.
type Driver struct {
	E     Engine
	Scale Scale

	mu          sync.Mutex
	lastOrder   map[int64]int64   // c_key -> o_key
	undelivered map[int64][]int64 // d_key -> FIFO of o_key

	zipfMu sync.Mutex
	zipf   *rand.Zipf

	// byLast is non-nil when the engine supports the by-last-name index.
	byLast core.Indexer

	counts [6]atomic.Int64
}

// CustomerLastIndex is the secondary-index name the driver registers for
// by-last-name customer selection on engines that support indexes.
const CustomerLastIndex = "customer-by-last"

// NewDriver builds a driver whose directories match a dataset freshly
// produced by NewGenerator(scale).Load. The engine may be local
// (core.Engine) or remote (the network client): the driver only needs the
// ch.Engine surface.
func NewDriver(e Engine, scale Scale) *Driver {
	scale = scale.normalize()
	d := &Driver{
		E: e, Scale: scale,
		lastOrder:   make(map[int64]int64),
		undelivered: make(map[int64][]int64),
	}
	// TPC-C selects 60%% of Payment/Order-Status customers by last name.
	// Engines with secondary-index support serve that through an index on
	// the customer row image; others fall back to by-id selection.
	if ix, ok := e.(core.Indexer); ok {
		if err := ix.AddIndex(TCustomer, CustomerLastIndex, func(r types.Row) int64 {
			return rowstore.HashString(r[4].Str())
		}); err == nil {
			d.byLast = ix
		}
	}
	for w := int64(1); w <= int64(scale.Warehouses); w++ {
		for dist := int64(1); dist <= int64(scale.Districts); dist++ {
			for o := int64(1); o <= int64(scale.Orders); o++ {
				d.lastOrder[CustomerKey(w, dist, o)] = OrderKey(w, dist, o)
				if o > int64(scale.Orders)*2/3 {
					dk := DistrictKey(w, dist)
					d.undelivered[dk] = append(d.undelivered[dk], OrderKey(w, dist, o))
				}
			}
		}
	}
	return d
}

// Counts returns per-type completed transaction counts.
func (d *Driver) Counts() map[TxnType]int64 {
	out := make(map[TxnType]int64, 5)
	for t := NewOrderTxn; t <= StockLevelTxn; t++ {
		out[t] = d.counts[t].Load()
	}
	return out
}

// NewOrders returns the number of completed New-Order transactions (the
// numerator of tpmC).
func (d *Driver) NewOrders() int64 { return d.counts[NewOrderTxn].Load() }

// RunOne executes one transaction drawn from the standard mix.
func (d *Driver) RunOne(ctx context.Context, rng *rand.Rand) error {
	_, err := d.RunOneTyped(ctx, rng)
	return err
}

// RunOneTyped executes one transaction drawn from the standard mix and
// reports which class ran, so callers can keep per-class latency
// distributions.
func (d *Driver) RunOneTyped(ctx context.Context, rng *rand.Rand) (TxnType, error) {
	t := Mix(rng)
	var err error
	switch t {
	case NewOrderTxn:
		err = d.NewOrder(ctx, rng)
	case PaymentTxn:
		err = d.Payment(ctx, rng)
	case OrderStatusTxn:
		err = d.OrderStatus(ctx, rng)
	case DeliveryTxn:
		err = d.Delivery(ctx, rng)
	default:
		err = d.StockLevel(ctx, rng)
	}
	if err == nil {
		d.counts[t].Add(1)
	}
	return t, err
}

func (d *Driver) pickWD(rng *rand.Rand) (int64, int64) {
	return int64(1 + rng.Intn(d.Scale.Warehouses)), int64(1 + rng.Intn(d.Scale.Districts))
}

func (d *Driver) pickCustomer(rng *rand.Rand) int64 {
	return int64(1 + rng.Intn(d.Scale.Customers))
}

// pickCustomerKey selects a customer in (w, dist): by last name through the
// secondary index 60% of the time when available (TPC-C clause 2.5.1.2,
// taking the first match as the spec's "midpoint" stand-in), by id
// otherwise.
func (d *Driver) pickCustomerKey(rng *rand.Rand, w, dist int64) int64 {
	if d.byLast != nil && rng.Intn(100) < 60 {
		last := lastNames[rng.Intn(10)] + lastNames[rng.Intn(10)]
		lo, hi := CustomerKey(w, dist, 1), CustomerKey(w, dist, int64(d.Scale.Customers))
		for _, pk := range d.byLast.IndexLookup(TCustomer, CustomerLastIndex, rowstore.HashString(last)) {
			if pk >= lo && pk <= hi {
				return pk
			}
		}
	}
	return CustomerKey(w, dist, d.pickCustomer(rng))
}

// pickRemoteWarehouse selects a warehouse other than home, for the
// remote order lines and remote payments of TPC-C clauses 2.4.1.5(2) and
// 2.5.1.2. Callers gate on Scale.Warehouses > 1.
func (d *Driver) pickRemoteWarehouse(rng *rand.Rand, home int64) int64 {
	o := int64(1 + rng.Intn(d.Scale.Warehouses-1))
	if o >= home {
		o++
	}
	return o
}

// NewOrder is TPC-C's New-Order transaction: read the district to allocate
// the order id, read the customer, insert the order, new-order and its
// lines, updating stock per line. 1% of attempts roll back at the last
// line, as the specification requires, and with more than one warehouse
// 1% of lines supply from a remote warehouse's stock (clause 2.4.1.5(2))
// — the transactions that cross shards under the distributed coordinator.
func (d *Driver) NewOrder(ctx context.Context, rng *rand.Rand) error {
	w, dist := d.pickWD(rng)
	c := d.pickCustomer(rng)
	olCnt := int64(5 + rng.Intn(11))
	rollback := rng.Intn(100) == 0
	items := make([]int64, olCnt)
	qtys := make([]int64, olCnt)
	supply := make([]int64, olCnt)
	for i := range items {
		items[i] = d.pickItem(rng)
		qtys[i] = int64(1 + rng.Intn(10))
		// Supply choices are drawn outside the retry loop so a conflict
		// retry replays the same transaction.
		supply[i] = w
		if d.Scale.Warehouses > 1 && rng.Intn(100) == 0 {
			supply[i] = d.pickRemoteWarehouse(rng, w)
		}
	}
	var oKey int64
	err := core.Exec(ctx, d.E, func(tx core.Tx) error {
		drow, err := tx.Get(TDistrict, DistrictKey(w, dist))
		if err != nil {
			return err
		}
		oID := drow[6].Int()
		nd := drow.Clone()
		nd[6] = types.NewInt(oID + 1)
		if err := tx.Update(TDistrict, nd); err != nil {
			return err
		}
		if _, err := tx.Get(TCustomer, CustomerKey(w, dist, c)); err != nil {
			return err
		}
		oKey = OrderKey(w, dist, oID)
		if err := tx.Insert(TOrders, types.Row{
			types.NewInt(oKey), types.NewInt(w), types.NewInt(dist),
			types.NewInt(oID), types.NewInt(c), types.NewInt(CustomerKey(w, dist, c)),
			types.NewInt(oID * 7), types.NewInt(0), types.NewInt(olCnt),
		}); err != nil {
			return err
		}
		if err := tx.Insert(TNewOrder, types.Row{
			types.NewInt(oKey), types.NewInt(w), types.NewInt(dist), types.NewInt(oID),
		}); err != nil {
			return err
		}
		for l := int64(1); l <= olCnt; l++ {
			item := items[l-1]
			irow, err := tx.Get(TItem, ItemKey(item))
			if err != nil {
				return err
			}
			sKey := StockKey(supply[l-1], item)
			srow, err := tx.Get(TStock, sKey)
			if err != nil {
				return err
			}
			ns := srow.Clone()
			q := ns[3].Int() - qtys[l-1]
			if q < 10 {
				q += 91
			}
			ns[3] = types.NewInt(q)
			ns[4] = types.NewInt(ns[4].Int() + qtys[l-1])
			ns[5] = types.NewInt(ns[5].Int() + 1)
			if supply[l-1] != w {
				ns[6] = types.NewInt(ns[6].Int() + 1)
			}
			if err := tx.Update(TStock, ns); err != nil {
				return err
			}
			amount := float64(qtys[l-1]) * irow[4].Float()
			if err := tx.Insert(TOrderLine, types.Row{
				types.NewInt(OrderLineKey(w, dist, oID, l)), types.NewInt(oKey),
				types.NewInt(w), types.NewInt(dist), types.NewInt(oID), types.NewInt(l),
				types.NewInt(item), types.NewInt(supply[l-1]), types.NewInt(0),
				types.NewInt(qtys[l-1]), types.NewFloat(amount),
				types.NewString("dist-info"),
			}); err != nil {
				return err
			}
		}
		if rollback {
			return errUserAbort
		}
		return nil
	})
	if errors.Is(err, errUserAbort) {
		return nil // a rolled-back New-Order still counts as completed
	}
	if err != nil {
		return err
	}
	d.mu.Lock()
	d.lastOrder[CustomerKey(w, dist, c)] = oKey
	d.undelivered[DistrictKey(w, dist)] = append(d.undelivered[DistrictKey(w, dist)], oKey)
	d.mu.Unlock()
	return nil
}

var errUserAbort = errors.New("ch: simulated user abort")

// Payment updates warehouse and district YTD, the customer's balance, and
// records a history row. With more than one warehouse, 15% of payments
// are made by a customer of a remote warehouse (TPC-C clause 2.5.1.2) —
// cross-shard transactions under the distributed coordinator.
func (d *Driver) Payment(ctx context.Context, rng *rand.Rand) error {
	w, dist := d.pickWD(rng)
	cw, cd := w, dist
	if d.Scale.Warehouses > 1 && rng.Intn(100) < 15 {
		cw = d.pickRemoteWarehouse(rng, w)
		cd = int64(1 + rng.Intn(d.Scale.Districts))
	}
	cKey := d.pickCustomerKey(rng, cw, cd)
	amount := 1 + float64(rng.Intn(5000))/1.0
	return core.Exec(ctx, d.E, func(tx core.Tx) error {
		wrow, err := tx.Get(TWarehouse, WarehouseKey(w))
		if err != nil {
			return err
		}
		nw := wrow.Clone()
		nw[5] = types.NewFloat(nw[5].Float() + amount)
		if err := tx.Update(TWarehouse, nw); err != nil {
			return err
		}
		drow, err := tx.Get(TDistrict, DistrictKey(w, dist))
		if err != nil {
			return err
		}
		nd := drow.Clone()
		nd[5] = types.NewFloat(nd[5].Float() + amount)
		if err := tx.Update(TDistrict, nd); err != nil {
			return err
		}
		crow, err := tx.Get(TCustomer, cKey)
		if err != nil {
			return err
		}
		nc := crow.Clone()
		nc[7] = types.NewFloat(nc[7].Float() - amount)
		nc[8] = types.NewFloat(nc[8].Float() + amount)
		nc[9] = types.NewInt(nc[9].Int() + 1)
		if err := tx.Update(TCustomer, nc); err != nil {
			return err
		}
		return tx.Insert(THistory, types.Row{
			types.NewInt(NextHistoryKey()), types.NewInt(cKey),
			types.NewInt(w), types.NewInt(dist), types.NewInt(0),
			types.NewFloat(amount), types.NewString("payment"),
		})
	})
}

// OrderStatus reads a customer's balance and the lines of their most
// recent order.
func (d *Driver) OrderStatus(ctx context.Context, rng *rand.Rand) error {
	w, dist := d.pickWD(rng)
	cKey := d.pickCustomerKey(rng, w, dist)
	d.mu.Lock()
	oKey, has := d.lastOrder[cKey]
	d.mu.Unlock()
	return core.Exec(ctx, d.E, func(tx core.Tx) error {
		if _, err := tx.Get(TCustomer, cKey); err != nil {
			return err
		}
		if !has {
			return nil
		}
		orow, err := tx.Get(TOrders, oKey)
		if err != nil {
			return nil // order may have been trimmed; status is still valid
		}
		olCnt := orow[8].Int()
		wID, dID, oID := orow[1].Int(), orow[2].Int(), orow[3].Int()
		for l := int64(1); l <= olCnt; l++ {
			if _, err := tx.Get(TOrderLine, OrderLineKey(wID, dID, oID, l)); err != nil {
				return fmt.Errorf("ch: order %d missing line %d: %w", oKey, l, err)
			}
		}
		return nil
	})
}

// Delivery pops the oldest undelivered order of one district, deletes its
// new-order row, stamps the carrier and delivery dates, and credits the
// customer.
func (d *Driver) Delivery(ctx context.Context, rng *rand.Rand) error {
	w, dist := d.pickWD(rng)
	dk := DistrictKey(w, dist)
	d.mu.Lock()
	queue := d.undelivered[dk]
	if len(queue) == 0 {
		d.mu.Unlock()
		return nil // nothing to deliver is a legal no-op
	}
	oKey := queue[0]
	d.undelivered[dk] = queue[1:]
	d.mu.Unlock()

	err := core.Exec(ctx, d.E, func(tx core.Tx) error {
		orow, err := tx.Get(TOrders, oKey)
		if err != nil {
			return err
		}
		if err := tx.Delete(TNewOrder, oKey); err != nil && !errors.Is(err, core.ErrNotFound) {
			return err
		}
		no := orow.Clone()
		no[7] = types.NewInt(int64(1 + rng.Intn(10)))
		if err := tx.Update(TOrders, no); err != nil {
			return err
		}
		olCnt := orow[8].Int()
		wID, dID, oID := orow[1].Int(), orow[2].Int(), orow[3].Int()
		total := 0.0
		for l := int64(1); l <= olCnt; l++ {
			lrow, err := tx.Get(TOrderLine, OrderLineKey(wID, dID, oID, l))
			if err != nil {
				return err
			}
			nl := lrow.Clone()
			nl[8] = types.NewInt(oID*7 + 100)
			if err := tx.Update(TOrderLine, nl); err != nil {
				return err
			}
			total += lrow[10].Float()
		}
		crow, err := tx.Get(TCustomer, orow[5].Int())
		if err != nil {
			return err
		}
		nc := crow.Clone()
		nc[7] = types.NewFloat(nc[7].Float() + total)
		nc[10] = types.NewInt(nc[10].Int() + 1)
		return tx.Update(TCustomer, nc)
	})
	if err != nil {
		// Put the order back so it is eventually delivered.
		d.mu.Lock()
		d.undelivered[dk] = append([]int64{oKey}, d.undelivered[dk]...)
		d.mu.Unlock()
	}
	return err
}

// StockLevel counts recently sold items whose stock is below a threshold.
func (d *Driver) StockLevel(ctx context.Context, rng *rand.Rand) error {
	w, dist := d.pickWD(rng)
	threshold := int64(10 + rng.Intn(11))
	return core.Exec(ctx, d.E, func(tx core.Tx) error {
		drow, err := tx.Get(TDistrict, DistrictKey(w, dist))
		if err != nil {
			return err
		}
		next := drow[6].Int()
		seen := make(map[int64]struct{})
		for o := next - 20; o < next; o++ {
			if o < 1 {
				continue
			}
			orow, err := tx.Get(TOrders, OrderKey(w, dist, o))
			if err != nil {
				continue
			}
			olCnt := orow[8].Int()
			for l := int64(1); l <= olCnt; l++ {
				lrow, err := tx.Get(TOrderLine, OrderLineKey(w, dist, o, l))
				if err != nil {
					continue
				}
				seen[lrow[6].Int()] = struct{}{}
			}
		}
		low := 0
		for item := range seen {
			srow, err := tx.Get(TStock, StockKey(w, item))
			if err != nil {
				continue
			}
			if srow[3].Int() < threshold {
				low++
			}
		}
		_ = low
		return nil
	})
}
