package ch

import (
	"fmt"
	"sort"

	"htap/internal/exec"
	"htap/internal/types"
)

// Queryer is the analytical surface the queries run against; core.Engine
// satisfies it.
type Queryer interface {
	Query(table string, cols []string, pred *exec.ScanPred) *exec.Plan
}

// QueryFunc executes one CH query and returns its result rows.
type QueryFunc func(Queryer) []types.Row

// Queries returns the 22 CH-benCHmark analytical queries, indexed 1..22.
// Each is the CH query adapted to this repository's schema and
// relational-algebra builder (see EXPERIMENTS.md for the adaptation notes);
// correlated subqueries are evaluated in explicit phases, as a simple
// optimizer would decorrelate them.
func Queries() map[int]QueryFunc {
	return map[int]QueryFunc{
		1: Q1, 2: Q2, 3: Q3, 4: Q4, 5: Q5, 6: Q6, 7: Q7, 8: Q8,
		9: Q9, 10: Q10, 11: Q11, 12: Q12, 13: Q13, 14: Q14, 15: Q15,
		16: Q16, 17: Q17, 18: Q18, 19: Q19, 20: Q20, 21: Q21, 22: Q22,
	}
}

func c(name string) exec.Expr                 { return exec.ColName(name) }
func ci(v int64) exec.Expr                    { return exec.ConstInt(v) }
func cf(v float64) exec.Expr                  { return exec.ConstFloat(v) }
func cs(v string) exec.Expr                   { return exec.ConstStr(v) }
func ne(n string, e exec.Expr) exec.NamedExpr { return exec.NamedExpr{Name: n, Expr: e} }

// Q1: order-line pricing summary by line number for recently delivered
// lines.
func Q1(e Queryer) []types.Row {
	return e.Query(TOrderLine, []string{"ol_number", "ol_quantity", "ol_amount", "ol_delivery_d"}, nil).
		Filter(exec.Cmp(exec.GT, c("ol_delivery_d"), ci(0))).
		Agg([]string{"ol_number"},
			exec.Agg{Kind: exec.Sum, Expr: c("ol_quantity"), Name: "sum_qty"},
			exec.Agg{Kind: exec.Sum, Expr: c("ol_amount"), Name: "sum_amount"},
			exec.Agg{Kind: exec.Avg, Expr: c("ol_quantity"), Name: "avg_qty"},
			exec.Agg{Kind: exec.Avg, Expr: c("ol_amount"), Name: "avg_amount"},
			exec.Agg{Kind: exec.Count, Name: "count_order"},
		).
		Sort(exec.SortKey{Col: "ol_number"}).Run()
}

// Q2: cheapest-stock supplier per item within one region.
func Q2(e Queryer) []types.Row {
	// Phase 1: minimum stock quantity per item across EUROPE suppliers.
	mins := e.Query(TStock, []string{"s_i_id", "s_quantity", "s_su_suppkey"}, nil).
		Join(e.Query(TSupplier, []string{"su_suppkey", "su_name", "su_nationkey"}, nil),
			[]string{"s_su_suppkey"}, []string{"su_suppkey"}).
		Join(e.Query(TNation, []string{"n_nationkey", "n_regionkey"}, nil),
			[]string{"su_nationkey"}, []string{"n_nationkey"}).
		Join(e.Query(TRegion, []string{"r_regionkey", "r_name"}, nil).
			Filter(exec.Cmp(exec.EQ, c("r_name"), cs("EUROPE"))),
			[]string{"n_regionkey"}, []string{"r_regionkey"}).
		Agg([]string{"s_i_id"}, exec.Agg{Kind: exec.Min, Expr: c("s_quantity"), Name: "min_qty"})
	minRows := mins.Run()
	minByItem := make(map[int64]int64, len(minRows))
	for _, r := range minRows {
		minByItem[r[0].Int()] = r[1].Int()
	}
	// Phase 2: emit the EUROPE supplier rows achieving the minimum.
	// Joined columns: s_i_id s_quantity s_su_suppkey su_suppkey su_name
	// su_nationkey n_nationkey n_name n_regionkey r_regionkey r_name i_id
	// i_name.
	rows := e.Query(TStock, []string{"s_i_id", "s_quantity", "s_su_suppkey"}, nil).
		Join(e.Query(TSupplier, []string{"su_suppkey", "su_name", "su_nationkey"}, nil),
			[]string{"s_su_suppkey"}, []string{"su_suppkey"}).
		Join(e.Query(TNation, []string{"n_nationkey", "n_name", "n_regionkey"}, nil),
			[]string{"su_nationkey"}, []string{"n_nationkey"}).
		Join(e.Query(TRegion, []string{"r_regionkey", "r_name"}, nil).
			Filter(exec.Cmp(exec.EQ, c("r_name"), cs("EUROPE"))),
			[]string{"n_regionkey"}, []string{"r_regionkey"}).
		Join(e.Query(TItem, []string{"i_id", "i_name"}, nil),
			[]string{"s_i_id"}, []string{"i_id"}).
		Run()
	var out []types.Row
	for _, r := range rows {
		item, qty := r[0].Int(), r[1].Int()
		if mq, ok := minByItem[item]; ok && qty == mq {
			out = append(out, types.Row{r[4], r[7], r[0], r[12]})
		}
	}
	if len(out) > 100 {
		out = out[:100]
	}
	return out
}

// Q3: unshipped orders with potential revenue, for customers in states
// starting with 'A'.
func Q3(e Queryer) []types.Row {
	return e.Query(TCustomer, []string{"c_key", "c_state"}, nil).
		Filter(exec.HasPrefix(c("c_state"), "A")).
		Join(e.Query(TOrders, []string{"o_key", "o_c_key", "o_entry_d"}, nil),
			[]string{"c_key"}, []string{"o_c_key"}).
		Join(e.Query(TNewOrder, []string{"no_key"}, nil), []string{"o_key"}, []string{"no_key"}).
		Join(e.Query(TOrderLine, []string{"ol_o_key", "ol_amount"}, nil),
			[]string{"o_key"}, []string{"ol_o_key"}).
		Agg([]string{"o_key", "o_entry_d"},
			exec.Agg{Kind: exec.Sum, Expr: c("ol_amount"), Name: "revenue"}).
		Sort(exec.SortKey{Col: "revenue", Desc: true}, exec.SortKey{Col: "o_entry_d"}).
		Limit(100).Run()
}

// Q4: order counts by line count for orders where some line was delivered
// on or after the order date.
func Q4(e Queryer) []types.Row {
	return e.Query(TOrders, []string{"o_key", "o_ol_cnt", "o_entry_d"}, nil).
		Join(e.Query(TOrderLine, []string{"ol_o_key", "ol_delivery_d"}, nil),
			[]string{"o_key"}, []string{"ol_o_key"}).
		Filter(exec.Cmp(exec.GE, c("ol_delivery_d"), c("o_entry_d"))).
		Project(ne("o_key", c("o_key")), ne("o_ol_cnt", c("o_ol_cnt"))).
		Distinct().
		Agg([]string{"o_ol_cnt"}, exec.Agg{Kind: exec.Count, Name: "order_count"}).
		Sort(exec.SortKey{Col: "o_ol_cnt"}).Run()
}

// Q5: revenue per nation for one region, customers and suppliers in the
// same nation.
func Q5(e Queryer) []types.Row {
	return e.Query(TCustomer, []string{"c_key", "c_n_nationkey"}, nil).
		Join(e.Query(TOrders, []string{"o_key", "o_c_key"}, nil),
			[]string{"c_key"}, []string{"o_c_key"}).
		Join(e.Query(TOrderLine, []string{"ol_o_key", "ol_amount", "ol_supply_w_id", "ol_i_id"}, nil),
			[]string{"o_key"}, []string{"ol_o_key"}).
		Join(e.Query(TNation, []string{"n_nationkey", "n_name", "n_regionkey"}, nil),
			[]string{"c_n_nationkey"}, []string{"n_nationkey"}).
		Join(e.Query(TRegion, []string{"r_regionkey", "r_name"}, nil).
			Filter(exec.Cmp(exec.EQ, c("r_name"), cs("EUROPE"))),
			[]string{"n_regionkey"}, []string{"r_regionkey"}).
		Agg([]string{"n_name"}, exec.Agg{Kind: exec.Sum, Expr: c("ol_amount"), Name: "revenue"}).
		Sort(exec.SortKey{Col: "revenue", Desc: true}).Run()
}

// Q6: total revenue from high-quantity recent lines.
func Q6(e Queryer) []types.Row {
	return e.Query(TOrderLine, []string{"ol_quantity", "ol_amount", "ol_delivery_d"}, nil).
		Filter(exec.And(
			exec.Cmp(exec.GT, c("ol_delivery_d"), ci(0)),
			exec.Between(c("ol_quantity"), 1, 100_000),
		)).
		Agg(nil, exec.Agg{Kind: exec.Sum, Expr: c("ol_amount"), Name: "revenue"}).Run()
}

// Q7: trade volume between two nations.
func Q7(e Queryer) []types.Row {
	return e.Query(TOrderLine, []string{"ol_o_key", "ol_amount", "ol_supply_w_id", "ol_i_id"}, nil).
		Project(
			ne("sl_key", exec.Arith(exec.Add,
				exec.Arith(exec.Mul, c("ol_supply_w_id"), ci(1_000_000)), c("ol_i_id"))),
			ne("ol_o_key", c("ol_o_key")),
			ne("ol_amount", c("ol_amount")),
		).
		Join(e.Query(TStock, []string{"s_key", "s_su_suppkey"}, nil),
			[]string{"sl_key"}, []string{"s_key"}).
		Join(e.Query(TSupplier, []string{"su_suppkey", "su_nationkey"}, nil),
			[]string{"s_su_suppkey"}, []string{"su_suppkey"}).
		Join(e.Query(TOrders, []string{"o_key", "o_c_key"}, nil),
			[]string{"ol_o_key"}, []string{"o_key"}).
		Join(e.Query(TCustomer, []string{"c_key", "c_n_nationkey"}, nil),
			[]string{"o_c_key"}, []string{"c_key"}).
		Filter(exec.Or(
			exec.And(exec.Cmp(exec.EQ, c("su_nationkey"), ci(0)), exec.Cmp(exec.EQ, c("c_n_nationkey"), ci(1))),
			exec.And(exec.Cmp(exec.EQ, c("su_nationkey"), ci(1)), exec.Cmp(exec.EQ, c("c_n_nationkey"), ci(0))),
		)).
		Agg([]string{"su_nationkey", "c_n_nationkey"},
			exec.Agg{Kind: exec.Sum, Expr: c("ol_amount"), Name: "revenue"}).
		Sort(exec.SortKey{Col: "su_nationkey"}).Run()
}

// Q8: market share of GERMANY suppliers in EUROPE customers' purchases,
// per "year" (a coarse bucket of the order entry date).
func Q8(e Queryer) []types.Row {
	return e.Query(TOrderLine, []string{"ol_o_key", "ol_amount", "ol_supply_w_id", "ol_i_id"}, nil).
		Project(
			ne("sl_key", exec.Arith(exec.Add,
				exec.Arith(exec.Mul, c("ol_supply_w_id"), ci(1_000_000)), c("ol_i_id"))),
			ne("ol_o_key", c("ol_o_key")),
			ne("ol_amount", c("ol_amount")),
		).
		Join(e.Query(TStock, []string{"s_key", "s_su_suppkey"}, nil),
			[]string{"sl_key"}, []string{"s_key"}).
		Join(e.Query(TSupplier, []string{"su_suppkey", "su_nationkey"}, nil),
			[]string{"s_su_suppkey"}, []string{"su_suppkey"}).
		Join(e.Query(TOrders, []string{"o_key", "o_c_key", "o_entry_d"}, nil),
			[]string{"ol_o_key"}, []string{"o_key"}).
		Join(e.Query(TCustomer, []string{"c_key", "c_n_nationkey"}, nil),
			[]string{"o_c_key"}, []string{"c_key"}).
		Join(e.Query(TNation, []string{"n_nationkey", "n_regionkey"}, nil),
			[]string{"c_n_nationkey"}, []string{"n_nationkey"}).
		Join(e.Query(TRegion, []string{"r_regionkey", "r_name"}, nil).
			Filter(exec.Cmp(exec.EQ, c("r_name"), cs("EUROPE"))),
			[]string{"n_regionkey"}, []string{"r_regionkey"}).
		Project(
			ne("year", exec.Arith(exec.Mul, exec.Arith(exec.Div, c("o_entry_d"), ci(100_000)), ci(1))),
			ne("german", exec.If(exec.Cmp(exec.EQ, c("su_nationkey"), ci(0)), c("ol_amount"), cf(0))),
			ne("ol_amount", c("ol_amount")),
		).
		Agg([]string{"year"},
			exec.Agg{Kind: exec.Sum, Expr: c("german"), Name: "mkt_share_num"},
			exec.Agg{Kind: exec.Sum, Expr: c("ol_amount"), Name: "mkt_share_den"},
		).
		Sort(exec.SortKey{Col: "year"}).Run()
}

// Q9: profit per supplier nation and year for promotional items.
func Q9(e Queryer) []types.Row {
	return e.Query(TOrderLine, []string{"ol_o_key", "ol_amount", "ol_supply_w_id", "ol_i_id"}, nil).
		Join(e.Query(TItem, []string{"i_id", "i_data"}, nil).
			Filter(exec.HasPrefix(c("i_data"), "item")),
			[]string{"ol_i_id"}, []string{"i_id"}).
		Project(
			ne("sl_key", exec.Arith(exec.Add,
				exec.Arith(exec.Mul, c("ol_supply_w_id"), ci(1_000_000)), c("ol_i_id"))),
			ne("ol_o_key", c("ol_o_key")),
			ne("ol_amount", c("ol_amount")),
		).
		Join(e.Query(TStock, []string{"s_key", "s_su_suppkey"}, nil),
			[]string{"sl_key"}, []string{"s_key"}).
		Join(e.Query(TSupplier, []string{"su_suppkey", "su_nationkey"}, nil),
			[]string{"s_su_suppkey"}, []string{"su_suppkey"}).
		Join(e.Query(TNation, []string{"n_nationkey", "n_name"}, nil),
			[]string{"su_nationkey"}, []string{"n_nationkey"}).
		Join(e.Query(TOrders, []string{"o_key", "o_entry_d"}, nil),
			[]string{"ol_o_key"}, []string{"o_key"}).
		Project(
			ne("n_name", c("n_name")),
			ne("year", exec.Arith(exec.Mul, exec.Arith(exec.Div, c("o_entry_d"), ci(100_000)), ci(1))),
			ne("ol_amount", c("ol_amount")),
		).
		Agg([]string{"n_name", "year"},
			exec.Agg{Kind: exec.Sum, Expr: c("ol_amount"), Name: "sum_profit"}).
		Sort(exec.SortKey{Col: "n_name"}, exec.SortKey{Col: "year", Desc: true}).Run()
}

// Q10: top customers by recent revenue.
func Q10(e Queryer) []types.Row {
	return e.Query(TCustomer, []string{"c_key", "c_id", "c_last", "c_state", "c_n_nationkey"}, nil).
		Join(e.Query(TOrders, []string{"o_key", "o_c_key", "o_entry_d"}, nil),
			[]string{"c_key"}, []string{"o_c_key"}).
		Join(e.Query(TOrderLine, []string{"ol_o_key", "ol_amount"}, nil),
			[]string{"o_key"}, []string{"ol_o_key"}).
		Join(e.Query(TNation, []string{"n_nationkey", "n_name"}, nil),
			[]string{"c_n_nationkey"}, []string{"n_nationkey"}).
		Agg([]string{"c_key", "c_last", "n_name"},
			exec.Agg{Kind: exec.Sum, Expr: c("ol_amount"), Name: "revenue"}).
		Sort(exec.SortKey{Col: "revenue", Desc: true}).
		Limit(20).Run()
}

// Q11: most important stock items for one nation's suppliers (share above
// a per-mille threshold of the national total).
func Q11(e Queryer) []types.Row {
	base := func() *exec.Plan {
		return e.Query(TStock, []string{"s_i_id", "s_order_cnt", "s_su_suppkey"}, nil).
			Join(e.Query(TSupplier, []string{"su_suppkey", "su_nationkey"}, nil),
				[]string{"s_su_suppkey"}, []string{"su_suppkey"}).
			Join(e.Query(TNation, []string{"n_nationkey", "n_name"}, nil).
				Filter(exec.Cmp(exec.EQ, c("n_name"), cs("GERMANY"))),
				[]string{"su_nationkey"}, []string{"n_nationkey"})
	}
	totalRows := base().Agg(nil, exec.Agg{Kind: exec.Sum, Expr: c("s_order_cnt"), Name: "t"}).Run()
	threshold := totalRows[0][0].Float() * 0.005
	rows := base().
		Agg([]string{"s_i_id"}, exec.Agg{Kind: exec.Sum, Expr: c("s_order_cnt"), Name: "ordercount"}).
		Sort(exec.SortKey{Col: "ordercount", Desc: true}).Run()
	var out []types.Row
	for _, r := range rows {
		if r[1].Float() > threshold {
			out = append(out, r)
		}
	}
	return out
}

// Q12: delivered order lines by order-priority bucket.
func Q12(e Queryer) []types.Row {
	return e.Query(TOrders, []string{"o_key", "o_carrier_id", "o_entry_d"}, nil).
		Join(e.Query(TOrderLine, []string{"ol_o_key", "ol_delivery_d"}, nil),
			[]string{"o_key"}, []string{"ol_o_key"}).
		Filter(exec.And(
			exec.Cmp(exec.GT, c("ol_delivery_d"), ci(0)),
			exec.Cmp(exec.GE, c("ol_delivery_d"), c("o_entry_d")),
		)).
		Project(
			ne("high", exec.If(exec.InInts(c("o_carrier_id"), 1, 2), ci(1), ci(0))),
			ne("low", exec.If(exec.InInts(c("o_carrier_id"), 1, 2), ci(0), ci(1))),
		).
		Agg(nil,
			exec.Agg{Kind: exec.Sum, Expr: c("high"), Name: "high_line_count"},
			exec.Agg{Kind: exec.Sum, Expr: c("low"), Name: "low_line_count"},
		).Run()
}

// Q13: distribution of customers by number of (carrier-filtered) orders.
func Q13(e Queryer) []types.Row {
	perCustomer := e.Query(TOrders, []string{"o_c_key", "o_carrier_id"}, nil).
		Filter(exec.Cmp(exec.GT, c("o_carrier_id"), ci(1))).
		Agg([]string{"o_c_key"}, exec.Agg{Kind: exec.Count, Name: "c_count"})
	return perCustomer.
		Agg([]string{"c_count"}, exec.Agg{Kind: exec.Count, Name: "custdist"}).
		Sort(exec.SortKey{Col: "custdist", Desc: true}, exec.SortKey{Col: "c_count", Desc: true}).
		Run()
}

// Q14: promotion revenue share among delivered lines.
func Q14(e Queryer) []types.Row {
	rows := e.Query(TOrderLine, []string{"ol_i_id", "ol_amount", "ol_delivery_d"}, nil).
		Filter(exec.Cmp(exec.GT, c("ol_delivery_d"), ci(0))).
		Join(e.Query(TItem, []string{"i_id", "i_data"}, nil),
			[]string{"ol_i_id"}, []string{"i_id"}).
		Project(
			ne("promo", exec.If(exec.HasPrefix(c("i_data"), "item-data-1"), c("ol_amount"), cf(0))),
			ne("ol_amount", c("ol_amount")),
		).
		Agg(nil,
			exec.Agg{Kind: exec.Sum, Expr: c("promo"), Name: "promo"},
			exec.Agg{Kind: exec.Sum, Expr: c("ol_amount"), Name: "total"},
		).Run()
	promo, total := rows[0][0].Float(), rows[0][1].Float()
	share := 0.0
	if total > 0 {
		share = 100 * promo / total
	}
	return []types.Row{{types.NewFloat(share)}}
}

// Q15: suppliers achieving the maximum revenue.
func Q15(e Queryer) []types.Row {
	revenue := func() *exec.Plan {
		return e.Query(TOrderLine, []string{"ol_supply_w_id", "ol_i_id", "ol_amount", "ol_delivery_d"}, nil).
			Filter(exec.Cmp(exec.GT, c("ol_delivery_d"), ci(0))).
			Project(
				ne("sl_key", exec.Arith(exec.Add,
					exec.Arith(exec.Mul, c("ol_supply_w_id"), ci(1_000_000)), c("ol_i_id"))),
				ne("ol_amount", c("ol_amount")),
			).
			Join(e.Query(TStock, []string{"s_key", "s_su_suppkey"}, nil),
				[]string{"sl_key"}, []string{"s_key"}).
			Agg([]string{"s_su_suppkey"}, exec.Agg{Kind: exec.Sum, Expr: c("ol_amount"), Name: "total_revenue"})
	}
	maxRows := revenue().Agg(nil, exec.Agg{Kind: exec.Max, Expr: c("total_revenue"), Name: "m"}).Run()
	maxRev := maxRows[0][0].Float()
	return revenue().
		Filter(exec.Cmp(exec.GE, c("total_revenue"), cf(maxRev))).
		Join(e.Query(TSupplier, []string{"su_suppkey", "su_name"}, nil),
			[]string{"s_su_suppkey"}, []string{"su_suppkey"}).
		Sort(exec.SortKey{Col: "su_suppkey"}).Run()
}

// Q16: supplier counts per item name prefix for non-excluded items.
func Q16(e Queryer) []types.Row {
	return e.Query(TStock, []string{"s_i_id", "s_su_suppkey"}, nil).
		Join(e.Query(TItem, []string{"i_id", "i_name", "i_data"}, nil).
			Filter(exec.Not(exec.HasPrefix(c("i_data"), "zz"))),
			[]string{"s_i_id"}, []string{"i_id"}).
		Project(
			ne("brand", exec.Substr(c("i_name"), 0, 6)),
			ne("s_su_suppkey", c("s_su_suppkey")),
		).
		Distinct().
		Agg([]string{"brand"}, exec.Agg{Kind: exec.Count, Name: "supplier_cnt"}).
		Sort(exec.SortKey{Col: "supplier_cnt", Desc: true}).Run()
}

// Q17: revenue that would be lost without small-quantity orders.
func Q17(e Queryer) []types.Row {
	avgRows := e.Query(TOrderLine, []string{"ol_i_id", "ol_quantity"}, nil).
		Agg([]string{"ol_i_id"}, exec.Agg{Kind: exec.Avg, Expr: c("ol_quantity"), Name: "a"}).Run()
	avgByItem := make(map[int64]float64, len(avgRows))
	for _, r := range avgRows {
		avgByItem[r[0].Int()] = r[1].Float()
	}
	rows := e.Query(TOrderLine, []string{"ol_i_id", "ol_quantity", "ol_amount"}, nil).Run()
	// Sum in sorted order: the qualifying amounts form a multiset, and a
	// fixed association makes the result independent of scan order (which
	// storage layout, shard count, and rebalancing may all change).
	var amounts []float64
	for _, r := range rows {
		if float64(r[1].Int()) < avgByItem[r[0].Int()] {
			amounts = append(amounts, r[2].Float())
		}
	}
	sort.Float64s(amounts)
	sum := 0.0
	for _, a := range amounts {
		sum += a
	}
	return []types.Row{{types.NewFloat(sum / 2)}}
}

// Q18: large-volume customers.
func Q18(e Queryer) []types.Row {
	return e.Query(TCustomer, []string{"c_key", "c_last"}, nil).
		Join(e.Query(TOrders, []string{"o_key", "o_c_key", "o_ol_cnt"}, nil),
			[]string{"c_key"}, []string{"o_c_key"}).
		Join(e.Query(TOrderLine, []string{"ol_o_key", "ol_amount"}, nil),
			[]string{"o_key"}, []string{"ol_o_key"}).
		Agg([]string{"c_key", "c_last", "o_key"},
			exec.Agg{Kind: exec.Sum, Expr: c("ol_amount"), Name: "amount"}).
		Filter(exec.Cmp(exec.GT, c("amount"), cf(200))).
		Sort(exec.SortKey{Col: "amount", Desc: true}).
		Limit(100).Run()
}

// Q19: revenue from quantity- and price-banded lines in selected
// warehouses.
func Q19(e Queryer) []types.Row {
	return e.Query(TOrderLine, []string{"ol_i_id", "ol_quantity", "ol_amount", "ol_w_id"}, nil).
		Join(e.Query(TItem, []string{"i_id", "i_price"}, nil),
			[]string{"ol_i_id"}, []string{"i_id"}).
		Filter(exec.Or(
			exec.And(exec.Between(c("ol_quantity"), 1, 5),
				exec.Cmp(exec.GE, c("i_price"), cf(1)), exec.InInts(c("ol_w_id"), 1, 2, 3)),
			exec.And(exec.Between(c("ol_quantity"), 1, 10),
				exec.Cmp(exec.GE, c("i_price"), cf(10)), exec.InInts(c("ol_w_id"), 1, 2, 4)),
		)).
		Agg(nil, exec.Agg{Kind: exec.Sum, Expr: c("ol_amount"), Name: "revenue"}).Run()
}

// Q20: suppliers with excess stock of recently sold prefix-matched items.
func Q20(e Queryer) []types.Row {
	soldRows := e.Query(TOrderLine, []string{"ol_i_id", "ol_quantity", "ol_delivery_d"}, nil).
		Filter(exec.Cmp(exec.GT, c("ol_delivery_d"), ci(0))).
		Agg([]string{"ol_i_id"}, exec.Agg{Kind: exec.Sum, Expr: c("ol_quantity"), Name: "sold"}).Run()
	sold := make(map[int64]int64, len(soldRows))
	for _, r := range soldRows {
		sold[r[0].Int()] = r[1].Int()
	}
	rows := e.Query(TStock, []string{"s_i_id", "s_quantity", "s_su_suppkey"}, nil).
		Join(e.Query(TItem, []string{"i_id", "i_name"}, nil).
			Filter(exec.HasPrefix(c("i_name"), "item-1")),
			[]string{"s_i_id"}, []string{"i_id"}).
		Run()
	hit := make(map[int64]bool)
	for _, r := range rows {
		item, qty, supp := r[0].Int(), r[1].Int(), r[2].Int()
		if s, ok := sold[item]; ok && float64(qty) > float64(s)/2 {
			hit[supp] = true
		}
	}
	return e.Query(TSupplier, []string{"su_suppkey", "su_name", "su_nationkey"}, nil).
		Join(e.Query(TNation, []string{"n_nationkey", "n_name"}, nil).
			Filter(exec.Cmp(exec.EQ, c("n_name"), cs("GERMANY"))),
			[]string{"su_nationkey"}, []string{"n_nationkey"}).
		Filter(exec.InInts(c("su_suppkey"), keys(hit)...)).
		Sort(exec.SortKey{Col: "su_name"}).Run()
}

func keys(m map[int64]bool) []int64 {
	out := make([]int64, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	if len(out) == 0 {
		out = append(out, -1) // IN () is false; keep the filter well-formed
	}
	return out
}

// Q21: suppliers whose deliveries were late, for one nation.
func Q21(e Queryer) []types.Row {
	return e.Query(TOrderLine, []string{"ol_o_key", "ol_supply_w_id", "ol_i_id", "ol_delivery_d"}, nil).
		Join(e.Query(TOrders, []string{"o_key", "o_entry_d"}, nil),
			[]string{"ol_o_key"}, []string{"o_key"}).
		Filter(exec.And(
			exec.Cmp(exec.GT, c("ol_delivery_d"), ci(0)),
			exec.Cmp(exec.GT, c("ol_delivery_d"), c("o_entry_d")),
		)).
		Project(
			ne("sl_key", exec.Arith(exec.Add,
				exec.Arith(exec.Mul, c("ol_supply_w_id"), ci(1_000_000)), c("ol_i_id"))),
		).
		Join(e.Query(TStock, []string{"s_key", "s_su_suppkey"}, nil),
			[]string{"sl_key"}, []string{"s_key"}).
		Join(e.Query(TSupplier, []string{"su_suppkey", "su_name", "su_nationkey"}, nil),
			[]string{"s_su_suppkey"}, []string{"su_suppkey"}).
		Join(e.Query(TNation, []string{"n_nationkey", "n_name"}, nil).
			Filter(exec.Cmp(exec.EQ, c("n_name"), cs("GERMANY"))),
			[]string{"su_nationkey"}, []string{"n_nationkey"}).
		Agg([]string{"su_name"}, exec.Agg{Kind: exec.Count, Name: "numwait"}).
		Sort(exec.SortKey{Col: "numwait", Desc: true}, exec.SortKey{Col: "su_name"}).
		Limit(100).Run()
}

// Q22: sales opportunities among never-ordering customers with
// above-average balances, by phone country code.
func Q22(e Queryer) []types.Row {
	avgRows := e.Query(TCustomer, []string{"c_balance"}, nil).
		Filter(exec.Cmp(exec.GT, c("c_balance"), cf(0))).
		Agg(nil, exec.Agg{Kind: exec.Avg, Expr: c("c_balance"), Name: "a"}).Run()
	avg := avgRows[0][0].Float()
	return e.Query(TCustomer, []string{"c_key", "c_balance", "c_phone"}, nil).
		Filter(exec.And(
			exec.Cmp(exec.GT, c("c_balance"), cf(avg)),
			exec.Or(
				exec.HasPrefix(c("c_phone"), "11"), exec.HasPrefix(c("c_phone"), "22"),
				exec.HasPrefix(c("c_phone"), "33"), exec.HasPrefix(c("c_phone"), "44"),
			),
		)).
		AntiJoin(e.Query(TOrders, []string{"o_c_key"}, nil), []string{"c_key"}, []string{"o_c_key"}).
		Project(
			ne("country", exec.Substr(c("c_phone"), 0, 2)),
			ne("c_balance", c("c_balance")),
		).
		Agg([]string{"country"},
			exec.Agg{Kind: exec.Count, Name: "numcust"},
			exec.Agg{Kind: exec.Sum, Expr: c("c_balance"), Name: "totacctbal"},
		).
		Sort(exec.SortKey{Col: "country"}).Run()
}

// Names returns human-readable query labels.
func Names() map[int]string {
	out := make(map[int]string, 22)
	for i := 1; i <= 22; i++ {
		out[i] = fmt.Sprintf("CH-Q%02d", i)
	}
	return out
}
