package ch

import (
	"context"
	"fmt"
	"math/rand"
	"testing"

	"htap/internal/core"
	"htap/internal/disk"
	"htap/internal/exec"
	"htap/internal/types"
)

func newEngineA() core.Engine {
	return core.NewEngineA(core.ConfigA{Schemas: Schemas()})
}

func loadSmall(t testing.TB, e core.Engine, warehouses int) Scale {
	t.Helper()
	s := SmallScale(warehouses)
	if _, err := NewGenerator(s).Load(e); err != nil {
		t.Fatal(err)
	}
	return s
}

func TestKeyPackingInjective(t *testing.T) {
	seen := make(map[int64]string)
	put := func(k int64, what string) {
		if prev, dup := seen[k]; dup {
			t.Fatalf("key collision: %s and %s -> %d", prev, what, k)
		}
		seen[k] = what
	}
	for w := int64(1); w <= 3; w++ {
		for d := int64(1); d <= 10; d++ {
			put(DistrictKey(w, d), fmt.Sprintf("district %d/%d", w, d))
			for c := int64(1); c <= 5; c++ {
				put(CustomerKey(w, d, c), fmt.Sprintf("cust %d/%d/%d", w, d, c))
			}
			for o := int64(1); o <= 5; o++ {
				put(OrderKey(w, d, o), fmt.Sprintf("order %d/%d/%d", w, d, o))
				for l := int64(1); l <= 15; l++ {
					put(OrderLineKey(w, d, o, l), fmt.Sprintf("ol %d/%d/%d/%d", w, d, o, l))
				}
			}
		}
	}
}

func TestGeneratorCardinalities(t *testing.T) {
	e := newEngineA()
	defer e.Close()
	s := loadSmall(t, e, 2)

	counts := map[string]int{
		TWarehouse: s.Warehouses,
		TDistrict:  s.Warehouses * s.Districts,
		TCustomer:  s.Warehouses * s.Districts * s.Customers,
		TItem:      s.Items,
		TStock:     s.Warehouses * s.Items,
		TOrders:    s.Warehouses * s.Districts * s.Orders,
		TSupplier:  s.Suppliers,
		TNation:    len(nationNames),
		TRegion:    len(regionNames),
	}
	for table, want := range counts {
		if got := e.Query(context.Background(), table, nil, nil).Count(); got != want {
			t.Errorf("%s: %d rows, want %d", table, got, want)
		}
	}
	// A third of initial orders are undelivered.
	no := e.Query(context.Background(), TNewOrder, nil, nil).Count()
	wantNO := s.Warehouses * s.Districts * (s.Orders - s.Orders*2/3)
	if no != wantNO {
		t.Errorf("neworder: %d rows, want %d", no, wantNO)
	}
	// Order lines: 5..15 per order.
	ol := e.Query(context.Background(), TOrderLine, nil, nil).Count()
	orders := s.Warehouses * s.Districts * s.Orders
	if ol < orders*5 || ol > orders*15 {
		t.Errorf("orderline count %d outside [%d, %d]", ol, orders*5, orders*15)
	}
}

func TestGeneratorDeterministic(t *testing.T) {
	sum := func() float64 {
		e := newEngineA()
		defer e.Close()
		loadSmall(t, e, 1)
		rows := e.Query(context.Background(), TOrderLine, []string{"ol_amount"}, nil).
			Agg(nil, exec.Agg{Kind: exec.Sum, Expr: exec.ColName("ol_amount"), Name: "s"}).Run()
		return rows[0][0].Float()
	}
	if a, b := sum(), sum(); a != b {
		t.Fatalf("generator not deterministic: %f vs %f", a, b)
	}
}

func TestNewOrderTransaction(t *testing.T) {
	e := newEngineA()
	defer e.Close()
	s := loadSmall(t, e, 1)
	d := NewDriver(e, s)
	rng := rand.New(rand.NewSource(1))

	before := e.Query(context.Background(), TOrders, nil, nil).Count()
	for i := 0; i < 20; i++ {
		if err := d.NewOrder(context.Background(), rng); err != nil {
			t.Fatalf("new-order %d: %v", i, err)
		}
	}
	e.Sync()
	after := e.Query(context.Background(), TOrders, nil, nil).Count()
	// Up to 20 new orders (1% user aborts may subtract a few).
	if after <= before || after > before+20 {
		t.Fatalf("orders %d -> %d", before, after)
	}
	// District next_o_id advanced.
	tx := e.Begin(context.Background())
	defer tx.Abort()
	dr, err := tx.Get(TDistrict, DistrictKey(1, 1))
	if err != nil {
		t.Fatal(err)
	}
	if dr[6].Int() <= int64(s.Orders) {
		t.Fatalf("next_o_id = %d, want advanced past %d", dr[6].Int(), s.Orders)
	}
}

func TestPaymentMaintainsBalances(t *testing.T) {
	e := newEngineA()
	defer e.Close()
	s := loadSmall(t, e, 1)
	d := NewDriver(e, s)
	rng := rand.New(rand.NewSource(2))

	ytdBefore := warehouseYTD(t, e)
	for i := 0; i < 10; i++ {
		if err := d.Payment(context.Background(), rng); err != nil {
			t.Fatal(err)
		}
	}
	ytdAfter := warehouseYTD(t, e)
	if ytdAfter <= ytdBefore {
		t.Fatalf("warehouse YTD %f -> %f", ytdBefore, ytdAfter)
	}
	// History rows recorded.
	e.Sync()
	h := e.Query(context.Background(), THistory, nil, nil).
		Filter(exec.Cmp(exec.EQ, exec.ColName("h_data"), exec.ConstStr("payment"))).Count()
	if h != 10 {
		t.Fatalf("history payments = %d", h)
	}
}

func warehouseYTD(t *testing.T, e core.Engine) float64 {
	t.Helper()
	tx := e.Begin(context.Background())
	defer tx.Abort()
	r, err := tx.Get(TWarehouse, WarehouseKey(1))
	if err != nil {
		t.Fatal(err)
	}
	return r[5].Float()
}

func TestDeliveryClearsNewOrders(t *testing.T) {
	e := newEngineA()
	defer e.Close()
	s := loadSmall(t, e, 1)
	d := NewDriver(e, s)
	rng := rand.New(rand.NewSource(3))

	e.Sync()
	before := e.Query(context.Background(), TNewOrder, nil, nil).Count()
	if before == 0 {
		t.Fatal("no undelivered orders generated")
	}
	delivered := 0
	for i := 0; i < 30 && delivered < 5; i++ {
		if err := d.Delivery(context.Background(), rng); err != nil {
			t.Fatal(err)
		}
		delivered++
	}
	e.Sync()
	after := e.Query(context.Background(), TNewOrder, nil, nil).Count()
	if after >= before {
		t.Fatalf("neworder rows %d -> %d, want fewer", before, after)
	}
}

func TestOrderStatusAndStockLevel(t *testing.T) {
	e := newEngineA()
	defer e.Close()
	s := loadSmall(t, e, 1)
	d := NewDriver(e, s)
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 10; i++ {
		if err := d.OrderStatus(context.Background(), rng); err != nil {
			t.Fatalf("order-status: %v", err)
		}
		if err := d.StockLevel(context.Background(), rng); err != nil {
			t.Fatalf("stock-level: %v", err)
		}
	}
}

func TestMixDistribution(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	counts := map[TxnType]int{}
	const n = 20_000
	for i := 0; i < n; i++ {
		counts[Mix(rng)]++
	}
	frac := func(t TxnType) float64 { return float64(counts[t]) / n }
	if f := frac(NewOrderTxn); f < 0.42 || f > 0.48 {
		t.Fatalf("new-order fraction %f", f)
	}
	if f := frac(PaymentTxn); f < 0.40 || f > 0.46 {
		t.Fatalf("payment fraction %f", f)
	}
	for _, tt := range []TxnType{OrderStatusTxn, DeliveryTxn, StockLevelTxn} {
		if f := frac(tt); f < 0.02 || f > 0.06 {
			t.Fatalf("%v fraction %f", tt, f)
		}
	}
}

func TestDriverRunOneCounts(t *testing.T) {
	e := newEngineA()
	defer e.Close()
	s := loadSmall(t, e, 1)
	d := NewDriver(e, s)
	rng := rand.New(rand.NewSource(6))
	for i := 0; i < 50; i++ {
		if err := d.RunOne(context.Background(), rng); err != nil {
			t.Fatalf("run %d: %v", i, err)
		}
	}
	total := int64(0)
	for _, n := range d.Counts() {
		total += n
	}
	if total != 50 {
		t.Fatalf("counted %d transactions, want 50", total)
	}
}

func TestAll22QueriesRun(t *testing.T) {
	e := newEngineA()
	defer e.Close()
	s := loadSmall(t, e, 2)
	// Mix in some live transactions so queries see delta data too.
	d := NewDriver(e, s)
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 30; i++ {
		if err := d.RunOne(context.Background(), rng); err != nil {
			t.Fatal(err)
		}
	}
	for i, q := range Queries() {
		i, q := i, q
		t.Run(fmt.Sprintf("Q%02d", i), func(t *testing.T) {
			rows := q(Bind(context.Background(), e))
			switch i {
			case 1:
				if len(rows) == 0 {
					t.Fatal("Q1 empty")
				}
				// sum_qty >= count (quantities >= 1).
				if rows[0][1].Float() < rows[0][5].Float() {
					t.Fatalf("Q1 aggregates inconsistent: %v", rows[0])
				}
			case 6, 14, 17:
				if len(rows) != 1 {
					t.Fatalf("scalar query returned %d rows", len(rows))
				}
			case 4:
				if len(rows) == 0 {
					t.Fatal("Q4 empty")
				}
				for _, r := range rows {
					cnt := r[0].Int()
					if cnt < 5 || cnt > 15 {
						t.Fatalf("Q4 ol_cnt %d outside [5,15]", cnt)
					}
				}
			case 22:
				for _, r := range rows {
					if r[1].Int() <= 0 {
						t.Fatalf("Q22 non-positive numcust: %v", r)
					}
				}
			}
		})
	}
}

func TestQueryConsistencyAcrossArchitectures(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-engine consistency is slow")
	}
	scale := SmallScale(1)
	mkEngines := func() map[string]core.Engine {
		return map[string]core.Engine{
			"A": core.NewEngineA(core.ConfigA{Schemas: Schemas()}),
			"B": core.NewEngineB(core.ConfigB{Schemas: Schemas(), Partitions: 2, VotersPer: 3, LearnersPer: 1}),
			"C": core.NewEngineC(core.ConfigC{Schemas: Schemas(), Shards: 2, Disk: disk.MemConfig()}),
			"D": core.NewEngineD(core.ConfigD{Schemas: Schemas()}),
		}
	}
	results := map[string][]types.Row{}
	for name, e := range mkEngines() {
		if _, err := NewGenerator(scale).Load(e); err != nil {
			t.Fatal(err)
		}
		e.Sync()
		results[name] = Q1(Bind(context.Background(), e))
		e.Close()
	}
	want := results["A"]
	for name, got := range results {
		if len(got) != len(want) {
			t.Fatalf("%s: Q1 returned %d rows, A returned %d", name, len(got), len(want))
		}
		for i := range want {
			for c := range want[i] {
				if !got[i][c].Equal(want[i][c]) {
					t.Fatalf("%s: Q1 row %d col %d = %v, want %v", name, i, c, got[i][c], want[i][c])
				}
			}
		}
	}
}
