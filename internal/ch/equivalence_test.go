package ch

import (
	"context"
	"fmt"
	"math"
	"runtime"
	"sort"
	"strings"
	"testing"
	"time"

	"htap/internal/core"
	"htap/internal/disk"
	"htap/internal/exec"
	"htap/internal/types"
)

// The golden-equivalence suite is the determinism gate for morsel-driven
// parallel execution: one CH dataset, all 22 queries, every architecture,
// at parallelism 1 and N. Three properties are asserted:
//
//  1. Within one architecture, repeated runs at the same parallelism are
//     bit-identical (static morsel assignment, part-ordered merges).
//  2. Within one architecture, parallelism 1 and N agree exactly on row
//     order, integers, and strings; float aggregates agree to a relative
//     epsilon (parallel summation changes association, nothing else).
//  3. Across architectures, order-normalized results agree under the same
//     float epsilon: four storage engines, one answer set.

const eqEpsilon = 1e-9

// eqScale is big enough that order_line spans multiple column-store
// segments (and therefore many morsels) but small enough to keep
// 22 queries x 4 architectures x 3 runs fast under -race.
func eqScale() Scale {
	s := SmallScale(2)
	s.Customers = 60
	s.Orders = 80
	s.Items = 120
	return s
}

func eqEngines(t *testing.T) map[string]core.Engine {
	t.Helper()
	schemas := Schemas()
	engines := map[string]core.Engine{
		"A": core.NewEngineA(core.ConfigA{Schemas: schemas}),
		"B": core.NewEngineB(core.ConfigB{Schemas: schemas, Partitions: 4, VotersPer: 3, LearnersPer: 1}),
		// SelFeedbackOff pins the static selectivity heuristic: with the
		// default feedback loop live, a repeat run could flip C's row/column
		// access path mid-suite and break bit-identical-repeat-run checks.
		"C": core.NewEngineC(core.ConfigC{Schemas: schemas, Shards: 4, Disk: disk.MemConfig(), SelFeedbackOff: true}),
		"D": core.NewEngineD(core.ConfigD{Schemas: schemas}),
	}
	for name, e := range engines {
		if _, err := NewGenerator(eqScale()).Load(e); err != nil {
			t.Fatalf("load %s: %v", name, err)
		}
		if c, ok := e.(*core.EngineC); ok {
			// Heatwave-style: every column loaded, so all 22 queries take
			// the sharded columnar path rather than the disk row scan.
			for _, sch := range schemas {
				cols := make([]string, len(sch.Cols))
				for i, col := range sch.Cols {
					cols[i] = col.Name
				}
				c.LoadColumns(sch.Name, cols)
			}
		}
		e.Sync()
	}
	return engines
}

// cellsClose compares two datums: exact for ints and strings, relative
// epsilon for floats.
func cellsClose(a, b types.Datum) bool {
	if a.Kind == types.Float && b.Kind == types.Float {
		x, y := a.Float(), b.Float()
		return math.Abs(x-y) <= eqEpsilon*math.Max(1, math.Max(math.Abs(x), math.Abs(y)))
	}
	return a.Equal(b)
}

func rowsClose(a, b []types.Row) (int, int, bool) {
	if len(a) != len(b) {
		return -1, -1, false
	}
	for i := range a {
		if len(a[i]) != len(b[i]) {
			return i, -1, false
		}
		for c := range a[i] {
			if !cellsClose(a[i][c], b[i][c]) {
				return i, c, false
			}
		}
	}
	return 0, 0, true
}

// normKey renders a row for order-normalized comparison. Floats round to
// six significant digits so epsilon-close rows from different
// architectures sort identically.
func normKey(r types.Row) string {
	var b strings.Builder
	for _, d := range r {
		if d.Kind == types.Float {
			fmt.Fprintf(&b, "|%.6e", d.Float())
		} else {
			fmt.Fprintf(&b, "|%v", d)
		}
	}
	return b.String()
}

func normalize(rows []types.Row) []types.Row {
	out := append([]types.Row(nil), rows...)
	sort.SliceStable(out, func(i, j int) bool { return normKey(out[i]) < normKey(out[j]) })
	return out
}

func runAll(t *testing.T, e core.Engine, par int) [][]types.Row {
	t.Helper()
	e.(core.Paralleler).SetParallelism(par)
	out := make([][]types.Row, 23)
	for q := 1; q <= 22; q++ {
		rows, err := RunQuery(context.Background(), e, q)
		if err != nil {
			t.Fatalf("Q%02d at parallelism %d: %v", q, par, err)
		}
		out[q] = rows
	}
	return out
}

func TestCrossArchGoldenEquivalence(t *testing.T) {
	engines := eqEngines(t)
	defer func() {
		for _, e := range engines {
			e.Close()
		}
	}()
	parN := runtime.GOMAXPROCS(0)
	if parN < 4 {
		// Exercise real fan-out even on small CI machines: parallelism is
		// a partitioning degree, not a thread count, so N > cores is valid.
		parN = 4
	}

	type result struct {
		arch string
		par  int
		out  [][]types.Row
	}
	var results []result
	for _, arch := range []string{"A", "B", "C", "D"} {
		e := engines[arch]
		seq := runAll(t, e, 1)
		par := runAll(t, e, parN)
		rep := runAll(t, e, parN)
		for q := 1; q <= 22; q++ {
			// Determinism: same engine, same parallelism => identical bits.
			if i, c, ok := rowsClose(par[q], rep[q]); !ok || !exactEqual(par[q], rep[q]) {
				t.Fatalf("%s Q%02d: parallel run not deterministic (row %d col %d)", arch, q, i, c)
			}
			// Parallel vs sequential within one engine: same order, floats
			// to epsilon.
			if i, c, ok := rowsClose(seq[q], par[q]); !ok {
				t.Fatalf("%s Q%02d: parallelism %d diverges from sequential at row %d col %d:\nseq: %d rows\npar: %d rows",
					arch, q, parN, i, c, len(seq[q]), len(par[q]))
			}
		}
		results = append(results, result{arch, 1, seq}, result{arch, parN, par})
	}

	// Cross-architecture: order-normalized results must agree with the
	// golden (architecture A, sequential) for every query.
	golden := results[0]
	for _, r := range results[1:] {
		for q := 1; q <= 22; q++ {
			want := normalize(golden.out[q])
			got := normalize(r.out[q])
			if i, c, ok := rowsClose(want, got); !ok {
				t.Errorf("arch %s par %d Q%02d != golden at row %d col %d (want %d rows, got %d)",
					r.arch, r.par, q, i, c, len(want), len(got))
			}
		}
	}
}

// TestPushdownDOPEquivalence pins the pushed-down scan path specifically:
// filter-only scans (no aggregation to absorb divergence) whose predicates
// cover the pushable shapes — int range, string equality, string prefix,
// and a conjunction with a non-pushable residual — run against all four
// architectures at parallelism 1 and N, over a column store carrying an
// unmerged write overlay (an update, an insert, and a delete applied after
// the last Sync). Each result must match a per-row reference filter applied
// to the unfiltered scan, be bit-identical across parallelism, and the
// htap_exec_pushdown_* counters must show the pushed path actually ran.
func TestPushdownDOPEquivalence(t *testing.T) {
	engines := eqEngines(t)
	defer func() {
		for _, e := range engines {
			e.Close()
		}
	}()
	ctx := context.Background()

	// Unsynced writes: the pushed scan must merge the delta overlay — a
	// changed row, a brand-new row, and a deleted row — exactly like the
	// decode-then-filter path does.
	for name, e := range engines {
		tx := e.Begin(ctx)
		it, err := tx.Get(TItem, ItemKey(7))
		if err != nil {
			t.Fatalf("%s: get item 7: %v", name, err)
		}
		up := it.Clone()
		up[4] = types.NewFloat(3.5)        // i_price
		up[5] = types.NewString("OVERLAY") // i_data
		if err := tx.Update(TItem, up); err != nil {
			t.Fatalf("%s: update: %v", name, err)
		}
		if err := tx.Insert(TItem, types.Row{
			types.NewInt(ItemKey(100_001)), types.NewInt(100_001), types.NewInt(1),
			types.NewString("item-100001"), types.NewFloat(2.5), types.NewString("OVERLAY"),
		}); err != nil {
			t.Fatalf("%s: insert: %v", name, err)
		}
		if err := tx.Delete(TItem, ItemKey(9)); err != nil {
			t.Fatalf("%s: delete: %v", name, err)
		}
		if err := tx.Commit(); err != nil {
			t.Fatalf("%s: commit: %v", name, err)
		}
		// No Sync: the overlay stays a delta over the encoded segments,
		// which is the path under test. B's commit becomes scannable only
		// when async replication delivers it to the learners — wait for the
		// replication watermark so the reference scan and the pushed scan
		// below observe the same (complete) learner delta.
		if name == "B" {
			for i := 0; e.Freshness().LagTS > 0; i++ {
				if i > 5000 {
					t.Fatal("B: learners never caught up")
				}
				time.Sleep(time.Millisecond)
			}
		}
	}

	// Item rows project as [i_key, i_id, i_im_id, i_name, i_price, i_data];
	// each reference closure replays its predicate per row.
	filters := []struct {
		name string
		expr exec.Expr
		ref  func(r types.Row) bool
	}{
		{"int-range", exec.Cmp(exec.LT, c("i_id"), ci(40)),
			func(r types.Row) bool { return r[1].Int() < 40 }},
		{"str-eq", exec.Cmp(exec.EQ, c("i_name"), cs("item-42")),
			func(r types.Row) bool { return r[3].S == "item-42" }},
		{"prefix", exec.HasPrefix(c("i_name"), "item-1"),
			func(r types.Row) bool { return strings.HasPrefix(r[3].S, "item-1") }},
		{"conj-residual", exec.And(
			exec.Cmp(exec.GE, c("i_id"), ci(10)),
			exec.Cmp(exec.LT, c("i_price"), c("i_id"))),
			func(r types.Row) bool { return r[1].Int() >= 10 && r[4].Float() < float64(r[1].Int()) }},
	}

	parN := runtime.GOMAXPROCS(0)
	if parN < 4 {
		parN = 4
	}
	scanBefore, matBefore := exec.PushdownRows()
	for _, arch := range []string{"A", "B", "C", "D"} {
		e := engines[arch]
		for _, f := range filters {
			var got [2][]types.Row
			for i, par := range []int{1, parN} {
				e.(core.Paralleler).SetParallelism(par)
				all := e.Query(ctx, TItem, nil, nil).Run()
				rows := e.Query(ctx, TItem, nil, nil).Filter(f.expr).Run()
				var want []types.Row
				for _, r := range all {
					if f.ref(r) {
						want = append(want, r)
					}
				}
				if len(want) == 0 {
					t.Fatalf("%s/%s: reference selects nothing, filter untested", arch, f.name)
				}
				if !exactEqual(rows, want) {
					t.Fatalf("%s/%s par %d: pushed filter (%d rows) != reference filter (%d rows)",
						arch, f.name, par, len(rows), len(want))
				}
				got[i] = rows
			}
			if !exactEqual(got[0], got[1]) {
				t.Fatalf("%s/%s: parallelism 1 and %d disagree (%d vs %d rows)",
					arch, f.name, parN, len(got[0]), len(got[1]))
			}
		}
	}
	scanAfter, matAfter := exec.PushdownRows()
	if scanAfter <= scanBefore {
		t.Fatal("pushdown counters unchanged: pushed scan path never ran")
	}
	if d := matAfter - matBefore; d >= scanAfter-scanBefore {
		t.Fatalf("materialized %d of %d scanned rows: selective predicates materialized everything",
			d, scanAfter-scanBefore)
	}
	if ex := engines["A"].Query(ctx, TItem, nil, nil).Filter(filters[0].expr).Explain(); !strings.Contains(ex, "pushdown=[") {
		t.Fatalf("explain lacks pushdown annotation:\n%s", ex)
	}
}

func exactEqual(a, b []types.Row) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		for c := range a[i] {
			if !a[i][c].Equal(b[i][c]) {
				return false
			}
		}
	}
	return true
}
