package ch

import (
	"context"
	"fmt"
	"math"
	"runtime"
	"sort"
	"strings"
	"testing"

	"htap/internal/core"
	"htap/internal/disk"
	"htap/internal/types"
)

// The golden-equivalence suite is the determinism gate for morsel-driven
// parallel execution: one CH dataset, all 22 queries, every architecture,
// at parallelism 1 and N. Three properties are asserted:
//
//  1. Within one architecture, repeated runs at the same parallelism are
//     bit-identical (static morsel assignment, part-ordered merges).
//  2. Within one architecture, parallelism 1 and N agree exactly on row
//     order, integers, and strings; float aggregates agree to a relative
//     epsilon (parallel summation changes association, nothing else).
//  3. Across architectures, order-normalized results agree under the same
//     float epsilon: four storage engines, one answer set.

const eqEpsilon = 1e-9

// eqScale is big enough that order_line spans multiple column-store
// segments (and therefore many morsels) but small enough to keep
// 22 queries x 4 architectures x 3 runs fast under -race.
func eqScale() Scale {
	s := SmallScale(2)
	s.Customers = 60
	s.Orders = 80
	s.Items = 120
	return s
}

func eqEngines(t *testing.T) map[string]core.Engine {
	t.Helper()
	schemas := Schemas()
	engines := map[string]core.Engine{
		"A": core.NewEngineA(core.ConfigA{Schemas: schemas}),
		"B": core.NewEngineB(core.ConfigB{Schemas: schemas, Partitions: 4, VotersPer: 3, LearnersPer: 1}),
		"C": core.NewEngineC(core.ConfigC{Schemas: schemas, Shards: 4, Disk: disk.MemConfig()}),
		"D": core.NewEngineD(core.ConfigD{Schemas: schemas}),
	}
	for name, e := range engines {
		if _, err := NewGenerator(eqScale()).Load(e); err != nil {
			t.Fatalf("load %s: %v", name, err)
		}
		if c, ok := e.(*core.EngineC); ok {
			// Heatwave-style: every column loaded, so all 22 queries take
			// the sharded columnar path rather than the disk row scan.
			for _, sch := range schemas {
				cols := make([]string, len(sch.Cols))
				for i, col := range sch.Cols {
					cols[i] = col.Name
				}
				c.LoadColumns(sch.Name, cols)
			}
		}
		e.Sync()
	}
	return engines
}

// cellsClose compares two datums: exact for ints and strings, relative
// epsilon for floats.
func cellsClose(a, b types.Datum) bool {
	if a.Kind == types.Float && b.Kind == types.Float {
		x, y := a.Float(), b.Float()
		return math.Abs(x-y) <= eqEpsilon*math.Max(1, math.Max(math.Abs(x), math.Abs(y)))
	}
	return a.Equal(b)
}

func rowsClose(a, b []types.Row) (int, int, bool) {
	if len(a) != len(b) {
		return -1, -1, false
	}
	for i := range a {
		if len(a[i]) != len(b[i]) {
			return i, -1, false
		}
		for c := range a[i] {
			if !cellsClose(a[i][c], b[i][c]) {
				return i, c, false
			}
		}
	}
	return 0, 0, true
}

// normKey renders a row for order-normalized comparison. Floats round to
// six significant digits so epsilon-close rows from different
// architectures sort identically.
func normKey(r types.Row) string {
	var b strings.Builder
	for _, d := range r {
		if d.Kind == types.Float {
			fmt.Fprintf(&b, "|%.6e", d.Float())
		} else {
			fmt.Fprintf(&b, "|%v", d)
		}
	}
	return b.String()
}

func normalize(rows []types.Row) []types.Row {
	out := append([]types.Row(nil), rows...)
	sort.SliceStable(out, func(i, j int) bool { return normKey(out[i]) < normKey(out[j]) })
	return out
}

func runAll(t *testing.T, e core.Engine, par int) [][]types.Row {
	t.Helper()
	e.(core.Paralleler).SetParallelism(par)
	out := make([][]types.Row, 23)
	for q := 1; q <= 22; q++ {
		rows, err := RunQuery(context.Background(), e, q)
		if err != nil {
			t.Fatalf("Q%02d at parallelism %d: %v", q, par, err)
		}
		out[q] = rows
	}
	return out
}

func TestCrossArchGoldenEquivalence(t *testing.T) {
	engines := eqEngines(t)
	defer func() {
		for _, e := range engines {
			e.Close()
		}
	}()
	parN := runtime.GOMAXPROCS(0)
	if parN < 4 {
		// Exercise real fan-out even on small CI machines: parallelism is
		// a partitioning degree, not a thread count, so N > cores is valid.
		parN = 4
	}

	type result struct {
		arch string
		par  int
		out  [][]types.Row
	}
	var results []result
	for _, arch := range []string{"A", "B", "C", "D"} {
		e := engines[arch]
		seq := runAll(t, e, 1)
		par := runAll(t, e, parN)
		rep := runAll(t, e, parN)
		for q := 1; q <= 22; q++ {
			// Determinism: same engine, same parallelism => identical bits.
			if i, c, ok := rowsClose(par[q], rep[q]); !ok || !exactEqual(par[q], rep[q]) {
				t.Fatalf("%s Q%02d: parallel run not deterministic (row %d col %d)", arch, q, i, c)
			}
			// Parallel vs sequential within one engine: same order, floats
			// to epsilon.
			if i, c, ok := rowsClose(seq[q], par[q]); !ok {
				t.Fatalf("%s Q%02d: parallelism %d diverges from sequential at row %d col %d:\nseq: %d rows\npar: %d rows",
					arch, q, parN, i, c, len(seq[q]), len(par[q]))
			}
		}
		results = append(results, result{arch, 1, seq}, result{arch, parN, par})
	}

	// Cross-architecture: order-normalized results must agree with the
	// golden (architecture A, sequential) for every query.
	golden := results[0]
	for _, r := range results[1:] {
		for q := 1; q <= 22; q++ {
			want := normalize(golden.out[q])
			got := normalize(r.out[q])
			if i, c, ok := rowsClose(want, got); !ok {
				t.Errorf("arch %s par %d Q%02d != golden at row %d col %d (want %d rows, got %d)",
					r.arch, r.par, q, i, c, len(want), len(got))
			}
		}
	}
}

func exactEqual(a, b []types.Row) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		for c := range a[i] {
			if !a[i][c].Equal(b[i][c]) {
				return false
			}
		}
	}
	return true
}
