// Package datasync implements the data-synchronization (DS) techniques of
// the paper's Table 2: the machinery that moves committed OLTP writes into
// the read-optimized column store.
//
//   - MergeDelta covers both "in-memory delta merge" (Oracle, SQL Server,
//     DB2 BLU, Heatwave, HANA) and "log-based delta merge" (TiDB): the cost
//     difference comes entirely from the delta.Store implementation behind
//     it — a Mem delta serves entries from memory, a Log delta pays
//     simulated disk I/O to read its files.
//   - Rebuild covers "rebuild from primary row store" (SingleStore, Oracle):
//     discard the column store and re-extract it from a row-store snapshot,
//     which has a small steady-state memory footprint but a high load cost.
//   - Threshold implements the threshold-based change propagation of
//     §2.2(3): merge when the unmerged backlog or the freshness lag crosses
//     a bound.
//   - Layered implements SAP HANA's three-layer store (§2.1(d)): a row-wise
//     L1-delta, a columnar L2-delta, and the Main store, with the
//     dictionary-encoded sorting merge between layers.
package datasync

import (
	"time"

	"htap/internal/colstore"
	"htap/internal/delta"
	"htap/internal/obs"
	"htap/internal/rowstore"
	"htap/internal/txn"
	"htap/internal/types"
)

// syncMetrics bundles the per-technique observability series
// (htap_datasync_*, labeled by technique). Handles resolve once at package
// init; the merge paths pay only atomic updates.
type syncMetrics struct {
	batches *obs.Counter   // htap_datasync_batches_total
	entries *obs.Histogram // htap_datasync_batch_entries: delta entries (or rows) per batch
	dur     *obs.Histogram // htap_datasync_duration_ns: propagation latency
}

func newSyncMetrics(technique string) syncMetrics {
	l := obs.L("technique", technique)
	return syncMetrics{
		batches: obs.Default.Counter("htap_datasync_batches_total", l),
		entries: obs.Default.Histogram("htap_datasync_batch_entries", l),
		dur:     obs.Default.Histogram("htap_datasync_duration_ns", l),
	}
}

var (
	mMerge     = newSyncMetrics("merge")
	mRebuild   = newSyncMetrics("rebuild")
	mPromoteL1 = newSyncMetrics("promote_l1")
	mMergeL2   = newSyncMetrics("merge_l2")
)

// note records one completed batch of size n.
func (m syncMetrics) note(n int, d time.Duration) {
	m.batches.Inc()
	m.entries.Observe(int64(n))
	m.dur.ObserveDuration(d)
}

// Result describes one synchronization action.
type Result struct {
	Entries  int           // delta entries consumed
	Inserted int           // rows added to the column store
	Deleted  int           // keys tombstoned in the column store
	Duration time.Duration // wall time of the merge
}

// MergeDelta folds all delta entries with CommitTS <= upTo into tbl,
// advances the table's applied watermark, and marks the entries merged.
func MergeDelta(tbl *colstore.Table, d delta.Store, upTo uint64) Result {
	start := time.Now()
	entries := d.Pending(upTo)
	res := Result{Entries: len(entries)}
	if len(entries) == 0 {
		if upTo > tbl.Applied() {
			tbl.SetApplied(upTo)
		}
		d.MarkMerged(upTo)
		return res
	}
	// Net effect per key: the newest image wins, deletes drop the key.
	images := make(map[int64]types.Row, len(entries))
	orderKeys := make([]int64, 0, len(entries))
	maxTS := uint64(0)
	for _, e := range entries {
		if _, seen := images[e.Key]; !seen {
			orderKeys = append(orderKeys, e.Key)
		}
		if e.Op == txn.OpDelete {
			images[e.Key] = nil
		} else {
			images[e.Key] = e.Row
		}
		if e.CommitTS > maxTS {
			maxTS = e.CommitTS
		}
	}
	rows := make([]types.Row, 0, len(images))
	for _, k := range orderKeys {
		img := images[k]
		if img == nil {
			if tbl.DeleteKey(k) {
				res.Deleted++
			}
			continue
		}
		rows = append(rows, img)
	}
	tbl.AppendRows(rows) // upserts tombstone superseded images internally
	res.Inserted = len(rows)
	if upTo > maxTS {
		maxTS = upTo
	}
	tbl.SetApplied(maxTS)
	tbl.NoteMerge()
	d.MarkMerged(upTo)
	res.Duration = time.Since(start)
	mMerge.note(res.Entries, res.Duration)
	return res
}

// Rebuild discards tbl and re-extracts every live row from the row store at
// snapshot ts (DS technique iii). The paper notes this "is typical for the
// case that the delta updates exceed a certain threshold, thus it is more
// efficient to rebuild the column store than merging these updates".
func Rebuild(tbl *colstore.Table, rs *rowstore.Store, d delta.Store, ts uint64) Result {
	start := time.Now()
	tbl.Reset()
	b := tbl.NewBuilder()
	n := 0
	rs.Scan(ts, func(_ int64, row types.Row) bool {
		b.Add(row)
		n++
		return true
	})
	b.Flush()
	tbl.SetApplied(ts)
	if d != nil {
		d.MarkMerged(ts) // the rebuild subsumes all earlier delta entries
	}
	res := Result{Inserted: n, Duration: time.Since(start)}
	mRebuild.note(res.Inserted, res.Duration)
	return res
}

// Threshold is the threshold-based change-propagation policy of §2.2(3):
// synchronize when the unmerged backlog exceeds MaxEntries or the watermark
// lag exceeds MaxLag timestamps.
type Threshold struct {
	MaxEntries int
	MaxLag     uint64
}

// ShouldSync reports whether the policy asks for a merge, given the delta
// backlog and the current and applied watermarks.
func (t Threshold) ShouldSync(unmerged int, current, applied uint64) bool {
	if t.MaxEntries > 0 && unmerged >= t.MaxEntries {
		return true
	}
	if t.MaxLag > 0 && current > applied && current-applied >= t.MaxLag {
		return true
	}
	return false
}

// Layered is SAP HANA's delta-main hierarchy (§2.1(d)): "The L1-delta keeps
// data updates in a row-wise format. When the threshold is reached, the
// data in L1-delta is appended to L2-delta. The L2-delta transforms the
// data into columnar data, then merges the data into the main column
// store."
type Layered struct {
	Schema *types.Schema
	L1     *delta.Mem
	L2     *colstore.Table
	Main   *colstore.Table

	// L1Rows and L2Rows are the promotion thresholds.
	L1Rows int
	L2Rows int
}

// NewLayered returns a layered store with the given promotion thresholds.
func NewLayered(schema *types.Schema, l1Rows, l2Rows int) *Layered {
	return &Layered{
		Schema: schema,
		L1:     delta.NewMem(),
		L2:     colstore.NewTable(schema),
		Main:   colstore.NewTable(schema),
		L1Rows: l1Rows,
		L2Rows: l2Rows,
	}
}

// Append records committed writes into L1 (the row-wise delta).
func (l *Layered) Append(commitTS uint64, ws []txn.Write) {
	l.L1.Append(commitTS, ws)
}

// Maintain promotes L1 to L2 and L2 to Main when thresholds are exceeded;
// engines call it after commits or from a background loop.
func (l *Layered) Maintain(current uint64) {
	if l.L1.Unmerged() >= l.L1Rows {
		l.PromoteL1(current)
	}
	if l.L2.LiveRows() >= l.L2Rows {
		l.MergeL2()
	}
}

// PromoteL1 moves all L1 entries with CommitTS <= upTo into the columnar
// L2-delta. Every promoted key tombstones its shadowed image in Main (and,
// for deletes, in L2), so scans never see two versions of a row.
func (l *Layered) PromoteL1(upTo uint64) Result {
	start := time.Now()
	entries := l.L1.Pending(upTo)
	res := Result{Entries: len(entries)}
	images := make(map[int64]types.Row, len(entries))
	orderKeys := make([]int64, 0, len(entries))
	maxTS := upTo
	for _, e := range entries {
		if _, seen := images[e.Key]; !seen {
			orderKeys = append(orderKeys, e.Key)
		}
		if e.Op == txn.OpDelete {
			images[e.Key] = nil
		} else {
			images[e.Key] = e.Row
		}
		if e.CommitTS > maxTS {
			maxTS = e.CommitTS
		}
	}
	rows := make([]types.Row, 0, len(images))
	for _, k := range orderKeys {
		if l.Main.DeleteKey(k) {
			res.Deleted++
		}
		img := images[k]
		if img == nil {
			if l.L2.DeleteKey(k) {
				res.Deleted++
			}
			continue
		}
		rows = append(rows, img)
	}
	l.L2.AppendRows(rows)
	res.Inserted = len(rows)
	l.L2.SetApplied(maxTS)
	l.L1.MarkMerged(upTo)
	res.Duration = time.Since(start)
	mPromoteL1.note(res.Entries, res.Duration)
	return res
}

// MergeL2 performs the dictionary-encoded sorting merge: live L2 rows are
// re-encoded into Main segments (string dictionaries are rebuilt sorted by
// the column-store encoder) and L2 is cleared.
func (l *Layered) MergeL2() Result {
	start := time.Now()
	var rows []types.Row
	for _, seg := range l.L2.Segments() {
		mask := seg.DeleteMask()
		for i := 0; i < seg.N; i++ {
			if !mask.Get(i) {
				rows = append(rows, seg.Row(i))
			}
		}
	}
	applied := l.L2.Applied()
	l.L2.Reset()
	l.Main.AppendRows(rows)
	if applied > l.Main.Applied() {
		l.Main.SetApplied(applied)
	}
	l.Main.NoteMerge()
	res := Result{Inserted: len(rows), Duration: time.Since(start)}
	mMergeL2.note(res.Inserted, res.Duration)
	return res
}

// Applied returns the watermark covered by Main and L2 together.
func (l *Layered) Applied() uint64 {
	if a := l.L2.Applied(); a > l.Main.Applied() {
		return a
	}
	return l.Main.Applied()
}

// Bytes estimates the memory footprint across layers.
func (l *Layered) Bytes() int {
	return l.L1.Bytes() + l.L2.Bytes() + l.Main.Bytes()
}
