package datasync

import (
	"testing"

	"htap/internal/colstore"
	"htap/internal/delta"
	"htap/internal/disk"
	"htap/internal/rowstore"
	"htap/internal/txn"
	"htap/internal/types"
)

var schema = types.NewSchema("t", 0,
	types.Column{Name: "id", Type: types.Int},
	types.Column{Name: "v", Type: types.Int},
)

func row(id, v int64) types.Row { return types.Row{types.NewInt(id), types.NewInt(v)} }

func wr(key int64, op txn.Op, v int64) txn.Write {
	var r types.Row
	if op != txn.OpDelete {
		r = row(key, v)
	}
	return txn.Write{Table: 1, Key: key, Op: op, Row: r}
}

func TestMergeDeltaNetEffect(t *testing.T) {
	for name, d := range map[string]delta.Store{
		"mem": delta.NewMem(),
		"log": delta.NewLog(disk.New(disk.MemConfig()), "d"),
	} {
		t.Run(name, func(t *testing.T) {
			tbl := colstore.NewTable(schema)
			tbl.AppendRows([]types.Row{row(1, 10), row(2, 20)})

			d.Append(5, []txn.Write{wr(1, txn.OpUpdate, 11), wr(3, txn.OpInsert, 30)})
			d.Append(6, []txn.Write{wr(2, txn.OpDelete, 0), wr(3, txn.OpUpdate, 31)})

			res := MergeDelta(tbl, d, 6)
			if res.Entries != 4 || res.Inserted != 2 || res.Deleted != 1 {
				t.Fatalf("result = %+v", res)
			}
			if tbl.Applied() != 6 {
				t.Fatalf("applied = %d", tbl.Applied())
			}
			if d.Unmerged() != 0 {
				t.Fatalf("unmerged = %d", d.Unmerged())
			}
			if got := tbl.LiveRows(); got != 2 {
				t.Fatalf("live rows = %d", got)
			}
			r, ok := tbl.GetKey(1)
			if !ok || r[1].Int() != 11 {
				t.Fatalf("key 1 = %v %v", r, ok)
			}
			if _, ok := tbl.GetKey(2); ok {
				t.Fatal("deleted key 2 still live")
			}
			r, ok = tbl.GetKey(3)
			if !ok || r[1].Int() != 31 {
				t.Fatalf("key 3 = %v %v (want newest image)", r, ok)
			}
		})
	}
}

func TestMergeDeltaPartialWatermark(t *testing.T) {
	tbl := colstore.NewTable(schema)
	d := delta.NewMem()
	d.Append(5, []txn.Write{wr(1, txn.OpInsert, 1)})
	d.Append(9, []txn.Write{wr(2, txn.OpInsert, 2)})
	res := MergeDelta(tbl, d, 6)
	if res.Entries != 1 || tbl.Applied() != 6 {
		t.Fatalf("res=%+v applied=%d", res, tbl.Applied())
	}
	if d.Unmerged() != 1 {
		t.Fatalf("unmerged = %d", d.Unmerged())
	}
}

func TestMergeDeltaEmptyAdvancesWatermark(t *testing.T) {
	tbl := colstore.NewTable(schema)
	d := delta.NewMem()
	MergeDelta(tbl, d, 42)
	if tbl.Applied() != 42 {
		t.Fatalf("applied = %d", tbl.Applied())
	}
}

func TestRebuild(t *testing.T) {
	rs := rowstore.New(1, schema)
	for i := int64(0); i < 100; i++ {
		rs.Load(row(i, i))
	}
	tbl := colstore.NewTable(schema)
	tbl.AppendRows([]types.Row{row(999, 999)}) // stale junk to be discarded
	d := delta.NewMem()
	d.Append(3, []txn.Write{wr(5, txn.OpUpdate, 50)})

	// Rebuild at a snapshot past the delta's watermark subsumes its entries.
	res := Rebuild(tbl, rs, d, 10)
	if res.Inserted != 100 {
		t.Fatalf("rebuilt %d rows", res.Inserted)
	}
	if _, ok := tbl.GetKey(999); ok {
		t.Fatal("stale row survived rebuild")
	}
	if d.Unmerged() != 0 {
		t.Fatal("rebuild must subsume delta entries")
	}
	if tbl.Stats().Rebuilds != 1 {
		t.Fatal("rebuild not counted")
	}
}

func TestThresholdPolicy(t *testing.T) {
	p := Threshold{MaxEntries: 10, MaxLag: 100}
	if p.ShouldSync(9, 50, 0) {
		t.Fatal("below both thresholds")
	}
	if !p.ShouldSync(10, 0, 0) {
		t.Fatal("entry threshold ignored")
	}
	if !p.ShouldSync(0, 200, 100) {
		t.Fatal("lag threshold ignored")
	}
	if (Threshold{}).ShouldSync(1000, 1000, 0) {
		t.Fatal("zero-valued policy must never fire")
	}
}

func TestLayeredPromotion(t *testing.T) {
	l := NewLayered(schema, 4, 100)
	l.Main.AppendRows([]types.Row{row(1, 10), row(2, 20)})

	// Three writes stay in L1 (threshold 4).
	l.Append(5, []txn.Write{wr(1, txn.OpUpdate, 11)})
	l.Append(6, []txn.Write{wr(3, txn.OpInsert, 30)})
	l.Append(7, []txn.Write{wr(2, txn.OpDelete, 0)})
	l.Maintain(7)
	if l.L1.Unmerged() != 3 {
		t.Fatalf("L1 promoted early: %d", l.L1.Unmerged())
	}

	l.Append(8, []txn.Write{wr(4, txn.OpInsert, 40)})
	l.Maintain(8)
	if l.L1.Unmerged() != 0 {
		t.Fatalf("L1 not drained: %d", l.L1.Unmerged())
	}
	// L2 now holds the images of 1, 3, 4; Main's key 1 and 2 are tombstoned.
	if l.L2.LiveRows() != 3 {
		t.Fatalf("L2 rows = %d", l.L2.LiveRows())
	}
	if l.Main.LiveRows() != 0 {
		t.Fatalf("Main live rows = %d (1 and 2 must be tombstoned)", l.Main.LiveRows())
	}
	if l.Applied() != 8 {
		t.Fatalf("applied = %d", l.Applied())
	}

	// Force the L2 -> Main dictionary merge.
	res := l.MergeL2()
	if res.Inserted != 3 {
		t.Fatalf("merged %d rows", res.Inserted)
	}
	if l.L2.LiveRows() != 0 || l.Main.LiveRows() != 3 {
		t.Fatalf("after merge: L2=%d Main=%d", l.L2.LiveRows(), l.Main.LiveRows())
	}
	r, ok := l.Main.GetKey(1)
	if !ok || r[1].Int() != 11 {
		t.Fatalf("Main key 1 = %v %v", r, ok)
	}
	if l.Applied() != 8 {
		t.Fatalf("applied after merge = %d", l.Applied())
	}
}

func TestLayeredDeleteInL2(t *testing.T) {
	l := NewLayered(schema, 1, 1000)
	l.Append(1, []txn.Write{wr(1, txn.OpInsert, 10)})
	l.PromoteL1(1)
	l.Append(2, []txn.Write{wr(1, txn.OpDelete, 0)})
	l.PromoteL1(2)
	if l.L2.LiveRows() != 0 {
		t.Fatalf("L2 rows = %d after delete", l.L2.LiveRows())
	}
}

func TestLayeredBytes(t *testing.T) {
	l := NewLayered(schema, 1000, 1000)
	if l.Bytes() != 0 {
		t.Fatal("empty layered store has bytes")
	}
	l.Append(1, []txn.Write{wr(1, txn.OpInsert, 10)})
	if l.Bytes() == 0 {
		t.Fatal("L1 bytes not counted")
	}
}

func TestMergeCostLogVsMem(t *testing.T) {
	// The log-based delta merge must cost device reads; the in-memory merge
	// must not. This is the Table 2 "High Merge Cost" cell.
	dev := disk.New(disk.MemConfig())
	logD := delta.NewLog(dev, "d")
	memD := delta.NewMem()
	for i := int64(0); i < 100; i++ {
		w := []txn.Write{wr(i, txn.OpInsert, i)}
		logD.Append(uint64(i+1), w)
		memD.Append(uint64(i+1), w)
	}
	t1 := colstore.NewTable(schema)
	t2 := colstore.NewTable(schema)
	before := dev.Stats().ReadOps
	MergeDelta(t1, logD, 1000)
	if dev.Stats().ReadOps == before {
		t.Fatal("log merge read no device data")
	}
	MergeDelta(t2, memD, 1000)
	if t1.LiveRows() != t2.LiveRows() {
		t.Fatal("merge results differ")
	}
}
