package experiments

import (
	"context"
	"fmt"
	"math/rand"
	"strings"
	"time"

	"htap/internal/ch"
	"htap/internal/core"
	"htap/internal/exec"
)

// ExtensionsResult reports the §2.4 benchmark-suite extensions in action.
type ExtensionsResult struct {
	// Skew: share of order-line volume captured by the top 1% of items,
	// under the uniform generator and the JCC-H-style skewed one.
	UniformTop1Pct float64
	SkewedTop1Pct  float64
	// Join-crossing correlation: distinct customer nations per warehouse.
	UniformNationsPerWH float64
	SkewedNationsPerWH  float64

	// In-process HTAP: latency of the plain New-Order vs the variant with
	// an embedded analytical operation.
	PlainNewOrderLat      time.Duration
	AnalyticalNewOrderLat time.Duration
}

// Extensions measures the implemented §2.4 extensions.
func Extensions(o Opts) ExtensionsResult {
	o = o.normalize()
	var res ExtensionsResult

	measure := func(skew float64) (top1 float64, nationsPerWH float64) {
		e := core.NewEngineA(core.ConfigA{Schemas: ch.Schemas()})
		defer e.Close()
		s := o.scale()
		s.Skew = skew
		if _, err := ch.NewGenerator(s).Load(e); err != nil {
			panic(err)
		}
		// Volume share of the hottest 1% of items.
		rows := e.Query(context.Background(), ch.TOrderLine, []string{"ol_i_id", "ol_quantity"}, nil).
			Agg([]string{"ol_i_id"},
				exec.Agg{Kind: exec.Sum, Expr: exec.ColName("ol_quantity"), Name: "q"}).
			Sort(exec.SortKey{Col: "q", Desc: true}).Run()
		total, top := int64(0), int64(0)
		cut := len(rows) / 100
		if cut < 1 {
			cut = 1
		}
		for i, r := range rows {
			q := r[1].Int()
			total += q
			if i < cut {
				top += q
			}
		}
		if total > 0 {
			top1 = 100 * float64(top) / float64(total)
		}
		// Nations per warehouse.
		nrows := e.Query(context.Background(), ch.TCustomer, []string{"c_w_id", "c_n_nationkey"}, nil).
			Distinct().
			Agg([]string{"c_w_id"}, exec.Agg{Kind: exec.Count, Name: "n"}).Run()
		sum := 0.0
		for _, r := range nrows {
			sum += r[1].Float()
		}
		if len(nrows) > 0 {
			nationsPerWH = sum / float64(len(nrows))
		}
		return top1, nationsPerWH
	}
	res.UniformTop1Pct, res.UniformNationsPerWH = measure(0)
	res.SkewedTop1Pct, res.SkewedNationsPerWH = measure(2.0)

	// In-process HTAP transaction cost.
	{
		e, s := loadEngine(core.ArchA, o)
		defer e.Close()
		d := ch.NewDriver(e, s)
		rng := rand.New(rand.NewSource(o.Seed))
		const n = 50
		start := time.Now()
		for i := 0; i < n; i++ {
			if err := d.NewOrder(context.Background(), rng); err != nil {
				panic(err)
			}
		}
		res.PlainNewOrderLat = time.Since(start) / n
		start = time.Now()
		for i := 0; i < n; i++ {
			if err := d.AnalyticalNewOrder(context.Background(), rng); err != nil {
				panic(err)
			}
		}
		res.AnalyticalNewOrderLat = time.Since(start) / n
	}
	return res
}

// FormatExtensions renders the extension measurements.
func FormatExtensions(r ExtensionsResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "JCC-H-style skew (top-1%% item share of volume):\n")
	fmt.Fprintf(&b, "  uniform generator: %5.1f%%   skewed generator: %5.1f%%\n",
		r.UniformTop1Pct, r.SkewedTop1Pct)
	fmt.Fprintf(&b, "join-crossing correlation (distinct nations per warehouse):\n")
	fmt.Fprintf(&b, "  uniform: %.1f   skewed: %.1f (customers cluster with their warehouse)\n",
		r.UniformNationsPerWH, r.SkewedNationsPerWH)
	fmt.Fprintf(&b, "in-process HTAP transaction (analytical op inside New-Order):\n")
	fmt.Fprintf(&b, "  plain: %v   analytical: %v (the embedded aggregate is the price of weaving)\n",
		r.PlainNewOrderLat.Round(time.Microsecond), r.AnalyticalNewOrderLat.Round(time.Microsecond))
	return b.String()
}
