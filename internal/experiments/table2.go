package experiments

import (
	"context"
	"fmt"
	"math/rand"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"htap/internal/accel"
	"htap/internal/ch"
	"htap/internal/colsel"
	"htap/internal/colstore"
	"htap/internal/core"
	"htap/internal/datasync"
	"htap/internal/delta"
	"htap/internal/disk"
	"htap/internal/exec"
	"htap/internal/htapbench"
	"htap/internal/micro"
	"htap/internal/rowstore"
	"htap/internal/sched"
	"htap/internal/txn"
	"htap/internal/types"
)

// --- Table 2, Transaction Processing ---

// TPRow compares the two TP techniques of Table 2.
type TPRow struct {
	Technique  string
	AvgLatency time.Duration // efficiency: per-transaction latency, 1 worker
	TPS1       float64       // throughput at 1 worker
	TPS8       float64       // throughput at 8 workers
	Speedup    float64       // scalability: TPS8 / TPS1
}

// Table2TP measures MVCC+logging (architecture A) against
// 2PC+Raft+logging (architecture B).
func Table2TP(o Opts) []TPRow {
	o = o.normalize()
	var out []TPRow
	for _, a := range []core.Arch{core.ArchA, core.ArchB} {
		e, s := loadEngine(a, o)
		one := htapbench.Run(htapbench.Config{
			Engine: e, Scale: s, TPWorkers: 1, Duration: o.Duration, Seed: o.Seed,
		})
		eight := htapbench.Run(htapbench.Config{
			Engine: e, Scale: s, TPWorkers: 8, Duration: o.Duration, Seed: o.Seed + 1,
		})
		name := "MVCC+Logging"
		if a == core.ArchB {
			name = "2PC+Raft+Logging"
		}
		r := TPRow{Technique: name, AvgLatency: one.AvgTxnLatency, TPS1: one.TPS, TPS8: eight.TPS}
		if one.TPS > 0 {
			r.Speedup = eight.TPS / one.TPS
		}
		out = append(out, r)
		e.Close()
	}
	return out
}

// FormatTable2TP renders the TP comparison.
func FormatTable2TP(rows []TPRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-20s %12s %10s %10s %8s\n", "TP Technique", "Latency", "TPS@1", "TPS@8", "Speedup")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-20s %12s %10.0f %10.0f %8.2f\n",
			r.Technique, r.AvgLatency.Round(time.Microsecond), r.TPS1, r.TPS8, r.Speedup)
	}
	return b.String()
}

// --- Table 2, Analytical Processing ---

// APRow compares the three AP scan techniques.
type APRow struct {
	Technique  string
	QueryLat   time.Duration // latency of a representative scan
	FreshLagTS uint64        // staleness visible to the scan (commits)
	DeltaBytes int           // memory held by the unmerged delta
	DiskReads  int64         // simulated I/O the scan performed
}

// Table2AP measures in-memory delta scan, log-based delta scan, and pure
// column scan over identical data with identical unmerged update backlogs.
func Table2AP(o Opts) []APRow {
	o = o.normalize()
	const rows, backlog = 50_000, 20_000
	schema := types.NewSchema("t", 0,
		types.Column{Name: "id", Type: types.Int},
		types.Column{Name: "grp", Type: types.Int},
		types.Column{Name: "val", Type: types.Float},
	)
	mkRow := func(i int64) types.Row {
		return types.Row{types.NewInt(i), types.NewInt(i % 64), types.NewFloat(float64(i % 1000))}
	}
	build := func() (*colstore.Table, []txn.Write) {
		tbl := colstore.NewTable(schema)
		base := make([]types.Row, 0, rows)
		for i := int64(0); i < rows; i++ {
			base = append(base, mkRow(i))
		}
		tbl.AppendRows(base)
		tbl.SetApplied(1)
		writes := make([]txn.Write, 0, backlog)
		for i := int64(0); i < backlog; i++ {
			writes = append(writes, txn.Write{Table: 0, Key: rows + i, Op: txn.OpInsert, Row: mkRow(rows + i)})
		}
		return tbl, writes
	}
	// The timed region includes building the overlay: reading the delta is
	// part of serving the query (and is exactly where the log-based
	// technique pays its I/O).
	scanOnce := func(tbl *colstore.Table, ov func() *delta.Overlay) time.Duration {
		start := time.Now()
		var overlay *delta.Overlay
		if ov != nil {
			overlay = ov()
		}
		exec.From(exec.NewColScan(context.Background(), tbl, []string{"grp", "val"}, nil, overlay)).
			Agg([]string{"grp"}, exec.Agg{Kind: exec.Sum, Expr: exec.ColName("val"), Name: "s"}).
			Count()
		return time.Since(start)
	}

	// Build all three setups over identical data and backlogs.
	memTbl, writes := build()
	memD := delta.NewMem()
	for i, w := range writes {
		memD.Append(uint64(i+2), []txn.Write{w})
	}
	logTbl, writes2 := build()
	dev := disk.New(disk.DefaultConfig())
	logD := delta.NewLog(dev, "ap-delta")
	for i, w := range writes2 {
		logD.Append(uint64(i+2), []txn.Write{w})
	}
	pureTbl, _ := build()

	// Interleave the techniques round-robin and keep per-technique minima:
	// on a small shared host, background load would otherwise be charged
	// to whichever technique it happened to coincide with.
	const rounds = 3
	best := [3]time.Duration{1 << 62, 1 << 62, 1 << 62}
	var logReads int64
	for r := 0; r < rounds; r++ {
		if el := scanOnce(memTbl, func() *delta.Overlay { return memD.Overlay(memD.Watermark()) }); el < best[0] {
			best[0] = el
		}
		before := dev.Stats().ReadOps
		if el := scanOnce(logTbl, func() *delta.Overlay { return logD.Overlay(logD.Watermark()) }); el < best[1] {
			best[1] = el
		}
		logReads = dev.Stats().ReadOps - before
		if el := scanOnce(pureTbl, nil); el < best[2] {
			best[2] = el
		}
	}
	return []APRow{
		{Technique: "InMemDelta+ColumnScan", QueryLat: best[0], DeltaBytes: memD.Bytes()},
		{Technique: "LogDelta+ColumnScan", QueryLat: best[1], DeltaBytes: logD.Bytes(), DiskReads: logReads},
		{Technique: "ColumnScanOnly", QueryLat: best[2],
			FreshLagTS: memD.Watermark() - pureTbl.Applied()},
	}
}

// FormatTable2AP renders the AP comparison.
func FormatTable2AP(rows []APRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-24s %12s %12s %12s %10s\n", "AP Technique", "QueryLat", "FreshLag(ts)", "DeltaBytes", "DiskReads")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-24s %12s %12d %12d %10d\n",
			r.Technique, r.QueryLat.Round(time.Microsecond), r.FreshLagTS, r.DeltaBytes, r.DiskReads)
	}
	return b.String()
}

// --- Table 2, Data Synchronization ---

// DSRow compares the three DS techniques.
type DSRow struct {
	Technique   string
	MergeTime   time.Duration
	DiskReads   int64
	SteadyBytes int // post-sync delta memory
	LoadCost    int // rows re-extracted (rebuild's "High Load Cost")
}

// Table2DS applies the same update backlog through each synchronization
// technique.
func Table2DS(o Opts) []DSRow {
	o = o.normalize()
	const base, backlog = 50_000, 20_000
	schema := types.NewSchema("t", 0,
		types.Column{Name: "id", Type: types.Int},
		types.Column{Name: "val", Type: types.Int},
	)
	mkRow := func(i int64) types.Row { return types.Row{types.NewInt(i), types.NewInt(i * 3)} }

	prep := func() (*rowstore.Store, *colstore.Table) {
		rs := rowstore.New(0, schema)
		tbl := colstore.NewTable(schema)
		var rowsBuf []types.Row
		for i := int64(0); i < base; i++ {
			rs.Load(mkRow(i))
			rowsBuf = append(rowsBuf, mkRow(i))
		}
		tbl.AppendRows(rowsBuf)
		tbl.SetApplied(1)
		return rs, tbl
	}
	applyBacklog := func(rs *rowstore.Store, d delta.Store) {
		m := txn.NewManager()
		m.Oracle().Advance(1)
		for i := int64(0); i < backlog; i++ {
			tx := m.Begin()
			if err := rs.Insert(tx, mkRow(base+i)); err != nil {
				panic(err)
			}
			tx.Commit(func(ts uint64, ws []txn.Write) error {
				rs.Apply(ts, ws)
				d.Append(ts, ws)
				return nil
			})
		}
	}

	// Warm-up round: the first merge pays allocator and page-fault costs
	// that would otherwise be attributed to whichever technique runs first.
	{
		rs, tbl := prep()
		d := delta.NewMem()
		applyBacklog(rs, d)
		datasync.MergeDelta(tbl, d, d.Watermark())
	}

	// logDisk models delta files living on a slower device than the
	// in-memory structures — the source of Table 2's "High Merge Cost".
	logDisk := disk.Config{ReadLatency: 200 * time.Microsecond,
		WriteLatency: 200 * time.Microsecond, BytesPerOp: 4096}

	// Each technique is measured as the best of three fresh rounds; merge
	// times at this scale are close to allocator noise otherwise.
	const rounds = 3
	best := func(f func() DSRow) DSRow {
		r := f()
		for i := 1; i < rounds; i++ {
			if n := f(); n.MergeTime < r.MergeTime {
				r = n
			}
		}
		return r
	}
	var out []DSRow
	// (i) In-memory delta merge.
	out = append(out, best(func() DSRow {
		rs, tbl := prep()
		d := delta.NewMem()
		applyBacklog(rs, d)
		res := datasync.MergeDelta(tbl, d, d.Watermark())
		return DSRow{
			Technique: "InMemDeltaMerge", MergeTime: res.Duration,
			SteadyBytes: d.Bytes(), LoadCost: res.Inserted,
		}
	}))
	// (ii) Log-based delta merge.
	out = append(out, best(func() DSRow {
		rs, tbl := prep()
		dev := disk.New(logDisk)
		d := delta.NewLog(dev, "ds-delta")
		applyBacklog(rs, d)
		before := dev.Stats().ReadOps
		res := datasync.MergeDelta(tbl, d, d.Watermark())
		return DSRow{
			Technique: "LogDeltaMerge", MergeTime: res.Duration,
			DiskReads:   dev.Stats().ReadOps - before,
			SteadyBytes: d.Bytes(), LoadCost: res.Inserted,
		}
	}))
	// (iii) Rebuild from the primary row store.
	out = append(out, best(func() DSRow {
		rs, tbl := prep()
		d := delta.NewMem()
		applyBacklog(rs, d)
		res := datasync.Rebuild(tbl, rs, d, d.Watermark())
		return DSRow{
			Technique: "RebuildFromRowStore", MergeTime: res.Duration,
			SteadyBytes: d.Bytes(), LoadCost: res.Inserted,
		}
	}))
	return out
}

// FormatTable2DS renders the DS comparison.
func FormatTable2DS(rows []DSRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-22s %12s %10s %12s %10s\n", "DS Technique", "SyncTime", "DiskReads", "SteadyBytes", "RowsMoved")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-22s %12s %10d %12d %10d\n",
			r.Technique, r.MergeTime.Round(time.Microsecond), r.DiskReads, r.SteadyBytes, r.LoadCost)
	}
	return b.String()
}

// --- Table 2, Query Optimization ---

// ColSelRow is one point of the column-selection budget sweep.
type ColSelRow struct {
	Policy      string
	BudgetPct   int // share of the full columnar footprint allowed
	Utility     float64
	PushdownPct float64 // queries answered by the IMCS
}

// Table2QOColSel sweeps the memory budget for both selection policies on
// architecture C.
func Table2QOColSel(o Opts) []ColSelRow {
	o = o.normalize()
	var out []ColSelRow
	for _, pol := range []colsel.Policy{colsel.Static, colsel.Decay} {
		for _, pct := range []int{25, 50, 100} {
			e := core.NewEngineC(core.ConfigC{
				Schemas: ch.Schemas(), Shards: 2, Policy: pol,
				Disk: disk.DefaultConfig(),
			})
			s := o.scale()
			if _, err := ch.NewGenerator(s).Load(e); err != nil {
				panic(err)
			}
			// Record a query history, then select under the budget.
			queries := []int{1, 5, 6, 12, 14}
			all := ch.Queries()
			for _, qi := range queries {
				all[qi](ch.Bind(context.Background(), e))
			}
			full := fullFootprint(e)
			e2 := e // reuse; budget applies at Reselect time
			e2.Close()
			e3 := core.NewEngineC(core.ConfigC{
				Schemas: ch.Schemas(), Shards: 2, Policy: pol,
				Disk: disk.DefaultConfig(), BudgetBytes: full * pct / 100,
			})
			if _, err := ch.NewGenerator(s).Load(e3); err != nil {
				panic(err)
			}
			for _, qi := range queries {
				all[qi](ch.Bind(context.Background(), e3))
			}
			sel := e3.Reselect()
			pdBefore, fbBefore := e3.PushdownStats()
			for _, qi := range queries {
				all[qi](ch.Bind(context.Background(), e3))
			}
			pdAfter, fbAfter := e3.PushdownStats()
			pd, fb := pdAfter-pdBefore, fbAfter-fbBefore
			row := ColSelRow{
				Policy: policyName(pol), BudgetPct: pct, Utility: sel.Utility,
			}
			if pd+fb > 0 {
				row.PushdownPct = 100 * float64(pd) / float64(pd+fb)
			}
			out = append(out, row)
			e3.Close()
		}
	}
	return out
}

func policyName(p colsel.Policy) string {
	if p == colsel.Decay {
		return "decay(learned-lite)"
	}
	return "static(heatmap)"
}

// fullFootprint estimates the bytes needed to load every column.
func fullFootprint(e *core.EngineC) int {
	total := 0
	for _, s := range ch.Schemas() {
		rows := e.Query(context.Background(), s.Name, []string{s.Cols[0].Name}, nil).Count()
		for _, c := range s.Cols {
			w := 8
			if c.Type == types.String {
				w = 24
			}
			total += w * (rows + 1)
		}
	}
	return total
}

// FormatTable2QOColSel renders the column-selection sweep.
func FormatTable2QOColSel(rows []ColSelRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-22s %10s %10s %12s\n", "Selection Policy", "Budget%", "Utility", "Pushdown%")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-22s %10d %10.2f %12.1f\n", r.Policy, r.BudgetPct, r.Utility, r.PushdownPct)
	}
	return b.String()
}

// HybridRow compares access paths for the paper's hybrid SPJ example.
type HybridRow struct {
	Plan    string
	Latency time.Duration
	Rows    int
}

// Table2QOHybrid runs a selective SPJ (orders of one district joined with
// their order lines) under row-only, column-only, and the planner's hybrid
// access path on architecture C.
func Table2QOHybrid(o Opts) []HybridRow {
	o = o.normalize()
	e, s := loadEngine(core.ArchC, o)
	defer e.Close()
	ec := e.(*core.EngineC)
	_ = s

	lo := ch.OrderKey(1, 1, 0)
	hi := ch.OrderKey(1, 1, 9_999_999)
	pred := &exec.ScanPred{Col: "o_key", Lo: lo, Hi: hi}
	filter := exec.Between(exec.ColName("o_key"), lo, hi)

	run := func(orders exec.Source) (int, time.Duration) {
		start := time.Now()
		n := exec.From(orders).
			Filter(filter).
			Join(exec.From(ec.Source(context.Background(), ch.TOrderLine, []string{"ol_o_key", "ol_amount"}, nil)),
				[]string{"o_key"}, []string{"ol_o_key"}).
			Agg([]string{"o_key"}, exec.Agg{Kind: exec.Sum, Expr: exec.ColName("ol_amount"), Name: "rev"}).
			Count()
		return n, time.Since(start)
	}

	var out []HybridRow
	// Row-only: both sides from the disk row store.
	{
		src := ec.RowSource(context.Background(), ch.TOrders, []string{"o_key"}, pred)
		lines := time.Now()
		n := exec.From(src).Filter(filter).
			Join(exec.From(ec.RowSource(context.Background(), ch.TOrderLine, []string{"ol_o_key", "ol_amount"}, nil)),
				[]string{"o_key"}, []string{"ol_o_key"}).
			Agg([]string{"o_key"}, exec.Agg{Kind: exec.Sum, Expr: exec.ColName("ol_amount"), Name: "rev"}).
			Count()
		out = append(out, HybridRow{Plan: "row-only", Latency: time.Since(lines), Rows: n})
	}
	// Column-only: both sides from the IMCS.
	{
		start := time.Now()
		n := exec.From(ec.ColSource(context.Background(), ch.TOrders, []string{"o_key"}, pred)).Filter(filter).
			Join(exec.From(ec.ColSource(context.Background(), ch.TOrderLine, []string{"ol_o_key", "ol_amount"}, nil)),
				[]string{"o_key"}, []string{"ol_o_key"}).
			Agg([]string{"o_key"}, exec.Agg{Kind: exec.Sum, Expr: exec.ColName("ol_amount"), Name: "rev"}).
			Count()
		out = append(out, HybridRow{Plan: "column-only", Latency: time.Since(start), Rows: n})
	}
	// Hybrid: the planner picks per side (row index for the selective
	// side, column scan for the wide side).
	{
		n, lat := run(e.Source(context.Background(), ch.TOrders, []string{"o_key"}, pred))
		out = append(out, HybridRow{Plan: "hybrid(cost-based)", Latency: lat, Rows: n})
	}
	return out
}

// FormatTable2QOHybrid renders the hybrid-scan comparison.
func FormatTable2QOHybrid(rows []HybridRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-20s %12s %8s\n", "Access Path", "Latency", "Groups")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-20s %12s %8d\n", r.Plan, r.Latency.Round(time.Microsecond), r.Rows)
	}
	return b.String()
}

// AccelRow compares device placements for a mixed workload.
type AccelRow struct {
	Placement accel.Placement
	TPOps     int64
	APOps     int64
	TPRate    float64
	APRate    float64
}

// Table2QOAccel runs concurrent OLTP and OLAP streams under each CPU/GPU
// placement: a TP worker issues short row operations while an AP worker
// issues wide scan kernels, both against the routed devices.
func Table2QOAccel(o Opts) []AccelRow {
	o = o.normalize()
	const tpRows, apRows = 4, 200_000
	var out []AccelRow
	for _, p := range []accel.Placement{accel.CPUOnly, accel.GPUOnly, accel.Hybrid} {
		r := accel.NewRouter(p)
		var tp, ap atomic.Int64
		var stop atomic.Bool
		var wg sync.WaitGroup
		wg.Add(2)
		go func() {
			defer wg.Done()
			for !stop.Load() {
				r.RunTP(tpRows, tpRows*64)
				tp.Add(1)
				runtime.Gosched()
			}
		}()
		go func() {
			defer wg.Done()
			for !stop.Load() {
				r.RunAP(apRows, apRows*16)
				ap.Add(1)
				runtime.Gosched()
			}
		}()
		start := time.Now()
		time.Sleep(o.Duration)
		stop.Store(true)
		wg.Wait()
		el := time.Since(start).Seconds()
		out = append(out, AccelRow{
			Placement: p, TPOps: tp.Load(), APOps: ap.Load(),
			TPRate: float64(tp.Load()) / el, APRate: float64(ap.Load()) / el,
		})
	}
	return out
}

// FormatTable2QOAccel renders the accelerator comparison.
func FormatTable2QOAccel(rows []AccelRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-12s %12s %12s\n", "Placement", "TP(op/s)", "AP(scan/s)")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-12s %12.0f %12.1f\n", r.Placement, r.TPRate, r.APRate)
	}
	return b.String()
}

// --- Table 2, Resource Scheduling ---

// RSRow compares scheduling policies.
type RSRow struct {
	Policy     string
	TPS        float64
	QPS        float64
	FreshAvgTS float64
	Syncs      int64
}

// Table2RS runs the same mixed workload on architecture A under each
// scheduling controller: the controller adjusts the worker split, the
// execution mode, and sync triggering each epoch.
func Table2RS(o Opts) []RSRow {
	o = o.normalize()
	controllers := []sched.Controller{
		sched.WorkloadDriven{Total: 4},
		sched.FreshnessDriven{Total: 4, MaxLag: 10},
		sched.Adaptive{Total: 4, MaxLag: 10},
	}
	var out []RSRow
	for _, ctrl := range controllers {
		out = append(out, runScheduled(o, ctrl))
	}
	return out
}

func runScheduled(o Opts, ctrl sched.Controller) RSRow {
	e, s := loadEngine(core.ArchA, o)
	defer e.Close()
	driver := ch.NewDriver(e, s)
	queries := ch.Queries()
	qset := []int{1, 6}

	var syncs int64
	rngPool := make(chan *rand.Rand, 16)
	for i := 0; i < 16; i++ {
		rngPool <- rand.New(rand.NewSource(o.Seed + int64(i)))
	}
	pool := sched.NewPool(
		func() bool {
			rng := <-rngPool
			err := driver.RunOne(context.Background(), rng)
			rngPool <- rng
			return err == nil
		},
		func() bool {
			rng := <-rngPool
			qi := qset[rng.Intn(len(qset))]
			rngPool <- rng
			queries[qi](ch.Bind(context.Background(), e))
			return true
		},
	)
	defer pool.Stop()
	// Throttle intra-query (morsel) parallelism along with the AP worker
	// count: shrinking the AP share narrows each query's fan-out too. The
	// shared pool outlives the experiment, so restore its default after.
	pool.AttachExecLimiter(exec.SharedPool())
	defer exec.SharedPool().SetLimit(0)

	var lagSum float64
	var lagN int64
	decision := ctrl.Decide(sched.Signals{}, sched.Decision{})
	sched.ObserveDecision(ctrl.Name(), sched.Signals{}, decision)
	pool.Resize(decision.TPWorkers, decision.APWorkers)
	e.SetMode(decision.Mode)

	epochs := int(o.Duration / (20 * time.Millisecond))
	if epochs < 3 {
		epochs = 3
	}
	var txns, qs int64
	start := time.Now()
	for ep := 0; ep < epochs; ep++ {
		time.Sleep(20 * time.Millisecond)
		tpDone, apDone := pool.Completed()
		txns += tpDone
		qs += apDone
		snap := e.Freshness()
		lagSum += float64(snap.LagTS)
		lagN++
		sig := sched.Signals{
			TPCompleted: tpDone, APCompleted: apDone,
			TPDemand: tpDone + 1, APDemand: apDone + 1,
			LagTS: snap.LagTS, LagTime: snap.LagTime,
		}
		decision = ctrl.Decide(sig, decision)
		sched.ObserveDecision(ctrl.Name(), sig, decision)
		pool.Resize(decision.TPWorkers, decision.APWorkers)
		e.SetMode(decision.Mode)
		if decision.SyncNow {
			e.Sync()
			syncs++
		}
	}
	el := time.Since(start).Seconds()
	pool.Resize(0, 0)
	return RSRow{
		Policy: ctrl.Name(),
		TPS:    float64(txns) / el,
		QPS:    float64(qs) / el,
		FreshAvgTS: func() float64 {
			if lagN == 0 {
				return 0
			}
			return lagSum / float64(lagN)
		}(),
		Syncs: syncs,
	}
}

// FormatTable2RS renders the scheduling comparison.
func FormatTable2RS(rows []RSRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-20s %10s %10s %14s %8s\n", "Scheduler", "TP(txn/s)", "AP(q/s)", "AvgLag(commits)", "Syncs")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-20s %10.0f %10.1f %14.1f %8d\n", r.Policy, r.TPS, r.QPS, r.FreshAvgTS, r.Syncs)
	}
	return b.String()
}

// --- micro-benchmark wrappers (B3) ---

// FormatADAPT renders an ADAPT sweep.
func FormatADAPT(pts []micro.ADAPTPoint) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-8s %-8s %14s %14s\n", "Proj", "Layout", "ScanTime", "PointTime")
	for _, p := range pts {
		fmt.Fprintf(&b, "%-8.2f %-8s %14s %14s\n",
			p.Projectivity, p.Layout, p.ScanTime.Round(time.Microsecond), p.PointTime.Round(time.Microsecond))
	}
	return b.String()
}

// FormatHAP renders a HAP sweep.
func FormatHAP(pts []micro.HAPPoint) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-8s %-8s %12s\n", "UpdFrac", "Layout", "Ops/s")
	for _, p := range pts {
		fmt.Fprintf(&b, "%-8.2f %-8s %12.1f\n", p.UpdateFraction, p.Layout, p.OpsPerSec)
	}
	return b.String()
}
