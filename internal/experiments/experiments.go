// Package experiments regenerates the paper's artifacts — Figure 1,
// Table 1, Table 2, and the §2.3(2) isolation-vs-freshness evaluation — as
// measured results over the repository's engines. Both cmd/repro and the
// top-level benchmarks call into it.
//
// A note on scalability cells: the host this repository targets may have a
// single CPU, where CPU-bound parallelism cannot produce wall-clock
// speedup. Cells whose advantage comes from overlapping simulated waits
// (Raft round trips, disk I/O) show real measured speedups; cells whose
// advantage is pure multi-core compute are reported both as a measured
// speedup and as the architecture's structural parallel units (shard
// count), with EXPERIMENTS.md explaining the substitution.
package experiments

import (
	"fmt"
	"strings"
	"time"

	"htap/internal/ch"
	"htap/internal/core"
	"htap/internal/htapbench"
	"htap/internal/sched"
)

// Opts sizes the experiment suite. Defaults keep a full run under a few
// minutes; benchmarks shrink further.
type Opts struct {
	Warehouses int
	Duration   time.Duration // per measurement window
	Seed       int64
}

// DefaultOpts returns the standard experiment sizing.
func DefaultOpts() Opts {
	return Opts{Warehouses: 4, Duration: 400 * time.Millisecond, Seed: 42}
}

func (o Opts) normalize() Opts {
	if o.Warehouses <= 0 {
		o.Warehouses = 4
	}
	if o.Duration <= 0 {
		o.Duration = 400 * time.Millisecond
	}
	if o.Seed == 0 {
		o.Seed = 42
	}
	return o
}

func (o Opts) scale() ch.Scale {
	s := ch.SmallScale(o.Warehouses)
	// Spread TPC-C's hot rows (district next_o_id, warehouse YTD) widely
	// enough that multi-worker runs measure the architecture, not lock
	// ping-pong on a handful of rows.
	s.Districts = 8
	s.Customers = 40
	s.Orders = 40
	s.Items = 150
	return s
}

// NewEngine builds one architecture over the CH schema with the standard
// experiment configuration.
func NewEngine(a core.Arch) core.Engine {
	schemas := ch.Schemas()
	switch a {
	case core.ArchA:
		return core.NewEngineA(core.ConfigA{Schemas: schemas})
	case core.ArchB:
		return core.NewEngineB(core.ConfigB{
			Schemas: schemas, Partitions: 4, VotersPer: 3, LearnersPer: 1,
			NetLatency: 200 * time.Microsecond,
		})
	case core.ArchC:
		return core.NewEngineC(core.ConfigC{Schemas: schemas, Shards: 4})
	case core.ArchD:
		return core.NewEngineD(core.ConfigD{Schemas: schemas})
	default:
		panic(fmt.Sprintf("experiments: unknown arch %v", a))
	}
}

// loadEngine builds, loads and prepares an engine for measurement.
func loadEngine(a core.Arch, o Opts) (core.Engine, ch.Scale) {
	e := NewEngine(a)
	s := o.scale()
	if _, err := ch.NewGenerator(s).Load(e); err != nil {
		panic(err)
	}
	if c, ok := e.(*core.EngineC); ok {
		// Heatwave-style: load the analytically hot columns up front.
		for _, sch := range ch.Schemas() {
			cols := make([]string, len(sch.Cols))
			for i, col := range sch.Cols {
				cols[i] = col.Name
			}
			c.LoadColumns(sch.Name, cols)
		}
	}
	e.Sync()
	return e, s
}

// --- Table 1 ---

// Table1Row holds the measured cells for one architecture.
type Table1Row struct {
	Arch core.Arch
	Name string

	TPThroughput float64 // txns/sec, OLTP alone (4 workers)
	APThroughput float64 // queries/sec, OLAP alone (2 streams)

	TPSpeedup float64 // OLTP throughput ratio, 4 workers vs 1
	APUnits   int     // structural parallel scan units

	IsolationPct float64 // 100 - OLTP degradation with OLAP on (higher = better isolated)

	FreshLagMs  float64 // avg staleness (ms) under mixed load with periodic sync
	FreshLagTSs float64 // avg staleness in commits
}

// apUnits reports the structural scan parallelism of an architecture.
func apUnits(a core.Arch) int {
	switch a {
	case core.ArchB:
		return 4 // one learner per partition
	case core.ArchC:
		return 4 // IMCS shards
	default:
		return 1
	}
}

// Table1 measures all four architectures.
func Table1(o Opts) []Table1Row {
	o = o.normalize()
	var rows []Table1Row
	for _, a := range []core.Arch{core.ArchA, core.ArchB, core.ArchC, core.ArchD} {
		rows = append(rows, table1Row(a, o))
	}
	return rows
}

func table1Row(a core.Arch, o Opts) Table1Row {
	row := Table1Row{Arch: a, APUnits: apUnits(a)}

	// TP throughput and worker scalability.
	{
		e, s := loadEngine(a, o)
		row.Name = e.Name()
		one := htapbench.Run(htapbench.Config{
			Engine: e, Scale: s, TPWorkers: 1, Duration: o.Duration, Seed: o.Seed,
		})
		four := htapbench.Run(htapbench.Config{
			Engine: e, Scale: s, TPWorkers: 4, Duration: o.Duration, Seed: o.Seed + 1,
		})
		row.TPThroughput = four.TPS
		if one.TPS > 0 {
			row.TPSpeedup = four.TPS / one.TPS
		}
		e.Close()
	}

	// AP throughput.
	{
		e, s := loadEngine(a, o)
		ap := htapbench.Run(htapbench.Config{
			Engine: e, Scale: s, APStreams: 2, Duration: o.Duration,
			QuerySet: []int{1, 5, 6, 12}, Seed: o.Seed + 2,
		})
		row.APThroughput = float64(ap.Queries) / ap.Elapsed.Seconds()
		e.Close()
	}

	// Isolation: OLTP degradation when OLAP co-runs.
	{
		e, s := loadEngine(a, o)
		p := htapbench.RunIsolationProbe(htapbench.Config{
			Engine: e, Scale: s, TPWorkers: 2, APStreams: 2,
			Duration: o.Duration, QuerySet: []int{1, 6}, Seed: o.Seed + 3,
		})
		row.IsolationPct = 100 - p.DegradationPct
		e.Close()
	}

	// Freshness under mixed load with a fixed periodic sync.
	{
		e, s := loadEngine(a, o)
		res := htapbench.Run(htapbench.Config{
			Engine: e, Scale: s, TPWorkers: 2, APStreams: 1,
			Duration: o.Duration, QuerySet: []int{6},
			SyncInterval: 50 * time.Millisecond, Seed: o.Seed + 4,
		})
		row.FreshLagMs = float64(res.FreshAvgLagTime) / float64(time.Millisecond)
		row.FreshLagTSs = res.FreshAvgLagTS
		e.Close()
	}
	return row
}

// FormatTable1 renders rows like the paper's Table 1.
func FormatTable1(rows []Table1Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-24s %10s %9s %8s %8s %10s %12s\n",
		"Architecture", "TP(txn/s)", "AP(q/s)", "TPx4", "APunits", "Isol(%)", "FreshLag(ms)")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-24s %10.0f %9.1f %8.2f %8d %10.1f %12.2f\n",
			r.Arch.String(), r.TPThroughput, r.APThroughput, r.TPSpeedup,
			r.APUnits, r.IsolationPct, r.FreshLagMs)
	}
	return b.String()
}

// --- Figure 1 ---

// Fig1Row describes one architecture's data placement after a known
// workload, demonstrating the storage architecture of Figure 1.
type Fig1Row struct {
	Arch        core.Arch
	Name        string
	Description string
	Stats       core.Stats
}

var archDescriptions = map[core.Arch]string{
	core.ArchA: "memory row store (primary, MVCC) -> in-memory delta -> in-memory column store; AP = delta+column scan",
	core.ArchB: "4 Raft partitions x 3 row-store voters + 1 columnar learner; TP = 2PC+Raft+WAL; AP = log-delta+column scan on learners",
	core.ArchC: "disk row store (primary, charges I/O) -> selected columns -> 4-shard in-memory column cluster; AP = pushdown or row fallback",
	core.ArchD: "main column store (primary) <- L2 columnar delta <- L1 row delta; TP writes L1; AP = Main+L2+L1 scan",
}

// Fig1 runs a small mixed workload on each architecture and reports where
// the data physically lives.
func Fig1(o Opts) []Fig1Row {
	o = o.normalize()
	var out []Fig1Row
	for _, a := range []core.Arch{core.ArchA, core.ArchB, core.ArchC, core.ArchD} {
		e, s := loadEngine(a, o)
		htapbench.Run(htapbench.Config{
			Engine: e, Scale: s, TPWorkers: 2, APStreams: 1,
			Duration: o.Duration / 2, QuerySet: []int{1}, Seed: o.Seed,
		})
		out = append(out, Fig1Row{
			Arch: a, Name: e.Name(),
			Description: archDescriptions[a],
			Stats:       e.Stats(),
		})
		e.Close()
	}
	return out
}

// FormatFig1 renders the architecture demonstrations.
func FormatFig1(rows []Fig1Row) string {
	var b strings.Builder
	for _, r := range rows {
		fmt.Fprintf(&b, "%s (%s)\n  %s\n", r.Arch, r.Name, r.Description)
		fmt.Fprintf(&b, "  commits=%d colBytes=%d deltaRows=%d merges=%d diskReads=%d diskWrites=%d\n",
			r.Stats.Commits, r.Stats.ColBytes, r.Stats.DeltaRows, r.Stats.Merges,
			r.Stats.Disk.ReadOps, r.Stats.Disk.WriteOps)
	}
	return b.String()
}

// --- §2.3(2): isolation vs freshness trade-off ---

// TradeoffPoint is one point of the sync-period sweep on architecture A.
type TradeoffPoint struct {
	SyncInterval time.Duration
	TPS          float64
	QPS          float64
	FreshLagMs   float64
}

// Tradeoff sweeps the synchronization period: short periods keep the
// analytical view fresh but steal cycles from OLTP; long periods do the
// reverse. This regenerates the evaluation practice the paper highlights:
// "what percentage of performance degradation the systems should pay in
// order to maintain the data freshness".
func Tradeoff(o Opts, intervals []time.Duration) []TradeoffPoint {
	o = o.normalize()
	if len(intervals) == 0 {
		intervals = []time.Duration{
			2 * time.Millisecond, 20 * time.Millisecond, 200 * time.Millisecond,
		}
	}
	var out []TradeoffPoint
	for _, iv := range intervals {
		e, s := loadEngine(core.ArchA, o)
		e.SetMode(sched.Isolated) // freshness comes only from syncs
		res := htapbench.Run(htapbench.Config{
			Engine: e, Scale: s, TPWorkers: 2, APStreams: 1,
			Duration: o.Duration, QuerySet: []int{1, 6},
			SyncInterval: iv, Seed: o.Seed,
		})
		out = append(out, TradeoffPoint{
			SyncInterval: iv,
			TPS:          res.TPS,
			QPS:          float64(res.Queries) / res.Elapsed.Seconds(),
			FreshLagMs:   float64(res.FreshAvgLagTime) / float64(time.Millisecond),
		})
		e.Close()
	}
	return out
}

// FormatTradeoff renders the trade-off sweep.
func FormatTradeoff(pts []TradeoffPoint) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-14s %10s %10s %14s\n", "SyncInterval", "TP(txn/s)", "AP(q/s)", "FreshLag(ms)")
	for _, p := range pts {
		fmt.Fprintf(&b, "%-14s %10.0f %10.1f %14.2f\n",
			p.SyncInterval, p.TPS, p.QPS, p.FreshLagMs)
	}
	return b.String()
}
