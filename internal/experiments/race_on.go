//go:build race

package experiments

// raceEnabled reports whether the race detector is instrumenting this
// build; tight latency-margin assertions are skipped under it because
// instrumentation inflates CPU costs ~10x and swamps simulated-I/O margins.
const raceEnabled = true
