package experiments

import (
	"strings"
	"testing"
	"time"
)

func TestExtensionsShapes(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	r := Extensions(Opts{Warehouses: 2, Duration: 100 * time.Millisecond, Seed: 7})
	// Skew concentrates volume dramatically.
	if r.SkewedTop1Pct < r.UniformTop1Pct*5 {
		t.Errorf("skewed top-1%% share %.1f not far above uniform %.1f",
			r.SkewedTop1Pct, r.UniformTop1Pct)
	}
	// Correlation collapses nation diversity per warehouse.
	if r.SkewedNationsPerWH >= r.UniformNationsPerWH {
		t.Errorf("correlated nations/wh %.1f not below uniform %.1f",
			r.SkewedNationsPerWH, r.UniformNationsPerWH)
	}
	// The in-process analytical operation costs real work.
	if r.AnalyticalNewOrderLat <= r.PlainNewOrderLat {
		t.Errorf("analytical new-order %v not above plain %v",
			r.AnalyticalNewOrderLat, r.PlainNewOrderLat)
	}
	out := FormatExtensions(r)
	if !strings.Contains(out, "JCC-H") {
		t.Fatalf("format:\n%s", out)
	}
}
