package experiments

import (
	"strings"
	"testing"
	"time"

	"htap/internal/accel"
	"htap/internal/core"
)

// fastOpts keeps experiment tests quick.
func fastOpts() Opts {
	return Opts{Warehouses: 4, Duration: 150 * time.Millisecond, Seed: 7}
}

func TestTable1ShapesMatchPaper(t *testing.T) {
	if testing.Short() {
		t.Skip("full table-1 run is slow")
	}
	rows := Table1(fastOpts())
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	byArch := map[core.Arch]Table1Row{}
	for _, r := range rows {
		byArch[r.Arch] = r
		if r.TPThroughput <= 0 || r.APThroughput <= 0 {
			t.Fatalf("%v: empty measurements: %+v", r.Arch, r)
		}
	}
	// Paper Table 1 orderings that must hold on this substrate:
	// TP throughput: A (in-memory, centralized) beats B (quorum commits).
	if byArch[core.ArchA].TPThroughput <= byArch[core.ArchB].TPThroughput {
		t.Errorf("TP: A (%f) should beat B (%f)",
			byArch[core.ArchA].TPThroughput, byArch[core.ArchB].TPThroughput)
	}
	// TP throughput: A beats C (disk-resident rows).
	if byArch[core.ArchA].TPThroughput <= byArch[core.ArchC].TPThroughput {
		t.Errorf("TP: A (%f) should beat C (%f)",
			byArch[core.ArchA].TPThroughput, byArch[core.ArchC].TPThroughput)
	}
	// TP scalability: B overlaps replication waits and must scale better
	// than single-timestamp A on this host.
	if byArch[core.ArchB].TPSpeedup <= byArch[core.ArchA].TPSpeedup {
		t.Errorf("TP speedup: B (%f) should exceed A (%f)",
			byArch[core.ArchB].TPSpeedup, byArch[core.ArchA].TPSpeedup)
	}
	// Freshness: A (in-memory delta scans) is fresher than B (replication
	// + merge lag).
	if byArch[core.ArchA].FreshLagMs > byArch[core.ArchB].FreshLagMs {
		t.Errorf("freshness: A lag %f should be <= B lag %f",
			byArch[core.ArchA].FreshLagMs, byArch[core.ArchB].FreshLagMs)
	}
	// Structural AP parallelism: distributed column stores have more units.
	if byArch[core.ArchB].APUnits <= byArch[core.ArchA].APUnits {
		t.Error("B must have more AP units than A")
	}
	out := FormatTable1(rows)
	if !strings.Contains(out, "Architecture") || len(strings.Split(out, "\n")) < 5 {
		t.Fatalf("format:\n%s", out)
	}
}

func TestTable2TPShape(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	rows := Table2TP(fastOpts())
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	mvcc, raft := rows[0], rows[1]
	// Efficiency: MVCC commits locally, 2PC+Raft pays quorum round trips.
	if mvcc.AvgLatency >= raft.AvgLatency {
		t.Errorf("latency: MVCC %v should beat Raft %v", mvcc.AvgLatency, raft.AvgLatency)
	}
	// Scalability: the distributed engine overlaps its waits.
	if raft.Speedup <= mvcc.Speedup {
		t.Errorf("speedup: Raft %f should exceed MVCC %f", raft.Speedup, mvcc.Speedup)
	}
	FormatTable2TP(rows)
}

func TestTable2APShape(t *testing.T) {
	rows := Table2AP(fastOpts())
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	mem, log, pure := rows[0], rows[1], rows[2]
	// Pure column scans are the fastest but stale.
	if pure.QueryLat >= mem.QueryLat {
		t.Errorf("pure column scan %v should beat delta scan %v", pure.QueryLat, mem.QueryLat)
	}
	if pure.FreshLagTS == 0 {
		t.Error("pure column scan must be stale")
	}
	if mem.FreshLagTS != 0 || log.FreshLagTS != 0 {
		t.Error("delta scans must be fresh")
	}
	// Log-based delta scans pay I/O and run slower than in-memory ones.
	if log.DiskReads == 0 {
		t.Error("log delta scan performed no I/O")
	}
	if !raceEnabled && log.QueryLat <= mem.QueryLat {
		// Race instrumentation inflates the CPU-bound decode/overlay work
		// ~10x, swamping the simulated I/O margin; the I/O-count assertion
		// above still covers the cost mechanism there.
		t.Errorf("log delta scan %v should be slower than in-memory %v", log.QueryLat, mem.QueryLat)
	}
	// The in-memory delta holds memory; Table 2's "Large Memory Size".
	if mem.DeltaBytes == 0 {
		t.Error("in-memory delta reports no bytes")
	}
	FormatTable2AP(rows)
}

func TestTable2DSShape(t *testing.T) {
	rows := Table2DS(fastOpts())
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	mem, log, rebuild := rows[0], rows[1], rows[2]
	// Log merge reads the device (High Merge Cost) and is slower.
	if log.DiskReads == 0 {
		t.Error("log merge read nothing")
	}
	if !raceEnabled && log.MergeTime <= mem.MergeTime {
		t.Errorf("log merge %v should cost more than in-memory merge %v", log.MergeTime, mem.MergeTime)
	}
	// Rebuild moves the whole table (High Load Cost): base + backlog,
	// several times what either merge moves (the backlog alone).
	if rebuild.LoadCost <= mem.LoadCost*3 {
		t.Errorf("rebuild moved %d rows, want well above merge's %d", rebuild.LoadCost, mem.LoadCost)
	}
	FormatTable2DS(rows)
}

func TestTable2QOColSelShape(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	rows := Table2QOColSel(fastOpts())
	if len(rows) != 6 {
		t.Fatalf("rows = %d", len(rows))
	}
	// Utility must not decrease with budget within a policy.
	for _, pol := range []string{"static(heatmap)", "decay(learned-lite)"} {
		var prev float64 = -1
		for _, r := range rows {
			if r.Policy != pol {
				continue
			}
			if r.Utility < prev-0.01 {
				t.Errorf("%s: utility decreased with budget: %+v", pol, rows)
			}
			prev = r.Utility
		}
	}
	FormatTable2QOColSel(rows)
}

func TestTable2QOHybridShape(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	rows := Table2QOHybrid(fastOpts())
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	rowOnly, colOnly, hybrid := rows[0], rows[1], rows[2]
	if rowOnly.Rows != colOnly.Rows || colOnly.Rows != hybrid.Rows {
		t.Fatalf("plans disagree: %+v", rows)
	}
	// The hybrid plan must beat the row-only plan (its wide side avoids
	// the disk row scan).
	if hybrid.Latency >= rowOnly.Latency {
		t.Errorf("hybrid %v should beat row-only %v", hybrid.Latency, rowOnly.Latency)
	}
	FormatTable2QOHybrid(rows)
}

func TestTable2QOAccelShape(t *testing.T) {
	rows := Table2QOAccel(Opts{Duration: 100 * time.Millisecond})
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	byP := map[accel.Placement]AccelRow{}
	for _, r := range rows {
		byP[r.Placement] = r
	}
	// GPU-only lifts AP over CPU-only but destroys TP (launch overhead).
	if byP[accel.GPUOnly].APRate <= byP[accel.CPUOnly].APRate {
		t.Errorf("AP: gpu %f should beat cpu %f", byP[accel.GPUOnly].APRate, byP[accel.CPUOnly].APRate)
	}
	if byP[accel.GPUOnly].TPRate >= byP[accel.CPUOnly].TPRate {
		t.Errorf("TP: cpu %f should beat gpu %f", byP[accel.CPUOnly].TPRate, byP[accel.GPUOnly].TPRate)
	}
	// Hybrid gets (close to) the best of both.
	if byP[accel.Hybrid].APRate <= byP[accel.CPUOnly].APRate {
		t.Error("hybrid AP should beat cpu-only AP")
	}
	if byP[accel.Hybrid].TPRate <= byP[accel.GPUOnly].TPRate {
		t.Error("hybrid TP should beat gpu-only TP")
	}
	FormatTable2QOAccel(rows)
}

func TestTable2RSShape(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	rows := Table2RS(fastOpts())
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	byName := map[string]RSRow{}
	for _, r := range rows {
		byName[r.Policy] = r
		if r.TPS <= 0 {
			t.Fatalf("%s: no transactions", r.Policy)
		}
	}
	wd := byName["workload-driven"]
	fd := byName["freshness-driven"]
	// Freshness-driven syncs; workload-driven never does.
	if wd.Syncs != 0 {
		t.Errorf("workload-driven synced %d times", wd.Syncs)
	}
	if fd.Syncs == 0 {
		t.Error("freshness-driven never synced")
	}
	// Freshness-driven keeps staleness lower than workload-driven.
	if fd.FreshAvgTS >= wd.FreshAvgTS {
		t.Errorf("freshness-driven lag %f should beat workload-driven %f",
			fd.FreshAvgTS, wd.FreshAvgTS)
	}
	FormatTable2RS(rows)
}

func TestTradeoffMonotonicFreshness(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	pts := Tradeoff(fastOpts(), []time.Duration{2 * time.Millisecond, 100 * time.Millisecond})
	if len(pts) != 2 {
		t.Fatalf("points = %d", len(pts))
	}
	// Syncing less often must leave the view more stale.
	if pts[1].FreshLagMs <= pts[0].FreshLagMs {
		t.Errorf("lag at 100ms sync (%f) should exceed lag at 2ms sync (%f)",
			pts[1].FreshLagMs, pts[0].FreshLagMs)
	}
	FormatTradeoff(pts)
}

func TestFig1Describes(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	rows := Fig1(fastOpts())
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.Description == "" || r.Stats.Commits == 0 {
			t.Fatalf("%v: incomplete: %+v", r.Arch, r)
		}
	}
	out := FormatFig1(rows)
	for _, want := range []string{"Raft", "L1", "pushdown", "delta"} {
		if !strings.Contains(out, want) {
			t.Fatalf("fig1 output missing %q:\n%s", want, out)
		}
	}
}
