// Package cluster provides the in-process distributed substrate for
// architecture B (paper §2.1(b)): data is split into partitions ("Regions"
// in TiDB terms), each partition is an independent Raft group whose leader
// owns the row-store replica and whose learner applies the same log into a
// columnar replica.
//
// Real clusters span machines; here every node is in-process and the Raft
// groups share one simulated network (DESIGN.md "Substitutions"). The
// protocol costs the survey cares about — quorum round trips per write,
// asynchronous learner lag, per-partition leadership — are all preserved.
package cluster

import (
	"encoding/binary"
	"fmt"
	"sync"
	"time"

	"htap/internal/raft"
	"htap/internal/txn"
	"htap/internal/types"
)

// Command op codes carried through the Raft log.
const (
	CmdPut    byte = 1 // insert or update
	CmdDelete byte = 2
)

// Mutation is one replicated row mutation.
type Mutation struct {
	Table uint32
	Key   int64
	Op    txn.Op
	Row   types.Row
}

// EncodeBatch serializes a commit timestamp plus mutations into a Raft
// command.
func EncodeBatch(commitTS uint64, muts []Mutation) raft.Command {
	buf := binary.AppendUvarint(nil, commitTS)
	buf = binary.AppendUvarint(buf, uint64(len(muts)))
	for _, m := range muts {
		if m.Op == txn.OpDelete {
			buf = append(buf, CmdDelete)
		} else {
			buf = append(buf, CmdPut)
		}
		buf = binary.AppendUvarint(buf, uint64(m.Table))
		buf = binary.AppendVarint(buf, m.Key)
		if m.Op != txn.OpDelete {
			buf = types.AppendRow(buf, m.Row)
		}
	}
	return raft.Command(buf)
}

// DecodeBatch parses a command produced by EncodeBatch.
func DecodeBatch(cmd raft.Command) (uint64, []Mutation, error) {
	b := []byte(cmd)
	ts, n := binary.Uvarint(b)
	if n <= 0 {
		return 0, nil, fmt.Errorf("cluster: bad commit ts")
	}
	b = b[n:]
	cnt, n := binary.Uvarint(b)
	if n <= 0 {
		return 0, nil, fmt.Errorf("cluster: bad count")
	}
	b = b[n:]
	muts := make([]Mutation, 0, cnt)
	for i := uint64(0); i < cnt; i++ {
		if len(b) == 0 {
			return 0, nil, fmt.Errorf("cluster: truncated batch")
		}
		op := b[0]
		b = b[1:]
		table, n := binary.Uvarint(b)
		if n <= 0 {
			return 0, nil, fmt.Errorf("cluster: bad table")
		}
		b = b[n:]
		key, n := binary.Varint(b)
		if n <= 0 {
			return 0, nil, fmt.Errorf("cluster: bad key")
		}
		b = b[n:]
		m := Mutation{Table: uint32(table), Key: key}
		if op == CmdDelete {
			m.Op = txn.OpDelete
		} else {
			m.Op = txn.OpUpdate
			row, used, err := types.DecodeRow(b)
			if err != nil {
				return 0, nil, err
			}
			b = b[used:]
			m.Row = row
		}
		muts = append(muts, m)
	}
	return ts, muts, nil
}

// Partition is one Raft-replicated shard.
type Partition struct {
	ID    int
	Group *raft.Group
}

// Leader returns the partition's current Raft leader, waiting briefly for
// an election if necessary.
func (p *Partition) Leader() *raft.Node {
	if l := p.Group.Leader(); l != nil {
		return l
	}
	return p.Group.WaitLeader(5 * time.Second)
}

// Propose replicates a command through the partition's Raft group,
// retrying through elections until it commits or the timeout expires.
// Retries back off exponentially (1ms doubling to a 50ms cap): failures
// here mean an election is in flight, and hammering the group on a fixed
// short period only adds contention while it converges.
func (p *Partition) Propose(cmd raft.Command) error {
	deadline := time.Now().Add(10 * time.Second)
	backoff := time.Millisecond
	for {
		l := p.Leader()
		if l != nil {
			if _, err := l.Propose(cmd); err == nil {
				return nil
			}
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("cluster: partition %d: proposal timed out", p.ID)
		}
		time.Sleep(backoff)
		if backoff *= 2; backoff > 50*time.Millisecond {
			backoff = 50 * time.Millisecond
		}
	}
}

// Cluster is a set of partitions with a routing function.
type Cluster struct {
	Partitions []*Partition
	route      func(table uint32, key int64) int

	mu sync.Mutex
}

// Config sizes the cluster.
type Config struct {
	Partitions  int
	VotersPer   int // Raft voters per partition (TiDB default: 3)
	LearnersPer int // columnar learners per partition (TiFlash replicas)
	NetLatency  time.Duration
	// CompactEvery enables Raft log compaction per partition (entries
	// held before truncation); zero disables it.
	CompactEvery int
	// Route maps a (table, key) to a partition; nil hashes the key.
	Route func(table uint32, key int64) int
	// Apply is invoked for each committed batch on every replica of a
	// partition: role distinguishes row replicas (voters) from columnar
	// learners.
	Apply func(part, nodeID int, learner bool, commitTS uint64, muts []Mutation)
	// ApplyRaw, when set, receives the raw command bytes instead of a
	// decoded batch; the 2PC layer replicates its own command formats and
	// uses this hook.
	ApplyRaw func(part, nodeID int, learner bool, cmd []byte)
}

// New builds and starts a cluster.
func New(cfg Config) *Cluster {
	if cfg.Partitions <= 0 {
		cfg.Partitions = 1
	}
	if cfg.VotersPer <= 0 {
		cfg.VotersPer = 3
	}
	c := &Cluster{route: cfg.Route}
	if c.route == nil {
		c.route = func(table uint32, key int64) int {
			h := uint64(key) * 0x9e3779b97f4a7c15
			return int(h % uint64(cfg.Partitions))
		}
	}
	for pid := 0; pid < cfg.Partitions; pid++ {
		pid := pid
		var apply func(nodeID int, e raft.Entry)
		switch {
		case cfg.ApplyRaw != nil:
			apply = func(nodeID int, e raft.Entry) {
				cfg.ApplyRaw(pid, nodeID, nodeID >= cfg.VotersPer, []byte(e.Cmd))
			}
		case cfg.Apply != nil:
			apply = func(nodeID int, e raft.Entry) {
				ts, muts, err := DecodeBatch(e.Cmd)
				if err != nil {
					panic(fmt.Sprintf("cluster: undecodable raft command: %v", err))
				}
				cfg.Apply(pid, nodeID, nodeID >= cfg.VotersPer, ts, muts)
			}
		}
		g := raft.NewLocalGroupWith(cfg.VotersPer, cfg.LearnersPer, cfg.NetLatency,
			raft.Config{CompactEvery: cfg.CompactEvery}, apply)
		c.Partitions = append(c.Partitions, &Partition{ID: pid, Group: g})
	}
	return c
}

// Route returns the partition owning (table, key).
func (c *Cluster) Route(table uint32, key int64) *Partition {
	return c.Partitions[c.route(table, key)]
}

// WaitReady blocks until every partition has a leader.
func (c *Cluster) WaitReady(timeout time.Duration) error {
	for _, p := range c.Partitions {
		if p.Group.WaitLeader(timeout) == nil {
			return fmt.Errorf("cluster: partition %d has no leader", p.ID)
		}
	}
	return nil
}

// Stop shuts down all partitions.
func (c *Cluster) Stop() {
	for _, p := range c.Partitions {
		p.Group.Stop()
	}
}
