package cluster

import (
	"sync"
	"testing"
	"testing/quick"
	"time"

	"htap/internal/txn"
	"htap/internal/types"
)

func TestBatchCodecRoundTrip(t *testing.T) {
	muts := []Mutation{
		{Table: 1, Key: 10, Op: txn.OpUpdate, Row: types.Row{types.NewInt(10), types.NewString("a")}},
		{Table: 2, Key: -5, Op: txn.OpDelete},
	}
	cmd := EncodeBatch(99, muts)
	ts, got, err := DecodeBatch(cmd)
	if err != nil || ts != 99 || len(got) != 2 {
		t.Fatalf("decode = (%d, %v, %v)", ts, got, err)
	}
	if got[0].Key != 10 || got[0].Row[1].Str() != "a" {
		t.Fatalf("mut 0 = %+v", got[0])
	}
	if got[1].Op != txn.OpDelete || got[1].Key != -5 {
		t.Fatalf("mut 1 = %+v", got[1])
	}
}

func TestQuickBatchCodec(t *testing.T) {
	f := func(ts uint64, keys []int64) bool {
		muts := make([]Mutation, len(keys))
		for i, k := range keys {
			muts[i] = Mutation{Table: uint32(i), Key: k, Op: txn.OpUpdate,
				Row: types.Row{types.NewInt(k)}}
		}
		gotTS, got, err := DecodeBatch(EncodeBatch(ts, muts))
		if err != nil || gotTS != ts || len(got) != len(muts) {
			return false
		}
		for i := range muts {
			if got[i].Key != muts[i].Key || got[i].Table != muts[i].Table {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestClusterRoutingDeterministic(t *testing.T) {
	c := New(Config{Partitions: 4, VotersPer: 1})
	defer c.Stop()
	for key := int64(0); key < 100; key++ {
		p1 := c.Route(1, key)
		p2 := c.Route(1, key)
		if p1 != p2 {
			t.Fatalf("routing unstable for key %d", key)
		}
	}
}

func TestClusterReplicatesToRowAndColumnReplicas(t *testing.T) {
	type applyEvent struct {
		part    int
		learner bool
		key     int64
	}
	var mu sync.Mutex
	var events []applyEvent
	c := New(Config{
		Partitions: 2, VotersPer: 3, LearnersPer: 1,
		Route: func(table uint32, key int64) int { return int(key % 2) },
		Apply: func(part, nodeID int, learner bool, ts uint64, muts []Mutation) {
			mu.Lock()
			for _, m := range muts {
				events = append(events, applyEvent{part, learner, m.Key})
			}
			mu.Unlock()
		},
	})
	defer c.Stop()
	if err := c.WaitReady(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	for key := int64(0); key < 4; key++ {
		p := c.Route(1, key)
		cmd := EncodeBatch(uint64(key+1), []Mutation{{Table: 1, Key: key, Op: txn.OpUpdate,
			Row: types.Row{types.NewInt(key)}}})
		if err := p.Propose(cmd); err != nil {
			t.Fatalf("propose key %d: %v", key, err)
		}
	}
	// Each key applies on 3 voters + 1 learner of its partition.
	deadline := time.Now().Add(5 * time.Second)
	for {
		mu.Lock()
		n := len(events)
		mu.Unlock()
		if n >= 16 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("only %d apply events", n)
		}
		time.Sleep(5 * time.Millisecond)
	}
	mu.Lock()
	defer mu.Unlock()
	perPart := map[int]int{}
	learnerSeen := 0
	for _, e := range events {
		if e.part != int(e.key%2) {
			t.Fatalf("key %d applied on partition %d", e.key, e.part)
		}
		perPart[e.part]++
		if e.learner {
			learnerSeen++
		}
	}
	if learnerSeen < 4 {
		t.Fatalf("learner applies = %d, want >= 4", learnerSeen)
	}
}

func TestProposeSurvivesLeaderChange(t *testing.T) {
	c := New(Config{Partitions: 1, VotersPer: 3})
	defer c.Stop()
	if err := c.WaitReady(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	p := c.Partitions[0]
	l := p.Leader()
	p.Group.Net.Isolate(l.Status().ID, true)
	defer p.Group.Net.Isolate(l.Status().ID, false)
	err := p.Propose(EncodeBatch(1, []Mutation{{Table: 1, Key: 1, Op: txn.OpUpdate,
		Row: types.Row{types.NewInt(1)}}}))
	if err != nil {
		t.Fatalf("propose after leader isolation: %v", err)
	}
}
