package delta

import (
	"testing"
	"testing/quick"

	"htap/internal/disk"
	"htap/internal/txn"
	"htap/internal/types"
)

func w(key int64, op txn.Op, val int64) txn.Write {
	var row types.Row
	if op != txn.OpDelete {
		row = types.Row{types.NewInt(key), types.NewInt(val)}
	}
	return txn.Write{Table: 1, Key: key, Op: op, Row: row}
}

// stores returns both implementations for shared behavioural tests.
func stores() map[string]Store {
	return map[string]Store{
		"mem": NewMem(),
		"log": NewLog(disk.New(disk.MemConfig()), "delta"),
	}
}

func TestOverlayNetEffect(t *testing.T) {
	for name, s := range stores() {
		t.Run(name, func(t *testing.T) {
			s.Append(10, []txn.Write{w(1, txn.OpInsert, 100), w(2, txn.OpInsert, 200)})
			s.Append(11, []txn.Write{w(1, txn.OpUpdate, 101)})
			s.Append(12, []txn.Write{w(2, txn.OpDelete, 0)})

			o := s.Overlay(12)
			if len(o.Rows) != 1 || o.Rows[1][1].Int() != 101 {
				t.Fatalf("rows = %v", o.Rows)
			}
			if _, masked := o.Masked[2]; !masked {
				t.Fatal("deleted key must be masked")
			}
			if o.MaxTS != 12 {
				t.Fatalf("MaxTS = %d", o.MaxTS)
			}

			// Snapshot at 10 predates the update and delete.
			o = s.Overlay(10)
			if o.Rows[1][1].Int() != 100 || o.Rows[2][1].Int() != 200 {
				t.Fatalf("snapshot rows = %v", o.Rows)
			}
			// Snapshot at 0 sees nothing.
			if s.Overlay(0).Len() != 0 {
				t.Fatal("empty snapshot not empty")
			}
		})
	}
}

func TestPendingAndMarkMerged(t *testing.T) {
	for name, s := range stores() {
		t.Run(name, func(t *testing.T) {
			s.Append(1, []txn.Write{w(1, txn.OpInsert, 1)})
			s.Append(2, []txn.Write{w(2, txn.OpInsert, 2)})
			s.Append(3, []txn.Write{w(3, txn.OpInsert, 3)})
			if got := len(s.Pending(2)); got != 2 {
				t.Fatalf("pending(2) = %d", got)
			}
			if s.Unmerged() != 3 {
				t.Fatalf("unmerged = %d", s.Unmerged())
			}
			s.MarkMerged(2)
			if s.Unmerged() != 1 {
				t.Fatalf("unmerged after merge = %d", s.Unmerged())
			}
			p := s.Pending(100)
			if len(p) != 1 || p[0].Key != 3 {
				t.Fatalf("pending after merge = %v", p)
			}
			// Merged entries vanish from overlays too.
			if o := s.Overlay(100); o.Len() != 1 {
				t.Fatalf("overlay after merge = %v", o.Rows)
			}
			if s.Watermark() != 3 {
				t.Fatalf("watermark = %d", s.Watermark())
			}
		})
	}
}

func TestMemBytesShrinkAfterMerge(t *testing.T) {
	m := NewMem()
	for i := int64(0); i < 10; i++ {
		m.Append(uint64(i+1), []txn.Write{w(i, txn.OpInsert, i)})
	}
	full := m.Bytes()
	m.MarkMerged(5)
	if got := m.Bytes(); got >= full {
		t.Fatalf("bytes after merge = %d, want < %d", got, full)
	}
}

func TestLogDeltaChargesIO(t *testing.T) {
	dev := disk.New(disk.MemConfig())
	l := NewLog(dev, "d")
	l.Append(1, []txn.Write{w(1, txn.OpInsert, 1)})
	if dev.Stats().WriteOps == 0 {
		t.Fatal("append did not hit the device")
	}
	before := dev.Stats().ReadOps
	l.Overlay(1)
	if dev.Stats().ReadOps == before {
		t.Fatal("overlay did not read the device")
	}
}

func TestLogLookupViaBTree(t *testing.T) {
	dev := disk.New(disk.MemConfig())
	l := NewLog(dev, "d")
	l.Append(1, []txn.Write{w(7, txn.OpInsert, 70)})
	l.Append(2, []txn.Write{w(7, txn.OpUpdate, 71)})
	e, ok := l.Lookup(7)
	if !ok || e.CommitTS != 2 || e.Row[1].Int() != 71 {
		t.Fatalf("Lookup = %+v, %v", e, ok)
	}
	if _, ok := l.Lookup(99); ok {
		t.Fatal("Lookup invented an entry")
	}
}

func TestLogBytesExcludePayload(t *testing.T) {
	dev := disk.New(disk.MemConfig())
	l := NewLog(dev, "d")
	m := NewMem()
	big := make([]txn.Write, 0, 100)
	for i := int64(0); i < 100; i++ {
		big = append(big, txn.Write{Table: 1, Key: i, Op: txn.OpInsert,
			Row: types.Row{types.NewInt(i), types.NewString(string(make([]byte, 200)))}})
	}
	l.Append(1, big)
	m.Append(1, big)
	if l.Bytes() >= m.Bytes() {
		t.Fatalf("log delta memory %d should be far below mem delta %d", l.Bytes(), m.Bytes())
	}
}

func TestEntryCodecRoundTrip(t *testing.T) {
	f := func(ts uint64, key int64, val int64, del bool) bool {
		e := Entry{CommitTS: ts, Key: key, Op: txn.OpInsert,
			Row: types.Row{types.NewInt(key), types.NewInt(val)}}
		if del {
			e = Entry{CommitTS: ts, Key: key, Op: txn.OpDelete}
		}
		enc := encodeEntry(e)
		got, err := decodeEntry(enc[4:])
		if err != nil {
			return false
		}
		if got.CommitTS != e.CommitTS || got.Key != e.Key || got.Op != e.Op {
			return false
		}
		if !del && got.Row[1].Int() != val {
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: overlay equals a model computed from the same ops.
func TestQuickOverlayMatchesModel(t *testing.T) {
	f := func(ops []struct {
		Key uint8
		Val int16
		Del bool
	}) bool {
		m := NewMem()
		model := map[int64]int64{}
		for i, op := range ops {
			key := int64(op.Key % 8)
			ts := uint64(i + 1)
			if op.Del {
				m.Append(ts, []txn.Write{w(key, txn.OpDelete, 0)})
				delete(model, key)
			} else {
				m.Append(ts, []txn.Write{w(key, txn.OpUpdate, int64(op.Val))})
				model[key] = int64(op.Val)
			}
		}
		o := m.Overlay(uint64(len(ops) + 1))
		if len(o.Rows) != len(model) {
			return false
		}
		for k, v := range model {
			r, ok := o.Rows[k]
			if !ok || r[1].Int() != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
