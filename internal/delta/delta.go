// Package delta implements the delta stores that bridge OLTP writes and the
// column store.
//
// The paper's Table 2 contrasts two delta designs:
//
//   - the in-memory delta store used by Oracle dual-format, SQL Server,
//     DB2 BLU, Heatwave and HANA ("in-memory delta and column scan": high
//     freshness, large memory size), implemented here by Mem; and
//   - the log-based, disk-resident delta files used by TiDB ("log-based
//     delta and column scan": high scalability, low freshness, expensive
//     reads), implemented here by Log, whose entries live on a simulated
//     disk and are "indexed by a B+-tree, thus the delta items can be
//     efficiently located with key lookups" (§2.2(3)).
//
// Both present the same Store interface: transactions append committed
// writes; analytical scans request an Overlay — the net effect of unmerged
// entries visible at a snapshot — and the data-synchronization package
// drains entries into the column store and advances the merged watermark.
package delta

import (
	"encoding/binary"
	"fmt"
	"sync"

	"htap/internal/btree"
	"htap/internal/disk"
	"htap/internal/txn"
	"htap/internal/types"
)

// Entry is one committed mutation awaiting merge into the column store.
type Entry struct {
	CommitTS uint64
	Key      int64
	Op       txn.Op
	Row      types.Row // nil for deletes
}

// Overlay is the net effect of unmerged delta entries visible at a
// snapshot. Analytical scans apply it on top of the column store: rows in
// Rows are added, and any column-store row whose key is in Masked is
// skipped (it was updated or deleted after the column store's watermark).
type Overlay struct {
	Rows   map[int64]types.Row
	Masked map[int64]struct{}
	MaxTS  uint64
}

// Len returns the number of visible net images.
func (o *Overlay) Len() int { return len(o.Rows) }

// MaskOnly returns an overlay that suppresses the same column-store keys
// but contributes no rows. Layered stores (HANA's Main+L2+L1) scan several
// column tables under one delta: the delta's images must be emitted exactly
// once, so every scan but one uses the mask-only form.
func (o *Overlay) MaskOnly() *Overlay {
	return &Overlay{Rows: nil, Masked: o.Masked, MaxTS: o.MaxTS}
}

// Store is the common delta-store interface.
type Store interface {
	// Append records the committed writes of one transaction, in commit
	// order (callers append from inside the commit critical section or the
	// replication apply loop, both of which are ordered).
	Append(commitTS uint64, ws []txn.Write)
	// Overlay returns the net unmerged effect visible at ts.
	Overlay(ts uint64) *Overlay
	// Pending returns the unmerged entries with CommitTS <= ts, in order.
	Pending(ts uint64) []Entry
	// MarkMerged advances the merged watermark to ts, discarding entries
	// it covers.
	MarkMerged(ts uint64)
	// Unmerged reports how many entries await merging.
	Unmerged() int
	// Watermark returns the highest commit timestamp appended.
	Watermark() uint64
	// Bytes estimates the delta's memory footprint (Mem) or index+cache
	// footprint (Log).
	Bytes() int
}

// --- in-memory delta store ---

// Mem is the in-memory delta store of architectures A, C and D.
type Mem struct {
	mu      sync.RWMutex
	entries []Entry
	merged  int // prefix of entries already merged
	maxTS   uint64
}

// NewMem returns an empty in-memory delta store.
func NewMem() *Mem { return &Mem{} }

// Append implements Store.
func (m *Mem) Append(commitTS uint64, ws []txn.Write) {
	m.mu.Lock()
	for _, w := range ws {
		m.entries = append(m.entries, Entry{CommitTS: commitTS, Key: w.Key, Op: w.Op, Row: w.Row})
	}
	if commitTS > m.maxTS {
		m.maxTS = commitTS
	}
	m.mu.Unlock()
}

// Overlay implements Store.
func (m *Mem) Overlay(ts uint64) *Overlay {
	o := &Overlay{Rows: make(map[int64]types.Row), Masked: make(map[int64]struct{})}
	m.mu.RLock()
	for _, e := range m.entries[m.merged:] {
		if e.CommitTS > ts {
			break // entries are commit-ordered
		}
		o.Masked[e.Key] = struct{}{}
		if e.Op == txn.OpDelete {
			delete(o.Rows, e.Key)
		} else {
			o.Rows[e.Key] = e.Row
		}
		if e.CommitTS > o.MaxTS {
			o.MaxTS = e.CommitTS
		}
	}
	m.mu.RUnlock()
	return o
}

// Pending implements Store.
func (m *Mem) Pending(ts uint64) []Entry {
	m.mu.RLock()
	defer m.mu.RUnlock()
	var out []Entry
	for _, e := range m.entries[m.merged:] {
		if e.CommitTS > ts {
			break
		}
		out = append(out, e)
	}
	return out
}

// MarkMerged implements Store.
func (m *Mem) MarkMerged(ts uint64) {
	m.mu.Lock()
	i := m.merged
	for i < len(m.entries) && m.entries[i].CommitTS <= ts {
		i++
	}
	m.merged = i
	// Reclaim the merged prefix once it dominates the slice.
	if m.merged > 4096 && m.merged*2 > len(m.entries) {
		m.entries = append([]Entry(nil), m.entries[m.merged:]...)
		m.merged = 0
	}
	m.mu.Unlock()
}

// Unmerged implements Store.
func (m *Mem) Unmerged() int {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return len(m.entries) - m.merged
}

// Watermark implements Store.
func (m *Mem) Watermark() uint64 {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.maxTS
}

// Bytes implements Store.
func (m *Mem) Bytes() int {
	m.mu.RLock()
	defer m.mu.RUnlock()
	n := 0
	for _, e := range m.entries[m.merged:] {
		n += entryBytes(e)
	}
	return n
}

func entryBytes(e Entry) int {
	n := 24
	for _, d := range e.Row {
		n += 16 + len(d.S)
	}
	return n
}

// --- log-based (disk) delta store ---

// Log is the disk-resident, log-structured delta store of architecture B.
// Entries are appended to a simulated disk file; a B+-tree maps keys to the
// file offset of their newest entry. Reading the overlay pays disk I/O,
// which is exactly the paper's "more expensive due to reading the delta
// files" cost.
type Log struct {
	dev  *disk.Device
	file string

	mu       sync.RWMutex
	idx      *btree.Tree[logRef] // key -> newest entry location
	offsets  []int64             // commit-ordered entry offsets
	tsAt     []uint64            // commit TS per entry, parallel to offsets
	merged   int
	maxTS    uint64
	appended int64
}

// logRef locates a key's newest entry and caches its commit timestamp so
// version checks need no I/O.
type logRef struct {
	off int64
	ts  uint64
}

// NewLog returns a log-based delta store writing to the named file on dev.
func NewLog(dev *disk.Device, file string) *Log {
	return &Log{dev: dev, file: file, idx: btree.New[logRef]()}
}

// entry wire format: u32 length | payload
// payload: uvarint commitTS | op byte | varint key | row (insert/update)

func encodeEntry(e Entry) []byte {
	payload := make([]byte, 0, 64)
	payload = binary.AppendUvarint(payload, e.CommitTS)
	payload = append(payload, byte(e.Op))
	payload = binary.AppendVarint(payload, e.Key)
	if e.Op != txn.OpDelete {
		payload = types.AppendRow(payload, e.Row)
	}
	buf := make([]byte, 4, 4+len(payload))
	binary.BigEndian.PutUint32(buf, uint32(len(payload)))
	return append(buf, payload...)
}

func decodeEntry(p []byte) (Entry, error) {
	var e Entry
	ts, n := binary.Uvarint(p)
	if n <= 0 {
		return e, fmt.Errorf("delta: bad commit ts")
	}
	p = p[n:]
	if len(p) == 0 {
		return e, fmt.Errorf("delta: missing op")
	}
	op := txn.Op(p[0])
	p = p[1:]
	key, n := binary.Varint(p)
	if n <= 0 {
		return e, fmt.Errorf("delta: bad key")
	}
	p = p[n:]
	e = Entry{CommitTS: ts, Key: key, Op: op}
	if op != txn.OpDelete {
		row, _, err := types.DecodeRow(p)
		if err != nil {
			return e, err
		}
		e.Row = row
	}
	return e, nil
}

// Append implements Store.
func (l *Log) Append(commitTS uint64, ws []txn.Write) {
	var buf []byte
	type meta struct {
		key int64
		off int64
	}
	metas := make([]meta, 0, len(ws))
	l.mu.Lock()
	base := l.dev.Size(l.file)
	rel := int64(0)
	for _, w := range ws {
		e := Entry{CommitTS: commitTS, Key: w.Key, Op: w.Op, Row: w.Row}
		enc := encodeEntry(e)
		metas = append(metas, meta{w.Key, base + rel})
		rel += int64(len(enc))
		buf = append(buf, enc...)
	}
	if len(buf) > 0 {
		if _, err := l.dev.Append(l.file, buf); err != nil {
			l.mu.Unlock()
			panic(fmt.Sprintf("delta: append to simulated device failed: %v", err))
		}
	}
	for _, m := range metas {
		l.idx.Put(m.key, logRef{off: m.off, ts: commitTS})
		l.offsets = append(l.offsets, m.off)
		l.tsAt = append(l.tsAt, commitTS)
	}
	if commitTS > l.maxTS {
		l.maxTS = commitTS
	}
	l.appended += int64(len(ws))
	l.mu.Unlock()
}

// readEntry reads and decodes the entry at off, paying device I/O.
func (l *Log) readEntry(off int64) (Entry, error) {
	var hdr [4]byte
	if err := l.dev.ReadAt(l.file, hdr[:], off); err != nil {
		return Entry{}, err
	}
	length := binary.BigEndian.Uint32(hdr[:])
	payload := make([]byte, length)
	if err := l.dev.ReadAt(l.file, payload, off+4); err != nil {
		return Entry{}, err
	}
	return decodeEntry(payload)
}

// readRange reads and decodes the unmerged entries with CommitTS <= ts.
// The delta file is log-structured, so these entries occupy one contiguous
// byte range, fetched with a single sequential read — the realistic access
// pattern, and one that keeps simulated I/O charges proportional to bytes
// rather than entry count.
func (l *Log) readRange(ts uint64) []Entry {
	l.mu.RLock()
	first, count := -1, 0
	for i := l.merged; i < len(l.offsets); i++ {
		if l.tsAt[i] > ts {
			break
		}
		if first < 0 {
			first = i
		}
		count++
	}
	var start, end int64
	if first >= 0 {
		start = l.offsets[first]
		if next := first + count; next < len(l.offsets) {
			end = l.offsets[next]
		} else {
			end = l.dev.Size(l.file)
		}
	}
	l.mu.RUnlock()
	if count == 0 {
		return nil
	}
	buf := make([]byte, end-start)
	if err := l.dev.ReadAt(l.file, buf, start); err != nil {
		panic(fmt.Sprintf("delta: reading log delta: %v", err))
	}
	out := make([]Entry, 0, count)
	pos := 0
	for len(out) < count {
		if pos+4 > len(buf) {
			panic("delta: truncated log delta")
		}
		length := int(binary.BigEndian.Uint32(buf[pos : pos+4]))
		pos += 4
		e, err := decodeEntry(buf[pos : pos+length])
		if err != nil {
			panic(fmt.Sprintf("delta: corrupt log delta: %v", err))
		}
		pos += length
		out = append(out, e)
	}
	return out
}

// Overlay implements Store; it reads the unmerged entries from the
// simulated disk in one sequential pass.
func (l *Log) Overlay(ts uint64) *Overlay {
	o := &Overlay{Rows: make(map[int64]types.Row), Masked: make(map[int64]struct{})}
	for _, e := range l.readRange(ts) {
		o.Masked[e.Key] = struct{}{}
		if e.Op == txn.OpDelete {
			delete(o.Rows, e.Key)
		} else {
			o.Rows[e.Key] = e.Row
		}
		if e.CommitTS > o.MaxTS {
			o.MaxTS = e.CommitTS
		}
	}
	return o
}

// Lookup returns the newest entry for key, reading it from disk via the
// B+-tree index (the key-lookup fast path of §2.2(3)(ii)).
func (l *Log) Lookup(key int64) (Entry, bool) {
	l.mu.RLock()
	ref, ok := l.idx.Get(key)
	l.mu.RUnlock()
	if !ok {
		return Entry{}, false
	}
	e, err := l.readEntry(ref.off)
	if err != nil {
		return Entry{}, false
	}
	return e, true
}

// LatestTS returns the commit timestamp of the newest entry for key (0 if
// absent) without touching the device; distributed prepare validation uses
// it on learner replicas.
func (l *Log) LatestTS(key int64) uint64 {
	l.mu.RLock()
	defer l.mu.RUnlock()
	ref, ok := l.idx.Get(key)
	if !ok {
		return 0
	}
	return ref.ts
}

// Pending implements Store.
func (l *Log) Pending(ts uint64) []Entry {
	return l.readRange(ts)
}

// MarkMerged implements Store.
func (l *Log) MarkMerged(ts uint64) {
	l.mu.Lock()
	i := l.merged
	for i < len(l.tsAt) && l.tsAt[i] <= ts {
		i++
	}
	l.merged = i
	l.mu.Unlock()
}

// Unmerged implements Store.
func (l *Log) Unmerged() int {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return len(l.offsets) - l.merged
}

// Watermark implements Store.
func (l *Log) Watermark() uint64 {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return l.maxTS
}

// Bytes implements Store: only the index and offset arrays live in memory;
// entry payloads are on disk.
func (l *Log) Bytes() int {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return 16*(len(l.offsets)-l.merged) + 24*l.idx.Len()
}

var (
	_ Store = (*Mem)(nil)
	_ Store = (*Log)(nil)
)
