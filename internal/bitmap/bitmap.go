// Package bitmap provides a compact grow-on-demand bitset.
//
// Column-store segments use it as the delete bitmap described throughout the
// paper's §2.2 ("the older version is marked as a delete row in a delete
// bitmap"), and delta stores use it to track which delta entries have been
// merged into the main column store.
package bitmap

import "math/bits"

// Bitmap is a dense bitset over non-negative integers. The zero value is an
// empty bitmap ready for use. Not safe for concurrent mutation.
type Bitmap struct {
	words []uint64
	count int
}

// New returns a bitmap pre-sized for n bits.
func New(n int) *Bitmap {
	return &Bitmap{words: make([]uint64, (n+63)/64)}
}

func (b *Bitmap) grow(word int) {
	for len(b.words) <= word {
		b.words = append(b.words, 0)
	}
}

// Set sets bit i, reporting whether it was newly set.
func (b *Bitmap) Set(i int) bool {
	w, m := i>>6, uint64(1)<<(uint(i)&63)
	b.grow(w)
	if b.words[w]&m != 0 {
		return false
	}
	b.words[w] |= m
	b.count++
	return true
}

// Clear clears bit i, reporting whether it was previously set.
func (b *Bitmap) Clear(i int) bool {
	w, m := i>>6, uint64(1)<<(uint(i)&63)
	if w >= len(b.words) || b.words[w]&m == 0 {
		return false
	}
	b.words[w] &^= m
	b.count--
	return true
}

// Get reports whether bit i is set.
func (b *Bitmap) Get(i int) bool {
	w := i >> 6
	return w < len(b.words) && b.words[w]&(uint64(1)<<(uint(i)&63)) != 0
}

// Count returns the number of set bits.
func (b *Bitmap) Count() int { return b.count }

// Any reports whether any bit is set.
func (b *Bitmap) Any() bool { return b.count > 0 }

// ForEach calls fn for every set bit in ascending order until fn returns
// false.
func (b *Bitmap) ForEach(fn func(i int) bool) {
	for wi, w := range b.words {
		for w != 0 {
			bit := bits.TrailingZeros64(w)
			if !fn(wi*64 + bit) {
				return
			}
			w &= w - 1
		}
	}
}

// Fill sets bits [0, n), growing as needed; selection vectors start from
// an all-selected state of the segment's row count.
func (b *Bitmap) Fill(n int) {
	if n <= 0 {
		return
	}
	words := (n + 63) / 64
	b.grow(words - 1)
	for w := 0; w < words-1; w++ {
		b.words[w] = ^uint64(0)
	}
	if rem := uint(n) & 63; rem != 0 {
		b.words[words-1] = (uint64(1) << rem) - 1
	} else {
		b.words[words-1] = ^uint64(0)
	}
	for w := words; w < len(b.words); w++ {
		b.words[w] = 0
	}
	b.recount()
}

// And intersects b with o in place.
func (b *Bitmap) And(o *Bitmap) {
	for w := range b.words {
		if w < len(o.words) {
			b.words[w] &= o.words[w]
		} else {
			b.words[w] = 0
		}
	}
	b.recount()
}

// AndNot clears every bit of b that is set in o; ANDing a selection vector
// with the complement of a delete bitmap folds deletes into the selection.
func (b *Bitmap) AndNot(o *Bitmap) {
	n := len(b.words)
	if len(o.words) < n {
		n = len(o.words)
	}
	for w := 0; w < n; w++ {
		b.words[w] &^= o.words[w]
	}
	b.recount()
}

// ClearRange clears bits [lo, hi); RLE predicate evaluation drops whole
// runs with one or two word-masked stores per run.
func (b *Bitmap) ClearRange(lo, hi int) {
	if lo < 0 {
		lo = 0
	}
	if max := len(b.words) * 64; hi > max {
		hi = max
	}
	if lo >= hi {
		return
	}
	loW, hiW := lo>>6, (hi-1)>>6
	loMask := ^uint64(0) << (uint(lo) & 63)
	hiMask := ^uint64(0) >> (63 - (uint(hi-1) & 63))
	if loW == hiW {
		b.clearMask(loW, loMask&hiMask)
		return
	}
	b.clearMask(loW, loMask)
	for w := loW + 1; w < hiW; w++ {
		b.count -= bits.OnesCount64(b.words[w])
		b.words[w] = 0
	}
	b.clearMask(hiW, hiMask)
}

func (b *Bitmap) clearMask(w int, mask uint64) {
	b.count -= bits.OnesCount64(b.words[w] & mask)
	b.words[w] &^= mask
}

// NextSet returns the smallest set bit >= i, or -1 when none remains.
// Selection-vector scans use it to resume mid-segment at batch boundaries.
func (b *Bitmap) NextSet(i int) int {
	if i < 0 {
		i = 0
	}
	w := i >> 6
	if w >= len(b.words) {
		return -1
	}
	if cur := b.words[w] >> (uint(i) & 63); cur != 0 {
		return i + bits.TrailingZeros64(cur)
	}
	for w++; w < len(b.words); w++ {
		if b.words[w] != 0 {
			return w*64 + bits.TrailingZeros64(b.words[w])
		}
	}
	return -1
}

func (b *Bitmap) recount() {
	n := 0
	for _, w := range b.words {
		n += bits.OnesCount64(w)
	}
	b.count = n
}

// Clone returns an independent copy.
func (b *Bitmap) Clone() *Bitmap {
	c := &Bitmap{words: make([]uint64, len(b.words)), count: b.count}
	copy(c.words, b.words)
	return c
}

// Word returns the 64-bit word containing bits [64w, 64w+63]; scan loops use
// it to skip fully-live runs without per-bit tests.
func (b *Bitmap) Word(w int) uint64 {
	if w >= len(b.words) {
		return 0
	}
	return b.words[w]
}
