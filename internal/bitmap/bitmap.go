// Package bitmap provides a compact grow-on-demand bitset.
//
// Column-store segments use it as the delete bitmap described throughout the
// paper's §2.2 ("the older version is marked as a delete row in a delete
// bitmap"), and delta stores use it to track which delta entries have been
// merged into the main column store.
package bitmap

import "math/bits"

// Bitmap is a dense bitset over non-negative integers. The zero value is an
// empty bitmap ready for use. Not safe for concurrent mutation.
type Bitmap struct {
	words []uint64
	count int
}

// New returns a bitmap pre-sized for n bits.
func New(n int) *Bitmap {
	return &Bitmap{words: make([]uint64, (n+63)/64)}
}

func (b *Bitmap) grow(word int) {
	for len(b.words) <= word {
		b.words = append(b.words, 0)
	}
}

// Set sets bit i, reporting whether it was newly set.
func (b *Bitmap) Set(i int) bool {
	w, m := i>>6, uint64(1)<<(uint(i)&63)
	b.grow(w)
	if b.words[w]&m != 0 {
		return false
	}
	b.words[w] |= m
	b.count++
	return true
}

// Clear clears bit i, reporting whether it was previously set.
func (b *Bitmap) Clear(i int) bool {
	w, m := i>>6, uint64(1)<<(uint(i)&63)
	if w >= len(b.words) || b.words[w]&m == 0 {
		return false
	}
	b.words[w] &^= m
	b.count--
	return true
}

// Get reports whether bit i is set.
func (b *Bitmap) Get(i int) bool {
	w := i >> 6
	return w < len(b.words) && b.words[w]&(uint64(1)<<(uint(i)&63)) != 0
}

// Count returns the number of set bits.
func (b *Bitmap) Count() int { return b.count }

// Any reports whether any bit is set.
func (b *Bitmap) Any() bool { return b.count > 0 }

// ForEach calls fn for every set bit in ascending order until fn returns
// false.
func (b *Bitmap) ForEach(fn func(i int) bool) {
	for wi, w := range b.words {
		for w != 0 {
			bit := bits.TrailingZeros64(w)
			if !fn(wi*64 + bit) {
				return
			}
			w &= w - 1
		}
	}
}

// Clone returns an independent copy.
func (b *Bitmap) Clone() *Bitmap {
	c := &Bitmap{words: make([]uint64, len(b.words)), count: b.count}
	copy(c.words, b.words)
	return c
}

// Word returns the 64-bit word containing bits [64w, 64w+63]; scan loops use
// it to skip fully-live runs without per-bit tests.
func (b *Bitmap) Word(w int) uint64 {
	if w >= len(b.words) {
		return 0
	}
	return b.words[w]
}
