package bitmap

import (
	"testing"
	"testing/quick"
)

func TestSetGetClear(t *testing.T) {
	b := New(10)
	if b.Get(3) {
		t.Fatal("fresh bitmap has bit set")
	}
	if !b.Set(3) {
		t.Fatal("Set on clear bit returned false")
	}
	if b.Set(3) {
		t.Fatal("Set on set bit returned true")
	}
	if !b.Get(3) || b.Count() != 1 {
		t.Fatal("Get/Count after Set broken")
	}
	if !b.Clear(3) {
		t.Fatal("Clear on set bit returned false")
	}
	if b.Clear(3) {
		t.Fatal("Clear on clear bit returned true")
	}
	if b.Get(3) || b.Count() != 0 || b.Any() {
		t.Fatal("state after Clear broken")
	}
}

func TestGrowBeyondInitial(t *testing.T) {
	b := New(1)
	b.Set(1000)
	if !b.Get(1000) || b.Count() != 1 {
		t.Fatal("grow-on-set broken")
	}
	if b.Get(999) || b.Get(1001) {
		t.Fatal("neighbors affected")
	}
}

func TestZeroValueUsable(t *testing.T) {
	var b Bitmap
	b.Set(5)
	if !b.Get(5) {
		t.Fatal("zero-value bitmap unusable")
	}
	if b.Get(1 << 20) {
		t.Fatal("Get past end should be false")
	}
}

func TestForEachOrderAndStop(t *testing.T) {
	b := New(0)
	for _, i := range []int{5, 64, 63, 300, 0} {
		b.Set(i)
	}
	var got []int
	b.ForEach(func(i int) bool { got = append(got, i); return true })
	want := []int{0, 5, 63, 64, 300}
	if len(got) != len(want) {
		t.Fatalf("ForEach got %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ForEach got %v, want %v", got, want)
		}
	}
	n := 0
	b.ForEach(func(i int) bool { n++; return n < 2 })
	if n != 2 {
		t.Fatalf("early stop visited %d", n)
	}
}

func TestClone(t *testing.T) {
	b := New(0)
	b.Set(7)
	c := b.Clone()
	c.Set(8)
	if b.Get(8) {
		t.Fatal("Clone aliases original")
	}
	if !c.Get(7) || c.Count() != 2 {
		t.Fatal("Clone lost bits")
	}
}

func TestWord(t *testing.T) {
	b := New(0)
	b.Set(0)
	b.Set(63)
	if b.Word(0) != (1 | 1<<63) {
		t.Fatalf("Word(0) = %x", b.Word(0))
	}
	if b.Word(5) != 0 {
		t.Fatal("Word past end should be 0")
	}
}

// Property: count always equals the number of distinct set indices.
func TestQuickCountMatchesSet(t *testing.T) {
	f := func(idx []uint16) bool {
		b := New(0)
		ref := map[int]bool{}
		for _, i := range idx {
			b.Set(int(i))
			ref[int(i)] = true
		}
		if b.Count() != len(ref) {
			return false
		}
		for i := range ref {
			if !b.Get(i) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestFill(t *testing.T) {
	for _, n := range []int{0, 1, 63, 64, 65, 127, 128, 200} {
		b := New(n)
		b.Fill(n)
		if b.Count() != n {
			t.Fatalf("Fill(%d): count = %d", n, b.Count())
		}
		if n > 0 && (!b.Get(0) || !b.Get(n-1)) {
			t.Fatalf("Fill(%d): boundary bits unset", n)
		}
		if b.Get(n) {
			t.Fatalf("Fill(%d): bit %d set past end", n, n)
		}
	}
	// Refilling a smaller range clears the tail.
	b := New(128)
	b.Fill(128)
	b.Fill(10)
	if b.Count() != 10 || b.Get(10) || b.Get(127) {
		t.Fatalf("Fill shrink: count=%d", b.Count())
	}
}

func TestAndAndNot(t *testing.T) {
	a := New(128)
	a.Fill(100)
	o := New(128)
	for i := 0; i < 100; i += 3 {
		o.Set(i)
	}
	c := a.Clone()
	c.And(o)
	if c.Count() != o.Count() {
		t.Fatalf("And: count=%d want %d", c.Count(), o.Count())
	}
	d := a.Clone()
	d.AndNot(o)
	if d.Count() != 100-o.Count() {
		t.Fatalf("AndNot: count=%d want %d", d.Count(), 100-o.Count())
	}
	for i := 0; i < 100; i++ {
		if d.Get(i) == o.Get(i) {
			t.Fatalf("AndNot: bit %d wrong", i)
		}
	}
	// And with a shorter bitmap zeroes the excess words.
	short := New(10)
	short.Set(1)
	e := a.Clone()
	e.And(short)
	if e.Count() != 1 || !e.Get(1) {
		t.Fatalf("And(short): count=%d", e.Count())
	}
}

func TestClearRange(t *testing.T) {
	cases := [][2]int{{0, 0}, {0, 1}, {0, 64}, {1, 63}, {63, 65}, {10, 130}, {64, 128}, {100, 200}, {-5, 3}, {190, 500}}
	for _, c := range cases {
		b := New(200)
		b.Fill(200)
		b.ClearRange(c[0], c[1])
		for i := 0; i < 200; i++ {
			want := i < c[0] || i >= c[1]
			if b.Get(i) != want {
				t.Fatalf("ClearRange(%d,%d): bit %d = %v", c[0], c[1], i, b.Get(i))
			}
		}
		wantCount := 0
		for i := 0; i < 200; i++ {
			if i < c[0] || i >= c[1] {
				wantCount++
			}
		}
		if b.Count() != wantCount {
			t.Fatalf("ClearRange(%d,%d): count=%d want %d", c[0], c[1], b.Count(), wantCount)
		}
	}
}

func TestNextSet(t *testing.T) {
	b := New(200)
	for _, i := range []int{3, 64, 65, 130, 199} {
		b.Set(i)
	}
	cases := map[int]int{0: 3, 3: 3, 4: 64, 64: 64, 65: 65, 66: 130, 131: 199, 199: 199, 200: -1, -7: 3}
	for from, want := range cases {
		if got := b.NextSet(from); got != want {
			t.Fatalf("NextSet(%d) = %d, want %d", from, got, want)
		}
	}
	if New(0).NextSet(0) != -1 {
		t.Fatal("NextSet on empty bitmap should be -1")
	}
}

// Property: ClearRange equals per-bit Clear.
func TestQuickClearRange(t *testing.T) {
	f := func(lo, span uint8) bool {
		b := New(300)
		b.Fill(300)
		ref := New(300)
		ref.Fill(300)
		l, h := int(lo), int(lo)+int(span)
		b.ClearRange(l, h)
		for i := l; i < h && i < 300; i++ {
			ref.Clear(i)
		}
		if b.Count() != ref.Count() {
			return false
		}
		for i := 0; i < 300; i++ {
			if b.Get(i) != ref.Get(i) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
