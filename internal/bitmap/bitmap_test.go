package bitmap

import (
	"testing"
	"testing/quick"
)

func TestSetGetClear(t *testing.T) {
	b := New(10)
	if b.Get(3) {
		t.Fatal("fresh bitmap has bit set")
	}
	if !b.Set(3) {
		t.Fatal("Set on clear bit returned false")
	}
	if b.Set(3) {
		t.Fatal("Set on set bit returned true")
	}
	if !b.Get(3) || b.Count() != 1 {
		t.Fatal("Get/Count after Set broken")
	}
	if !b.Clear(3) {
		t.Fatal("Clear on set bit returned false")
	}
	if b.Clear(3) {
		t.Fatal("Clear on clear bit returned true")
	}
	if b.Get(3) || b.Count() != 0 || b.Any() {
		t.Fatal("state after Clear broken")
	}
}

func TestGrowBeyondInitial(t *testing.T) {
	b := New(1)
	b.Set(1000)
	if !b.Get(1000) || b.Count() != 1 {
		t.Fatal("grow-on-set broken")
	}
	if b.Get(999) || b.Get(1001) {
		t.Fatal("neighbors affected")
	}
}

func TestZeroValueUsable(t *testing.T) {
	var b Bitmap
	b.Set(5)
	if !b.Get(5) {
		t.Fatal("zero-value bitmap unusable")
	}
	if b.Get(1 << 20) {
		t.Fatal("Get past end should be false")
	}
}

func TestForEachOrderAndStop(t *testing.T) {
	b := New(0)
	for _, i := range []int{5, 64, 63, 300, 0} {
		b.Set(i)
	}
	var got []int
	b.ForEach(func(i int) bool { got = append(got, i); return true })
	want := []int{0, 5, 63, 64, 300}
	if len(got) != len(want) {
		t.Fatalf("ForEach got %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ForEach got %v, want %v", got, want)
		}
	}
	n := 0
	b.ForEach(func(i int) bool { n++; return n < 2 })
	if n != 2 {
		t.Fatalf("early stop visited %d", n)
	}
}

func TestClone(t *testing.T) {
	b := New(0)
	b.Set(7)
	c := b.Clone()
	c.Set(8)
	if b.Get(8) {
		t.Fatal("Clone aliases original")
	}
	if !c.Get(7) || c.Count() != 2 {
		t.Fatal("Clone lost bits")
	}
}

func TestWord(t *testing.T) {
	b := New(0)
	b.Set(0)
	b.Set(63)
	if b.Word(0) != (1 | 1<<63) {
		t.Fatalf("Word(0) = %x", b.Word(0))
	}
	if b.Word(5) != 0 {
		t.Fatal("Word past end should be 0")
	}
}

// Property: count always equals the number of distinct set indices.
func TestQuickCountMatchesSet(t *testing.T) {
	f := func(idx []uint16) bool {
		b := New(0)
		ref := map[int]bool{}
		for _, i := range idx {
			b.Set(int(i))
			ref[int(i)] = true
		}
		if b.Count() != len(ref) {
			return false
		}
		for i := range ref {
			if !b.Get(i) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
