// Package colsel implements automatic column selection for HTAP (paper
// §2.2(4)(i) and §2.4): deciding which columns of the primary (row) store
// to load into a bounded in-memory column store.
//
// Two policies are provided:
//
//   - Static: the Oracle 21c Heatmap approach the paper describes — rank
//     columns by cumulative historical access counts and greedily fill the
//     memory budget. "Existing methods rely heavily on the historical
//     statistics … thus are expensive and inflexible."
//   - Decay: the lightweight online method §2.4 calls for — exponentially
//     decayed access counts adapt to workload shift without replaying the
//     full history. This is the repository's stand-in for the envisioned
//     learned method: it "captures the access patterns of workloads without
//     executing the entire workload".
//
// Selection is benefit-density greedy: highest access-per-byte first, which
// is the usual knapsack relaxation for cache admission.
package colsel

import (
	"sort"
	"sync"
)

// ColumnID names a column of a table.
type ColumnID struct {
	Table string
	Col   string
}

// Policy selects which statistic drives ranking.
type Policy uint8

// Policies.
const (
	Static Policy = iota + 1 // cumulative counts (Heatmap-style)
	Decay                    // exponentially decayed counts (adaptive)
)

// Advisor tracks per-column access heat and recommends a column set under
// a memory budget.
type Advisor struct {
	policy Policy
	alpha  float64 // decay retained per Tick, e.g. 0.8

	mu     sync.Mutex
	static map[ColumnID]float64
	heat   map[ColumnID]float64
}

// NewAdvisor returns an advisor with the given policy. alpha is the
// fraction of heat retained per Tick under the Decay policy (0 < alpha < 1).
func NewAdvisor(policy Policy, alpha float64) *Advisor {
	if alpha <= 0 || alpha >= 1 {
		alpha = 0.8
	}
	return &Advisor{
		policy: policy,
		alpha:  alpha,
		static: make(map[ColumnID]float64),
		heat:   make(map[ColumnID]float64),
	}
}

// Record notes that a query touched the given columns with the given weight
// (e.g. rows scanned).
func (a *Advisor) Record(cols []ColumnID, weight float64) {
	if weight <= 0 {
		weight = 1
	}
	a.mu.Lock()
	for _, c := range cols {
		a.static[c] += weight
		a.heat[c] += weight
	}
	a.mu.Unlock()
}

// Tick ages the decayed statistics; call it once per scheduling epoch.
func (a *Advisor) Tick() {
	a.mu.Lock()
	for c, v := range a.heat {
		v *= a.alpha
		if v < 1e-6 {
			delete(a.heat, c)
		} else {
			a.heat[c] = v
		}
	}
	a.mu.Unlock()
}

// Score returns the ranking statistic for a column under the policy.
func (a *Advisor) Score(c ColumnID) float64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.policy == Decay {
		return a.heat[c]
	}
	return a.static[c]
}

// Candidate pairs a column with its in-memory size.
type Candidate struct {
	ID    ColumnID
	Bytes int
}

// Selection is the advisor's recommendation.
type Selection struct {
	Columns   []ColumnID
	UsedBytes int
	// Utility is the fraction of total recorded heat covered by the
	// selection — the "memory utility" axis of Table 2.
	Utility float64
}

// Select greedily packs candidates into budgetBytes by heat density.
// Zero-heat columns are never selected.
func (a *Advisor) Select(cands []Candidate, budgetBytes int) Selection {
	a.mu.Lock()
	stats := a.heat
	if a.policy == Static {
		stats = a.static
	}
	type scored struct {
		c       Candidate
		score   float64
		density float64
	}
	items := make([]scored, 0, len(cands))
	total := 0.0
	for _, c := range cands {
		s := stats[c.ID]
		total += s
		if s <= 0 {
			continue
		}
		b := c.Bytes
		if b <= 0 {
			b = 1
		}
		items = append(items, scored{c, s, s / float64(b)})
	}
	a.mu.Unlock()

	sort.Slice(items, func(i, j int) bool {
		if items[i].density != items[j].density {
			return items[i].density > items[j].density
		}
		return items[i].c.ID.Col < items[j].c.ID.Col // stable tie-break
	})
	var sel Selection
	covered := 0.0
	for _, it := range items {
		if sel.UsedBytes+it.c.Bytes > budgetBytes {
			continue
		}
		sel.Columns = append(sel.Columns, it.c.ID)
		sel.UsedBytes += it.c.Bytes
		covered += it.score
	}
	if total > 0 {
		sel.Utility = covered / total
	}
	return sel
}

// Contains reports whether the selection includes every given column; the
// planner uses it to decide whether a query can be pushed down to the
// in-memory column store.
func (s Selection) Contains(cols ...ColumnID) bool {
	set := make(map[ColumnID]struct{}, len(s.Columns))
	for _, c := range s.Columns {
		set[c] = struct{}{}
	}
	for _, c := range cols {
		if _, ok := set[c]; !ok {
			return false
		}
	}
	return true
}
