package colsel

import "testing"

func cid(table, col string) ColumnID { return ColumnID{Table: table, Col: col} }

func TestStaticSelectionByDensity(t *testing.T) {
	a := NewAdvisor(Static, 0)
	a.Record([]ColumnID{cid("t", "hot")}, 100)
	a.Record([]ColumnID{cid("t", "warm")}, 50)
	a.Record([]ColumnID{cid("t", "cold")}, 1)
	cands := []Candidate{
		{cid("t", "hot"), 100},
		{cid("t", "warm"), 100},
		{cid("t", "cold"), 100},
	}
	sel := a.Select(cands, 200)
	if len(sel.Columns) != 2 {
		t.Fatalf("selected %v", sel.Columns)
	}
	if !sel.Contains(cid("t", "hot"), cid("t", "warm")) {
		t.Fatalf("selected %v, want hot+warm", sel.Columns)
	}
	if sel.UsedBytes != 200 {
		t.Fatalf("used = %d", sel.UsedBytes)
	}
	if sel.Utility < 0.9 || sel.Utility > 1 {
		t.Fatalf("utility = %f, want ~150/151", sel.Utility)
	}
}

func TestDensityBeatsRawHeat(t *testing.T) {
	a := NewAdvisor(Static, 0)
	a.Record([]ColumnID{cid("t", "big")}, 100)   // 100 heat / 1000 bytes
	a.Record([]ColumnID{cid("t", "small")}, 60)  // 60 heat / 100 bytes
	a.Record([]ColumnID{cid("t", "small2")}, 50) // 50 heat / 100 bytes
	sel := a.Select([]Candidate{
		{cid("t", "big"), 1000},
		{cid("t", "small"), 100},
		{cid("t", "small2"), 100},
	}, 250)
	if !sel.Contains(cid("t", "small"), cid("t", "small2")) || len(sel.Columns) != 2 {
		t.Fatalf("selected %v, want the two dense small columns", sel.Columns)
	}
}

func TestZeroHeatNeverSelected(t *testing.T) {
	a := NewAdvisor(Static, 0)
	sel := a.Select([]Candidate{{cid("t", "untouched"), 10}}, 1000)
	if len(sel.Columns) != 0 {
		t.Fatalf("selected unaccessed column: %v", sel.Columns)
	}
}

func TestDecayAdaptsToWorkloadShift(t *testing.T) {
	static := NewAdvisor(Static, 0)
	decay := NewAdvisor(Decay, 0.5)
	// Phase 1: column A is hot for a long time.
	for i := 0; i < 50; i++ {
		static.Record([]ColumnID{cid("t", "a")}, 10)
		decay.Record([]ColumnID{cid("t", "a")}, 10)
		decay.Tick()
	}
	// Phase 2: the workload shifts entirely to column B.
	for i := 0; i < 8; i++ {
		static.Record([]ColumnID{cid("t", "b")}, 10)
		decay.Record([]ColumnID{cid("t", "b")}, 10)
		decay.Tick()
	}
	cands := []Candidate{{cid("t", "a"), 100}, {cid("t", "b"), 100}}
	// Budget for one column only: static still prefers A (cumulative
	// counts), decay has adapted to B.
	sSel := static.Select(cands, 100)
	dSel := decay.Select(cands, 100)
	if !sSel.Contains(cid("t", "a")) {
		t.Fatalf("static selected %v", sSel.Columns)
	}
	if !dSel.Contains(cid("t", "b")) {
		t.Fatalf("decay selected %v, want the shifted-to column", dSel.Columns)
	}
}

func TestTickEvictsColdEntries(t *testing.T) {
	a := NewAdvisor(Decay, 0.1)
	a.Record([]ColumnID{cid("t", "x")}, 1)
	for i := 0; i < 20; i++ {
		a.Tick()
	}
	if a.Score(cid("t", "x")) != 0 {
		t.Fatalf("score = %f, want fully decayed", a.Score(cid("t", "x")))
	}
}

func TestBudgetRespected(t *testing.T) {
	a := NewAdvisor(Static, 0)
	for _, c := range []string{"a", "b", "c"} {
		a.Record([]ColumnID{cid("t", c)}, 10)
	}
	sel := a.Select([]Candidate{
		{cid("t", "a"), 60}, {cid("t", "b"), 60}, {cid("t", "c"), 60},
	}, 130)
	if sel.UsedBytes > 130 {
		t.Fatalf("budget exceeded: %d", sel.UsedBytes)
	}
	if len(sel.Columns) != 2 {
		t.Fatalf("selected %d columns", len(sel.Columns))
	}
}

func TestDefaultWeightAndAlpha(t *testing.T) {
	a := NewAdvisor(Decay, 5) // invalid alpha falls back
	a.Record([]ColumnID{cid("t", "x")}, 0)
	if a.Score(cid("t", "x")) != 1 {
		t.Fatalf("zero weight should default to 1, got %f", a.Score(cid("t", "x")))
	}
}

func TestContains(t *testing.T) {
	s := Selection{Columns: []ColumnID{cid("t", "a")}}
	if !s.Contains(cid("t", "a")) || s.Contains(cid("t", "b")) {
		t.Fatal("Contains broken")
	}
	if !s.Contains() {
		t.Fatal("empty query should be contained")
	}
}
