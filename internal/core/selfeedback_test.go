package core

import (
	"context"
	"testing"

	"htap/internal/disk"
	"htap/internal/exec"
	"htap/internal/planner"
)

// feedbackCost shrinks the index-descend charge so a genuinely selective
// key range can beat the columnar scan: at the cold 5% heuristic the row
// path costs 1 + 4000*0.05*8 = 1601 against a columnar 72, and after
// observing a ~0.05% selection density it costs ~17. The flip between
// those two regimes is what the test pins.
func feedbackCost() planner.CostParams {
	p := planner.DefaultCostParams()
	p.RowSeek = 1
	return p
}

func newFeedbackEngine(t *testing.T, off bool) *EngineC {
	t.Helper()
	e := NewEngineC(ConfigC{
		Schemas:        testSchemas(),
		Shards:         2,
		Disk:           disk.MemConfig(),
		Cost:           feedbackCost(),
		SelFeedbackOff: off,
	})
	t.Cleanup(e.Close)
	for i := int64(1); i <= 4000; i++ {
		if err := e.Load("acct", acct(i, i%7, float64(i))); err != nil {
			t.Fatal(err)
		}
	}
	e.LoadColumns("acct", []string{"id", "region", "bal"})
	e.Sync()
	return e
}

// observeSelective runs pushed-down scans matching one row of 4000,
// feeding near-zero selection densities into the engine's EWMA. The probe
// must match SOMETHING: a predicate outside every zone map prunes every
// segment, and a pruned segment is never scanned, so it observes nothing.
func observeSelective(t *testing.T, e *EngineC) {
	t.Helper()
	for i := 0; i < 3; i++ {
		n := e.Query(context.Background(), "acct", nil, nil).
			Filter(exec.Cmp(exec.EQ, exec.ColName("id"), exec.ConstInt(5))).
			Count()
		if n != 1 {
			t.Fatalf("probe scan matched %d rows, want 1", n)
		}
	}
	if s, ok := e.PlannerFeedback().Selectivity("acct"); !ok || s > 0.01 {
		t.Fatalf("observed selectivity = %v, %v; want near-zero recorded", s, ok)
	}
}

// TestSelFeedbackFlipsAccessPath is the regression gate for default-on
// selectivity feedback: the same key-range query routes to the columnar
// path under the cold 5% heuristic, and to the row index once the EWMA has
// seen how selective scans on the table actually are. With SelFeedbackOff
// the observation must change nothing.
func TestSelFeedbackFlipsAccessPath(t *testing.T) {
	ctx := context.Background()
	// ScanPred is advisory (zone pruning + cost-model KeyRange input); the
	// Filter supplies the exact row selection on either path.
	keyRange := &exec.ScanPred{Col: "id", Lo: 5, Hi: 5}
	point := func(e *EngineC) int {
		return e.Query(ctx, "acct", nil, keyRange).
			Filter(exec.Cmp(exec.EQ, exec.ColName("id"), exec.ConstInt(5))).
			Count()
	}

	e := newFeedbackEngine(t, false)
	_, coldFallbacks := e.PushdownStats()
	if got := point(e); got != 1 {
		t.Fatalf("cold key-range scan saw %d rows, want 1", got)
	}
	if _, f := e.PushdownStats(); f != coldFallbacks {
		t.Fatal("cold key-range scan fell back to the row store; cost setup is wrong")
	}

	observeSelective(t, e)
	_, before := e.PushdownStats()
	if got := point(e); got != 1 {
		t.Fatalf("fed key-range scan saw %d rows, want 1", got)
	}
	if _, after := e.PushdownStats(); after != before+1 {
		t.Fatal("observed selectivity did not flip the key-range scan to the row path")
	}

	// Control: with consumption disabled, the same observations leave the
	// decision on the columnar path.
	off := newFeedbackEngine(t, true)
	observeSelective(t, off)
	_, offBefore := off.PushdownStats()
	if got := point(off); got != 1 {
		t.Fatalf("SelFeedbackOff key-range scan saw %d rows, want 1", got)
	}
	if _, offAfter := off.PushdownStats(); offAfter != offBefore {
		t.Fatal("SelFeedbackOff engine changed paths; feedback leaked into the cost model")
	}
}
