package core

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"htap/internal/colstore"
	"htap/internal/datasync"
	"htap/internal/delta"
	"htap/internal/disk"
	"htap/internal/exec"
	"htap/internal/freshness"
	"htap/internal/obs"
	"htap/internal/planner"
	"htap/internal/rowstore"
	"htap/internal/sched"
	"htap/internal/txn"
	"htap/internal/types"
	"htap/internal/wal"
)

// SyncStrategy selects the data-synchronization technique of an engine.
type SyncStrategy uint8

// Synchronization strategies (paper §2.2(3)).
const (
	SyncMerge   SyncStrategy = iota + 1 // in-memory / log-based delta merge
	SyncRebuild                         // rebuild from the primary row store
)

// ConfigA configures architecture A.
type ConfigA struct {
	Schemas []*types.Schema
	// SyncInterval enables a background synchronization loop; zero means
	// sync only on explicit Sync() calls (or via the Threshold below).
	SyncInterval time.Duration
	// Threshold triggers merges from the background loop.
	Threshold datasync.Threshold
	// Strategy picks delta merge (default) or full rebuild.
	Strategy SyncStrategy
	// Parallelism is the degree of parallelism analytical queries run
	// with; zero means GOMAXPROCS. SetParallelism overrides it at runtime.
	Parallelism int
}

// EngineA is architecture A: a memory-optimized primary row store handles
// OLTP; committed writes are "also appended to the delta store which will
// be merged to the column store" (§2.1(a)); analytical queries perform the
// in-memory delta + column scan.
type EngineA struct {
	memGoverned
	ts      *tableSet
	mgr     *txn.Manager
	walDev  *disk.Device
	wal     *wal.Log
	rows    []*rowstore.Store
	cols    []*colstore.Table
	deltas  []*delta.Mem
	fb      *planner.Feedback
	tracker *freshness.Tracker
	mode    atomic.Uint32
	par     atomic.Int32
	cfg     ConfigA
	om      archMetrics
	obsFns  []*obs.FuncHandle

	syncMu sync.Mutex
	stop   chan struct{}
	wg     sync.WaitGroup

	idxMu     sync.RWMutex
	secondary map[string]*rowstore.SecondaryIndex
}

// NewEngineA builds architecture A over the given schemas.
func NewEngineA(cfg ConfigA) *EngineA {
	if cfg.Strategy == 0 {
		cfg.Strategy = SyncMerge
	}
	e := &EngineA{
		ts:      newTableSet(cfg.Schemas),
		mgr:     txn.NewManager(),
		walDev:  disk.New(disk.DefaultConfig()),
		fb:      planner.NewFeedback(0),
		tracker: freshness.NewTracker(),
		cfg:     cfg,
		om:      newArchMetrics(ArchA),
		stop:    make(chan struct{}),
	}
	e.wal = wal.New(e.walDev, "wal-a")
	for i, s := range cfg.Schemas {
		e.rows = append(e.rows, rowstore.New(uint32(i), s))
		e.cols = append(e.cols, colstore.NewTable(s))
		observeSelectivity(e.fb, ArchA, e.cols[len(e.cols)-1])
		e.deltas = append(e.deltas, delta.NewMem())
	}
	e.mode.Store(uint32(sched.Shared))
	e.par.Store(int32(cfg.Parallelism))
	e.obsFns = registerEngineFuncs(ArchA, e.Freshness, e.walDev.Stats)
	if cfg.SyncInterval > 0 {
		e.wg.Add(1)
		go e.syncLoop()
	}
	return e
}

// Name implements Engine.
func (e *EngineA) Name() string { return "primary-row+inmem-col" }

// Arch implements Engine.
func (e *EngineA) Arch() Arch { return ArchA }

// Tables implements Engine.
func (e *EngineA) Tables() []*types.Schema { return e.ts.schemas }

// Schema implements Engine.
func (e *EngineA) Schema(table string) *types.Schema { return e.ts.schema(table) }

func (e *EngineA) syncLoop() {
	defer e.wg.Done()
	t := time.NewTicker(e.cfg.SyncInterval)
	defer t.Stop()
	for {
		select {
		case <-e.stop:
			return
		case <-t.C:
			if e.shouldSync() {
				e.Sync()
			}
		}
	}
}

func (e *EngineA) shouldSync() bool {
	if e.cfg.Threshold == (datasync.Threshold{}) {
		return true // interval-driven
	}
	cur := e.mgr.Oracle().Watermark()
	for i, d := range e.deltas {
		if e.cfg.Threshold.ShouldSync(d.Unmerged(), cur, e.cols[i].Applied()) {
			return true
		}
	}
	return false
}

// txA is the architecture-A transaction.
type txA struct {
	e   *EngineA
	ctx context.Context
	tx  *txn.Txn
}

// Begin implements Engine.
func (e *EngineA) Begin(ctx context.Context) Tx {
	e.om.begins.Inc()
	return &txA{e: e, ctx: ctxOrBackground(ctx), tx: e.mgr.Begin()}
}

func (t *txA) store(table string) (*rowstore.Store, error) {
	id, err := t.e.ts.id(table)
	if err != nil {
		return nil, err
	}
	return t.e.rows[id], nil
}

func (t *txA) Get(table string, key int64) (types.Row, error) {
	s, err := t.store(table)
	if err != nil {
		return nil, err
	}
	r, err := s.Get(t.tx, key)
	if errors.Is(err, rowstore.ErrNotFound) {
		return nil, ErrNotFound
	}
	return r, err
}

func (t *txA) Insert(table string, row types.Row) error {
	s, err := t.store(table)
	if err != nil {
		return err
	}
	return s.Insert(t.tx, row)
}

func (t *txA) Update(table string, row types.Row) error {
	s, err := t.store(table)
	if err != nil {
		return err
	}
	return s.Update(t.tx, row)
}

func (t *txA) Delete(table string, key int64) error {
	s, err := t.store(table)
	if err != nil {
		return err
	}
	err = s.Delete(t.tx, key)
	if errors.Is(err, rowstore.ErrNotFound) {
		return ErrNotFound
	}
	return err
}

func (t *txA) Commit() error {
	e := t.e
	if err := t.ctx.Err(); err != nil {
		t.Abort()
		return err
	}
	start := time.Now()
	ts, err := t.tx.Commit(func(commitTS uint64, writes []txn.Write) error {
		// MVCC + logging (§2.2(1)(i)): redo first, then install, then the
		// delta store. A WAL failure (an injected fault, a crashed device)
		// aborts the transaction before anything is installed.
		for _, s := range e.rows {
			if err := s.LogWrites(e.wal, t.tx.ID, writes); err != nil {
				return fmt.Errorf("core: wal append: %w", err)
			}
		}
		if _, err := e.wal.Append(wal.Record{Txn: t.tx.ID, Type: wal.RecCommit}); err != nil {
			return fmt.Errorf("core: wal commit: %w", err)
		}
		byTable := groupWrites(writes)
		for id, ws := range byTable {
			e.rows[id].Apply(commitTS, ws)
			e.deltas[id].Append(commitTS, ws)
		}
		return nil
	})
	if err != nil {
		e.om.aborts.Inc()
		return wrapTxnErr(err)
	}
	e.om.commits.Inc()
	e.om.commitLat.Since(start)
	if t.tx.Pending() > 0 {
		e.tracker.Committed(ts)
	}
	return nil
}

func (t *txA) Abort() {
	t.e.om.aborts.Inc()
	t.tx.Abort()
}

// Load implements Engine.
func (e *EngineA) Load(table string, row types.Row) error {
	id, err := e.ts.id(table)
	if err != nil {
		return err
	}
	if err := e.rows[id].Load(row); err != nil {
		return err
	}
	e.cols[id].Append(row)
	return nil
}

// Source implements Engine: the in-memory delta + column scan of
// §2.2(2)(i). In Isolated mode the delta is skipped (stale but
// interference-free), which is what freshness-driven scheduling toggles.
func (e *EngineA) Source(ctx context.Context, table string, cols []string, pred *exec.ScanPred) exec.Source {
	id := e.ts.mustID(table)
	var overlay *delta.Overlay
	if sched.Mode(e.mode.Load()) == sched.Shared {
		overlay = e.deltas[id].Overlay(e.mgr.Oracle().Watermark())
	}
	return exec.NewColScan(ctx, e.cols[id], cols, pred, overlay)
}

// Query implements Engine.
func (e *EngineA) Query(ctx context.Context, table string, cols []string, pred *exec.ScanPred) *exec.Plan {
	e.om.queries.Inc()
	return e.govern(ctx, ArchA.Label(), exec.From(e.Source(ctx, table, cols, pred)).Parallel(resolveDOP(&e.par)))
}

// Sync implements Engine.
func (e *EngineA) Sync() {
	e.syncMu.Lock()
	defer e.syncMu.Unlock()
	start := time.Now()
	sp := syncSpan(ArchA)
	upTo := e.mgr.Oracle().Watermark()
	for i := range e.cols {
		if e.cfg.Strategy == SyncRebuild {
			child := sp.Child("rebuild").AttrInt("table", int64(i))
			datasync.Rebuild(e.cols[i], e.rows[i], e.deltas[i], upTo)
			child.End()
		} else {
			child := sp.Child("merge").AttrInt("table", int64(i))
			datasync.MergeDelta(e.cols[i], e.deltas[i], upTo)
			child.End()
		}
	}
	e.tracker.Applied(upTo)
	sp.End()
	e.om.syncs.Inc()
	e.om.syncLat.Since(start)
}

// GC reclaims row versions older than the current watermark that are
// shadowed by newer ones; §2.2(1)'s MVCC leaves them behind. It returns
// the number of reclaimed versions.
func (e *EngineA) GC() int64 {
	ts := e.mgr.Oracle().Watermark()
	var reclaimed int64
	for _, s := range e.rows {
		reclaimed += s.GC(ts)
	}
	return reclaimed
}

// SetMode implements Engine.
func (e *EngineA) SetMode(m sched.Mode) { e.mode.Store(uint32(m)) }

// SetParallelism implements Paralleler.
func (e *EngineA) SetParallelism(n int) { e.par.Store(int32(n)) }

// Freshness implements Engine. In Shared mode the analytical view scans
// the in-memory delta and therefore sees every commit (§2.2(2)(i): "the
// data freshness is high"); in Isolated mode staleness is bounded by the
// last merge.
func (e *EngineA) Freshness() freshness.Snapshot {
	if sched.Mode(e.mode.Load()) == sched.Shared {
		return e.tracker.ReadWithApplied(e.mgr.Oracle().Watermark())
	}
	return e.tracker.Read()
}

// Stats implements Engine.
func (e *EngineA) Stats() Stats {
	ts := e.mgr.Stats()
	st := Stats{Commits: ts.Commits, Aborts: ts.Aborts, Conflicts: ts.Conflicts, Disk: e.walDev.Stats()}
	for i := range e.cols {
		cs := e.cols[i].Stats()
		st.Merges += cs.Merges
		st.Rebuilds += cs.Rebuilds
		st.ColBytes += cs.Bytes
		st.DeltaRows += e.deltas[i].Unmerged()
	}
	return st
}

// Close implements Engine.
func (e *EngineA) Close() {
	close(e.stop)
	e.wg.Wait()
	unregisterEngineFuncs(e.obsFns)
}

// groupWrites splits a write set by table id.
func groupWrites(writes []txn.Write) map[uint32][]txn.Write {
	m := make(map[uint32][]txn.Write)
	for _, w := range writes {
		m[w.Table] = append(m[w.Table], w)
	}
	return m
}

// wrapTxnErr marks concurrency-control failures retryable for Exec.
func wrapTxnErr(err error) error {
	if errors.Is(err, txn.ErrConflict) || errors.Is(err, txn.ErrReadStale) {
		return errors.Join(errRetry, err)
	}
	return err
}

// AddIndex implements Indexer.
func (e *EngineA) AddIndex(table, name string, key func(types.Row) int64) error {
	id, err := e.ts.id(table)
	if err != nil {
		return err
	}
	e.idxMu.Lock()
	defer e.idxMu.Unlock()
	if e.secondary == nil {
		e.secondary = make(map[string]*rowstore.SecondaryIndex)
	}
	if _, dup := e.secondary[table+"/"+name]; dup {
		return fmt.Errorf("core: index %s/%s already exists", table, name)
	}
	e.secondary[table+"/"+name] = e.rows[id].AddIndex(name, key)
	return nil
}

// IndexLookup implements Indexer.
func (e *EngineA) IndexLookup(table, name string, k int64) []int64 {
	e.idxMu.RLock()
	ix := e.secondary[table+"/"+name]
	e.idxMu.RUnlock()
	if ix == nil {
		return nil
	}
	return ix.Lookup(k)
}
