package core

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"htap/internal/disk"
	"htap/internal/exec"
	"htap/internal/sched"
	"htap/internal/types"
)

func testSchemas() []*types.Schema {
	return []*types.Schema{
		types.NewSchema("acct", 0,
			types.Column{Name: "id", Type: types.Int},
			types.Column{Name: "region", Type: types.Int},
			types.Column{Name: "bal", Type: types.Float},
		),
		types.NewSchema("log", 0,
			types.Column{Name: "id", Type: types.Int},
			types.Column{Name: "note", Type: types.String},
		),
	}
}

func acct(id, region int64, bal float64) types.Row {
	return types.Row{types.NewInt(id), types.NewInt(region), types.NewFloat(bal)}
}

// engines returns a fresh instance of each architecture. B is sized small
// to keep tests fast.
func engines(t *testing.T) map[string]Engine {
	t.Helper()
	return map[string]Engine{
		"A": NewEngineA(ConfigA{Schemas: testSchemas()}),
		"B": NewEngineB(ConfigB{Schemas: testSchemas(), Partitions: 2, VotersPer: 3, LearnersPer: 1}),
		"C": NewEngineC(ConfigC{Schemas: testSchemas(), Shards: 2, Disk: disk.MemConfig()}),
		"D": NewEngineD(ConfigD{Schemas: testSchemas(), L1Rows: 4, L2Rows: 16}),
	}
}

func forAll(t *testing.T, fn func(t *testing.T, e Engine)) {
	for name, e := range engines(t) {
		e := e
		t.Run(name, func(t *testing.T) {
			defer e.Close()
			fn(t, e)
		})
	}
}

func TestEngineMetadata(t *testing.T) {
	seen := map[Arch]bool{}
	for _, e := range engines(t) {
		if e.Name() == "" || e.Arch() == 0 {
			t.Fatalf("engine metadata empty: %q %v", e.Name(), e.Arch())
		}
		if len(e.Tables()) != 2 || e.Schema("acct") == nil || e.Schema("missing") != nil {
			t.Fatalf("%s: table registry broken", e.Name())
		}
		seen[e.Arch()] = true
		e.Close()
	}
	if len(seen) != 4 {
		t.Fatalf("architectures covered: %v", seen)
	}
}

func TestCRUDLifecycle(t *testing.T) {
	forAll(t, func(t *testing.T, e Engine) {
		// Insert.
		if err := Exec(context.Background(), e, func(tx Tx) error {
			return tx.Insert("acct", acct(1, 1, 100))
		}); err != nil {
			t.Fatalf("insert: %v", err)
		}
		// Read back.
		tx := e.Begin(context.Background())
		r, err := tx.Get("acct", 1)
		if err != nil || r[2].Float() != 100 {
			t.Fatalf("get: %v %v", r, err)
		}
		tx.Abort()
		// Update.
		if err := Exec(context.Background(), e, func(tx Tx) error {
			return tx.Update("acct", acct(1, 1, 150))
		}); err != nil {
			t.Fatalf("update: %v", err)
		}
		// Delete.
		if err := Exec(context.Background(), e, func(tx Tx) error {
			return tx.Delete("acct", 1)
		}); err != nil {
			t.Fatalf("delete: %v", err)
		}
		tx = e.Begin(context.Background())
		if _, err := tx.Get("acct", 1); !errors.Is(err, ErrNotFound) {
			t.Fatalf("get after delete: %v", err)
		}
		tx.Abort()
		// Missing-table errors.
		tx = e.Begin(context.Background())
		if _, err := tx.Get("nope", 1); !errors.Is(err, ErrNoTable) {
			t.Fatalf("missing table: %v", err)
		}
		tx.Abort()
	})
}

func TestReadYourOwnWrites(t *testing.T) {
	forAll(t, func(t *testing.T, e Engine) {
		tx := e.Begin(context.Background())
		if err := tx.Insert("acct", acct(7, 1, 70)); err != nil {
			t.Fatal(err)
		}
		r, err := tx.Get("acct", 7)
		if err != nil || r[2].Float() != 70 {
			t.Fatalf("own write invisible: %v %v", r, err)
		}
		if err := tx.Delete("acct", 7); err != nil {
			t.Fatal(err)
		}
		if _, err := tx.Get("acct", 7); !errors.Is(err, ErrNotFound) {
			t.Fatalf("own delete invisible: %v", err)
		}
		tx.Abort()
		// Nothing leaked.
		tx = e.Begin(context.Background())
		if _, err := tx.Get("acct", 7); !errors.Is(err, ErrNotFound) {
			t.Fatalf("aborted write leaked: %v", err)
		}
		tx.Abort()
	})
}

func TestDuplicateInsertRejected(t *testing.T) {
	forAll(t, func(t *testing.T, e Engine) {
		if err := Exec(context.Background(), e, func(tx Tx) error { return tx.Insert("acct", acct(1, 1, 1)) }); err != nil {
			t.Fatal(err)
		}
		tx := e.Begin(context.Background())
		err := tx.Insert("acct", acct(1, 1, 2))
		tx.Abort()
		if err == nil {
			t.Fatal("duplicate insert accepted")
		}
	})
}

func TestAnalyticalScanSeesCommits(t *testing.T) {
	forAll(t, func(t *testing.T, e Engine) {
		for i := int64(0); i < 50; i++ {
			if err := e.Load("acct", acct(i, i%5, float64(i))); err != nil {
				t.Fatal(err)
			}
		}
		// Loaded rows visible.
		if got := e.Query(context.Background(), "acct", nil, nil).Count(); got != 50 {
			t.Fatalf("loaded rows visible = %d", got)
		}
		// A committed transaction becomes visible in Shared mode (engine B
		// needs a merge for replication to land in learner state, but its
		// Shared mode reads the log delta which is applied asynchronously;
		// sync first to be deterministic).
		if err := Exec(context.Background(), e, func(tx Tx) error { return tx.Insert("acct", acct(100, 9, 999)) }); err != nil {
			t.Fatal(err)
		}
		// Engine B's learner replicas apply asynchronously; sync-and-check
		// until replication lands.
		waitFor(t, 5*time.Second, func() bool {
			e.Sync()
			rows := e.Query(context.Background(), "acct", nil, nil).
				Filter(exec.Cmp(exec.EQ, exec.ColName("id"), exec.ConstInt(100))).Run()
			return len(rows) == 1 && rows[0][2].Float() == 999
		})
		// Aggregation over the engine source.
		agg := e.Query(context.Background(), "acct", []string{"region", "bal"}, nil).
			Agg([]string{"region"}, exec.Agg{Kind: exec.Count, Name: "n"}).Run()
		if len(agg) != 6 { // regions 0..4 plus 9
			t.Fatalf("groups = %d", len(agg))
		}
	})
}

func TestUpdatesAndDeletesReachColumnStore(t *testing.T) {
	forAll(t, func(t *testing.T, e Engine) {
		for i := int64(0); i < 10; i++ {
			e.Load("acct", acct(i, 0, 1))
		}
		if err := Exec(context.Background(), e, func(tx Tx) error { return tx.Update("acct", acct(3, 0, 77)) }); err != nil {
			t.Fatal(err)
		}
		if err := Exec(context.Background(), e, func(tx Tx) error { return tx.Delete("acct", 4) }); err != nil {
			t.Fatal(err)
		}
		waitFor(t, 5*time.Second, func() bool {
			e.Sync()
			return e.Query(context.Background(), "acct", nil, nil).Count() == 9
		})
		rows := e.Query(context.Background(), "acct", nil, nil).Sort(exec.SortKey{Col: "id"}).Run()
		for _, r := range rows {
			if r[0].Int() == 4 {
				t.Fatal("deleted row visible in scan")
			}
			if r[0].Int() == 3 && r[2].Float() != 77 {
				t.Fatalf("update not visible: %v", r)
			}
		}
	})
}

func TestIsolatedModeIsStale(t *testing.T) {
	forAll(t, func(t *testing.T, e Engine) {
		e.Load("acct", acct(1, 1, 1))
		// C answers from the always-fresh disk row store until the IMCS is
		// loaded; staleness only exists on its columnar path.
		if c, ok := e.(*EngineC); ok {
			c.LoadColumns("acct", []string{"region", "bal"})
		}
		e.Sync()
		e.SetMode(sched.Isolated)
		if err := Exec(context.Background(), e, func(tx Tx) error { return tx.Insert("acct", acct(2, 1, 2)) }); err != nil {
			t.Fatal(err)
		}
		// Without a sync, isolated scans miss the new commit...
		if got := e.Query(context.Background(), "acct", nil, nil).Count(); got != 1 {
			// Engine D promotes on thresholds; a single row stays in L1, so
			// all engines should be stale here.
			t.Fatalf("isolated scan = %d rows, want 1 (stale)", got)
		}
		// ...and Shared mode (after replication settles for B) sees it.
		e.SetMode(sched.Shared)
		waitFor(t, 3*time.Second, func() bool {
			return e.Query(context.Background(), "acct", nil, nil).Count() == 2
		})
		// Freshness restored by an explicit sync (B needs replication to
		// deliver first).
		e.SetMode(sched.Isolated)
		waitFor(t, 5*time.Second, func() bool {
			e.Sync()
			return e.Query(context.Background(), "acct", nil, nil).Count() == 2
		})
	})
}

func waitFor(t *testing.T, timeout time.Duration, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatal("condition never became true")
}

func TestFreshnessTracksSync(t *testing.T) {
	forAll(t, func(t *testing.T, e Engine) {
		for i := int64(0); i < 20; i++ {
			if err := Exec(context.Background(), e, func(tx Tx) error { return tx.Insert("acct", acct(i, 0, 0)) }); err != nil {
				t.Fatal(err)
			}
		}
		// B's learner applies asynchronously; sync until the lag drains.
		waitFor(t, 5*time.Second, func() bool {
			e.Sync()
			return e.Freshness().LagTS == 0
		})
	})
}

func TestWriteConflictRetriedByExec(t *testing.T) {
	forAll(t, func(t *testing.T, e Engine) {
		e.Load("acct", acct(1, 1, 0))
		var wg sync.WaitGroup
		errs := make(chan error, 8)
		for w := 0; w < 8; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				errs <- Exec(context.Background(), e, func(tx Tx) error {
					r, err := tx.Get("acct", 1)
					if err != nil {
						return err
					}
					return tx.Update("acct", acct(1, 1, r[2].Float()+1))
				})
			}()
		}
		wg.Wait()
		close(errs)
		for err := range errs {
			if err != nil {
				t.Fatalf("concurrent increment failed: %v", err)
			}
		}
		tx := e.Begin(context.Background())
		r, err := tx.Get("acct", 1)
		tx.Abort()
		if err != nil || r[2].Float() != 8 {
			t.Fatalf("balance = %v (err %v), want 8", r, err)
		}
	})
}

func TestStatsPopulated(t *testing.T) {
	forAll(t, func(t *testing.T, e Engine) {
		for i := int64(0); i < 5; i++ {
			if err := Exec(context.Background(), e, func(tx Tx) error { return tx.Insert("acct", acct(i, 0, 0)) }); err != nil {
				t.Fatal(err)
			}
		}
		if st := e.Stats(); st.Commits < 5 {
			t.Fatalf("commits = %d", st.Commits)
		}
		if e.Arch() == ArchC {
			// C materializes columns only after selection loads them.
			return
		}
		waitFor(t, 5*time.Second, func() bool {
			e.Sync()
			return e.Stats().ColBytes > 0
		})
	})
}

func TestEngineCPushdownAndFallback(t *testing.T) {
	e := NewEngineC(ConfigC{Schemas: testSchemas(), Shards: 2, Disk: disk.MemConfig()})
	defer e.Close()
	for i := int64(0); i < 2000; i++ {
		e.Load("acct", acct(i, i%4, float64(i)))
	}
	// Not loaded yet: queries fall back to the disk row store.
	if got := e.Query(context.Background(), "acct", []string{"region", "bal"}, nil).Count(); got != 2000 {
		t.Fatalf("fallback scan = %d", got)
	}
	_, fb := e.PushdownStats()
	if fb == 0 {
		t.Fatal("fallback not counted")
	}
	// Load the hot columns; wide scans now push down.
	e.LoadColumns("acct", []string{"region", "bal"})
	if got := e.Query(context.Background(), "acct", []string{"region", "bal"}, nil).Count(); got != 2000 {
		t.Fatalf("pushdown scan = %d", got)
	}
	pd, _ := e.PushdownStats()
	if pd == 0 {
		t.Fatal("pushdown not counted")
	}
	// A query needing an unloaded column falls back again: only "region"
	// stays loaded, so a (region, bal) scan is uncovered.
	e.LoadColumns("acct", []string{"region"})
	fbBefore := func() int64 { _, f := e.PushdownStats(); return f }()
	if got := e.Query(context.Background(), "acct", []string{"region", "bal"}, nil).Count(); got != 2000 {
		t.Fatalf("uncovered scan = %d", got)
	}
	if fbAfter := func() int64 { _, f := e.PushdownStats(); return f }(); fbAfter != fbBefore+1 {
		t.Fatal("uncovered query did not fall back")
	}
	e.LoadColumns("acct", []string{"region", "bal"})
	// Writes propagate through the IMCS delta.
	if err := Exec(context.Background(), e, func(tx Tx) error { return tx.Update("acct", acct(5, 0, 999)) }); err != nil {
		t.Fatal(err)
	}
	rows := e.Query(context.Background(), "acct", []string{"id", "bal"}, nil).
		Filter(exec.Cmp(exec.EQ, exec.ColName("id"), exec.ConstInt(5))).Run()
	if len(rows) != 1 || rows[0][1].Float() != 999 {
		t.Fatalf("IMCS delta overlay = %v", rows)
	}
	// Reselect with the advisor: the hot table loads automatically.
	e.Unload("acct")
	sel := e.Reselect()
	if len(sel.Columns) == 0 {
		t.Fatal("reselect loaded nothing despite recorded heat")
	}
}

func TestEngineDLayerPromotion(t *testing.T) {
	e := NewEngineD(ConfigD{Schemas: testSchemas(), L1Rows: 4, L2Rows: 8})
	defer e.Close()
	// Enough single-row commits to trip L1 (4 rows) and then L2 (8 rows).
	for i := int64(0); i < 20; i++ {
		if err := Exec(context.Background(), e, func(tx Tx) error { return tx.Insert("acct", acct(i, 0, 1)) }); err != nil {
			t.Fatal(err)
		}
	}
	if got := e.Query(context.Background(), "acct", nil, nil).Count(); got != 20 {
		t.Fatalf("layered scan = %d", got)
	}
	id := e.ts.mustID("acct")
	l := e.layers[id]
	if l.Main.LiveRows() == 0 {
		t.Fatal("nothing reached Main; L2 merge never fired")
	}
	if st := l.Main.Stats(); st.Merges == 0 {
		t.Fatal("no dictionary merges counted")
	}
}

func TestEngineBReplicationVisibleOnLearners(t *testing.T) {
	e := NewEngineB(ConfigB{Schemas: testSchemas(), Partitions: 2, VotersPer: 3, LearnersPer: 1})
	defer e.Close()
	for i := int64(0); i < 10; i++ {
		if err := Exec(context.Background(), e, func(tx Tx) error { return tx.Insert("acct", acct(i, 0, 1)) }); err != nil {
			t.Fatal(err)
		}
	}
	// Learner applies arrive asynchronously; shared-mode scans read the
	// log-based delta and eventually see all rows.
	waitFor(t, 5*time.Second, func() bool {
		return e.Query(context.Background(), "acct", nil, nil).Count() == 10
	})
	// Before a merge, learner column stores are empty: rows live in deltas.
	if e.Stats().DeltaRows == 0 {
		t.Fatal("expected unmerged delta rows on learners")
	}
	e.Sync()
	if e.Stats().DeltaRows != 0 {
		t.Fatalf("delta rows after sync = %d", e.Stats().DeltaRows)
	}
	// Isolated scans now see merged data.
	e.SetMode(sched.Isolated)
	if got := e.Query(context.Background(), "acct", nil, nil).Count(); got != 10 {
		t.Fatalf("merged scan = %d", got)
	}
}

func TestEngineBCrossPartitionAtomicity(t *testing.T) {
	e := NewEngineB(ConfigB{Schemas: testSchemas(), Partitions: 4, VotersPer: 3, LearnersPer: 1})
	defer e.Close()
	// One transaction touching many partitions commits atomically.
	if err := Exec(context.Background(), e, func(tx Tx) error {
		for i := int64(0); i < 8; i++ {
			if err := tx.Insert("acct", acct(i, 0, float64(i))); err != nil {
				return err
			}
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	tx := e.Begin(context.Background())
	defer tx.Abort()
	for i := int64(0); i < 8; i++ {
		if _, err := tx.Get("acct", i); err != nil {
			t.Fatalf("key %d missing after cross-partition commit: %v", i, err)
		}
	}
}

func TestExecGivesUpOnPersistentError(t *testing.T) {
	e := NewEngineA(ConfigA{Schemas: testSchemas()})
	defer e.Close()
	boom := errors.New("boom")
	if err := Exec(context.Background(), e, func(tx Tx) error { return boom }); !errors.Is(err, boom) {
		t.Fatalf("non-retryable error not surfaced: %v", err)
	}
}

func TestEngineASyncStrategies(t *testing.T) {
	for _, strat := range []SyncStrategy{SyncMerge, SyncRebuild} {
		e := NewEngineA(ConfigA{Schemas: testSchemas(), Strategy: strat})
		for i := int64(0); i < 30; i++ {
			if err := Exec(context.Background(), e, func(tx Tx) error { return tx.Insert("acct", acct(i, 0, 1)) }); err != nil {
				t.Fatal(err)
			}
		}
		e.Sync()
		e.SetMode(sched.Isolated)
		if got := e.Query(context.Background(), "acct", nil, nil).Count(); got != 30 {
			t.Fatalf("strategy %d: rows = %d", strat, got)
		}
		st := e.Stats()
		if strat == SyncRebuild && st.Rebuilds == 0 {
			t.Fatal("rebuild strategy never rebuilt")
		}
		if strat == SyncMerge && st.Merges == 0 {
			t.Fatal("merge strategy never merged")
		}
		e.Close()
	}
}

func TestEngineABackgroundSync(t *testing.T) {
	e := NewEngineA(ConfigA{Schemas: testSchemas(), SyncInterval: 2 * time.Millisecond})
	defer e.Close()
	if err := Exec(context.Background(), e, func(tx Tx) error { return tx.Insert("acct", acct(1, 0, 1)) }); err != nil {
		t.Fatal(err)
	}
	e.SetMode(sched.Isolated)
	waitFor(t, 3*time.Second, func() bool {
		return e.Query(context.Background(), "acct", nil, nil).Count() == 1
	})
}

func TestStringColumnRoundTrip(t *testing.T) {
	forAll(t, func(t *testing.T, e Engine) {
		if err := Exec(context.Background(), e, func(tx Tx) error {
			return tx.Insert("log", types.Row{types.NewInt(1), types.NewString("héllo wörld")})
		}); err != nil {
			t.Fatal(err)
		}
		waitFor(t, 5*time.Second, func() bool {
			e.Sync()
			rows := e.Query(context.Background(), "log", nil, nil).Run()
			return len(rows) == 1 && rows[0][1].Str() == "héllo wörld"
		})
	})
}

func TestArchStringer(t *testing.T) {
	for a := ArchA; a <= ArchD; a++ {
		if a.String() == "" || a.String() == fmt.Sprintf("Arch(%d)", uint8(a)) {
			t.Fatalf("Arch %d has no name", a)
		}
	}
}
