package core

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"htap/internal/colsel"
	"htap/internal/colstore"
	"htap/internal/delta"
	"htap/internal/disk"
	"htap/internal/exec"
	"htap/internal/freshness"
	"htap/internal/obs"
	"htap/internal/planner"
	"htap/internal/rowstore"
	"htap/internal/sched"
	"htap/internal/txn"
	"htap/internal/types"
	"htap/internal/wal"
)

// ConfigC configures architecture C.
type ConfigC struct {
	Schemas []*types.Schema
	// Shards is the size of the distributed in-memory column-store
	// cluster (Heatwave nodes).
	Shards int
	// BudgetBytes bounds the memory the column selection may fill;
	// zero means unlimited (everything loads).
	BudgetBytes int
	// Policy is the column-selection policy (Static Heatmap or Decay).
	Policy colsel.Policy
	// Disk is the row-store device cost model.
	Disk disk.Config
	// Cost drives the hybrid row/column access-path choice.
	Cost planner.CostParams
	// Parallelism is the degree of parallelism analytical queries run
	// with; zero means GOMAXPROCS. SetParallelism overrides it at runtime.
	Parallelism int
	// SelFeedbackOff disables cost-model consumption of observed selection
	// densities (reported by pushed-down scan predicates). The feedback loop
	// is on by default — static selectivity assumptions are exactly the §2.4
	// complaint — but plans then depend on execution history, so
	// determinism-sensitive harnesses (the golden-equivalence suites) pin
	// this true to keep repeated runs on identical access paths.
	SelFeedbackOff bool
}

// imcsTable is one table's footprint in the in-memory column-store
// cluster: a projected schema over the selected columns, sharded by key
// hash across the cluster.
type imcsTable struct {
	mu     sync.RWMutex
	loaded map[string]bool // selected column names (always includes the key)
	proj   *types.Schema   // projected schema, nil when not loaded
	shards []*colstore.Table
	delta  *delta.Mem
	rows   int64
}

// EngineC is architecture C (MySQL Heatwave, §2.1(c)): a disk-backed row
// store "preserves the full capacity for OLTP workloads", while frequently
// accessed columns are extracted into a distributed in-memory column
// store; analytical queries are pushed down when their columns are loaded
// and the cost model prefers the columnar path, else they fall back to the
// (expensive) disk row scan.
type EngineC struct {
	memGoverned
	ts      *tableSet
	mgr     *txn.Manager
	walDev  *disk.Device
	rowDev  *disk.Device
	wal     *wal.Log
	rows    []*rowstore.Store
	imcs    []*imcsTable
	advisor *colsel.Advisor
	fb      *planner.Feedback
	cfg     ConfigC
	tracker *freshness.Tracker
	mode    atomic.Uint32
	par     atomic.Int32
	om      archMetrics
	obsFns  []*obs.FuncHandle

	syncMu    sync.Mutex
	pushdowns atomic.Int64
	fallbacks atomic.Int64

	idxMu     sync.RWMutex
	secondary map[string]*rowstore.SecondaryIndex
}

// NewEngineC builds architecture C.
func NewEngineC(cfg ConfigC) *EngineC {
	if cfg.Shards <= 0 {
		cfg.Shards = 4
	}
	if cfg.Disk == (disk.Config{}) {
		cfg.Disk = disk.DefaultConfig()
	}
	if cfg.Cost == (planner.CostParams{}) {
		cfg.Cost = planner.DefaultCostParams()
	}
	if cfg.Policy == 0 {
		cfg.Policy = colsel.Static
	}
	e := &EngineC{
		ts:      newTableSet(cfg.Schemas),
		mgr:     txn.NewManager(),
		walDev:  disk.New(disk.DefaultConfig()),
		rowDev:  disk.New(cfg.Disk),
		advisor: colsel.NewAdvisor(cfg.Policy, 0.8),
		fb:      planner.NewFeedback(0),
		cfg:     cfg,
		tracker: freshness.NewTracker(),
		om:      newArchMetrics(ArchC),
	}
	e.wal = wal.New(e.walDev, "wal-c")
	for i, s := range cfg.Schemas {
		e.rows = append(e.rows, rowstore.NewDiskBacked(uint32(i), s, e.rowDev))
		e.imcs = append(e.imcs, &imcsTable{loaded: make(map[string]bool), delta: delta.NewMem()})
	}
	e.mode.Store(uint32(sched.Shared))
	e.par.Store(int32(cfg.Parallelism))
	// The analytical cost model charges the row device; export it (the WAL
	// device is already covered by htap_wal_* series).
	e.obsFns = registerEngineFuncs(ArchC, e.Freshness, e.rowDev.Stats)
	return e
}

// Name implements Engine.
func (e *EngineC) Name() string { return "disk-row+dist-col" }

// Arch implements Engine.
func (e *EngineC) Arch() Arch { return ArchC }

// Tables implements Engine.
func (e *EngineC) Tables() []*types.Schema { return e.ts.schemas }

// Schema implements Engine.
func (e *EngineC) Schema(table string) *types.Schema { return e.ts.schema(table) }

// txC reuses the MVCC row-store transaction of architecture A; only the
// storage (disk-backed) and the commit hook differ.
type txC struct {
	e   *EngineC
	ctx context.Context
	tx  *txn.Txn
}

// Begin implements Engine.
func (e *EngineC) Begin(ctx context.Context) Tx {
	e.om.begins.Inc()
	return &txC{e: e, ctx: ctxOrBackground(ctx), tx: e.mgr.Begin()}
}

func (t *txC) Get(table string, key int64) (types.Row, error) {
	id, err := t.e.ts.id(table)
	if err != nil {
		return nil, err
	}
	r, err := t.e.rows[id].Get(t.tx, key)
	if errors.Is(err, rowstore.ErrNotFound) {
		return nil, ErrNotFound
	}
	return r, err
}

func (t *txC) Insert(table string, row types.Row) error {
	id, err := t.e.ts.id(table)
	if err != nil {
		return err
	}
	return t.e.rows[id].Insert(t.tx, row)
}

func (t *txC) Update(table string, row types.Row) error {
	id, err := t.e.ts.id(table)
	if err != nil {
		return err
	}
	return t.e.rows[id].Update(t.tx, row)
}

func (t *txC) Delete(table string, key int64) error {
	id, err := t.e.ts.id(table)
	if err != nil {
		return err
	}
	err = t.e.rows[id].Delete(t.tx, key)
	if errors.Is(err, rowstore.ErrNotFound) {
		return ErrNotFound
	}
	return err
}

func (t *txC) Commit() error {
	e := t.e
	if err := t.ctx.Err(); err != nil {
		t.Abort()
		return err
	}
	start := time.Now()
	ts, err := t.tx.Commit(func(commitTS uint64, writes []txn.Write) error {
		// Write-ahead for real: every redo record plus the COMMIT must be
		// durable before any write is installed, or a failed WAL flush
		// would leave an aborted transaction visible in the row store.
		// Iterate tables in id order, not map order: the byte layout of the
		// log must be deterministic so a seeded fault plan tears it at the
		// same record boundary on every run.
		byTable := groupWrites(writes)
		for id := range e.rows {
			if ws := byTable[uint32(id)]; len(ws) > 0 {
				if err := e.rows[id].LogWrites(e.wal, t.tx.ID, ws); err != nil {
					return fmt.Errorf("core: wal append: %w", err)
				}
			}
		}
		if _, err := e.wal.Append(wal.Record{Txn: t.tx.ID, Type: wal.RecCommit}); err != nil {
			return fmt.Errorf("core: wal commit: %w", err)
		}
		for id := range e.rows {
			ws := byTable[uint32(id)]
			if len(ws) == 0 {
				continue
			}
			e.rows[id].Apply(commitTS, ws)
			// Changes propagate to the IMCS only for loaded tables.
			if e.imcs[id].isLoaded() {
				e.imcs[id].delta.Append(commitTS, ws)
			}
		}
		return nil
	})
	if err != nil {
		e.om.aborts.Inc()
		return wrapTxnErr(err)
	}
	e.om.commits.Inc()
	e.om.commitLat.Since(start)
	if t.tx.Pending() > 0 {
		e.tracker.Committed(ts)
	}
	return nil
}

func (t *txC) Abort() {
	t.e.om.aborts.Inc()
	t.tx.Abort()
}

// Load implements Engine.
func (e *EngineC) Load(table string, row types.Row) error {
	id, err := e.ts.id(table)
	if err != nil {
		return err
	}
	return e.rows[id].Load(row)
}

func (it *imcsTable) isLoaded() bool {
	it.mu.RLock()
	defer it.mu.RUnlock()
	return it.proj != nil
}

func (it *imcsTable) covers(cols []string) bool {
	it.mu.RLock()
	defer it.mu.RUnlock()
	if it.proj == nil {
		return false
	}
	for _, c := range cols {
		if !it.loaded[c] {
			return false
		}
	}
	return true
}

// project maps a full row onto the IMCS projection.
func projectRow(full *types.Schema, proj *types.Schema, r types.Row) types.Row {
	out := make(types.Row, len(proj.Cols))
	for i, c := range proj.Cols {
		out[i] = r[full.MustCol(c.Name)]
	}
	return out
}

// shardFor routes a key to an IMCS shard.
func shardFor(key int64, n int) int {
	h := uint64(key) * 0x9e3779b97f4a7c15
	return int(h % uint64(n))
}

// LoadColumns (re)extracts the given columns of a table into the IMCS,
// replacing the previous projection. The key column is always included.
func (e *EngineC) LoadColumns(table string, cols []string) {
	id := e.ts.mustID(table)
	full := e.ts.schemas[id]
	keyName := full.Cols[full.KeyCol].Name
	names := []string{keyName}
	seen := map[string]bool{keyName: true}
	for _, c := range cols {
		if !seen[c] && full.ColIndex(c) >= 0 {
			names = append(names, c)
			seen[c] = true
		}
	}
	projCols := make([]types.Column, len(names))
	for i, n := range names {
		projCols[i] = full.Cols[full.MustCol(n)]
	}
	proj := types.NewSchema(full.Name, 0, projCols...)

	shards := make([]*colstore.Table, e.cfg.Shards)
	builders := make([]*colstore.Builder, e.cfg.Shards)
	for i := range shards {
		shards[i] = colstore.NewTable(proj)
		observeSelectivity(e.fb, ArchC, shards[i])
		builders[i] = shards[i].NewBuilder()
	}
	snap := e.mgr.Oracle().Watermark()
	n := int64(0)
	e.rows[id].Scan(snap, func(key int64, r types.Row) bool {
		builders[shardFor(key, len(builders))].Add(projectRow(full, proj, r))
		n++
		return true
	})
	for i := range builders {
		builders[i].Flush()
		shards[i].SetApplied(snap)
	}
	it := e.imcs[id]
	it.mu.Lock()
	it.loaded = seen
	it.proj = proj
	it.shards = shards
	it.rows = n
	it.delta = delta.NewMem()
	it.mu.Unlock()
}

// Unload evicts a table from the IMCS.
func (e *EngineC) Unload(table string) {
	it := e.imcs[e.ts.mustID(table)]
	it.mu.Lock()
	it.loaded = make(map[string]bool)
	it.proj = nil
	it.shards = nil
	it.rows = 0
	it.delta = delta.NewMem()
	it.mu.Unlock()
}

// Reselect runs the column-selection advisor over all tables and loads the
// recommended projections under the memory budget (§2.2(4)(i)).
func (e *EngineC) Reselect() colsel.Selection {
	var cands []colsel.Candidate
	for id, s := range e.ts.schemas {
		rows := e.rows[id].Count(e.mgr.Oracle().Watermark())
		for _, c := range s.Cols {
			width := 8
			if c.Type == types.String {
				width = 24
			}
			cands = append(cands, colsel.Candidate{
				ID:    colsel.ColumnID{Table: s.Name, Col: c.Name},
				Bytes: width * (rows + 1),
			})
		}
	}
	budget := e.cfg.BudgetBytes
	if budget <= 0 {
		budget = 1 << 40
	}
	sel := e.advisor.Select(cands, budget)
	byTable := make(map[string][]string)
	for _, c := range sel.Columns {
		byTable[c.Table] = append(byTable[c.Table], c.Col)
	}
	for _, s := range e.ts.schemas {
		if cols, ok := byTable[s.Name]; ok {
			e.LoadColumns(s.Name, cols)
		} else if e.imcs[e.ts.mustID(s.Name)].isLoaded() {
			e.Unload(s.Name)
		}
	}
	return sel
}

// Advisor exposes the column-selection advisor (experiments tick it).
func (e *EngineC) Advisor() *colsel.Advisor { return e.advisor }

// PushdownStats reports how many queries were pushed down to the IMCS vs
// answered by the disk row store.
func (e *EngineC) PushdownStats() (pushdowns, fallbacks int64) {
	return e.pushdowns.Load(), e.fallbacks.Load()
}

// Source implements Engine: record the access pattern, then push down to
// the IMCS when the projection covers the query and the cost model prefers
// the columnar path; otherwise scan the disk row store.
func (e *EngineC) Source(ctx context.Context, table string, cols []string, pred *exec.ScanPred) exec.Source {
	id := e.ts.mustID(table)
	full := e.ts.schemas[id]
	qcols := cols
	if qcols == nil {
		qcols = make([]string, len(full.Cols))
		for i, c := range full.Cols {
			qcols[i] = c.Name
		}
	}
	ids := make([]colsel.ColumnID, len(qcols))
	for i, c := range qcols {
		ids[i] = colsel.ColumnID{Table: table, Col: c}
	}
	rowsN := int(e.rows[id].Count(e.mgr.Oracle().Watermark()))
	e.advisor.Record(ids, float64(rowsN))

	it := e.imcs[id]
	covered := it.covers(qcols)
	in := planner.TableInput{
		Rows:        rowsN,
		Cols:        len(full.Cols),
		NeedCols:    len(qcols),
		Selectivity: e.selEstimate(table, pred),
		KeyRange:    pred != nil && pred.Col == full.Cols[full.KeyCol].Name,
		ZoneMapped:  pred != nil,
		RowOnDisk:   true,
		DeltaRows:   it.delta.Unmerged(),
		HasColumn:   covered,
	}
	d := e.cfg.Cost.Choose(in)
	if covered && d.Path == planner.ColPath {
		e.pushdowns.Add(1)
		return e.imcsSource(ctx, id, qcols, pred)
	}
	e.fallbacks.Add(1)
	return exec.NewRowScan(ctx, e.rows[id], e.mgr.Oracle().Watermark(), qcols, pred)
}

func (e *EngineC) imcsSource(ctx context.Context, id uint32, cols []string, pred *exec.ScanPred) exec.Source {
	it := e.imcs[id]
	it.mu.RLock()
	shards := it.shards
	proj := it.proj
	d := it.delta
	it.mu.RUnlock()
	var overlay *delta.Overlay
	if sched.Mode(e.mode.Load()) == sched.Shared {
		full := e.ts.schemas[id]
		raw := d.Overlay(e.mgr.Oracle().Watermark())
		overlay = &delta.Overlay{Rows: make(map[int64]types.Row, len(raw.Rows)), Masked: raw.Masked, MaxTS: raw.MaxTS}
		for k, r := range raw.Rows {
			overlay.Rows[k] = projectRow(full, proj, r)
		}
	}
	srcs := make([]exec.Source, len(shards))
	for i, sh := range shards {
		o := overlay
		if i > 0 && overlay != nil {
			o = overlay.MaskOnly() // emit delta rows exactly once
		}
		srcs[i] = exec.NewColScan(ctx, sh, cols, pred, o)
	}
	return exec.NewUnion(srcs...)
}

// Query implements Engine.
func (e *EngineC) Query(ctx context.Context, table string, cols []string, pred *exec.ScanPred) *exec.Plan {
	e.om.queries.Inc()
	return e.govern(ctx, ArchC.Label(), exec.From(e.Source(ctx, table, cols, pred)).Parallel(resolveDOP(&e.par)))
}

// RowSource forces the disk row-store access path, bypassing the cost
// model; the hybrid-scan experiments use it as the row-only baseline.
func (e *EngineC) RowSource(ctx context.Context, table string, cols []string, pred *exec.ScanPred) exec.Source {
	id := e.ts.mustID(table)
	return exec.NewRowScan(ctx, e.rows[id], e.mgr.Oracle().Watermark(), cols, pred)
}

// ColSource forces the IMCS access path, bypassing the cost model; the
// requested columns must be loaded.
func (e *EngineC) ColSource(ctx context.Context, table string, cols []string, pred *exec.ScanPred) exec.Source {
	id := e.ts.mustID(table)
	if !e.imcs[id].covers(cols) {
		panic(fmt.Sprintf("core: ColSource(%s): columns not loaded", table))
	}
	return e.imcsSource(ctx, id, cols, pred)
}

// selEstimate estimates the fraction of rows a scan's predicate keeps:
// by default the observed selection density of previous pushed-down scans
// of the same table (planner.Feedback) — the paper's §2.4 criticizes
// static assumptions — with the fixed heuristic as the cold-start value
// and the SelFeedbackOff fallback.
func (e *EngineC) selEstimate(table string, pred *exec.ScanPred) float64 {
	if pred == nil {
		return 1
	}
	if !e.cfg.SelFeedbackOff {
		if s, ok := e.fb.Selectivity(table); ok {
			return s
		}
	}
	return 0.05
}

// PlannerFeedback exposes the observed-selectivity accumulator; scans with
// pushed-down predicates feed it whether or not feedback consumption is
// enabled, so experiments can inspect what the optimizer would have seen.
func (e *EngineC) PlannerFeedback() *planner.Feedback { return e.fb }

// Sync implements Engine: merge each loaded table's delta into its shards.
func (e *EngineC) Sync() {
	e.syncMu.Lock()
	defer e.syncMu.Unlock()
	start := time.Now()
	sp := syncSpan(ArchC)
	upTo := e.mgr.Oracle().Watermark()
	for id := range e.imcs {
		it := e.imcs[id]
		it.mu.RLock()
		loaded := it.proj != nil
		it.mu.RUnlock()
		if !loaded {
			continue
		}
		child := sp.Child("merge_imcs").AttrInt("table", int64(id))
		e.mergeIMCS(uint32(id), upTo)
		child.End()
	}
	e.tracker.Applied(upTo)
	sp.End()
	e.om.syncs.Inc()
	e.om.syncLat.Since(start)
}

func (e *EngineC) mergeIMCS(id uint32, upTo uint64) {
	it := e.imcs[id]
	it.mu.RLock()
	proj := it.proj
	shards := it.shards
	d := it.delta
	it.mu.RUnlock()
	full := e.ts.schemas[id]
	entries := d.Pending(upTo)
	// Net effect per key (newest image wins), as in datasync.MergeDelta.
	images := make(map[int64]types.Row, len(entries))
	order := make([]int64, 0, len(entries))
	for _, en := range entries {
		if _, seen := images[en.Key]; !seen {
			order = append(order, en.Key)
		}
		if en.Op == txn.OpDelete {
			images[en.Key] = nil
		} else {
			images[en.Key] = en.Row
		}
	}
	perShard := make([][]types.Row, len(shards))
	for _, k := range order {
		sh := shardFor(k, len(shards))
		img := images[k]
		if img == nil {
			shards[sh].DeleteKey(k)
			continue
		}
		perShard[sh] = append(perShard[sh], projectRow(full, proj, img))
	}
	for i, rows := range perShard {
		if len(rows) > 0 {
			shards[i].AppendRows(rows)
			shards[i].NoteMerge()
		}
		shards[i].SetApplied(upTo)
	}
	d.MarkMerged(upTo)
}

// GC reclaims shadowed row versions older than the current watermark.
func (e *EngineC) GC() int64 {
	ts := e.mgr.Oracle().Watermark()
	var reclaimed int64
	for _, s := range e.rows {
		reclaimed += s.GC(ts)
	}
	return reclaimed
}

// SetMode implements Engine.
func (e *EngineC) SetMode(m sched.Mode) { e.mode.Store(uint32(m)) }

// SetParallelism implements Paralleler.
func (e *EngineC) SetParallelism(n int) { e.par.Store(int32(n)) }

// Freshness implements Engine. Shared-mode pushdown scans overlay the
// IMCS delta (and row-store fallbacks are always current), so the view is
// fresh; Isolated mode is bounded by the last IMCS merge.
func (e *EngineC) Freshness() freshness.Snapshot {
	if sched.Mode(e.mode.Load()) == sched.Shared {
		return e.tracker.ReadWithApplied(e.mgr.Oracle().Watermark())
	}
	return e.tracker.Read()
}

// Stats implements Engine.
func (e *EngineC) Stats() Stats {
	ts := e.mgr.Stats()
	st := Stats{Commits: ts.Commits, Aborts: ts.Aborts, Conflicts: ts.Conflicts, Disk: e.rowDev.Stats()}
	for _, it := range e.imcs {
		it.mu.RLock()
		for _, sh := range it.shards {
			s := sh.Stats()
			st.Merges += s.Merges
			st.ColBytes += s.Bytes
		}
		st.DeltaRows += it.delta.Unmerged()
		it.mu.RUnlock()
	}
	return st
}

// Close implements Engine.
func (e *EngineC) Close() { unregisterEngineFuncs(e.obsFns) }

// AddIndex implements Indexer.
func (e *EngineC) AddIndex(table, name string, key func(types.Row) int64) error {
	id, err := e.ts.id(table)
	if err != nil {
		return err
	}
	e.idxMu.Lock()
	defer e.idxMu.Unlock()
	if e.secondary == nil {
		e.secondary = make(map[string]*rowstore.SecondaryIndex)
	}
	if _, dup := e.secondary[table+"/"+name]; dup {
		return fmt.Errorf("core: index %s/%s already exists", table, name)
	}
	e.secondary[table+"/"+name] = e.rows[id].AddIndex(name, key)
	return nil
}

// IndexLookup implements Indexer.
func (e *EngineC) IndexLookup(table, name string, k int64) []int64 {
	e.idxMu.RLock()
	ix := e.secondary[table+"/"+name]
	e.idxMu.RUnlock()
	if ix == nil {
		return nil
	}
	return ix.Lookup(k)
}
