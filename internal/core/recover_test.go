package core

import (
	"context"
	"errors"
	"testing"

	"htap/internal/disk"
	"htap/internal/exec"
)

func TestRecoverEngineAReplaysCommitted(t *testing.T) {
	e := NewEngineA(ConfigA{Schemas: testSchemas()})
	for i := int64(0); i < 10; i++ {
		if err := Exec(context.Background(), e, func(tx Tx) error { return tx.Insert("acct", acct(i, 0, float64(i))) }); err != nil {
			t.Fatal(err)
		}
	}
	if err := Exec(context.Background(), e, func(tx Tx) error { return tx.Update("acct", acct(3, 0, 333)) }); err != nil {
		t.Fatal(err)
	}
	if err := Exec(context.Background(), e, func(tx Tx) error { return tx.Delete("acct", 4) }); err != nil {
		t.Fatal(err)
	}
	dev := e.WALDevice()
	e.Close() // crash: in-memory state gone, the device survives

	r, err := RecoverEngineA(ConfigA{Schemas: testSchemas()}, dev)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	tx := r.Begin(context.Background())
	defer tx.Abort()
	if row, err := tx.Get("acct", 3); err != nil || row[2].Float() != 333 {
		t.Fatalf("recovered key 3 = %v, %v", row, err)
	}
	if _, err := tx.Get("acct", 4); !errors.Is(err, ErrNotFound) {
		t.Fatalf("deleted key survived recovery: %v", err)
	}
	if got := r.Query(context.Background(), "acct", nil, nil).Count(); got != 9 {
		t.Fatalf("recovered rows = %d, want 9", got)
	}
	// The recovered engine accepts new transactions and they durably
	// append after the history.
	if err := Exec(context.Background(), r, func(tx Tx) error { return tx.Insert("acct", acct(100, 0, 1)) }); err != nil {
		t.Fatal(err)
	}
	if got := r.Query(context.Background(), "acct", nil, nil).Count(); got != 10 {
		t.Fatalf("post-recovery insert invisible: %d", got)
	}
}

func TestRecoverLosesUncommittedTail(t *testing.T) {
	e := NewEngineA(ConfigA{Schemas: testSchemas()})
	if err := Exec(context.Background(), e, func(tx Tx) error { return tx.Insert("acct", acct(1, 0, 1)) }); err != nil {
		t.Fatal(err)
	}
	// A transaction that buffers writes and never commits: its records
	// never flush (group commit), so recovery must not see key 2.
	tx := e.Begin(context.Background())
	if err := tx.Insert("acct", acct(2, 0, 2)); err != nil {
		t.Fatal(err)
	}
	dev := e.WALDevice()
	e.Close() // crash before commit

	r, err := RecoverEngineA(ConfigA{Schemas: testSchemas()}, dev)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	rtx := r.Begin(context.Background())
	defer rtx.Abort()
	if _, err := rtx.Get("acct", 1); err != nil {
		t.Fatalf("committed key lost: %v", err)
	}
	if _, err := rtx.Get("acct", 2); !errors.Is(err, ErrNotFound) {
		t.Fatal("uncommitted key survived the crash")
	}
}

func TestRecoverPreservesCommitOrder(t *testing.T) {
	e := NewEngineA(ConfigA{Schemas: testSchemas()})
	// Two updates to the same key; the later one must win after recovery.
	Exec(context.Background(), e, func(tx Tx) error { return tx.Insert("acct", acct(7, 0, 1)) })
	Exec(context.Background(), e, func(tx Tx) error { return tx.Update("acct", acct(7, 0, 2)) })
	Exec(context.Background(), e, func(tx Tx) error { return tx.Update("acct", acct(7, 0, 3)) })
	dev := e.WALDevice()
	e.Close()

	r, err := RecoverEngineA(ConfigA{Schemas: testSchemas()}, dev)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	rows := r.Query(context.Background(), "acct", nil, nil).
		Filter(exec.Cmp(exec.EQ, exec.ColName("id"), exec.ConstInt(7))).Run()
	if len(rows) != 1 || rows[0][2].Float() != 3 {
		t.Fatalf("recovered image = %v, want final balance 3", rows)
	}
}

func TestRecoverEngineCReplaysCommitted(t *testing.T) {
	cfg := ConfigC{Schemas: testSchemas(), Shards: 2, Disk: disk.MemConfig()}
	e := NewEngineC(cfg)
	for i := int64(0); i < 10; i++ {
		if err := Exec(context.Background(), e, func(tx Tx) error { return tx.Insert("acct", acct(i, 0, float64(i))) }); err != nil {
			t.Fatal(err)
		}
	}
	if err := Exec(context.Background(), e, func(tx Tx) error { return tx.Update("acct", acct(3, 0, 333)) }); err != nil {
		t.Fatal(err)
	}
	if err := Exec(context.Background(), e, func(tx Tx) error { return tx.Delete("acct", 4) }); err != nil {
		t.Fatal(err)
	}
	dev := e.WALDevice()
	e.Close() // crash: in-memory state gone, the WAL device survives

	r, err := RecoverEngineC(cfg, dev)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	tx := r.Begin(context.Background())
	defer tx.Abort()
	if row, err := tx.Get("acct", 3); err != nil || row[2].Float() != 333 {
		t.Fatalf("recovered key 3 = %v, %v", row, err)
	}
	if _, err := tx.Get("acct", 4); !errors.Is(err, ErrNotFound) {
		t.Fatalf("deleted key survived recovery: %v", err)
	}
	if got := r.Query(context.Background(), "acct", nil, nil).Count(); got != 9 {
		t.Fatalf("recovered rows = %d, want 9", got)
	}
	// The IMCS restarts cold; reloading columns serves the recovered data
	// through the columnar path too.
	r.LoadColumns("acct", []string{"id", "bal"})
	if got := r.ColSource(context.Background(), "acct", []string{"id"}, nil); got == nil {
		t.Fatal("recovered IMCS has no source")
	}
	// New transactions append after the recovered history.
	if err := Exec(context.Background(), r, func(tx Tx) error { return tx.Insert("acct", acct(100, 0, 1)) }); err != nil {
		t.Fatal(err)
	}
	if got := r.Query(context.Background(), "acct", nil, nil).Count(); got != 10 {
		t.Fatalf("post-recovery insert invisible: %d", got)
	}
}

func TestRecoverEngineDReplaysCommitted(t *testing.T) {
	cfg := ConfigD{Schemas: testSchemas(), L1Rows: 4, L2Rows: 16}
	e := NewEngineD(cfg)
	for i := int64(0); i < 10; i++ {
		if err := Exec(context.Background(), e, func(tx Tx) error { return tx.Insert("acct", acct(i, 0, float64(i))) }); err != nil {
			t.Fatal(err)
		}
	}
	if err := Exec(context.Background(), e, func(tx Tx) error { return tx.Update("acct", acct(3, 0, 333)) }); err != nil {
		t.Fatal(err)
	}
	if err := Exec(context.Background(), e, func(tx Tx) error { return tx.Delete("acct", 4) }); err != nil {
		t.Fatal(err)
	}
	dev := e.WALDevice()
	e.Close()

	r, err := RecoverEngineD(cfg, dev)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	tx := r.Begin(context.Background())
	defer tx.Abort()
	if row, err := tx.Get("acct", 3); err != nil || row[2].Float() != 333 {
		t.Fatalf("recovered key 3 = %v, %v", row, err)
	}
	if _, err := tx.Get("acct", 4); !errors.Is(err, ErrNotFound) {
		t.Fatalf("deleted key survived recovery: %v", err)
	}
	if got := r.Query(context.Background(), "acct", nil, nil).Count(); got != 9 {
		t.Fatalf("recovered rows = %d, want 9", got)
	}
	if err := Exec(context.Background(), r, func(tx Tx) error { return tx.Insert("acct", acct(100, 0, 1)) }); err != nil {
		t.Fatal(err)
	}
	if got := r.Query(context.Background(), "acct", nil, nil).Count(); got != 10 {
		t.Fatalf("post-recovery insert invisible: %d", got)
	}
}

func TestRecoverySurvivesSecondCrash(t *testing.T) {
	// LSN assignment must resume past the replayed history: if a recovered
	// engine restarted LSNs at 1, a second crash-recovery cycle would still
	// work record-wise, but the log's numbering would lie. Verify both the
	// data and the LSN continuity across two cycles.
	e := NewEngineA(ConfigA{Schemas: testSchemas()})
	for i := int64(0); i < 5; i++ {
		if err := Exec(context.Background(), e, func(tx Tx) error { return tx.Insert("acct", acct(i, 0, 1)) }); err != nil {
			t.Fatal(err)
		}
	}
	firstLSN := e.wal.Stats().NextLSN
	dev := e.WALDevice()
	e.Close()

	r1, err := RecoverEngineA(ConfigA{Schemas: testSchemas()}, dev)
	if err != nil {
		t.Fatal(err)
	}
	if got := r1.wal.Stats().NextLSN; got != firstLSN {
		t.Fatalf("recovered NextLSN = %d, want %d (resume, not reset)", got, firstLSN)
	}
	for i := int64(5); i < 10; i++ {
		if err := Exec(context.Background(), r1, func(tx Tx) error { return tx.Insert("acct", acct(i, 0, 1)) }); err != nil {
			t.Fatal(err)
		}
	}
	r1.Close()

	r2, err := RecoverEngineA(ConfigA{Schemas: testSchemas()}, dev)
	if err != nil {
		t.Fatal(err)
	}
	defer r2.Close()
	if got := r2.Query(context.Background(), "acct", nil, nil).Count(); got != 10 {
		t.Fatalf("after two cycles rows = %d, want 10", got)
	}
}

func TestWALFaultAbortsTransactionCleanly(t *testing.T) {
	for name, build := range map[string]func() Engine{
		"A": func() Engine { return NewEngineA(ConfigA{Schemas: testSchemas()}) },
		"C": func() Engine {
			return NewEngineC(ConfigC{Schemas: testSchemas(), Shards: 2, Disk: disk.MemConfig()})
		},
		"D": func() Engine { return NewEngineD(ConfigD{Schemas: testSchemas(), L1Rows: 4, L2Rows: 16}) },
	} {
		t.Run(name, func(t *testing.T) {
			e := build()
			defer e.Close()
			if err := Exec(context.Background(), e, func(tx Tx) error { return tx.Insert("acct", acct(1, 0, 1)) }); err != nil {
				t.Fatal(err)
			}
			var dev *disk.Device
			switch ee := e.(type) {
			case *EngineA:
				dev = ee.WALDevice()
			case *EngineC:
				dev = ee.WALDevice()
			case *EngineD:
				dev = ee.WALDevice()
			}
			dev.SetFaultPlan(&disk.FaultPlan{Seed: 5, Rules: []disk.FaultRule{{WriteErrRate: 1.0}}})
			tx := e.Begin(context.Background())
			if err := tx.Insert("acct", acct(2, 0, 2)); err != nil {
				t.Fatal(err)
			}
			if err := tx.Commit(); err == nil {
				t.Fatal("commit with failing WAL succeeded")
			}
			dev.SetFaultPlan(nil)
			// The aborted write must not be visible anywhere: not to point
			// reads, not to analytical scans, and not after a sync.
			rtx := e.Begin(context.Background())
			if _, err := rtx.Get("acct", 2); !errors.Is(err, ErrNotFound) {
				t.Fatalf("aborted write visible to point read: %v", err)
			}
			rtx.Abort()
			e.Sync()
			if got := e.Query(context.Background(), "acct", nil, nil).Count(); got != 1 {
				t.Fatalf("aborted write visible to scan: %d rows", got)
			}
		})
	}
}

func TestEngineGCReclaimsVersions(t *testing.T) {
	e := NewEngineA(ConfigA{Schemas: testSchemas()})
	defer e.Close()
	Exec(context.Background(), e, func(tx Tx) error { return tx.Insert("acct", acct(1, 0, 0)) })
	for i := 0; i < 20; i++ {
		i := i
		if err := Exec(context.Background(), e, func(tx Tx) error { return tx.Update("acct", acct(1, 0, float64(i))) }); err != nil {
			t.Fatal(err)
		}
	}
	reclaimed := e.GC()
	if reclaimed < 19 {
		t.Fatalf("reclaimed %d versions, want >= 19", reclaimed)
	}
	// Current state unaffected.
	tx := e.Begin(context.Background())
	defer tx.Abort()
	r, err := tx.Get("acct", 1)
	if err != nil || r[2].Float() != 19 {
		t.Fatalf("post-GC read = %v, %v", r, err)
	}
	// Repeated GC finds nothing new.
	if again := e.GC(); again != 0 {
		t.Fatalf("second GC reclaimed %d", again)
	}
}
