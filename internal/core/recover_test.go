package core

import (
	"errors"
	"testing"

	"htap/internal/exec"
)

func TestRecoverEngineAReplaysCommitted(t *testing.T) {
	e := NewEngineA(ConfigA{Schemas: testSchemas()})
	for i := int64(0); i < 10; i++ {
		if err := Exec(e, func(tx Tx) error { return tx.Insert("acct", acct(i, 0, float64(i))) }); err != nil {
			t.Fatal(err)
		}
	}
	if err := Exec(e, func(tx Tx) error { return tx.Update("acct", acct(3, 0, 333)) }); err != nil {
		t.Fatal(err)
	}
	if err := Exec(e, func(tx Tx) error { return tx.Delete("acct", 4) }); err != nil {
		t.Fatal(err)
	}
	dev := e.WALDevice()
	e.Close() // crash: in-memory state gone, the device survives

	r, err := RecoverEngineA(ConfigA{Schemas: testSchemas()}, dev)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	tx := r.Begin()
	defer tx.Abort()
	if row, err := tx.Get("acct", 3); err != nil || row[2].Float() != 333 {
		t.Fatalf("recovered key 3 = %v, %v", row, err)
	}
	if _, err := tx.Get("acct", 4); !errors.Is(err, ErrNotFound) {
		t.Fatalf("deleted key survived recovery: %v", err)
	}
	if got := r.Query("acct", nil, nil).Count(); got != 9 {
		t.Fatalf("recovered rows = %d, want 9", got)
	}
	// The recovered engine accepts new transactions and they durably
	// append after the history.
	if err := Exec(r, func(tx Tx) error { return tx.Insert("acct", acct(100, 0, 1)) }); err != nil {
		t.Fatal(err)
	}
	if got := r.Query("acct", nil, nil).Count(); got != 10 {
		t.Fatalf("post-recovery insert invisible: %d", got)
	}
}

func TestRecoverLosesUncommittedTail(t *testing.T) {
	e := NewEngineA(ConfigA{Schemas: testSchemas()})
	if err := Exec(e, func(tx Tx) error { return tx.Insert("acct", acct(1, 0, 1)) }); err != nil {
		t.Fatal(err)
	}
	// A transaction that buffers writes and never commits: its records
	// never flush (group commit), so recovery must not see key 2.
	tx := e.Begin()
	if err := tx.Insert("acct", acct(2, 0, 2)); err != nil {
		t.Fatal(err)
	}
	dev := e.WALDevice()
	e.Close() // crash before commit

	r, err := RecoverEngineA(ConfigA{Schemas: testSchemas()}, dev)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	rtx := r.Begin()
	defer rtx.Abort()
	if _, err := rtx.Get("acct", 1); err != nil {
		t.Fatalf("committed key lost: %v", err)
	}
	if _, err := rtx.Get("acct", 2); !errors.Is(err, ErrNotFound) {
		t.Fatal("uncommitted key survived the crash")
	}
}

func TestRecoverPreservesCommitOrder(t *testing.T) {
	e := NewEngineA(ConfigA{Schemas: testSchemas()})
	// Two updates to the same key; the later one must win after recovery.
	Exec(e, func(tx Tx) error { return tx.Insert("acct", acct(7, 0, 1)) })
	Exec(e, func(tx Tx) error { return tx.Update("acct", acct(7, 0, 2)) })
	Exec(e, func(tx Tx) error { return tx.Update("acct", acct(7, 0, 3)) })
	dev := e.WALDevice()
	e.Close()

	r, err := RecoverEngineA(ConfigA{Schemas: testSchemas()}, dev)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	rows := r.Query("acct", nil, nil).
		Filter(exec.Cmp(exec.EQ, exec.ColName("id"), exec.ConstInt(7))).Run()
	if len(rows) != 1 || rows[0][2].Float() != 3 {
		t.Fatalf("recovered image = %v, want final balance 3", rows)
	}
}

func TestEngineGCReclaimsVersions(t *testing.T) {
	e := NewEngineA(ConfigA{Schemas: testSchemas()})
	defer e.Close()
	Exec(e, func(tx Tx) error { return tx.Insert("acct", acct(1, 0, 0)) })
	for i := 0; i < 20; i++ {
		i := i
		if err := Exec(e, func(tx Tx) error { return tx.Update("acct", acct(1, 0, float64(i))) }); err != nil {
			t.Fatal(err)
		}
	}
	reclaimed := e.GC()
	if reclaimed < 19 {
		t.Fatalf("reclaimed %d versions, want >= 19", reclaimed)
	}
	// Current state unaffected.
	tx := e.Begin()
	defer tx.Abort()
	r, err := tx.Get("acct", 1)
	if err != nil || r[2].Float() != 19 {
		t.Fatalf("post-GC read = %v, %v", r, err)
	}
	// Repeated GC finds nothing new.
	if again := e.GC(); again != 0 {
		t.Fatalf("second GC reclaimed %d", again)
	}
}
