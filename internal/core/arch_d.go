package core

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"htap/internal/datasync"
	"htap/internal/disk"
	"htap/internal/exec"
	"htap/internal/freshness"
	"htap/internal/obs"
	"htap/internal/planner"
	"htap/internal/sched"
	"htap/internal/txn"
	"htap/internal/types"
	"htap/internal/wal"
)

// ConfigD configures architecture D.
type ConfigD struct {
	Schemas []*types.Schema
	// L1Rows and L2Rows are the HANA layer-promotion thresholds.
	L1Rows int
	L2Rows int
	// Parallelism is the degree of parallelism analytical queries run
	// with; zero means GOMAXPROCS. SetParallelism overrides it at runtime.
	Parallelism int
}

// EngineD is architecture D (SAP HANA, §2.1(d)): the main column store is
// primary; OLTP writes land in the row-wise L1-delta and trickle through
// the columnar L2-delta into Main via the dictionary-encoded sorting
// merge. "The OLAP performance is high as the column store is highly
// read-optimized. However, since there is only a delta row store for OLTP
// workloads, the OLTP scalability is low."
type EngineD struct {
	memGoverned
	ts      *tableSet
	mgr     *txn.Manager
	walDev  *disk.Device
	wal     *wal.Log
	layers  []*datasync.Layered
	fb      *planner.Feedback
	tracker *freshness.Tracker
	mode    atomic.Uint32
	par     atomic.Int32
	om      archMetrics
	obsFns  []*obs.FuncHandle

	// versions tracks the latest committed version per key for conflict
	// checks: the layered store has no version chains of its own.
	verMu    sync.RWMutex
	versions []map[int64]uint64

	syncMu sync.Mutex
}

// NewEngineD builds architecture D.
func NewEngineD(cfg ConfigD) *EngineD {
	if cfg.L1Rows <= 0 {
		cfg.L1Rows = 1024
	}
	if cfg.L2Rows <= 0 {
		cfg.L2Rows = 64 * 1024
	}
	e := &EngineD{
		ts:      newTableSet(cfg.Schemas),
		mgr:     txn.NewManager(),
		walDev:  disk.New(disk.DefaultConfig()),
		fb:      planner.NewFeedback(0),
		tracker: freshness.NewTracker(),
		om:      newArchMetrics(ArchD),
	}
	e.wal = wal.New(e.walDev, "wal-d")
	for _, s := range cfg.Schemas {
		l := datasync.NewLayered(s, cfg.L1Rows, cfg.L2Rows)
		// Both columnar layers report under the table's name: a scan sees
		// the same predicates against L2 and Main.
		observeSelectivity(e.fb, ArchD, l.L2)
		observeSelectivity(e.fb, ArchD, l.Main)
		e.layers = append(e.layers, l)
		e.versions = append(e.versions, make(map[int64]uint64))
	}
	e.mode.Store(uint32(sched.Shared))
	e.par.Store(int32(cfg.Parallelism))
	e.obsFns = registerEngineFuncs(ArchD, e.Freshness, e.walDev.Stats)
	return e
}

// Name implements Engine.
func (e *EngineD) Name() string { return "primary-col+delta-row" }

// Arch implements Engine.
func (e *EngineD) Arch() Arch { return ArchD }

// Tables implements Engine.
func (e *EngineD) Tables() []*types.Schema { return e.ts.schemas }

// Schema implements Engine.
func (e *EngineD) Schema(table string) *types.Schema { return e.ts.schema(table) }

// read returns the live image of key at the current state (L1 newest
// first, then L2, then Main).
func (e *EngineD) read(id uint32, key int64, ts uint64) (types.Row, bool) {
	l := e.layers[id]
	o := l.L1.Overlay(ts)
	if _, masked := o.Masked[key]; masked {
		r, ok := o.Rows[key]
		return r, ok
	}
	if r, ok := l.L2.GetKey(key); ok {
		return r, true
	}
	return l.Main.GetKey(key)
}

func (e *EngineD) latestVersion(id uint32, key int64) uint64 {
	e.verMu.RLock()
	defer e.verMu.RUnlock()
	return e.versions[id][key]
}

// txD is the architecture-D transaction.
type txD struct {
	e   *EngineD
	ctx context.Context
	tx  *txn.Txn
}

// Begin implements Engine.
func (e *EngineD) Begin(ctx context.Context) Tx {
	e.om.begins.Inc()
	return &txD{e: e, ctx: ctxOrBackground(ctx), tx: e.mgr.Begin()}
}

func (t *txD) Get(table string, key int64) (types.Row, error) {
	id, err := t.e.ts.id(table)
	if err != nil {
		return nil, err
	}
	if w, ok := t.tx.GetWrite(id, key); ok {
		if w.Op == txn.OpDelete {
			return nil, ErrNotFound
		}
		return w.Row, nil
	}
	if r, ok := t.e.read(id, key, t.tx.ReadTS); ok {
		return r, nil
	}
	return nil, ErrNotFound
}

func (t *txD) write(table string, key int64, op txn.Op, row types.Row) error {
	id, err := t.e.ts.id(table)
	if err != nil {
		return err
	}
	if row != nil {
		if err := t.e.ts.schemas[id].Validate(row); err != nil {
			return err
		}
	}
	_, exists := t.e.read(id, key, t.tx.ReadTS)
	if w, ok := t.tx.GetWrite(id, key); ok {
		exists = w.Op != txn.OpDelete
	}
	switch op {
	case txn.OpInsert:
		if exists {
			return errors.Join(errRetry, errors.New("core: duplicate key"))
		}
	case txn.OpUpdate, txn.OpDelete:
		if !exists {
			return ErrNotFound
		}
	}
	return t.tx.Write(id, key, op, row, t.e.latestVersion(id, key))
}

func (t *txD) Insert(table string, row types.Row) error {
	id, err := t.e.ts.id(table)
	if err != nil {
		return err
	}
	return t.write(table, t.e.ts.schemas[id].Key(row), txn.OpInsert, row)
}

func (t *txD) Update(table string, row types.Row) error {
	id, err := t.e.ts.id(table)
	if err != nil {
		return err
	}
	return t.write(table, t.e.ts.schemas[id].Key(row), txn.OpUpdate, row)
}

func (t *txD) Delete(table string, key int64) error {
	return t.write(table, key, txn.OpDelete, nil)
}

func (t *txD) Commit() error {
	e := t.e
	if err := t.ctx.Err(); err != nil {
		t.Abort()
		return err
	}
	start := time.Now()
	ts, err := t.tx.Commit(func(commitTS uint64, writes []txn.Write) error {
		for id := range e.layers {
			if err := logWritesFor(e.wal, uint32(id), t.tx.ID, writes); err != nil {
				return fmt.Errorf("core: wal append: %w", err)
			}
		}
		if _, err := e.wal.Append(wal.Record{Txn: t.tx.ID, Type: wal.RecCommit}); err != nil {
			return fmt.Errorf("core: wal commit: %w", err)
		}
		e.verMu.Lock()
		for _, w := range writes {
			e.versions[w.Table][w.Key] = commitTS
		}
		e.verMu.Unlock()
		for id, ws := range groupWrites(writes) {
			e.layers[id].Append(commitTS, ws)
		}
		return nil
	})
	if err != nil {
		e.om.aborts.Inc()
		return wrapTxnErr(err)
	}
	e.om.commits.Inc()
	e.om.commitLat.Since(start)
	if t.tx.Pending() > 0 {
		e.tracker.Committed(ts)
		// Layer maintenance happens on the commit path, which is precisely
		// why the paper scores this architecture's OLTP scalability low.
		touched := map[uint32]struct{}{}
		minApplied := uint64(0)
		for _, w := range t.tx.Writes() {
			if _, done := touched[w.Table]; done {
				continue
			}
			touched[w.Table] = struct{}{}
			e.layers[w.Table].Maintain(ts)
			if a := e.layers[w.Table].Applied(); minApplied == 0 || a < minApplied {
				minApplied = a
			}
		}
		if minApplied > 0 {
			e.tracker.Applied(minApplied)
		}
	}
	return nil
}

func (t *txD) Abort() {
	t.e.om.aborts.Inc()
	t.tx.Abort()
}

// Load implements Engine.
func (e *EngineD) Load(table string, row types.Row) error {
	id, err := e.ts.id(table)
	if err != nil {
		return err
	}
	if err := e.ts.schemas[id].Validate(row); err != nil {
		return err
	}
	e.layers[id].Main.Append(row)
	return nil
}

// Source implements Engine: Main + L2 scans with the L1 overlay applied
// exactly once. Isolated mode skips the L1 overlay.
func (e *EngineD) Source(ctx context.Context, table string, cols []string, pred *exec.ScanPred) exec.Source {
	id := e.ts.mustID(table)
	l := e.layers[id]
	if sched.Mode(e.mode.Load()) == sched.Shared {
		o := l.L1.Overlay(e.mgr.Oracle().Watermark())
		return exec.NewUnion(
			exec.NewColScan(ctx, l.Main, cols, pred, o),
			exec.NewColScan(ctx, l.L2, cols, pred, o.MaskOnly()),
		)
	}
	return exec.NewUnion(
		exec.NewColScan(ctx, l.Main, cols, pred, nil),
		exec.NewColScan(ctx, l.L2, cols, pred, nil),
	)
}

// Query implements Engine.
func (e *EngineD) Query(ctx context.Context, table string, cols []string, pred *exec.ScanPred) *exec.Plan {
	e.om.queries.Inc()
	return e.govern(ctx, ArchD.Label(), exec.From(e.Source(ctx, table, cols, pred)).Parallel(resolveDOP(&e.par)))
}

// Sync implements Engine: promote every L1 and merge every L2 down to
// Main, making Main current.
func (e *EngineD) Sync() {
	e.syncMu.Lock()
	defer e.syncMu.Unlock()
	start := time.Now()
	sp := syncSpan(ArchD)
	upTo := e.mgr.Oracle().Watermark()
	for i, l := range e.layers {
		child := sp.Child("promote_l1").AttrInt("table", int64(i))
		l.PromoteL1(upTo)
		child.End()
		child = sp.Child("merge_l2").AttrInt("table", int64(i))
		l.MergeL2()
		child.End()
		if upTo > l.Main.Applied() {
			l.Main.SetApplied(upTo)
		}
	}
	e.tracker.Applied(upTo)
	sp.End()
	e.om.syncs.Inc()
	e.om.syncLat.Since(start)
}

// SetMode implements Engine.
func (e *EngineD) SetMode(m sched.Mode) { e.mode.Store(uint32(m)) }

// SetParallelism implements Paralleler.
func (e *EngineD) SetParallelism(n int) { e.par.Store(int32(n)) }

// Freshness implements Engine. Shared-mode scans overlay the L1 delta and
// see every commit; Isolated mode is bounded by layer promotion.
func (e *EngineD) Freshness() freshness.Snapshot {
	if sched.Mode(e.mode.Load()) == sched.Shared {
		return e.tracker.ReadWithApplied(e.mgr.Oracle().Watermark())
	}
	return e.tracker.Read()
}

// Stats implements Engine.
func (e *EngineD) Stats() Stats {
	ts := e.mgr.Stats()
	st := Stats{Commits: ts.Commits, Aborts: ts.Aborts, Conflicts: ts.Conflicts, Disk: e.walDev.Stats()}
	for _, l := range e.layers {
		ms, l2 := l.Main.Stats(), l.L2.Stats()
		st.Merges += ms.Merges + l2.Merges
		st.ColBytes += ms.Bytes + l2.Bytes
		st.DeltaRows += l.L1.Unmerged()
	}
	return st
}

// Close implements Engine.
func (e *EngineD) Close() { unregisterEngineFuncs(e.obsFns) }

// logWritesFor appends redo records for one table's writes.
func logWritesFor(l *wal.Log, table uint32, txnID uint64, writes []txn.Write) error {
	for _, w := range writes {
		if w.Table != table {
			continue
		}
		var rt wal.RecType
		switch w.Op {
		case txn.OpInsert:
			rt = wal.RecInsert
		case txn.OpUpdate:
			rt = wal.RecUpdate
		case txn.OpDelete:
			rt = wal.RecDelete
		}
		if _, err := l.Append(wal.Record{Txn: txnID, Type: rt, Table: table, Key: w.Key, Row: w.Row}); err != nil {
			return err
		}
	}
	return nil
}
