// Engine observability: every architecture exports the same htap_engine_*
// series (labeled arch="A".."D"), so one scrape compares the four designs
// side by side — the per-architecture view of the paper's Table 1 trade-offs.
// Scrape-time callbacks (freshness lag, device counters) are registered per
// live engine and handed over when an experiment rebuilds one.
package core

import (
	"htap/internal/colstore"
	"htap/internal/disk"
	"htap/internal/freshness"
	"htap/internal/obs"
	"htap/internal/planner"
)

// Label returns the short arch value used in metric labels.
func (a Arch) Label() string {
	switch a {
	case ArchA:
		return "A"
	case ArchB:
		return "B"
	case ArchC:
		return "C"
	case ArchD:
		return "D"
	default:
		return "?"
	}
}

// archMetrics holds the hot-path handles of one architecture. Engines of the
// same architecture share the series (registry get-or-create), so counters
// survive engine rebuilds within a run.
type archMetrics struct {
	begins    *obs.Counter   // htap_engine_txn_begins_total
	commits   *obs.Counter   // htap_engine_txn_commits_total
	aborts    *obs.Counter   // htap_engine_txn_aborts_total
	commitLat *obs.Histogram // htap_engine_commit_duration_ns
	queries   *obs.Counter   // htap_engine_queries_total
	syncs     *obs.Counter   // htap_engine_syncs_total
	syncLat   *obs.Histogram // htap_engine_sync_duration_ns
}

func newArchMetrics(a Arch) archMetrics {
	l := obs.L("arch", a.Label())
	return archMetrics{
		begins:    obs.Default.Counter("htap_engine_txn_begins_total", l),
		commits:   obs.Default.Counter("htap_engine_txn_commits_total", l),
		aborts:    obs.Default.Counter("htap_engine_txn_aborts_total", l),
		commitLat: obs.Default.Histogram("htap_engine_commit_duration_ns", l),
		queries:   obs.Default.Counter("htap_engine_queries_total", l),
		syncs:     obs.Default.Counter("htap_engine_syncs_total", l),
		syncLat:   obs.Default.Histogram("htap_engine_sync_duration_ns", l),
	}
}

// registerEngineFuncs exports scrape-time callbacks for one live engine: the
// freshness lag gauges every architecture must expose, and (when dev is
// non-nil) the engine's device counters re-labeled by architecture.
// Rebuilding an engine of the same architecture transfers series ownership
// to the newest instance; Close unregisters only what it still owns.
func registerEngineFuncs(a Arch, fresh func() freshness.Snapshot, dev func() disk.Stats) []*obs.FuncHandle {
	l := obs.L("arch", a.Label())
	hs := []*obs.FuncHandle{
		obs.Default.RegisterFunc("htap_freshness_lag_ts", l, obs.KindGauge, func() float64 {
			return float64(fresh().LagTS)
		}),
		obs.Default.RegisterFunc("htap_freshness_lag_seconds", l, obs.KindGauge, func() float64 {
			return fresh().LagTime.Seconds()
		}),
	}
	if dev == nil {
		return hs
	}
	for _, c := range []struct {
		name string
		get  func(disk.Stats) int64
	}{
		{"htap_disk_read_ops", func(s disk.Stats) int64 { return s.ReadOps }},
		{"htap_disk_write_ops", func(s disk.Stats) int64 { return s.WriteOps }},
		{"htap_disk_read_bytes", func(s disk.Stats) int64 { return s.ReadBytes }},
		{"htap_disk_write_bytes", func(s disk.Stats) int64 { return s.WriteBytes }},
		{"htap_disk_faults_injected", func(s disk.Stats) int64 { return s.FaultsInjected }},
		{"htap_disk_torn_writes", func(s disk.Stats) int64 { return s.TornWrites }},
		{"htap_disk_torn_bytes_discarded", func(s disk.Stats) int64 { return s.TornBytesDiscarded }},
		{"htap_disk_crashes", func(s disk.Stats) int64 { return s.Crashes }},
	} {
		get := c.get
		hs = append(hs, obs.Default.RegisterFunc(c.name, l, obs.KindCounter, func() float64 {
			return float64(get(dev()))
		}))
	}
	return hs
}

// unregisterEngineFuncs releases the callbacks an engine registered, keeping
// any series a newer engine has since taken over.
func unregisterEngineFuncs(hs []*obs.FuncHandle) {
	for _, h := range hs {
		obs.Default.Unregister(h)
	}
}

// observeSelectivity registers a pushed-predicate selection-density
// observer on tbl (see colstore.Table.SetSelObserver): every segment a scan
// filters with pushed-down predicates reports the fraction of rows its
// selection vector kept. Observations feed fb — the engine's planner
// feedback accumulator — and the running per-table estimate is exported as
// the htap_planner_observed_selectivity gauge.
func observeSelectivity(fb *planner.Feedback, a Arch, tbl *colstore.Table) {
	name := tbl.Schema.Name
	g := obs.Default.Gauge("htap_planner_observed_selectivity", obs.L("arch", a.Label(), "table", name))
	tbl.SetSelObserver(func(sel float64) {
		fb.Observe(name, sel)
		if s, ok := fb.Selectivity(name); ok {
			g.Set(s)
		}
	})
}

// syncSpan opens the root trace span of one synchronization round; callers
// hang one child per table (or per learner) under it.
func syncSpan(a Arch) *obs.Span {
	return obs.Trace.Start("sync").Attr("arch", a.Label())
}
