package core

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"htap/internal/cluster"
	"htap/internal/colstore"
	"htap/internal/datasync"
	"htap/internal/delta"
	"htap/internal/disk"
	"htap/internal/exec"
	"htap/internal/freshness"
	"htap/internal/obs"
	"htap/internal/planner"
	"htap/internal/rowstore"
	"htap/internal/sched"
	"htap/internal/twopc"
	"htap/internal/txn"
	"htap/internal/types"
)

// ConfigB configures architecture B.
type ConfigB struct {
	Schemas     []*types.Schema
	Partitions  int
	VotersPer   int // row-store replicas per partition (TiKV peers)
	LearnersPer int // columnar replicas per partition (TiFlash peers)
	NetLatency  time.Duration
	// MergeInterval is the learners' background log-delta merge cadence;
	// zero merges only on explicit Sync().
	MergeInterval time.Duration
	// Parallelism is the degree of parallelism analytical queries run
	// with; zero means GOMAXPROCS. SetParallelism overrides it at runtime.
	Parallelism int
}

// voterStorage is one voting replica's state: MVCC row stores per table.
type voterStorage struct {
	rows []*rowstore.Store
}

func newVoterStorage(schemas []*types.Schema) *voterStorage {
	v := &voterStorage{}
	for i, s := range schemas {
		v.rows = append(v.rows, rowstore.New(uint32(i), s))
	}
	return v
}

// LatestVersion implements twopc.Storage.
func (v *voterStorage) LatestVersion(table uint32, key int64) uint64 {
	return v.rows[table].LatestVersion(key)
}

// ApplyMutations implements twopc.Storage.
func (v *voterStorage) ApplyMutations(commitTS uint64, muts []cluster.Mutation) {
	byTable := make(map[uint32][]txn.Write)
	for _, m := range muts {
		byTable[m.Table] = append(byTable[m.Table], txn.Write{Table: m.Table, Key: m.Key, Op: m.Op, Row: m.Row})
	}
	for id, ws := range byTable {
		v.rows[id].Apply(commitTS, ws)
	}
}

// learnerStorage is one columnar replica's state: per-table log-based
// delta files on a simulated disk plus the column store they merge into.
type learnerStorage struct {
	dev    *disk.Device
	deltas []*delta.Log
	cols   []*colstore.Table
}

func newLearnerStorage(pid int, schemas []*types.Schema) *learnerStorage {
	l := &learnerStorage{dev: disk.New(disk.DefaultConfig())}
	for i, s := range schemas {
		l.deltas = append(l.deltas, delta.NewLog(l.dev, fmt.Sprintf("p%d-t%d-delta", pid, i)))
		l.cols = append(l.cols, colstore.NewTable(s))
	}
	return l
}

// LatestVersion implements twopc.Storage. It must agree with the voters'
// answer for determinism: every write flows through the same log, so the
// newest delta entry's timestamp equals the row store's newest version.
func (l *learnerStorage) LatestVersion(table uint32, key int64) uint64 {
	return l.deltas[table].LatestTS(key)
}

// ApplyMutations implements twopc.Storage: committed writes land in the
// log-based delta files (the TiFlash write path).
func (l *learnerStorage) ApplyMutations(commitTS uint64, muts []cluster.Mutation) {
	byTable := make(map[uint32][]txn.Write)
	for _, m := range muts {
		byTable[m.Table] = append(byTable[m.Table], txn.Write{Table: m.Table, Key: m.Key, Op: m.Op, Row: m.Row})
	}
	for id, ws := range byTable {
		l.deltas[id].Append(commitTS, ws)
	}
}

// EngineB is architecture B (TiDB, §2.1(b)): transactions run under
// 2PC + Raft + logging across partitioned row-store replicas; the same
// Raft logs feed learner replicas holding columnar data, which merge their
// log-based delta files in the background. Workload isolation is high —
// analytical scans touch only learner state — and freshness is bounded by
// replication plus merge lag.
type EngineB struct {
	memGoverned
	ts     *tableSet
	oracle *txn.Oracle
	c      *cluster.Cluster
	coord  *twopc.Coordinator
	cfg    ConfigB

	voters   map[int]map[int]*voterStorage // pid -> nodeID
	learners map[int]map[int]*learnerStorage
	parts    map[int]map[int]*twopc.Participant
	fb       *planner.Feedback

	tracker *freshness.Tracker
	mode    atomic.Uint32
	par     atomic.Int32
	commits atomic.Int64
	aborts  atomic.Int64
	om      archMetrics
	obsFns  []*obs.FuncHandle
	// lastCommit tracks, per partition, the highest commit timestamp that
	// touched it; learners that applied up to it are fully caught up.
	lastCommit []atomic.Uint64

	syncMu sync.Mutex
	stop   chan struct{}
	wg     sync.WaitGroup
}

// NewEngineB builds and starts architecture B.
func NewEngineB(cfg ConfigB) *EngineB {
	if cfg.Partitions <= 0 {
		cfg.Partitions = 2
	}
	if cfg.VotersPer <= 0 {
		cfg.VotersPer = 3
	}
	if cfg.LearnersPer <= 0 {
		cfg.LearnersPer = 1
	}
	e := &EngineB{
		ts:       newTableSet(cfg.Schemas),
		oracle:   &txn.Oracle{},
		cfg:      cfg,
		voters:   make(map[int]map[int]*voterStorage),
		learners: make(map[int]map[int]*learnerStorage),
		parts:    make(map[int]map[int]*twopc.Participant),
		fb:       planner.NewFeedback(0),
		tracker:  freshness.NewTracker(),
		om:       newArchMetrics(ArchB),
		stop:     make(chan struct{}),
	}
	e.lastCommit = make([]atomic.Uint64, cfg.Partitions)
	for pid := 0; pid < cfg.Partitions; pid++ {
		e.voters[pid] = make(map[int]*voterStorage)
		e.learners[pid] = make(map[int]*learnerStorage)
		e.parts[pid] = make(map[int]*twopc.Participant)
		for n := 0; n < cfg.VotersPer; n++ {
			vs := newVoterStorage(cfg.Schemas)
			e.voters[pid][n] = vs
			e.parts[pid][n] = twopc.NewParticipant(vs)
		}
		for n := cfg.VotersPer; n < cfg.VotersPer+cfg.LearnersPer; n++ {
			ls := newLearnerStorage(pid, cfg.Schemas)
			for _, ct := range ls.cols {
				observeSelectivity(e.fb, ArchB, ct)
			}
			e.learners[pid][n] = ls
			e.parts[pid][n] = twopc.NewParticipant(ls)
		}
	}
	e.c = cluster.New(cluster.Config{
		Partitions: cfg.Partitions, VotersPer: cfg.VotersPer, LearnersPer: cfg.LearnersPer,
		NetLatency: cfg.NetLatency, CompactEvery: 4096,
		ApplyRaw: func(part, nodeID int, learner bool, cmd []byte) {
			e.parts[part][nodeID].Apply(cmd)
		},
	})
	if err := e.c.WaitReady(10 * time.Second); err != nil {
		panic(err)
	}
	e.coord = twopc.NewCoordinator(e.c, e.oracle, func(part int) *twopc.Participant {
		l := e.c.Partitions[part].Leader()
		if l == nil {
			return e.parts[part][0]
		}
		return e.parts[part][l.Status().ID]
	})
	e.mode.Store(uint32(sched.Shared))
	e.par.Store(int32(cfg.Parallelism))
	e.obsFns = registerEngineFuncs(ArchB, e.Freshness, func() disk.Stats { return e.Stats().Disk })
	if cfg.MergeInterval > 0 {
		e.wg.Add(1)
		go e.mergeLoop()
	}
	return e
}

// Name implements Engine.
func (e *EngineB) Name() string { return "dist-row+col-replica" }

// Arch implements Engine.
func (e *EngineB) Arch() Arch { return ArchB }

// Tables implements Engine.
func (e *EngineB) Tables() []*types.Schema { return e.ts.schemas }

// Schema implements Engine.
func (e *EngineB) Schema(table string) *types.Schema { return e.ts.schema(table) }

func (e *EngineB) mergeLoop() {
	defer e.wg.Done()
	t := time.NewTicker(e.cfg.MergeInterval)
	defer t.Stop()
	for {
		select {
		case <-e.stop:
			return
		case <-t.C:
			e.Sync()
		}
	}
}

// leaderStorage returns the row stores of a partition's current leader.
func (e *EngineB) leaderStorage(pid int) *voterStorage {
	l := e.c.Partitions[pid].Leader()
	if l == nil {
		return e.voters[pid][0]
	}
	return e.voters[pid][l.Status().ID]
}

// txB is a distributed transaction: reads go to partition leaders at the
// snapshot, writes buffer locally and commit through 2PC.
type txB struct {
	e      *EngineB
	ctx    context.Context
	readTS uint64
	muts   []cluster.Mutation
	idx    map[[2]int64]int // (table, key) -> muts index
	done   bool
}

// Begin implements Engine.
func (e *EngineB) Begin(ctx context.Context) Tx {
	e.om.begins.Inc()
	return &txB{e: e, ctx: ctxOrBackground(ctx), readTS: e.oracle.Watermark(), idx: make(map[[2]int64]int)}
}

func (t *txB) key(table uint32, key int64) [2]int64 { return [2]int64{int64(table), key} }

func (t *txB) ownWrite(table uint32, key int64) (cluster.Mutation, bool) {
	if i, ok := t.idx[t.key(table, key)]; ok {
		return t.muts[i], true
	}
	return cluster.Mutation{}, false
}

func (t *txB) Get(table string, key int64) (types.Row, error) {
	id, err := t.e.ts.id(table)
	if err != nil {
		return nil, err
	}
	if m, ok := t.ownWrite(id, key); ok {
		if m.Op == txn.OpDelete {
			return nil, ErrNotFound
		}
		return m.Row, nil
	}
	pid := t.e.c.Route(id, key).ID
	r, err := t.e.leaderStorage(pid).rows[id].GetAt(t.readTS, key)
	if errors.Is(err, rowstore.ErrNotFound) {
		return nil, ErrNotFound
	}
	return r, err
}

func (t *txB) buffer(id uint32, key int64, op txn.Op, row types.Row) {
	k := t.key(id, key)
	if i, ok := t.idx[k]; ok {
		t.muts[i].Op = op
		t.muts[i].Row = row
		return
	}
	t.idx[k] = len(t.muts)
	t.muts = append(t.muts, cluster.Mutation{Table: id, Key: key, Op: op, Row: row})
}

func (t *txB) Insert(table string, row types.Row) error {
	id, err := t.e.ts.id(table)
	if err != nil {
		return err
	}
	if err := t.e.ts.schemas[id].Validate(row); err != nil {
		return err
	}
	key := t.e.ts.schemas[id].Key(row)
	if _, err := t.Get(table, key); err == nil {
		return errors.Join(errRetry, errors.New("core: duplicate key"))
	}
	t.buffer(id, key, txn.OpInsert, row)
	return nil
}

func (t *txB) Update(table string, row types.Row) error {
	id, err := t.e.ts.id(table)
	if err != nil {
		return err
	}
	if err := t.e.ts.schemas[id].Validate(row); err != nil {
		return err
	}
	key := t.e.ts.schemas[id].Key(row)
	if _, err := t.Get(table, key); err != nil {
		return err
	}
	t.buffer(id, key, txn.OpUpdate, row)
	return nil
}

func (t *txB) Delete(table string, key int64) error {
	id, err := t.e.ts.id(table)
	if err != nil {
		return err
	}
	if _, err := t.Get(table, key); err != nil {
		return err
	}
	t.buffer(id, key, txn.OpDelete, nil)
	return nil
}

func (t *txB) Commit() error {
	if t.done {
		return txn.ErrFinished
	}
	if err := t.ctx.Err(); err != nil {
		t.Abort()
		return err
	}
	t.done = true
	start := time.Now()
	if len(t.muts) == 0 {
		t.e.commits.Add(1)
		t.e.om.commits.Inc()
		return nil
	}
	ts, err := t.e.coord.Commit(t.readTS, t.muts)
	if err != nil {
		t.e.aborts.Add(1)
		t.e.om.aborts.Inc()
		if errors.Is(err, twopc.ErrConflict) {
			return errors.Join(errRetry, err)
		}
		return err
	}
	t.e.commits.Add(1)
	t.e.om.commits.Inc()
	t.e.om.commitLat.Since(start)
	seen := make(map[int]bool)
	for _, m := range t.muts {
		pid := t.e.c.Route(m.Table, m.Key).ID
		if seen[pid] {
			continue
		}
		seen[pid] = true
		lc := &t.e.lastCommit[pid]
		for {
			cur := lc.Load()
			if ts <= cur || lc.CompareAndSwap(cur, ts) {
				break
			}
		}
	}
	t.e.tracker.Committed(ts)
	return nil
}

func (t *txB) Abort() {
	if !t.done {
		t.done = true
		t.e.aborts.Add(1)
		t.e.om.aborts.Inc()
	}
}

// Load implements Engine: rows are installed directly on every replica of
// the owning partition (row stores on voters, column stores on learners),
// bypassing consensus, so experiments start from a synchronized state.
func (e *EngineB) Load(table string, row types.Row) error {
	id, err := e.ts.id(table)
	if err != nil {
		return err
	}
	if err := e.ts.schemas[id].Validate(row); err != nil {
		return err
	}
	pid := e.c.Route(id, e.ts.schemas[id].Key(row)).ID
	for _, vs := range e.voters[pid] {
		if err := vs.rows[id].Load(row); err != nil {
			return err
		}
	}
	for _, ls := range e.learners[pid] {
		ls.cols[id].Append(row)
	}
	return nil
}

// Source implements Engine: the log-based delta + column scan of
// §2.2(2)(ii), executed in parallel across the per-partition learner
// replicas. Isolated mode scans only merged columnar data.
func (e *EngineB) Source(ctx context.Context, table string, cols []string, pred *exec.ScanPred) exec.Source {
	id := e.ts.mustID(table)
	shared := sched.Mode(e.mode.Load()) == sched.Shared
	var srcs []exec.Source
	for pid := 0; pid < e.cfg.Partitions; pid++ {
		for _, ls := range e.learners[pid] {
			var overlay *delta.Overlay
			if shared {
				overlay = ls.deltas[id].Overlay(e.oracle.Watermark())
			}
			srcs = append(srcs, exec.NewColScan(ctx, ls.cols[id], cols, pred, overlay))
			break // one learner per partition serves queries
		}
	}
	return exec.NewUnion(srcs...)
}

// Query implements Engine.
func (e *EngineB) Query(ctx context.Context, table string, cols []string, pred *exec.ScanPred) *exec.Plan {
	e.om.queries.Inc()
	return e.govern(ctx, ArchB.Label(), exec.From(e.Source(ctx, table, cols, pred)).Parallel(resolveDOP(&e.par)))
}

// Sync implements Engine: every learner merges its log-based delta files
// into its column store, up to what replication has delivered to it.
func (e *EngineB) Sync() {
	e.syncMu.Lock()
	defer e.syncMu.Unlock()
	start := time.Now()
	sp := syncSpan(ArchB)
	for pid := 0; pid < e.cfg.Partitions; pid++ {
		for n, ls := range e.learners[pid] {
			child := sp.Child("learner").AttrInt("partition", int64(pid)).AttrInt("node", int64(n))
			upTo := e.parts[pid][n].AppliedTS()
			for tid := range ls.cols {
				datasync.MergeDelta(ls.cols[tid], ls.deltas[tid], upTo)
			}
			child.End()
		}
	}
	e.tracker.Applied(e.minColApplied())
	sp.End()
	e.om.syncs.Inc()
	e.om.syncLat.Since(start)
}

// minColApplied is the freshness watermark of the analytical view: per
// partition, a learner whose merged watermark has reached everything the
// partition ever committed is caught up to the global watermark (an idle
// partition cannot hold freshness back); otherwise its merged watermark
// counts. The minimum across partitions is the view's watermark.
func (e *EngineB) minColApplied() uint64 {
	global := e.oracle.Watermark()
	min := global
	for pid := 0; pid < e.cfg.Partitions; pid++ {
		last := e.lastCommit[pid].Load()
		for _, ls := range e.learners[pid] {
			merged := uint64(1<<63 - 1)
			for _, c := range ls.cols {
				if a := c.Applied(); a < merged {
					merged = a
				}
			}
			eff := merged
			if merged >= last {
				eff = global
			}
			if eff < min {
				min = eff
			}
		}
	}
	return min
}

// SetMode implements Engine.
func (e *EngineB) SetMode(m sched.Mode) { e.mode.Store(uint32(m)) }

// SetParallelism implements Paralleler.
func (e *EngineB) SetParallelism(n int) { e.par.Store(int32(n)) }

// Freshness implements Engine. Even in Shared mode the analytical view is
// only as fresh as what replication has delivered to the learners; in
// Isolated mode it is further bounded by the last log-delta merge. This is
// the paper's "the data freshness is low since newly-updated data may have
// not been merged to the column store".
func (e *EngineB) Freshness() freshness.Snapshot {
	if sched.Mode(e.mode.Load()) == sched.Shared {
		return e.tracker.ReadWithApplied(e.minLearnerApplied())
	}
	return e.tracker.Read()
}

// minLearnerApplied is the replication watermark: the lowest commit
// timestamp fully delivered to each partition's learner (idle partitions
// count as caught up).
func (e *EngineB) minLearnerApplied() uint64 {
	global := e.oracle.Watermark()
	min := global
	for pid := 0; pid < e.cfg.Partitions; pid++ {
		last := e.lastCommit[pid].Load()
		for n := range e.learners[pid] {
			applied := e.parts[pid][n].AppliedTS()
			eff := applied
			if applied >= last {
				eff = global
			}
			if eff < min {
				min = eff
			}
		}
	}
	return min
}

// Stats implements Engine.
func (e *EngineB) Stats() Stats {
	st := Stats{Commits: e.commits.Load(), Aborts: e.aborts.Load()}
	for pid := 0; pid < e.cfg.Partitions; pid++ {
		for _, ls := range e.learners[pid] {
			d := ls.dev.Stats()
			st.Disk.ReadOps += d.ReadOps
			st.Disk.WriteOps += d.WriteOps
			st.Disk.ReadBytes += d.ReadBytes
			st.Disk.WriteBytes += d.WriteBytes
			for tid := range ls.cols {
				cs := ls.cols[tid].Stats()
				st.Merges += cs.Merges
				st.ColBytes += cs.Bytes
				st.DeltaRows += ls.deltas[tid].Unmerged()
			}
		}
	}
	return st
}

// Close implements Engine.
func (e *EngineB) Close() {
	close(e.stop)
	e.wg.Wait()
	e.c.Stop()
	unregisterEngineFuncs(e.obsFns)
}
