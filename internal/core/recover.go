package core

import (
	"fmt"

	"htap/internal/disk"
	"htap/internal/txn"
	"htap/internal/wal"
)

// RecoverEngineA rebuilds an architecture-A engine from the redo log on
// dev (the device a previous instance wrote its WAL to). Only transactions
// whose COMMIT record is durable are replayed — the group-commit tail that
// never reached the device is lost, exactly as §2.2(1)'s "MVCC + logging"
// promises. Each replayed transaction receives a fresh commit timestamp in
// log order, so post-recovery snapshots observe the original commit order.
func RecoverEngineA(cfg ConfigA, dev *disk.Device) (*EngineA, error) {
	e := NewEngineA(cfg)
	// Adopt the existing device and log so new commits append after the
	// recovered history.
	e.walDev = dev
	e.wal = wal.New(dev, "wal-a")

	pending := make(map[uint64][]wal.Record)
	replayErr := e.wal.Replay(func(r wal.Record) error {
		switch r.Type {
		case wal.RecInsert, wal.RecUpdate, wal.RecDelete:
			pending[r.Txn] = append(pending[r.Txn], r)
		case wal.RecCommit:
			recs := pending[r.Txn]
			delete(pending, r.Txn)
			if err := e.replayTxn(recs); err != nil {
				return fmt.Errorf("core: replaying txn %d: %w", r.Txn, err)
			}
		case wal.RecAbort:
			delete(pending, r.Txn)
		}
		return nil
	})
	if replayErr != nil {
		return nil, replayErr
	}
	// Transactions left in pending never committed; they are dropped.
	// The recovered state is fully merged into row stores; make the
	// analytical side current too.
	e.Sync()
	return e, nil
}

// replayTxn installs one committed transaction's records at a fresh
// timestamp.
func (e *EngineA) replayTxn(recs []wal.Record) error {
	if len(recs) == 0 {
		return nil
	}
	commitTS := e.mgr.Oracle().Next()
	writes := make([]txn.Write, 0, len(recs))
	for _, r := range recs {
		if int(r.Table) >= len(e.rows) {
			return fmt.Errorf("unknown table id %d", r.Table)
		}
		var op txn.Op
		switch r.Type {
		case wal.RecInsert:
			op = txn.OpInsert
		case wal.RecUpdate:
			op = txn.OpUpdate
		case wal.RecDelete:
			op = txn.OpDelete
		}
		writes = append(writes, txn.Write{Table: r.Table, Key: r.Key, Op: op, Row: r.Row})
	}
	for id, ws := range groupWrites(writes) {
		e.rows[id].Apply(commitTS, ws)
		e.deltas[id].Append(commitTS, ws)
	}
	e.mgr.Oracle().Advance(commitTS)
	e.tracker.Committed(commitTS)
	return nil
}

// WALDevice exposes the engine's redo-log device so callers can simulate a
// crash-restart cycle (tests, examples).
func (e *EngineA) WALDevice() *disk.Device { return e.walDev }
