package core

import (
	"fmt"

	"htap/internal/disk"
	"htap/internal/txn"
	"htap/internal/wal"
)

// replaySummary is what one redo pass learned about the log.
type replaySummary struct {
	wal.ReplayResult
	maxTxn uint64 // highest transaction id seen, committed or not
}

// replayLog drives one ARIES-style redo pass over a WAL: DML records are
// staged per transaction and installed (via install) when their COMMIT
// record appears; transactions without a durable COMMIT — including any torn
// group-commit tail the log discarded — are dropped, exactly as §2.2(1)'s
// "MVCC + logging" promises. It returns the replay summary so callers can
// resume LSN and transaction-id assignment after the recovered history.
func replayLog(l *wal.Log, install func(recs []wal.Record) error) (replaySummary, error) {
	var sum replaySummary
	pending := make(map[uint64][]wal.Record)
	res, err := l.Replay(func(r wal.Record) error {
		if r.Txn > sum.maxTxn {
			sum.maxTxn = r.Txn
		}
		switch r.Type {
		case wal.RecInsert, wal.RecUpdate, wal.RecDelete:
			pending[r.Txn] = append(pending[r.Txn], r)
		case wal.RecCommit:
			recs := pending[r.Txn]
			delete(pending, r.Txn)
			if err := install(recs); err != nil {
				return fmt.Errorf("core: replaying txn %d: %w", r.Txn, err)
			}
		case wal.RecAbort:
			delete(pending, r.Txn)
		}
		return nil
	})
	sum.ReplayResult = res
	if err != nil {
		return sum, err
	}
	// Transactions left in pending never committed; they are dropped. A
	// torn tail is amputated from the device so post-recovery commits
	// append at a clean record boundary — otherwise every later replay
	// would stop at the tear and lose them.
	if res.DiscardedBytes > 0 {
		if terr := l.DiscardTornTail(res.DiscardedBytes); terr != nil {
			return sum, fmt.Errorf("core: repairing torn log tail: %w", terr)
		}
	}
	return sum, nil
}

// walWrites converts one committed transaction's redo records into a write
// set, validating table ids against the recovered schema set.
func walWrites(nTables int, recs []wal.Record) ([]txn.Write, error) {
	writes := make([]txn.Write, 0, len(recs))
	for _, r := range recs {
		if int(r.Table) >= nTables {
			return nil, fmt.Errorf("unknown table id %d", r.Table)
		}
		var op txn.Op
		switch r.Type {
		case wal.RecInsert:
			op = txn.OpInsert
		case wal.RecUpdate:
			op = txn.OpUpdate
		case wal.RecDelete:
			op = txn.OpDelete
		}
		writes = append(writes, txn.Write{Table: r.Table, Key: r.Key, Op: op, Row: r.Row})
	}
	return writes, nil
}

// RecoverEngineA rebuilds an architecture-A engine from the redo log on
// dev (the device a previous instance wrote its WAL to). Only transactions
// whose COMMIT record is durable are replayed — the group-commit tail that
// never reached the device is lost. Each replayed transaction receives a
// fresh commit timestamp in log order, so post-recovery snapshots observe
// the original commit order, and LSN assignment resumes past the replayed
// history.
func RecoverEngineA(cfg ConfigA, dev *disk.Device) (*EngineA, error) {
	e := NewEngineA(cfg)
	// Adopt the existing device and log so new commits append after the
	// recovered history.
	e.walDev = dev
	e.wal = wal.New(dev, "wal-a")
	res, err := replayLog(e.wal, e.replayTxn)
	if err != nil {
		return nil, err
	}
	e.wal.SetNextLSN(res.MaxLSN + 1)
	e.mgr.AdvanceTxnID(res.maxTxn)
	// The recovered state is fully merged into row stores; make the
	// analytical side current too.
	e.Sync()
	return e, nil
}

// replayTxn installs one committed transaction's records at a fresh
// timestamp.
func (e *EngineA) replayTxn(recs []wal.Record) error {
	if len(recs) == 0 {
		return nil
	}
	writes, err := walWrites(len(e.rows), recs)
	if err != nil {
		return err
	}
	commitTS := e.mgr.Oracle().Next()
	for id, ws := range groupWrites(writes) {
		e.rows[id].Apply(commitTS, ws)
		e.deltas[id].Append(commitTS, ws)
	}
	e.mgr.Oracle().Advance(commitTS)
	e.tracker.Committed(commitTS)
	return nil
}

// RecoverEngineC is RecoverEngineA for architecture C: committed
// transactions are reinstalled into the disk row store. The in-memory
// column store starts cold (no projections are loaded) — as after a real
// Heatwave restart — and is repopulated by the next LoadColumns/Reselect.
func RecoverEngineC(cfg ConfigC, dev *disk.Device) (*EngineC, error) {
	e := NewEngineC(cfg)
	e.walDev = dev
	e.wal = wal.New(dev, "wal-c")
	res, err := replayLog(e.wal, e.replayTxn)
	if err != nil {
		return nil, err
	}
	e.wal.SetNextLSN(res.MaxLSN + 1)
	e.mgr.AdvanceTxnID(res.maxTxn)
	e.Sync()
	return e, nil
}

// replayTxn installs one committed transaction's records at a fresh
// timestamp.
func (e *EngineC) replayTxn(recs []wal.Record) error {
	if len(recs) == 0 {
		return nil
	}
	writes, err := walWrites(len(e.rows), recs)
	if err != nil {
		return err
	}
	commitTS := e.mgr.Oracle().Next()
	for id, ws := range groupWrites(writes) {
		e.rows[id].Apply(commitTS, ws)
		if e.imcs[id].isLoaded() {
			e.imcs[id].delta.Append(commitTS, ws)
		}
	}
	e.mgr.Oracle().Advance(commitTS)
	e.tracker.Committed(commitTS)
	return nil
}

// RecoverEngineD is RecoverEngineA for architecture D: committed
// transactions are reinstalled through the layered store's L1-delta (the
// same path live commits take), then Sync folds them down into Main.
func RecoverEngineD(cfg ConfigD, dev *disk.Device) (*EngineD, error) {
	e := NewEngineD(cfg)
	e.walDev = dev
	e.wal = wal.New(dev, "wal-d")
	res, err := replayLog(e.wal, e.replayTxn)
	if err != nil {
		return nil, err
	}
	e.wal.SetNextLSN(res.MaxLSN + 1)
	e.mgr.AdvanceTxnID(res.maxTxn)
	e.Sync()
	return e, nil
}

// replayTxn installs one committed transaction's records at a fresh
// timestamp.
func (e *EngineD) replayTxn(recs []wal.Record) error {
	if len(recs) == 0 {
		return nil
	}
	writes, err := walWrites(len(e.layers), recs)
	if err != nil {
		return err
	}
	commitTS := e.mgr.Oracle().Next()
	e.verMu.Lock()
	for _, w := range writes {
		e.versions[w.Table][w.Key] = commitTS
	}
	e.verMu.Unlock()
	for id, ws := range groupWrites(writes) {
		e.layers[id].Append(commitTS, ws)
	}
	e.mgr.Oracle().Advance(commitTS)
	e.tracker.Committed(commitTS)
	return nil
}

// WALDevice exposes the engine's redo-log device so callers can simulate a
// crash-restart cycle (tests, chaos harness, examples).
func (e *EngineA) WALDevice() *disk.Device { return e.walDev }

// WALDevice exposes the engine's redo-log device.
func (e *EngineC) WALDevice() *disk.Device { return e.walDev }

// WALDevice exposes the engine's redo-log device.
func (e *EngineD) WALDevice() *disk.Device { return e.walDev }
