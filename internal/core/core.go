// Package core implements the paper's subject matter: the four HTAP
// storage architectures of Figure 1, each composed from the repository's
// substrates behind one Engine interface.
//
//	A  PrimaryRowIMC   — primary row store + in-memory column store
//	                     (Oracle dual-format, SQL Server CSI, DB2 BLU)
//	B  DistRowColRep   — distributed row store + column store replica (TiDB)
//	C  DiskRowDistCol  — disk row store + distributed column store
//	                     (MySQL Heatwave)
//	D  PrimaryColDelta — primary column store + delta row store (SAP HANA)
//
// The Engine interface exposes a transactional point-access API (the OLTP
// side), an exec.Source factory honoring the architecture's analytical
// technique (the OLAP side), and control hooks for data synchronization
// and execution mode, so the benchmark harness can run identical workloads
// against every architecture and regenerate the paper's Table 1.
package core

import (
	"sync/atomic"
	"context"
	"errors"
	"fmt"
	"time"

	"htap/internal/disk"
	"htap/internal/exec"
	"htap/internal/freshness"
	"htap/internal/sched"
	"htap/internal/twopc"
	"htap/internal/txn"
	"htap/internal/types"
)

// Arch identifies a storage architecture from Figure 1.
type Arch uint8

// The four architectures.
const (
	ArchA Arch = iota + 1 // Primary Row Store + In-Memory Column Store
	ArchB                 // Distributed Row Store + Column Store Replica
	ArchC                 // Disk Row Store + Distributed Column Store
	ArchD                 // Primary Column Store + Delta Row Store
)

// String implements fmt.Stringer.
func (a Arch) String() string {
	switch a {
	case ArchA:
		return "A/PrimaryRow+InMemCol"
	case ArchB:
		return "B/DistRow+ColReplica"
	case ArchC:
		return "C/DiskRow+DistCol"
	case ArchD:
		return "D/PrimaryCol+DeltaRow"
	default:
		return fmt.Sprintf("Arch(%d)", uint8(a))
	}
}

// ErrNotFound is returned by point reads of absent keys.
var ErrNotFound = errors.New("core: key not found")

// ErrNoTable reports an unregistered table.
var ErrNoTable = errors.New("core: no such table")

// Tx is one OLTP transaction against an engine.
type Tx interface {
	Get(table string, key int64) (types.Row, error)
	Insert(table string, row types.Row) error
	Update(table string, row types.Row) error
	Delete(table string, key int64) error
	Commit() error
	Abort()
}

// Stats aggregates engine counters for the experiment harness.
type Stats struct {
	Commits   int64
	Aborts    int64
	Conflicts int64
	Merges    int64
	Rebuilds  int64
	ColBytes  int
	DeltaRows int
	Disk      disk.Stats
}

// Beginner is the transactional entry point shared by local engines and
// the network client's remote engine: anything that can start an OLTP
// transaction under a context. Exec and the CH driver depend only on this.
type Beginner interface {
	// Begin starts an OLTP transaction. The context is bound to the
	// transaction: a cancelled or expired context fails Commit, so a
	// disconnected network session cannot publish writes after its client
	// has given up.
	Begin(ctx context.Context) Tx
}

// Engine is one storage architecture.
type Engine interface {
	Name() string
	Arch() Arch
	Tables() []*types.Schema
	Schema(table string) *types.Schema

	// Begin starts an OLTP transaction bound to ctx (see Beginner).
	Begin(ctx context.Context) Tx
	// Load bulk-loads a row outside transactions (benchmark setup). The
	// row lands in both stores so experiments start synchronized.
	Load(table string, row types.Row) error

	// Source returns the analytical access path for a table under the
	// engine's AP technique, at the engine's current snapshot and mode.
	// The scan polls ctx between batches: cancelling it (client
	// disconnect, deadline) abandons the remaining segments mid-scan.
	Source(ctx context.Context, table string, cols []string, pred *exec.ScanPred) exec.Source
	// Query is shorthand for exec.From(Source(...)).
	Query(ctx context.Context, table string, cols []string, pred *exec.ScanPred) *exec.Plan

	// Sync forces one data-synchronization round (delta merge / rebuild).
	Sync()
	// SetMode switches analytical reads between Shared (scan the live
	// delta: fresh, interfering) and Isolated (merged data only: stale,
	// isolated).
	SetMode(m sched.Mode)
	// Freshness reports the OLTP-vs-OLAP watermark gap.
	Freshness() freshness.Snapshot
	Stats() Stats
	Close()
}

// Indexer is implemented by engines whose primary row store supports
// secondary indexes (architectures A and C). Lookups return candidate
// primary keys whose current image matches; transactional callers re-read
// each key at their snapshot.
type Indexer interface {
	// AddIndex registers a named index derived from the row image.
	AddIndex(table, name string, key func(types.Row) int64) error
	// IndexLookup returns the primary keys indexed under k.
	IndexLookup(table, name string, k int64) []int64
}

// Exec runs fn in a transaction with bounded conflict retries, the loop
// every benchmark driver needs. The retry loop stops as soon as ctx is
// cancelled, returning the context error.
func Exec(ctx context.Context, e Beginner, fn func(Tx) error) error {
	var last error
	for attempt := 0; attempt < 64; attempt++ {
		if err := ctx.Err(); err != nil {
			return err
		}
		tx := e.Begin(ctx)
		if err := fn(tx); err != nil {
			tx.Abort()
			if retryable(err) {
				last = err
				backoff(attempt)
				continue
			}
			return err
		}
		if err := tx.Commit(); err != nil {
			if retryable(err) {
				last = err
				backoff(attempt)
				continue
			}
			return err
		}
		return nil
	}
	return fmt.Errorf("core: transaction gave up after retries: %w", last)
}

// IsRetryable reports whether err is a transient failure a caller should
// retry (conflicts, stale reads, self-declared retryable errors). The
// network server uses it to map engine errors onto wire error codes.
func IsRetryable(err error) bool { return retryable(err) }

func retryable(err error) bool {
	// Errors may declare themselves retryable — the wire protocol's typed
	// errors (conflict, overloaded) cross the network this way without core
	// depending on the wire package.
	var r interface{ Retryable() bool }
	if errors.As(err, &r) {
		return r.Retryable()
	}
	return errors.Is(err, errRetry) ||
		errors.Is(err, txn.ErrConflict) ||
		errors.Is(err, txn.ErrReadStale) ||
		errors.Is(err, twopc.ErrConflict)
}

// errRetry is wrapped around engine-internal transient failures.
var errRetry = errors.New("core: transient conflict")

// ctxOrBackground guards engine entry points against nil contexts.
func ctxOrBackground(ctx context.Context) context.Context {
	if ctx == nil {
		return context.Background()
	}
	return ctx
}

func backoff(attempt int) {
	if attempt > 2 {
		d := time.Duration(attempt) * 50 * time.Microsecond
		if d > 2*time.Millisecond {
			d = 2 * time.Millisecond
		}
		time.Sleep(d)
	}
}

// tableSet is the shared name->schema registry.
type tableSet struct {
	schemas []*types.Schema
	byName  map[string]int
}

func newTableSet(schemas []*types.Schema) *tableSet {
	ts := &tableSet{schemas: schemas, byName: make(map[string]int, len(schemas))}
	for i, s := range schemas {
		ts.byName[s.Name] = i
	}
	return ts
}

func (ts *tableSet) id(name string) (uint32, error) {
	i, ok := ts.byName[name]
	if !ok {
		return 0, fmt.Errorf("%w: %s", ErrNoTable, name)
	}
	return uint32(i), nil
}

func (ts *tableSet) mustID(name string) uint32 {
	id, err := ts.id(name)
	if err != nil {
		panic(err)
	}
	return id
}

func (ts *tableSet) schema(name string) *types.Schema {
	if i, ok := ts.byName[name]; ok {
		return ts.schemas[i]
	}
	return nil
}

// Paralleler is implemented by engines whose analytical queries run with a
// configurable degree of parallelism. Zero (the default) means
// exec.DefaultParallelism, i.e. GOMAXPROCS at query time.
type Paralleler interface {
	SetParallelism(n int)
}

// resolveDOP turns a stored parallelism setting into an effective degree.
func resolveDOP(p *atomic.Int32) int {
	if v := p.Load(); v > 0 {
		return int(v)
	}
	return exec.DefaultParallelism()
}
