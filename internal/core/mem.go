// Memory-governor attachment shared by all four engine architectures.
//
// Engines embed memGoverned; a process that wants bounded-memory analytics
// attaches one exec.Governor per node (core.MemGoverned) and every Query
// plan built afterwards carries a fresh per-query accountant. Detaching
// (SetMemGovernor(nil)) returns the engine to ungoverned execution —
// in-flight queries keep the accountant they started with.
package core

import (
	"context"
	"sync/atomic"

	"htap/internal/exec"
)

// MemGoverned is implemented by engines that can run analytical queries
// under an exec.Governor memory budget.
type MemGoverned interface {
	// SetMemGovernor attaches (or, with nil, detaches) the node-level
	// memory governor used by subsequent Query plans.
	SetMemGovernor(g *exec.Governor)
	// MemGovernor returns the currently attached governor, nil if none.
	MemGovernor() *exec.Governor
}

// memGoverned holds an engine's attached governor. The zero value is
// ready to use (no governor: queries run ungoverned).
type memGoverned struct {
	gov atomic.Pointer[exec.Governor]
}

// SetMemGovernor implements MemGoverned.
func (m *memGoverned) SetMemGovernor(g *exec.Governor) { m.gov.Store(g) }

// MemGovernor implements MemGoverned.
func (m *memGoverned) MemGovernor() *exec.Governor { return m.gov.Load() }

// govern binds ctx to p and, when a governor is attached, starts a query
// accountant on the plan root. Engines call it from Query so the plan's
// downstream operators (joins, aggregations, sorts) charge the budget and
// spill instead of growing unbounded.
//
// arch is the engine's architecture label; when ctx carries a query
// profile (EXPLAIN ANALYZE), the label lands in the profile header so a
// slow-log entry or remote profile names the architecture that ran it.
func (m *memGoverned) govern(ctx context.Context, arch string, p *exec.Plan) *exec.Plan {
	if prof := exec.ProfileFrom(ctx); prof != nil {
		prof.SetArch(arch)
	}
	p = p.Ctx(ctx)
	if g := m.gov.Load(); g != nil {
		p = p.WithMem(g.StartQuery())
	}
	return p
}
