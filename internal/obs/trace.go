package obs

import (
	"context"
	"sync"
	"sync/atomic"
	"time"
)

// Attr is one span attribute. Int carries numeric values; Str carries the
// rest (exactly one is meaningful, selected by IsInt).
type Attr struct {
	Key   string
	Str   string
	Int   int64
	IsInt bool
}

// SpanData is one finished span as retained by the tracer.
type SpanData struct {
	Trace  uint64 // trace the span belongs to; shared across processes
	ID     uint64
	Parent uint64 // 0 for roots
	Name   string
	Start  time.Time
	Dur    time.Duration
	Attrs  []Attr
}

// Span and trace IDs come from a splitmix64 sequence seeded with the
// process start time, so IDs minted by different processes are
// collision-resistant — the property cross-process parent links (a server
// span whose Parent is a client span ID) depend on. A per-process counter
// alone would collide on the very first span of every process.
var idState atomic.Uint64

func init() {
	idState.Store(uint64(time.Now().UnixNano()))
}

func newID() uint64 {
	x := idState.Add(0x9E3779B97F4A7C15)
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	if x == 0 {
		x = 1 // 0 means "absent" in SpanData and on the wire
	}
	return x
}

// Tracer retains finished spans in a fixed-capacity ring: starting and
// ending spans on a hot path can never grow tracer memory beyond the ring,
// the oldest spans are simply overwritten.
type Tracer struct {
	mu    sync.Mutex
	ring  []SpanData
	next  int
	total uint64 // spans ever finished (wraps are total - len(ring))
}

// NewTracer returns a tracer retaining the last capacity finished spans.
func NewTracer(capacity int) *Tracer {
	if capacity <= 0 {
		capacity = 1024
	}
	return &Tracer{ring: make([]SpanData, 0, capacity)}
}

// Span is one in-flight span. End it exactly once; Child spans link to it by
// ID and may outlive it.
type Span struct {
	tr     *Tracer
	trace  uint64
	id     uint64
	parent uint64
	name   string
	start  time.Time
	attrs  []Attr
}

// Start opens a root span, beginning a fresh trace.
func (t *Tracer) Start(name string) *Span {
	return &Span{tr: t, trace: newID(), id: newID(), name: name, start: time.Now()}
}

// StartRemote opens a span continuing a trace that originated in another
// process: the span joins traceID and is parented to parentSpanID (the
// caller's span on the far side of the wire). A zero traceID — an old peer
// that sent no trace context — degrades to Start.
func (t *Tracer) StartRemote(name string, traceID, parentSpanID uint64) *Span {
	if traceID == 0 {
		return t.Start(name)
	}
	return &Span{tr: t, trace: traceID, id: newID(), parent: parentSpanID, name: name, start: time.Now()}
}

// Child opens a span parented to s, in s's trace.
func (s *Span) Child(name string) *Span {
	return &Span{tr: s.tr, trace: s.trace, id: newID(), parent: s.id, name: name, start: time.Now()}
}

// TraceID returns the span's trace ID — the value to propagate across
// process boundaries.
func (s *Span) TraceID() uint64 { return s.trace }

// SpanID returns the span's own ID — the parent for remote continuations.
func (s *Span) SpanID() uint64 { return s.id }

// Attr attaches a string attribute and returns s for chaining.
func (s *Span) Attr(key, val string) *Span {
	s.attrs = append(s.attrs, Attr{Key: key, Str: val})
	return s
}

// AttrInt attaches an integer attribute and returns s for chaining.
func (s *Span) AttrInt(key string, val int64) *Span {
	s.attrs = append(s.attrs, Attr{Key: key, Int: val, IsInt: true})
	return s
}

// End finishes the span and retains it in the tracer's ring.
func (s *Span) End() {
	d := SpanData{
		Trace:  s.trace,
		ID:     s.id,
		Parent: s.parent,
		Name:   s.name,
		Start:  s.start,
		Dur:    time.Since(s.start),
		Attrs:  s.attrs,
	}
	t := s.tr
	t.mu.Lock()
	if len(t.ring) < cap(t.ring) {
		t.ring = append(t.ring, d)
	} else {
		t.ring[t.next] = d
		t.next = (t.next + 1) % cap(t.ring)
	}
	t.total++
	t.mu.Unlock()
}

// Spans returns the retained spans, oldest first.
func (t *Tracer) Spans() []SpanData {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]SpanData, 0, len(t.ring))
	if len(t.ring) < cap(t.ring) {
		out = append(out, t.ring...)
		return out
	}
	out = append(out, t.ring[t.next:]...)
	out = append(out, t.ring[:t.next]...)
	return out
}

// Total returns how many spans have ever finished (retained or overwritten).
func (t *Tracer) Total() uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.total
}

// --- context propagation ---

type spanCtxKey struct{}

// ContextWithSpan returns a context carrying s; code deeper in the call
// tree (engine execution, admission control) attaches child spans to it.
func ContextWithSpan(ctx context.Context, s *Span) context.Context {
	return context.WithValue(ctx, spanCtxKey{}, s)
}

// SpanFromContext returns the span carried by ctx, nil if none (or nil
// ctx). Callers must nil-check; a nil span has no safe methods.
func SpanFromContext(ctx context.Context) *Span {
	if ctx == nil {
		return nil
	}
	s, _ := ctx.Value(spanCtxKey{}).(*Span)
	return s
}
