package obs

import (
	"sync"
	"sync/atomic"
	"time"
)

// Attr is one span attribute. Int carries numeric values; Str carries the
// rest (exactly one is meaningful, selected by IsInt).
type Attr struct {
	Key   string
	Str   string
	Int   int64
	IsInt bool
}

// SpanData is one finished span as retained by the tracer.
type SpanData struct {
	ID     uint64
	Parent uint64 // 0 for roots
	Name   string
	Start  time.Time
	Dur    time.Duration
	Attrs  []Attr
}

// Tracer retains finished spans in a fixed-capacity ring: starting and
// ending spans on a hot path can never grow tracer memory beyond the ring,
// the oldest spans are simply overwritten.
type Tracer struct {
	ids atomic.Uint64

	mu    sync.Mutex
	ring  []SpanData
	next  int
	total uint64 // spans ever finished (wraps are total - len(ring))
}

// NewTracer returns a tracer retaining the last capacity finished spans.
func NewTracer(capacity int) *Tracer {
	if capacity <= 0 {
		capacity = 1024
	}
	return &Tracer{ring: make([]SpanData, 0, capacity)}
}

// Span is one in-flight span. End it exactly once; Child spans link to it by
// ID and may outlive it.
type Span struct {
	tr     *Tracer
	id     uint64
	parent uint64
	name   string
	start  time.Time
	attrs  []Attr
}

// Start opens a root span.
func (t *Tracer) Start(name string) *Span {
	return &Span{tr: t, id: t.ids.Add(1), name: name, start: time.Now()}
}

// Child opens a span parented to s.
func (s *Span) Child(name string) *Span {
	return &Span{tr: s.tr, id: s.tr.ids.Add(1), parent: s.id, name: name, start: time.Now()}
}

// Attr attaches a string attribute and returns s for chaining.
func (s *Span) Attr(key, val string) *Span {
	s.attrs = append(s.attrs, Attr{Key: key, Str: val})
	return s
}

// AttrInt attaches an integer attribute and returns s for chaining.
func (s *Span) AttrInt(key string, val int64) *Span {
	s.attrs = append(s.attrs, Attr{Key: key, Int: val, IsInt: true})
	return s
}

// End finishes the span and retains it in the tracer's ring.
func (s *Span) End() {
	d := SpanData{
		ID:     s.id,
		Parent: s.parent,
		Name:   s.name,
		Start:  s.start,
		Dur:    time.Since(s.start),
		Attrs:  s.attrs,
	}
	t := s.tr
	t.mu.Lock()
	if len(t.ring) < cap(t.ring) {
		t.ring = append(t.ring, d)
	} else {
		t.ring[t.next] = d
		t.next = (t.next + 1) % cap(t.ring)
	}
	t.total++
	t.mu.Unlock()
}

// Spans returns the retained spans, oldest first.
func (t *Tracer) Spans() []SpanData {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]SpanData, 0, len(t.ring))
	if len(t.ring) < cap(t.ring) {
		out = append(out, t.ring...)
		return out
	}
	out = append(out, t.ring[t.next:]...)
	out = append(out, t.ring[:t.next]...)
	return out
}

// Total returns how many spans have ever finished (retained or overwritten).
func (t *Tracer) Total() uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.total
}
