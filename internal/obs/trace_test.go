package obs

import (
	"fmt"
	"sync"
	"testing"
)

// TestSpanParentChildIntegrity builds a three-level tree and verifies every
// retained child's parent is present, IDs are unique, and child intervals
// nest inside their parents.
func TestSpanParentChildIntegrity(t *testing.T) {
	tr := NewTracer(256)
	root := tr.Start("sync").Attr("arch", "A")
	for i := 0; i < 3; i++ {
		child := root.Child("merge").AttrInt("table", int64(i))
		for j := 0; j < 2; j++ {
			leaf := child.Child("segment")
			leaf.End()
		}
		child.End()
	}
	root.End()

	spans := tr.Spans()
	if len(spans) != 10 {
		t.Fatalf("retained %d spans, want 10", len(spans))
	}
	byID := make(map[uint64]SpanData, len(spans))
	for _, s := range spans {
		if _, dup := byID[s.ID]; dup {
			t.Fatalf("duplicate span id %d", s.ID)
		}
		byID[s.ID] = s
	}
	roots := 0
	for _, s := range spans {
		if s.Parent == 0 {
			roots++
			continue
		}
		p, ok := byID[s.Parent]
		if !ok {
			t.Fatalf("span %d (%s) has unknown parent %d", s.ID, s.Name, s.Parent)
		}
		if s.Start.Before(p.Start) {
			t.Errorf("child %s started before parent %s", s.Name, p.Name)
		}
		if end, pend := s.Start.Add(s.Dur), p.Start.Add(p.Dur); end.After(pend) {
			t.Errorf("child %s ended after parent %s", s.Name, p.Name)
		}
	}
	if roots != 1 {
		t.Fatalf("found %d roots, want 1", roots)
	}
	// Attributes survived.
	rootData := byID[spans[len(spans)-1].ID] // root ends last
	if len(rootData.Attrs) != 1 || rootData.Attrs[0].Str != "A" {
		t.Fatalf("root attrs = %+v", rootData.Attrs)
	}
}

// TestTracerRingBounds floods the tracer past capacity and checks retention
// stays bounded with the newest spans kept in order.
func TestTracerRingBounds(t *testing.T) {
	tr := NewTracer(8)
	for i := 0; i < 100; i++ {
		tr.Start(fmt.Sprintf("s%d", i)).End()
	}
	spans := tr.Spans()
	if len(spans) != 8 {
		t.Fatalf("retained %d spans, want 8", len(spans))
	}
	for i, s := range spans {
		if want := fmt.Sprintf("s%d", 92+i); s.Name != want {
			t.Fatalf("spans[%d] = %s, want %s (oldest-first order)", i, s.Name, want)
		}
	}
	if tr.Total() != 100 {
		t.Fatalf("total = %d, want 100", tr.Total())
	}
}

// TestTracerConcurrent exercises concurrent span creation under -race.
func TestTracerConcurrent(t *testing.T) {
	tr := NewTracer(64)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				s := tr.Start("op")
				s.Child("inner").End()
				s.End()
			}
		}()
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 100; i++ {
			tr.Spans()
		}
	}()
	wg.Wait()
	<-done
	if tr.Total() != 8*500*2 {
		t.Fatalf("total = %d, want %d", tr.Total(), 8*500*2)
	}
}
