package obs

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"time"
)

// exactQuantile computes the quantile the histogram is approximating: the
// ceil(p*n)-th smallest sample.
func exactQuantile(sorted []int64, p float64) int64 {
	n := len(sorted)
	rank := int(math.Ceil(p * float64(n)))
	if rank < 1 {
		rank = 1
	}
	if rank > n {
		rank = n
	}
	return sorted[rank-1]
}

// TestQuantileAgainstExactSamples drives several distributions through the
// histogram and checks every estimated quantile against the exact sorted
// sample, within the bucket quantization bound (1/16 relative, since each
// octave has 16 sub-buckets) plus half a bucket of slack for midpointing.
func TestQuantileAgainstExactSamples(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	distributions := map[string]func() int64{
		"uniform":     func() int64 { return rng.Int63n(1_000_000) },
		"exponential": func() int64 { return int64(rng.ExpFloat64() * 50_000) },
		"lognormal":   func() int64 { return int64(math.Exp(rng.NormFloat64()*2 + 8)) },
		"small-ints":  func() int64 { return rng.Int63n(20) },
		"constant":    func() int64 { return 12345 },
	}
	quantiles := []float64{0.01, 0.25, 0.5, 0.9, 0.95, 0.99, 1.0}
	for name, gen := range distributions {
		h := NewHistogram()
		samples := make([]int64, 0, 20000)
		for i := 0; i < 20000; i++ {
			v := gen()
			samples = append(samples, v)
			h.Observe(v)
		}
		sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
		for _, p := range quantiles {
			want := float64(exactQuantile(samples, p))
			got := h.Quantile(p)
			// Bucket width is at most value/16; the midpoint is within half
			// a width of any sample in the bucket.
			tol := want/16 + 1
			if math.Abs(got-want) > tol {
				t.Errorf("%s: q%.2f = %.1f, want %.1f ± %.1f", name, p, got, want, tol)
			}
		}
		if h.Count() != 20000 {
			t.Errorf("%s: count = %d, want 20000", name, h.Count())
		}
	}
}

func TestHistogramEdgeCases(t *testing.T) {
	h := NewHistogram()
	if got := h.Quantile(0.5); got != 0 {
		t.Fatalf("empty histogram quantile = %v, want 0", got)
	}
	h.Observe(-5) // clamps to 0
	h.Observe(0)
	if h.Count() != 2 || h.Sum() != 0 {
		t.Fatalf("count=%d sum=%d after clamped observes", h.Count(), h.Sum())
	}
	if got := h.Quantile(1.0); got != 0 {
		t.Fatalf("all-zero quantile = %v, want 0", got)
	}
	h.Observe(math.MaxInt64) // top octave must not panic or misindex
	if got := h.Max(); got != math.MaxInt64 {
		t.Fatalf("max = %d", got)
	}
	if q := h.Quantile(1.0); q <= 0 {
		t.Fatalf("q1.0 after MaxInt64 observe = %v", q)
	}
}

// TestBucketIndexMonotonic verifies the bucket mapping is monotone and that
// bounds invert the index correctly.
func TestBucketIndexMonotonic(t *testing.T) {
	prev := -1
	for _, v := range []uint64{0, 1, 2, 15, 16, 17, 31, 32, 63, 64, 100, 1 << 20, 1<<20 + 1, 1 << 40, math.MaxInt64} {
		idx := bucketIndex(v)
		if idx < prev {
			t.Fatalf("bucketIndex(%d) = %d < previous %d", v, idx, prev)
		}
		prev = idx
		low, high := bucketBounds(idx)
		if v < low || v > high {
			t.Fatalf("value %d outside its bucket [%d, %d]", v, low, high)
		}
	}
	// Exhaustive over a small range: every value lands inside its bounds.
	for v := uint64(0); v < 4096; v++ {
		low, high := bucketBounds(bucketIndex(v))
		if v < low || v > high {
			t.Fatalf("value %d outside bucket [%d, %d]", v, low, high)
		}
	}
}

func TestObserveDuration(t *testing.T) {
	h := NewHistogram()
	h.ObserveDuration(3 * time.Millisecond)
	if h.Sum() != int64(3*time.Millisecond) {
		t.Fatalf("sum = %d", h.Sum())
	}
	if got := h.Mean(); got != float64(3*time.Millisecond) {
		t.Fatalf("mean = %v", got)
	}
}
