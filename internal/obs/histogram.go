package obs

import (
	"math"
	"math/bits"
	"sync/atomic"
	"time"
)

// Histogram bucket layout: values 0..15 get exact buckets; beyond that each
// power-of-two octave is split into 16 linear sub-buckets (4 mantissa bits),
// HdrHistogram-style. The relative quantization error is therefore bounded
// by 1/16 of the value (~3% at the bucket midpoint), which is ample for
// latency percentiles, at a fixed cost of 976 buckets (~8 KB) per series.
const (
	histExact   = 16 // exact buckets for 0..15
	histSub     = 16 // sub-buckets per octave
	histOctaves = 60 // bit lengths 5..64
	histBuckets = histExact + histOctaves*histSub
)

// bucketIndex maps a non-negative value to its bucket.
func bucketIndex(v uint64) int {
	if v < histExact {
		return int(v)
	}
	l := bits.Len64(v)          // >= 5 here
	mant := int(v >> uint(l-5)) // top 5 bits: [16, 31]
	return histExact + (l-5)*histSub + (mant - histExact)
}

// bucketBounds returns the [low, high] value range of a bucket.
func bucketBounds(idx int) (low, high uint64) {
	if idx < histExact {
		return uint64(idx), uint64(idx)
	}
	oct := uint((idx - histExact) / histSub)
	sub := uint64((idx - histExact) % histSub)
	low = (histExact + sub) << oct
	return low, low + (uint64(1)<<oct - 1)
}

// bucketMid returns the midpoint used as the bucket's representative value.
func bucketMid(idx int) float64 {
	low, high := bucketBounds(idx)
	return (float64(low) + float64(high)) / 2
}

// Histogram is a concurrent log-bucketed histogram of non-negative int64
// values (latencies in nanoseconds, batch sizes, byte counts). Observing is
// lock-free: one bucket Add plus count/sum Adds. Readers see a racy but
// self-consistent-enough view; quantiles are estimates bounded by bucket
// width.
type Histogram struct {
	buckets [histBuckets]atomic.Uint64
	count   atomic.Uint64
	sum     atomic.Int64
	max     atomic.Int64
}

// NewHistogram returns an empty standalone histogram. Registry.Histogram is
// the registered equivalent.
func NewHistogram() *Histogram { return &Histogram{} }

// Observe records v (negative values clamp to 0).
func (h *Histogram) Observe(v int64) {
	if v < 0 {
		v = 0
	}
	h.buckets[bucketIndex(uint64(v))].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
	for {
		m := h.max.Load()
		if v <= m || h.max.CompareAndSwap(m, v) {
			return
		}
	}
}

// ObserveDuration records d in nanoseconds.
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(int64(d)) }

// Since records the time elapsed from start, and is the idiomatic hot-path
// call: defer-free, one clock read.
func (h *Histogram) Since(start time.Time) { h.ObserveDuration(time.Since(start)) }

// Count returns how many values were observed.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of observed values.
func (h *Histogram) Sum() int64 { return h.sum.Load() }

// Max returns the largest observed value (0 when empty).
func (h *Histogram) Max() int64 { return h.max.Load() }

// Quantile estimates the p-quantile (p in [0,1]) of the observed values.
func (h *Histogram) Quantile(p float64) float64 {
	return h.Quantiles(p)[0]
}

// Quantiles estimates several quantiles in one pass over the buckets.
func (h *Histogram) Quantiles(ps ...float64) []float64 {
	out := make([]float64, len(ps))
	var counts [histBuckets]uint64
	var total uint64
	for i := range h.buckets {
		counts[i] = h.buckets[i].Load()
		total += counts[i]
	}
	if total == 0 {
		return out
	}
	for pi, p := range ps {
		if math.IsNaN(p) {
			out[pi] = math.NaN()
			continue
		}
		target := uint64(math.Ceil(p * float64(total)))
		if target < 1 {
			target = 1
		}
		if target > total {
			target = total
		}
		var cum uint64
		for i := range counts {
			cum += counts[i]
			if cum >= target {
				out[pi] = bucketMid(i)
				break
			}
		}
	}
	return out
}

// Mean returns the arithmetic mean of observed values (0 when empty).
func (h *Histogram) Mean() float64 {
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	return float64(h.sum.Load()) / float64(n)
}
