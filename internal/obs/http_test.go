package obs

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"
)

// The endpoint table: every path obs.Serve exposes for scraping, checked
// for status, content type, and a body-shape validator. The server runs
// against throwaway registry/tracer instances except /slowlog, which is
// backed by the process-wide DefaultSlowLog by design.
func TestServeEndpoints(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("htap_test_requests_total", L("class", "olap")).Inc()
	reg.Gauge("htap_test_depth", nil).SetInt(3)
	reg.Histogram("htap_test_wait_ns", nil).Observe(1234)

	tr := NewTracer(16)
	root := tr.Start("client.query").AttrInt("q", 7)
	child := root.Child("server.query").Attr("table", "orders")
	child.End()
	root.End()

	DefaultSlowLog.Observe(SlowQuery{
		Class: "q7", Start: time.Now(), Dur: 5 * time.Millisecond,
		Rows: 42, TraceID: root.TraceID(), Profile: "profile: arch=A\nplan 1:\nscan(orders) [rows=42]",
	})

	srv, err := Serve("127.0.0.1:0", reg, tr)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	cases := []struct {
		path        string
		contentType string
		check       func(t *testing.T, body []byte)
	}{
		{
			path:        "/metrics",
			contentType: "text/plain; version=0.0.4; charset=utf-8",
			check: func(t *testing.T, body []byte) {
				n, err := ValidateExposition(body)
				if err != nil {
					t.Fatalf("exposition invalid: %v", err)
				}
				if n == 0 {
					t.Fatal("exposition has no samples")
				}
				for _, want := range []string{"htap_test_requests_total", "htap_test_depth", "htap_test_wait_ns"} {
					if !strings.Contains(string(body), want) {
						t.Fatalf("exposition lacks %s:\n%s", want, body)
					}
				}
			},
		},
		{
			path:        "/spans",
			contentType: "application/json; charset=utf-8",
			check: func(t *testing.T, body []byte) {
				var spans []struct {
					Trace  uint64                 `json:"trace"`
					ID     uint64                 `json:"id"`
					Parent uint64                 `json:"parent"`
					Name   string                 `json:"name"`
					Attrs  map[string]interface{} `json:"attrs"`
				}
				if err := json.Unmarshal(body, &spans); err != nil {
					t.Fatalf("spans not JSON: %v\n%s", err, body)
				}
				if len(spans) != 2 {
					t.Fatalf("want 2 spans, got %d", len(spans))
				}
				// Oldest first: the child ended before the root.
				if spans[0].Name != "server.query" || spans[1].Name != "client.query" {
					t.Fatalf("unexpected span order: %q, %q", spans[0].Name, spans[1].Name)
				}
				if spans[0].Trace == 0 || spans[0].Trace != spans[1].Trace {
					t.Fatalf("child/root trace mismatch: %d vs %d", spans[0].Trace, spans[1].Trace)
				}
				if spans[0].Parent != spans[1].ID {
					t.Fatalf("child parent %d != root id %d", spans[0].Parent, spans[1].ID)
				}
				// Attrs are a key->value map, ints as numbers, strings as strings.
				if got := spans[0].Attrs["table"]; got != "orders" {
					t.Fatalf("child attr table = %v", got)
				}
				if got := spans[1].Attrs["q"]; got != float64(7) {
					t.Fatalf("root attr q = %v (%T)", got, got)
				}
			},
		},
		{
			path:        "/slowlog",
			contentType: "application/json; charset=utf-8",
			check: func(t *testing.T, body []byte) {
				var entries []SlowQuery
				if err := json.Unmarshal(body, &entries); err != nil {
					t.Fatalf("slowlog not JSON: %v\n%s", err, body)
				}
				for _, e := range entries {
					if e.Class == "q7" && e.Rows == 42 && strings.Contains(e.Profile, "[rows=42]") {
						return
					}
				}
				t.Fatalf("slowlog lacks the observed q7 entry:\n%s", body)
			},
		},
	}
	for _, tc := range cases {
		t.Run(tc.path, func(t *testing.T) {
			resp, err := http.Get("http://" + srv.Addr() + tc.path)
			if err != nil {
				t.Fatal(err)
			}
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("status %d", resp.StatusCode)
			}
			if got := resp.Header.Get("Content-Type"); got != tc.contentType {
				t.Fatalf("content type %q, want %q", got, tc.contentType)
			}
			body, err := io.ReadAll(resp.Body)
			if err != nil {
				t.Fatal(err)
			}
			tc.check(t, body)
		})
	}
}

// The slow log keeps exactly the N slowest per class, displacing the
// fastest retained entry when a slower one arrives.
func TestSlowLogRetention(t *testing.T) {
	l := NewSlowLog(3)
	for i := 1; i <= 10; i++ {
		l.Observe(SlowQuery{Class: "q1", Dur: time.Duration(i) * time.Millisecond})
	}
	l.Observe(SlowQuery{Class: "q2", Dur: time.Hour})
	s := l.Snapshot()
	if len(s) != 4 {
		t.Fatalf("want 4 entries (3 q1 + 1 q2), got %d", len(s))
	}
	if s[0].Class != "q2" {
		t.Fatalf("slowest-first order broken: %+v", s[0])
	}
	// q1 retains 10, 9, 8 ms.
	want := []time.Duration{10 * time.Millisecond, 9 * time.Millisecond, 8 * time.Millisecond}
	for i, w := range want {
		if s[i+1].Dur != w {
			t.Fatalf("q1 entry %d: dur %v, want %v", i, s[i+1].Dur, w)
		}
	}
	// A too-fast query is not retained.
	l.Observe(SlowQuery{Class: "q1", Dur: time.Millisecond})
	if got := len(l.Snapshot()); got != 4 {
		t.Fatalf("fast query displaced an entry: %d", got)
	}
	// Shrinking retention trims the slowest-keeping tail.
	l.SetPerClass(1)
	s = l.Snapshot()
	if len(s) != 2 {
		t.Fatalf("want 2 after shrink, got %d", len(s))
	}
	if w, ok := l.Worst(); !ok || w.Class != "q2" {
		t.Fatalf("Worst = %+v, %v", w, ok)
	}
}
