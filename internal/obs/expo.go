package obs

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// quantilesExposed are the summary quantiles written for every histogram.
var quantilesExposed = []float64{0.5, 0.95, 0.99}

// WritePrometheus writes the registry in the Prometheus text exposition
// format. Histograms are written as summaries: {quantile="..."} series plus
// _sum and _count, which keeps a scrape compact and the paper's p50/p95/p99
// cells directly readable.
func (r *Registry) WritePrometheus(w io.Writer) error {
	bw := bufio.NewWriter(w)
	entries := r.snapshot()
	lastName := ""
	for _, e := range entries {
		if e.name != lastName {
			typ := "gauge"
			switch e.kind {
			case KindCounter:
				typ = "counter"
			case KindHistogram:
				typ = "summary"
			}
			fmt.Fprintf(bw, "# TYPE %s %s\n", e.name, typ)
			lastName = e.name
		}
		switch {
		case e.fn != nil:
			writeSample(bw, e.name, e.labels, e.fn())
		case e.kind == KindCounter:
			writeSample(bw, e.name, e.labels, float64(e.c.Value()))
		case e.kind == KindGauge:
			writeSample(bw, e.name, e.labels, e.g.Value())
		case e.kind == KindHistogram:
			qs := e.h.Quantiles(quantilesExposed...)
			for i, q := range quantilesExposed {
				ql := fmt.Sprintf("quantile=%q", strconv.FormatFloat(q, 'g', -1, 64))
				labels := ql
				if e.labels != "" {
					labels = e.labels + "," + ql
				}
				writeSample(bw, e.name, labels, qs[i])
			}
			writeSample(bw, e.name+"_sum", e.labels, float64(e.h.Sum()))
			writeSample(bw, e.name+"_count", e.labels, float64(e.h.Count()))
		}
	}
	return bw.Flush()
}

func writeSample(w io.Writer, name, labels string, v float64) {
	if labels == "" {
		fmt.Fprintf(w, "%s %s\n", name, formatValue(v))
		return
	}
	fmt.Fprintf(w, "%s{%s} %s\n", name, labels, formatValue(v))
}

func formatValue(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// ValidateExposition checks that b parses as Prometheus text format and
// returns the number of samples. The CI smoke test and cmd/repro's
// -metrics-selfcheck use it to fail on an empty or malformed scrape.
func ValidateExposition(b []byte) (samples int, err error) {
	lines := strings.Split(string(b), "\n")
	for i, line := range lines {
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			if !strings.HasPrefix(line, "# TYPE ") && !strings.HasPrefix(line, "# HELP ") {
				return samples, fmt.Errorf("line %d: malformed comment %q", i+1, line)
			}
			continue
		}
		var name, rest string
		if open := strings.IndexByte(line, '{'); open >= 0 {
			end := strings.LastIndexByte(line, '}')
			if end < open {
				return samples, fmt.Errorf("line %d: unterminated label set in %q", i+1, line)
			}
			name, rest = line[:open], strings.TrimSpace(line[end+1:])
		} else if sp := strings.IndexByte(line, ' '); sp >= 0 {
			name, rest = line[:sp], strings.TrimSpace(line[sp+1:])
		} else {
			name = line
		}
		if !validMetricName(name) {
			return samples, fmt.Errorf("line %d: invalid metric name %q", i+1, name)
		}
		if rest == "" {
			return samples, fmt.Errorf("line %d: missing value in %q", i+1, line)
		}
		// A timestamp may follow the value; only the value is required.
		val := rest
		if sp := strings.IndexByte(rest, ' '); sp >= 0 {
			val = rest[:sp]
		}
		if _, ferr := strconv.ParseFloat(val, 64); ferr != nil {
			return samples, fmt.Errorf("line %d: bad value %q: %v", i+1, val, ferr)
		}
		samples++
	}
	if samples == 0 {
		return 0, fmt.Errorf("exposition contains no samples")
	}
	return samples, nil
}

func validMetricName(s string) bool {
	if s == "" {
		return false
	}
	for i, c := range s {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
		case c >= '0' && c <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}
