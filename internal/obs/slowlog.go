// Slow-query log: a bounded ring of the worst queries per class.
//
// Every finished query is offered to the log; each class (q1..q22 for the
// CH workload) retains only its N slowest, so memory is bounded by
// classes × N however long the process runs. Entries carry the query's
// serialized profile tree when profiling was on, and its trace ID when it
// ran under a trace — /slowlog is the pivot from "this class is slow" to
// one concrete worst-case plan and its distributed trace.
package obs

import (
	"sort"
	"sync"
	"time"
)

var (
	slowObserved = Default.Counter("htap_slowlog_observed_total", nil)
	slowEntries  = Default.Gauge("htap_slowlog_entries", nil)
)

// SlowQuery is one retained slow-query entry.
type SlowQuery struct {
	Class   string        `json:"class"`
	Start   time.Time     `json:"start"`
	Dur     time.Duration `json:"dur_ns"`
	Rows    int64         `json:"rows"`
	TraceID uint64        `json:"trace,omitempty"`
	Err     string        `json:"err,omitempty"`
	Profile string        `json:"profile,omitempty"`
}

// SlowLog retains the perClass slowest queries of each class.
type SlowLog struct {
	mu       sync.Mutex
	perClass int
	classes  map[string][]SlowQuery // sorted ascending by Dur
}

// NewSlowLog returns a log keeping the perClass worst queries per class
// (minimum 1).
func NewSlowLog(perClass int) *SlowLog {
	if perClass < 1 {
		perClass = 1
	}
	return &SlowLog{perClass: perClass, classes: map[string][]SlowQuery{}}
}

// DefaultSlowLog is the process-wide log; ch.RunQuery feeds it and
// obs.Serve exposes it at /slowlog.
var DefaultSlowLog = NewSlowLog(8)

// SetPerClass resizes the per-class retention (htapd's -slowlog flag),
// trimming existing classes that now exceed it.
func (l *SlowLog) SetPerClass(n int) {
	if n < 1 {
		n = 1
	}
	l.mu.Lock()
	l.perClass = n
	for c, q := range l.classes {
		if len(q) > n {
			l.classes[c] = append([]SlowQuery(nil), q[len(q)-n:]...)
		}
	}
	l.mu.Unlock()
	l.updateEntries()
}

// Observe offers one finished query. It is retained iff it ranks among
// the class's perClass slowest so far.
func (l *SlowLog) Observe(q SlowQuery) {
	slowObserved.Inc()
	l.mu.Lock()
	entries := l.classes[q.Class]
	i := sort.Search(len(entries), func(i int) bool { return entries[i].Dur >= q.Dur })
	if len(entries) < l.perClass {
		entries = append(entries, SlowQuery{})
		copy(entries[i+1:], entries[i:])
		entries[i] = q
	} else if i > 0 {
		// Displace the fastest retained entry.
		copy(entries[:i-1], entries[1:i])
		entries[i-1] = q
	} else {
		l.mu.Unlock()
		return
	}
	l.classes[q.Class] = entries
	l.mu.Unlock()
	l.updateEntries()
}

func (l *SlowLog) updateEntries() {
	if l != DefaultSlowLog {
		return
	}
	l.mu.Lock()
	n := 0
	for _, q := range l.classes {
		n += len(q)
	}
	l.mu.Unlock()
	slowEntries.SetInt(int64(n))
}

// Snapshot returns every retained entry, slowest first across all
// classes.
func (l *SlowLog) Snapshot() []SlowQuery {
	l.mu.Lock()
	var out []SlowQuery
	for _, q := range l.classes {
		out = append(out, q...)
	}
	l.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Dur > out[j].Dur })
	return out
}

// Worst returns the single slowest retained entry and whether the log has
// any.
func (l *SlowLog) Worst() (SlowQuery, bool) {
	s := l.Snapshot()
	if len(s) == 0 {
		return SlowQuery{}, false
	}
	return s[0], true
}
