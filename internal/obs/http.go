package obs

import (
	"context"
	"encoding/json"
	"net"
	"net/http"
	"net/http/pprof"
	"time"
)

// Server exposes a registry and tracer over HTTP:
//
//	/metrics       Prometheus text exposition
//	/spans         recent finished spans as JSON, oldest first
//	/slowlog       the retained worst queries per class, slowest first
//	/debug/pprof/  the standard Go profiling endpoints
//
// cmd/repro and cmd/chbench start one behind their -metrics flag, so the
// paper's cells can be scraped live while a benchmark runs.
type Server struct {
	ln  net.Listener
	srv *http.Server
	mux *http.ServeMux
}

// Serve starts a server on addr ("127.0.0.1:0" picks a free port). Nil reg
// and tr default to the package-level Default registry and Trace tracer.
func Serve(addr string, reg *Registry, tr *Tracer) (*Server, error) {
	if reg == nil {
		reg = Default
	}
	if tr == nil {
		tr = Trace
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = reg.WritePrometheus(w)
	})
	mux.HandleFunc("/spans", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		type jsonSpan struct {
			Trace  uint64                 `json:"trace,omitempty"`
			ID     uint64                 `json:"id"`
			Parent uint64                 `json:"parent,omitempty"`
			Name   string                 `json:"name"`
			Start  time.Time              `json:"start"`
			DurNS  int64                  `json:"dur_ns"`
			Attrs  map[string]interface{} `json:"attrs,omitempty"`
		}
		spans := tr.Spans()
		out := make([]jsonSpan, 0, len(spans))
		for _, s := range spans {
			js := jsonSpan{Trace: s.Trace, ID: s.ID, Parent: s.Parent, Name: s.Name, Start: s.Start, DurNS: int64(s.Dur)}
			if len(s.Attrs) > 0 {
				js.Attrs = make(map[string]interface{}, len(s.Attrs))
				for _, a := range s.Attrs {
					if a.IsInt {
						js.Attrs[a.Key] = a.Int
					} else {
						js.Attrs[a.Key] = a.Str
					}
				}
			}
			out = append(out, js)
		}
		_ = json.NewEncoder(w).Encode(out)
	})
	mux.HandleFunc("/slowlog", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		_ = json.NewEncoder(w).Encode(DefaultSlowLog.Snapshot())
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)

	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s := &Server{ln: ln, srv: &http.Server{Handler: mux}, mux: mux}
	go func() { _ = s.srv.Serve(ln) }()
	return s, nil
}

// Handle registers an extra handler on the server's mux — admin surfaces
// (e.g. the coordinator's /rebalance) ride the same listener as the
// metrics endpoints. ServeMux registration is safe while serving.
func (s *Server) Handle(pattern string, h http.Handler) { s.mux.Handle(pattern, h) }

// Addr returns the bound address (useful with ":0").
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close shuts the server down immediately, severing in-flight scrapes.
func (s *Server) Close() error { return s.srv.Close() }

// Shutdown stops the server gracefully: the listener closes at once but
// in-flight scrapes finish (until ctx expires). Drain paths call it last,
// after the workload listeners, so the final state of the htap_* series
// stays scrapeable while the rest of the process winds down.
func (s *Server) Shutdown(ctx context.Context) error { return s.srv.Shutdown(ctx) }
