// Package obs is the repository's observability substrate: a
// zero-dependency metrics registry, lightweight span tracing, and
// Prometheus-text exposition over HTTP.
//
// The paper's empirical artifacts — Table 1's throughput/freshness/isolation
// cells and the §2.3(2) isolation-versus-freshness practice — were computed
// post-hoc by internal/experiments; this package turns each of them into a
// live signal. Every subsystem registers metrics under one naming scheme,
// htap_<subsystem>_<metric>, against the shared Default registry, so a
// single /metrics scrape during a benchmark reads the paper's cells as they
// form: per-architecture transaction and query histograms, the freshness-lag
// gauge, WAL and device counters, merge batch sizes, scheduler shares, Raft
// traffic.
//
// Everything on the hot path is a single atomic operation: counters and
// gauges are one Add/Store, histograms are two Adds plus a bucket Add.
// Nothing allocates after metric creation, and creation is get-or-create so
// engines built repeatedly by the experiment harness share series instead of
// colliding. Spans are retained in a fixed ring (trace.go), so tracing a hot
// loop cannot grow memory without bound.
package obs

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Label is one name=value pair attached to a metric series.
type Label struct {
	Key, Value string
}

// Labels is an ordered label set.
type Labels []Label

// L builds a label set from alternating key, value strings:
// L("arch", "A", "class", "q1").
func L(kv ...string) Labels {
	if len(kv)%2 != 0 {
		panic("obs: L requires an even number of strings")
	}
	ls := make(Labels, 0, len(kv)/2)
	for i := 0; i < len(kv); i += 2 {
		ls = append(ls, Label{Key: kv[i], Value: kv[i+1]})
	}
	return ls
}

// canonical renders the label set sorted by key, for series identity and
// exposition. Empty for no labels.
func (ls Labels) canonical() string {
	if len(ls) == 0 {
		return ""
	}
	s := make(Labels, len(ls))
	copy(s, ls)
	sort.Slice(s, func(i, j int) bool { return s[i].Key < s[j].Key })
	var b strings.Builder
	for i, l := range s {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(l.Value))
		b.WriteByte('"')
	}
	return b.String()
}

func escapeLabel(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(v)
}

// Kind classifies a metric for exposition.
type Kind uint8

// Metric kinds. Histograms are exposed as Prometheus summaries
// (pre-computed quantiles) to keep scrapes compact.
const (
	KindCounter Kind = iota + 1
	KindGauge
	KindHistogram
)

// Counter is a monotonically increasing value.
type Counter struct {
	v atomic.Int64
}

// Inc adds 1.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (n must be >= 0 for the series to stay monotonic).
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a value that can go up and down.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// SetInt stores an integer value.
func (g *Gauge) SetInt(v int64) { g.Set(float64(v)) }

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// FuncHandle identifies one registered callback metric, so the owner can
// unregister exactly what it registered (a later registration under the same
// series silently takes ownership; see RegisterFunc).
type FuncHandle struct {
	key string
}

// entry is one registered series.
type entry struct {
	name   string
	labels string // canonical label string
	kind   Kind
	c      *Counter
	g      *Gauge
	h      *Histogram
	fn     func() float64
	owner  *FuncHandle // for func metrics: the current registrant
}

// Registry holds metric series. The zero value is not usable; use
// NewRegistry or the package-level Default.
type Registry struct {
	mu      sync.RWMutex
	entries map[string]*entry
}

// Default is the shared registry every subsystem registers into.
var Default = NewRegistry()

// Trace is the shared span tracer (trace.go).
var Trace = NewTracer(4096)

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{entries: make(map[string]*entry)}
}

func seriesKey(name, labels string) string { return name + "\x00" + labels }

// lookup returns the series, creating it with mk when absent. It panics on a
// kind mismatch: two subsystems claiming one series as different kinds is a
// programming error, not a runtime condition.
func (r *Registry) lookup(name string, labels Labels, kind Kind, mk func(*entry)) *entry {
	canon := labels.canonical()
	key := seriesKey(name, canon)
	r.mu.RLock()
	e := r.entries[key]
	r.mu.RUnlock()
	if e == nil {
		r.mu.Lock()
		if e = r.entries[key]; e == nil {
			e = &entry{name: name, labels: canon, kind: kind}
			mk(e)
			r.entries[key] = e
		}
		r.mu.Unlock()
	}
	if e.kind != kind {
		panic(fmt.Sprintf("obs: series %s{%s} registered as kind %d, requested as %d", name, canon, e.kind, kind))
	}
	return e
}

// Counter returns the counter series name{labels}, creating it on first use.
func (r *Registry) Counter(name string, labels Labels) *Counter {
	return r.lookup(name, labels, KindCounter, func(e *entry) { e.c = &Counter{} }).c
}

// Gauge returns the gauge series name{labels}, creating it on first use.
func (r *Registry) Gauge(name string, labels Labels) *Gauge {
	return r.lookup(name, labels, KindGauge, func(e *entry) { e.g = &Gauge{} }).g
}

// Histogram returns the histogram series name{labels}, creating it on first
// use.
func (r *Registry) Histogram(name string, labels Labels) *Histogram {
	return r.lookup(name, labels, KindHistogram, func(e *entry) { e.h = NewHistogram() }).h
}

// RegisterFunc registers a callback evaluated at scrape time — the natural
// fit for state that lives elsewhere (an engine's freshness tracker, a
// device's counters). Registering an existing series replaces its callback
// and transfers ownership: experiment harnesses build and close engines of
// the same architecture repeatedly, and the latest live engine is the one
// whose state the scrape should report.
func (r *Registry) RegisterFunc(name string, labels Labels, kind Kind, fn func() float64) *FuncHandle {
	if kind != KindCounter && kind != KindGauge {
		panic("obs: RegisterFunc supports counter and gauge kinds only")
	}
	canon := labels.canonical()
	key := seriesKey(name, canon)
	h := &FuncHandle{key: key}
	r.mu.Lock()
	defer r.mu.Unlock()
	e := r.entries[key]
	if e == nil {
		e = &entry{name: name, labels: canon, kind: kind}
		r.entries[key] = e
	}
	e.fn = fn
	e.owner = h
	return h
}

// Unregister removes the callback series h registered, unless a later
// RegisterFunc already took the series over.
func (r *Registry) Unregister(h *FuncHandle) {
	if h == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if e := r.entries[h.key]; e != nil && e.owner == h {
		delete(r.entries, h.key)
	}
}

// snapshot returns the entries sorted by name then labels, for exposition.
func (r *Registry) snapshot() []*entry {
	r.mu.RLock()
	out := make([]*entry, 0, len(r.entries))
	for _, e := range r.entries {
		out = append(out, e)
	}
	r.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].name != out[j].name {
			return out[i].name < out[j].name
		}
		return out[i].labels < out[j].labels
	})
	return out
}
