package obs

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
)

// TestRegistryReadWhileWrite scrapes the registry continuously while many
// goroutines create and update metrics; the race detector is the assertion.
func TestRegistryReadWhileWrite(t *testing.T) {
	r := NewRegistry()
	r.Counter("htap_test_warm_total", nil).Inc() // scrapes are never empty
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c := r.Counter("htap_test_ops_total", L("worker", fmt.Sprint(w)))
			g := r.Gauge("htap_test_depth", L("worker", fmt.Sprint(w)))
			h := r.Histogram("htap_test_latency_ns", L("worker", fmt.Sprint(w)))
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				c.Inc()
				g.SetInt(int64(i % 100))
				h.Observe(int64(i % 100000))
				if i%1000 == 0 {
					// Churn func metrics too: register/replace/unregister.
					fh := r.RegisterFunc("htap_test_func", L("worker", fmt.Sprint(w)), KindGauge, func() float64 { return float64(i) })
					r.Unregister(fh)
				}
			}
		}(w)
	}
	for i := 0; i < 50; i++ {
		var buf bytes.Buffer
		if err := r.WritePrometheus(&buf); err != nil {
			t.Fatalf("scrape %d: %v", i, err)
		}
		if _, err := ValidateExposition(buf.Bytes()); err != nil && i > 0 {
			t.Fatalf("scrape %d malformed: %v", i, err)
		}
	}
	close(stop)
	wg.Wait()
}

func TestGetOrCreateSharesSeries(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("htap_x_total", L("arch", "A"))
	b := r.Counter("htap_x_total", L("arch", "A"))
	if a != b {
		t.Fatal("same name+labels returned distinct counters")
	}
	c := r.Counter("htap_x_total", L("arch", "B"))
	if a == c {
		t.Fatal("different labels returned the same counter")
	}
	a.Add(3)
	if b.Value() != 3 {
		t.Fatalf("shared counter = %d, want 3", b.Value())
	}
}

func TestFuncOwnership(t *testing.T) {
	r := NewRegistry()
	h1 := r.RegisterFunc("htap_owned", L("arch", "A"), KindGauge, func() float64 { return 1 })
	h2 := r.RegisterFunc("htap_owned", L("arch", "A"), KindGauge, func() float64 { return 2 })
	// h1's unregister must be a no-op: h2 took the series over.
	r.Unregister(h1)
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `htap_owned{arch="A"} 2`) {
		t.Fatalf("series lost or stale after replaced registration:\n%s", buf.String())
	}
	r.Unregister(h2)
	buf.Reset()
	_ = r.WritePrometheus(&buf)
	if strings.Contains(buf.String(), "htap_owned") {
		t.Fatalf("series survived owner unregister:\n%s", buf.String())
	}
}

func TestExpositionFormat(t *testing.T) {
	r := NewRegistry()
	r.Counter("htap_c_total", L("arch", "A")).Add(7)
	r.Gauge("htap_g", nil).Set(2.5)
	h := r.Histogram("htap_h_ns", L("class", "q1"))
	for i := int64(1); i <= 100; i++ {
		h.Observe(i * 1000)
	}
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# TYPE htap_c_total counter",
		`htap_c_total{arch="A"} 7`,
		"# TYPE htap_g gauge",
		"htap_g 2.5",
		"# TYPE htap_h_ns summary",
		`htap_h_ns{class="q1",quantile="0.5"}`,
		`htap_h_ns_count{class="q1"} 100`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
	n, err := ValidateExposition(buf.Bytes())
	if err != nil {
		t.Fatalf("self-validation failed: %v", err)
	}
	if n < 7 {
		t.Fatalf("validated %d samples, want >= 7", n)
	}
}

func TestValidateExpositionRejectsGarbage(t *testing.T) {
	for _, bad := range []string{
		"",
		"just words without a value structure {",
		"1leading_digit 5",
		"name_no_value",
		`name{unterminated="x" 5`,
		"name five",
	} {
		if _, err := ValidateExposition([]byte(bad)); err == nil {
			t.Errorf("ValidateExposition(%q) accepted malformed input", bad)
		}
	}
}

func TestHTTPServer(t *testing.T) {
	r := NewRegistry()
	r.Counter("htap_http_test_total", nil).Inc()
	tr := NewTracer(16)
	s := tr.Start("root")
	s.Child("leaf").End()
	s.End()

	srv, err := Serve("127.0.0.1:0", r, tr)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	resp, err := http.Get("http://" + srv.Addr() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("/metrics status %d", resp.StatusCode)
	}
	if n, err := ValidateExposition(body); err != nil || n == 0 {
		t.Fatalf("scrape invalid (n=%d): %v\n%s", n, err, body)
	}
	if !strings.Contains(string(body), "htap_http_test_total 1") {
		t.Fatalf("scrape missing counter:\n%s", body)
	}

	resp, err = http.Get("http://" + srv.Addr() + "/spans")
	if err != nil {
		t.Fatal(err)
	}
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(body), `"name":"leaf"`) {
		t.Fatalf("/spans missing span:\n%s", body)
	}
}
