package rowstore

import (
	"fmt"
	"sync"

	"htap/internal/btree"
	"htap/internal/types"
)

// SecondaryIndex maps a derived int64 key (for example a hashed customer
// last name) to the set of primary keys whose *latest committed version*
// produces it. The paper's §2.2 closes by pointing at HTAP indexing as a
// related technique; this is the minimal multi-version-aware form: the
// index tracks current images only, and readers re-validate hits against
// their snapshot, so a stale pointer can produce a false miss for old
// snapshots but never a wrong row.
type SecondaryIndex struct {
	Name string
	Key  func(types.Row) int64

	mu   sync.RWMutex
	tree *btree.Tree[map[int64]struct{}]
}

// AddIndex registers a secondary index and back-fills it from the current
// committed state. Further maintenance happens inside Apply and Load.
func (s *Store) AddIndex(name string, key func(types.Row) int64) *SecondaryIndex {
	idx := &SecondaryIndex{Name: name, Key: key, tree: btree.New[map[int64]struct{}]()}
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, existing := range s.indexes {
		if existing.Name == name {
			panic(fmt.Sprintf("rowstore: duplicate index %q", name))
		}
	}
	s.idx.Ascend(func(pk int64, c *chain) bool {
		if c.head != nil && !c.head.deleted {
			idx.insert(key(c.head.row), pk)
		}
		return true
	})
	s.indexes = append(s.indexes, idx)
	return idx
}

func (ix *SecondaryIndex) insert(k, pk int64) {
	ix.mu.Lock()
	set, ok := ix.tree.Get(k)
	if !ok {
		set = make(map[int64]struct{}, 1)
		ix.tree.Put(k, set)
	}
	set[pk] = struct{}{}
	ix.mu.Unlock()
}

func (ix *SecondaryIndex) remove(k, pk int64) {
	ix.mu.Lock()
	if set, ok := ix.tree.Get(k); ok {
		delete(set, pk)
		if len(set) == 0 {
			ix.tree.Delete(k)
		}
	}
	ix.mu.Unlock()
}

// update maintains the index across one applied write. oldRow is the
// previous live image (nil if none), newRow the new one (nil on delete).
func (ix *SecondaryIndex) update(pk int64, oldRow, newRow types.Row) {
	var oldK, newK int64
	hasOld, hasNew := oldRow != nil, newRow != nil
	if hasOld {
		oldK = ix.Key(oldRow)
	}
	if hasNew {
		newK = ix.Key(newRow)
	}
	if hasOld && hasNew && oldK == newK {
		return
	}
	if hasOld {
		ix.remove(oldK, pk)
	}
	if hasNew {
		ix.insert(newK, pk)
	}
}

// Lookup returns the primary keys currently indexed under k, in ascending
// order. Callers re-read each primary key at their snapshot.
func (ix *SecondaryIndex) Lookup(k int64) []int64 {
	ix.mu.RLock()
	set, ok := ix.tree.Get(k)
	var out []int64
	if ok {
		out = make([]int64, 0, len(set))
		for pk := range set {
			out = append(out, pk)
		}
	}
	ix.mu.RUnlock()
	sortInt64s(out)
	return out
}

// LookupRange returns primary keys for derived keys in [lo, hi].
func (ix *SecondaryIndex) LookupRange(lo, hi int64) []int64 {
	var out []int64
	ix.mu.RLock()
	ix.tree.AscendRange(lo, hi, func(_ int64, set map[int64]struct{}) bool {
		for pk := range set {
			out = append(out, pk)
		}
		return true
	})
	ix.mu.RUnlock()
	sortInt64s(out)
	return out
}

// Len reports the number of distinct derived keys.
func (ix *SecondaryIndex) Len() int {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	return ix.tree.Len()
}

func sortInt64s(a []int64) {
	// Insertion sort: result sets are small (index hits per key).
	for i := 1; i < len(a); i++ {
		for j := i; j > 0 && a[j] < a[j-1]; j-- {
			a[j], a[j-1] = a[j-1], a[j]
		}
	}
}

// HashString folds a string into a derived index key; workloads index
// strings (customer last names) through it.
func HashString(s string) int64 {
	h := uint64(1469598103934665603)
	for i := 0; i < len(s); i++ {
		h = (h ^ uint64(s[i])) * 1099511628211
	}
	return int64(h >> 1) // keep it non-negative for readability
}
