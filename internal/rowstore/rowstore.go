// Package rowstore implements the MVCC row store used as the OLTP side of
// every architecture in the paper's Figure 1.
//
// Rows live in version chains hung off a B+-tree primary-key index; each
// version carries a begin timestamp, matching §2.2(1): "An update creates a
// new version of a row with a new lifetime of a begin timestamp and an end
// timestamp" (the end timestamp is implicit here: a version ends where the
// next newer one begins, and deletions install tombstone versions). The
// store can be memory-resident (architectures A, B, D) or disk-backed
// (architecture C's "Disk Row Store", which charges simulated I/O per row
// access).
package rowstore

import (
	"errors"
	"sync"

	"htap/internal/btree"
	"htap/internal/disk"
	"htap/internal/txn"
	"htap/internal/types"
	"htap/internal/wal"
)

// Errors returned by transactional operations.
var (
	ErrDuplicate = errors.New("rowstore: duplicate primary key")
	ErrNotFound  = errors.New("rowstore: key not found")
)

type version struct {
	begin   uint64
	deleted bool
	row     types.Row
	next    *version
}

type chain struct{ head *version } // newest first

// visible returns the newest version with begin <= ts.
func (c *chain) visible(ts uint64) *version {
	for v := c.head; v != nil; v = v.next {
		if v.begin <= ts {
			return v
		}
	}
	return nil
}

// Store is an MVCC row store for one table.
type Store struct {
	ID     uint32
	Schema *types.Schema

	mu  sync.RWMutex
	idx *btree.Tree[*chain]

	// Disk mode: when dev is non-nil every row read/written charges I/O
	// proportional to the row's estimated byte size.
	dev *disk.Device

	indexes  []*SecondaryIndex
	versions int64
}

// New returns a memory-resident store.
func New(id uint32, schema *types.Schema) *Store {
	return &Store{ID: id, Schema: schema, idx: btree.New[*chain]()}
}

// NewDiskBacked returns a store whose row accesses charge I/O on dev.
func NewDiskBacked(id uint32, schema *types.Schema, dev *disk.Device) *Store {
	s := New(id, schema)
	s.dev = dev
	return s
}

// rowBytes estimates the stored size of a row for I/O accounting.
func (s *Store) rowBytes(r types.Row) int {
	n := 8
	for _, d := range r {
		n += 16 + len(d.S)
	}
	return n
}

func (s *Store) chargeRead(r types.Row) {
	if s.dev != nil && r != nil {
		s.dev.ChargeRead(s.rowBytes(r))
	}
}

func (s *Store) chargeWrite(r types.Row) {
	if s.dev != nil {
		s.dev.ChargeWrite(s.rowBytes(r))
	}
}

// latest returns the chain and the commit TS of its newest version.
func (s *Store) latest(key int64) (*chain, uint64) {
	c, ok := s.idx.Get(key)
	if !ok || c.head == nil {
		return c, 0
	}
	return c, c.head.begin
}

// LatestVersion returns the commit timestamp of the newest version of key
// (including tombstones), or 0 if the key was never written. Distributed
// prepare validation uses it.
func (s *Store) LatestVersion(key int64) uint64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	_, ts := s.latest(key)
	return ts
}

// Get returns the row visible to tx (honoring its own writes), or
// ErrNotFound.
func (s *Store) Get(tx *txn.Txn, key int64) (types.Row, error) {
	if w, ok := tx.GetWrite(s.ID, key); ok {
		if w.Op == txn.OpDelete {
			return nil, ErrNotFound
		}
		return w.Row, nil
	}
	return s.GetAt(tx.ReadTS, key)
}

// GetAt returns the row visible at snapshot ts, or ErrNotFound.
func (s *Store) GetAt(ts uint64, key int64) (types.Row, error) {
	s.mu.RLock()
	c, ok := s.idx.Get(key)
	var v *version
	if ok {
		v = c.visible(ts)
	}
	s.mu.RUnlock()
	if v == nil || v.deleted {
		return nil, ErrNotFound
	}
	s.chargeRead(v.row)
	return v.row, nil
}

// Insert buffers an insert in tx. It fails with ErrDuplicate if a live row
// is visible at the transaction snapshot (or buffered by the transaction).
func (s *Store) Insert(tx *txn.Txn, row types.Row) error {
	if err := s.Schema.Validate(row); err != nil {
		return err
	}
	key := s.Schema.Key(row)
	if w, ok := tx.GetWrite(s.ID, key); ok {
		if w.Op != txn.OpDelete {
			return ErrDuplicate
		}
		// The transaction deleted this key itself; re-inserting replaces it.
		return tx.Write(s.ID, key, txn.OpInsert, row, 0)
	}
	s.mu.RLock()
	c, latestTS := s.latest(key)
	live := c != nil && func() bool { v := c.visible(tx.ReadTS); return v != nil && !v.deleted }()
	s.mu.RUnlock()
	if live {
		return ErrDuplicate
	}
	return tx.Write(s.ID, key, txn.OpInsert, row, latestTS)
}

// Update buffers an update of the full row image in tx.
func (s *Store) Update(tx *txn.Txn, row types.Row) error {
	if err := s.Schema.Validate(row); err != nil {
		return err
	}
	key := s.Schema.Key(row)
	if w, ok := tx.GetWrite(s.ID, key); ok {
		if w.Op == txn.OpDelete {
			return ErrNotFound
		}
		return tx.Write(s.ID, key, txn.OpUpdate, row, 0)
	}
	s.mu.RLock()
	c, latestTS := s.latest(key)
	live := c != nil && func() bool { v := c.visible(tx.ReadTS); return v != nil && !v.deleted }()
	s.mu.RUnlock()
	if !live {
		return ErrNotFound
	}
	return tx.Write(s.ID, key, txn.OpUpdate, row, latestTS)
}

// Delete buffers a delete in tx.
func (s *Store) Delete(tx *txn.Txn, key int64) error {
	if w, ok := tx.GetWrite(s.ID, key); ok {
		if w.Op == txn.OpDelete {
			return ErrNotFound
		}
		return tx.Write(s.ID, key, txn.OpDelete, nil, 0)
	}
	s.mu.RLock()
	c, latestTS := s.latest(key)
	live := c != nil && func() bool { v := c.visible(tx.ReadTS); return v != nil && !v.deleted }()
	s.mu.RUnlock()
	if !live {
		return ErrNotFound
	}
	return tx.Write(s.ID, key, txn.OpDelete, nil, latestTS)
}

// Apply installs the subset of writes belonging to this table at commitTS.
// Engines call it from the txn.Commit apply callback.
func (s *Store) Apply(commitTS uint64, writes []txn.Write) {
	s.mu.Lock()
	for _, w := range writes {
		if w.Table != s.ID {
			continue
		}
		c, ok := s.idx.Get(w.Key)
		if !ok {
			c = &chain{}
			s.idx.Put(w.Key, c)
		}
		var oldRow types.Row
		if c.head != nil && !c.head.deleted {
			oldRow = c.head.row
		}
		v := &version{begin: commitTS, next: c.head}
		switch w.Op {
		case txn.OpDelete:
			v.deleted = true
		default:
			v.row = w.Row
		}
		c.head = v
		s.versions++
		for _, ix := range s.indexes {
			ix.update(w.Key, oldRow, v.row)
		}
		s.chargeWrite(w.Row)
	}
	s.mu.Unlock()
}

// LogWrites appends redo records for this table's writes to l.
func (s *Store) LogWrites(l *wal.Log, txnID uint64, writes []txn.Write) error {
	for _, w := range writes {
		if w.Table != s.ID {
			continue
		}
		var rt wal.RecType
		switch w.Op {
		case txn.OpInsert:
			rt = wal.RecInsert
		case txn.OpUpdate:
			rt = wal.RecUpdate
		case txn.OpDelete:
			rt = wal.RecDelete
		}
		if _, err := l.Append(wal.Record{Txn: txnID, Type: rt, Table: s.ID, Key: w.Key, Row: w.Row}); err != nil {
			return err
		}
	}
	return nil
}

// Load installs a row visible to every snapshot, bypassing transactions.
// Bulk loaders use it.
func (s *Store) Load(row types.Row) error {
	if err := s.Schema.Validate(row); err != nil {
		return err
	}
	key := s.Schema.Key(row)
	s.mu.Lock()
	c, ok := s.idx.Get(key)
	if !ok {
		c = &chain{}
		s.idx.Put(key, c)
	}
	var oldRow types.Row
	if c.head != nil && !c.head.deleted {
		oldRow = c.head.row
	}
	c.head = &version{begin: 0, row: row, next: c.head}
	s.versions++
	for _, ix := range s.indexes {
		ix.update(key, oldRow, row)
	}
	s.mu.Unlock()
	return nil
}

// Scan calls fn for every live row visible at ts, in key order, until fn
// returns false. Disk-backed stores charge one read per scanned row.
func (s *Store) Scan(ts uint64, fn func(key int64, row types.Row) bool) {
	s.ScanRange(ts, -1<<63, 1<<63-1, fn)
}

// ScanRange is Scan restricted to keys in [lo, hi].
func (s *Store) ScanRange(ts uint64, lo, hi int64, fn func(key int64, row types.Row) bool) {
	type hit struct {
		key int64
		row types.Row
	}
	// Collect under the read lock, invoke callbacks (which may charge
	// simulated I/O latency) outside it.
	var hits []hit
	s.mu.RLock()
	s.idx.AscendRange(lo, hi, func(k int64, c *chain) bool {
		if v := c.visible(ts); v != nil && !v.deleted {
			hits = append(hits, hit{k, v.row})
		}
		return true
	})
	s.mu.RUnlock()
	for _, h := range hits {
		s.chargeRead(h.row)
		if !fn(h.key, h.row) {
			return
		}
	}
}

// Count returns the number of live rows at snapshot ts.
func (s *Store) Count(ts uint64) int {
	n := 0
	s.mu.RLock()
	s.idx.Ascend(func(_ int64, c *chain) bool {
		if v := c.visible(ts); v != nil && !v.deleted {
			n++
		}
		return true
	})
	s.mu.RUnlock()
	return n
}

// Versions returns the total number of row versions ever installed.
func (s *Store) Versions() int64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.versions
}

// GC drops versions older than ts that are shadowed by a newer version,
// returning how many were reclaimed. Visibility at or after ts is
// unaffected.
func (s *Store) GC(ts uint64) int64 {
	reclaimed := int64(0)
	s.mu.Lock()
	s.idx.Ascend(func(_ int64, c *chain) bool {
		v := c.visible(ts)
		if v == nil {
			return true
		}
		for v.next != nil {
			v.next = v.next.next
			reclaimed++
			s.versions--
		}
		return true
	})
	s.mu.Unlock()
	return reclaimed
}
