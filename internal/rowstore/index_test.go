package rowstore

import (
	"testing"

	"htap/internal/txn"
	"htap/internal/types"
)

var idxSchema = types.NewSchema("cust", 0,
	types.Column{Name: "id", Type: types.Int},
	types.Column{Name: "last", Type: types.String},
	types.Column{Name: "bal", Type: types.Float},
)

func cust(id int64, last string, bal float64) types.Row {
	return types.Row{types.NewInt(id), types.NewString(last), types.NewFloat(bal)}
}

func lastNameKey(r types.Row) int64 { return HashString(r[1].Str()) }

func TestIndexBackfillAndLookup(t *testing.T) {
	s := New(1, idxSchema)
	s.Load(cust(1, "SMITH", 0))
	s.Load(cust(2, "JONES", 0))
	s.Load(cust(3, "SMITH", 0))
	ix := s.AddIndex("by-last", lastNameKey)

	got := ix.Lookup(HashString("SMITH"))
	if len(got) != 2 || got[0] != 1 || got[1] != 3 {
		t.Fatalf("SMITH -> %v", got)
	}
	if got := ix.Lookup(HashString("NOBODY")); len(got) != 0 {
		t.Fatalf("NOBODY -> %v", got)
	}
	if ix.Len() != 2 {
		t.Fatalf("distinct keys = %d", ix.Len())
	}
}

func TestIndexMaintainedAcrossWrites(t *testing.T) {
	m := txn.NewManager()
	s := New(1, idxSchema)
	ix := s.AddIndex("by-last", lastNameKey)

	commit := func(fn func(tx *txn.Txn) error) {
		t.Helper()
		tx := m.Begin()
		if err := fn(tx); err != nil {
			t.Fatal(err)
		}
		if _, err := tx.Commit(func(ts uint64, ws []txn.Write) error {
			s.Apply(ts, ws)
			return nil
		}); err != nil {
			t.Fatal(err)
		}
	}

	commit(func(tx *txn.Txn) error { return s.Insert(tx, cust(1, "SMITH", 0)) })
	if got := ix.Lookup(HashString("SMITH")); len(got) != 1 {
		t.Fatalf("after insert: %v", got)
	}
	// An update that changes the indexed value moves the entry.
	commit(func(tx *txn.Txn) error { return s.Update(tx, cust(1, "JONES", 0)) })
	if got := ix.Lookup(HashString("SMITH")); len(got) != 0 {
		t.Fatalf("stale SMITH entry: %v", got)
	}
	if got := ix.Lookup(HashString("JONES")); len(got) != 1 || got[0] != 1 {
		t.Fatalf("JONES: %v", got)
	}
	// An update that keeps the indexed value leaves it in place.
	commit(func(tx *txn.Txn) error { return s.Update(tx, cust(1, "JONES", 99)) })
	if got := ix.Lookup(HashString("JONES")); len(got) != 1 {
		t.Fatalf("JONES after balance update: %v", got)
	}
	// Deletes drop the entry.
	commit(func(tx *txn.Txn) error { return s.Delete(tx, 1) })
	if got := ix.Lookup(HashString("JONES")); len(got) != 0 {
		t.Fatalf("JONES after delete: %v", got)
	}
}

func TestIndexLookupRange(t *testing.T) {
	s := New(1, idxSchema)
	byBal := s.AddIndex("by-bal", func(r types.Row) int64 { return int64(r[2].Float()) })
	for i := int64(0); i < 10; i++ {
		s.Load(cust(i, "X", float64(i*10)))
	}
	got := byBal.LookupRange(20, 50)
	if len(got) != 4 { // balances 20,30,40,50 -> ids 2,3,4,5
		t.Fatalf("range -> %v", got)
	}
	for i := 1; i < len(got); i++ {
		if got[i] <= got[i-1] {
			t.Fatalf("unsorted: %v", got)
		}
	}
}

func TestDuplicateIndexPanics(t *testing.T) {
	s := New(1, idxSchema)
	s.AddIndex("x", lastNameKey)
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate index name should panic")
		}
	}()
	s.AddIndex("x", lastNameKey)
}

// The ablation the index exists for: point-ish access through the index vs
// a full snapshot scan.
func BenchmarkIndexLookupVsScan(b *testing.B) {
	m := txn.NewManager()
	s := New(1, idxSchema)
	const n = 50_000
	for i := int64(0); i < n; i++ {
		s.Load(cust(i, "L"+string(rune('A'+i%26)), float64(i)))
	}
	ix := s.AddIndex("by-last", lastNameKey)
	target := HashString("LM")
	ts := m.Oracle().Watermark()

	b.Run("index", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for _, pk := range ix.Lookup(target) {
				s.GetAt(ts, pk)
			}
		}
	})
	b.Run("full-scan", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			s.Scan(ts, func(_ int64, r types.Row) bool {
				_ = r[1].Str() == "LM"
				return true
			})
		}
	})
}
