package rowstore

import (
	"errors"
	"math/rand"
	"sync"
	"testing"
	"testing/quick"

	"htap/internal/disk"
	"htap/internal/txn"
	"htap/internal/types"
	"htap/internal/wal"
)

var testSchema = types.NewSchema("acct", 0,
	types.Column{Name: "id", Type: types.Int},
	types.Column{Name: "bal", Type: types.Int},
)

func acct(id, bal int64) types.Row {
	return types.Row{types.NewInt(id), types.NewInt(bal)}
}

// commitVia installs the transaction's writes into the store.
func commitVia(t *testing.T, tx *txn.Txn, s *Store) uint64 {
	t.Helper()
	ts, err := tx.Commit(func(commitTS uint64, w []txn.Write) error {
		s.Apply(commitTS, w)
		return nil
	})
	if err != nil {
		t.Fatalf("commit: %v", err)
	}
	return ts
}

func TestInsertGetUpdateDelete(t *testing.T) {
	m := txn.NewManager()
	s := New(1, testSchema)

	tx := m.Begin()
	if err := s.Insert(tx, acct(1, 100)); err != nil {
		t.Fatal(err)
	}
	// Read-your-own-write before commit.
	if r, err := s.Get(tx, 1); err != nil || r[1].Int() != 100 {
		t.Fatalf("own write: %v %v", r, err)
	}
	commitVia(t, tx, s)

	tx = m.Begin()
	r, err := s.Get(tx, 1)
	if err != nil || r[1].Int() != 100 {
		t.Fatalf("Get after commit: %v %v", r, err)
	}
	if err := s.Update(tx, acct(1, 150)); err != nil {
		t.Fatal(err)
	}
	commitVia(t, tx, s)

	tx = m.Begin()
	if r, _ := s.Get(tx, 1); r[1].Int() != 150 {
		t.Fatalf("after update: %v", r)
	}
	if err := s.Delete(tx, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Get(tx, 1); !errors.Is(err, ErrNotFound) {
		t.Fatal("delete not visible to own txn")
	}
	commitVia(t, tx, s)

	tx = m.Begin()
	if _, err := s.Get(tx, 1); !errors.Is(err, ErrNotFound) {
		t.Fatal("deleted row still visible")
	}
}

func TestSnapshotIsolationReaders(t *testing.T) {
	m := txn.NewManager()
	s := New(1, testSchema)

	tw := m.Begin()
	s.Insert(tw, acct(1, 100))
	commitVia(t, tw, s)

	reader := m.Begin() // snapshot before the update below
	tw = m.Begin()
	s.Update(tw, acct(1, 999))
	commitVia(t, tw, s)

	if r, _ := s.Get(reader, 1); r[1].Int() != 100 {
		t.Fatalf("reader sees %v, want the pre-update snapshot", r)
	}
	if r, _ := s.Get(m.Begin(), 1); r[1].Int() != 999 {
		t.Fatalf("new reader sees %v, want 999", r)
	}
}

func TestDuplicateInsert(t *testing.T) {
	m := txn.NewManager()
	s := New(1, testSchema)
	tx := m.Begin()
	s.Insert(tx, acct(1, 1))
	if err := s.Insert(tx, acct(1, 2)); !errors.Is(err, ErrDuplicate) {
		t.Fatalf("same-txn duplicate: %v", err)
	}
	commitVia(t, tx, s)
	tx = m.Begin()
	if err := s.Insert(tx, acct(1, 3)); !errors.Is(err, ErrDuplicate) {
		t.Fatalf("cross-txn duplicate: %v", err)
	}
	tx.Abort()
	// Delete-then-insert within one txn is legal.
	tx = m.Begin()
	if err := s.Delete(tx, 1); err != nil {
		t.Fatal(err)
	}
	if err := s.Insert(tx, acct(1, 4)); err != nil {
		t.Fatalf("insert after delete: %v", err)
	}
	commitVia(t, tx, s)
	if r, _ := s.Get(m.Begin(), 1); r[1].Int() != 4 {
		t.Fatalf("got %v", r)
	}
}

func TestUpdateMissingAndDeleteMissing(t *testing.T) {
	m := txn.NewManager()
	s := New(1, testSchema)
	tx := m.Begin()
	if err := s.Update(tx, acct(9, 1)); !errors.Is(err, ErrNotFound) {
		t.Fatalf("update missing: %v", err)
	}
	if err := s.Delete(tx, 9); !errors.Is(err, ErrNotFound) {
		t.Fatalf("delete missing: %v", err)
	}
}

func TestLostUpdatePrevented(t *testing.T) {
	m := txn.NewManager()
	s := New(1, testSchema)
	tx := m.Begin()
	s.Insert(tx, acct(1, 100))
	commitVia(t, tx, s)

	t1 := m.Begin()
	t2 := m.Begin()
	if err := s.Update(t2, acct(1, 200)); err != nil {
		t.Fatal(err)
	}
	commitVia(t, t2, s)
	// t1's snapshot predates t2's commit; its update must fail.
	err := s.Update(t1, acct(1, 300))
	if !errors.Is(err, txn.ErrReadStale) && !errors.Is(err, txn.ErrConflict) {
		t.Fatalf("lost update allowed: %v", err)
	}
}

func TestScanSnapshotAndOrder(t *testing.T) {
	m := txn.NewManager()
	s := New(1, testSchema)
	for i := int64(5); i >= 1; i-- {
		tx := m.Begin()
		s.Insert(tx, acct(i, i*10))
		commitVia(t, tx, s)
	}
	snap := m.Oracle().Watermark()
	tx := m.Begin()
	s.Delete(tx, 3)
	commitVia(t, tx, s)

	var keys []int64
	s.Scan(snap, func(k int64, r types.Row) bool {
		keys = append(keys, k)
		return true
	})
	if len(keys) != 5 {
		t.Fatalf("snapshot scan saw %v", keys)
	}
	keys = keys[:0]
	s.Scan(m.Oracle().Watermark(), func(k int64, r types.Row) bool {
		keys = append(keys, k)
		return true
	})
	if len(keys) != 4 {
		t.Fatalf("current scan saw %v", keys)
	}
	for i := 1; i < len(keys); i++ {
		if keys[i] <= keys[i-1] {
			t.Fatalf("scan out of order: %v", keys)
		}
	}
	if s.Count(snap) != 5 || s.Count(m.Oracle().Watermark()) != 4 {
		t.Fatal("Count mismatch")
	}
}

func TestScanRange(t *testing.T) {
	m := txn.NewManager()
	s := New(1, testSchema)
	for i := int64(0); i < 10; i++ {
		s.Load(acct(i, i))
	}
	n := 0
	s.ScanRange(m.Oracle().Watermark(), 3, 6, func(k int64, r types.Row) bool { n++; return true })
	if n != 4 {
		t.Fatalf("range scan saw %d rows, want 4", n)
	}
}

func TestLoadVisibleEverywhere(t *testing.T) {
	m := txn.NewManager()
	s := New(1, testSchema)
	s.Load(acct(1, 7))
	if r, err := s.GetAt(0, 1); err != nil || r[1].Int() != 7 {
		t.Fatalf("loaded row not visible at ts 0: %v %v", r, err)
	}
	_ = m
}

func TestGC(t *testing.T) {
	m := txn.NewManager()
	s := New(1, testSchema)
	tx := m.Begin()
	s.Insert(tx, acct(1, 0))
	commitVia(t, tx, s)
	for i := 0; i < 10; i++ {
		tx := m.Begin()
		s.Update(tx, acct(1, int64(i)))
		commitVia(t, tx, s)
	}
	before := s.Versions()
	ts := m.Oracle().Watermark()
	reclaimed := s.GC(ts)
	if reclaimed != before-1 {
		t.Fatalf("GC reclaimed %d of %d", reclaimed, before)
	}
	if r, err := s.GetAt(ts, 1); err != nil || r[1].Int() != 9 {
		t.Fatalf("post-GC visibility broken: %v %v", r, err)
	}
}

func TestDiskBackedCharges(t *testing.T) {
	dev := disk.New(disk.MemConfig())
	m := txn.NewManager()
	s := NewDiskBacked(1, testSchema, dev)
	tx := m.Begin()
	s.Insert(tx, acct(1, 1))
	commitVia(t, tx, s)
	if dev.Stats().WriteOps == 0 {
		t.Fatal("disk-backed apply did not charge writes")
	}
	s.GetAt(m.Oracle().Watermark(), 1)
	if dev.Stats().ReadOps == 0 {
		t.Fatal("disk-backed read did not charge")
	}
}

func TestWALRoundTrip(t *testing.T) {
	dev := disk.New(disk.MemConfig())
	l := wal.New(dev, "wal")
	m := txn.NewManager()
	s := New(1, testSchema)

	tx := m.Begin()
	s.Insert(tx, acct(1, 10))
	s.Insert(tx, acct(2, 20))
	_, err := tx.Commit(func(ts uint64, w []txn.Write) error {
		if err := s.LogWrites(l, tx.ID, w); err != nil {
			return err
		}
		if _, err := l.Append(wal.Record{Txn: tx.ID, Type: wal.RecCommit}); err != nil {
			return err
		}
		s.Apply(ts, w)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}

	// Replay into a fresh store simulating restart recovery.
	s2 := New(1, testSchema)
	_, err = l.Replay(func(r wal.Record) error {
		switch r.Type {
		case wal.RecInsert:
			return s2.Load(r.Row)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if s2.Count(0) != 2 {
		t.Fatalf("recovered %d rows, want 2", s2.Count(0))
	}
}

func TestConcurrentTransfers(t *testing.T) {
	// Classic bank transfer: total balance is invariant under concurrent,
	// conflicting transactions with retries.
	m := txn.NewManager()
	s := New(1, testSchema)
	const accounts = 20
	for i := int64(0); i < accounts; i++ {
		s.Load(acct(i, 100))
	}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < 200; i++ {
				from, to := rng.Int63n(accounts), rng.Int63n(accounts)
				if from == to {
					continue
				}
				for attempt := 0; attempt < 20; attempt++ {
					tx := m.Begin()
					fr, err1 := s.Get(tx, from)
					tr, err2 := s.Get(tx, to)
					if err1 != nil || err2 != nil {
						tx.Abort()
						continue
					}
					if s.Update(tx, acct(from, fr[1].Int()-1)) != nil ||
						s.Update(tx, acct(to, tr[1].Int()+1)) != nil {
						tx.Abort()
						continue
					}
					if _, err := tx.Commit(func(ts uint64, ws []txn.Write) error {
						s.Apply(ts, ws)
						return nil
					}); err == nil {
						break
					}
				}
			}
		}(int64(w))
	}
	wg.Wait()
	total := int64(0)
	s.Scan(m.Oracle().Watermark(), func(k int64, r types.Row) bool {
		total += r[1].Int()
		return true
	})
	if total != accounts*100 {
		t.Fatalf("total balance %d, want %d", total, accounts*100)
	}
}

// Property: after any sequence of committed single-row ops, GetAt(now)
// matches a map-based model.
func TestQuickMatchesModel(t *testing.T) {
	f := func(ops []struct {
		Key uint8
		Val int16
		Del bool
	}) bool {
		m := txn.NewManager()
		s := New(1, testSchema)
		model := map[int64]int64{}
		for _, op := range ops {
			key := int64(op.Key % 16)
			tx := m.Begin()
			var err error
			if op.Del {
				err = s.Delete(tx, key)
				if err == nil {
					delete(model, key)
				}
			} else if _, exists := model[key]; exists {
				err = s.Update(tx, acct(key, int64(op.Val)))
				if err == nil {
					model[key] = int64(op.Val)
				}
			} else {
				err = s.Insert(tx, acct(key, int64(op.Val)))
				if err == nil {
					model[key] = int64(op.Val)
				}
			}
			if err != nil {
				tx.Abort()
				continue
			}
			tx.Commit(func(ts uint64, w []txn.Write) error { s.Apply(ts, w); return nil })
		}
		now := m.Oracle().Watermark()
		if s.Count(now) != len(model) {
			return false
		}
		for k, v := range model {
			r, err := s.GetAt(now, k)
			if err != nil || r[1].Int() != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
