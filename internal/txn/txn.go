// Package txn provides the transaction substrate shared by all engines:
// a timestamp oracle, snapshot-isolated transactions with buffered write
// sets, and a striped lock table for write-write conflict detection.
//
// This is the "MVCC" half of the paper's "MVCC + logging" TP technique
// (Table 2): an update "creates a new version of a row with a new lifetime
// of a begin timestamp", readers run against a consistent snapshot, and the
// first writer of a key wins. The manager is storage-agnostic — engines pass
// an apply callback to Commit that installs the buffered writes into their
// stores (row store, delta store, Raft log, …) under the commit timestamp.
package txn

import (
	"errors"
	"sync"
	"sync/atomic"

	"htap/internal/types"
)

// Op is the kind of a buffered write.
type Op uint8

// Write operations.
const (
	OpInsert Op = iota + 1
	OpUpdate
	OpDelete
)

// Write is one buffered mutation of a transaction.
type Write struct {
	Table uint32
	Key   int64
	Op    Op
	Row   types.Row
}

// Common transaction errors.
var (
	ErrConflict  = errors.New("txn: write-write conflict")
	ErrFinished  = errors.New("txn: transaction already finished")
	ErrReadStale = errors.New("txn: key modified after snapshot")
)

const lockShards = 64

type lockKey struct {
	table uint32
	key   int64
}

type lockShard struct {
	mu    sync.Mutex
	locks map[lockKey]uint64 // -> holder txn id
}

// Oracle hands out monotonically increasing timestamps and tracks the read
// watermark: the highest timestamp whose transaction is fully applied.
type Oracle struct {
	ts        atomic.Uint64
	watermark atomic.Uint64
}

// Next returns the next timestamp.
func (o *Oracle) Next() uint64 { return o.ts.Add(1) }

// Current returns the most recently issued timestamp.
func (o *Oracle) Current() uint64 { return o.ts.Load() }

// Watermark returns the snapshot timestamp new readers should use.
func (o *Oracle) Watermark() uint64 { return o.watermark.Load() }

// Advance raises the read watermark to ts if it is higher.
func (o *Oracle) Advance(ts uint64) {
	for {
		cur := o.watermark.Load()
		if ts <= cur || o.watermark.CompareAndSwap(cur, ts) {
			return
		}
	}
}

// Stats summarizes manager activity.
type Stats struct {
	Commits   int64
	Aborts    int64
	Conflicts int64
}

// Manager coordinates transactions.
type Manager struct {
	oracle  Oracle
	nextTxn atomic.Uint64
	shards  [lockShards]lockShard

	commitMu  sync.Mutex
	commits   atomic.Int64
	aborts    atomic.Int64
	conflicts atomic.Int64
}

// NewManager returns a ready manager.
func NewManager() *Manager {
	m := &Manager{}
	for i := range m.shards {
		m.shards[i].locks = make(map[lockKey]uint64)
	}
	return m
}

// Oracle exposes the manager's timestamp oracle.
func (m *Manager) Oracle() *Oracle { return &m.oracle }

// AdvanceTxnID ensures every future Begin hands out an id greater than id.
// Recovery calls it with the highest transaction id seen in the replayed
// log: a WAL can hold complete DML records of a transaction that never
// committed (a torn group-commit tail), and if a post-recovery transaction
// reused that id, the next replay would merge the dead records into the new
// transaction's commit.
func (m *Manager) AdvanceTxnID(id uint64) {
	for {
		cur := m.nextTxn.Load()
		if id <= cur || m.nextTxn.CompareAndSwap(cur, id) {
			return
		}
	}
}

// Stats returns a snapshot of counters.
func (m *Manager) Stats() Stats {
	return Stats{Commits: m.commits.Load(), Aborts: m.aborts.Load(), Conflicts: m.conflicts.Load()}
}

// Txn is a snapshot-isolated transaction. Not safe for concurrent use.
type Txn struct {
	mgr    *Manager
	ID     uint64
	ReadTS uint64

	writes   []Write
	writeIdx map[lockKey]int
	locked   []lockKey
	done     bool
}

// Begin starts a transaction reading at the current watermark.
func (m *Manager) Begin() *Txn {
	return &Txn{
		mgr:      m,
		ID:       m.nextTxn.Add(1),
		ReadTS:   m.oracle.Watermark(),
		writeIdx: make(map[lockKey]int),
	}
}

func (m *Manager) shard(k lockKey) *lockShard {
	h := (uint64(k.table)*0x9e3779b97f4a7c15 ^ uint64(k.key)) * 0xbf58476d1ce4e5b9
	return &m.shards[h%lockShards]
}

// lock acquires the write lock for k on behalf of tx. Re-acquiring a lock
// the transaction already holds succeeds.
func (m *Manager) lock(tx *Txn, k lockKey) error {
	s := m.shard(k)
	s.mu.Lock()
	defer s.mu.Unlock()
	if holder, held := s.locks[k]; held {
		if holder == tx.ID {
			return nil
		}
		m.conflicts.Add(1)
		return ErrConflict
	}
	s.locks[k] = tx.ID
	tx.locked = append(tx.locked, k)
	return nil
}

func (m *Manager) unlockAll(tx *Txn) {
	for _, k := range tx.locked {
		s := m.shard(k)
		s.mu.Lock()
		if s.locks[k] == tx.ID {
			delete(s.locks, k)
		}
		s.mu.Unlock()
	}
	tx.locked = nil
}

// Write buffers a mutation, acquiring its write lock. latestVersion is the
// commit timestamp of the newest committed version the caller observed for
// the key (0 if none); a version newer than the snapshot aborts the
// transaction with ErrReadStale (first-committer-wins snapshot isolation).
func (tx *Txn) Write(table uint32, key int64, op Op, row types.Row, latestVersion uint64) error {
	if tx.done {
		return ErrFinished
	}
	if latestVersion > tx.ReadTS {
		tx.mgr.conflicts.Add(1)
		return ErrReadStale
	}
	k := lockKey{table, key}
	if err := tx.mgr.lock(tx, k); err != nil {
		return err
	}
	if i, ok := tx.writeIdx[k]; ok {
		// Collapse repeated writes to the same key, keeping first-op semantics:
		// INSERT then UPDATE stays an INSERT of the new image.
		prev := tx.writes[i].Op
		tx.writes[i].Row = row
		if prev == OpInsert && op != OpDelete {
			tx.writes[i].Op = OpInsert
		} else {
			tx.writes[i].Op = op
		}
		return nil
	}
	tx.writeIdx[k] = len(tx.writes)
	tx.writes = append(tx.writes, Write{Table: table, Key: key, Op: op, Row: row})
	return nil
}

// GetWrite returns the transaction's own buffered write for (table, key),
// so stores can serve read-your-own-writes.
func (tx *Txn) GetWrite(table uint32, key int64) (Write, bool) {
	if i, ok := tx.writeIdx[lockKey{table, key}]; ok {
		return tx.writes[i], true
	}
	return Write{}, false
}

// Writes returns the buffered write set in insertion order.
func (tx *Txn) Writes() []Write { return tx.writes }

// Pending reports the number of buffered writes.
func (tx *Txn) Pending() int { return len(tx.writes) }

// Commit assigns a commit timestamp, invokes apply with the write set, and
// advances the read watermark. The apply callback installs the writes into
// the engine's stores and logs; if it fails, the transaction aborts.
//
// Commits serialize on a short critical section. This models the single
// timestamp authority of the centralized engines (architectures A/C/D); the
// distributed engine (B) pays 2PC+Raft instead and bypasses this path.
func (tx *Txn) Commit(apply func(commitTS uint64, writes []Write) error) (uint64, error) {
	if tx.done {
		return 0, ErrFinished
	}
	tx.done = true
	defer tx.mgr.unlockAll(tx)
	if len(tx.writes) == 0 {
		tx.mgr.commits.Add(1)
		return tx.ReadTS, nil
	}
	m := tx.mgr
	m.commitMu.Lock()
	commitTS := m.oracle.Next()
	if apply != nil {
		if err := apply(commitTS, tx.writes); err != nil {
			m.commitMu.Unlock()
			m.aborts.Add(1)
			return 0, err
		}
	}
	m.oracle.Advance(commitTS)
	m.commitMu.Unlock()
	m.commits.Add(1)
	return commitTS, nil
}

// Abort releases the transaction's locks and discards its writes.
func (tx *Txn) Abort() {
	if tx.done {
		return
	}
	tx.done = true
	tx.mgr.unlockAll(tx)
	tx.mgr.aborts.Add(1)
}
