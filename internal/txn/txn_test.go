package txn

import (
	"errors"
	"sync"
	"testing"

	"htap/internal/types"
)

func TestOracleMonotonic(t *testing.T) {
	var o Oracle
	prev := uint64(0)
	for i := 0; i < 100; i++ {
		ts := o.Next()
		if ts <= prev {
			t.Fatalf("timestamp %d not > %d", ts, prev)
		}
		prev = ts
	}
	o.Advance(50)
	o.Advance(30) // must not regress
	if o.Watermark() != 50 {
		t.Fatalf("watermark = %d, want 50", o.Watermark())
	}
}

func TestCommitAdvancesWatermark(t *testing.T) {
	m := NewManager()
	tx := m.Begin()
	if tx.ReadTS != 0 {
		t.Fatalf("first txn ReadTS = %d, want 0", tx.ReadTS)
	}
	tx.Write(1, 5, OpInsert, types.Row{types.NewInt(5)}, 0)
	ts, err := tx.Commit(func(commitTS uint64, w []Write) error { return nil })
	if err != nil || ts == 0 {
		t.Fatalf("Commit = (%d, %v)", ts, err)
	}
	if m.Oracle().Watermark() != ts {
		t.Fatalf("watermark = %d, want %d", m.Oracle().Watermark(), ts)
	}
	tx2 := m.Begin()
	if tx2.ReadTS != ts {
		t.Fatalf("next txn reads at %d, want %d", tx2.ReadTS, ts)
	}
}

func TestWriteWriteConflict(t *testing.T) {
	m := NewManager()
	t1, t2 := m.Begin(), m.Begin()
	if err := t1.Write(1, 7, OpUpdate, nil, 0); err != nil {
		t.Fatal(err)
	}
	if err := t2.Write(1, 7, OpUpdate, nil, 0); !errors.Is(err, ErrConflict) {
		t.Fatalf("concurrent write = %v, want ErrConflict", err)
	}
	// Different key on same table is fine.
	if err := t2.Write(1, 8, OpUpdate, nil, 0); err != nil {
		t.Fatal(err)
	}
	t1.Abort()
	// After abort the lock is free.
	t3 := m.Begin()
	if err := t3.Write(1, 7, OpUpdate, nil, 0); err != nil {
		t.Fatal(err)
	}
	if m.Stats().Conflicts != 1 {
		t.Fatalf("conflicts = %d, want 1", m.Stats().Conflicts)
	}
}

func TestFirstCommitterWins(t *testing.T) {
	m := NewManager()
	t1 := m.Begin()
	// A later transaction commits key 7 at some TS > t1.ReadTS.
	t2 := m.Begin()
	t2.Write(1, 7, OpUpdate, nil, 0)
	commitTS, _ := t2.Commit(nil)
	// t1 now observes that the latest version is newer than its snapshot.
	if err := t1.Write(1, 7, OpUpdate, nil, commitTS); !errors.Is(err, ErrReadStale) {
		t.Fatalf("stale write = %v, want ErrReadStale", err)
	}
}

func TestReadYourOwnWrites(t *testing.T) {
	m := NewManager()
	tx := m.Begin()
	row := types.Row{types.NewInt(1)}
	tx.Write(3, 1, OpInsert, row, 0)
	w, ok := tx.GetWrite(3, 1)
	if !ok || w.Op != OpInsert || !w.Row[0].Equal(row[0]) {
		t.Fatalf("GetWrite = (%+v, %v)", w, ok)
	}
	if _, ok := tx.GetWrite(3, 2); ok {
		t.Fatal("GetWrite on unwritten key returned ok")
	}
}

func TestWriteCollapsing(t *testing.T) {
	m := NewManager()
	tx := m.Begin()
	tx.Write(1, 1, OpInsert, types.Row{types.NewInt(1)}, 0)
	tx.Write(1, 1, OpUpdate, types.Row{types.NewInt(2)}, 0)
	if n := tx.Pending(); n != 1 {
		t.Fatalf("pending = %d, want 1 (collapsed)", n)
	}
	w, _ := tx.GetWrite(1, 1)
	if w.Op != OpInsert || w.Row[0].Int() != 2 {
		t.Fatalf("collapsed write = %+v, want INSERT of new image", w)
	}
	tx.Write(1, 1, OpDelete, nil, 0)
	w, _ = tx.GetWrite(1, 1)
	if w.Op != OpDelete {
		t.Fatalf("after delete, op = %v", w.Op)
	}
}

func TestCommitApplyFailureAborts(t *testing.T) {
	m := NewManager()
	tx := m.Begin()
	tx.Write(1, 1, OpInsert, nil, 0)
	boom := errors.New("boom")
	if _, err := tx.Commit(func(uint64, []Write) error { return boom }); !errors.Is(err, boom) {
		t.Fatalf("Commit = %v, want boom", err)
	}
	st := m.Stats()
	if st.Aborts != 1 || st.Commits != 0 {
		t.Fatalf("stats = %+v", st)
	}
	// Watermark must not advance past the failed commit.
	if m.Begin().ReadTS != 0 {
		t.Fatal("failed commit advanced the watermark")
	}
}

func TestFinishedTxnRejectsUse(t *testing.T) {
	m := NewManager()
	tx := m.Begin()
	tx.Commit(nil)
	if err := tx.Write(1, 1, OpInsert, nil, 0); !errors.Is(err, ErrFinished) {
		t.Fatalf("Write after commit = %v", err)
	}
	if _, err := tx.Commit(nil); !errors.Is(err, ErrFinished) {
		t.Fatalf("double commit = %v", err)
	}
	tx.Abort() // must be a no-op, not panic
	if m.Stats().Aborts != 0 {
		t.Fatal("Abort after Commit counted")
	}
}

func TestEmptyCommitNoTimestamp(t *testing.T) {
	m := NewManager()
	before := m.Oracle().Current()
	tx := m.Begin()
	if _, err := tx.Commit(nil); err != nil {
		t.Fatal(err)
	}
	if m.Oracle().Current() != before {
		t.Fatal("read-only commit consumed a timestamp")
	}
}

func TestConcurrentDisjointCommits(t *testing.T) {
	m := NewManager()
	var applied sync.Map
	const workers, perWorker = 8, 200
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				tx := m.Begin()
				key := int64(w*perWorker + i)
				if err := tx.Write(1, key, OpInsert, nil, 0); err != nil {
					t.Errorf("write: %v", err)
					return
				}
				if _, err := tx.Commit(func(ts uint64, ws []Write) error {
					if _, dup := applied.LoadOrStore(ts, true); dup {
						return errors.New("duplicate commit timestamp")
					}
					return nil
				}); err != nil {
					t.Errorf("commit: %v", err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if got := m.Stats().Commits; got != workers*perWorker {
		t.Fatalf("commits = %d, want %d", got, workers*perWorker)
	}
}
