// Package disk simulates a block device.
//
// The paper's taxonomy distinguishes architectures by where data lives: the
// "Disk Row Store" of MySQL Heatwave (§2.1(c)) and the "log-based delta
// files" of TiDB (§2.2(2)(ii)) pay I/O costs that the in-memory designs do
// not. The repository has no real testbed, so this package substitutes a
// latency model: every read or write of a device charges a configurable
// delay and bumps counters. Storage itself is an in-memory byte arena, which
// keeps experiments deterministic and hermetic while preserving the relative
// cost structure the survey's comparisons depend on (DESIGN.md,
// "Substitutions").
package disk

import (
	"errors"
	"sync"
	"sync/atomic"
	"time"
)

// Config describes the simulated device cost model.
type Config struct {
	ReadLatency  time.Duration // charged per read op
	WriteLatency time.Duration // charged per write op
	BytesPerOp   int           // block size: one latency charge covers this many bytes (default 4096)
}

// DefaultConfig models a fast NVMe-ish device: reads 20µs, writes 30µs.
func DefaultConfig() Config {
	return Config{ReadLatency: 20 * time.Microsecond, WriteLatency: 30 * time.Microsecond, BytesPerOp: 4096}
}

// MemConfig models memory: no charge. Unit tests use it.
func MemConfig() Config { return Config{BytesPerOp: 4096} }

// Device is a simulated block device holding named append-only files.
type Device struct {
	cfg Config

	mu    sync.RWMutex
	files map[string]*file

	reads      atomic.Int64
	writes     atomic.Int64
	readBytes  atomic.Int64
	writeBytes atomic.Int64

	// Fault-injection counters (fault.go): how often the armed plan fired,
	// what it destroyed. The chaos harness asserts on these instead of
	// reverse-engineering the damage from file sizes.
	faultsInjected atomic.Int64 // clean ErrInjected write failures
	tornWrites     atomic.Int64 // appends that persisted only a prefix
	tornBytes      atomic.Int64 // payload bytes discarded by tears
	crashes        atomic.Int64 // transitions into the crashed state

	// pending accumulates charged latency. The host's sleep granularity is
	// ~1ms, so per-op sub-millisecond sleeps would overcharge by 50x; the
	// device instead banks charges and sleeps in >=2ms chunks, keeping the
	// long-run total faithful to the cost model.
	pending atomic.Int64 // nanoseconds owed

	// fault, when armed via SetFaultPlan, injects write errors, torn
	// appends, and crashes (fault.go).
	faultMu sync.Mutex
	fault   *faultState
}

type file struct {
	mu   sync.RWMutex
	data []byte
}

// New returns a device with the given cost model.
func New(cfg Config) *Device {
	if cfg.BytesPerOp <= 0 {
		cfg.BytesPerOp = 4096
	}
	return &Device{cfg: cfg, files: make(map[string]*file)}
}

// ErrNotFound reports a missing file or an out-of-range read.
var ErrNotFound = errors.New("disk: not found")

func (d *Device) file(name string, create bool) (*file, error) {
	d.mu.RLock()
	f := d.files[name]
	d.mu.RUnlock()
	if f != nil {
		return f, nil
	}
	if !create {
		return nil, ErrNotFound
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if f = d.files[name]; f == nil {
		f = &file{}
		d.files[name] = f
	}
	return f, nil
}

// ops returns how many latency charges an n-byte transfer costs.
func (d *Device) ops(n int) int {
	if n <= 0 {
		return 1
	}
	return (n + d.cfg.BytesPerOp - 1) / d.cfg.BytesPerOp
}

// chunk is the minimum latency debt worth an actual sleep.
const chunk = 2 * time.Millisecond

func (d *Device) charge(lat time.Duration, ops int) {
	if lat <= 0 || ops <= 0 {
		return
	}
	owed := d.pending.Add(int64(lat) * int64(ops))
	if owed < int64(chunk) {
		return
	}
	// Claim the whole debt and pay it; a racing op re-banks its own.
	if d.pending.CompareAndSwap(owed, 0) {
		time.Sleep(time.Duration(owed))
	}
}

// Append appends p to the named file (creating it), charging write latency.
// It returns the offset at which p was written. An armed fault plan may fail
// the call: with ErrInjected nothing is persisted; with ErrTorn or
// ErrCrashed a prefix of p may have reached the file.
func (d *Device) Append(name string, p []byte) (int64, error) {
	if fs := d.faultState(); fs != nil {
		keep, evt, ferr := fs.onWrite(name, len(p))
		if ferr != nil {
			switch evt {
			case faultInjected:
				d.faultsInjected.Add(1)
			case faultTorn:
				d.tornWrites.Add(1)
				d.tornBytes.Add(int64(len(p) - keep))
			case faultCrash:
				d.crashes.Add(1)
				d.tornWrites.Add(1)
				d.tornBytes.Add(int64(len(p) - keep))
			}
			if keep > 0 {
				d.appendRaw(name, p[:keep])
			}
			return 0, ferr
		}
	}
	off := d.appendRaw(name, p)
	return off, nil
}

// appendRaw persists p and charges latency, bypassing fault checks; torn
// writes use it to land their surviving prefix.
func (d *Device) appendRaw(name string, p []byte) int64 {
	f, _ := d.file(name, true)
	f.mu.Lock()
	off := int64(len(f.data))
	f.data = append(f.data, p...)
	f.mu.Unlock()
	n := d.ops(len(p))
	d.writes.Add(int64(n))
	d.writeBytes.Add(int64(len(p)))
	d.charge(d.cfg.WriteLatency, n)
	return off
}

// ReadAt reads len(p) bytes at off from the named file, charging read
// latency. A crashed device fails all reads until Revive.
func (d *Device) ReadAt(name string, p []byte, off int64) error {
	if fs := d.faultState(); fs != nil && fs.isCrashed() {
		return ErrCrashed
	}
	f, err := d.file(name, false)
	if err != nil {
		return err
	}
	f.mu.RLock()
	ok := off >= 0 && off+int64(len(p)) <= int64(len(f.data))
	if ok {
		copy(p, f.data[off:])
	}
	f.mu.RUnlock()
	if !ok {
		return ErrNotFound
	}
	n := d.ops(len(p))
	d.reads.Add(int64(n))
	d.readBytes.Add(int64(len(p)))
	d.charge(d.cfg.ReadLatency, n)
	return nil
}

// ChargeRead charges read latency and counters for an n-byte access without
// transferring data. Stores that keep their working structures in Go memory
// but model disk residency (the Disk Row Store of architecture C) use it.
func (d *Device) ChargeRead(n int) {
	ops := d.ops(n)
	d.reads.Add(int64(ops))
	d.readBytes.Add(int64(n))
	d.charge(d.cfg.ReadLatency, ops)
}

// ChargeWrite is ChargeRead for writes.
func (d *Device) ChargeWrite(n int) {
	ops := d.ops(n)
	d.writes.Add(int64(ops))
	d.writeBytes.Add(int64(n))
	d.charge(d.cfg.WriteLatency, ops)
}

// Size returns the current length of the named file (0 if absent). It does
// not charge latency: it models cached metadata.
func (d *Device) Size(name string) int64 {
	f, err := d.file(name, false)
	if err != nil {
		return 0
	}
	f.mu.RLock()
	defer f.mu.RUnlock()
	return int64(len(f.data))
}

// Truncate resets the named file to empty, charging one write. It fails
// with ErrCrashed on a crashed device.
func (d *Device) Truncate(name string) error {
	if fs := d.faultState(); fs != nil && fs.isCrashed() {
		return ErrCrashed
	}
	f, err := d.file(name, true)
	if err != nil {
		return err
	}
	f.mu.Lock()
	f.data = f.data[:0]
	f.mu.Unlock()
	d.writes.Add(1)
	d.charge(d.cfg.WriteLatency, 1)
	return nil
}

// TruncateTo shrinks the named file to size bytes, charging one write.
// Recovery uses it to cut a torn tail off a log so new appends extend a
// clean record boundary. Growing a file is not supported; a size at or
// beyond the current length is a no-op.
func (d *Device) TruncateTo(name string, size int64) error {
	if fs := d.faultState(); fs != nil && fs.isCrashed() {
		return ErrCrashed
	}
	f, err := d.file(name, false)
	if err != nil {
		return err
	}
	if size < 0 {
		size = 0
	}
	f.mu.Lock()
	if size < int64(len(f.data)) {
		f.data = f.data[:size]
	}
	f.mu.Unlock()
	d.writes.Add(1)
	d.charge(d.cfg.WriteLatency, 1)
	return nil
}

// Remove deletes the named file without charging latency.
func (d *Device) Remove(name string) {
	d.mu.Lock()
	delete(d.files, name)
	d.mu.Unlock()
}

// Stats is a snapshot of device counters.
type Stats struct {
	ReadOps, WriteOps     int64
	ReadBytes, WriteBytes int64

	// Fault-injection outcomes (zero on a device that was never armed).
	FaultsInjected     int64 // clean ErrInjected write failures
	TornWrites         int64 // appends that persisted only a prefix (incl. the crash tear)
	TornBytesDiscarded int64 // payload bytes those tears destroyed
	Crashes            int64 // transitions into the crashed state
}

// Stats returns the accumulated counters.
func (d *Device) Stats() Stats {
	return Stats{
		ReadOps:            d.reads.Load(),
		WriteOps:           d.writes.Load(),
		ReadBytes:          d.readBytes.Load(),
		WriteBytes:         d.writeBytes.Load(),
		FaultsInjected:     d.faultsInjected.Load(),
		TornWrites:         d.tornWrites.Load(),
		TornBytesDiscarded: d.tornBytes.Load(),
		Crashes:            d.crashes.Load(),
	}
}
