package disk

import (
	"bytes"
	"errors"
	"testing"
)

func TestFaultWriteErrorPersistsNothing(t *testing.T) {
	d := New(MemConfig())
	d.SetFaultPlan(&FaultPlan{Seed: 1, Rules: []FaultRule{{File: "log", WriteErrRate: 1.0}}})
	if _, err := d.Append("log", []byte("hello")); !errors.Is(err, ErrInjected) {
		t.Fatalf("err = %v, want ErrInjected", err)
	}
	if n := d.Size("log"); n != 0 {
		t.Fatalf("injected error persisted %d bytes", n)
	}
	// Other files are untouched by the per-file rule.
	if _, err := d.Append("other", []byte("ok")); err != nil {
		t.Fatalf("unmatched file failed: %v", err)
	}
}

func TestFaultTornWriteKeepsPrefix(t *testing.T) {
	d := New(MemConfig())
	d.SetFaultPlan(&FaultPlan{Seed: 7, Rules: []FaultRule{{TornRate: 1.0}}})
	payload := bytes.Repeat([]byte("x"), 100)
	if _, err := d.Append("f", payload); !errors.Is(err, ErrTorn) {
		t.Fatalf("err = %v, want ErrTorn", err)
	}
	if n := d.Size("f"); n >= 100 {
		t.Fatalf("torn write persisted all %d bytes", n)
	}
	// The device survives a torn write; disarming heals it.
	d.SetFaultPlan(nil)
	if _, err := d.Append("f", []byte("y")); err != nil {
		t.Fatal(err)
	}
}

func TestFaultCrashAfterNWritesIsDeterministic(t *testing.T) {
	run := func() (int64, error, int64) {
		d := New(MemConfig())
		d.SetFaultPlan(&FaultPlan{Seed: 42, CrashAfterWrites: 3})
		var lastErr error
		ok := int64(0)
		for i := 0; i < 5; i++ {
			if _, err := d.Append("f", []byte("0123456789")); err != nil {
				lastErr = err
				break
			}
			ok++
		}
		return ok, lastErr, d.Size("f")
	}
	ok1, err1, size1 := run()
	ok2, err2, size2 := run()
	if ok1 != 2 || !errors.Is(err1, ErrCrashed) {
		t.Fatalf("crashed after %d ok writes (err %v), want 2", ok1, err1)
	}
	if ok1 != ok2 || !errors.Is(err2, ErrCrashed) || size1 != size2 {
		t.Fatalf("non-deterministic crash: (%d,%v,%d) vs (%d,%v,%d)", ok1, err1, size1, ok2, err2, size2)
	}
	if size1 >= 30 {
		t.Fatalf("crashing write persisted fully: size %d", size1)
	}
}

// TestFaultCounters verifies each failure mode bumps exactly its counter:
// a clean injected error, a torn write (with discarded-byte accounting), the
// crash transition (counted once, and also as a tear), and already-crashed
// rejections (counted never — the device is dead, not failing anew).
func TestFaultCounters(t *testing.T) {
	d := New(MemConfig())

	d.SetFaultPlan(&FaultPlan{Seed: 1, Rules: []FaultRule{{WriteErrRate: 1.0}}})
	if _, err := d.Append("f", []byte("abc")); !errors.Is(err, ErrInjected) {
		t.Fatalf("err = %v, want ErrInjected", err)
	}
	if s := d.Stats(); s.FaultsInjected != 1 || s.TornWrites != 0 || s.TornBytesDiscarded != 0 || s.Crashes != 0 {
		t.Fatalf("after injected error: %+v", s)
	}

	d.SetFaultPlan(&FaultPlan{Seed: 7, Rules: []FaultRule{{TornRate: 1.0}}})
	if _, err := d.Append("f", bytes.Repeat([]byte("x"), 100)); !errors.Is(err, ErrTorn) {
		t.Fatalf("err = %v, want ErrTorn", err)
	}
	s := d.Stats()
	if s.TornWrites != 1 || s.TornBytesDiscarded < 1 || s.Crashes != 0 {
		t.Fatalf("after torn write: %+v", s)
	}
	// The injected error persisted nothing, so the media holds exactly the
	// torn prefix: discarded + kept must cover the 100-byte payload.
	if kept := d.Size("f"); s.TornBytesDiscarded != 100-kept {
		t.Fatalf("discarded %d bytes but media kept %d of 100", s.TornBytesDiscarded, kept)
	}

	d.SetFaultPlan(&FaultPlan{Seed: 3, CrashAfterWrites: 1})
	if _, err := d.Append("f", []byte("boom")); !errors.Is(err, ErrCrashed) {
		t.Fatalf("err = %v, want ErrCrashed", err)
	}
	if _, err := d.Append("f", []byte("still dead")); !errors.Is(err, ErrCrashed) {
		t.Fatalf("err = %v, want ErrCrashed", err)
	}
	s = d.Stats()
	if s.Crashes != 1 || s.TornWrites != 2 || s.FaultsInjected != 1 {
		t.Fatalf("after crash + rejected write: %+v", s)
	}
}

func TestCrashedDeviceFailsUntilRevive(t *testing.T) {
	d := New(MemConfig())
	if _, err := d.Append("f", []byte("durable")); err != nil {
		t.Fatal(err)
	}
	d.SetFaultPlan(&FaultPlan{Seed: 3, CrashAfterWrites: 1})
	if _, err := d.Append("f", []byte("boom")); !errors.Is(err, ErrCrashed) {
		t.Fatalf("err = %v, want ErrCrashed", err)
	}
	if !d.Crashed() {
		t.Fatal("device should report crashed")
	}
	buf := make([]byte, 7)
	if err := d.ReadAt("f", buf, 0); !errors.Is(err, ErrCrashed) {
		t.Fatalf("read on crashed device: %v, want ErrCrashed", err)
	}
	if err := d.Truncate("f"); !errors.Is(err, ErrCrashed) {
		t.Fatalf("truncate on crashed device: %v, want ErrCrashed", err)
	}
	d.Revive()
	if d.Crashed() {
		t.Fatal("revived device still crashed")
	}
	if err := d.ReadAt("f", buf, 0); err != nil || string(buf) != "durable" {
		t.Fatalf("pre-crash bytes lost: %q, %v", buf, err)
	}
	if _, err := d.Append("f", []byte("more")); err != nil {
		t.Fatal(err)
	}
}
