package disk

import (
	"bytes"
	"testing"
	"time"
)

func TestAppendReadRoundTrip(t *testing.T) {
	d := New(MemConfig())
	off1, err := d.Append("f", []byte("hello"))
	if err != nil || off1 != 0 {
		t.Fatalf("Append = (%d,%v)", off1, err)
	}
	off2, _ := d.Append("f", []byte("world"))
	if off2 != 5 {
		t.Fatalf("second offset = %d, want 5", off2)
	}
	buf := make([]byte, 10)
	if err := d.ReadAt("f", buf, 0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, []byte("helloworld")) {
		t.Fatalf("read %q", buf)
	}
	if d.Size("f") != 10 {
		t.Fatalf("Size = %d", d.Size("f"))
	}
}

func TestReadErrors(t *testing.T) {
	d := New(MemConfig())
	if err := d.ReadAt("missing", make([]byte, 1), 0); err != ErrNotFound {
		t.Fatalf("missing file: %v", err)
	}
	d.Append("f", []byte("ab"))
	if err := d.ReadAt("f", make([]byte, 3), 0); err != ErrNotFound {
		t.Fatalf("past-end read: %v", err)
	}
	if err := d.ReadAt("f", make([]byte, 1), -1); err != ErrNotFound {
		t.Fatalf("negative offset: %v", err)
	}
}

func TestTruncateAndRemove(t *testing.T) {
	d := New(MemConfig())
	d.Append("f", []byte("abc"))
	d.Truncate("f")
	if d.Size("f") != 0 {
		t.Fatal("Truncate did not clear file")
	}
	d.Remove("f")
	if err := d.ReadAt("f", make([]byte, 1), 0); err != ErrNotFound {
		t.Fatal("Remove did not delete file")
	}
}

func TestCountersAndBlockMath(t *testing.T) {
	d := New(Config{BytesPerOp: 4})
	d.Append("f", make([]byte, 10)) // 3 ops of 4 bytes
	st := d.Stats()
	if st.WriteOps != 3 || st.WriteBytes != 10 {
		t.Fatalf("write stats %+v", st)
	}
	d.ReadAt("f", make([]byte, 5), 0) // 2 ops
	st = d.Stats()
	if st.ReadOps != 2 || st.ReadBytes != 5 {
		t.Fatalf("read stats %+v", st)
	}
}

func TestLatencyCharged(t *testing.T) {
	d := New(Config{WriteLatency: 2 * time.Millisecond, BytesPerOp: 4096})
	start := time.Now()
	d.Append("f", []byte("x"))
	if el := time.Since(start); el < 2*time.Millisecond {
		t.Fatalf("write returned in %v, want >= 2ms charge", el)
	}
}

func TestConcurrentAppends(t *testing.T) {
	d := New(MemConfig())
	done := make(chan struct{})
	for i := 0; i < 8; i++ {
		go func() {
			for j := 0; j < 100; j++ {
				d.Append("f", []byte("0123456789"))
			}
			done <- struct{}{}
		}()
	}
	for i := 0; i < 8; i++ {
		<-done
	}
	if d.Size("f") != 8000 {
		t.Fatalf("Size = %d, want 8000", d.Size("f"))
	}
}
