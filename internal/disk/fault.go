// Fault injection for the simulated device.
//
// The HTAP survey's durability claims (Table 2 pairs every TP technique with
// "logging") are only meaningful if recovery is exercised under failures; a
// device that cannot fail makes every WAL a formality. A FaultPlan arms a
// device with three failure modes:
//
//   - injected write errors: an Append fails cleanly, persisting nothing
//     (a transient EIO);
//   - torn writes: an Append persists only a prefix of the payload before
//     failing (a partial sector flush at power loss);
//   - crash-after-N-writes: a deterministic trigger — the Nth Append tears
//     and the device enters the crashed state, after which every read and
//     write fails with ErrCrashed until Revive.
//
// All randomness is drawn from one seeded generator, so a fixed plan plus a
// fixed operation sequence reproduces the exact same failure — chaos tests
// stay deterministic. Revive models a restart: the machine comes back, the
// media (including any torn tail) survives, the plan is disarmed.
package disk

import (
	"errors"
	"math/rand"
	"sync"
)

// Fault errors. ErrInjected is a clean failure (nothing persisted, safe to
// retry); ErrTorn and ErrCrashed leave a prefix of the write on the media.
var (
	ErrInjected = errors.New("disk: injected write error")
	ErrTorn     = errors.New("disk: torn write")
	ErrCrashed  = errors.New("disk: device crashed")
)

// FaultRule applies failure rates to one file (or every file when File is
// empty). The first matching rule wins.
type FaultRule struct {
	File         string  // exact file name; "" matches every file
	WriteErrRate float64 // probability an Append fails with ErrInjected
	TornRate     float64 // probability an Append persists a prefix and fails with ErrTorn
}

// FaultPlan arms a device with reproducible failures.
type FaultPlan struct {
	Seed  int64
	Rules []FaultRule
	// CrashAfterWrites, when > 0, crashes the device on the Nth Append
	// (counting every file): that write persists only a seeded-random
	// prefix, the call fails with ErrCrashed, and all subsequent reads and
	// writes fail with ErrCrashed until Revive.
	CrashAfterWrites int64
}

// faultState is the armed runtime of a plan.
type faultState struct {
	mu      sync.Mutex
	plan    FaultPlan
	rng     *rand.Rand
	writes  int64
	crashed bool
}

// rule returns the first rule matching name, or nil.
func (fs *faultState) rule(name string) *FaultRule {
	for i := range fs.plan.Rules {
		if fs.plan.Rules[i].File == "" || fs.plan.Rules[i].File == name {
			return &fs.plan.Rules[i]
		}
	}
	return nil
}

// faultEvent classifies what onWrite did, so Device.Append can bump the
// matching counter. A crash is counted once, at the transition; writes
// rejected because the device is already dead are not new faults.
type faultEvent int

const (
	faultNone     faultEvent = iota // healthy write, or already-crashed rejection
	faultInjected                   // clean ErrInjected failure
	faultTorn                       // torn append (prefix persisted)
	faultCrash                      // the transition into the crashed state
)

// onWrite decides the fate of an n-byte Append to name. It returns
// keep == -1 for a healthy write; otherwise the write fails with err after
// persisting p[:keep]. evt classifies the failure for the fault counters.
func (fs *faultState) onWrite(name string, n int) (keep int, evt faultEvent, err error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if fs.crashed {
		return 0, faultNone, ErrCrashed
	}
	fs.writes++
	if fs.plan.CrashAfterWrites > 0 && fs.writes >= fs.plan.CrashAfterWrites {
		fs.crashed = true
		return fs.tornPrefix(n), faultCrash, ErrCrashed
	}
	if r := fs.rule(name); r != nil {
		if r.WriteErrRate > 0 && fs.rng.Float64() < r.WriteErrRate {
			return 0, faultInjected, ErrInjected
		}
		if r.TornRate > 0 && fs.rng.Float64() < r.TornRate {
			return fs.tornPrefix(n), faultTorn, ErrTorn
		}
	}
	return -1, faultNone, nil
}

// tornPrefix picks how many bytes of an n-byte write survive a tear.
func (fs *faultState) tornPrefix(n int) int {
	if n <= 0 {
		return 0
	}
	return fs.rng.Intn(n) // strictly less than n: the write never completes
}

func (fs *faultState) isCrashed() bool {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	return fs.crashed
}

// SetFaultPlan arms the device with plan (nil disarms). Arming resets the
// write counter and the crashed state.
func (d *Device) SetFaultPlan(p *FaultPlan) {
	d.faultMu.Lock()
	defer d.faultMu.Unlock()
	if p == nil {
		d.fault = nil
		return
	}
	d.fault = &faultState{plan: *p, rng: rand.New(rand.NewSource(p.Seed))}
}

// Crashed reports whether the device is in the crashed state.
func (d *Device) Crashed() bool {
	fs := d.faultState()
	return fs != nil && fs.isCrashed()
}

// Revive models a restart after a crash: the stored bytes (including any
// torn tail) survive, the fault plan is disarmed, and the device serves
// reads and writes again. Recovery paths call it before replaying logs.
func (d *Device) Revive() {
	d.faultMu.Lock()
	d.fault = nil
	d.faultMu.Unlock()
}

func (d *Device) faultState() *faultState {
	d.faultMu.Lock()
	defer d.faultMu.Unlock()
	return d.fault
}
