// Package freshness quantifies data freshness, the metric every trade-off
// in the paper is measured against.
//
// Freshness is tracked as the gap between two watermarks: the newest commit
// timestamp produced by the OLTP side and the newest commit timestamp
// visible to the OLAP side (merged into the column store or covered by the
// scanned delta). The package reports both the instantaneous staleness in
// timestamps and in wall time, following Bouzeghoub's currency-based
// definition the paper cites [9].
package freshness

import (
	"sync"
	"time"
)

// Tracker records commit and apply watermarks with their wall-clock times.
type Tracker struct {
	mu         sync.Mutex
	commitTS   uint64
	commitAt   time.Time
	appliedTS  uint64
	appliedAt  time.Time
	tsTimes    map[uint64]time.Time // commitTS -> commit wall time (ring)
	ring       []uint64
	ringCap    int
	maxLagSeen time.Duration
}

// NewTracker returns a tracker remembering the wall-clock times of the most
// recent commits for lag-in-time estimation.
func NewTracker() *Tracker {
	return &Tracker{tsTimes: make(map[uint64]time.Time), ringCap: 8192}
}

// Committed records that commitTS was produced by the OLTP side now.
func (t *Tracker) Committed(commitTS uint64) {
	now := time.Now()
	t.mu.Lock()
	if commitTS > t.commitTS {
		t.commitTS = commitTS
		t.commitAt = now
	}
	t.tsTimes[commitTS] = now
	t.ring = append(t.ring, commitTS)
	if len(t.ring) > t.ringCap {
		old := t.ring[0]
		t.ring = t.ring[1:]
		delete(t.tsTimes, old)
	}
	t.mu.Unlock()
}

// Applied records that the OLAP side now covers everything up to appliedTS.
func (t *Tracker) Applied(appliedTS uint64) {
	now := time.Now()
	t.mu.Lock()
	if appliedTS > t.appliedTS {
		t.appliedTS = appliedTS
		t.appliedAt = now
	}
	if lag := t.lagTimeLocked(now); lag > t.maxLagSeen {
		t.maxLagSeen = lag
	}
	t.mu.Unlock()
}

// Snapshot is an instantaneous freshness reading.
type Snapshot struct {
	CommitTS  uint64
	AppliedTS uint64
	// LagTS is the staleness in commit timestamps: how many commits the
	// OLAP view is behind.
	LagTS uint64
	// LagTime estimates how old the freshest invisible commit is.
	LagTime time.Duration
}

// Fresh reports whether the OLAP side covers all commits.
func (s Snapshot) Fresh() bool { return s.LagTS == 0 }

// Read returns the current freshness snapshot.
func (t *Tracker) Read() Snapshot {
	t.mu.Lock()
	applied := t.appliedTS
	t.mu.Unlock()
	return t.ReadWithApplied(applied)
}

// ReadWithApplied computes a snapshot against an externally supplied
// applied watermark; engines whose analytical view covers more (a shared
// delta scan) or less (a lagging replica) than the tracker's own apply
// events use it.
func (t *Tracker) ReadWithApplied(applied uint64) Snapshot {
	now := time.Now()
	t.mu.Lock()
	defer t.mu.Unlock()
	s := Snapshot{CommitTS: t.commitTS, AppliedTS: applied}
	if t.commitTS > applied {
		s.LagTS = t.commitTS - applied
		s.LagTime = t.lagTimeAgainstLocked(now, applied)
	}
	return s
}

// lagTimeLocked estimates time lag against the tracker's own applied
// watermark.
func (t *Tracker) lagTimeLocked(now time.Time) time.Duration {
	return t.lagTimeAgainstLocked(now, t.appliedTS)
}

// lagTimeAgainstLocked estimates the age of the oldest commit newer than
// applied, from remembered commit times.
func (t *Tracker) lagTimeAgainstLocked(now time.Time, applied uint64) time.Duration {
	if t.commitTS <= applied {
		return 0
	}
	var oldest time.Time
	for _, ts := range t.ring {
		if ts > applied {
			oldest = t.tsTimes[ts]
			break // ring is append-ordered, so the first hit is the oldest
		}
	}
	if oldest.IsZero() {
		return 0
	}
	return now.Sub(oldest)
}

// MaxLag returns the worst lag-in-time observed at apply points.
func (t *Tracker) MaxLag() time.Duration {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.maxLagSeen
}
