package freshness

import (
	"testing"
	"time"
)

func TestFreshWhenCaughtUp(t *testing.T) {
	tr := NewTracker()
	tr.Committed(5)
	tr.Applied(5)
	s := tr.Read()
	if !s.Fresh() || s.LagTS != 0 || s.LagTime != 0 {
		t.Fatalf("snapshot = %+v", s)
	}
}

func TestLagCountsCommits(t *testing.T) {
	tr := NewTracker()
	for ts := uint64(1); ts <= 10; ts++ {
		tr.Committed(ts)
	}
	tr.Applied(4)
	s := tr.Read()
	if s.LagTS != 6 {
		t.Fatalf("lag = %d, want 6", s.LagTS)
	}
	if s.Fresh() {
		t.Fatal("lagging snapshot reported fresh")
	}
}

func TestLagTimeGrows(t *testing.T) {
	tr := NewTracker()
	tr.Committed(1)
	time.Sleep(10 * time.Millisecond)
	s := tr.Read()
	if s.LagTime < 8*time.Millisecond {
		t.Fatalf("lag time = %v, want >= ~10ms", s.LagTime)
	}
	tr.Applied(1)
	if got := tr.Read().LagTime; got != 0 {
		t.Fatalf("lag time after apply = %v", got)
	}
}

func TestWatermarksMonotonic(t *testing.T) {
	tr := NewTracker()
	tr.Committed(10)
	tr.Committed(5) // regression ignored for the max watermark
	tr.Applied(8)
	tr.Applied(3)
	s := tr.Read()
	if s.CommitTS != 10 || s.AppliedTS != 8 {
		t.Fatalf("snapshot = %+v", s)
	}
}

func TestMaxLagRecorded(t *testing.T) {
	tr := NewTracker()
	tr.Committed(1)
	time.Sleep(5 * time.Millisecond)
	tr.Committed(2)
	tr.Applied(1) // still lagging behind commit 2, lag measured here
	if tr.MaxLag() <= 0 {
		t.Fatal("max lag not recorded")
	}
}

func TestRingEviction(t *testing.T) {
	tr := NewTracker()
	tr.ringCap = 4
	for ts := uint64(1); ts <= 10; ts++ {
		tr.Committed(ts)
	}
	if len(tr.tsTimes) > 4 {
		t.Fatalf("ring grew to %d", len(tr.tsTimes))
	}
	// Lag is still measurable from the remembered suffix.
	tr.Applied(7)
	if tr.Read().LagTS != 3 {
		t.Fatalf("lag = %d", tr.Read().LagTS)
	}
}
