// Package micro implements the two HTAP micro-benchmarks the paper's §2.3
// surveys, plus layout-level primitives shared by the ablation benches.
//
//   - ADAPT (Arulraj et al., "Bridging the Archipelago between Row-stores
//     and Column-stores for Hybrid Workloads"): a wide table scanned with
//     varying projectivity and probed with point lookups, comparing row,
//     column, and hybrid layouts.
//   - HAP (Athanassoulis et al., "Optimal Column Layout for Hybrid
//     Workloads"): a mixed update/scan workload swept over the update
//     fraction, showing where each layout wins.
package micro

import (
	"context"
	"math/rand"
	"time"

	"htap/internal/colstore"
	"htap/internal/exec"
	"htap/internal/rowstore"
	"htap/internal/txn"
	"htap/internal/types"
)

// Layout identifies a physical design.
type Layout uint8

// Physical layouts.
const (
	RowLayout Layout = iota + 1
	ColLayout
	HybridLayout // row store for point ops, column store for scans
)

// String implements fmt.Stringer.
func (l Layout) String() string {
	return [...]string{"?", "row", "column", "hybrid"}[l]
}

// Dataset is a generated wide table materialized in both layouts.
type Dataset struct {
	Schema *types.Schema
	Rows   int
	Cols   int
	Row    *rowstore.Store
	Col    *colstore.Table
	Mgr    *txn.Manager
}

// NewDataset builds a table with one key column plus cols int64 attribute
// columns, loaded into a row store and a column store.
func NewDataset(rows, cols int, seed int64) *Dataset {
	colDefs := make([]types.Column, 0, cols+1)
	colDefs = append(colDefs, types.Column{Name: "k", Type: types.Int})
	for i := 0; i < cols; i++ {
		colDefs = append(colDefs, types.Column{Name: attr(i), Type: types.Int})
	}
	schema := types.NewSchema("adapt", 0, colDefs...)
	d := &Dataset{
		Schema: schema, Rows: rows, Cols: cols,
		Row: rowstore.New(1, schema),
		Col: colstore.NewTable(schema),
		Mgr: txn.NewManager(),
	}
	rng := rand.New(rand.NewSource(seed))
	builder := d.Col.NewBuilder()
	for r := 0; r < rows; r++ {
		row := make(types.Row, cols+1)
		row[0] = types.NewInt(int64(r))
		for c := 0; c < cols; c++ {
			row[c+1] = types.NewInt(int64(rng.Intn(1000)))
		}
		if err := d.Row.Load(row); err != nil {
			panic(err)
		}
		builder.Add(row)
	}
	builder.Flush()
	return d
}

func attr(i int) string { return "a" + string(rune('0'+i/10)) + string(rune('0'+i%10)) }

// projection returns the first n attribute column names.
func (d *Dataset) projection(n int) []string {
	if n <= 0 || n > d.Cols {
		n = d.Cols
	}
	out := make([]string, n)
	for i := 0; i < n; i++ {
		out[i] = attr(i)
	}
	return out
}

// source builds the scan source for a layout.
func (d *Dataset) source(l Layout, cols []string, pred *exec.ScanPred) exec.Source {
	if l == RowLayout {
		return exec.NewRowScan(context.Background(), d.Row, d.Mgr.Oracle().Watermark(), cols, pred)
	}
	return exec.NewColScan(context.Background(), d.Col, cols, pred, nil)
}

// ScanResult reports one scan measurement.
type ScanResult struct {
	Layout   Layout
	Duration time.Duration
	Sum      int64 // checksum so layouts can be cross-validated
}

// RunScan aggregates SUM over projCols attribute columns with an optional
// key-range selectivity, under the given layout (hybrid scans use the
// column store).
func (d *Dataset) RunScan(l Layout, projCols int, selectivity float64) ScanResult {
	cols := d.projection(projCols)
	var pred *exec.ScanPred
	var filter exec.Expr
	if selectivity > 0 && selectivity < 1 {
		hi := int64(float64(d.Rows) * selectivity)
		pred = &exec.ScanPred{Col: "k", Lo: 0, Hi: hi - 1}
		filter = exec.Between(exec.ColName("k"), 0, hi-1)
		cols = append([]string{"k"}, cols...)
	}
	scanLayout := l
	if l == HybridLayout {
		scanLayout = ColLayout
	}
	start := time.Now()
	p := exec.From(d.source(scanLayout, cols, pred))
	if filter != nil {
		p = p.Filter(filter)
	}
	aggCol := cols[len(cols)-1]
	rows := p.Agg(nil, exec.Agg{Kind: exec.Sum, Expr: exec.ColName(aggCol), Name: "s"}).Run()
	return ScanResult{Layout: l, Duration: time.Since(start), Sum: rows[0][0].Int()}
}

// RunPoints performs n random point lookups (hybrid uses the row store)
// and returns the elapsed time.
func (d *Dataset) RunPoints(l Layout, n int, seed int64) time.Duration {
	rng := rand.New(rand.NewSource(seed))
	ts := d.Mgr.Oracle().Watermark()
	start := time.Now()
	for i := 0; i < n; i++ {
		key := int64(rng.Intn(d.Rows))
		switch l {
		case ColLayout:
			d.Col.GetKey(key)
		default: // row and hybrid
			d.Row.GetAt(ts, key)
		}
	}
	return time.Since(start)
}

// RunUpdates applies n single-row updates (hybrid and row write the row
// store; column rewrites the row into a fresh segment, the expensive path).
func (d *Dataset) RunUpdates(l Layout, n int, seed int64) time.Duration {
	rng := rand.New(rand.NewSource(seed))
	start := time.Now()
	for i := 0; i < n; i++ {
		key := int64(rng.Intn(d.Rows))
		row := make(types.Row, d.Cols+1)
		row[0] = types.NewInt(key)
		for c := 0; c < d.Cols; c++ {
			row[c+1] = types.NewInt(int64(rng.Intn(1000)))
		}
		switch l {
		case ColLayout:
			d.Col.AppendRows([]types.Row{row})
		default:
			tx := d.Mgr.Begin()
			if err := d.Row.Update(tx, row); err != nil {
				tx.Abort()
				continue
			}
			tx.Commit(func(ts uint64, ws []txn.Write) error {
				d.Row.Apply(ts, ws)
				return nil
			})
		}
	}
	return time.Since(start)
}

// ADAPTPoint is one cell of the ADAPT sweep.
type ADAPTPoint struct {
	Projectivity float64
	Layout       Layout
	ScanTime     time.Duration
	PointTime    time.Duration
}

// RunADAPT sweeps projectivity for each layout over a fresh dataset,
// reporting scan and point-op costs — the benchmark's signature plot: rows
// win point ops and full-width scans of few rows; columns win narrow
// projections.
func RunADAPT(rows, cols int, projectivities []float64, pointOps int) []ADAPTPoint {
	d := NewDataset(rows, cols, 1)
	var out []ADAPTPoint
	for _, p := range projectivities {
		n := int(float64(cols) * p)
		if n < 1 {
			n = 1
		}
		for _, l := range []Layout{RowLayout, ColLayout, HybridLayout} {
			sr := d.RunScan(l, n, 1.0)
			pt := d.RunPoints(l, pointOps, 2)
			out = append(out, ADAPTPoint{
				Projectivity: p, Layout: l, ScanTime: sr.Duration, PointTime: pt,
			})
		}
	}
	return out
}

// HAPPoint is one cell of the HAP sweep.
type HAPPoint struct {
	UpdateFraction float64
	Layout         Layout
	Ops            int
	Duration       time.Duration
	OpsPerSec      float64
}

// RunHAP sweeps the update fraction of a mixed update/scan workload for
// each layout.
func RunHAP(rows, cols, ops int, updateFractions []float64) []HAPPoint {
	var out []HAPPoint
	for _, uf := range updateFractions {
		for _, l := range []Layout{RowLayout, ColLayout, HybridLayout} {
			d := NewDataset(rows, cols, 3)
			rng := rand.New(rand.NewSource(4))
			start := time.Now()
			for i := 0; i < ops; i++ {
				if rng.Float64() < uf {
					d.RunUpdates(l, 1, int64(i))
				} else {
					d.RunScan(l, cols/4, 1.0)
				}
			}
			el := time.Since(start)
			out = append(out, HAPPoint{
				UpdateFraction: uf, Layout: l, Ops: ops, Duration: el,
				OpsPerSec: float64(ops) / el.Seconds(),
			})
		}
	}
	return out
}
