package micro

import "testing"

func TestDatasetLayoutsAgree(t *testing.T) {
	d := NewDataset(5000, 8, 1)
	row := d.RunScan(RowLayout, 4, 1.0)
	col := d.RunScan(ColLayout, 4, 1.0)
	hyb := d.RunScan(HybridLayout, 4, 1.0)
	if row.Sum != col.Sum || col.Sum != hyb.Sum {
		t.Fatalf("layout checksums diverge: row=%d col=%d hybrid=%d", row.Sum, col.Sum, hyb.Sum)
	}
	if row.Sum == 0 {
		t.Fatal("empty checksum")
	}
}

func TestSelectiveScanAgrees(t *testing.T) {
	d := NewDataset(5000, 8, 1)
	row := d.RunScan(RowLayout, 2, 0.1)
	col := d.RunScan(ColLayout, 2, 0.1)
	if row.Sum != col.Sum {
		t.Fatalf("selective checksums diverge: %d vs %d", row.Sum, col.Sum)
	}
}

func TestColumnBeatsRowOnNarrowScan(t *testing.T) {
	d := NewDataset(100_000, 16, 1)
	// Warm both paths once.
	d.RunScan(RowLayout, 1, 1.0)
	d.RunScan(ColLayout, 1, 1.0)
	row := d.RunScan(RowLayout, 1, 1.0)
	col := d.RunScan(ColLayout, 1, 1.0)
	if col.Duration >= row.Duration {
		t.Fatalf("narrow projection: column %v !< row %v", col.Duration, row.Duration)
	}
}

func TestRowBeatsColumnOnPointOps(t *testing.T) {
	d := NewDataset(100_000, 16, 1)
	rowT := d.RunPoints(RowLayout, 5000, 7)
	colT := d.RunPoints(ColLayout, 5000, 7)
	// Column point reads materialize whole rows from 16 vectors; the row
	// store's B+-tree lookup must win.
	if rowT >= colT {
		t.Fatalf("point ops: row %v !< column %v", rowT, colT)
	}
}

func TestUpdatesApply(t *testing.T) {
	d := NewDataset(1000, 4, 1)
	before := d.RunScan(ColLayout, 4, 1.0).Sum
	d.RunUpdates(ColLayout, 200, 9)
	after := d.RunScan(ColLayout, 4, 1.0).Sum
	if before == after {
		t.Fatal("column updates had no effect")
	}
	rBefore := d.RunScan(RowLayout, 4, 1.0).Sum
	d.RunUpdates(RowLayout, 200, 9)
	rAfter := d.RunScan(RowLayout, 4, 1.0).Sum
	if rBefore == rAfter {
		t.Fatal("row updates had no effect")
	}
}

func TestRunADAPTShape(t *testing.T) {
	pts := RunADAPT(20_000, 8, []float64{0.125, 1.0}, 500)
	if len(pts) != 6 {
		t.Fatalf("points = %d, want 2 projectivities x 3 layouts", len(pts))
	}
	byKey := map[[2]interface{}]ADAPTPoint{}
	for _, p := range pts {
		byKey[[2]interface{}{p.Projectivity, p.Layout}] = p
	}
	// Hybrid point ops track the row layout (both use the row store).
	h := byKey[[2]interface{}{1.0, HybridLayout}]
	r := byKey[[2]interface{}{1.0, RowLayout}]
	if h.PointTime > r.PointTime*10 {
		t.Fatalf("hybrid point time %v way above row %v", h.PointTime, r.PointTime)
	}
}

func TestRunHAPShape(t *testing.T) {
	pts := RunHAP(2000, 8, 30, []float64{0.0, 1.0})
	if len(pts) != 6 {
		t.Fatalf("points = %d", len(pts))
	}
	for _, p := range pts {
		if p.OpsPerSec <= 0 {
			t.Fatalf("non-positive throughput: %+v", p)
		}
	}
}
