package planner

import "testing"

func base() TableInput {
	return TableInput{
		Rows: 100_000, Cols: 10, NeedCols: 10,
		Selectivity: 1.0, HasColumn: true,
	}
}

func TestWideScanPrefersColumn(t *testing.T) {
	p := DefaultCostParams()
	in := base()
	in.NeedCols = 2 // narrow projection over all rows
	d := p.Choose(in)
	if d.Path != ColPath {
		t.Fatalf("wide scan chose %s (%s)", d.Path, d.Explain())
	}
}

func TestSelectiveKeyRangePrefersRowIndex(t *testing.T) {
	p := DefaultCostParams()
	in := base()
	in.KeyRange = true
	in.Selectivity = 0.0001 // a handful of rows via the B+-tree
	d := p.Choose(in)
	if d.Path != RowPath {
		t.Fatalf("point-ish lookup chose %s (%s)", d.Path, d.Explain())
	}
}

func TestNoColumnCopyForcesRowPath(t *testing.T) {
	p := DefaultCostParams()
	in := base()
	in.HasColumn = false
	d := p.Choose(in)
	if d.Path != RowPath {
		t.Fatalf("missing columnar copy chose %s", d.Path)
	}
}

func TestDiskResidencyShiftsTowardColumn(t *testing.T) {
	p := DefaultCostParams()
	in := base()
	in.KeyRange = true
	in.Selectivity = 0.08
	in.NeedCols = 2
	mem := p.Choose(in)
	in.RowOnDisk = true
	dsk := p.Choose(in)
	if dsk.RowCost <= mem.RowCost {
		t.Fatal("disk residency did not raise row cost")
	}
	// At this selectivity the in-memory index scan wins but the disk one
	// loses: exactly Heatwave's motivation for pushdown.
	if mem.Path != RowPath || dsk.Path != ColPath {
		t.Fatalf("mem=%s disk=%s", mem.Explain(), dsk.Explain())
	}
}

func TestDeltaBacklogTaxesColumnPath(t *testing.T) {
	p := DefaultCostParams()
	in := base()
	clean := p.Choose(in)
	in.DeltaRows = 10_000_000
	dirty := p.Choose(in)
	if dirty.ColCost <= clean.ColCost {
		t.Fatal("delta backlog did not raise column cost")
	}
	if dirty.Path != RowPath {
		t.Fatalf("huge backlog still chose %s", dirty.Path)
	}
}

func TestZoneMapPruningDiscountsColumn(t *testing.T) {
	p := DefaultCostParams()
	in := base()
	in.Selectivity = 0.01
	noZone := p.ColCost(in)
	in.ZoneMapped = true
	zone := p.ColCost(in)
	if zone >= noZone {
		t.Fatalf("zone maps did not discount: %f >= %f", zone, noZone)
	}
	// The floor keeps the estimate sane at absurd selectivities.
	in.Selectivity = 1e-12
	if p.ColCost(in) <= 0 {
		t.Fatal("pruning floor violated")
	}
}

func TestHybridSPJ(t *testing.T) {
	p := DefaultCostParams()
	// Left: selective key-range lookup (orders of one customer).
	left := base()
	left.KeyRange = true
	left.Selectivity = 0.0005
	// Right: full scan of a wide fact table projecting 3 of 12 columns.
	right := base()
	right.Rows = 1_000_000
	right.Cols = 12
	right.NeedCols = 3
	ld, rd := p.ChooseSPJ(left, right)
	if ld.Path != RowPath || rd.Path != ColPath {
		t.Fatalf("SPJ = (%s, %s), want hybrid row+column", ld.Path, rd.Path)
	}
}

func TestSelectivityClamp(t *testing.T) {
	if clampSel(-1) <= 0 || clampSel(2) != 1 {
		t.Fatal("clamp broken")
	}
	p := DefaultCostParams()
	in := base()
	in.NeedCols = 0 // degenerate projection falls back to all columns
	if p.ColCost(in) <= 0 {
		t.Fatal("degenerate projection mispriced")
	}
}
