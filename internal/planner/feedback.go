package planner

import "sync"

// Feedback accumulates observed selection densities per table. Scans with
// pushed-down predicates report the fraction of each segment their
// selection vector kept (see colstore.Table.SetSelObserver); the planner
// can consume the running estimate in place of its static uniform guess —
// the paper's §2.4 complaint that HTAP optimizers "make uniform and
// independent assumptions" is exactly what this corrects.
//
// The estimate is an exponentially weighted moving average, so a workload
// shift (a predicate suddenly matching much more or less) converges within
// a few queries without oscillating on per-segment noise.
type Feedback struct {
	mu    sync.Mutex
	alpha float64
	est   map[string]float64
}

// DefaultFeedbackAlpha is the EWMA weight given to each new observation.
const DefaultFeedbackAlpha = 0.3

// NewFeedback returns an empty feedback accumulator; alpha <= 0 selects
// DefaultFeedbackAlpha.
func NewFeedback(alpha float64) *Feedback {
	if alpha <= 0 {
		alpha = DefaultFeedbackAlpha
	}
	return &Feedback{alpha: alpha, est: make(map[string]float64)}
}

// Observe folds one observed selection density (selected / scanned rows of
// one segment) into the table's estimate. Safe for concurrent use; parallel
// scan workers report from multiple goroutines.
func (f *Feedback) Observe(table string, sel float64) {
	if sel < 0 {
		sel = 0
	} else if sel > 1 {
		sel = 1
	}
	f.mu.Lock()
	if cur, ok := f.est[table]; ok {
		f.est[table] = cur + f.alpha*(sel-cur)
	} else {
		f.est[table] = sel
	}
	f.mu.Unlock()
}

// Selectivity returns the table's observed-selectivity estimate and whether
// any observation has been recorded.
func (f *Feedback) Selectivity(table string) (float64, bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	s, ok := f.est[table]
	return s, ok
}
