// Package planner implements the cost-based hybrid row/column access-path
// selection of the paper's §2.2(4)(ii): "a complex query can be decomposed
// to perform either over the row store or over the column store, then the
// results are combined. This is typical for an SPJ query that can be
// executed with a row-based index scan and a complete column-based scan."
//
// The model is the textbook one the paper critiques in §2.4 ("they make
// uniform and independent assumptions to estimate the row/column size"):
// per-row and per-column unit costs, a selectivity estimate, and an
// index-seek discount when the predicate is a primary-key range. Engines
// feed it live table statistics and obey its Decision.
package planner

import "fmt"

// Path is a chosen access path.
type Path uint8

// Access paths.
const (
	RowPath Path = iota + 1
	ColPath
)

// String implements fmt.Stringer.
func (p Path) String() string {
	switch p {
	case RowPath:
		return "row"
	case ColPath:
		return "column"
	default:
		return fmt.Sprintf("Path(%d)", uint8(p))
	}
}

// CostParams are the unit costs of the model. Defaults approximate the
// repository's engines: row access is pointer chasing over version chains,
// column access is a tight decode loop, disk residency multiplies row
// costs, and unmerged delta rows tax the column path.
type CostParams struct {
	RowSeek      float64 // B+-tree descend for an index scan
	RowPerRow    float64 // visiting one row (version resolution + copy)
	ColPerCell   float64 // decoding one (row, column) cell
	DeltaPerRow  float64 // overlaying one unmerged delta row
	RowDiskMult  float64 // multiplier when the row store is disk-backed
	ZonePruneMin float64 // floor on the zone-map pruning factor
}

// DefaultCostParams returns calibrated defaults.
func DefaultCostParams() CostParams {
	return CostParams{
		RowSeek:      50,
		RowPerRow:    1.0,
		ColPerCell:   0.12,
		DeltaPerRow:  1.5,
		RowDiskMult:  8,
		ZonePruneMin: 0.05,
	}
}

// TableInput describes one scan the planner must place.
type TableInput struct {
	Rows        int     // live row count
	Cols        int     // total columns in the schema
	NeedCols    int     // columns the query touches
	Selectivity float64 // estimated fraction of rows matching the predicate
	KeyRange    bool    // predicate is a primary-key range (index-scannable)
	ZoneMapped  bool    // predicate column is zone-mapped (segments prune)
	RowOnDisk   bool    // the row store charges I/O per row
	DeltaRows   int     // unmerged delta rows the column path must overlay
	HasColumn   bool    // a columnar copy of this table exists at all
}

// Decision is the planner's verdict for one scan.
type Decision struct {
	Path    Path
	RowCost float64
	ColCost float64
}

// RowCost estimates the row-path cost for in.
func (p CostParams) RowCost(in TableInput) float64 {
	perRow := p.RowPerRow
	if in.RowOnDisk {
		perRow *= p.RowDiskMult
	}
	rows := float64(in.Rows)
	if in.KeyRange {
		// Index scan touches only the selected range.
		sel := clampSel(in.Selectivity)
		return p.RowSeek + rows*sel*perRow
	}
	return rows * perRow
}

// ColCost estimates the column-path cost for in.
func (p CostParams) ColCost(in TableInput) float64 {
	if !in.HasColumn {
		return inf
	}
	rows := float64(in.Rows)
	frac := 1.0
	if in.ZoneMapped {
		// Zone maps skip segments outside the predicate range; approximate
		// the pruning factor by the selectivity with a floor.
		frac = clampSel(in.Selectivity)
		if frac < p.ZonePruneMin {
			frac = p.ZonePruneMin
		}
	}
	need := in.NeedCols
	if need <= 0 || need > in.Cols {
		need = in.Cols
	}
	return rows*frac*float64(need)*p.ColPerCell + float64(in.DeltaRows)*p.DeltaPerRow
}

const inf = 1e30

func clampSel(s float64) float64 {
	if s <= 0 {
		return 1e-4
	}
	if s > 1 {
		return 1
	}
	return s
}

// Choose picks the cheaper path for one scan.
func (p CostParams) Choose(in TableInput) Decision {
	d := Decision{RowCost: p.RowCost(in), ColCost: p.ColCost(in)}
	if d.RowCost <= d.ColCost {
		d.Path = RowPath
	} else {
		d.Path = ColPath
	}
	return d
}

// ChooseSPJ places both sides of a select-project-join independently. The
// classic hybrid plan emerges naturally: a selective key-range side goes to
// the row index, the wide scan side goes to the column store.
func (p CostParams) ChooseSPJ(left, right TableInput) (Decision, Decision) {
	return p.Choose(left), p.Choose(right)
}

// Explain renders a decision for logs and the repro harness.
func (d Decision) Explain() string {
	return fmt.Sprintf("path=%s rowCost=%.0f colCost=%.0f", d.Path, d.RowCost, d.ColCost)
}
