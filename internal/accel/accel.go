// Package accel simulates the heterogeneous CPU/GPU execution of the
// paper's §2.2(4)(iii) (RateupDB, Caldera): "these techniques utilize the
// task-parallel nature of CPUs and the data-parallel nature of GPUs for
// handling OLTP and OLAP, respectively."
//
// No GPU is available (DESIGN.md "Substitutions"), so a Device is a cost
// model: a fixed kernel-launch overhead, a PCIe-like transfer cost, and a
// data-parallel processing rate. The structure reproduces the survey's
// observed behaviour — a GPU device crushes wide scans but is hopeless for
// short transactions, where the launch overhead dominates — without real
// silicon.
package accel

import (
	"sync"
	"time"
)

// Device models one execution device.
type Device struct {
	Name string
	// Launch is charged once per kernel (per operation batch).
	Launch time.Duration
	// TransferPerKB is charged per KiB moved to the device.
	TransferPerKB time.Duration
	// NsPerRow is the per-row processing cost once running.
	NsPerRow float64

	mu      sync.Mutex
	busyFor time.Duration
	kernels int64
	rows    int64
	// owed banks sub-millisecond kernel costs; the host sleep granularity
	// (~1ms) would otherwise overcharge short kernels ~50x. Debt is paid in
	// >=2ms chunks, keeping long-run occupancy faithful.
	owed time.Duration
}

// CPU returns a task-parallel device: negligible launch cost, moderate
// per-row speed.
func CPU() *Device {
	return &Device{Name: "cpu", Launch: 0, TransferPerKB: 0, NsPerRow: 25}
}

// GPU returns a data-parallel device: large launch + transfer overheads,
// very high scan rate (~20x the CPU per row).
func GPU() *Device {
	return &Device{
		Name:          "gpu",
		Launch:        30 * time.Microsecond,
		TransferPerKB: 300 * time.Nanosecond,
		NsPerRow:      1.2,
	}
}

// KernelCost returns the simulated duration of processing rows totalling
// bytes of input on the device.
func (d *Device) KernelCost(rows, bytes int) time.Duration {
	c := d.Launch
	c += time.Duration(float64(bytes) / 1024 * float64(d.TransferPerKB))
	c += time.Duration(float64(rows) * d.NsPerRow)
	return c
}

// Run charges the cost of one kernel, sleeping (in granularity-friendly
// chunks) to model occupancy, and records stats.
func (d *Device) Run(rows, bytes int) time.Duration {
	c := d.KernelCost(rows, bytes)
	var pay time.Duration
	d.mu.Lock()
	d.busyFor += c
	d.kernels++
	d.rows += int64(rows)
	d.owed += c
	if d.owed >= 2*time.Millisecond {
		pay, d.owed = d.owed, 0
	}
	d.mu.Unlock()
	if pay > 0 {
		time.Sleep(pay)
	}
	return c
}

// Stats summarizes device usage.
type Stats struct {
	Kernels int64
	Rows    int64
	Busy    time.Duration
}

// Stats returns usage counters.
func (d *Device) Stats() Stats {
	d.mu.Lock()
	defer d.mu.Unlock()
	return Stats{Kernels: d.kernels, Rows: d.rows, Busy: d.busyFor}
}

// Placement routes work classes to devices.
type Placement uint8

// Placements evaluated by the Table 2 QO experiment.
const (
	CPUOnly Placement = iota + 1 // everything on the CPU
	GPUOnly                      // everything on the GPU
	Hybrid                       // OLTP on CPU, OLAP on GPU (RateupDB)
)

// String implements fmt.Stringer.
func (p Placement) String() string {
	switch p {
	case CPUOnly:
		return "cpu-only"
	case GPUOnly:
		return "gpu-only"
	default:
		return "hybrid"
	}
}

// Router dispatches operations under a placement policy.
type Router struct {
	CPUDev *Device
	GPUDev *Device
	Policy Placement
}

// NewRouter returns a router over fresh CPU and GPU devices.
func NewRouter(p Placement) *Router {
	return &Router{CPUDev: CPU(), GPUDev: GPU(), Policy: p}
}

// DeviceFor returns the device an operation class runs on.
func (r *Router) DeviceFor(analytical bool) *Device {
	switch r.Policy {
	case CPUOnly:
		return r.CPUDev
	case GPUOnly:
		return r.GPUDev
	default:
		if analytical {
			return r.GPUDev
		}
		return r.CPUDev
	}
}

// RunTP charges one short transactional operation touching rows.
func (r *Router) RunTP(rows, bytes int) time.Duration {
	return r.DeviceFor(false).Run(rows, bytes)
}

// RunAP charges one analytical kernel over rows.
func (r *Router) RunAP(rows, bytes int) time.Duration {
	return r.DeviceFor(true).Run(rows, bytes)
}
