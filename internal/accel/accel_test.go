package accel

import (
	"testing"
	"time"
)

func TestGPUWinsWideScans(t *testing.T) {
	cpu, gpu := CPU(), GPU()
	const rows, bytes = 1_000_000, 8 << 20
	if gpu.KernelCost(rows, bytes) >= cpu.KernelCost(rows, bytes) {
		t.Fatalf("gpu %v !< cpu %v on a wide scan",
			gpu.KernelCost(rows, bytes), cpu.KernelCost(rows, bytes))
	}
}

func TestCPUWinsShortTransactions(t *testing.T) {
	cpu, gpu := CPU(), GPU()
	const rows, bytes = 5, 400
	if cpu.KernelCost(rows, bytes) >= gpu.KernelCost(rows, bytes) {
		t.Fatalf("cpu %v !< gpu %v on a short txn",
			cpu.KernelCost(rows, bytes), gpu.KernelCost(rows, bytes))
	}
}

func TestCrossoverExists(t *testing.T) {
	// Somewhere between a point op and a megascan the devices cross over;
	// locate it coarsely to prove the cost model is not degenerate.
	cpu, gpu := CPU(), GPU()
	crossed := false
	for rows := 1; rows <= 1_000_000; rows *= 4 {
		if gpu.KernelCost(rows, rows*16) < cpu.KernelCost(rows, rows*16) {
			crossed = true
			break
		}
	}
	if !crossed {
		t.Fatal("no crossover up to 1M rows")
	}
}

func TestRunChargesAndCounts(t *testing.T) {
	d := GPU()
	c := d.Run(1000, 1024)
	st := d.Stats()
	if st.Kernels != 1 || st.Rows != 1000 || st.Busy != c {
		t.Fatalf("stats = %+v", st)
	}
	// Sub-millisecond kernels bank their cost; enough of them must pay
	// real wall time (within the chunked-sleep scheme).
	start := time.Now()
	var total time.Duration
	for total < 20*time.Millisecond {
		total += d.Run(1000, 1024)
	}
	if el := time.Since(start); el < total/2 {
		t.Fatalf("device occupancy not modeled: %v elapsed for %v charged", el, total)
	}
}

func TestRouterPolicies(t *testing.T) {
	for _, tc := range []struct {
		p       Placement
		tpOnGPU bool
		apOnGPU bool
	}{
		{CPUOnly, false, false},
		{GPUOnly, true, true},
		{Hybrid, false, true},
	} {
		r := NewRouter(tc.p)
		if got := r.DeviceFor(false) == r.GPUDev; got != tc.tpOnGPU {
			t.Fatalf("%s: TP on gpu = %v", tc.p, got)
		}
		if got := r.DeviceFor(true) == r.GPUDev; got != tc.apOnGPU {
			t.Fatalf("%s: AP on gpu = %v", tc.p, got)
		}
	}
}

func TestRouterRunDispatch(t *testing.T) {
	r := NewRouter(Hybrid)
	r.RunTP(1, 100)
	r.RunAP(100, 1000)
	if r.CPUDev.Stats().Kernels != 1 || r.GPUDev.Stats().Kernels != 1 {
		t.Fatalf("dispatch stats: cpu=%+v gpu=%+v", r.CPUDev.Stats(), r.GPUDev.Stats())
	}
}
