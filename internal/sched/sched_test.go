package sched

import (
	"sync/atomic"
	"testing"
	"time"
)

func TestWorkloadDrivenShiftsTowardPressure(t *testing.T) {
	c := WorkloadDriven{Total: 8}
	d := c.Decide(Signals{}, Decision{})
	if d.TPWorkers != 4 || d.APWorkers != 4 {
		t.Fatalf("initial split = %d/%d", d.TPWorkers, d.APWorkers)
	}
	// Heavy TP backlog pulls a worker from AP.
	d = c.Decide(Signals{TPDemand: 1000, TPCompleted: 10, APDemand: 1, APCompleted: 10}, d)
	if d.TPWorkers != 5 || d.APWorkers != 3 {
		t.Fatalf("after TP pressure: %d/%d", d.TPWorkers, d.APWorkers)
	}
	// Heavy AP backlog pulls back.
	d = c.Decide(Signals{TPDemand: 1, TPCompleted: 10, APDemand: 1000, APCompleted: 10}, d)
	if d.TPWorkers != 4 || d.APWorkers != 4 {
		t.Fatalf("after AP pressure: %d/%d", d.TPWorkers, d.APWorkers)
	}
	if d.Mode != Isolated || d.SyncNow {
		t.Fatalf("workload-driven must stay isolated without syncs: %+v", d)
	}
}

func TestWorkloadDrivenNeverStarves(t *testing.T) {
	c := WorkloadDriven{Total: 2}
	d := Decision{TPWorkers: 1, APWorkers: 1}
	for i := 0; i < 10; i++ {
		d = c.Decide(Signals{TPDemand: 1 << 30, TPCompleted: 1}, d)
	}
	if d.APWorkers < 1 {
		t.Fatalf("AP starved: %+v", d)
	}
}

func TestFreshnessDrivenModeSwitch(t *testing.T) {
	c := FreshnessDriven{Total: 8, MaxLag: 100}
	d := c.Decide(Signals{LagTS: 10}, Decision{})
	if d.Mode != Isolated || d.SyncNow {
		t.Fatalf("low lag: %+v", d)
	}
	d = c.Decide(Signals{LagTS: 150}, d)
	if d.Mode != Shared || !d.SyncNow {
		t.Fatalf("high lag must switch to shared+sync: %+v", d)
	}
	d = c.Decide(Signals{LagTS: 0}, d)
	if d.Mode != Isolated {
		t.Fatalf("recovered lag must switch back: %+v", d)
	}
}

func TestAdaptiveCombinesBoth(t *testing.T) {
	c := Adaptive{Total: 8, MaxLag: 100}
	d := c.Decide(Signals{TPDemand: 1000, TPCompleted: 10, APCompleted: 10, LagTS: 150}, Decision{})
	if !d.SyncNow {
		t.Fatal("adaptive ignored freshness")
	}
	if d.TPWorkers <= d.APWorkers-1 {
		t.Fatalf("adaptive ignored workload: %+v", d)
	}
	if d.Mode != Isolated {
		t.Fatalf("adaptive should restore freshness via merge, not shared reads: %+v", d)
	}
	// Extreme lag lends a worker to the AP/merge side.
	d2 := c.Decide(Signals{LagTS: 500}, Decision{TPWorkers: 4, APWorkers: 4})
	if d2.APWorkers < 4 {
		t.Fatalf("extreme lag should not shrink AP: %+v", d2)
	}
}

func TestPoolResizeAndCounters(t *testing.T) {
	var tpWork, apWork atomic.Int64
	p := NewPool(
		func() bool { tpWork.Add(1); return true },
		func() bool { apWork.Add(1); return true },
	)
	defer p.Stop()
	p.Resize(2, 1)
	tp, ap := p.Counts()
	if tp != 2 || ap != 1 {
		t.Fatalf("counts = %d/%d", tp, ap)
	}
	time.Sleep(20 * time.Millisecond)
	ctp, cap := p.Completed()
	if ctp == 0 || cap == 0 {
		t.Fatalf("completed = %d/%d", ctp, cap)
	}
	// Drain semantics: immediately querying again yields near-zero.
	p.Resize(0, 0)
	time.Sleep(5 * time.Millisecond)
	p.Completed()
	time.Sleep(5 * time.Millisecond)
	ctp, cap = p.Completed()
	if ctp != 0 || cap != 0 {
		t.Fatalf("workers survived resize(0,0): %d/%d", ctp, cap)
	}
}

func TestPoolIdleBackoff(t *testing.T) {
	p := NewPool(func() bool { return false }, func() bool { return false })
	defer p.Stop()
	p.Resize(1, 1)
	time.Sleep(10 * time.Millisecond)
	tp, ap := p.Completed()
	if tp != 0 || ap != 0 {
		t.Fatalf("idle tasks completed work: %d/%d", tp, ap)
	}
}

func TestPoolStopTerminates(t *testing.T) {
	p := NewPool(func() bool { return true }, func() bool { return true })
	p.Resize(4, 4)
	done := make(chan struct{})
	go func() { p.Stop(); close(done) }()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("Stop did not terminate")
	}
}
