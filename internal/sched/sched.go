// Package sched implements the resource-scheduling techniques of the
// paper's §2.2(5): dynamically allocating workers between OLTP and OLAP and
// switching execution modes.
//
//   - WorkloadDriven is the SAP HANA / Siper approach: "adjusts the
//     parallelism threads of OLTP and OLAP tasks based on the performance
//     of executed workloads … when CPU resource is saturated by OLAP
//     threads, the task scheduler can decrease the parallelism of OLAP
//     while enlarging the OLTP threads." It ignores freshness (Table 2:
//     High Throughput / Low Freshness).
//   - FreshnessDriven is the RDE approach: "controls the execution of OLTP
//     and OLAP in isolation for high throughput, then periodically
//     synchronizes the data. Once the data freshness becomes low, it
//     switches to an execution mode with shared CPU, memory and data."
//     (Table 2: High Freshness / Low Throughput.)
//   - Adaptive is the §2.4 extension: workload-driven worker split plus
//     freshness-driven sync triggering, considering "both workload and
//     freshness when scheduling the resources".
package sched

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"htap/internal/obs"
)

// Mode is the execution mode of the OLAP side.
type Mode uint8

// Execution modes. In Isolated mode analytical queries read only merged
// column data (no interference with the delta path, stale reads); in
// Shared mode they overlay the live delta (fresh reads, interference).
const (
	Isolated Mode = iota + 1
	Shared
)

// String implements fmt.Stringer.
func (m Mode) String() string {
	switch m {
	case Isolated:
		return "isolated"
	case Shared:
		return "shared"
	default:
		return fmt.Sprintf("Mode(%d)", uint8(m))
	}
}

// Signals summarize the last scheduling epoch for a controller.
type Signals struct {
	TPCompleted int64 // transactions finished this epoch
	APCompleted int64 // queries finished this epoch
	TPDemand    int64 // transactions waiting (queue proxy)
	APDemand    int64 // queries waiting
	LagTS       uint64
	LagTime     time.Duration
}

// Decision is a controller's resource allocation for the next epoch.
type Decision struct {
	TPWorkers int
	APWorkers int
	Mode      Mode
	SyncNow   bool // force a delta merge now
}

// Controller decides the next epoch's allocation.
type Controller interface {
	Name() string
	Decide(s Signals, prev Decision) Decision
}

// --- workload-driven ---

// WorkloadDriven rebalances workers toward the starved side.
type WorkloadDriven struct {
	Total int // total workers to split
}

// Name implements Controller.
func (WorkloadDriven) Name() string { return "workload-driven" }

// Decide implements Controller.
func (w WorkloadDriven) Decide(s Signals, prev Decision) Decision {
	d := prev
	d.Mode = Isolated // throughput first; freshness is not considered
	d.SyncNow = false
	if d.TPWorkers+d.APWorkers != w.Total || d.TPWorkers <= 0 {
		d.TPWorkers = w.Total / 2
		d.APWorkers = w.Total - d.TPWorkers
	}
	// Shift one worker toward the side with proportionally more demand.
	tpPressure := pressure(s.TPDemand, s.TPCompleted)
	apPressure := pressure(s.APDemand, s.APCompleted)
	switch {
	case tpPressure > apPressure*1.5 && d.APWorkers > 1:
		d.APWorkers--
		d.TPWorkers++
	case apPressure > tpPressure*1.5 && d.TPWorkers > 1:
		d.TPWorkers--
		d.APWorkers++
	}
	return d
}

func pressure(demand, completed int64) float64 {
	if completed <= 0 {
		completed = 1
	}
	return float64(demand) / float64(completed)
}

// --- freshness-driven ---

// FreshnessDriven switches modes on a staleness threshold.
type FreshnessDriven struct {
	Total  int
	MaxLag uint64 // staleness (in commits) that triggers shared mode + sync
}

// Name implements Controller.
func (FreshnessDriven) Name() string { return "freshness-driven" }

// Decide implements Controller.
func (f FreshnessDriven) Decide(s Signals, prev Decision) Decision {
	d := prev
	if d.TPWorkers+d.APWorkers != f.Total || d.TPWorkers <= 0 {
		d.TPWorkers = f.Total / 2
		d.APWorkers = f.Total - d.TPWorkers
	}
	if s.LagTS >= f.MaxLag {
		d.Mode = Shared // read through the delta for freshness
		d.SyncNow = true
	} else {
		d.Mode = Isolated
		d.SyncNow = false
	}
	return d
}

// --- adaptive (extension) ---

// Adaptive combines the workload-driven split with freshness-driven sync.
type Adaptive struct {
	Total  int
	MaxLag uint64
}

// Name implements Controller.
func (Adaptive) Name() string { return "adaptive" }

// Decide implements Controller.
func (a Adaptive) Decide(s Signals, prev Decision) Decision {
	d := WorkloadDriven{Total: a.Total}.Decide(s, prev)
	if s.LagTS >= a.MaxLag {
		// Trigger a sync but keep isolated execution: freshness is restored
		// by merging rather than by paying delta-read interference.
		d.SyncNow = true
		// Lend one TP worker to the merge-heavy side if TP is saturated.
		if d.TPWorkers > 1 && s.LagTS >= 2*a.MaxLag {
			d.TPWorkers--
			d.APWorkers++
		}
	}
	return d
}

// ObserveDecision exports a controller's epoch signals and its resulting
// allocation as gauges (htap_sched_*, labeled by controller), plus a counter
// of forced syncs. Engines call it after each Decide so a scrape shows the
// scheduler's live view: queue demand per side and the OLTP/OLAP split.
func ObserveDecision(controller string, s Signals, d Decision) {
	l := obs.L("controller", controller)
	obs.Default.Gauge("htap_sched_tp_demand", l).SetInt(s.TPDemand)
	obs.Default.Gauge("htap_sched_ap_demand", l).SetInt(s.APDemand)
	obs.Default.Gauge("htap_sched_tp_share", l).Set(share(d.TPWorkers, d.APWorkers))
	obs.Default.Gauge("htap_sched_mode", l).SetInt(int64(d.Mode))
	if d.SyncNow {
		obs.Default.Counter("htap_sched_forced_syncs_total", l).Inc()
	}
}

func share(tp, ap int) float64 {
	if tp+ap == 0 {
		return 0
	}
	return float64(tp) / float64(tp+ap)
}

// --- worker pool ---

// Limiter caps the concurrency of some external resource; exec.SharedPool
// implements it for intra-query (morsel) parallelism. Attached to a Pool,
// it lets the resource controller throttle how wide a single analytical
// query fans out, not just how many queries run at once.
type Limiter interface {
	SetLimit(n int)
}

// Pool runs two resizable worker sets over unit-of-work callbacks. The TP
// task and AP task each perform one unit (one transaction, one query) and
// report whether work was available.
type Pool struct {
	tp *workerSet
	ap *workerSet

	mu      sync.Mutex
	execLim Limiter
	memSig  func() float64
}

// NewPool builds a pool; tasks run until Stop.
func NewPool(tpTask, apTask func() bool) *Pool {
	return &Pool{tp: newWorkerSet(tpTask, "oltp"), ap: newWorkerSet(apTask, "olap")}
}

// AttachExecLimiter couples l to the AP worker count: every Resize caps l
// at max(ap, 1), so the intra-query worker pool shrinks with the AP share.
// The caller owns restoring l's limit after the pool stops (Stop does not,
// because l outlives the experiment that attached it).
func (p *Pool) AttachExecLimiter(l Limiter) {
	p.mu.Lock()
	p.execLim = l
	p.mu.Unlock()
}

// memHighPressure is the memory-pressure fraction above which Resize halves
// the attached exec limiter's width: trading analytical fan-out for headroom
// degrades OLAP latency instead of forcing more (or larger) spills.
const memHighPressure = 0.8

// AttachMemSignal couples the pool to a memory-pressure source (typically
// exec.Governor.Pressure). Each Resize samples it, exports it as the
// htap_sched_mem_pressure gauge, and — when pressure exceeds
// memHighPressure — caps the exec limiter at half the AP worker count so
// new morsels fan out narrower while memory is scarce.
func (p *Pool) AttachMemSignal(sig func() float64) {
	p.mu.Lock()
	p.memSig = sig
	p.mu.Unlock()
}

// Resize sets the worker counts.
func (p *Pool) Resize(tp, ap int) {
	p.tp.resize(tp)
	p.ap.resize(ap)
	p.mu.Lock()
	l := p.execLim
	sig := p.memSig
	p.mu.Unlock()
	width := ap
	if sig != nil {
		pr := sig()
		obs.Default.Gauge("htap_sched_mem_pressure", nil).Set(pr)
		if pr >= memHighPressure {
			width = ap / 2
		}
	}
	if l != nil {
		if width < 1 {
			width = 1
		}
		l.SetLimit(width)
	}
}

// Counts returns the live worker counts.
func (p *Pool) Counts() (tp, ap int) { return p.tp.count(), p.ap.count() }

// Completed returns units completed since the last call (delta counters).
func (p *Pool) Completed() (tp, ap int64) {
	return p.tp.drainCompleted(), p.ap.drainCompleted()
}

// Stop terminates all workers and waits for them.
func (p *Pool) Stop() {
	p.tp.resize(0)
	p.ap.resize(0)
	p.tp.wait()
	p.ap.wait()
}

type workerSet struct {
	task func() bool

	mu     sync.Mutex
	target int
	live   int
	gen    []chan struct{} // per-worker stop channels

	completed atomic.Int64
	wg        sync.WaitGroup

	// Observability: htap_sched_workers{side} mirrors live, and
	// htap_sched_completed_total{side} counts units of work. Both sides of
	// every pool in the process share these series — experiments run engines
	// one at a time, so the gauges read as "the current pool".
	mWorkers *obs.Gauge
	mDone    *obs.Counter
}

func newWorkerSet(task func() bool, side string) *workerSet {
	l := obs.L("side", side)
	return &workerSet{
		task:     task,
		mWorkers: obs.Default.Gauge("htap_sched_workers", l),
		mDone:    obs.Default.Counter("htap_sched_completed_total", l),
	}
}

func (w *workerSet) resize(n int) {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.target = n
	w.mWorkers.SetInt(int64(n))
	for w.live < n {
		stop := make(chan struct{})
		w.gen = append(w.gen, stop)
		w.live++
		w.wg.Add(1)
		go w.run(stop)
	}
	for w.live > n {
		last := w.gen[len(w.gen)-1]
		w.gen = w.gen[:len(w.gen)-1]
		close(last)
		w.live--
	}
}

func (w *workerSet) run(stop chan struct{}) {
	defer w.wg.Done()
	for {
		select {
		case <-stop:
			return
		default:
		}
		if w.task() {
			w.completed.Add(1)
			w.mDone.Inc()
			// Yield between units so TP and AP workers share cores fairly
			// even on GOMAXPROCS=1 hosts; without this a hot worker set can
			// starve the other side for whole scheduler slices.
			runtime.Gosched()
		} else {
			// No work available; back off briefly.
			select {
			case <-stop:
				return
			case <-time.After(200 * time.Microsecond):
			}
		}
	}
}

func (w *workerSet) count() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.live
}

func (w *workerSet) drainCompleted() int64 { return w.completed.Swap(0) }

func (w *workerSet) wait() { w.wg.Wait() }
