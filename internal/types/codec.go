package types

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Row wire format: uvarint column count, then per column a kind byte
// followed by the value (varint for INT, 8-byte float bits for FLOAT,
// uvarint length + bytes for STRING; NULL is just the kind byte 0).
// The WAL, Raft log, and log-based delta files all use this encoding.

// AppendRow appends the wire encoding of r to dst and returns the result.
func AppendRow(dst []byte, r Row) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(r)))
	for _, d := range r {
		dst = append(dst, byte(d.Kind))
		switch d.Kind {
		case 0: // NULL
		case Int:
			dst = binary.AppendVarint(dst, d.I)
		case Float:
			dst = binary.BigEndian.AppendUint64(dst, math.Float64bits(d.Float()))
		case String:
			dst = binary.AppendUvarint(dst, uint64(len(d.S)))
			dst = append(dst, d.S...)
		default:
			panic(fmt.Sprintf("types: encoding unknown kind %d", d.Kind))
		}
	}
	return dst
}

// DecodeRow decodes one row from b, returning the row and the number of
// bytes consumed.
func DecodeRow(b []byte) (Row, int, error) {
	n, sz := binary.Uvarint(b)
	if sz <= 0 {
		return nil, 0, fmt.Errorf("types: bad row header")
	}
	// Every datum costs at least one byte (its kind), so a count beyond
	// the remaining payload is corrupt; checking before make keeps a
	// hostile header from allocating gigabytes.
	if n > uint64(len(b)-sz) {
		return nil, 0, fmt.Errorf("types: row count %d exceeds payload", n)
	}
	pos := sz
	r := make(Row, n)
	for i := range r {
		if pos >= len(b) {
			return nil, 0, fmt.Errorf("types: truncated row")
		}
		kind := ColType(b[pos])
		pos++
		switch kind {
		case 0:
			r[i] = Null
		case Int:
			v, sz := binary.Varint(b[pos:])
			if sz <= 0 {
				return nil, 0, fmt.Errorf("types: bad int datum")
			}
			pos += sz
			r[i] = NewInt(v)
		case Float:
			if pos+8 > len(b) {
				return nil, 0, fmt.Errorf("types: truncated float datum")
			}
			r[i] = NewFloat(math.Float64frombits(binary.BigEndian.Uint64(b[pos:])))
			pos += 8
		case String:
			l, sz := binary.Uvarint(b[pos:])
			// Compare in uint64 space: int(l) of a huge length would wrap
			// negative and slip past a signed bounds check.
			if sz <= 0 || l > uint64(len(b)-pos-sz) {
				return nil, 0, fmt.Errorf("types: bad string datum")
			}
			pos += sz
			r[i] = NewString(string(b[pos : pos+int(l)]))
			pos += int(l)
		default:
			return nil, 0, fmt.Errorf("types: unknown datum kind %d", kind)
		}
	}
	return r, pos, nil
}
