package types

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDatumKinds(t *testing.T) {
	if d := NewInt(42); d.Int() != 42 || d.Kind != Int || d.IsNull() {
		t.Fatalf("NewInt broken: %+v", d)
	}
	if d := NewFloat(3.5); d.Float() != 3.5 || d.Kind != Float {
		t.Fatalf("NewFloat broken: %+v", d)
	}
	if d := NewString("abc"); d.Str() != "abc" || d.Kind != String {
		t.Fatalf("NewString broken: %+v", d)
	}
	if !Null.IsNull() {
		t.Fatal("Null must be null")
	}
}

func TestIntWidensToFloat(t *testing.T) {
	if got := NewInt(7).Float(); got != 7.0 {
		t.Fatalf("Int.Float() = %v, want 7", got)
	}
}

func TestCompare(t *testing.T) {
	cases := []struct {
		a, b Datum
		want int
	}{
		{NewInt(1), NewInt(2), -1},
		{NewInt(2), NewInt(2), 0},
		{NewInt(3), NewInt(2), 1},
		{NewFloat(1.5), NewInt(2), -1},
		{NewInt(2), NewFloat(1.5), 1},
		{NewFloat(2), NewInt(2), 0},
		{NewString("a"), NewString("b"), -1},
		{NewString("b"), NewString("b"), 0},
		{Null, NewInt(0), -1},
		{NewInt(0), Null, 1},
		{Null, Null, 0},
	}
	for _, c := range cases {
		if got := c.a.Compare(c.b); got != c.want {
			t.Errorf("Compare(%v, %v) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestCompareMixedStringPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("comparing INT with STRING should panic")
		}
	}()
	NewInt(1).Compare(NewString("x"))
}

func TestCompareAntisymmetric(t *testing.T) {
	f := func(a, b int64) bool {
		x, y := NewInt(a), NewInt(b)
		return x.Compare(y) == -y.Compare(x)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestHashEqualValuesEqualHashes(t *testing.T) {
	f := func(v int64, seed uint64) bool {
		// Int/Float numeric equality implies hash equality for integral floats
		// representable as float64.
		if v > 1<<52 || v < -(1<<52) {
			v %= 1 << 52
		}
		a := NewInt(v).Hash(seed)
		b := NewFloat(float64(v)).Hash(seed)
		return a == b
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestHashDistinguishes(t *testing.T) {
	h1 := NewString("ab").Hash(1)
	h2 := NewString("ba").Hash(1)
	if h1 == h2 {
		t.Fatal("hash should distinguish permuted strings (vanishingly unlikely collision)")
	}
}

func TestRowCloneIndependent(t *testing.T) {
	r := Row{NewInt(1), NewString("x")}
	c := r.Clone()
	c[0] = NewInt(9)
	if r[0].Int() != 1 {
		t.Fatal("Clone must not alias the original")
	}
}

func TestSchemaValidate(t *testing.T) {
	s := NewSchema("t", 0,
		Column{"id", Int}, Column{"name", String}, Column{"amt", Float})
	if err := s.Validate(Row{NewInt(1), NewString("a"), NewFloat(2)}); err != nil {
		t.Fatalf("valid row rejected: %v", err)
	}
	if err := s.Validate(Row{NewInt(1), NewString("a")}); err == nil {
		t.Fatal("arity mismatch accepted")
	}
	if err := s.Validate(Row{NewInt(1), NewInt(2), NewFloat(2)}); err == nil {
		t.Fatal("kind mismatch accepted")
	}
	if err := s.Validate(Row{Null, NewString("a"), NewFloat(2)}); err == nil {
		t.Fatal("NULL key accepted")
	}
	if err := s.Validate(Row{NewInt(1), Null, NewFloat(2)}); err != nil {
		t.Fatalf("NULL non-key rejected: %v", err)
	}
}

func TestSchemaLookup(t *testing.T) {
	s := NewSchema("t", 0, Column{"id", Int}, Column{"v", Float})
	if s.ColIndex("v") != 1 || s.ColIndex("nope") != -1 {
		t.Fatal("ColIndex broken")
	}
	if s.MustCol("id") != 0 {
		t.Fatal("MustCol broken")
	}
	if s.Key(Row{NewInt(77), NewFloat(0)}) != 77 {
		t.Fatal("Key broken")
	}
}

func TestSchemaMustColPanics(t *testing.T) {
	s := NewSchema("t", 0, Column{"id", Int})
	defer func() {
		if recover() == nil {
			t.Fatal("MustCol on missing column should panic")
		}
	}()
	s.MustCol("missing")
}

func TestNewSchemaRejectsBadKey(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("non-INT key column should panic")
		}
	}()
	NewSchema("t", 0, Column{"name", String})
}

func TestFloatRoundTrip(t *testing.T) {
	f := func(v float64) bool {
		if math.IsNaN(v) {
			return true
		}
		return NewFloat(v).Float() == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
