// Package types defines the value, row, and schema model shared by every
// storage engine and operator in the repository.
//
// The model is deliberately small: three scalar column types (INT, FLOAT,
// STRING) cover the whole CH-benCHmark schema once dates are encoded as
// integer day numbers and decimals as float64. Rows are flat datum slices;
// tables identify rows by a single int64 primary key (composite benchmark
// keys are packed into one int64 by the workload packages).
package types

import (
	"fmt"
	"hash/fnv"
	"math"
	"strings"
)

// ColType enumerates the scalar column types supported by the engines.
type ColType uint8

// Supported column types.
const (
	Int ColType = iota + 1
	Float
	String
)

// String implements fmt.Stringer.
func (t ColType) String() string {
	switch t {
	case Int:
		return "INT"
	case Float:
		return "FLOAT"
	case String:
		return "STRING"
	default:
		return fmt.Sprintf("ColType(%d)", uint8(t))
	}
}

// Datum is a single scalar value. The kind discriminates which field is
// meaningful: I for Int, I reinterpreted as float bits for Float, S for
// String. A zero Datum is NULL.
type Datum struct {
	S    string
	I    int64
	Kind ColType // zero means NULL
}

// NewInt returns an INT datum.
func NewInt(v int64) Datum { return Datum{I: v, Kind: Int} }

// NewFloat returns a FLOAT datum.
func NewFloat(v float64) Datum { return Datum{I: int64(math.Float64bits(v)), Kind: Float} }

// NewString returns a STRING datum.
func NewString(v string) Datum { return Datum{S: v, Kind: String} }

// Null is the NULL datum.
var Null = Datum{}

// IsNull reports whether d is NULL.
func (d Datum) IsNull() bool { return d.Kind == 0 }

// Int returns the integer value; it is only meaningful for Int datums.
func (d Datum) Int() int64 { return d.I }

// Float returns the floating-point value. Int datums are widened so that
// aggregate expressions can mix the two numeric kinds.
func (d Datum) Float() float64 {
	if d.Kind == Int {
		return float64(d.I)
	}
	return math.Float64frombits(uint64(d.I))
}

// Str returns the string value; it is only meaningful for String datums.
func (d Datum) Str() string { return d.S }

// String implements fmt.Stringer.
func (d Datum) String() string {
	switch d.Kind {
	case Int:
		return fmt.Sprintf("%d", d.I)
	case Float:
		return fmt.Sprintf("%g", d.Float())
	case String:
		return d.S
	default:
		return "NULL"
	}
}

// Compare orders two datums. NULL sorts before everything; mixed numeric
// kinds compare as floats; comparing a number with a string panics, which
// would indicate a planner bug rather than a data error.
func (d Datum) Compare(o Datum) int {
	if d.IsNull() || o.IsNull() {
		switch {
		case d.IsNull() && o.IsNull():
			return 0
		case d.IsNull():
			return -1
		default:
			return 1
		}
	}
	if d.Kind == String || o.Kind == String {
		if d.Kind != String || o.Kind != String {
			panic(fmt.Sprintf("types: comparing %s with %s", d.Kind, o.Kind))
		}
		return strings.Compare(d.S, o.S)
	}
	if d.Kind == Int && o.Kind == Int {
		switch {
		case d.I < o.I:
			return -1
		case d.I > o.I:
			return 1
		default:
			return 0
		}
	}
	a, b := d.Float(), o.Float()
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	default:
		return 0
	}
}

// Equal reports whether the two datums compare equal.
func (d Datum) Equal(o Datum) bool { return d.Compare(o) == 0 }

// Hash folds the datum into h using FNV-style mixing. Numeric datums of
// equal value hash equally regardless of kind so that join keys may mix
// Int and Float columns.
func (d Datum) Hash(h uint64) uint64 {
	const prime = 1099511628211
	if d.IsNull() {
		return (h ^ 0x9e) * prime
	}
	if d.Kind == String {
		for i := 0; i < len(d.S); i++ {
			h = (h ^ uint64(d.S[i])) * prime
		}
		return h
	}
	v := uint64(d.I)
	if d.Kind == Float {
		f := d.Float()
		if f == math.Trunc(f) && !math.IsInf(f, 0) {
			v = uint64(int64(f)) // canonicalize integral floats
		}
	}
	for i := 0; i < 8; i++ {
		h = (h ^ (v & 0xff)) * prime
		v >>= 8
	}
	return h
}

// Row is a flat tuple laid out in schema column order.
type Row []Datum

// Clone returns a deep-enough copy of the row (datums are value types).
func (r Row) Clone() Row {
	c := make(Row, len(r))
	copy(c, r)
	return c
}

// Hash returns a hash of the whole row, used by tests and hash operators.
func (r Row) Hash() uint64 {
	h := uint64(1469598103934665603)
	for _, d := range r {
		h = d.Hash(h)
	}
	return h
}

// String implements fmt.Stringer.
func (r Row) String() string {
	parts := make([]string, len(r))
	for i, d := range r {
		parts[i] = d.String()
	}
	return "(" + strings.Join(parts, ", ") + ")"
}

// Column describes one attribute of a schema.
type Column struct {
	Name string
	Type ColType
}

// Schema describes a table: its name, ordered columns, and the index of the
// column holding the packed int64 primary key.
type Schema struct {
	Name   string
	Cols   []Column
	KeyCol int
}

// NewSchema builds a schema. keyCol is the ordinal of the packed primary-key
// column and must name an Int column.
func NewSchema(name string, keyCol int, cols ...Column) *Schema {
	if keyCol < 0 || keyCol >= len(cols) || cols[keyCol].Type != Int {
		panic(fmt.Sprintf("types: schema %s: key column %d must be an existing INT column", name, keyCol))
	}
	return &Schema{Name: name, Cols: cols, KeyCol: keyCol}
}

// ColIndex returns the ordinal of the named column, or -1.
func (s *Schema) ColIndex(name string) int {
	for i, c := range s.Cols {
		if c.Name == name {
			return i
		}
	}
	return -1
}

// MustCol returns the ordinal of the named column and panics if absent;
// workload builders use it so that typos fail fast.
func (s *Schema) MustCol(name string) int {
	i := s.ColIndex(name)
	if i < 0 {
		panic(fmt.Sprintf("types: schema %s has no column %q", s.Name, name))
	}
	return i
}

// Key extracts the packed primary key from a row of this schema.
func (s *Schema) Key(r Row) int64 { return r[s.KeyCol].I }

// Validate checks that the row matches the schema arity and column kinds
// (NULLs are allowed anywhere except the key column).
func (s *Schema) Validate(r Row) error {
	if len(r) != len(s.Cols) {
		return fmt.Errorf("types: schema %s: row has %d columns, want %d", s.Name, len(r), len(s.Cols))
	}
	for i, d := range r {
		if d.IsNull() {
			if i == s.KeyCol {
				return fmt.Errorf("types: schema %s: NULL primary key", s.Name)
			}
			continue
		}
		if d.Kind != s.Cols[i].Type {
			return fmt.Errorf("types: schema %s: column %s has kind %s, want %s",
				s.Name, s.Cols[i].Name, d.Kind, s.Cols[i].Type)
		}
	}
	return nil
}

// HashBytes hashes an arbitrary byte string; used for sharding decisions.
func HashBytes(b []byte) uint64 {
	h := fnv.New64a()
	h.Write(b)
	return h.Sum64()
}
