package types

import (
	"bytes"
	"reflect"
	"testing"
)

// FuzzDecodeRow hammers the row codec shared by the WAL, Raft log, delta
// files, and wire protocol. It must reject corrupt input with an error —
// never panic, never allocate proportionally to an attacker-chosen count —
// and every accepted row must re-encode to bytes that decode identically.
func FuzzDecodeRow(f *testing.F) {
	f.Add(AppendRow(nil, Row{NewInt(-5), NewFloat(2.5), NewString("x"), Null}))
	f.Add(AppendRow(nil, Row{}))
	f.Add(AppendRow(nil, Row{NewString("")}))
	// Row claiming 2^32-1 columns with no payload behind the claim.
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0x0f})
	// One string datum whose length uvarint overflows int64 when added
	// to the cursor (the pre-hardening negative-slice-bound panic).
	f.Add([]byte{0x01, 0x03, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x01})

	f.Fuzz(func(t *testing.T, data []byte) {
		r, n, err := DecodeRow(data)
		if err != nil {
			return
		}
		if n < 0 || n > len(data) {
			t.Fatalf("consumed %d of %d bytes", n, len(data))
		}
		enc := AppendRow(nil, r)
		r2, n2, err := DecodeRow(enc)
		if err != nil {
			t.Fatalf("re-decode failed: %v (row %v)", err, r)
		}
		if n2 != len(enc) {
			t.Fatalf("canonical encoding: consumed %d of %d bytes", n2, len(enc))
		}
		if !reflect.DeepEqual(r, r2) {
			t.Fatalf("roundtrip mismatch: %v vs %v", r, r2)
		}
		// Canonical encodings are a fixed point: encode(decode(encode)) is
		// byte-identical, which the replicated logs rely on for checksums.
		if enc2 := AppendRow(nil, r2); !bytes.Equal(enc, enc2) {
			t.Fatalf("encode not canonical: %x vs %x", enc, enc2)
		}
	})
}
