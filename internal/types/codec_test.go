package types

import (
	"math"
	"testing"
	"testing/quick"
)

func TestCodecRoundTripArbitraryRows(t *testing.T) {
	f := func(ints []int64, floats []float64, strs []string, nulls uint8) bool {
		var r Row
		for _, v := range ints {
			r = append(r, NewInt(v))
		}
		for _, v := range floats {
			if math.IsNaN(v) {
				v = 0
			}
			r = append(r, NewFloat(v))
		}
		for _, s := range strs {
			r = append(r, NewString(s))
		}
		for i := 0; i < int(nulls%4); i++ {
			r = append(r, Null)
		}
		enc := AppendRow(nil, r)
		dec, n, err := DecodeRow(enc)
		if err != nil || n != len(enc) || len(dec) != len(r) {
			return false
		}
		for i := range r {
			if r[i].IsNull() != dec[i].IsNull() {
				return false
			}
			if !r[i].IsNull() && !r[i].Equal(dec[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestCodecConcatenatedRows(t *testing.T) {
	a := Row{NewInt(1), NewString("x")}
	b := Row{NewFloat(2.5)}
	enc := AppendRow(AppendRow(nil, a), b)
	da, n, err := DecodeRow(enc)
	if err != nil || len(da) != 2 {
		t.Fatalf("first decode: %v %v", da, err)
	}
	db, m, err := DecodeRow(enc[n:])
	if err != nil || len(db) != 1 || n+m != len(enc) {
		t.Fatalf("second decode: %v %v", db, err)
	}
	if db[0].Float() != 2.5 {
		t.Fatalf("value = %v", db[0])
	}
}

func TestCodecRejectsGarbage(t *testing.T) {
	cases := [][]byte{
		{},                         // empty
		{0xff},                     // bad header
		{2, byte(Int)},             // truncated int
		{1, byte(Float)},           // truncated float
		{1, byte(String), 10, 'a'}, // string length past end
		{1, 99},                    // unknown kind
	}
	for i, c := range cases {
		if _, _, err := DecodeRow(c); err == nil {
			t.Errorf("case %d decoded garbage", i)
		}
	}
}
