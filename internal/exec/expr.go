package exec

import (
	"fmt"
	"strings"

	"htap/internal/types"
)

// Expr is a scalar expression evaluated against one row of a batch.
// Comparison and boolean expressions yield INT 0/1.
type Expr interface {
	// Type reports the result kind given the input schema.
	Type(schema []types.Column) types.ColType
	// Bind resolves column names to ordinals for the given schema; it
	// returns a bound copy that Eval may be called on.
	Bind(schema []types.Column) Expr
	// Eval computes the value for row i of b.
	Eval(b *Batch, i int) types.Datum
	fmt.Stringer
}

// --- column reference ---

type colRef struct {
	name string
	idx  int
	kind types.ColType
}

// ColName references a column by name.
func ColName(name string) Expr { return &colRef{name: name, idx: -1} }

func (e *colRef) Type(schema []types.Column) types.ColType {
	return schema[colIndex(schema, e.name)].Type
}

func (e *colRef) Bind(schema []types.Column) Expr {
	i := colIndex(schema, e.name)
	return &colRef{name: e.name, idx: i, kind: schema[i].Type}
}

func (e *colRef) Eval(b *Batch, i int) types.Datum { return b.Cols[e.idx].Datum(i) }
func (e *colRef) String() string                   { return e.name }

// --- constant ---

type constExpr struct{ d types.Datum }

// ConstInt is an INT literal.
func ConstInt(v int64) Expr { return &constExpr{types.NewInt(v)} }

// ConstFloat is a FLOAT literal.
func ConstFloat(v float64) Expr { return &constExpr{types.NewFloat(v)} }

// ConstStr is a STRING literal.
func ConstStr(v string) Expr { return &constExpr{types.NewString(v)} }

// ConstDatum is a literal of any datum kind; PushedPred.Expr rebuilds
// comparison predicates with it on the far side of the wire.
func ConstDatum(d types.Datum) Expr { return &constExpr{d} }

func (e *constExpr) Type([]types.Column) types.ColType { return e.d.Kind }
func (e *constExpr) Bind([]types.Column) Expr          { return e }
func (e *constExpr) Eval(*Batch, int) types.Datum      { return e.d }
func (e *constExpr) String() string                    { return e.d.String() }

// --- comparison ---

// CmpOp is a comparison operator.
type CmpOp uint8

// Comparison operators.
const (
	EQ CmpOp = iota + 1
	NE
	LT
	LE
	GT
	GE
)

func (op CmpOp) String() string {
	return [...]string{"?", "=", "!=", "<", "<=", ">", ">="}[op]
}

type cmpExpr struct {
	op   CmpOp
	l, r Expr
}

// Cmp compares two expressions, yielding 0/1.
func Cmp(op CmpOp, l, r Expr) Expr { return &cmpExpr{op, l, r} }

func (e *cmpExpr) Type([]types.Column) types.ColType { return types.Int }
func (e *cmpExpr) Bind(s []types.Column) Expr        { return &cmpExpr{e.op, e.l.Bind(s), e.r.Bind(s)} }
func (e *cmpExpr) String() string                    { return fmt.Sprintf("(%s %s %s)", e.l, e.op, e.r) }

func (e *cmpExpr) Eval(b *Batch, i int) types.Datum {
	c := e.l.Eval(b, i).Compare(e.r.Eval(b, i))
	ok := false
	switch e.op {
	case EQ:
		ok = c == 0
	case NE:
		ok = c != 0
	case LT:
		ok = c < 0
	case LE:
		ok = c <= 0
	case GT:
		ok = c > 0
	case GE:
		ok = c >= 0
	}
	if ok {
		return types.NewInt(1)
	}
	return types.NewInt(0)
}

// --- arithmetic ---

// ArithOp is an arithmetic operator.
type ArithOp uint8

// Arithmetic operators.
const (
	Add ArithOp = iota + 1
	Sub
	Mul
	Div
)

func (op ArithOp) String() string { return [...]string{"?", "+", "-", "*", "/"}[op] }

type arithExpr struct {
	op   ArithOp
	l, r Expr
}

// Arith combines two numeric expressions.
func Arith(op ArithOp, l, r Expr) Expr { return &arithExpr{op, l, r} }

func (e *arithExpr) Type(s []types.Column) types.ColType {
	if e.l.Type(s) == types.Float || e.r.Type(s) == types.Float || e.op == Div {
		return types.Float
	}
	return types.Int
}

func (e *arithExpr) Bind(s []types.Column) Expr {
	b := &arithExpr{e.op, e.l.Bind(s), e.r.Bind(s)}
	return b
}

func (e *arithExpr) String() string { return fmt.Sprintf("(%s %s %s)", e.l, e.op, e.r) }

func (e *arithExpr) Eval(b *Batch, i int) types.Datum {
	l, r := e.l.Eval(b, i), e.r.Eval(b, i)
	if l.Kind == types.Int && r.Kind == types.Int && e.op != Div {
		switch e.op {
		case Add:
			return types.NewInt(l.I + r.I)
		case Sub:
			return types.NewInt(l.I - r.I)
		default:
			return types.NewInt(l.I * r.I)
		}
	}
	lf, rf := l.Float(), r.Float()
	switch e.op {
	case Add:
		return types.NewFloat(lf + rf)
	case Sub:
		return types.NewFloat(lf - rf)
	case Mul:
		return types.NewFloat(lf * rf)
	default:
		if rf == 0 {
			return types.NewFloat(0)
		}
		return types.NewFloat(lf / rf)
	}
}

// --- boolean connectives ---

type andExpr struct{ terms []Expr }

// And is true when every term is true. And() with no terms is true.
func And(terms ...Expr) Expr { return &andExpr{terms} }

func (e *andExpr) Type([]types.Column) types.ColType { return types.Int }

func (e *andExpr) Bind(s []types.Column) Expr {
	b := make([]Expr, len(e.terms))
	for i, t := range e.terms {
		b[i] = t.Bind(s)
	}
	return &andExpr{b}
}

func (e *andExpr) Eval(b *Batch, i int) types.Datum {
	for _, t := range e.terms {
		if t.Eval(b, i).Int() == 0 {
			return types.NewInt(0)
		}
	}
	return types.NewInt(1)
}

func (e *andExpr) String() string {
	parts := make([]string, len(e.terms))
	for i, t := range e.terms {
		parts[i] = t.String()
	}
	return "(" + strings.Join(parts, " AND ") + ")"
}

type orExpr struct{ terms []Expr }

// Or is true when any term is true.
func Or(terms ...Expr) Expr { return &orExpr{terms} }

func (e *orExpr) Type([]types.Column) types.ColType { return types.Int }

func (e *orExpr) Bind(s []types.Column) Expr {
	b := make([]Expr, len(e.terms))
	for i, t := range e.terms {
		b[i] = t.Bind(s)
	}
	return &orExpr{b}
}

func (e *orExpr) Eval(b *Batch, i int) types.Datum {
	for _, t := range e.terms {
		if t.Eval(b, i).Int() != 0 {
			return types.NewInt(1)
		}
	}
	return types.NewInt(0)
}

func (e *orExpr) String() string {
	parts := make([]string, len(e.terms))
	for i, t := range e.terms {
		parts[i] = t.String()
	}
	return "(" + strings.Join(parts, " OR ") + ")"
}

type notExpr struct{ t Expr }

// Not negates a boolean expression.
func Not(t Expr) Expr { return &notExpr{t} }

func (e *notExpr) Type([]types.Column) types.ColType { return types.Int }
func (e *notExpr) Bind(s []types.Column) Expr        { return &notExpr{e.t.Bind(s)} }
func (e *notExpr) String() string                    { return "NOT " + e.t.String() }

func (e *notExpr) Eval(b *Batch, i int) types.Datum {
	if e.t.Eval(b, i).Int() == 0 {
		return types.NewInt(1)
	}
	return types.NewInt(0)
}

// --- convenience predicates ---

// Between is lo <= col <= hi over INT expressions.
func Between(col Expr, lo, hi int64) Expr {
	return And(Cmp(GE, col, ConstInt(lo)), Cmp(LE, col, ConstInt(hi)))
}

type inExpr struct {
	col Expr
	set map[int64]struct{}
}

// InInts is a membership test over INT values.
func InInts(col Expr, vals ...int64) Expr {
	set := make(map[int64]struct{}, len(vals))
	for _, v := range vals {
		set[v] = struct{}{}
	}
	return &inExpr{col, set}
}

func (e *inExpr) Type([]types.Column) types.ColType { return types.Int }
func (e *inExpr) Bind(s []types.Column) Expr        { return &inExpr{e.col.Bind(s), e.set} }
func (e *inExpr) String() string                    { return fmt.Sprintf("%s IN (...%d)", e.col, len(e.set)) }

func (e *inExpr) Eval(b *Batch, i int) types.Datum {
	if _, ok := e.set[e.col.Eval(b, i).Int()]; ok {
		return types.NewInt(1)
	}
	return types.NewInt(0)
}

type ifExpr struct {
	cond, then, els Expr
}

// If yields then when cond is true, els otherwise (the CASE WHEN of the CH
// queries).
func If(cond, then, els Expr) Expr { return &ifExpr{cond, then, els} }

func (e *ifExpr) Type(s []types.Column) types.ColType { return e.then.Type(s) }

func (e *ifExpr) Bind(s []types.Column) Expr {
	return &ifExpr{e.cond.Bind(s), e.then.Bind(s), e.els.Bind(s)}
}

func (e *ifExpr) Eval(b *Batch, i int) types.Datum {
	if e.cond.Eval(b, i).Int() != 0 {
		return e.then.Eval(b, i)
	}
	return e.els.Eval(b, i)
}

func (e *ifExpr) String() string {
	return fmt.Sprintf("IF(%s, %s, %s)", e.cond, e.then, e.els)
}

type substrExpr struct {
	col      Expr
	start, n int
}

// Substr yields n bytes of a STRING expression starting at 0-based start
// (clamped to the value's length).
func Substr(col Expr, start, n int) Expr { return &substrExpr{col, start, n} }

func (e *substrExpr) Type([]types.Column) types.ColType { return types.String }
func (e *substrExpr) Bind(s []types.Column) Expr        { return &substrExpr{e.col.Bind(s), e.start, e.n} }

func (e *substrExpr) Eval(b *Batch, i int) types.Datum {
	s := e.col.Eval(b, i).Str()
	lo := e.start
	if lo > len(s) {
		lo = len(s)
	}
	hi := lo + e.n
	if hi > len(s) {
		hi = len(s)
	}
	return types.NewString(s[lo:hi])
}

func (e *substrExpr) String() string {
	return fmt.Sprintf("SUBSTR(%s, %d, %d)", e.col, e.start, e.n)
}

type likeExpr struct {
	col    Expr
	prefix string
}

// HasPrefix tests whether a STRING column starts with prefix (the LIKE
// 'x%' pattern the CH queries need).
func HasPrefix(col Expr, prefix string) Expr { return &likeExpr{col, prefix} }

func (e *likeExpr) Type([]types.Column) types.ColType { return types.Int }
func (e *likeExpr) Bind(s []types.Column) Expr        { return &likeExpr{e.col.Bind(s), e.prefix} }
func (e *likeExpr) String() string                    { return fmt.Sprintf("%s LIKE %q%%", e.col, e.prefix) }

func (e *likeExpr) Eval(b *Batch, i int) types.Datum {
	if strings.HasPrefix(e.col.Eval(b, i).Str(), e.prefix) {
		return types.NewInt(1)
	}
	return types.NewInt(0)
}
