// Memory governor: hierarchical budgets for analytical execution.
//
// The paper's resource-isolation chapter treats memory as the resource an
// HTAP node cannot overcommit: one oversized analytical query OOMs the
// process every tenant shares. The governor makes execution memory a
// budgeted resource with three nested levels — node, workload class, query
// — charged and released by the materializing operators (hash-join build,
// hash aggregation, sort) as their state grows. Going over budget is not an
// error: operators that can spill (ops.go, spill.go) degrade to
// partitioned disk-backed algorithms through the simulated disk substrate,
// so spill I/O is latency-charged and fault-injectable like every other
// I/O in the repository. Only an actual spill-I/O failure fails the query,
// and it fails cleanly: QueryMem records the first error, Plan.RunCtx
// returns it with nil rows, and Finish removes every spill file.
package exec

import (
	"fmt"
	"sync"
	"sync/atomic"

	"htap/internal/disk"
	"htap/internal/obs"
	"htap/internal/types"
)

// Governor metrics (process-wide; every governor feeds them).
var (
	memBudgetGauge  = obs.Default.Gauge("htap_exec_mem_budget_bytes", nil)
	memUsedGauge    = obs.Default.Gauge("htap_exec_mem_used_bytes", nil)
	memPeakGauge    = obs.Default.Gauge("htap_exec_mem_query_peak_bytes", nil)
	memOverTotal    = obs.Default.Counter("htap_exec_mem_over_budget_total", nil)
	spillBytesTotal = obs.Default.Counter("htap_exec_spill_bytes_total", nil)
	spillReadTotal  = obs.Default.Counter("htap_exec_spill_read_bytes_total", nil)
	spillPartsTotal = obs.Default.Counter("htap_exec_spill_partitions_total", nil)
	spillFilesGauge = obs.Default.Gauge("htap_exec_spill_files", nil)
	spillRetryTotal = obs.Default.Counter("htap_exec_spill_retries_total", nil)

	spillsJoin = obs.Default.Counter("htap_exec_spills_total", obs.L("op", "join"))
	spillsAgg  = obs.Default.Counter("htap_exec_spills_total", obs.L("op", "agg"))
	spillsSort = obs.Default.Counter("htap_exec_spills_total", obs.L("op", "sort"))
)

// Governor is the node-level memory accountant. Budgets nest: the node
// limit caps the sum over all classes, a class limit caps its queries, and
// a per-query limit caps one query. Any exceeded level makes the owning
// queries' operators spill. A zero limit at any level means "unlimited" at
// that level (the other levels still apply).
type Governor struct {
	limit int64
	dev   *disk.Device

	used       atomic.Int64
	qseq       atomic.Int64
	queryLimit atomic.Int64 // default per-query budget; 0 = none

	mu      sync.Mutex
	classes map[string]*ClassGov

	// Per-governor stats, so tests and the chaos gate can assert on one
	// governor without untangling the process-wide metric series.
	overBudget atomic.Int64
	spillBytes atomic.Int64
	spillRead  atomic.Int64
	spills     atomic.Int64
	liveFiles  atomic.Int64
	peak       atomic.Int64 // max per-query peak observed
}

// DefaultClass is the class queries charge when none is named; analytical
// execution is the only spender today.
const DefaultClass = "olap"

// NewGovernor builds a governor with the given node budget in bytes
// (0 = unlimited) spilling through dev; a nil dev gets an uncharged
// in-memory device.
func NewGovernor(limit int64, dev *disk.Device) *Governor {
	if dev == nil {
		dev = disk.New(disk.MemConfig())
	}
	g := &Governor{limit: limit, dev: dev, classes: map[string]*ClassGov{}}
	memBudgetGauge.SetInt(limit)
	return g
}

// SetQueryLimit sets the default per-query budget applied by StartQuery
// (0 = none).
func (g *Governor) SetQueryLimit(n int64) { g.queryLimit.Store(n) }

// Class returns the named class accountant, creating it with the given
// limit (0 = unlimited). The limit of an existing class is left unchanged.
func (g *Governor) Class(name string, limit int64) *ClassGov {
	g.mu.Lock()
	defer g.mu.Unlock()
	c := g.classes[name]
	if c == nil {
		c = &ClassGov{g: g, name: name, limit: limit}
		g.classes[name] = c
	}
	return c
}

// StartQuery opens a query-level accountant in the default class. The
// caller must Finish it (Plan.RunCtx does, for plans carrying it).
func (g *Governor) StartQuery() *QueryMem {
	return g.Class(DefaultClass, 0).StartQuery()
}

// Device returns the spill device.
func (g *Governor) Device() *disk.Device { return g.dev }

// Limit returns the node budget in bytes (0 = unlimited).
func (g *Governor) Limit() int64 { return g.limit }

// Used returns the bytes currently charged across all queries.
func (g *Governor) Used() int64 { return g.used.Load() }

// Pressure returns Used/Limit, or 0 when the node budget is unlimited.
// The server's admission control sheds OLAP work above a threshold.
func (g *Governor) Pressure() float64 {
	if g.limit <= 0 {
		return 0
	}
	return float64(g.used.Load()) / float64(g.limit)
}

// SpillBytes returns the bytes this governor's queries spilled to disk.
func (g *Governor) SpillBytes() int64 { return g.spillBytes.Load() }

// SpillReadBytes returns the spill bytes read back.
func (g *Governor) SpillReadBytes() int64 { return g.spillRead.Load() }

// Spills returns how many operators switched to a spilling algorithm.
func (g *Governor) Spills() int64 { return g.spills.Load() }

// LiveSpillFiles returns the number of spill files currently on disk;
// zero once every query has finished.
func (g *Governor) LiveSpillFiles() int64 { return g.liveFiles.Load() }

// OverBudget returns how often an operator had to keep state in memory
// despite the budget (degradation ladder exhausted: recursion depth cap,
// or the final aggregate group set).
func (g *Governor) OverBudget() int64 { return g.overBudget.Load() }

// MaxQueryPeak returns the largest per-query charged peak observed, the
// "materialized footprint" the chaos gate sizes its hostile budget from.
func (g *Governor) MaxQueryPeak() int64 { return g.peak.Load() }

// ClassGov is one workload class's accountant.
type ClassGov struct {
	g     *Governor
	name  string
	limit int64
	used  atomic.Int64
}

// StartQuery opens a query-level accountant in this class with the
// governor's default per-query budget.
func (c *ClassGov) StartQuery() *QueryMem {
	q := &QueryMem{g: c.g, c: c, id: c.g.qseq.Add(1), limit: c.g.queryLimit.Load()}
	return q
}

// QueryMem is one query's memory accountant and spill-file registry. All
// methods are safe on a nil receiver (no governor attached: charging is
// free and Over never holds), and Grow/Shrink/file methods are safe for
// concurrent use by parallel plan parts.
type QueryMem struct {
	g     *Governor
	c     *ClassGov
	id    int64
	limit int64

	used atomic.Int64
	peak atomic.Int64
	seq  atomic.Int64

	// Per-query spill accounting (the governor-level counters aggregate
	// across queries); query profiles and EXPLAIN ANALYZE read these.
	spillB     atomic.Int64 // bytes written to spill files
	spillNS    atomic.Int64 // time spent in spill I/O (writes + reads)
	spillParts atomic.Int64 // spill partitions/runs created

	mu    sync.Mutex
	files map[string]struct{}
	err   error
}

// SetLimit overrides this query's budget (0 = none). Call before running
// the plan.
func (q *QueryMem) SetLimit(n int64) {
	if q != nil {
		q.limit = n
	}
}

// Grow charges n bytes against the query, class, and node budgets.
func (q *QueryMem) Grow(n int64) {
	if q == nil || n == 0 {
		return
	}
	u := q.used.Add(n)
	for {
		p := q.peak.Load()
		if u <= p || q.peak.CompareAndSwap(p, u) {
			break
		}
	}
	q.c.used.Add(n)
	memUsedGauge.SetInt(q.g.used.Add(n))
}

// Shrink releases n bytes.
func (q *QueryMem) Shrink(n int64) {
	if q == nil || n == 0 {
		return
	}
	q.used.Add(-n)
	q.c.used.Add(-n)
	memUsedGauge.SetInt(q.g.used.Add(-n))
}

// Over reports whether any budget level is exceeded; operators consult it
// at growth points and switch to their spilling algorithm when it holds.
func (q *QueryMem) Over() bool {
	if q == nil {
		return false
	}
	if q.limit > 0 && q.used.Load() > q.limit {
		return true
	}
	if q.c.limit > 0 && q.c.used.Load() > q.c.limit {
		return true
	}
	return q.g.limit > 0 && q.g.used.Load() > q.g.limit
}

// Fail records the first spill failure. The query's operators stop
// producing and Plan.RunCtx reports the error with nil rows.
func (q *QueryMem) Fail(err error) {
	if q == nil || err == nil {
		return
	}
	q.mu.Lock()
	if q.err == nil {
		q.err = err
	}
	q.mu.Unlock()
}

// Err returns the recorded spill failure, if any.
func (q *QueryMem) Err() error {
	if q == nil {
		return nil
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.err
}

// noteOver counts a degradation-ladder exhaustion: state kept in memory
// despite the budget.
func (q *QueryMem) noteOver() {
	if q == nil {
		return
	}
	q.g.overBudget.Add(1)
	memOverTotal.Inc()
}

// noteSpill counts one operator switching to its spilling algorithm.
func (q *QueryMem) noteSpill(c *obs.Counter, partitions int) {
	if q == nil {
		return
	}
	c.Inc()
	q.g.spills.Add(1)
	q.spillParts.Add(int64(partitions))
	spillPartsTotal.Add(int64(partitions))
}

// addSpillParts counts additional spill partitions (external-sort runs
// beyond the first note).
func (q *QueryMem) addSpillParts(n int64) {
	if q != nil {
		q.spillParts.Add(n)
	}
}

// noteSpillIO charges spill I/O to the query: bytes written (reads pass
// 0) and the time the device spent on the transfer.
func (q *QueryMem) noteSpillIO(bytes int64, ns int64) {
	if q == nil {
		return
	}
	q.spillB.Add(bytes)
	q.spillNS.Add(ns)
}

// Peak returns the query's peak charged bytes.
func (q *QueryMem) Peak() int64 {
	if q == nil {
		return 0
	}
	return q.peak.Load()
}

// SpillBytes returns the bytes this query wrote to spill files.
func (q *QueryMem) SpillBytes() int64 {
	if q == nil {
		return 0
	}
	return q.spillB.Load()
}

// SpillNS returns the time this query spent in spill I/O, nanoseconds.
func (q *QueryMem) SpillNS() int64 {
	if q == nil {
		return 0
	}
	return q.spillNS.Load()
}

// SpillParts returns the spill partitions/runs this query created.
func (q *QueryMem) SpillParts() int64 {
	if q == nil {
		return 0
	}
	return q.spillParts.Load()
}

// newFile registers and names a fresh spill file. Names are unique per
// query and process-unique via the query id, so concurrent plan parts
// never collide.
func (q *QueryMem) newFile(kind string) string {
	name := fmt.Sprintf("spill/q%d/%s-%d", q.id, kind, q.seq.Add(1))
	q.mu.Lock()
	if q.files == nil {
		q.files = map[string]struct{}{}
	}
	q.files[name] = struct{}{}
	q.mu.Unlock()
	spillFilesGauge.SetInt(q.g.liveFiles.Add(1))
	return name
}

// removeFile deletes a consumed spill file eagerly, keeping the disk
// footprint bounded by the live working set rather than the query's total
// spill volume.
func (q *QueryMem) removeFile(name string) {
	q.mu.Lock()
	_, ok := q.files[name]
	delete(q.files, name)
	q.mu.Unlock()
	if ok {
		q.g.dev.Remove(name)
		spillFilesGauge.SetInt(q.g.liveFiles.Add(-1))
	}
}

// Finish releases all residual charges and removes every remaining spill
// file. It drains rather than latching: a query that keeps executing
// after an intermediate Finish (a CH query materializing a subquery plan
// mid-build) is cleaned up fully by the final Finish. Safe after failure;
// Plan.RunCtx calls it, and defensive callers (ch.RunQuery) call it again.
func (q *QueryMem) Finish() {
	if q == nil {
		return
	}
	if u := q.used.Swap(0); u != 0 {
		q.c.used.Add(-u)
		memUsedGauge.SetInt(q.g.used.Add(-u))
	}
	p := q.peak.Load()
	for {
		gp := q.g.peak.Load()
		if p <= gp || q.g.peak.CompareAndSwap(gp, p) {
			break
		}
	}
	memPeakGauge.SetInt(q.g.peak.Load())
	q.mu.Lock()
	files := make([]string, 0, len(q.files))
	for f := range q.files {
		files = append(files, f)
	}
	q.files = nil
	q.mu.Unlock()
	for _, f := range files {
		q.g.dev.Remove(f)
		spillFilesGauge.SetInt(q.g.liveFiles.Add(-1))
	}
}

// --- size estimation ---

// datumBytes estimates the in-memory footprint of one datum: the Datum
// struct plus string payload.
func datumBytes(d types.Datum) int64 {
	n := int64(32)
	if d.Kind == types.String {
		n += int64(len(d.S))
	}
	return n
}

// rowBytes estimates a materialized row's footprint.
func rowBytes(r types.Row) int64 {
	n := int64(24) // slice header
	for _, d := range r {
		n += datumBytes(d)
	}
	return n
}

// batchAppendBytes estimates the cost of appending batch b to columnar
// operator state: 8 bytes per scalar cell, string payloads at length.
func batchAppendBytes(b *Batch) int64 {
	var n int64
	for _, c := range b.Cols {
		switch c.Kind {
		case types.String:
			for _, s := range c.Strs {
				n += int64(len(s)) + 16
			}
		default:
			n += int64(b.N) * 8
		}
	}
	return n
}
