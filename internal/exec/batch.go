// Package exec implements the vectorized query execution engine used for
// the OLAP side of every architecture.
//
// Operators exchange columnar batches (the Go stand-in for the paper's
// "aggregations over compressed data and SIMD instructions", §2.2(2)):
// sources decode column-store segments or row-store snapshots into typed
// arrays, and filters, joins, aggregations, sorts and limits stream batches
// through a pull-based iterator pipeline. A small fluent builder assembles
// plans; the CH-benCHmark queries are written against it.
package exec

import (
	"fmt"

	"htap/internal/types"
)

// BatchSize is the number of rows per exchanged batch.
const BatchSize = 1024

// Col is one column of a batch as a typed array.
type Col struct {
	Kind   types.ColType
	Ints   []int64
	Floats []float64
	Strs   []string
}

// NewCol returns an empty column of the given kind.
func NewCol(kind types.ColType) *Col { return &Col{Kind: kind} }

// Len returns the number of values.
func (c *Col) Len() int {
	switch c.Kind {
	case types.Int:
		return len(c.Ints)
	case types.Float:
		return len(c.Floats)
	default:
		return len(c.Strs)
	}
}

// Datum returns the value at row i.
func (c *Col) Datum(i int) types.Datum {
	switch c.Kind {
	case types.Int:
		return types.NewInt(c.Ints[i])
	case types.Float:
		return types.NewFloat(c.Floats[i])
	default:
		return types.NewString(c.Strs[i])
	}
}

// Append adds d, which must match the column kind (Int widens to Float).
func (c *Col) Append(d types.Datum) {
	switch c.Kind {
	case types.Int:
		c.Ints = append(c.Ints, d.Int())
	case types.Float:
		c.Floats = append(c.Floats, d.Float())
	default:
		c.Strs = append(c.Strs, d.Str())
	}
}

// AppendFrom copies row i of src.
func (c *Col) AppendFrom(src *Col, i int) {
	switch c.Kind {
	case types.Int:
		c.Ints = append(c.Ints, src.Ints[i])
	case types.Float:
		c.Floats = append(c.Floats, src.Floats[i])
	default:
		c.Strs = append(c.Strs, src.Strs[i])
	}
}

// Reset truncates the column to zero length, keeping capacity.
func (c *Col) Reset() {
	c.Ints = c.Ints[:0]
	c.Floats = c.Floats[:0]
	c.Strs = c.Strs[:0]
}

// Batch is a columnar chunk of rows with named columns.
type Batch struct {
	Schema []types.Column
	Cols   []*Col
	N      int
}

// NewBatch returns an empty batch with the given schema.
func NewBatch(schema []types.Column) *Batch {
	b := &Batch{Schema: schema, Cols: make([]*Col, len(schema))}
	for i, c := range schema {
		b.Cols[i] = NewCol(c.Type)
	}
	return b
}

// Reset empties the batch, keeping capacity.
func (b *Batch) Reset() {
	for _, c := range b.Cols {
		c.Reset()
	}
	b.N = 0
}

// AppendRow appends a types.Row matching the batch schema.
func (b *Batch) AppendRow(r types.Row) {
	for i, c := range b.Cols {
		c.Append(r[i])
	}
	b.N++
}

// Row materializes row i.
func (b *Batch) Row(i int) types.Row {
	r := make(types.Row, len(b.Cols))
	for c, col := range b.Cols {
		r[c] = col.Datum(i)
	}
	return r
}

// ColIndex returns the ordinal of the named column or -1.
func (b *Batch) ColIndex(name string) int {
	for i, c := range b.Schema {
		if c.Name == name {
			return i
		}
	}
	return -1
}

// colIndex resolves name against a schema, panicking on typos: plans are
// authored in code, so a missing column is a programming error.
func colIndex(schema []types.Column, name string) int {
	for i, c := range schema {
		if c.Name == name {
			return i
		}
	}
	panic(fmt.Sprintf("exec: no column %q in %v", name, schema))
}
