package exec

import (
	"context"
	"fmt"
	"math/rand"
	"testing"

	"htap/internal/colstore"
	"htap/internal/types"
)

// BenchmarkScanFilter is the selectivity sweep recorded in BENCH_scan.json:
// a scan-filter pipeline over a multi-segment column store, projecting a
// dictionary-encoded string column, filtered by an integer range predicate
// whose selectivity sweeps 0.1% / 1% / 10% / 90%. The same plan shape runs
// before and after predicate pushdown (Plan.Filter decides where the
// predicate is evaluated), so ns/op here measures exactly the win of
// evaluating predicates on encoded segments and late-materializing only
// selected rows.
func BenchmarkScanFilter(b *testing.B) {
	tbl := benchTable(128 * 1024)
	ctx := context.Background()
	for _, sel := range []float64{0.1, 1, 10, 90} {
		hi := int64(1_000_000 * sel / 100)
		pred := Cmp(LT, ColName("k"), ConstInt(hi))
		b.Run(fmt.Sprintf("sel=%v%%/strings", sel), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				rows, err := From(NewColScan(ctx, tbl, []string{"k", "name"}, nil, nil)).
					Filter(pred).RunCtx(ctx)
				if err != nil {
					b.Fatal(err)
				}
				_ = rows
			}
		})
	}
	// RLE: the filtered column is run-length encoded; a pushed-down
	// predicate costs one comparison per run rather than one per row.
	b.Run("rle=grp<4/count", func(b *testing.B) {
		pred := Cmp(LT, ColName("grp"), ConstInt(4))
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := From(NewColScan(ctx, tbl, []string{"grp", "val"}, nil, nil)).
				Filter(pred).CountCtx(ctx); err != nil {
				b.Fatal(err)
			}
		}
	})
	// Dictionary equality: one binary search of the sorted dictionary,
	// then code comparisons; strings are never decoded for dropped rows.
	b.Run("dict-eq/strings", func(b *testing.B) {
		pred := Cmp(EQ, ColName("name"), ConstStr("name-0017"))
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			rows, err := From(NewColScan(ctx, tbl, []string{"name", "val"}, nil, nil)).
				Filter(pred).RunCtx(ctx)
			if err != nil {
				b.Fatal(err)
			}
			_ = rows
		}
	})
}

// benchTable builds an n-row table spanning many segments: "k" is a
// uniform int in [0, 1e6) (raw/packed), "grp" is run-length friendly,
// "name" is dictionary-encoded with 256 distinct values, "val" is a float.
func benchTable(n int) *colstore.Table {
	schema := types.NewSchema("scanbench", 0,
		types.Column{Name: "id", Type: types.Int},
		types.Column{Name: "k", Type: types.Int},
		types.Column{Name: "grp", Type: types.Int},
		types.Column{Name: "name", Type: types.String},
		types.Column{Name: "val", Type: types.Float},
	)
	tbl := colstore.NewTable(schema)
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < n; i++ {
		tbl.Append(types.Row{
			types.NewInt(int64(i)),
			types.NewInt(rng.Int63n(1_000_000)),
			types.NewInt(int64(i / 512 % 64)),
			types.NewString(fmt.Sprintf("name-%04d", rng.Intn(256))),
			types.NewFloat(rng.Float64() * 100),
		})
	}
	tbl.Flush()
	return tbl
}
