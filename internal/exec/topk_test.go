package exec

import (
	"math/rand"
	"testing"
	"testing/quick"

	"htap/internal/types"
)

func TestTopKMatchesSortLimit(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	rows := make([]types.Row, 5000)
	for i := range rows {
		rows[i] = sale(int64(i), int64(rng.Intn(100)), float64(rng.Intn(10_000)), "x")
	}
	keys := []SortKey{{Col: "amount", Desc: true}, {Col: "id"}}
	want := From(NewMemSource(salesSchema.Cols, rows)).Sort(keys...).Limit(25).Run()
	got := From(NewMemSource(salesSchema.Cols, rows)).TopK(25, keys...).Run()
	if len(got) != len(want) {
		t.Fatalf("topk %d rows, sort+limit %d", len(got), len(want))
	}
	for i := range want {
		for c := range want[i] {
			if !got[i][c].Equal(want[i][c]) {
				t.Fatalf("row %d differs: %v vs %v", i, got[i], want[i])
			}
		}
	}
}

func TestTopKEdgeCases(t *testing.T) {
	rows := testRows()
	// k larger than input: full sorted output.
	got := From(NewMemSource(salesSchema.Cols, rows)).TopK(100, SortKey{Col: "id"}).Run()
	if len(got) != len(rows) {
		t.Fatalf("k>n returned %d rows", len(got))
	}
	// k == 0: nothing.
	if n := From(NewMemSource(salesSchema.Cols, rows)).TopK(0, SortKey{Col: "id"}).Count(); n != 0 {
		t.Fatalf("k=0 returned %d", n)
	}
	// Empty input.
	if n := From(NewMemSource(salesSchema.Cols, nil)).TopK(5, SortKey{Col: "id"}).Count(); n != 0 {
		t.Fatalf("empty input returned %d", n)
	}
}

// Property: TopK == Sort+Limit for arbitrary data and k.
func TestQuickTopKEquivalence(t *testing.T) {
	f := func(vals []int16, k uint8) bool {
		rows := make([]types.Row, len(vals))
		for i, v := range vals {
			rows[i] = sale(int64(i), int64(v), float64(v), "x")
		}
		kk := int(k%32) + 1
		keys := []SortKey{{Col: "region"}, {Col: "id", Desc: true}}
		want := From(NewMemSource(salesSchema.Cols, rows)).Sort(keys...).Limit(kk).Run()
		got := From(NewMemSource(salesSchema.Cols, rows)).TopK(kk, keys...).Run()
		if len(got) != len(want) {
			return false
		}
		for i := range want {
			if !got[i][0].Equal(want[i][0]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestExplainRendersTree(t *testing.T) {
	p := From(NewMemSource(salesSchema.Cols, testRows())).
		Filter(Cmp(GT, ColName("amount"), ConstFloat(10))).
		Join(From(NewMemSource(regionSchema, regionRows())), []string{"region"}, []string{"r_id"}).
		Agg([]string{"r_name"}, Agg{Kind: Sum, Expr: ColName("amount"), Name: "rev"}).
		TopK(3, SortKey{Col: "rev", Desc: true})
	out := p.Explain()
	for _, want := range []string{"TopK(3 by rev DESC)", "HashAggregate", "HashJoin(Inner", "Filter((amount > 10))", "MemScan"} {
		if !contains(out, want) {
			t.Fatalf("explain missing %q:\n%s", want, out)
		}
	}
	// The tree must be indented (children deeper than parents).
	if !contains(out, "\n  HashAggregate") {
		t.Fatalf("no indentation:\n%s", out)
	}
}

func contains(s, sub string) bool {
	return len(s) >= len(sub) && (s == sub || len(s) > 0 && (stringsIndex(s, sub) >= 0))
}

func stringsIndex(s, sub string) int {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return i
		}
	}
	return -1
}

func BenchmarkAblationTopKVsSortLimit(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	rows := make([]types.Row, 200_000)
	for i := range rows {
		rows[i] = sale(int64(i), int64(rng.Intn(1000)), float64(rng.Intn(1_000_000)), "x")
	}
	keys := []SortKey{{Col: "amount", Desc: true}}
	b.Run("topk", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			From(NewMemSource(salesSchema.Cols, rows)).TopK(20, keys...).Count()
		}
	})
	b.Run("sort-limit", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			From(NewMemSource(salesSchema.Cols, rows)).Sort(keys...).Limit(20).Count()
		}
	})
}
