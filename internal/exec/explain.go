package exec

import (
	"fmt"
	"strings"
)

// Explainer is implemented by operators that can describe themselves; all
// operators in this package do. Sources outside the package appear as
// their Go type name.
type Explainer interface {
	explain() (desc string, children []Source)
}

// Explain renders the plan's operator tree, one operator per line,
// children indented — the debugging surface every engine's EXPLAIN offers.
func (p *Plan) Explain() string {
	var b strings.Builder
	explainInto(&b, p.src, 0)
	return b.String()
}

func explainInto(b *strings.Builder, s Source, depth int) {
	desc, children := describe(s)
	b.WriteString(strings.Repeat("  ", depth))
	b.WriteString(desc)
	b.WriteByte('\n')
	for _, c := range children {
		explainInto(b, c, depth+1)
	}
}

func describe(s Source) (string, []Source) {
	if e, ok := s.(Explainer); ok {
		return e.explain()
	}
	return fmt.Sprintf("%T", s), nil
}

func (s *memSource) explain() (string, []Source) {
	return fmt.Sprintf("MemScan(rows=%d, cols=%d)", len(s.rows), len(s.schema)), nil
}

func (s *colScan) explain() (string, []Source) {
	pred := ""
	if s.pred != nil {
		pred = fmt.Sprintf(", prune=%s∈[%d,%d]", s.pred.Col, s.pred.Lo, s.pred.Hi)
	}
	ov := ""
	if s.overlay != nil {
		ov = fmt.Sprintf(", delta=%d rows/%d masked", len(s.overlay.Rows), len(s.overlay.Masked))
	}
	push := ""
	if len(s.pushed) > 0 {
		ps := make([]string, len(s.pushed))
		for i := range s.pushed {
			ps[i] = s.pushed[i].String()
		}
		push = fmt.Sprintf(", pushdown=[%s]", strings.Join(ps, " AND "))
	}
	return fmt.Sprintf("ColumnScan(%s, segments=%d, cols=%d%s%s%s)",
		s.tbl.Schema.Name, len(s.segs), len(s.schema), pred, ov, push), nil
}

func (s *errSource) explain() (string, []Source) {
	return fmt.Sprintf("Error(%v)", s.err), nil
}

func (p *colScanPart) explain() (string, []Source) {
	return fmt.Sprintf("ColumnScanPart(%s, morsels=%d, delta=%d rows)",
		p.scan.tbl.Schema.Name, len(p.morsels), len(p.overRem)), nil
}

func (p *hashJoinProbe) explain() (string, []Source) {
	return "HashJoinProbe", []Source{p.left}
}

func (s *unionSource) explain() (string, []Source) {
	return fmt.Sprintf("Union(%d inputs)", len(s.srcs)), s.srcs
}

func (s *parallelSource) explain() (string, []Source) {
	return fmt.Sprintf("ParallelUnion(%d inputs)", len(s.srcs)), s.srcs
}

func (o *filterOp) explain() (string, []Source) {
	return fmt.Sprintf("Filter(%s)", o.expr), []Source{o.in}
}

func (o *projectOp) explain() (string, []Source) {
	names := make([]string, len(o.schema))
	for i, c := range o.schema {
		names[i] = c.Name
	}
	return fmt.Sprintf("Project(%s)", strings.Join(names, ", ")), []Source{o.in}
}

func (o *hashJoinOp) explain() (string, []Source) {
	kind := map[JoinType]string{InnerJoin: "Inner", LeftSemiJoin: "Semi", LeftAntiJoin: "Anti"}[o.typ]
	return fmt.Sprintf("HashJoin(%s, keys=%d)", kind, len(o.leftKeys)),
		[]Source{o.left, o.buildSrc}
}

func (o *hashAggOp) explain() (string, []Source) {
	aggs := make([]string, len(o.aggs))
	for i, a := range o.aggs {
		aggs[i] = a.Name
	}
	return fmt.Sprintf("HashAggregate(groups=%d, aggs=[%s])", len(o.groupBy), strings.Join(aggs, ", ")),
		[]Source{o.in}
}

func (o *sortOp) explain() (string, []Source) {
	keys := make([]string, len(o.keys))
	for i, k := range o.keys {
		keys[i] = k.Col
		if k.Desc {
			keys[i] += " DESC"
		}
	}
	return fmt.Sprintf("Sort(%s)", strings.Join(keys, ", ")), []Source{o.in}
}

func (o *limitOp) explain() (string, []Source) {
	return fmt.Sprintf("Limit(%d)", o.left), []Source{o.in}
}

func (o *topKOp) explain() (string, []Source) {
	keys := make([]string, len(o.keys))
	for i, k := range o.keys {
		keys[i] = k.Col
		if k.Desc {
			keys[i] += " DESC"
		}
	}
	return fmt.Sprintf("TopK(%d by %s)", o.k, strings.Join(keys, ", ")), []Source{o.in}
}
