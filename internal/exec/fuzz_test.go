package exec

import (
	"context"
	"testing"

	"htap/internal/types"
)

// exprGen deterministically builds a bounded, well-typed expression tree
// from fuzz bytes. Type-directed generation matters: Datum.Compare panics
// by contract on string-vs-number comparisons (a planner bug, not a data
// error), so the generator only produces trees a correct planner could
// emit — and within that space, anything goes.
type exprGen struct {
	b   []byte
	pos int
}

func (g *exprGen) next() byte {
	if g.pos >= len(g.b) {
		return 0
	}
	c := g.b[g.pos]
	g.pos++
	return c
}

func (g *exprGen) gen(kind types.ColType, depth int) Expr {
	if depth <= 0 {
		return g.leaf(kind)
	}
	switch kind {
	case types.Int:
		switch g.next() % 10 {
		case 0:
			// Numeric comparison; int and float sides may mix freely.
			l, r := g.numeric(depth-1), g.numeric(depth-1)
			return Cmp(CmpOp(g.next()%6+1), l, r)
		case 1:
			return Cmp(CmpOp(g.next()%6+1), g.gen(types.String, depth-1), g.gen(types.String, depth-1))
		case 2:
			return And(g.gen(types.Int, depth-1), g.gen(types.Int, depth-1))
		case 3:
			return Or(g.gen(types.Int, depth-1), g.gen(types.Int, depth-1))
		case 4:
			return Not(g.gen(types.Int, depth-1))
		case 5:
			return Arith(ArithOp(g.next()%3+1), g.gen(types.Int, depth-1), g.gen(types.Int, depth-1)) // Add/Sub/Mul stay Int
		case 6:
			lo := int64(g.next())
			return Between(g.intCol(), lo, lo+int64(g.next()))
		case 7:
			return InInts(g.intCol(), int64(g.next()), int64(g.next()), int64(g.next()))
		case 8:
			return HasPrefix(g.gen(types.String, depth-1), string(rune('a'+g.next()%4)))
		default:
			return If(g.gen(types.Int, depth-1), g.gen(types.Int, depth-1), g.gen(types.Int, depth-1))
		}
	case types.Float:
		switch g.next() % 3 {
		case 0:
			return Arith(ArithOp(g.next()%4+1), g.gen(types.Float, depth-1), g.numeric(depth-1))
		case 1:
			return Arith(Div, g.numeric(depth-1), g.numeric(depth-1)) // Div is Float even over ints
		default:
			return If(g.gen(types.Int, depth-1), g.gen(types.Float, depth-1), g.gen(types.Float, depth-1))
		}
	default:
		switch g.next() % 3 {
		case 0:
			return Substr(g.gen(types.String, depth-1), int(g.next()%8), int(g.next()%8))
		case 1:
			return If(g.gen(types.Int, depth-1), g.gen(types.String, depth-1), g.gen(types.String, depth-1))
		default:
			return g.leaf(types.String)
		}
	}
}

func (g *exprGen) numeric(depth int) Expr {
	if g.next()%2 == 0 {
		return g.gen(types.Int, depth)
	}
	return g.gen(types.Float, depth)
}

func (g *exprGen) intCol() Expr {
	if g.next()%2 == 0 {
		return ColName("id")
	}
	return ColName("region")
}

func (g *exprGen) leaf(kind types.ColType) Expr {
	switch kind {
	case types.Int:
		if g.next()%2 == 0 {
			return g.intCol()
		}
		return ConstInt(int64(int8(g.next())))
	case types.Float:
		if g.next()%2 == 0 {
			return ColName("amount")
		}
		// Quarter steps hit exact and inexact float values without NaN.
		return ConstFloat(float64(int8(g.next())) / 4)
	default:
		if g.next()%2 == 0 {
			return ColName("item")
		}
		return ConstStr(string([]byte{'a' + g.next()%4, 'a' + g.next()%4}))
	}
}

// FuzzExprEval drives generated expression trees over a fixed batch and a
// full Filter plan. Invariants: evaluation never panics, the produced
// datum kind matches the static Type, evaluation is deterministic, and
// filtering through the operator (bitmap path) keeps exactly the rows
// whose predicate evaluates truthy.
func FuzzExprEval(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 0})
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12})
	f.Add([]byte{9, 9, 9, 2, 0, 2, 1, 4, 4, 8, 8, 255, 128, 7, 3})
	f.Add([]byte{5, 1, 5, 1, 5, 1, 5, 1, 5, 1, 5, 1, 5, 1, 5, 1})
	f.Add([]byte{2, 250, 17, 66, 3, 0, 99, 99, 1, 1, 1, 0, 42, 200, 13})

	rows := testRows()
	f.Fuzz(func(t *testing.T, data []byte) {
		g := &exprGen{b: data}
		kind := types.ColType(g.next()%3 + 1)
		expr := g.gen(kind, 4)

		schema := salesSchema.Cols
		if got := expr.Type(schema); got != kind {
			t.Fatalf("%s: static type %v, generator promised %v", expr, got, kind)
		}
		bound := expr.Bind(schema)
		src := NewMemSource(schema, rows)
		truthy := 0
		for b := src.Next(); b != nil; b = src.Next() {
			for i := 0; i < b.N; i++ {
				d := bound.Eval(b, i)
				if d.Kind != kind {
					t.Fatalf("%s: row %d evaluated to kind %v, static type %v", expr, i, d.Kind, kind)
				}
				if again := bound.Eval(b, i); again != d {
					t.Fatalf("%s: row %d nondeterministic: %v then %v", expr, i, d, again)
				}
				if kind == types.Int && d.Int() != 0 {
					truthy++
				}
			}
		}
		if kind != types.Int {
			return
		}
		// Differential check against the vectorized Filter operator.
		out, err := From(NewMemSource(schema, rows)).Filter(expr).RunCtx(context.Background())
		if err != nil {
			t.Fatalf("%s: filter plan failed: %v", expr, err)
		}
		if len(out) != truthy {
			t.Fatalf("%s: filter kept %d rows, scalar eval says %d", expr, len(out), truthy)
		}
	})
}
