package exec

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"htap/internal/bitmap"
	"htap/internal/colstore"
	"htap/internal/obs"
	"htap/internal/types"
)

// Predicate pushdown: Plan.Filter decomposes a filter into conjuncts and
// pushes the single-column comparisons into column scans, where they are
// evaluated directly on the encoded segment vectors (see colstore's
// FilterVec) to produce a per-segment selection bitmap. The scan then
// late-materializes only selected positions of only the projected columns,
// so a dropped row never decodes a string. Conjuncts the scan cannot
// evaluate on encoded data stay behind in a residual Filter operator, and
// filters distribute over unions, so layered and sharded stores push per
// child. A pushed conjunct keeps exactly the rows the residual filter
// would keep: the encoded comparisons replicate types.Datum.Compare.

var (
	pushPredsTotal  = obs.Default.Counter("htap_exec_pushdown_predicates_total", nil)
	pushSegsPruned  = obs.Default.Counter("htap_exec_pushdown_segments_pruned_total", nil)
	pushRunsTotal   = obs.Default.Counter("htap_exec_pushdown_runs_shortcircuited_total", nil)
	pushRowsScanned = obs.Default.Counter("htap_exec_pushdown_rows_scanned_total", nil)
	pushRowsMat     = obs.Default.Counter("htap_exec_pushdown_rows_materialized_total", nil)
)

// PushdownRows returns the cumulative pushed-down scan volume: rows whose
// selection bits were evaluated and rows actually materialized. Benchmark
// harnesses sample it around a run to report rows-materialized-per-query.
func PushdownRows() (scanned, materialized int64) {
	return pushRowsScanned.Value(), pushRowsMat.Value()
}

type predKind uint8

const (
	predCmp predKind = iota + 1
	predPrefix
	predInSet
)

// colPred is one filter conjunct a column scan evaluates directly on
// encoded segment vectors.
type colPred struct {
	kind   predKind
	col    string      // column name, present in both scan output and table schema
	op     CmpOp       // predCmp comparison
	d      types.Datum // predCmp comparand
	prefix string      // predPrefix
	set    map[int64]struct{} // predInSet (shared read-only with the source expression)
	idx    int         // table-schema column ordinal (encoded vector index)
	outIdx int         // scan-output ordinal, for filtering materialized overlay rows
}

func (p *colPred) String() string {
	switch p.kind {
	case predPrefix:
		return fmt.Sprintf("%s LIKE %q%%", p.col, p.prefix)
	case predInSet:
		return fmt.Sprintf("%s IN (...%d)", p.col, len(p.set))
	default:
		return fmt.Sprintf("(%s %s %s)", p.col, p.op, p.d)
	}
}

// matchRow evaluates the predicate against a materialized row (delta
// overlay rows bypass the encoded path). Semantics match the expression
// the predicate was extracted from bit for bit.
func (p *colPred) matchRow(r types.Row) bool {
	switch p.kind {
	case predPrefix:
		return strings.HasPrefix(r[p.outIdx].Str(), p.prefix)
	case predInSet:
		_, ok := p.set[r[p.outIdx].Int()]
		return ok
	default:
		return cmpOpMatch(p.op, r[p.outIdx].Compare(p.d))
	}
}

func cmpOpMatch(op CmpOp, c int) bool {
	switch op {
	case EQ:
		return c == 0
	case NE:
		return c != 0
	case LT:
		return c < 0
	case LE:
		return c <= 0
	case GT:
		return c > 0
	default:
		return c >= 0
	}
}

// predOp maps the executor's comparison operator to colstore's.
func predOp(op CmpOp) colstore.PredOp {
	return [...]colstore.PredOp{0, colstore.PredEQ, colstore.PredNE, colstore.PredLT,
		colstore.PredLE, colstore.PredGT, colstore.PredGE}[op]
}

// flipCmp rewrites `const op col` as `col flip(op) const`.
func flipCmp(op CmpOp) CmpOp {
	switch op {
	case LT:
		return GT
	case LE:
		return GE
	case GT:
		return LT
	case GE:
		return LE
	default:
		return op
	}
}

// splitConjuncts flattens nested ANDs into a conjunct list.
func splitConjuncts(e Expr, out []Expr) []Expr {
	if a, ok := e.(*andExpr); ok {
		for _, t := range a.terms {
			out = splitConjuncts(t, out)
		}
		return out
	}
	return append(out, e)
}

// asColPred recognizes a pushable conjunct of a bound filter: col ⊗ const,
// const ⊗ col, HasPrefix(col, p), or InInts(col, ...). NULL comparands are
// never pushed (their comparison semantics stay with the residual filter).
func asColPred(e Expr) (colPred, bool) {
	switch t := e.(type) {
	case *cmpExpr:
		if c, ok := t.l.(*colRef); ok {
			if k, ok2 := t.r.(*constExpr); ok2 && !k.d.IsNull() {
				return colPred{kind: predCmp, col: c.name, op: t.op, d: k.d}, true
			}
		}
		if k, ok := t.l.(*constExpr); ok && !k.d.IsNull() {
			if c, ok2 := t.r.(*colRef); ok2 {
				return colPred{kind: predCmp, col: c.name, op: flipCmp(t.op), d: k.d}, true
			}
		}
	case *likeExpr:
		if c, ok := t.col.(*colRef); ok {
			return colPred{kind: predPrefix, col: c.name, prefix: t.prefix}, true
		}
	case *inExpr:
		if c, ok := t.col.(*colRef); ok {
			return colPred{kind: predInSet, col: c.name, set: t.set}, true
		}
	}
	return colPred{}, false
}

// PushKind classifies a PushedPred.
type PushKind uint8

// Pushable predicate shapes, mirroring the conjuncts fuseFilter accepts.
const (
	PushCmp PushKind = iota + 1
	PushPrefix
	PushInSet
)

// PushedPred is the exported, transport-friendly form of one pushable
// conjunct: col ⊗ const, a string prefix, or an int IN-set. A source that
// evaluates predicates elsewhere — a remote shard fragment — accepts these
// from the pushdown rewrite, ships them over the wire, and the far side
// rebuilds the expression with Expr. Ints is kept sorted so the encoding
// is deterministic.
type PushedPred struct {
	Kind   PushKind
	Col    string
	Op     CmpOp       // PushCmp
	Datum  types.Datum // PushCmp comparand (never NULL)
	Prefix string      // PushPrefix
	Ints   []int64     // PushInSet, sorted ascending
}

// AsPushedPred recognizes a pushable conjunct in its exported form; the
// accepted shapes are exactly those fuseFilter pushes into column scans.
func AsPushedPred(e Expr) (PushedPred, bool) {
	cp, ok := asColPred(e)
	if !ok {
		return PushedPred{}, false
	}
	switch cp.kind {
	case predPrefix:
		return PushedPred{Kind: PushPrefix, Col: cp.col, Prefix: cp.prefix}, true
	case predInSet:
		ints := make([]int64, 0, len(cp.set))
		for v := range cp.set {
			ints = append(ints, v)
		}
		sort.Slice(ints, func(i, j int) bool { return ints[i] < ints[j] })
		return PushedPred{Kind: PushInSet, Col: cp.col, Ints: ints}, true
	default:
		return PushedPred{Kind: PushCmp, Col: cp.col, Op: cp.op, Datum: cp.d}, true
	}
}

// Expr rebuilds the predicate as an expression with identical semantics;
// the receiving shard filters through the ordinary pushdown path, so the
// conjunct keeps exactly the rows it would have kept at the coordinator.
func (p PushedPred) Expr() Expr {
	switch p.Kind {
	case PushPrefix:
		return HasPrefix(ColName(p.Col), p.Prefix)
	case PushInSet:
		return InInts(ColName(p.Col), p.Ints...)
	default:
		return Cmp(p.Op, ColName(p.Col), ConstDatum(p.Datum))
	}
}

// PredPusher is a source that can evaluate pushable conjuncts itself,
// typically by shipping them to a remote shard before any rows are
// fetched. PushPred offers one conjunct; returning true means the source
// will apply it and the rewrite drops it from the residual filter, so an
// accepted conjunct must keep exactly the rows the residual filter would
// have kept.
type PredPusher interface {
	Source
	PushPred(PushedPred) bool
}

// PassThrough is an order-preserving pass-through shim over one inner
// source — a row counter, a tracing wrapper. The pushdown rewrite (and
// parallel splitting, via the shim's own Split) applies to the inner
// pipeline in place, so scans beneath the shim still fuse predicates.
type PassThrough interface {
	Source
	InnerSource() Source
	SetInnerSource(Source)
}

// pushFilter places the bound filter expr above src, pushing what it can
// into column scans. Filters distribute over unions, so the rewrite
// recurses into unstarted union children; sources that cannot evaluate a
// conjunct on encoded data keep it in a residual filter operator. Row
// order and semantics are unchanged — only where each conjunct is
// evaluated moves.
func pushFilter(src Source, expr Expr) Source {
	switch s := src.(type) {
	case *colScan:
		return s.fuseFilter(expr)
	case *unionSource:
		if s.cur == 0 {
			for i, c := range s.srcs {
				s.srcs[i] = pushFilter(c, expr)
			}
			return s
		}
	case PassThrough:
		s.SetInnerSource(pushFilter(s.InnerSource(), expr))
		return s
	case PredPusher:
		return fusePusher(s, expr)
	}
	return &filterOp{in: src, expr: expr}
}

// fusePusher offers each pushable conjunct to a PredPusher source and
// keeps declined or unpushable conjuncts in a residual filter, exactly
// like fuseFilter does for column scans.
func fusePusher(s PredPusher, expr Expr) Source {
	var residual []Expr
	for _, e := range splitConjuncts(expr, nil) {
		if p, ok := AsPushedPred(e); ok && s.PushPred(p) {
			pushPredsTotal.Inc()
			continue
		}
		residual = append(residual, e)
	}
	switch len(residual) {
	case 0:
		return s
	case 1:
		return &filterOp{in: s, expr: residual[0]}
	default:
		return &filterOp{in: s, expr: &andExpr{terms: residual}}
	}
}

// fuseFilter attaches the pushable conjuncts of expr to the scan and
// returns the scan, wrapped in a residual filter when some conjuncts could
// not be pushed. A scan that already produced rows cannot change its
// selection retroactively and keeps the whole filter downstream.
func (s *colScan) fuseFilter(expr Expr) Source {
	if s.done || s.seg > 0 || s.row > 0 {
		return &filterOp{in: s, expr: expr}
	}
	var residual []Expr
	for _, e := range splitConjuncts(expr, nil) {
		p, ok := asColPred(e)
		if !ok || !s.acceptPred(&p) {
			residual = append(residual, e)
			continue
		}
		s.pushed = append(s.pushed, p)
		pushPredsTotal.Inc()
	}
	if len(s.pushed) == 0 {
		return &filterOp{in: s, expr: expr}
	}
	s.selObs = s.tbl.SelObserver()
	switch len(residual) {
	case 0:
		return s
	case 1:
		return &filterOp{in: s, expr: residual[0]}
	default:
		return &filterOp{in: s, expr: &andExpr{terms: residual}}
	}
}

// acceptPred resolves the predicate's column against the scan's table and
// validates that the (column type, comparand) pairing can be evaluated on
// encoded vectors with Datum.Compare semantics.
func (s *colScan) acceptPred(p *colPred) bool {
	ti := s.tbl.Schema.ColIndex(p.col)
	oi := -1
	for i, c := range s.schema {
		if c.Name == p.col {
			oi = i
			break
		}
	}
	if ti < 0 || oi < 0 {
		return false
	}
	switch ct := s.tbl.Schema.Cols[ti].Type; p.kind {
	case predCmp:
		switch ct {
		case types.Int, types.Float:
			if p.d.Kind != types.Int && p.d.Kind != types.Float {
				return false
			}
		case types.String:
			if p.d.Kind != types.String {
				return false
			}
		default:
			return false
		}
	case predPrefix:
		if ct != types.String {
			return false
		}
	case predInSet:
		if ct != types.Int {
			return false
		}
	}
	p.idx, p.outIdx = ti, oi
	return true
}

// zonesPrune reports whether the segment's zone maps prove that no row can
// satisfy every pushed predicate; int, float, and string bounds all
// participate. Pruning is conservative: false only means "must evaluate".
func (s *colScan) zonesPrune(seg *colstore.Segment) bool {
	for i := range s.pushed {
		p := &s.pushed[i]
		z := &seg.Zones[p.idx]
		switch p.kind {
		case predPrefix:
			if z.PruneStrPrefix(p.prefix) {
				return true
			}
		case predCmp:
			if zonePruneCmp(z, s.tbl.Schema.Cols[p.idx].Type, p.op, p.d) {
				return true
			}
		}
	}
	return false
}

func zonePruneCmp(z *colstore.ZoneMap, ct types.ColType, op CmpOp, d types.Datum) bool {
	if op == NE {
		return false
	}
	switch ct {
	case types.Int:
		if d.Kind != types.Int {
			return false // mixed numeric comparand: row-filter only
		}
		lo, hi := int64(math.MinInt64), int64(math.MaxInt64)
		switch op {
		case EQ:
			lo, hi = d.I, d.I
		case LT:
			if d.I == math.MinInt64 {
				return true
			}
			hi = d.I - 1
		case LE:
			hi = d.I
		case GT:
			if d.I == math.MaxInt64 {
				return true
			}
			lo = d.I + 1
		case GE:
			lo = d.I
		}
		return z.PruneInt(lo, hi)
	case types.Float:
		v := d.Float()
		switch op {
		case EQ:
			return z.PruneFloat(v, v)
		case LT, LE:
			return z.PruneFloat(math.Inf(-1), v)
		default: // GT, GE
			return z.PruneFloat(v, math.Inf(1))
		}
	case types.String:
		switch op {
		case EQ:
			return z.PruneStr(d.S, d.S, true)
		case LT, LE:
			return z.PruneStr("", d.S, true)
		default: // GT, GE
			return z.PruneStr(d.S, "", false)
		}
	}
	return false
}

// computeSel evaluates the pushed predicates over seg's encoded vectors:
// all-selected, minus the one-shot delete snapshot, minus every predicate's
// rejections. Returns (nil, true) when zone maps prune the whole segment.
// Deterministic for a fixed segment state, so DOP-1 and DOP-N scans select
// identical rows.
func (s *colScan) computeSel(seg *colstore.Segment) (*bitmap.Bitmap, bool) {
	if s.zonesPrune(seg) {
		pushSegsPruned.Inc()
		return nil, true
	}
	sel := bitmap.New(seg.N)
	sel.Fill(seg.N)
	if del := seg.DelSnapshot(); del.Any() {
		sel.AndNot(del)
	}
	for i := range s.pushed {
		if sel.Count() == 0 {
			break
		}
		p := &s.pushed[i]
		v := seg.Cols[p.idx]
		var runs int
		switch p.kind {
		case predPrefix:
			colstore.FilterStrPrefix(v.(colstore.StrVector), p.prefix, sel)
		case predInSet:
			runs = colstore.FilterIntSet(v.(colstore.IntVector), p.set, sel)
		default:
			runs = colstore.FilterVec(v, predOp(p.op), p.d, sel)
		}
		if runs > 0 {
			pushRunsTotal.Add(int64(runs))
		}
	}
	if s.selObs != nil && seg.N > 0 {
		s.selObs(float64(sel.Count()) / float64(seg.N))
	}
	return sel, false
}

// matchOverlayRow applies every pushed predicate to a materialized overlay
// row (already projected to the scan's output schema).
func (s *colScan) matchOverlayRow(r types.Row) bool {
	for i := range s.pushed {
		if !s.pushed[i].matchRow(r) {
			return false
		}
	}
	return true
}

// gather appends v's values at ascending positions pos to dst — the late
// materialization step: only selected rows of projected columns decode.
func gather(dst *Col, v colstore.Vector, pos []int) {
	switch vv := v.(type) {
	case colstore.IntVector:
		if dst.Kind == types.Int {
			dst.Ints = colstore.GatherInts(vv, pos, dst.Ints)
			return
		}
	case colstore.FloatVector:
		if dst.Kind == types.Float {
			dst.Floats = colstore.GatherFloats(vv, pos, dst.Floats)
			return
		}
	case colstore.StrVector:
		if dst.Kind == types.String {
			dst.Strs = colstore.GatherStrs(vv, pos, dst.Strs)
			return
		}
	}
	for _, i := range pos {
		dst.Append(v.Datum(i))
	}
}
