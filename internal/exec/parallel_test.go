package exec

import (
	"context"
	"math"
	"sync/atomic"
	"testing"

	"htap/internal/colstore"
	"htap/internal/delta"
	"htap/internal/types"
)

// newSalesTable builds a multi-segment columnar sales table with n rows.
func newSalesTable(n int) *colstore.Table {
	t := colstore.NewTable(salesSchema)
	for _, r := range manyRows(n) {
		t.Append(r)
	}
	t.Flush()
	return t
}

func rowsEqual(a, b []types.Row) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if len(a[i]) != len(b[i]) {
			return false
		}
		for c := range a[i] {
			if !a[i][c].Equal(b[i][c]) {
				return false
			}
		}
	}
	return true
}

// TestEmptyUnionIsError is the regression test for NewUnion() with zero
// sources: it used to panic in unionSource.Schema; now it yields an
// error-carrying plan.
func TestEmptyUnionIsError(t *testing.T) {
	src := NewUnion()
	if s := src.Schema(); s != nil {
		t.Fatalf("empty union schema = %v, want nil", s)
	}
	if b := src.Next(); b != nil {
		t.Fatalf("empty union produced a batch")
	}
	p := From(src)
	if p.Err() == nil {
		t.Fatal("plan from empty union carries no error")
	}
	// Builders short-circuit and runs report the error, not an empty table.
	rows, err := p.Filter(ConstInt(1)).RunCtx(context.Background())
	if err == nil || rows != nil {
		t.Fatalf("run = (%v, %v), want (nil, error)", rows, err)
	}
	if _, err := From(NewParallel(context.Background())).CountCtx(context.Background()); err == nil {
		t.Fatal("empty parallel union should carry an error")
	}
	// A union that contains an error source propagates it.
	if From(NewUnion(NewUnion(), NewMemSource(salesSchema.Cols, nil))).Err() == nil {
		t.Fatal("union over an error source should carry the error")
	}
}

// TestParallelScanMatchesSequential checks the core morsel invariant:
// part-order concatenation reproduces the sequential scan exactly — same
// rows, same order — including delete masks and delta overlays.
func TestParallelScanMatchesSequential(t *testing.T) {
	tbl := newSalesTable(3 * colstore.SegmentRows / 2)
	for k := int64(0); k < 100; k += 3 {
		tbl.DeleteKey(k)
	}
	overlay := &delta.Overlay{
		Rows:   map[int64]types.Row{},
		Masked: map[int64]struct{}{7: {}, 11: {}},
	}
	for k := int64(100000); k < 100080; k++ {
		overlay.Rows[k] = sale(k, k%7, float64(k), "d")
	}
	mk := func(par int) *Plan {
		return From(NewColScan(context.Background(), tbl, nil, nil, overlay)).
			Parallel(par).
			Filter(Cmp(GE, ColName("region"), ConstInt(2)))
	}
	seq := mk(1).Run()
	for _, par := range []int{2, 4, 13} {
		got := mk(par).Run()
		if !rowsEqual(seq, got) {
			t.Fatalf("par=%d: %d rows != sequential %d rows (or order differs)", par, len(got), len(seq))
		}
	}
}

// TestParallelAggDeterministic checks that aggregation at a fixed degree
// of parallelism is bit-deterministic (static morsel assignment plus
// part-ordered merges), and that group output order matches sequential.
func TestParallelAggDeterministic(t *testing.T) {
	tbl := newSalesTable(3 * colstore.SegmentRows)
	run := func(par int) []types.Row {
		return From(NewColScan(context.Background(), tbl, nil, nil, nil)).
			Parallel(par).
			Agg([]string{"region"},
				Agg{Kind: Sum, Expr: ColName("amount"), Name: "total"},
				Agg{Kind: Count, Name: "n"},
				Agg{Kind: Min, Expr: ColName("amount"), Name: "lo"},
				Agg{Kind: Max, Expr: ColName("amount"), Name: "hi"}).
			Run()
	}
	seq, a, b := run(1), run(4), run(4)
	if len(seq) != 7 || len(a) != 7 {
		t.Fatalf("groups: seq=%d par=%d, want 7", len(seq), len(a))
	}
	for i := range a {
		for c := range a[i] {
			if !a[i][c].Equal(b[i][c]) {
				t.Fatalf("par=4 not deterministic at group %d col %d: %v vs %v", i, c, a[i][c], b[i][c])
			}
		}
		// Against sequential: group order and int aggregates are identical;
		// float sums agree to rounding.
		if !seq[i][0].Equal(a[i][0]) || !seq[i][2].Equal(a[i][2]) ||
			!seq[i][3].Equal(a[i][3]) || !seq[i][4].Equal(a[i][4]) {
			t.Fatalf("group %d: seq %v vs par %v", i, seq[i], a[i])
		}
		s, p := seq[i][1].Float(), a[i][1].Float()
		if math.Abs(s-p) > 1e-9*math.Max(1, math.Abs(s)) {
			t.Fatalf("group %d sum: seq %v vs par %v", i, s, p)
		}
	}
}

// TestParallelJoinMatchesSequential covers the parallel build (partitioned
// then merged in part order) and split probe: output must match the
// sequential join exactly, including multi-match row order.
func TestParallelJoinMatchesSequential(t *testing.T) {
	left := newSalesTable(2 * colstore.SegmentRows)
	dim := make([]types.Row, 0, 14)
	dimSchema := types.NewSchema("dim", 0,
		types.Column{Name: "r", Type: types.Int},
		types.Column{Name: "label", Type: types.String},
	)
	for i := int64(0); i < 7; i++ {
		// Two dim rows per region: every probe row matches twice.
		dim = append(dim,
			types.Row{types.NewInt(i), types.NewString("first")},
			types.Row{types.NewInt(i), types.NewString("second")},
		)
	}
	mk := func(par int) *Plan {
		return From(NewColScan(context.Background(), left, nil, nil, nil)).
			Parallel(par).
			Join(From(NewMemSource(dimSchema.Cols, dim)).Parallel(par), []string{"region"}, []string{"r"})
	}
	seq := mk(1).Run()
	par := mk(4).Run()
	if !rowsEqual(seq, par) {
		t.Fatalf("join par=4: %d rows != sequential %d rows (or order differs)", len(par), len(seq))
	}
	if len(seq) != 2*2*colstore.SegmentRows {
		t.Fatalf("join rows = %d", len(seq))
	}
}

// TestParallelCancellation: a context cancelled mid-scan stops all parts
// and RunCtx reports the error.
func TestParallelCancellation(t *testing.T) {
	tbl := newSalesTable(4 * colstore.SegmentRows)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	rows, err := From(NewColScan(ctx, tbl, nil, nil, nil)).Parallel(4).RunCtx(ctx)
	if err == nil {
		t.Fatal("cancelled parallel run returned no error")
	}
	if len(rows) != 0 {
		t.Fatalf("cancelled before start but got %d rows", len(rows))
	}
}

// TestPoolNeverBlocks: tasks beyond the limit run inline on the caller,
// so nested fan-out (an aggregate part containing a parallel join build)
// cannot deadlock even at limit 1.
func TestPoolNeverBlocks(t *testing.T) {
	p := &Pool{}
	p.SetLimit(1)
	defer p.SetLimit(0)
	var ran atomic.Int32
	inner := func() {
		tasks := make([]func(), 4)
		for i := range tasks {
			tasks[i] = func() { ran.Add(1) }
		}
		p.Run(tasks)
	}
	outer := make([]func(), 4)
	for i := range outer {
		outer[i] = inner
	}
	done := make(chan struct{})
	go func() {
		p.Run(outer)
		close(done)
	}()
	select {
	case <-done:
	case <-context.Background().Done():
	}
	if ran.Load() != 16 {
		t.Fatalf("ran %d inner tasks, want 16", ran.Load())
	}
}

// TestSharedPoolLimiter: the sched scheduler throttles the shared pool via
// SetLimit; verify limits clamp and restore.
func TestSharedPoolLimiter(t *testing.T) {
	p := SharedPool()
	def := p.Limit()
	p.SetLimit(2)
	if p.Limit() != 2 {
		t.Fatalf("limit = %d, want 2", p.Limit())
	}
	p.SetLimit(0)
	if p.Limit() != def {
		t.Fatalf("limit = %d, want default %d", p.Limit(), def)
	}
}
