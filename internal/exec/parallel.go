package exec

import (
	"runtime"
	"sync"
	"time"

	"htap/internal/obs"
)

// Morsel-driven parallel execution. Scans expose their remaining input as
// fixed-size morsels (contiguous row ranges); operators that can partition
// themselves implement Splitter, and the sinks that consume whole pipelines
// (hash aggregation, hash-join build, Plan.RunCtx) fan the parts out over
// the shared worker pool. Two properties are deliberate:
//
//   - Morsel assignment is static and range-based: part boundaries depend
//     only on the input's shape and the parallelism degree, never on worker
//     timing, and concatenating part outputs in part order reproduces the
//     sequential row order. At a fixed parallelism degree results are
//     therefore bit-deterministic; across degrees only float aggregate
//     rounding may differ (summation order changes association, not the
//     value sequence).
//
//   - The pool never blocks a caller: a task that cannot get a worker slot
//     runs inline on the calling goroutine, so nested fan-out (an aggregate
//     part whose pipeline contains a parallel join build) cannot deadlock.

// MorselRows is the number of rows per morsel, matching the batch size so
// each morsel produces roughly one batch.
const MorselRows = BatchSize

// DefaultParallelism is the degree of parallelism engines use when none is
// configured: GOMAXPROCS at query time.
func DefaultParallelism() int { return runtime.GOMAXPROCS(0) }

// Splitter is a Source that can partition its remaining input into
// independently drainable parts. Split consumes the receiver and must be
// called before Next. Implementations return about n parts (possibly more
// or fewer), or nil when the source cannot split; concatenating the parts'
// outputs in slice order yields exactly the sequential output of the
// receiver.
type Splitter interface {
	Source
	Split(n int) []Source
}

// trySplit partitions s, returning nil when s cannot split (or n asks for
// no parallelism). A non-nil result has consumed s: callers must drain the
// parts instead, even when only one came back.
func trySplit(s Source, n int) []Source {
	if n <= 1 {
		return nil
	}
	if sp, ok := s.(Splitter); ok {
		if parts := sp.Split(n); len(parts) > 0 {
			return parts
		}
	}
	return nil
}

var (
	morselsTotal  = obs.Default.Counter("htap_exec_morsels_total", nil)
	workerBusyNS  = obs.Default.Counter("htap_exec_worker_busy_ns_total", nil)
	mergeNS       = obs.Default.Counter("htap_exec_merge_ns_total", nil)
	parallelPlans = obs.Default.Counter("htap_exec_parallel_plans_total", nil)
	poolLimit     = obs.Default.Gauge("htap_exec_pool_limit", nil)
)

// Pool bounds the goroutines analytical operators fan out to. The zero
// limit means "GOMAXPROCS at acquire time", which keeps `go test -cpu`
// honest: the limit follows the benchmark's processor count. Run never
// blocks waiting for a slot — tasks beyond the limit execute inline on the
// caller — so the pool throttles concurrency without ever stalling a
// query, and nested Run calls cannot deadlock.
type Pool struct {
	mu     sync.Mutex
	limit  int // 0 = GOMAXPROCS, resolved per acquire
	active int
}

var sharedPool = &Pool{}

// SharedPool is the process-wide worker pool all parallel operators use.
// internal/sched attaches to it to throttle analytical parallelism when
// the resource scheduler shrinks the AP share.
func SharedPool() *Pool { return sharedPool }

// SetLimit caps concurrent pool workers at n; n <= 0 restores the
// GOMAXPROCS default. In-flight workers are unaffected.
func (p *Pool) SetLimit(n int) {
	if n < 0 {
		n = 0
	}
	p.mu.Lock()
	p.limit = n
	eff := p.effLimit()
	p.mu.Unlock()
	poolLimit.SetInt(int64(eff))
}

// Limit reports the effective worker cap.
func (p *Pool) Limit() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.effLimit()
}

func (p *Pool) effLimit() int {
	if p.limit > 0 {
		return p.limit
	}
	return runtime.GOMAXPROCS(0)
}

func (p *Pool) tryAcquire() bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.active >= p.effLimit() {
		return false
	}
	p.active++
	return true
}

func (p *Pool) release() {
	p.mu.Lock()
	p.active--
	p.mu.Unlock()
}

// Run executes all tasks and returns when the last one finishes. Tasks run
// on worker goroutines while slots are free and inline on the caller
// otherwise; the caller always makes progress itself.
func (p *Pool) Run(tasks []func()) {
	if len(tasks) == 1 {
		runTask(tasks[0])
		return
	}
	var wg sync.WaitGroup
	for _, t := range tasks {
		if p.tryAcquire() {
			wg.Add(1)
			go func(t func()) {
				defer wg.Done()
				defer p.release()
				runTask(t)
			}(t)
		} else {
			runTask(t)
		}
	}
	wg.Wait()
}

func runTask(t func()) {
	start := time.Now()
	t()
	workerBusyNS.Add(time.Since(start).Nanoseconds())
}
