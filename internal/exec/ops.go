package exec

import (
	"container/heap"
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"htap/internal/bitmap"
	"htap/internal/colstore"
	"htap/internal/delta"
	"htap/internal/rowstore"
	"htap/internal/types"
)

// orBackground guards against nil contexts from legacy call paths.
func orBackground(ctx context.Context) context.Context {
	if ctx == nil {
		return context.Background()
	}
	return ctx
}

// Source produces batches. Next returns nil when exhausted.
type Source interface {
	Schema() []types.Column
	Next() *Batch
}

// ScanPred is an advisory single-column integer range used for zone-map
// pruning and planner selectivity estimates. Plans must still apply the
// full filter; the predicate only lets scans skip whole segments.
type ScanPred struct {
	Col    string
	Lo, Hi int64
}

// --- memory source ---

type memSource struct {
	schema []types.Column
	rows   []types.Row
	pos    int
}

// NewMemSource serves pre-materialized rows; tests and delta overlays use
// it.
func NewMemSource(schema []types.Column, rows []types.Row) Source {
	return &memSource{schema: schema, rows: rows}
}

func (s *memSource) Schema() []types.Column { return s.schema }

func (s *memSource) Next() *Batch {
	if s.pos >= len(s.rows) {
		return nil
	}
	b := NewBatch(s.schema)
	for s.pos < len(s.rows) && b.N < BatchSize {
		b.AppendRow(s.rows[s.pos])
		s.pos++
	}
	return b
}

// Split partitions the remaining rows into contiguous ranges sharing the
// backing slice; part-order concatenation reproduces the sequential scan.
func (s *memSource) Split(n int) []Source {
	rows := s.rows[s.pos:]
	s.pos = len(s.rows)
	if len(rows) == 0 {
		return nil
	}
	chunk := (len(rows) + n - 1) / n
	var parts []Source
	for lo := 0; lo < len(rows); lo += chunk {
		hi := lo + chunk
		if hi > len(rows) {
			hi = len(rows)
		}
		parts = append(parts, &memSource{schema: s.schema, rows: rows[lo:hi]})
	}
	return parts
}

// --- row-store scan ---

// NewRowScan scans the row store at snapshot ts, projecting cols (all
// columns when nil). This is the row-side access path of the hybrid
// row/column technique. The scan materializes eagerly but polls ctx every
// few hundred rows, so a cancelled query abandons the B+-tree walk instead
// of finishing it; the truncated result is discarded by Plan.RunCtx, which
// reports the context error.
func NewRowScan(ctx context.Context, st *rowstore.Store, ts uint64, cols []string, pred *ScanPred) Source {
	ctx = orBackground(ctx)
	schema, idxs := projectSchema(st.Schema, cols)
	var rows []types.Row
	lo, hi := int64(-1<<63), int64(1<<63-1)
	if pred != nil && pred.Col == st.Schema.Cols[st.Schema.KeyCol].Name {
		// Key-range predicates become B+-tree range scans: the "row-based
		// index scan" half of the paper's hybrid SPJ example.
		lo, hi = pred.Lo, pred.Hi
	}
	n := 0
	st.ScanRange(ts, lo, hi, func(_ int64, r types.Row) bool {
		if n++; n&255 == 0 && ctx.Err() != nil {
			return false
		}
		out := make(types.Row, len(idxs))
		for i, c := range idxs {
			out[i] = r[c]
		}
		rows = append(rows, out)
		return true
	})
	return NewMemSource(schema, rows)
}

func projectSchema(s *types.Schema, cols []string) ([]types.Column, []int) {
	if cols == nil {
		idxs := make([]int, len(s.Cols))
		for i := range idxs {
			idxs[i] = i
		}
		return s.Cols, idxs
	}
	schema := make([]types.Column, len(cols))
	idxs := make([]int, len(cols))
	for i, name := range cols {
		j := s.MustCol(name)
		schema[i] = s.Cols[j]
		idxs[i] = j
	}
	return schema, idxs
}

// --- column-store scan ---

type colScan struct {
	ctx     context.Context
	tbl     *colstore.Table
	schema  []types.Column
	idxs    []int
	pred    *ScanPred
	predIdx int
	overlay *delta.Overlay

	segs    []*colstore.Segment
	seg     int
	row     int
	overRem []types.Row
	done    bool

	// Pushed-down predicates (see pushdown.go): evaluated on encoded
	// vectors into a per-segment selection bitmap; rows are then
	// late-materialized from the selected positions only.
	pushed []colPred
	selObs func(sel float64)
	curSel *bitmap.Bitmap
	posBuf []int

	// Profiling (nil when disabled): scanned/materialized row counters the
	// pushed path feeds, shared with split parts.
	st *OpStats
}

func (s *colScan) attachStats(st *OpStats) { s.st = st }

// NewColScan scans the column store, merging an optional delta overlay: the
// paper's "in-memory delta and column scan" when the overlay comes from a
// Mem delta, its "log-based delta and column scan" when it comes from a Log
// delta, and its pure "column scan" when the overlay is nil. The scan polls
// ctx between batches, so cancelling the context stops a multi-segment scan
// mid-flight; Plan.RunCtx surfaces the context error.
func NewColScan(ctx context.Context, tbl *colstore.Table, cols []string, pred *ScanPred, overlay *delta.Overlay) Source {
	schema, idxs := projectSchema(tbl.Schema, cols)
	s := &colScan{ctx: orBackground(ctx), tbl: tbl, schema: schema, idxs: idxs, pred: pred, predIdx: -1, overlay: overlay}
	s.segs = tbl.Segments()
	if pred != nil {
		if i := tbl.Schema.ColIndex(pred.Col); i >= 0 && tbl.Schema.Cols[i].Type == types.Int {
			s.predIdx = i
		}
	}
	if overlay != nil {
		// Materialize in key order: overlay.Rows is a map, and map
		// iteration order must not leak into query results.
		keys := make([]int64, 0, len(overlay.Rows))
		for k := range overlay.Rows {
			keys = append(keys, k)
		}
		sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
		for _, k := range keys {
			r := overlay.Rows[k]
			out := make(types.Row, len(idxs))
			for i, c := range idxs {
				out[i] = r[c]
			}
			s.overRem = append(s.overRem, out)
		}
	}
	return s
}

func (s *colScan) Schema() []types.Column { return s.schema }

func (s *colScan) Next() *Batch {
	if s.done {
		return nil
	}
	if s.ctx.Err() != nil {
		// Cancelled or past deadline: abandon the remaining segments. The
		// batch-granular check bounds post-cancel work to one batch.
		s.done = true
		return nil
	}
	b := NewBatch(s.schema)
	if len(s.pushed) > 0 {
		s.fillPushed(b)
	} else {
		s.fillScan(b)
	}
	for b.N < BatchSize && len(s.overRem) > 0 {
		r := s.overRem[len(s.overRem)-1]
		s.overRem = s.overRem[:len(s.overRem)-1]
		if len(s.pushed) > 0 && !s.matchOverlayRow(r) {
			continue
		}
		b.AppendRow(r)
	}
	if b.N == 0 {
		s.done = true
		return nil
	}
	return b
}

// fillScan is the unfiltered path: decode every live row of every segment.
func (s *colScan) fillScan(b *Batch) {
	for b.N < BatchSize && s.seg < len(s.segs) {
		seg := s.segs[s.seg]
		if s.row == 0 && s.predIdx >= 0 && seg.Zones[s.predIdx].PruneInt(s.pred.Lo, s.pred.Hi) {
			s.seg++
			continue
		}
		mask := seg.DeleteMask()
		for s.row < seg.N && b.N < BatchSize {
			i := s.row
			s.row++
			if mask.Get(i) {
				continue
			}
			if s.overlay != nil {
				if _, masked := s.overlay.Masked[seg.Keys[i]]; masked {
					continue
				}
			}
			for c, idx := range s.idxs {
				b.Cols[c].Append(seg.Cols[idx].Datum(i))
			}
			b.N++
		}
		if s.row >= seg.N {
			s.seg++
			s.row = 0
		}
	}
}

// fillPushed is the selection-vector path: at each segment entry, evaluate
// the pushed predicates on the encoded vectors (computeSel), then decode
// only the selected positions of only the projected columns. Row order is
// identical to fillScan followed by a downstream filter.
func (s *colScan) fillPushed(b *Batch) {
	for b.N < BatchSize && s.seg < len(s.segs) {
		seg := s.segs[s.seg]
		if s.row == 0 {
			if s.predIdx >= 0 && seg.Zones[s.predIdx].PruneInt(s.pred.Lo, s.pred.Hi) {
				s.seg++
				continue
			}
			sel, skip := s.computeSel(seg)
			if skip {
				s.seg++
				continue
			}
			s.curSel = sel
			pushRowsScanned.Add(int64(seg.N))
			if s.st != nil {
				s.st.scanned.Add(int64(seg.N))
			}
		}
		pos := s.posBuf[:0]
		i := s.curSel.NextSet(s.row)
		for i >= 0 && i < seg.N && b.N+len(pos) < BatchSize {
			if s.overlay != nil {
				if _, masked := s.overlay.Masked[seg.Keys[i]]; masked {
					i = s.curSel.NextSet(i + 1)
					continue
				}
			}
			pos = append(pos, i)
			i = s.curSel.NextSet(i + 1)
		}
		s.posBuf = pos[:0]
		if len(pos) > 0 {
			for c, idx := range s.idxs {
				gather(b.Cols[c], seg.Cols[idx], pos)
			}
			b.N += len(pos)
			pushRowsMat.Add(int64(len(pos)))
			if s.st != nil {
				s.st.matzd.Add(int64(len(pos)))
			}
		}
		if i < 0 || i >= seg.N {
			s.seg++
			s.row = 0
			s.curSel = nil
		} else {
			s.row = i
		}
	}
}

// Split cuts the scan into contiguous runs of fixed-size morsels, one part
// per worker. Assignment is range-based and static — boundaries depend
// only on segment sizes and n — so repeated runs at the same parallelism
// degree touch rows in the same order, and part-order concatenation equals
// the sequential scan: segment rows first, then the delta overlay rows on
// a trailing part.
func (s *colScan) Split(n int) []Source {
	if s.done || s.seg > 0 || s.row > 0 {
		return nil
	}
	s.done = true
	morsels := colstore.Morsels(s.segs, MorselRows)
	chunk := (len(morsels) + n - 1) / n
	if chunk == 0 {
		chunk = 1
	}
	var parts []Source
	for lo := 0; lo < len(morsels); lo += chunk {
		hi := lo + chunk
		if hi > len(morsels) {
			hi = len(morsels)
		}
		parts = append(parts, &colScanPart{scan: s, morsels: morsels[lo:hi]})
	}
	if len(s.overRem) > 0 {
		parts = append(parts, &colScanPart{scan: s, overRem: s.overRem})
	}
	return parts
}

// colScanPart drains one worker's share of a split colScan. Parts share
// the parent's immutable segment snapshot, predicate, and overlay; only
// the delete bitmap is snapshotted (per segment, cached across that
// segment's morsels). Cancellation is polled per morsel, the same
// granularity as the sequential scan's per-batch check.
type colScanPart struct {
	scan    *colScan
	morsels []colstore.Morsel
	overRem []types.Row

	cur     int
	lastSeg *colstore.Segment
	mask    *bitmap.Bitmap
	done    bool

	// Pushed-predicate state, cached per segment across its morsels: the
	// selection bitmap and whether zone maps pruned the whole segment.
	sel     *bitmap.Bitmap
	segSkip bool
	posBuf  []int
}

func (p *colScanPart) Schema() []types.Column { return p.scan.schema }

func (p *colScanPart) Next() *Batch {
	s := p.scan
	if p.done {
		return nil
	}
	for p.cur < len(p.morsels) {
		if s.ctx.Err() != nil {
			p.done = true
			return nil
		}
		m := p.morsels[p.cur]
		p.cur++
		morselsTotal.Inc()
		if s.predIdx >= 0 && m.Seg.Zones[s.predIdx].PruneInt(s.pred.Lo, s.pred.Hi) {
			continue
		}
		if len(s.pushed) > 0 {
			if b := p.nextPushed(m); b != nil {
				return b
			}
			continue
		}
		if m.Seg != p.lastSeg {
			p.lastSeg = m.Seg
			p.mask = m.Seg.DeleteMask()
		}
		b := NewBatch(s.schema)
		for i := m.Lo; i < m.Hi; i++ {
			if p.mask.Get(i) {
				continue
			}
			if s.overlay != nil {
				if _, masked := s.overlay.Masked[m.Seg.Keys[i]]; masked {
					continue
				}
			}
			for c, idx := range s.idxs {
				b.Cols[c].Append(m.Seg.Cols[idx].Datum(i))
			}
			b.N++
		}
		if b.N > 0 {
			return b
		}
	}
	for len(p.overRem) > 0 {
		if s.ctx.Err() != nil {
			p.done = true
			return nil
		}
		b := NewBatch(s.schema)
		for b.N < BatchSize && len(p.overRem) > 0 {
			r := p.overRem[len(p.overRem)-1]
			p.overRem = p.overRem[:len(p.overRem)-1]
			if len(s.pushed) > 0 && !s.matchOverlayRow(r) {
				continue
			}
			b.AppendRow(r)
		}
		if b.N > 0 {
			return b
		}
	}
	p.done = true
	return nil
}

// nextPushed drains one morsel through the selection-vector path: the
// segment's selection bitmap (computed once, cached across the segment's
// morsels) restricted to [m.Lo, m.Hi), late-materialized into one batch.
// Returns nil when the morsel selects no rows. Because the selection is a
// pure function of the segment and the predicates, the rows produced per
// morsel — and so the part-order concatenation — match the sequential scan
// at any parallelism degree.
func (p *colScanPart) nextPushed(m colstore.Morsel) *Batch {
	s := p.scan
	if m.Seg != p.lastSeg {
		p.lastSeg = m.Seg
		p.sel, p.segSkip = s.computeSel(m.Seg)
	}
	if p.segSkip {
		return nil
	}
	pushRowsScanned.Add(int64(m.Hi - m.Lo))
	if s.st != nil {
		s.st.scanned.Add(int64(m.Hi - m.Lo))
	}
	pos := p.posBuf[:0]
	for i := p.sel.NextSet(m.Lo); i >= 0 && i < m.Hi; i = p.sel.NextSet(i + 1) {
		if s.overlay != nil {
			if _, masked := s.overlay.Masked[m.Seg.Keys[i]]; masked {
				continue
			}
		}
		pos = append(pos, i)
	}
	p.posBuf = pos[:0]
	if len(pos) == 0 {
		return nil
	}
	b := NewBatch(s.schema)
	for c, idx := range s.idxs {
		gather(b.Cols[c], m.Seg.Cols[idx], pos)
	}
	b.N = len(pos)
	pushRowsMat.Add(int64(len(pos)))
	if s.st != nil {
		s.st.matzd.Add(int64(len(pos)))
	}
	return b
}

// --- union ---

type unionSource struct {
	srcs []Source
	cur  int
}

// attachStats forwards the profiling node to scan children, so a wrapped
// union aggregates its layers' pushdown selectivity into one node.
func (s *unionSource) attachStats(st *OpStats) {
	for _, c := range s.srcs {
		if a, ok := c.(statAttacher); ok {
			a.attachStats(st)
		}
	}
}

// errSource is a source that exists only to carry a construction-time
// error. It yields no rows; From recognizes it and returns an
// error-carrying plan (FromError), so misconstructed sources surface as
// query errors instead of panics or silently empty tables.
type errSource struct{ err error }

func (s *errSource) Schema() []types.Column { return nil }
func (s *errSource) Next() *Batch           { return nil }

// NewUnion concatenates sources with identical schemas; layered stores
// (main + delta layers) scan as a union. A union of zero sources is a
// construction error: the result carries it (see errSource) rather than
// panicking, and a plan built from it reports the error when run.
func NewUnion(srcs ...Source) Source {
	if len(srcs) == 0 {
		return &errSource{err: errors.New("exec: union of zero sources")}
	}
	for _, s := range srcs {
		if es, ok := s.(*errSource); ok {
			return es
		}
	}
	for _, s := range srcs[1:] {
		if len(s.Schema()) != len(srcs[0].Schema()) {
			panic("exec: union schema mismatch")
		}
	}
	return &unionSource{srcs: srcs}
}

func (s *unionSource) Schema() []types.Column { return s.srcs[0].Schema() }

func (s *unionSource) Next() *Batch {
	for s.cur < len(s.srcs) {
		if b := s.srcs[s.cur].Next(); b != nil {
			return b
		}
		s.cur++
	}
	return nil
}

// Split partitions every child and concatenates the parts in child order,
// so part-order concatenation preserves the union's sequential row order.
// Children that cannot split become single parts, which still parallelizes
// a union of shards across the shards themselves.
func (s *unionSource) Split(n int) []Source {
	if s.cur > 0 {
		return nil
	}
	s.cur = len(s.srcs)
	per := (n + len(s.srcs) - 1) / len(s.srcs)
	var parts []Source
	for _, c := range s.srcs {
		if ps := trySplit(c, per); ps != nil {
			parts = append(parts, ps...)
		} else {
			parts = append(parts, c)
		}
	}
	return parts
}

// --- parallel union ---

type parallelSource struct {
	ctx    context.Context
	schema []types.Column
	ch     chan *Batch
	once   sync.Once
	srcs   []Source
}

// NewParallel drains the sources concurrently (one goroutine each) and
// multiplexes their batches. Architectures with a *distributed* column
// store (B's learner replicas, C's IMCS cluster) scan their shards this
// way; row order is not preserved, which no aggregate in the repository
// depends on. Cancelling ctx releases the drain goroutines even when the
// consumer stops pulling batches, so an abandoned query leaks nothing.
func NewParallel(ctx context.Context, srcs ...Source) Source {
	if len(srcs) == 1 {
		return srcs[0]
	}
	if len(srcs) == 0 {
		return &errSource{err: errors.New("exec: parallel union of zero sources")}
	}
	return &parallelSource{ctx: orBackground(ctx), schema: srcs[0].Schema(), srcs: srcs, ch: make(chan *Batch, 4)}
}

func (s *parallelSource) Schema() []types.Column { return s.schema }

func (s *parallelSource) start() {
	var wg sync.WaitGroup
	for _, src := range s.srcs {
		wg.Add(1)
		go func(src Source) {
			defer wg.Done()
			for {
				b := src.Next()
				if b == nil {
					return
				}
				select {
				case s.ch <- b:
				case <-s.ctx.Done():
					return
				}
			}
		}(src)
	}
	go func() {
		wg.Wait()
		close(s.ch)
	}()
}

func (s *parallelSource) Next() *Batch {
	s.once.Do(s.start)
	select {
	case b := <-s.ch:
		return b
	case <-s.ctx.Done():
		return nil
	}
}

// --- filter ---

type filterOp struct {
	in   Source
	expr Expr
}

func (o *filterOp) Schema() []types.Column { return o.in.Schema() }

func (o *filterOp) Next() *Batch {
	for {
		b := o.in.Next()
		if b == nil {
			return nil
		}
		out := NewBatch(b.Schema)
		for i := 0; i < b.N; i++ {
			if o.expr.Eval(b, i).Int() != 0 {
				for c := range out.Cols {
					out.Cols[c].AppendFrom(b.Cols[c], i)
				}
				out.N++
			}
		}
		if out.N > 0 {
			return out
		}
	}
}

// Split partitions the input and wraps each part in its own filter, so a
// scan-filter pipeline runs whole on each worker. The bound expression is
// shared: evaluation is read-only.
func (o *filterOp) Split(n int) []Source {
	parts := trySplit(o.in, n)
	if parts == nil {
		return nil
	}
	out := make([]Source, len(parts))
	for i, p := range parts {
		out[i] = &filterOp{in: p, expr: o.expr}
	}
	return out
}

// --- project ---

// NamedExpr pairs an output column name with its defining expression.
type NamedExpr struct {
	Name string
	Expr Expr
}

type projectOp struct {
	in     Source
	schema []types.Column
	exprs  []Expr
}

func newProject(in Source, exprs []NamedExpr) *projectOp {
	schema := make([]types.Column, len(exprs))
	bound := make([]Expr, len(exprs))
	for i, ne := range exprs {
		schema[i] = types.Column{Name: ne.Name, Type: ne.Expr.Type(in.Schema())}
		bound[i] = ne.Expr.Bind(in.Schema())
	}
	return &projectOp{in: in, schema: schema, exprs: bound}
}

func (o *projectOp) Schema() []types.Column { return o.schema }

func (o *projectOp) Next() *Batch {
	b := o.in.Next()
	if b == nil {
		return nil
	}
	out := NewBatch(o.schema)
	for i := 0; i < b.N; i++ {
		for c, e := range o.exprs {
			out.Cols[c].Append(e.Eval(b, i))
		}
	}
	out.N = b.N
	return out
}

// Split mirrors filterOp.Split: per-worker projection over the split
// input, sharing the read-only bound expressions.
func (o *projectOp) Split(n int) []Source {
	parts := trySplit(o.in, n)
	if parts == nil {
		return nil
	}
	out := make([]Source, len(parts))
	for i, p := range parts {
		out[i] = &projectOp{in: p, schema: o.schema, exprs: o.exprs}
	}
	return out
}

// --- hash join ---

// JoinType selects join semantics.
type JoinType uint8

// Join types: inner produces matched pairs; semi/anti produce left rows
// with (no) matches, used for EXISTS / NOT EXISTS subqueries.
const (
	InnerJoin JoinType = iota + 1
	LeftSemiJoin
	LeftAntiJoin
)

type hashJoinOp struct {
	typ        JoinType
	left       Source
	schema     []types.Column
	leftKeys   []int
	rightKeys  []int
	buildRows  *Batch
	buckets    map[uint64][]int
	rightWidth int
	buildOnce  sync.Once
	buildSrc   Source
	par        int
	ctx        context.Context
	mem        *QueryMem

	// Grace-mode state (memory-governed builds that went over budget): the
	// build side lives hash-partitioned in spill files instead of one
	// in-memory table, and probing proceeds partition by partition.
	grace      bool
	buildW     []*spillWriter // one per partition, nil until toGrace
	buildBytes int64          // charged bytes of the in-memory build table
	gout       *graceProbe    // sequential probe stream, lazily built

	st *OpStats // profiling; nil when disabled
}

func (o *hashJoinOp) attachStats(st *OpStats) { o.st = st }

func newHashJoin(typ JoinType, left, right Source, leftCols, rightCols []string, par int, ctx context.Context, mem *QueryMem) *hashJoinOp {
	if len(leftCols) != len(rightCols) || len(leftCols) == 0 {
		panic("exec: join key arity mismatch")
	}
	lk := make([]int, len(leftCols))
	for i, c := range leftCols {
		lk[i] = colIndex(left.Schema(), c)
	}
	rk := make([]int, len(rightCols))
	for i, c := range rightCols {
		rk[i] = colIndex(right.Schema(), c)
	}
	var schema []types.Column
	schema = append(schema, left.Schema()...)
	if typ == InnerJoin {
		for _, c := range right.Schema() {
			for _, l := range left.Schema() {
				if l.Name == c.Name {
					panic(fmt.Sprintf("exec: join output column %q is ambiguous", c.Name))
				}
			}
		}
		schema = append(schema, right.Schema()...)
	}
	return &hashJoinOp{
		typ: typ, left: left, schema: schema,
		leftKeys: lk, rightKeys: rk,
		rightWidth: len(right.Schema()), buildSrc: right, par: par,
		ctx: orBackground(ctx), mem: mem,
	}
}

func (o *hashJoinOp) Schema() []types.Column { return o.schema }

func hashKeys(b *Batch, i int, keys []int) uint64 {
	h := uint64(1469598103934665603)
	for _, k := range keys {
		h = b.Cols[k].Datum(i).Hash(h)
	}
	return h
}

func keysEqual(lb *Batch, li int, lk []int, rb *Batch, ri int, rk []int) bool {
	for i := range lk {
		if !lb.Cols[lk[i]].Datum(li).Equal(rb.Cols[rk[i]].Datum(ri)) {
			return false
		}
	}
	return true
}

// build materializes the right side into buildRows + buckets. With par >
// 1 and a splittable build source, workers materialize and hash disjoint
// partitions in parallel; the partitions are then merged into one table
// sequentially in part order, so bucket entry order — and with it the
// order of multi-match probe output — is identical to a sequential build.
// Every build loop polls ctx per batch, so a cancelled query abandons the
// build promptly instead of materializing the whole right side first.
// Memory-governed builds (mem != nil) run sequentially and convert to a
// grace (partitioned, spilled) build when they go over budget.
func (o *hashJoinOp) build() {
	if o.mem != nil {
		o.buildGoverned()
		return
	}
	parts := trySplit(o.buildSrc, o.par)
	if parts == nil {
		o.buildRows = NewBatch(o.buildSrc.Schema())
		o.buckets = make(map[uint64][]int)
		for o.ctx.Err() == nil {
			b := o.buildSrc.Next()
			if b == nil {
				return
			}
			o.buildInto(b)
		}
		return
	}
	type buildPart struct {
		rows   *Batch
		hashes []uint64
	}
	res := make([]buildPart, len(parts))
	tasks := make([]func(), len(parts))
	for w := range parts {
		w := w
		tasks[w] = func() {
			src := parts[w]
			rows := NewBatch(src.Schema())
			var hashes []uint64
			for o.ctx.Err() == nil {
				b := src.Next()
				if b == nil {
					break
				}
				for i := 0; i < b.N; i++ {
					for c := range b.Cols {
						rows.Cols[c].AppendFrom(b.Cols[c], i)
					}
					rows.N++
					hashes = append(hashes, hashKeys(b, i, o.rightKeys))
				}
			}
			res[w] = buildPart{rows: rows, hashes: hashes}
		}
	}
	SharedPool().Run(tasks)
	start := time.Now()
	o.buildRows = NewBatch(res[0].rows.Schema)
	o.buckets = make(map[uint64][]int)
	for _, bp := range res {
		for i := 0; i < bp.rows.N; i++ {
			idx := o.buildRows.N
			for c := range bp.rows.Cols {
				o.buildRows.Cols[c].AppendFrom(bp.rows.Cols[c], i)
			}
			o.buildRows.N++
			o.buckets[bp.hashes[i]] = append(o.buckets[bp.hashes[i]], idx)
		}
	}
	mergeNS.Add(time.Since(start).Nanoseconds())
}

// buildGoverned drains the build side sequentially under the memory
// accountant. The sequential choice is deliberate: a parallel build's
// transient per-part tables would dodge the moment-of-overflow accounting,
// and the part-order merge makes its final table identical to a sequential
// build anyway, so correctness is unaffected — a governed build trades the
// build-side speedup for an accurately enforced budget. On overflow the
// buffered rows scatter to hash partitions on disk (toGrace) and the
// remainder of the stream follows them.
func (o *hashJoinOp) buildGoverned() {
	o.buildRows = NewBatch(o.buildSrc.Schema())
	o.buckets = make(map[uint64][]int)
	for {
		if o.ctx.Err() != nil || o.mem.Err() != nil {
			return
		}
		b := o.buildSrc.Next()
		if b == nil {
			break
		}
		if o.grace {
			o.scatterBuild(b)
			coopYield()
			continue
		}
		o.buildInto(b)
		sz := batchAppendBytes(b)
		o.mem.Grow(sz)
		o.buildBytes += sz
		if o.mem.Over() && o.buildRows.N > 0 {
			o.toGrace()
		}
		coopYield()
	}
	if o.grace {
		_ = closeAll(o.buildW)
	}
}

// toGrace converts the in-memory build table into spillFanout disk
// partitions. Rows scatter in table order, so each partition file holds
// its rows in global build order — reloading a partition reproduces the
// bucket insertion order of an in-memory build restricted to it, which
// keeps multi-match probe output order bit-identical.
func (o *hashJoinOp) toGrace() {
	o.grace = true
	o.mem.noteSpill(spillsJoin, spillFanout)
	o.st.addSpillParts(spillFanout)
	o.buildW = make([]*spillWriter, spillFanout)
	for i := range o.buildW {
		o.buildW[i] = newSpillWriter(o.mem, fmt.Sprintf("join-build-p%d", i))
	}
	for i := 0; i < o.buildRows.N; i++ {
		r := o.buildRows.Row(i)
		if o.buildW[partOf(hashRowKeys(r, o.rightKeys), 0)].add(r) != nil {
			break
		}
	}
	o.mem.Shrink(o.buildBytes)
	o.buildBytes = 0
	o.buildRows = NewBatch(o.buildSrc.Schema())
	o.buckets = make(map[uint64][]int)
}

// scatterBuild routes one build batch into the grace partitions.
func (o *hashJoinOp) scatterBuild(b *Batch) {
	for i := 0; i < b.N; i++ {
		h := hashKeys(b, i, o.rightKeys)
		if o.buildW[partOf(h, 0)].add(b.Row(i)) != nil {
			return
		}
	}
}

// rowKeysEqual compares a materialized probe row's key columns against one
// row of the build table.
func rowKeysEqual(lr types.Row, lk []int, tbl *Batch, ri int, rk []int) bool {
	for i := range lk {
		if !lr[lk[i]].Equal(tbl.Cols[rk[i]].Datum(ri)) {
			return false
		}
	}
	return true
}

// graceProbe is one probe stream's output over a grace (spilled) build.
// Construction does the heavy lifting: probe rows are tagged with their
// stream ordinal and scattered to per-partition spill files, each probe
// partition joins against its build partition (partitionOut), and the
// per-partition tagged outputs merge back into probe order — so a grace
// join emits rows in exactly the order an in-memory probe would have.
// Each probe stream (the operator at DOP 1, or each split part) owns a
// private graceProbe; only the depth-0 build partition files are shared.
type graceProbe struct {
	op     *hashJoinOp
	mt     *mergeTagged
	failed bool
}

func newGraceProbe(o *hashJoinOp, left Source) *graceProbe {
	gp := &graceProbe{op: o}
	qm := o.mem
	pw := make([]*spillWriter, spillFanout)
	for i := range pw {
		pw[i] = newSpillWriter(qm, "join-probe")
	}
	var tag int64
scatter:
	for o.ctx.Err() == nil && qm.Err() == nil {
		b := left.Next()
		if b == nil {
			break
		}
		for i := 0; i < b.N; i++ {
			h := hashKeys(b, i, o.leftKeys)
			r := append(types.Row{types.NewInt(tag)}, b.Row(i)...)
			tag++
			if pw[partOf(h, 0)].add(r) != nil {
				break scatter
			}
		}
		coopYield()
	}
	if closeAll(pw) != nil || qm.Err() != nil || o.ctx.Err() != nil {
		gp.failed = true
		return gp
	}
	outs := make([]string, 0, spillFanout)
	for p := 0; p < spillFanout; p++ {
		out, err := o.partitionOut(o.buildW[p].name, pw[p].name, 0, false)
		if err != nil {
			gp.failed = true
			return gp
		}
		outs = append(outs, out)
	}
	mt, err := newMergeTagged(qm, outs)
	if err != nil {
		gp.failed = true
		return gp
	}
	gp.mt = mt
	return gp
}

func (gp *graceProbe) Next() *Batch {
	if gp.failed || gp.mt == nil {
		return nil
	}
	b := NewBatch(gp.op.schema)
	for b.N < BatchSize {
		r, ok, err := gp.mt.next()
		if err != nil {
			gp.failed = true
			return nil
		}
		if !ok {
			break
		}
		b.AppendRow(r[1:])
	}
	if b.N == 0 {
		return nil
	}
	coopYield()
	return b
}

// partitionOut joins one build partition file against one tagged probe
// partition file and returns a spill file of tagged output rows in
// ascending probe order. The build partition loads into memory; if it
// alone exceeds the budget and depth permits, both files re-scatter under
// the next depth's hash salt and the join recurses per sub-partition
// (repartition), merging sub-outputs by tag. On success the probe file is
// removed eagerly, and the build file too when ownBuild (sub-partition
// files are private; depth-0 build files are shared across probe streams
// and live until QueryMem.Finish). Error paths lean on Finish for file
// cleanup — every spill file is tracked by the accountant.
func (o *hashJoinOp) partitionOut(bf, pf string, depth int, ownBuild bool) (string, error) {
	qm := o.mem
	tbl := NewBatch(o.buildSrc.Schema())
	buckets := make(map[uint64][]int)
	var charged int64
	bc := newSpillCursor(qm, bf)
	for {
		r, ok, err := bc.next()
		if err != nil {
			return "", err
		}
		if !ok {
			break
		}
		h := hashRowKeys(r, o.rightKeys)
		buckets[h] = append(buckets[h], tbl.N)
		tbl.AppendRow(r)
		sz := rowBytes(r)
		qm.Grow(sz)
		charged += sz
		if qm.Over() && depth < spillMaxDepth && tbl.N > 1 {
			return o.repartition(bf, pf, bc, tbl, charged, depth, ownBuild)
		}
		if tbl.N%BatchSize == 0 {
			coopYield()
		}
	}
	if qm.Over() {
		// Depth cap (or a partition of indivisible duplicates): degrade to
		// an in-memory join of this partition and record the overshoot.
		qm.noteOver()
	}
	w := newSpillWriter(qm, "join-out")
	pc := newSpillCursor(qm, pf)
	for probed := 0; ; probed++ {
		if probed%BatchSize == 0 {
			if err := o.ctx.Err(); err != nil {
				qm.Shrink(charged)
				return "", err
			}
			coopYield()
		}
		tr, ok, err := pc.next()
		if err != nil {
			qm.Shrink(charged)
			return "", err
		}
		if !ok {
			break
		}
		lr := tr[1:]
		matched := false
		for _, ri := range buckets[hashRowKeys(lr, o.leftKeys)] {
			if !rowKeysEqual(lr, o.leftKeys, tbl, ri, o.rightKeys) {
				continue
			}
			matched = true
			if o.typ != InnerJoin {
				break
			}
			outRow := make(types.Row, 0, 1+len(o.schema))
			outRow = append(outRow, tr[0])
			outRow = append(outRow, lr...)
			outRow = append(outRow, tbl.Row(ri)...)
			if err := w.add(outRow); err != nil {
				qm.Shrink(charged)
				return "", err
			}
		}
		if (o.typ == LeftSemiJoin && matched) || (o.typ == LeftAntiJoin && !matched) {
			if err := w.add(tr); err != nil {
				qm.Shrink(charged)
				return "", err
			}
		}
	}
	qm.Shrink(charged)
	if err := w.close(); err != nil {
		return "", err
	}
	qm.removeFile(pf)
	if ownBuild {
		qm.removeFile(bf)
	}
	return w.name, nil
}

// repartition re-scatters one oversized partition pair under the next
// depth's hash salt, recurses per sub-partition, and merges the tagged
// sub-outputs into a single output run. tbl holds the build rows loaded so
// far (written out first, in order, so build order is preserved); bc is
// the partly-consumed build cursor.
func (o *hashJoinOp) repartition(bf, pf string, bc *spillCursor, tbl *Batch, charged int64, depth int, ownBuild bool) (string, error) {
	qm := o.mem
	qm.noteSpill(spillsJoin, spillFanout)
	o.st.addSpillParts(spillFanout)
	sbw := make([]*spillWriter, spillFanout)
	spw := make([]*spillWriter, spillFanout)
	for i := range sbw {
		sbw[i] = newSpillWriter(qm, fmt.Sprintf("join-build-d%d-p%d", depth+1, i))
		spw[i] = newSpillWriter(qm, fmt.Sprintf("join-probe-d%d-p%d", depth+1, i))
	}
	for i := 0; i < tbl.N; i++ {
		r := tbl.Row(i)
		if err := sbw[partOf(hashRowKeys(r, o.rightKeys), depth+1)].add(r); err != nil {
			qm.Shrink(charged)
			return "", err
		}
	}
	qm.Shrink(charged)
	for {
		r, ok, err := bc.next()
		if err != nil {
			return "", err
		}
		if !ok {
			break
		}
		if err := sbw[partOf(hashRowKeys(r, o.rightKeys), depth+1)].add(r); err != nil {
			return "", err
		}
	}
	pc := newSpillCursor(qm, pf)
	for {
		tr, ok, err := pc.next()
		if err != nil {
			return "", err
		}
		if !ok {
			break
		}
		if err := spw[partOf(hashRowKeys(tr[1:], o.leftKeys), depth+1)].add(tr); err != nil {
			return "", err
		}
	}
	if err := closeAll(sbw); err != nil {
		return "", err
	}
	if err := closeAll(spw); err != nil {
		return "", err
	}
	qm.removeFile(pf)
	if ownBuild {
		qm.removeFile(bf)
	}
	outs := make([]string, 0, spillFanout)
	for j := 0; j < spillFanout; j++ {
		out, err := o.partitionOut(sbw[j].name, spw[j].name, depth+1, true)
		if err != nil {
			return "", err
		}
		outs = append(outs, out)
	}
	w := newSpillWriter(qm, "join-out")
	mt, err := newMergeTagged(qm, outs)
	if err != nil {
		return "", err
	}
	for {
		r, ok, err := mt.next()
		if err != nil {
			return "", err
		}
		if !ok {
			break
		}
		if err := w.add(r); err != nil {
			return "", err
		}
	}
	if err := w.close(); err != nil {
		return "", err
	}
	return w.name, nil
}

func (o *hashJoinOp) buildInto(b *Batch) {
	for i := 0; i < b.N; i++ {
		idx := o.buildRows.N
		for c := range b.Cols {
			o.buildRows.Cols[c].AppendFrom(b.Cols[c], i)
		}
		o.buildRows.N++
		h := hashKeys(b, i, o.rightKeys)
		o.buckets[h] = append(o.buckets[h], idx)
	}
}

// probe matches one left batch against the built table. Safe for
// concurrent use once build has completed: it only reads the table.
func (o *hashJoinOp) probe(b *Batch) *Batch {
	out := NewBatch(o.schema)
	for i := 0; i < b.N; i++ {
		h := hashKeys(b, i, o.leftKeys)
		matched := false
		for _, ri := range o.buckets[h] {
			if !keysEqual(b, i, o.leftKeys, o.buildRows, ri, o.rightKeys) {
				continue
			}
			matched = true
			if o.typ != InnerJoin {
				break
			}
			nl := len(b.Cols)
			for c := range b.Cols {
				out.Cols[c].AppendFrom(b.Cols[c], i)
			}
			for c := 0; c < o.rightWidth; c++ {
				out.Cols[nl+c].AppendFrom(o.buildRows.Cols[c], ri)
			}
			out.N++
		}
		if (o.typ == LeftSemiJoin && matched) || (o.typ == LeftAntiJoin && !matched) {
			for c := range b.Cols {
				out.Cols[c].AppendFrom(b.Cols[c], i)
			}
			out.N++
		}
	}
	return out
}

func (o *hashJoinOp) Next() *Batch {
	o.buildOnce.Do(o.build)
	if o.mem != nil && o.mem.Err() != nil {
		return nil
	}
	if o.grace {
		if o.gout == nil {
			o.gout = newGraceProbe(o, o.left)
		}
		return o.gout.Next()
	}
	for o.ctx.Err() == nil {
		b := o.left.Next()
		if b == nil {
			return nil
		}
		if out := o.probe(b); out.N > 0 {
			return out
		}
	}
	return nil
}

// Split partitions the probe side; every part probes the one shared hash
// table, whose construction is serialized by buildOnce (the first part to
// run builds it, in parallel when the build source splits).
func (o *hashJoinOp) Split(n int) []Source {
	parts := trySplit(o.left, n)
	if parts == nil {
		return nil
	}
	out := make([]Source, len(parts))
	for i, p := range parts {
		out[i] = &hashJoinProbe{op: o, left: p}
	}
	return out
}

// hashJoinProbe is one worker's probe stream over a split hash join. Under
// a grace build each worker runs a private graceProbe over its own left
// part (sharing only the depth-0 build partition files), so part outputs
// concatenate to the same rows as a sequential grace probe.
type hashJoinProbe struct {
	op   *hashJoinOp
	left Source
	gout *graceProbe
}

func (p *hashJoinProbe) Schema() []types.Column { return p.op.schema }

func (p *hashJoinProbe) Next() *Batch {
	p.op.buildOnce.Do(p.op.build)
	o := p.op
	if o.mem != nil && o.mem.Err() != nil {
		return nil
	}
	if o.grace {
		if p.gout == nil {
			p.gout = newGraceProbe(o, p.left)
		}
		return p.gout.Next()
	}
	for o.ctx.Err() == nil {
		b := p.left.Next()
		if b == nil {
			return nil
		}
		if out := o.probe(b); out.N > 0 {
			return out
		}
	}
	return nil
}

// --- hash aggregate ---

// AggKind is an aggregate function.
type AggKind uint8

// Aggregate functions.
const (
	Sum AggKind = iota + 1
	Count
	Avg
	Min
	Max
)

// Agg is one aggregate output: Kind over Expr, named Name. Count ignores
// Expr (COUNT(*)).
type Agg struct {
	Kind AggKind
	Expr Expr
	Name string
}

type aggState struct {
	sum   exactSum
	isum  int64
	count int64
	min   types.Datum
	max   types.Datum
}

type hashAggOp struct {
	in       Source
	groupBy  []Expr
	aggs     []Agg
	aggExprs []Expr
	schema   []types.Column
	intSum   []bool
	par      int
	ctx      context.Context
	mem      *QueryMem

	done   bool
	failed bool
	out    []types.Row
	pos    int

	st *OpStats // profiling; nil when disabled
}

func (o *hashAggOp) attachStats(st *OpStats) { o.st = st }

func newHashAgg(in Source, groupBy []string, aggs []Agg, par int, ctx context.Context, mem *QueryMem) *hashAggOp {
	o := &hashAggOp{in: in, aggs: aggs, par: par, ctx: orBackground(ctx), mem: mem}
	ins := in.Schema()
	for _, g := range groupBy {
		o.schema = append(o.schema, ins[colIndex(ins, g)])
		o.groupBy = append(o.groupBy, ColName(g).Bind(ins))
	}
	o.intSum = make([]bool, len(aggs))
	for i, a := range aggs {
		var kind types.ColType
		switch a.Kind {
		case Count:
			kind = types.Int
		case Sum:
			if a.Expr.Type(ins) == types.Int {
				kind = types.Int
				o.intSum[i] = true
			} else {
				kind = types.Float
			}
		case Avg:
			kind = types.Float
		default:
			kind = a.Expr.Type(ins)
		}
		o.schema = append(o.schema, types.Column{Name: a.Name, Type: kind})
		if a.Expr != nil {
			o.aggExprs = append(o.aggExprs, a.Expr.Bind(ins))
		} else {
			o.aggExprs = append(o.aggExprs, nil)
		}
	}
	return o
}

func (o *hashAggOp) Schema() []types.Column { return o.schema }

// aggGroup is one group's key and accumulator states. ord is the group's
// position in a single per-stream ordinal space shared with spilled raw
// rows: groups created before a spill take creation ordinals, groups
// created during replay take their creating row's tag. Sorting recovered
// groups by ord therefore reproduces exact first-seen output order.
type aggGroup struct {
	key    types.Row
	states []aggState
	ord    int64
}

// aggStateBytes approximates one accumulator's in-memory footprint for the
// accountant (sum+isum+count plus two Datums).
const aggStateBytes = 96

// aggTable is one hash-aggregation table. The sequential path uses a
// single table; the parallel path gives each worker its own table over a
// disjoint partition of the input and merges them afterwards. Under a
// memory accountant the table spills: dump group states + remaining raw
// rows to hash partitions, recurse per partition, and reassemble
// (spillRest / aggPartition).
type aggTable struct {
	o        *hashAggOp
	groups   map[uint64][]*aggGroup
	order    []*aggGroup // first-seen order, the output order
	ordSeq   int64       // next ordinal (groups and spilled rows share it)
	bytes    int64       // bytes charged to the accountant
	newBytes int64       // bytes added since the last charge
}

func newAggTable(o *hashAggOp) *aggTable {
	return &aggTable{o: o, groups: make(map[uint64][]*aggGroup)}
}

// keyHash hashes a materialized group key with the same FNV chain find
// uses on batches.
func keyHash(key types.Row) uint64 {
	h := uint64(1469598103934665603)
	for _, k := range key {
		h = k.Hash(h)
	}
	return h
}

// lookup finds or creates the group for key (pre-hashed to h). The caller
// assigns ord on creation.
func (t *aggTable) lookup(key types.Row, h uint64) (*aggGroup, bool) {
	for _, g := range t.groups[h] {
		same := true
		for gi := range key {
			if !g.key[gi].Equal(key[gi]) {
				same = false
				break
			}
		}
		if same {
			return g, false
		}
	}
	g := &aggGroup{key: key, states: make([]aggState, len(t.o.aggs))}
	t.groups[h] = append(t.groups[h], g)
	t.order = append(t.order, g)
	t.newBytes += rowBytes(key) + int64(len(t.o.aggs))*aggStateBytes
	return g, true
}

func (t *aggTable) find(b *Batch, i int) (*aggGroup, bool) {
	key := make(types.Row, len(t.o.groupBy))
	h := uint64(1469598103934665603)
	for gi, g := range t.o.groupBy {
		key[gi] = g.Eval(b, i)
		h = key[gi].Hash(h)
	}
	return t.lookup(key, h)
}

// accumulate folds row i of b into g. Shared by first-pass consumption and
// spilled-row replay, so a replayed fold is the same code — and the same
// float operation order — as an unspilled one.
func (t *aggTable) accumulate(g *aggGroup, b *Batch, i int) {
	o := t.o
	for ai, a := range o.aggs {
		st := &g.states[ai]
		st.count++
		if a.Kind == Count {
			continue
		}
		d := o.aggExprs[ai].Eval(b, i)
		switch a.Kind {
		case Sum, Avg:
			st.sum.add(d.Float())
			if d.Kind == types.Int {
				st.isum += d.I
			}
		case Min:
			if st.count == 1 || d.Compare(st.min) < 0 {
				st.min = d
			}
		case Max:
			if st.count == 1 || d.Compare(st.max) > 0 {
				st.max = d
			}
		}
	}
}

func (t *aggTable) consume(b *Batch) {
	for i := 0; i < b.N; i++ {
		g, created := t.find(b, i)
		if created {
			g.ord = t.ordSeq
			t.ordSeq++
		}
		t.accumulate(g, b, i)
	}
}

func (t *aggTable) drain(src Source) {
	for {
		b := src.Next()
		if b == nil {
			return
		}
		t.consume(b)
	}
}

// charge pushes newly accounted bytes to the accountant.
func (t *aggTable) charge() {
	if t.newBytes > 0 {
		t.o.mem.Grow(t.newBytes)
		t.bytes += t.newBytes
		t.newBytes = 0
	}
}

// drainBounded is drain under the memory accountant: when the table goes
// over budget with more than one group, the rest of the input spills and
// the aggregation finishes partition by partition. The reassembled table
// is bit-identical to an unbounded drain of the same stream.
func (t *aggTable) drainBounded(src Source) {
	o := t.o
	for {
		if o.ctx.Err() != nil || o.mem.Err() != nil {
			return
		}
		b := src.Next()
		if b == nil {
			return
		}
		t.consume(b)
		t.charge()
		if o.mem.Over() && len(t.order) > 1 {
			t.spillRest(src)
			return
		}
		coopYield()
	}
}

// merge folds other into t, visiting other's groups in their first-seen
// order. Merging part tables in part order makes both the group output
// order and the float summation order a pure function of the input order
// and the part boundaries — never of worker timing.
func (t *aggTable) merge(other *aggTable) {
	for _, og := range other.order {
		g, created := t.lookup(og.key, keyHash(og.key))
		if created {
			g.ord = t.ordSeq
			t.ordSeq++
		}
		for ai := range t.o.aggs {
			mergeAggState(&g.states[ai], &og.states[ai], t.o.aggs[ai].Kind)
		}
	}
}

// encodeGroup serializes one group as a spill record: [ord, key...,
// then per aggregate sum (the exact accumulator's bytes in a String
// datum — Go strings are binary-safe), isum, count, min, max]. Unused
// min/max slots carry an Int(0) placeholder so the record has a fixed
// arity.
func (o *hashAggOp) encodeGroup(g *aggGroup) types.Row {
	r := make(types.Row, 0, 1+len(g.key)+5*len(o.aggs))
	r = append(r, types.NewInt(g.ord))
	r = append(r, g.key...)
	zero := types.NewInt(0)
	for ai := range o.aggs {
		st := g.states[ai]
		r = append(r, types.NewString(string(st.sum.encode())), types.NewInt(st.isum), types.NewInt(st.count))
		if o.aggs[ai].Kind == Min && st.count > 0 {
			r = append(r, st.min)
		} else {
			r = append(r, zero)
		}
		if o.aggs[ai].Kind == Max && st.count > 0 {
			r = append(r, st.max)
		} else {
			r = append(r, zero)
		}
	}
	return r
}

// decodeGroup parses an encodeGroup record.
func (o *hashAggOp) decodeGroup(r types.Row) *aggGroup {
	nk := len(o.groupBy)
	g := &aggGroup{ord: r[0].I, key: r[1 : 1+nk], states: make([]aggState, len(o.aggs))}
	for ai := range o.aggs {
		off := 1 + nk + 5*ai
		sum, err := decodeExactSum([]byte(r[off].Str()))
		if err != nil {
			// Spill records are written by this process; a bad record
			// means a corrupted spill file, which the cursor's checksums
			// should have caught first.
			panic(fmt.Sprintf("exec: corrupt agg spill record: %v", err))
		}
		g.states[ai] = aggState{
			sum:   sum,
			isum:  r[off+1].I,
			count: r[off+2].I,
			min:   r[off+3],
			max:   r[off+4],
		}
	}
	return g
}

// spillRest spills the current groups' states plus the remainder of the
// input stream to hash partitions, finishes each partition recursively
// (aggPartition), and reassembles the table. Group states encode float
// bits exactly and replay continues each group's fold with the same
// accumulate code in the same row order, so the reassembled table matches
// an unbounded aggregation bit for bit.
func (t *aggTable) spillRest(src Source) {
	o := t.o
	qm := o.mem
	qm.noteSpill(spillsAgg, spillFanout)
	o.st.addSpillParts(spillFanout)
	sw := make([]*spillWriter, spillFanout)
	rw := make([]*spillWriter, spillFanout)
	for i := range sw {
		sw[i] = newSpillWriter(qm, fmt.Sprintf("agg-state-p%d", i))
		rw[i] = newSpillWriter(qm, fmt.Sprintf("agg-rows-p%d", i))
	}
	for _, g := range t.order {
		if sw[partOf(keyHash(g.key), 0)].add(o.encodeGroup(g)) != nil {
			return
		}
	}
	qm.Shrink(t.bytes)
	t.bytes, t.newBytes = 0, 0
	t.groups = make(map[uint64][]*aggGroup)
	t.order = nil
	for o.ctx.Err() == nil && qm.Err() == nil {
		b := src.Next()
		if b == nil {
			break
		}
		for i := 0; i < b.N; i++ {
			key := make(types.Row, len(o.groupBy))
			h := uint64(1469598103934665603)
			for gi, g := range o.groupBy {
				key[gi] = g.Eval(b, i)
				h = key[gi].Hash(h)
			}
			r := append(types.Row{types.NewInt(t.ordSeq)}, b.Row(i)...)
			t.ordSeq++
			if rw[partOf(h, 0)].add(r) != nil {
				return
			}
		}
		coopYield()
	}
	if closeAll(sw) != nil || closeAll(rw) != nil || qm.Err() != nil || o.ctx.Err() != nil {
		return
	}
	var all []*aggGroup
	for p := 0; p < spillFanout; p++ {
		groups, charged, err := o.aggPartition(sw[p].name, rw[p].name, 0)
		if err != nil {
			return
		}
		all = append(all, groups...)
		t.bytes += charged
	}
	sort.Slice(all, func(i, j int) bool { return all[i].ord < all[j].ord })
	for _, g := range all {
		h := keyHash(g.key)
		t.groups[h] = append(t.groups[h], g)
	}
	t.order = all
}

// consumeTagged replays spilled rows: b holds the stripped rows, tags
// their original ordinals. A group created during replay takes its
// creating row's tag as its ord.
func (t *aggTable) consumeTagged(b *Batch, tags []int64) {
	for i := 0; i < b.N; i++ {
		g, created := t.find(b, i)
		if created {
			g.ord = tags[i]
		}
		t.accumulate(g, b, i)
	}
}

// aggPartition finishes one spilled partition: load its group states,
// replay its raw rows, and return the completed groups (with their
// accountant charge still outstanding — the caller owns it). If the
// partition alone exceeds the budget and depth permits, states and
// remaining rows re-scatter under the next depth's salt and the
// aggregation recurses.
func (o *hashAggOp) aggPartition(stateFile, rowFile string, depth int) ([]*aggGroup, int64, error) {
	qm := o.mem
	sub := newAggTable(o)
	sc := newSpillCursor(qm, stateFile)
	for {
		r, ok, err := sc.next()
		if err != nil {
			return nil, 0, err
		}
		if !ok {
			break
		}
		g := o.decodeGroup(r)
		h := keyHash(g.key)
		sub.groups[h] = append(sub.groups[h], g)
		sub.order = append(sub.order, g)
		sub.newBytes += rowBytes(g.key) + int64(len(o.aggs))*aggStateBytes
	}
	sub.charge()
	qm.removeFile(stateFile)
	rc := newSpillCursor(qm, rowFile)
	rows := make([]types.Row, 0, BatchSize)
	tags := make([]int64, 0, BatchSize)
	overNoted := false
	for {
		if err := o.ctx.Err(); err != nil {
			return nil, sub.bytes, err
		}
		r, ok, err := rc.next()
		if err != nil {
			return nil, sub.bytes, err
		}
		if ok {
			tags = append(tags, r[0].I)
			rows = append(rows, r[1:])
			if len(rows) < BatchSize {
				continue
			}
		}
		if len(rows) > 0 {
			sub.consumeTagged(batchFromRows(o.in.Schema(), rows), tags)
			sub.charge()
			rows = rows[:0]
			tags = tags[:0]
			coopYield()
		}
		if !ok {
			break
		}
		if qm.Over() {
			if depth < spillMaxDepth && len(sub.order) > 1 {
				return o.respill(sub, rc, rowFile, depth)
			}
			// Depth cap (or a single dominant group): finish in memory.
			if !overNoted {
				overNoted = true
				qm.noteOver()
			}
		}
	}
	qm.removeFile(rowFile)
	return sub.order, sub.bytes, nil
}

// respill re-scatters an oversized partition's states and remaining raw
// rows (original tags preserved) under the next depth's salt and recurses.
func (o *hashAggOp) respill(sub *aggTable, rc *spillCursor, rowFile string, depth int) ([]*aggGroup, int64, error) {
	qm := o.mem
	qm.noteSpill(spillsAgg, spillFanout)
	o.st.addSpillParts(spillFanout)
	sw := make([]*spillWriter, spillFanout)
	rw := make([]*spillWriter, spillFanout)
	for i := range sw {
		sw[i] = newSpillWriter(qm, fmt.Sprintf("agg-state-d%d-p%d", depth+1, i))
		rw[i] = newSpillWriter(qm, fmt.Sprintf("agg-rows-d%d-p%d", depth+1, i))
	}
	for _, g := range sub.order {
		if err := sw[partOf(keyHash(g.key), depth+1)].add(o.encodeGroup(g)); err != nil {
			return nil, sub.bytes, err
		}
	}
	qm.Shrink(sub.bytes)
	// Scatter remaining raw rows. The partition key is the groupBy
	// expressions evaluated over the row, so rebuild small batches to
	// evaluate them — the tagged originals are what gets written.
	var tagged []types.Row
	flush := func() error {
		if len(tagged) == 0 {
			return nil
		}
		stripped := make([]types.Row, len(tagged))
		for i, r := range tagged {
			stripped[i] = r[1:]
		}
		b := batchFromRows(o.in.Schema(), stripped)
		for i := 0; i < b.N; i++ {
			h := uint64(1469598103934665603)
			for _, g := range o.groupBy {
				h = g.Eval(b, i).Hash(h)
			}
			if err := rw[partOf(h, depth+1)].add(tagged[i]); err != nil {
				return err
			}
		}
		tagged = tagged[:0]
		return nil
	}
	for {
		r, ok, err := rc.next()
		if err != nil {
			return nil, 0, err
		}
		if !ok {
			break
		}
		tagged = append(tagged, r)
		if len(tagged) >= BatchSize {
			if err := flush(); err != nil {
				return nil, 0, err
			}
		}
	}
	if err := flush(); err != nil {
		return nil, 0, err
	}
	if err := closeAll(sw); err != nil {
		return nil, 0, err
	}
	if err := closeAll(rw); err != nil {
		return nil, 0, err
	}
	qm.removeFile(rowFile)
	var all []*aggGroup
	var charged int64
	for j := 0; j < spillFanout; j++ {
		groups, c, err := o.aggPartition(sw[j].name, rw[j].name, depth+1)
		if err != nil {
			return nil, charged, err
		}
		all = append(all, groups...)
		charged += c
	}
	return all, charged, nil
}

// mergeAggState folds src into dst for one aggregate.
func mergeAggState(dst, src *aggState, kind AggKind) {
	if src.count == 0 {
		return
	}
	if dst.count == 0 {
		*dst = *src
		// The exact-sum accumulator owns a growing big.Float; aliasing it
		// between two states would corrupt both.
		dst.sum = src.sum.clone()
		return
	}
	dst.sum.merge(&src.sum)
	dst.isum += src.isum
	dst.count += src.count
	switch kind {
	case Min:
		if src.min.Compare(dst.min) < 0 {
			dst.min = src.min
		}
	case Max:
		if src.max.Compare(dst.max) > 0 {
			dst.max = src.max
		}
	}
}

// buildTable drains the input into a hash table: split into per-worker
// part tables merged in part order when the source parallelizes, a
// single sequential drain otherwise.
func (o *hashAggOp) buildTable() *aggTable {
	drainInto := func(t *aggTable, src Source) {
		if o.mem != nil {
			t.drainBounded(src)
		} else {
			t.drain(src)
		}
	}
	t := newAggTable(o)
	if parts := trySplit(o.in, o.par); parts != nil {
		parallelPlans.Inc()
		tables := make([]*aggTable, len(parts))
		tasks := make([]func(), len(parts))
		for w := range parts {
			w := w
			tasks[w] = func() {
				pt := newAggTable(o)
				drainInto(pt, parts[w])
				tables[w] = pt
			}
		}
		SharedPool().Run(tasks)
		start := time.Now()
		for _, pt := range tables {
			t.merge(pt)
		}
		mergeNS.Add(time.Since(start).Nanoseconds())
	} else {
		drainInto(t, o.in)
	}
	return t
}

// render finalizes groups to output rows: the one place accumulators
// collapse to their rendered values. Shared by the in-engine aggregate
// and the coordinator-side combine of pushed-down partials.
func (o *hashAggOp) render(order []*aggGroup) []types.Row {
	// A global aggregate over zero rows still yields one row of zeros.
	if len(order) == 0 && len(o.groupBy) == 0 {
		order = append(order, &aggGroup{states: make([]aggState, len(o.aggs))})
	}
	out := make([]types.Row, 0, len(order))
	for _, g := range order {
		row := make(types.Row, 0, len(o.schema))
		row = append(row, g.key...)
		for ai, a := range o.aggs {
			st := g.states[ai]
			switch a.Kind {
			case Count:
				row = append(row, types.NewInt(st.count))
			case Sum:
				if o.intSum[ai] {
					row = append(row, types.NewInt(st.isum))
				} else {
					row = append(row, types.NewFloat(st.sum.round()))
				}
			case Avg:
				if st.count == 0 {
					row = append(row, types.NewFloat(0))
				} else {
					row = append(row, types.NewFloat(st.sum.round()/float64(st.count)))
				}
			case Min:
				row = append(row, st.min)
			case Max:
				row = append(row, st.max)
			}
		}
		out = append(out, row)
	}
	return out
}

func (o *hashAggOp) run() {
	t := o.buildTable()
	if o.mem != nil && o.mem.Err() != nil {
		o.failed = true
		o.done = true
		return
	}
	o.out = o.render(t.order)
	o.done = true
}

func (o *hashAggOp) Next() *Batch {
	if !o.done {
		o.run()
	}
	if o.failed || o.pos >= len(o.out) {
		return nil
	}
	b := NewBatch(o.schema)
	for o.pos < len(o.out) && b.N < BatchSize {
		b.AppendRow(o.out[o.pos])
		o.pos++
	}
	return b
}

// --- sort ---

// SortKey orders output by the named column.
type SortKey struct {
	Col  string
	Desc bool
}

// sortOp sorts its whole input. In-memory it is a stable slice sort; with
// a memory accountant over budget it becomes an external merge sort:
// consecutive input chunks are stable-sorted and spilled as runs, and a
// k-way merge with run-index tie-breaking streams them back. Because runs
// are consecutive input chunks and ties resolve to the earlier run, the
// merged order equals the in-memory stable sort bit-for-bit, whatever the
// (load-dependent, nondeterministic) spill points were.
type sortOp struct {
	in   Source
	keys []SortKey
	ctx  context.Context
	mem  *QueryMem
	st   *OpStats // profiling; nil when disabled

	done     bool
	rows     []types.Row
	pos      int
	curBytes int64
	runs     []string // spilled sorted runs, in input-chunk order
	merge    *sortMerge
	failed   bool
}

func (o *sortOp) attachStats(st *OpStats) { o.st = st }

func (o *sortOp) Schema() []types.Column { return o.in.Schema() }

// lessFn builds the row comparator for the sort keys.
func (o *sortOp) lessFn() func(a, b types.Row) bool {
	idxs := make([]int, len(o.keys))
	for i, k := range o.keys {
		idxs[i] = colIndex(o.in.Schema(), k.Col)
	}
	return func(a, b types.Row) bool {
		for ki, idx := range idxs {
			c := a[idx].Compare(b[idx])
			if c == 0 {
				continue
			}
			if o.keys[ki].Desc {
				return c > 0
			}
			return c < 0
		}
		return false
	}
}

func (o *sortOp) run() {
	less := o.lessFn()
	for {
		if o.ctx != nil && o.ctx.Err() != nil {
			break
		}
		if o.mem.Err() != nil {
			o.failed = true
			o.done = true
			return
		}
		b := o.in.Next()
		if b == nil {
			break
		}
		var sz int64
		for i := 0; i < b.N; i++ {
			r := b.Row(i)
			o.rows = append(o.rows, r)
			sz += rowBytes(r)
		}
		o.mem.Grow(sz)
		o.curBytes += sz
		if o.mem.Over() && len(o.rows) > 0 {
			o.flushRun(less)
		}
		if o.mem != nil {
			coopYield()
		}
	}
	sort.SliceStable(o.rows, func(a, b int) bool { return less(o.rows[a], o.rows[b]) })
	if len(o.runs) > 0 && !o.failed {
		o.merge = newSortMerge(o.mem, o.runs, o.rows, less)
	}
	o.done = true
}

// flushRun stable-sorts the buffered chunk and spills it as one run.
func (o *sortOp) flushRun(less func(a, b types.Row) bool) {
	sort.SliceStable(o.rows, func(a, b int) bool { return less(o.rows[a], o.rows[b]) })
	if len(o.runs) == 0 {
		o.mem.noteSpill(spillsSort, 0)
	}
	spillPartsTotal.Add(1)
	o.mem.addSpillParts(1)
	o.st.addSpillParts(1)
	w := newSpillWriter(o.mem, "sort-run")
	for _, r := range o.rows {
		if w.add(r) != nil {
			o.failed = true
			break
		}
	}
	if !o.failed && w.close() != nil {
		o.failed = true
	}
	o.runs = append(o.runs, w.name)
	o.mem.Shrink(o.curBytes)
	o.curBytes = 0
	o.rows = nil
}

func (o *sortOp) Next() *Batch {
	if !o.done {
		o.run()
	}
	if o.failed || o.mem.Err() != nil {
		return nil
	}
	if o.merge != nil {
		b := NewBatch(o.Schema())
		for b.N < BatchSize {
			r, ok, err := o.merge.next()
			if err != nil {
				o.failed = true
				return nil
			}
			if !ok {
				break
			}
			b.AppendRow(r)
		}
		if b.N == 0 {
			return nil
		}
		return b
	}
	if o.pos >= len(o.rows) {
		return nil
	}
	b := NewBatch(o.Schema())
	for o.pos < len(o.rows) && b.N < BatchSize {
		b.AppendRow(o.rows[o.pos])
		o.pos++
	}
	return b
}

// sortRun is one merge input: a spilled run or the final in-memory chunk.
type sortRun struct {
	cur  *spillCursor // nil for the in-memory tail
	rows []types.Row
	pos  int
	head types.Row
	idx  int // input-chunk order, the stability tie-break
}

func (r *sortRun) advance() (ok bool, err error) {
	if r.cur != nil {
		r.head, ok, err = r.cur.next()
		return ok, err
	}
	if r.pos >= len(r.rows) {
		return false, nil
	}
	r.head = r.rows[r.pos]
	r.pos++
	return true, nil
}

// sortMerge streams the runs in sorted order. Ties between runs resolve
// to the lower run index — runs are consecutive input chunks, so this
// reproduces the stability of a whole-input stable sort.
type sortMerge struct {
	qm *QueryMem
	h  sortRunHeap
}

type sortRunHeap struct {
	runs []*sortRun
	less func(a, b types.Row) bool
}

func (h sortRunHeap) Len() int { return len(h.runs) }
func (h sortRunHeap) Less(i, j int) bool {
	a, b := h.runs[i], h.runs[j]
	if h.less(a.head, b.head) {
		return true
	}
	if h.less(b.head, a.head) {
		return false
	}
	return a.idx < b.idx
}
func (h sortRunHeap) Swap(i, j int)       { h.runs[i], h.runs[j] = h.runs[j], h.runs[i] }
func (h *sortRunHeap) Push(x interface{}) { h.runs = append(h.runs, x.(*sortRun)) }
func (h *sortRunHeap) Pop() interface{} {
	old := h.runs
	n := len(old)
	x := old[n-1]
	h.runs = old[:n-1]
	return x
}

func newSortMerge(qm *QueryMem, runs []string, tail []types.Row, less func(a, b types.Row) bool) *sortMerge {
	m := &sortMerge{qm: qm}
	m.h.less = less
	for i, name := range runs {
		r := &sortRun{cur: newSpillCursor(qm, name), idx: i}
		if ok, err := r.advance(); err != nil {
			return m // error recorded on qm; next() reports it
		} else if ok {
			m.h.runs = append(m.h.runs, r)
		} else {
			qm.removeFile(name)
		}
	}
	if len(tail) > 0 {
		r := &sortRun{rows: tail, idx: len(runs)}
		_, _ = r.advance()
		m.h.runs = append(m.h.runs, r)
	}
	heap.Init(&m.h)
	return m
}

func (m *sortMerge) next() (types.Row, bool, error) {
	if err := m.qm.Err(); err != nil {
		return nil, false, err
	}
	if len(m.h.runs) == 0 {
		return nil, false, nil
	}
	top := m.h.runs[0]
	out := top.head
	ok, err := top.advance()
	if err != nil {
		return nil, false, err
	}
	if ok {
		heap.Fix(&m.h, 0)
	} else {
		if top.cur != nil {
			m.qm.removeFile(top.cur.name)
		}
		heap.Pop(&m.h)
	}
	return out, true, nil
}

// --- limit ---

type limitOp struct {
	in   Source
	left int
}

func (o *limitOp) Schema() []types.Column { return o.in.Schema() }

func (o *limitOp) Next() *Batch {
	if o.left <= 0 {
		return nil
	}
	b := o.in.Next()
	if b == nil {
		return nil
	}
	if b.N <= o.left {
		o.left -= b.N
		return b
	}
	out := NewBatch(b.Schema)
	for i := 0; i < o.left; i++ {
		for c := range out.Cols {
			out.Cols[c].AppendFrom(b.Cols[c], i)
		}
	}
	out.N = o.left
	o.left = 0
	return out
}

// --- plan builder ---

// Plan is a fluent builder over a Source pipeline. A plan may carry an
// error (FromError): builder methods short-circuit on it and RunCtx /
// CountCtx report it instead of executing, so a failed scan source — a
// remote query whose transport died, say — cannot masquerade as an
// empty table.
type Plan struct {
	src  Source
	err  error
	par  int             // degree of parallelism; <= 1 means sequential
	ctx  context.Context // operator context (cancellation); nil = background
	qm   *QueryMem       // memory accountant; nil = ungoverned
	aux  []*QueryMem     // accountants adopted from joined plans, for Finish
	rerr []*errSlot      // deferred runtime errors (ErrSink), checked like MemErr
	prof *QueryProfile   // operator profiling; nil = disabled (zero cost)
}

// errSlot holds one deferred runtime error; the first recorded wins.
type errSlot struct {
	mu  sync.Mutex
	err error
}

func (s *errSlot) set(err error) {
	if err == nil {
		return
	}
	s.mu.Lock()
	if s.err == nil {
		s.err = err
	}
	s.mu.Unlock()
}

func (s *errSlot) get() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.err
}

// ErrSink returns a function that records a runtime error against the
// plan. Sources that discover failures only while the plan is running — a
// remote scan whose transport died mid-query, say — report through a sink,
// and RunCtx/CountCtx surface the error exactly like a spill failure
// instead of letting the poisoned source masquerade as an empty table.
// Join adoption carries sinks across plan composition, so a failure on a
// joined input still fails the joined query. Safe for concurrent use.
func (p *Plan) ErrSink() func(error) {
	s := &errSlot{}
	p.rerr = append(p.rerr, s)
	return s.set
}

// derive builds the next plan in the chain, carrying the parallelism
// degree, context, memory accountants, and profile forward. Under an
// attached profile every derived operator is wrapped in a statsOp.
func (p *Plan) derive(src Source) *Plan {
	if p.prof != nil {
		if _, ok := src.(*statsOp); !ok {
			src = newStatsOp(src)
		}
	}
	return &Plan{src: src, par: p.par, ctx: p.ctx, qm: p.qm, aux: p.aux, rerr: p.rerr, prof: p.prof}
}

// adopt records right's accountants on p so FinishMem releases them too;
// a join output plan owns both inputs' lifecycles.
func (p *Plan) adopt(right *Plan) *Plan {
	if right.qm != nil && right.qm != p.qm {
		p.aux = append(p.aux, right.qm)
	}
	for _, m := range right.aux {
		if m != p.qm {
			p.aux = append(p.aux, m)
		}
	}
	p.rerr = append(p.rerr, right.rerr...)
	return p
}

// Ctx binds a context to the plan's operators: blocking operators (join
// build, spill partitioning) poll it and abandon work promptly when it is
// cancelled. Call it on the plan root before adding operators; engines do.
func (p *Plan) Ctx(ctx context.Context) *Plan {
	p.ctx = ctx
	if prof := ProfileFrom(ctx); prof != nil {
		p.enableProfile(prof)
	}
	return p
}

// WithMem attaches a memory accountant: materializing operators added
// after this call charge it and spill through its governor when over
// budget. Call it on the plan root before adding operators.
func (p *Plan) WithMem(qm *QueryMem) *Plan {
	p.qm = qm
	return p
}

// Mem returns the plan's accountant (nil when ungoverned).
func (p *Plan) Mem() *QueryMem { return p.qm }

// MemErr reports the first spill failure recorded by any of the plan's
// accountants, nil if none.
func (p *Plan) MemErr() error {
	if err := p.qm.Err(); err != nil {
		return err
	}
	for _, m := range p.aux {
		if err := m.Err(); err != nil {
			return err
		}
	}
	for _, s := range p.rerr {
		if err := s.get(); err != nil {
			return err
		}
	}
	return nil
}

// FinishMem releases all accountants' charges and spill files. RunCtx and
// CountCtx call it; it is idempotent, so defensive callers may call it
// again.
func (p *Plan) FinishMem() {
	p.qm.Finish()
	for _, m := range p.aux {
		m.Finish()
	}
}

// From starts a plan at a source. A source carrying a construction error
// (NewUnion of zero sources, say) becomes an error-carrying plan, exactly
// as if built with FromError.
func From(s Source) *Plan {
	if es, ok := s.(*errSource); ok {
		return FromError(es.err)
	}
	return &Plan{src: s}
}

// Parallel sets the plan's degree of parallelism: how many partitions
// splittable pipelines fan out into. The shared worker pool bounds actual
// concurrency separately. Results are deterministic at any fixed degree;
// across degrees, float aggregates may differ by summation-order rounding
// only. Call it on the plan root (engines do, with their configured
// degree) before adding operators.
func (p *Plan) Parallel(n int) *Plan {
	if n < 1 {
		n = 1
	}
	p.par = n
	return p
}

// FromError returns a plan carrying err: every plan derived from it
// carries the error too, and running any of them yields no rows and err.
// Engine implementations whose Query path can fail (the network client)
// return it so callers can tell "empty table" from "query failed".
func FromError(err error) *Plan {
	return &Plan{src: NewMemSource(nil, nil), err: err}
}

// Err reports the error the plan carries (nil for healthy plans).
func (p *Plan) Err() error { return p.err }

// Filter keeps rows where e is true. Single-column comparisons against
// constants are pushed down into column scans (see pushdown.go), where
// they evaluate on encoded vectors and prune segments via zone maps;
// everything else runs in a residual filter operator. The rewrite never
// changes results, only where predicates are evaluated.
func (p *Plan) Filter(e Expr) *Plan {
	if p.err != nil {
		return p
	}
	src := p.src
	// The pushdown rewrite recognizes scans and unions by concrete type;
	// unwrap the profiling shim so pushdown still fires (the scan keeps its
	// attached counters, and derive re-wraps the rewritten pipeline).
	if so, ok := src.(*statsOp); ok {
		switch so.inner.(type) {
		case *colScan, *unionSource, PassThrough, PredPusher:
			src = so.inner
		}
	}
	return p.derive(pushFilter(src, e.Bind(src.Schema())))
}

// Project computes named expressions.
func (p *Plan) Project(exprs ...NamedExpr) *Plan {
	if p.err != nil {
		return p
	}
	return p.derive(newProject(p.src, exprs))
}

// Join inner-joins with right on equality of the paired key columns.
func (p *Plan) Join(right *Plan, leftCols, rightCols []string) *Plan {
	if p.err != nil {
		return p
	}
	if right.err != nil {
		return right
	}
	return p.derive(newHashJoin(InnerJoin, p.src, right.src, leftCols, rightCols, p.par, p.ctx, p.qm)).adopt(right)
}

// SemiJoin keeps left rows with a match in right (EXISTS).
func (p *Plan) SemiJoin(right *Plan, leftCols, rightCols []string) *Plan {
	if p.err != nil {
		return p
	}
	if right.err != nil {
		return right
	}
	return p.derive(newHashJoin(LeftSemiJoin, p.src, right.src, leftCols, rightCols, p.par, p.ctx, p.qm)).adopt(right)
}

// AntiJoin keeps left rows without a match in right (NOT EXISTS).
func (p *Plan) AntiJoin(right *Plan, leftCols, rightCols []string) *Plan {
	if p.err != nil {
		return p
	}
	if right.err != nil {
		return right
	}
	return p.derive(newHashJoin(LeftAntiJoin, p.src, right.src, leftCols, rightCols, p.par, p.ctx, p.qm)).adopt(right)
}

// Agg groups by the named columns (nil for a global aggregate) and computes
// aggs.
func (p *Plan) Agg(groupBy []string, aggs ...Agg) *Plan {
	if p.err != nil {
		return p
	}
	// A source that can evaluate the aggregation close to the data — the
	// dist scatter union — is offered it first. Only a source that is
	// still the bare scatter (no residual filters, joins, or projections
	// in between) accepts; anything else declines and aggregates here
	// over the gathered rows. Unwrap the profiling shim like Filter does
	// so pushdown still fires on profiled plans.
	src := p.src
	if so, ok := src.(*statsOp); ok {
		if _, ok := so.inner.(AggPusher); ok {
			src = so.inner
		}
	}
	if ap, ok := src.(AggPusher); ok {
		if parts := ap.PushAgg(groupBy, aggs, p.par, p.ctx); parts != nil {
			o := newHashAgg(src, groupBy, aggs, p.par, p.ctx, p.qm)
			return p.derive(&combineAggOp{o: o, parts: parts})
		}
	}
	return p.derive(newHashAgg(p.src, groupBy, aggs, p.par, p.ctx, p.qm))
}

// Distinct removes duplicate rows.
func (p *Plan) Distinct() *Plan {
	if p.err != nil {
		return p
	}
	cols := make([]string, len(p.src.Schema()))
	for i, c := range p.src.Schema() {
		cols[i] = c.Name
	}
	return p.Agg(cols)
}

// Sort orders the output.
func (p *Plan) Sort(keys ...SortKey) *Plan {
	if p.err != nil {
		return p
	}
	return p.derive(&sortOp{in: p.src, keys: keys, ctx: orBackground(p.ctx), mem: p.qm})
}

// Limit truncates the output to n rows.
func (p *Plan) Limit(n int) *Plan {
	if p.err != nil {
		return p
	}
	return p.derive(&limitOp{in: p.src, left: n})
}

// Schema returns the plan's output schema.
func (p *Plan) Schema() []types.Column { return p.src.Schema() }

// Run executes the plan, materializing all output rows.
func (p *Plan) Run() []types.Row {
	rows, _ := p.RunCtx(context.Background())
	return rows
}

// RunCtx executes the plan, materializing all output rows. When ctx is
// cancelled or its deadline passes, execution stops — the context-aware
// scan sources at the bottom of the pipeline abandon their remaining
// segments, which unwinds blocking operators (sort, aggregate, join build)
// as well — and the context error is returned alongside whatever rows were
// already produced. Callers must treat the rows as incomplete whenever the
// error is non-nil. A spill failure in a memory-governed plan returns nil
// rows and the spill error: partial results never escape. Either way the
// plan's memory accountants are finished — charges released, spill files
// removed.
func (p *Plan) RunCtx(ctx context.Context) ([]types.Row, error) {
	if p.err != nil {
		return nil, p.err
	}
	defer p.FinishMem()
	if p.prof != nil {
		start := time.Now()
		defer func() { p.prof.capture(p, time.Since(start)) }()
	}
	ctx = orBackground(ctx)
	if parts := trySplit(p.src, p.par); parts != nil {
		parallelPlans.Inc()
		res := make([][]types.Row, len(parts))
		tasks := make([]func(), len(parts))
		for w := range parts {
			w := w
			tasks[w] = func() {
				var rows []types.Row
				for ctx.Err() == nil {
					b := parts[w].Next()
					if b == nil {
						break
					}
					for i := 0; i < b.N; i++ {
						rows = append(rows, b.Row(i))
					}
				}
				res[w] = rows
			}
		}
		SharedPool().Run(tasks)
		if err := p.MemErr(); err != nil {
			return nil, err
		}
		var rows []types.Row
		for _, r := range res {
			rows = append(rows, r...)
		}
		return rows, ctx.Err()
	}
	var rows []types.Row
	for {
		if err := ctx.Err(); err != nil {
			return rows, err
		}
		b := p.src.Next()
		if b == nil {
			if err := p.MemErr(); err != nil {
				return nil, err
			}
			// A cancelled scan drains early and looks exhausted; report the
			// cancellation rather than passing truncated rows off as a
			// complete result.
			return rows, ctx.Err()
		}
		for i := 0; i < b.N; i++ {
			rows = append(rows, b.Row(i))
		}
	}
}

// Count executes the plan, returning only the row count.
func (p *Plan) Count() int {
	n, _ := p.CountCtx(context.Background())
	return n
}

// CountCtx executes the plan under ctx, returning the row count; the count
// is partial whenever the returned error is non-nil.
func (p *Plan) CountCtx(ctx context.Context) (int, error) {
	if p.err != nil {
		return 0, p.err
	}
	defer p.FinishMem()
	if p.prof != nil {
		start := time.Now()
		defer func() { p.prof.capture(p, time.Since(start)) }()
	}
	ctx = orBackground(ctx)
	if parts := trySplit(p.src, p.par); parts != nil {
		parallelPlans.Inc()
		counts := make([]int, len(parts))
		tasks := make([]func(), len(parts))
		for w := range parts {
			w := w
			tasks[w] = func() {
				for ctx.Err() == nil {
					b := parts[w].Next()
					if b == nil {
						break
					}
					counts[w] += b.N
				}
			}
		}
		SharedPool().Run(tasks)
		if err := p.MemErr(); err != nil {
			return 0, err
		}
		n := 0
		for _, c := range counts {
			n += c
		}
		return n, ctx.Err()
	}
	n := 0
	for {
		if err := ctx.Err(); err != nil {
			return n, err
		}
		b := p.src.Next()
		if b == nil {
			if err := p.MemErr(); err != nil {
				return 0, err
			}
			return n, ctx.Err()
		}
		n += b.N
	}
}
