package exec

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"htap/internal/bitmap"
	"htap/internal/colstore"
	"htap/internal/delta"
	"htap/internal/rowstore"
	"htap/internal/types"
)

// orBackground guards against nil contexts from legacy call paths.
func orBackground(ctx context.Context) context.Context {
	if ctx == nil {
		return context.Background()
	}
	return ctx
}

// Source produces batches. Next returns nil when exhausted.
type Source interface {
	Schema() []types.Column
	Next() *Batch
}

// ScanPred is an advisory single-column integer range used for zone-map
// pruning and planner selectivity estimates. Plans must still apply the
// full filter; the predicate only lets scans skip whole segments.
type ScanPred struct {
	Col    string
	Lo, Hi int64
}

// --- memory source ---

type memSource struct {
	schema []types.Column
	rows   []types.Row
	pos    int
}

// NewMemSource serves pre-materialized rows; tests and delta overlays use
// it.
func NewMemSource(schema []types.Column, rows []types.Row) Source {
	return &memSource{schema: schema, rows: rows}
}

func (s *memSource) Schema() []types.Column { return s.schema }

func (s *memSource) Next() *Batch {
	if s.pos >= len(s.rows) {
		return nil
	}
	b := NewBatch(s.schema)
	for s.pos < len(s.rows) && b.N < BatchSize {
		b.AppendRow(s.rows[s.pos])
		s.pos++
	}
	return b
}

// Split partitions the remaining rows into contiguous ranges sharing the
// backing slice; part-order concatenation reproduces the sequential scan.
func (s *memSource) Split(n int) []Source {
	rows := s.rows[s.pos:]
	s.pos = len(s.rows)
	if len(rows) == 0 {
		return nil
	}
	chunk := (len(rows) + n - 1) / n
	var parts []Source
	for lo := 0; lo < len(rows); lo += chunk {
		hi := lo + chunk
		if hi > len(rows) {
			hi = len(rows)
		}
		parts = append(parts, &memSource{schema: s.schema, rows: rows[lo:hi]})
	}
	return parts
}

// --- row-store scan ---

// NewRowScan scans the row store at snapshot ts, projecting cols (all
// columns when nil). This is the row-side access path of the hybrid
// row/column technique. The scan materializes eagerly but polls ctx every
// few hundred rows, so a cancelled query abandons the B+-tree walk instead
// of finishing it; the truncated result is discarded by Plan.RunCtx, which
// reports the context error.
func NewRowScan(ctx context.Context, st *rowstore.Store, ts uint64, cols []string, pred *ScanPred) Source {
	ctx = orBackground(ctx)
	schema, idxs := projectSchema(st.Schema, cols)
	var rows []types.Row
	lo, hi := int64(-1<<63), int64(1<<63-1)
	if pred != nil && pred.Col == st.Schema.Cols[st.Schema.KeyCol].Name {
		// Key-range predicates become B+-tree range scans: the "row-based
		// index scan" half of the paper's hybrid SPJ example.
		lo, hi = pred.Lo, pred.Hi
	}
	n := 0
	st.ScanRange(ts, lo, hi, func(_ int64, r types.Row) bool {
		if n++; n&255 == 0 && ctx.Err() != nil {
			return false
		}
		out := make(types.Row, len(idxs))
		for i, c := range idxs {
			out[i] = r[c]
		}
		rows = append(rows, out)
		return true
	})
	return NewMemSource(schema, rows)
}

func projectSchema(s *types.Schema, cols []string) ([]types.Column, []int) {
	if cols == nil {
		idxs := make([]int, len(s.Cols))
		for i := range idxs {
			idxs[i] = i
		}
		return s.Cols, idxs
	}
	schema := make([]types.Column, len(cols))
	idxs := make([]int, len(cols))
	for i, name := range cols {
		j := s.MustCol(name)
		schema[i] = s.Cols[j]
		idxs[i] = j
	}
	return schema, idxs
}

// --- column-store scan ---

type colScan struct {
	ctx     context.Context
	tbl     *colstore.Table
	schema  []types.Column
	idxs    []int
	pred    *ScanPred
	predIdx int
	overlay *delta.Overlay

	segs    []*colstore.Segment
	seg     int
	row     int
	overRem []types.Row
	done    bool

	// Pushed-down predicates (see pushdown.go): evaluated on encoded
	// vectors into a per-segment selection bitmap; rows are then
	// late-materialized from the selected positions only.
	pushed []colPred
	selObs func(sel float64)
	curSel *bitmap.Bitmap
	posBuf []int
}

// NewColScan scans the column store, merging an optional delta overlay: the
// paper's "in-memory delta and column scan" when the overlay comes from a
// Mem delta, its "log-based delta and column scan" when it comes from a Log
// delta, and its pure "column scan" when the overlay is nil. The scan polls
// ctx between batches, so cancelling the context stops a multi-segment scan
// mid-flight; Plan.RunCtx surfaces the context error.
func NewColScan(ctx context.Context, tbl *colstore.Table, cols []string, pred *ScanPred, overlay *delta.Overlay) Source {
	schema, idxs := projectSchema(tbl.Schema, cols)
	s := &colScan{ctx: orBackground(ctx), tbl: tbl, schema: schema, idxs: idxs, pred: pred, predIdx: -1, overlay: overlay}
	s.segs = tbl.Segments()
	if pred != nil {
		if i := tbl.Schema.ColIndex(pred.Col); i >= 0 && tbl.Schema.Cols[i].Type == types.Int {
			s.predIdx = i
		}
	}
	if overlay != nil {
		// Materialize in key order: overlay.Rows is a map, and map
		// iteration order must not leak into query results.
		keys := make([]int64, 0, len(overlay.Rows))
		for k := range overlay.Rows {
			keys = append(keys, k)
		}
		sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
		for _, k := range keys {
			r := overlay.Rows[k]
			out := make(types.Row, len(idxs))
			for i, c := range idxs {
				out[i] = r[c]
			}
			s.overRem = append(s.overRem, out)
		}
	}
	return s
}

func (s *colScan) Schema() []types.Column { return s.schema }

func (s *colScan) Next() *Batch {
	if s.done {
		return nil
	}
	if s.ctx.Err() != nil {
		// Cancelled or past deadline: abandon the remaining segments. The
		// batch-granular check bounds post-cancel work to one batch.
		s.done = true
		return nil
	}
	b := NewBatch(s.schema)
	if len(s.pushed) > 0 {
		s.fillPushed(b)
	} else {
		s.fillScan(b)
	}
	for b.N < BatchSize && len(s.overRem) > 0 {
		r := s.overRem[len(s.overRem)-1]
		s.overRem = s.overRem[:len(s.overRem)-1]
		if len(s.pushed) > 0 && !s.matchOverlayRow(r) {
			continue
		}
		b.AppendRow(r)
	}
	if b.N == 0 {
		s.done = true
		return nil
	}
	return b
}

// fillScan is the unfiltered path: decode every live row of every segment.
func (s *colScan) fillScan(b *Batch) {
	for b.N < BatchSize && s.seg < len(s.segs) {
		seg := s.segs[s.seg]
		if s.row == 0 && s.predIdx >= 0 && seg.Zones[s.predIdx].PruneInt(s.pred.Lo, s.pred.Hi) {
			s.seg++
			continue
		}
		mask := seg.DeleteMask()
		for s.row < seg.N && b.N < BatchSize {
			i := s.row
			s.row++
			if mask.Get(i) {
				continue
			}
			if s.overlay != nil {
				if _, masked := s.overlay.Masked[seg.Keys[i]]; masked {
					continue
				}
			}
			for c, idx := range s.idxs {
				b.Cols[c].Append(seg.Cols[idx].Datum(i))
			}
			b.N++
		}
		if s.row >= seg.N {
			s.seg++
			s.row = 0
		}
	}
}

// fillPushed is the selection-vector path: at each segment entry, evaluate
// the pushed predicates on the encoded vectors (computeSel), then decode
// only the selected positions of only the projected columns. Row order is
// identical to fillScan followed by a downstream filter.
func (s *colScan) fillPushed(b *Batch) {
	for b.N < BatchSize && s.seg < len(s.segs) {
		seg := s.segs[s.seg]
		if s.row == 0 {
			if s.predIdx >= 0 && seg.Zones[s.predIdx].PruneInt(s.pred.Lo, s.pred.Hi) {
				s.seg++
				continue
			}
			sel, skip := s.computeSel(seg)
			if skip {
				s.seg++
				continue
			}
			s.curSel = sel
			pushRowsScanned.Add(int64(seg.N))
		}
		pos := s.posBuf[:0]
		i := s.curSel.NextSet(s.row)
		for i >= 0 && i < seg.N && b.N+len(pos) < BatchSize {
			if s.overlay != nil {
				if _, masked := s.overlay.Masked[seg.Keys[i]]; masked {
					i = s.curSel.NextSet(i + 1)
					continue
				}
			}
			pos = append(pos, i)
			i = s.curSel.NextSet(i + 1)
		}
		s.posBuf = pos[:0]
		if len(pos) > 0 {
			for c, idx := range s.idxs {
				gather(b.Cols[c], seg.Cols[idx], pos)
			}
			b.N += len(pos)
			pushRowsMat.Add(int64(len(pos)))
		}
		if i < 0 || i >= seg.N {
			s.seg++
			s.row = 0
			s.curSel = nil
		} else {
			s.row = i
		}
	}
}

// Split cuts the scan into contiguous runs of fixed-size morsels, one part
// per worker. Assignment is range-based and static — boundaries depend
// only on segment sizes and n — so repeated runs at the same parallelism
// degree touch rows in the same order, and part-order concatenation equals
// the sequential scan: segment rows first, then the delta overlay rows on
// a trailing part.
func (s *colScan) Split(n int) []Source {
	if s.done || s.seg > 0 || s.row > 0 {
		return nil
	}
	s.done = true
	morsels := colstore.Morsels(s.segs, MorselRows)
	chunk := (len(morsels) + n - 1) / n
	if chunk == 0 {
		chunk = 1
	}
	var parts []Source
	for lo := 0; lo < len(morsels); lo += chunk {
		hi := lo + chunk
		if hi > len(morsels) {
			hi = len(morsels)
		}
		parts = append(parts, &colScanPart{scan: s, morsels: morsels[lo:hi]})
	}
	if len(s.overRem) > 0 {
		parts = append(parts, &colScanPart{scan: s, overRem: s.overRem})
	}
	return parts
}

// colScanPart drains one worker's share of a split colScan. Parts share
// the parent's immutable segment snapshot, predicate, and overlay; only
// the delete bitmap is snapshotted (per segment, cached across that
// segment's morsels). Cancellation is polled per morsel, the same
// granularity as the sequential scan's per-batch check.
type colScanPart struct {
	scan    *colScan
	morsels []colstore.Morsel
	overRem []types.Row

	cur     int
	lastSeg *colstore.Segment
	mask    *bitmap.Bitmap
	done    bool

	// Pushed-predicate state, cached per segment across its morsels: the
	// selection bitmap and whether zone maps pruned the whole segment.
	sel     *bitmap.Bitmap
	segSkip bool
	posBuf  []int
}

func (p *colScanPart) Schema() []types.Column { return p.scan.schema }

func (p *colScanPart) Next() *Batch {
	s := p.scan
	if p.done {
		return nil
	}
	for p.cur < len(p.morsels) {
		if s.ctx.Err() != nil {
			p.done = true
			return nil
		}
		m := p.morsels[p.cur]
		p.cur++
		morselsTotal.Inc()
		if s.predIdx >= 0 && m.Seg.Zones[s.predIdx].PruneInt(s.pred.Lo, s.pred.Hi) {
			continue
		}
		if len(s.pushed) > 0 {
			if b := p.nextPushed(m); b != nil {
				return b
			}
			continue
		}
		if m.Seg != p.lastSeg {
			p.lastSeg = m.Seg
			p.mask = m.Seg.DeleteMask()
		}
		b := NewBatch(s.schema)
		for i := m.Lo; i < m.Hi; i++ {
			if p.mask.Get(i) {
				continue
			}
			if s.overlay != nil {
				if _, masked := s.overlay.Masked[m.Seg.Keys[i]]; masked {
					continue
				}
			}
			for c, idx := range s.idxs {
				b.Cols[c].Append(m.Seg.Cols[idx].Datum(i))
			}
			b.N++
		}
		if b.N > 0 {
			return b
		}
	}
	for len(p.overRem) > 0 {
		if s.ctx.Err() != nil {
			p.done = true
			return nil
		}
		b := NewBatch(s.schema)
		for b.N < BatchSize && len(p.overRem) > 0 {
			r := p.overRem[len(p.overRem)-1]
			p.overRem = p.overRem[:len(p.overRem)-1]
			if len(s.pushed) > 0 && !s.matchOverlayRow(r) {
				continue
			}
			b.AppendRow(r)
		}
		if b.N > 0 {
			return b
		}
	}
	p.done = true
	return nil
}

// nextPushed drains one morsel through the selection-vector path: the
// segment's selection bitmap (computed once, cached across the segment's
// morsels) restricted to [m.Lo, m.Hi), late-materialized into one batch.
// Returns nil when the morsel selects no rows. Because the selection is a
// pure function of the segment and the predicates, the rows produced per
// morsel — and so the part-order concatenation — match the sequential scan
// at any parallelism degree.
func (p *colScanPart) nextPushed(m colstore.Morsel) *Batch {
	s := p.scan
	if m.Seg != p.lastSeg {
		p.lastSeg = m.Seg
		p.sel, p.segSkip = s.computeSel(m.Seg)
	}
	if p.segSkip {
		return nil
	}
	pushRowsScanned.Add(int64(m.Hi - m.Lo))
	pos := p.posBuf[:0]
	for i := p.sel.NextSet(m.Lo); i >= 0 && i < m.Hi; i = p.sel.NextSet(i + 1) {
		if s.overlay != nil {
			if _, masked := s.overlay.Masked[m.Seg.Keys[i]]; masked {
				continue
			}
		}
		pos = append(pos, i)
	}
	p.posBuf = pos[:0]
	if len(pos) == 0 {
		return nil
	}
	b := NewBatch(s.schema)
	for c, idx := range s.idxs {
		gather(b.Cols[c], m.Seg.Cols[idx], pos)
	}
	b.N = len(pos)
	pushRowsMat.Add(int64(len(pos)))
	return b
}

// --- union ---

type unionSource struct {
	srcs []Source
	cur  int
}

// errSource is a source that exists only to carry a construction-time
// error. It yields no rows; From recognizes it and returns an
// error-carrying plan (FromError), so misconstructed sources surface as
// query errors instead of panics or silently empty tables.
type errSource struct{ err error }

func (s *errSource) Schema() []types.Column { return nil }
func (s *errSource) Next() *Batch           { return nil }

// NewUnion concatenates sources with identical schemas; layered stores
// (main + delta layers) scan as a union. A union of zero sources is a
// construction error: the result carries it (see errSource) rather than
// panicking, and a plan built from it reports the error when run.
func NewUnion(srcs ...Source) Source {
	if len(srcs) == 0 {
		return &errSource{err: errors.New("exec: union of zero sources")}
	}
	for _, s := range srcs {
		if es, ok := s.(*errSource); ok {
			return es
		}
	}
	for _, s := range srcs[1:] {
		if len(s.Schema()) != len(srcs[0].Schema()) {
			panic("exec: union schema mismatch")
		}
	}
	return &unionSource{srcs: srcs}
}

func (s *unionSource) Schema() []types.Column { return s.srcs[0].Schema() }

func (s *unionSource) Next() *Batch {
	for s.cur < len(s.srcs) {
		if b := s.srcs[s.cur].Next(); b != nil {
			return b
		}
		s.cur++
	}
	return nil
}

// Split partitions every child and concatenates the parts in child order,
// so part-order concatenation preserves the union's sequential row order.
// Children that cannot split become single parts, which still parallelizes
// a union of shards across the shards themselves.
func (s *unionSource) Split(n int) []Source {
	if s.cur > 0 {
		return nil
	}
	s.cur = len(s.srcs)
	per := (n + len(s.srcs) - 1) / len(s.srcs)
	var parts []Source
	for _, c := range s.srcs {
		if ps := trySplit(c, per); ps != nil {
			parts = append(parts, ps...)
		} else {
			parts = append(parts, c)
		}
	}
	return parts
}

// --- parallel union ---

type parallelSource struct {
	ctx    context.Context
	schema []types.Column
	ch     chan *Batch
	once   sync.Once
	srcs   []Source
}

// NewParallel drains the sources concurrently (one goroutine each) and
// multiplexes their batches. Architectures with a *distributed* column
// store (B's learner replicas, C's IMCS cluster) scan their shards this
// way; row order is not preserved, which no aggregate in the repository
// depends on. Cancelling ctx releases the drain goroutines even when the
// consumer stops pulling batches, so an abandoned query leaks nothing.
func NewParallel(ctx context.Context, srcs ...Source) Source {
	if len(srcs) == 1 {
		return srcs[0]
	}
	if len(srcs) == 0 {
		return &errSource{err: errors.New("exec: parallel union of zero sources")}
	}
	return &parallelSource{ctx: orBackground(ctx), schema: srcs[0].Schema(), srcs: srcs, ch: make(chan *Batch, 4)}
}

func (s *parallelSource) Schema() []types.Column { return s.schema }

func (s *parallelSource) start() {
	var wg sync.WaitGroup
	for _, src := range s.srcs {
		wg.Add(1)
		go func(src Source) {
			defer wg.Done()
			for {
				b := src.Next()
				if b == nil {
					return
				}
				select {
				case s.ch <- b:
				case <-s.ctx.Done():
					return
				}
			}
		}(src)
	}
	go func() {
		wg.Wait()
		close(s.ch)
	}()
}

func (s *parallelSource) Next() *Batch {
	s.once.Do(s.start)
	select {
	case b := <-s.ch:
		return b
	case <-s.ctx.Done():
		return nil
	}
}

// --- filter ---

type filterOp struct {
	in   Source
	expr Expr
}

func (o *filterOp) Schema() []types.Column { return o.in.Schema() }

func (o *filterOp) Next() *Batch {
	for {
		b := o.in.Next()
		if b == nil {
			return nil
		}
		out := NewBatch(b.Schema)
		for i := 0; i < b.N; i++ {
			if o.expr.Eval(b, i).Int() != 0 {
				for c := range out.Cols {
					out.Cols[c].AppendFrom(b.Cols[c], i)
				}
				out.N++
			}
		}
		if out.N > 0 {
			return out
		}
	}
}

// Split partitions the input and wraps each part in its own filter, so a
// scan-filter pipeline runs whole on each worker. The bound expression is
// shared: evaluation is read-only.
func (o *filterOp) Split(n int) []Source {
	parts := trySplit(o.in, n)
	if parts == nil {
		return nil
	}
	out := make([]Source, len(parts))
	for i, p := range parts {
		out[i] = &filterOp{in: p, expr: o.expr}
	}
	return out
}

// --- project ---

// NamedExpr pairs an output column name with its defining expression.
type NamedExpr struct {
	Name string
	Expr Expr
}

type projectOp struct {
	in     Source
	schema []types.Column
	exprs  []Expr
}

func newProject(in Source, exprs []NamedExpr) *projectOp {
	schema := make([]types.Column, len(exprs))
	bound := make([]Expr, len(exprs))
	for i, ne := range exprs {
		schema[i] = types.Column{Name: ne.Name, Type: ne.Expr.Type(in.Schema())}
		bound[i] = ne.Expr.Bind(in.Schema())
	}
	return &projectOp{in: in, schema: schema, exprs: bound}
}

func (o *projectOp) Schema() []types.Column { return o.schema }

func (o *projectOp) Next() *Batch {
	b := o.in.Next()
	if b == nil {
		return nil
	}
	out := NewBatch(o.schema)
	for i := 0; i < b.N; i++ {
		for c, e := range o.exprs {
			out.Cols[c].Append(e.Eval(b, i))
		}
	}
	out.N = b.N
	return out
}

// Split mirrors filterOp.Split: per-worker projection over the split
// input, sharing the read-only bound expressions.
func (o *projectOp) Split(n int) []Source {
	parts := trySplit(o.in, n)
	if parts == nil {
		return nil
	}
	out := make([]Source, len(parts))
	for i, p := range parts {
		out[i] = &projectOp{in: p, schema: o.schema, exprs: o.exprs}
	}
	return out
}

// --- hash join ---

// JoinType selects join semantics.
type JoinType uint8

// Join types: inner produces matched pairs; semi/anti produce left rows
// with (no) matches, used for EXISTS / NOT EXISTS subqueries.
const (
	InnerJoin JoinType = iota + 1
	LeftSemiJoin
	LeftAntiJoin
)

type hashJoinOp struct {
	typ        JoinType
	left       Source
	schema     []types.Column
	leftKeys   []int
	rightKeys  []int
	buildRows  *Batch
	buckets    map[uint64][]int
	rightWidth int
	buildOnce  sync.Once
	buildSrc   Source
	par        int
}

func newHashJoin(typ JoinType, left, right Source, leftCols, rightCols []string, par int) *hashJoinOp {
	if len(leftCols) != len(rightCols) || len(leftCols) == 0 {
		panic("exec: join key arity mismatch")
	}
	lk := make([]int, len(leftCols))
	for i, c := range leftCols {
		lk[i] = colIndex(left.Schema(), c)
	}
	rk := make([]int, len(rightCols))
	for i, c := range rightCols {
		rk[i] = colIndex(right.Schema(), c)
	}
	var schema []types.Column
	schema = append(schema, left.Schema()...)
	if typ == InnerJoin {
		for _, c := range right.Schema() {
			for _, l := range left.Schema() {
				if l.Name == c.Name {
					panic(fmt.Sprintf("exec: join output column %q is ambiguous", c.Name))
				}
			}
		}
		schema = append(schema, right.Schema()...)
	}
	return &hashJoinOp{
		typ: typ, left: left, schema: schema,
		leftKeys: lk, rightKeys: rk,
		rightWidth: len(right.Schema()), buildSrc: right, par: par,
	}
}

func (o *hashJoinOp) Schema() []types.Column { return o.schema }

func hashKeys(b *Batch, i int, keys []int) uint64 {
	h := uint64(1469598103934665603)
	for _, k := range keys {
		h = b.Cols[k].Datum(i).Hash(h)
	}
	return h
}

func keysEqual(lb *Batch, li int, lk []int, rb *Batch, ri int, rk []int) bool {
	for i := range lk {
		if !lb.Cols[lk[i]].Datum(li).Equal(rb.Cols[rk[i]].Datum(ri)) {
			return false
		}
	}
	return true
}

// build materializes the right side into buildRows + buckets. With par >
// 1 and a splittable build source, workers materialize and hash disjoint
// partitions in parallel; the partitions are then merged into one table
// sequentially in part order, so bucket entry order — and with it the
// order of multi-match probe output — is identical to a sequential build.
func (o *hashJoinOp) build() {
	parts := trySplit(o.buildSrc, o.par)
	if parts == nil {
		o.buildRows = NewBatch(o.buildSrc.Schema())
		o.buckets = make(map[uint64][]int)
		for {
			b := o.buildSrc.Next()
			if b == nil {
				return
			}
			o.buildInto(b)
		}
	}
	type buildPart struct {
		rows   *Batch
		hashes []uint64
	}
	res := make([]buildPart, len(parts))
	tasks := make([]func(), len(parts))
	for w := range parts {
		w := w
		tasks[w] = func() {
			src := parts[w]
			rows := NewBatch(src.Schema())
			var hashes []uint64
			for {
				b := src.Next()
				if b == nil {
					break
				}
				for i := 0; i < b.N; i++ {
					for c := range b.Cols {
						rows.Cols[c].AppendFrom(b.Cols[c], i)
					}
					rows.N++
					hashes = append(hashes, hashKeys(b, i, o.rightKeys))
				}
			}
			res[w] = buildPart{rows: rows, hashes: hashes}
		}
	}
	SharedPool().Run(tasks)
	start := time.Now()
	o.buildRows = NewBatch(res[0].rows.Schema)
	o.buckets = make(map[uint64][]int)
	for _, bp := range res {
		for i := 0; i < bp.rows.N; i++ {
			idx := o.buildRows.N
			for c := range bp.rows.Cols {
				o.buildRows.Cols[c].AppendFrom(bp.rows.Cols[c], i)
			}
			o.buildRows.N++
			o.buckets[bp.hashes[i]] = append(o.buckets[bp.hashes[i]], idx)
		}
	}
	mergeNS.Add(time.Since(start).Nanoseconds())
}

func (o *hashJoinOp) buildInto(b *Batch) {
	for i := 0; i < b.N; i++ {
		idx := o.buildRows.N
		for c := range b.Cols {
			o.buildRows.Cols[c].AppendFrom(b.Cols[c], i)
		}
		o.buildRows.N++
		h := hashKeys(b, i, o.rightKeys)
		o.buckets[h] = append(o.buckets[h], idx)
	}
}

// probe matches one left batch against the built table. Safe for
// concurrent use once build has completed: it only reads the table.
func (o *hashJoinOp) probe(b *Batch) *Batch {
	out := NewBatch(o.schema)
	for i := 0; i < b.N; i++ {
		h := hashKeys(b, i, o.leftKeys)
		matched := false
		for _, ri := range o.buckets[h] {
			if !keysEqual(b, i, o.leftKeys, o.buildRows, ri, o.rightKeys) {
				continue
			}
			matched = true
			if o.typ != InnerJoin {
				break
			}
			nl := len(b.Cols)
			for c := range b.Cols {
				out.Cols[c].AppendFrom(b.Cols[c], i)
			}
			for c := 0; c < o.rightWidth; c++ {
				out.Cols[nl+c].AppendFrom(o.buildRows.Cols[c], ri)
			}
			out.N++
		}
		if (o.typ == LeftSemiJoin && matched) || (o.typ == LeftAntiJoin && !matched) {
			for c := range b.Cols {
				out.Cols[c].AppendFrom(b.Cols[c], i)
			}
			out.N++
		}
	}
	return out
}

func (o *hashJoinOp) Next() *Batch {
	o.buildOnce.Do(o.build)
	for {
		b := o.left.Next()
		if b == nil {
			return nil
		}
		if out := o.probe(b); out.N > 0 {
			return out
		}
	}
}

// Split partitions the probe side; every part probes the one shared hash
// table, whose construction is serialized by buildOnce (the first part to
// run builds it, in parallel when the build source splits).
func (o *hashJoinOp) Split(n int) []Source {
	parts := trySplit(o.left, n)
	if parts == nil {
		return nil
	}
	out := make([]Source, len(parts))
	for i, p := range parts {
		out[i] = &hashJoinProbe{op: o, left: p}
	}
	return out
}

// hashJoinProbe is one worker's probe stream over a split hash join.
type hashJoinProbe struct {
	op   *hashJoinOp
	left Source
}

func (p *hashJoinProbe) Schema() []types.Column { return p.op.schema }

func (p *hashJoinProbe) Next() *Batch {
	p.op.buildOnce.Do(p.op.build)
	for {
		b := p.left.Next()
		if b == nil {
			return nil
		}
		if out := p.op.probe(b); out.N > 0 {
			return out
		}
	}
}

// --- hash aggregate ---

// AggKind is an aggregate function.
type AggKind uint8

// Aggregate functions.
const (
	Sum AggKind = iota + 1
	Count
	Avg
	Min
	Max
)

// Agg is one aggregate output: Kind over Expr, named Name. Count ignores
// Expr (COUNT(*)).
type Agg struct {
	Kind AggKind
	Expr Expr
	Name string
}

type aggState struct {
	sum   float64
	isum  int64
	count int64
	min   types.Datum
	max   types.Datum
}

type hashAggOp struct {
	in       Source
	groupBy  []Expr
	aggs     []Agg
	aggExprs []Expr
	schema   []types.Column
	intSum   []bool
	par      int

	done bool
	out  []types.Row
	pos  int
}

func newHashAgg(in Source, groupBy []string, aggs []Agg, par int) *hashAggOp {
	o := &hashAggOp{in: in, aggs: aggs, par: par}
	ins := in.Schema()
	for _, g := range groupBy {
		o.schema = append(o.schema, ins[colIndex(ins, g)])
		o.groupBy = append(o.groupBy, ColName(g).Bind(ins))
	}
	o.intSum = make([]bool, len(aggs))
	for i, a := range aggs {
		var kind types.ColType
		switch a.Kind {
		case Count:
			kind = types.Int
		case Sum:
			if a.Expr.Type(ins) == types.Int {
				kind = types.Int
				o.intSum[i] = true
			} else {
				kind = types.Float
			}
		case Avg:
			kind = types.Float
		default:
			kind = a.Expr.Type(ins)
		}
		o.schema = append(o.schema, types.Column{Name: a.Name, Type: kind})
		if a.Expr != nil {
			o.aggExprs = append(o.aggExprs, a.Expr.Bind(ins))
		} else {
			o.aggExprs = append(o.aggExprs, nil)
		}
	}
	return o
}

func (o *hashAggOp) Schema() []types.Column { return o.schema }

// aggGroup is one group's key and accumulator states.
type aggGroup struct {
	key    types.Row
	states []aggState
}

// aggTable is one hash-aggregation table. The sequential path uses a
// single table; the parallel path gives each worker its own table over a
// disjoint partition of the input and merges them afterwards.
type aggTable struct {
	o      *hashAggOp
	groups map[uint64][]*aggGroup
	order  []*aggGroup // first-seen order, the output order
}

func newAggTable(o *hashAggOp) *aggTable {
	return &aggTable{o: o, groups: make(map[uint64][]*aggGroup)}
}

// lookup finds or creates the group for key (pre-hashed to h).
func (t *aggTable) lookup(key types.Row, h uint64) *aggGroup {
	for _, g := range t.groups[h] {
		same := true
		for gi := range key {
			if !g.key[gi].Equal(key[gi]) {
				same = false
				break
			}
		}
		if same {
			return g
		}
	}
	g := &aggGroup{key: key, states: make([]aggState, len(t.o.aggs))}
	t.groups[h] = append(t.groups[h], g)
	t.order = append(t.order, g)
	return g
}

func (t *aggTable) find(b *Batch, i int) *aggGroup {
	key := make(types.Row, len(t.o.groupBy))
	h := uint64(1469598103934665603)
	for gi, g := range t.o.groupBy {
		key[gi] = g.Eval(b, i)
		h = key[gi].Hash(h)
	}
	return t.lookup(key, h)
}

func (t *aggTable) consume(b *Batch) {
	o := t.o
	for i := 0; i < b.N; i++ {
		g := t.find(b, i)
		for ai, a := range o.aggs {
			st := &g.states[ai]
			st.count++
			if a.Kind == Count {
				continue
			}
			d := o.aggExprs[ai].Eval(b, i)
			switch a.Kind {
			case Sum, Avg:
				st.sum += d.Float()
				if d.Kind == types.Int {
					st.isum += d.I
				}
			case Min:
				if st.count == 1 || d.Compare(st.min) < 0 {
					st.min = d
				}
			case Max:
				if st.count == 1 || d.Compare(st.max) > 0 {
					st.max = d
				}
			}
		}
	}
}

func (t *aggTable) drain(src Source) {
	for {
		b := src.Next()
		if b == nil {
			return
		}
		t.consume(b)
	}
}

// merge folds other into t, visiting other's groups in their first-seen
// order. Merging part tables in part order makes both the group output
// order and the float summation order a pure function of the input order
// and the part boundaries — never of worker timing.
func (t *aggTable) merge(other *aggTable) {
	for _, og := range other.order {
		h := uint64(1469598103934665603)
		for _, k := range og.key {
			h = k.Hash(h)
		}
		g := t.lookup(og.key, h)
		for ai := range t.o.aggs {
			mergeAggState(&g.states[ai], &og.states[ai], t.o.aggs[ai].Kind)
		}
	}
}

// mergeAggState folds src into dst for one aggregate.
func mergeAggState(dst, src *aggState, kind AggKind) {
	if src.count == 0 {
		return
	}
	if dst.count == 0 {
		*dst = *src
		return
	}
	dst.sum += src.sum
	dst.isum += src.isum
	dst.count += src.count
	switch kind {
	case Min:
		if src.min.Compare(dst.min) < 0 {
			dst.min = src.min
		}
	case Max:
		if src.max.Compare(dst.max) > 0 {
			dst.max = src.max
		}
	}
}

func (o *hashAggOp) run() {
	t := newAggTable(o)
	if parts := trySplit(o.in, o.par); parts != nil {
		parallelPlans.Inc()
		tables := make([]*aggTable, len(parts))
		tasks := make([]func(), len(parts))
		for w := range parts {
			w := w
			tasks[w] = func() {
				pt := newAggTable(o)
				pt.drain(parts[w])
				tables[w] = pt
			}
		}
		SharedPool().Run(tasks)
		start := time.Now()
		for _, pt := range tables {
			t.merge(pt)
		}
		mergeNS.Add(time.Since(start).Nanoseconds())
	} else {
		t.drain(o.in)
	}
	order := t.order
	// A global aggregate over zero rows still yields one row of zeros.
	if len(order) == 0 && len(o.groupBy) == 0 {
		order = append(order, &aggGroup{states: make([]aggState, len(o.aggs))})
	}
	for _, g := range order {
		row := make(types.Row, 0, len(o.schema))
		row = append(row, g.key...)
		for ai, a := range o.aggs {
			st := g.states[ai]
			switch a.Kind {
			case Count:
				row = append(row, types.NewInt(st.count))
			case Sum:
				if o.intSum[ai] {
					row = append(row, types.NewInt(st.isum))
				} else {
					row = append(row, types.NewFloat(st.sum))
				}
			case Avg:
				if st.count == 0 {
					row = append(row, types.NewFloat(0))
				} else {
					row = append(row, types.NewFloat(st.sum/float64(st.count)))
				}
			case Min:
				row = append(row, st.min)
			case Max:
				row = append(row, st.max)
			}
		}
		o.out = append(o.out, row)
	}
	o.done = true
}

func (o *hashAggOp) Next() *Batch {
	if !o.done {
		o.run()
	}
	if o.pos >= len(o.out) {
		return nil
	}
	b := NewBatch(o.schema)
	for o.pos < len(o.out) && b.N < BatchSize {
		b.AppendRow(o.out[o.pos])
		o.pos++
	}
	return b
}

// --- sort ---

// SortKey orders output by the named column.
type SortKey struct {
	Col  string
	Desc bool
}

type sortOp struct {
	in   Source
	keys []SortKey

	done bool
	rows []types.Row
	pos  int
}

func (o *sortOp) Schema() []types.Column { return o.in.Schema() }

func (o *sortOp) run() {
	idxs := make([]int, len(o.keys))
	for i, k := range o.keys {
		idxs[i] = colIndex(o.in.Schema(), k.Col)
	}
	for {
		b := o.in.Next()
		if b == nil {
			break
		}
		for i := 0; i < b.N; i++ {
			o.rows = append(o.rows, b.Row(i))
		}
	}
	sort.SliceStable(o.rows, func(a, b int) bool {
		for ki, idx := range idxs {
			c := o.rows[a][idx].Compare(o.rows[b][idx])
			if c == 0 {
				continue
			}
			if o.keys[ki].Desc {
				return c > 0
			}
			return c < 0
		}
		return false
	})
	o.done = true
}

func (o *sortOp) Next() *Batch {
	if !o.done {
		o.run()
	}
	if o.pos >= len(o.rows) {
		return nil
	}
	b := NewBatch(o.Schema())
	for o.pos < len(o.rows) && b.N < BatchSize {
		b.AppendRow(o.rows[o.pos])
		o.pos++
	}
	return b
}

// --- limit ---

type limitOp struct {
	in   Source
	left int
}

func (o *limitOp) Schema() []types.Column { return o.in.Schema() }

func (o *limitOp) Next() *Batch {
	if o.left <= 0 {
		return nil
	}
	b := o.in.Next()
	if b == nil {
		return nil
	}
	if b.N <= o.left {
		o.left -= b.N
		return b
	}
	out := NewBatch(b.Schema)
	for i := 0; i < o.left; i++ {
		for c := range out.Cols {
			out.Cols[c].AppendFrom(b.Cols[c], i)
		}
	}
	out.N = o.left
	o.left = 0
	return out
}

// --- plan builder ---

// Plan is a fluent builder over a Source pipeline. A plan may carry an
// error (FromError): builder methods short-circuit on it and RunCtx /
// CountCtx report it instead of executing, so a failed scan source — a
// remote query whose transport died, say — cannot masquerade as an
// empty table.
type Plan struct {
	src Source
	err error
	par int // degree of parallelism; <= 1 means sequential
}

// From starts a plan at a source. A source carrying a construction error
// (NewUnion of zero sources, say) becomes an error-carrying plan, exactly
// as if built with FromError.
func From(s Source) *Plan {
	if es, ok := s.(*errSource); ok {
		return FromError(es.err)
	}
	return &Plan{src: s}
}

// Parallel sets the plan's degree of parallelism: how many partitions
// splittable pipelines fan out into. The shared worker pool bounds actual
// concurrency separately. Results are deterministic at any fixed degree;
// across degrees, float aggregates may differ by summation-order rounding
// only. Call it on the plan root (engines do, with their configured
// degree) before adding operators.
func (p *Plan) Parallel(n int) *Plan {
	if n < 1 {
		n = 1
	}
	p.par = n
	return p
}

// FromError returns a plan carrying err: every plan derived from it
// carries the error too, and running any of them yields no rows and err.
// Engine implementations whose Query path can fail (the network client)
// return it so callers can tell "empty table" from "query failed".
func FromError(err error) *Plan {
	return &Plan{src: NewMemSource(nil, nil), err: err}
}

// Err reports the error the plan carries (nil for healthy plans).
func (p *Plan) Err() error { return p.err }

// Filter keeps rows where e is true. Single-column comparisons against
// constants are pushed down into column scans (see pushdown.go), where
// they evaluate on encoded vectors and prune segments via zone maps;
// everything else runs in a residual filter operator. The rewrite never
// changes results, only where predicates are evaluated.
func (p *Plan) Filter(e Expr) *Plan {
	if p.err != nil {
		return p
	}
	return &Plan{src: pushFilter(p.src, e.Bind(p.src.Schema())), par: p.par}
}

// Project computes named expressions.
func (p *Plan) Project(exprs ...NamedExpr) *Plan {
	if p.err != nil {
		return p
	}
	return &Plan{src: newProject(p.src, exprs), par: p.par}
}

// Join inner-joins with right on equality of the paired key columns.
func (p *Plan) Join(right *Plan, leftCols, rightCols []string) *Plan {
	if p.err != nil {
		return p
	}
	if right.err != nil {
		return right
	}
	return &Plan{src: newHashJoin(InnerJoin, p.src, right.src, leftCols, rightCols, p.par), par: p.par}
}

// SemiJoin keeps left rows with a match in right (EXISTS).
func (p *Plan) SemiJoin(right *Plan, leftCols, rightCols []string) *Plan {
	if p.err != nil {
		return p
	}
	if right.err != nil {
		return right
	}
	return &Plan{src: newHashJoin(LeftSemiJoin, p.src, right.src, leftCols, rightCols, p.par), par: p.par}
}

// AntiJoin keeps left rows without a match in right (NOT EXISTS).
func (p *Plan) AntiJoin(right *Plan, leftCols, rightCols []string) *Plan {
	if p.err != nil {
		return p
	}
	if right.err != nil {
		return right
	}
	return &Plan{src: newHashJoin(LeftAntiJoin, p.src, right.src, leftCols, rightCols, p.par), par: p.par}
}

// Agg groups by the named columns (nil for a global aggregate) and computes
// aggs.
func (p *Plan) Agg(groupBy []string, aggs ...Agg) *Plan {
	if p.err != nil {
		return p
	}
	return &Plan{src: newHashAgg(p.src, groupBy, aggs, p.par), par: p.par}
}

// Distinct removes duplicate rows.
func (p *Plan) Distinct() *Plan {
	if p.err != nil {
		return p
	}
	cols := make([]string, len(p.src.Schema()))
	for i, c := range p.src.Schema() {
		cols[i] = c.Name
	}
	return p.Agg(cols)
}

// Sort orders the output.
func (p *Plan) Sort(keys ...SortKey) *Plan {
	if p.err != nil {
		return p
	}
	return &Plan{src: &sortOp{in: p.src, keys: keys}, par: p.par}
}

// Limit truncates the output to n rows.
func (p *Plan) Limit(n int) *Plan {
	if p.err != nil {
		return p
	}
	return &Plan{src: &limitOp{in: p.src, left: n}, par: p.par}
}

// Schema returns the plan's output schema.
func (p *Plan) Schema() []types.Column { return p.src.Schema() }

// Run executes the plan, materializing all output rows.
func (p *Plan) Run() []types.Row {
	rows, _ := p.RunCtx(context.Background())
	return rows
}

// RunCtx executes the plan, materializing all output rows. When ctx is
// cancelled or its deadline passes, execution stops — the context-aware
// scan sources at the bottom of the pipeline abandon their remaining
// segments, which unwinds blocking operators (sort, aggregate, join build)
// as well — and the context error is returned alongside whatever rows were
// already produced. Callers must treat the rows as incomplete whenever the
// error is non-nil.
func (p *Plan) RunCtx(ctx context.Context) ([]types.Row, error) {
	if p.err != nil {
		return nil, p.err
	}
	ctx = orBackground(ctx)
	if parts := trySplit(p.src, p.par); parts != nil {
		parallelPlans.Inc()
		res := make([][]types.Row, len(parts))
		tasks := make([]func(), len(parts))
		for w := range parts {
			w := w
			tasks[w] = func() {
				var rows []types.Row
				for ctx.Err() == nil {
					b := parts[w].Next()
					if b == nil {
						break
					}
					for i := 0; i < b.N; i++ {
						rows = append(rows, b.Row(i))
					}
				}
				res[w] = rows
			}
		}
		SharedPool().Run(tasks)
		var rows []types.Row
		for _, r := range res {
			rows = append(rows, r...)
		}
		return rows, ctx.Err()
	}
	var rows []types.Row
	for {
		if err := ctx.Err(); err != nil {
			return rows, err
		}
		b := p.src.Next()
		if b == nil {
			// A cancelled scan drains early and looks exhausted; report the
			// cancellation rather than passing truncated rows off as a
			// complete result.
			return rows, ctx.Err()
		}
		for i := 0; i < b.N; i++ {
			rows = append(rows, b.Row(i))
		}
	}
}

// Count executes the plan, returning only the row count.
func (p *Plan) Count() int {
	n, _ := p.CountCtx(context.Background())
	return n
}

// CountCtx executes the plan under ctx, returning the row count; the count
// is partial whenever the returned error is non-nil.
func (p *Plan) CountCtx(ctx context.Context) (int, error) {
	if p.err != nil {
		return 0, p.err
	}
	ctx = orBackground(ctx)
	if parts := trySplit(p.src, p.par); parts != nil {
		parallelPlans.Inc()
		counts := make([]int, len(parts))
		tasks := make([]func(), len(parts))
		for w := range parts {
			w := w
			tasks[w] = func() {
				for ctx.Err() == nil {
					b := parts[w].Next()
					if b == nil {
						break
					}
					counts[w] += b.N
				}
			}
		}
		SharedPool().Run(tasks)
		n := 0
		for _, c := range counts {
			n += c
		}
		return n, ctx.Err()
	}
	n := 0
	for {
		if err := ctx.Err(); err != nil {
			return n, err
		}
		b := p.src.Next()
		if b == nil {
			return n, ctx.Err()
		}
		n += b.N
	}
}
