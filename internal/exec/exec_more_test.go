package exec

import (
	"context"
	"errors"
	"sort"
	"testing"

	"htap/internal/types"
)

func manyRows(n int) []types.Row {
	rows := make([]types.Row, n)
	for i := range rows {
		rows[i] = sale(int64(i), int64(i%7), float64(i), "x")
	}
	return rows
}

func TestUnionConcatenates(t *testing.T) {
	a := NewMemSource(salesSchema.Cols, manyRows(1500))
	b := NewMemSource(salesSchema.Cols, manyRows(700))
	if got := From(NewUnion(a, b)).Count(); got != 2200 {
		t.Fatalf("union = %d", got)
	}
	// Single-source unions and empty parts behave.
	if got := From(NewUnion(NewMemSource(salesSchema.Cols, nil))).Count(); got != 0 {
		t.Fatalf("empty union = %d", got)
	}
}

func TestUnionSchemaMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("schema mismatch should panic")
		}
	}()
	NewUnion(
		NewMemSource(salesSchema.Cols, nil),
		NewMemSource(regionSchema, nil),
	)
}

func TestParallelDrainsAllSources(t *testing.T) {
	srcs := []Source{
		NewMemSource(salesSchema.Cols, manyRows(1200)),
		NewMemSource(salesSchema.Cols, manyRows(900)),
		NewMemSource(salesSchema.Cols, manyRows(1)),
		NewMemSource(salesSchema.Cols, nil),
	}
	rows := From(NewParallel(context.Background(), srcs...)).Run()
	if len(rows) != 2101 {
		t.Fatalf("parallel union = %d rows", len(rows))
	}
	// No duplication, no loss: ids 0..1199 appear exactly twice up to 899,
	// once from 900..1199, plus id 0 a third time from the 1-row source.
	count := map[int64]int{}
	for _, r := range rows {
		count[r[0].Int()]++
	}
	if count[0] != 3 || count[500] != 2 || count[1000] != 1 {
		t.Fatalf("multiset broken: %d %d %d", count[0], count[500], count[1000])
	}
}

func TestParallelSingleSourcePassthrough(t *testing.T) {
	src := NewMemSource(salesSchema.Cols, manyRows(10))
	if NewParallel(context.Background(), src) != src {
		t.Fatal("single-source parallel should be the source itself")
	}
}

func TestIfExpr(t *testing.T) {
	rows := From(NewMemSource(salesSchema.Cols, testRows())).
		Project(NamedExpr{"tier", If(
			Cmp(GE, ColName("amount"), ConstFloat(30)),
			ConstStr("big"), ConstStr("small"),
		)}).Run()
	big := 0
	for _, r := range rows {
		if r[0].Str() == "big" {
			big++
		}
	}
	if big != 3 {
		t.Fatalf("big tier = %d", big)
	}
}

func TestSubstrExpr(t *testing.T) {
	rows := From(NewMemSource(salesSchema.Cols, testRows()[:1])).
		Project(
			NamedExpr{"a", Substr(ColName("item"), 0, 3)},  // "app"
			NamedExpr{"b", Substr(ColName("item"), 3, 99)}, // "le" (clamped)
			NamedExpr{"c", Substr(ColName("item"), 99, 2)}, // "" (start clamped)
		).Run()
	if rows[0][0].Str() != "app" || rows[0][1].Str() != "le" || rows[0][2].Str() != "" {
		t.Fatalf("substr = %v", rows[0])
	}
}

func TestSortStability(t *testing.T) {
	// Equal keys keep input order (SliceStable): verify by sorting on a
	// constant column.
	rows := From(NewMemSource(salesSchema.Cols, testRows())).
		Sort(SortKey{Col: "item"}).Run()
	// The three apples must keep relative id order 1, 3, 5.
	var apples []int64
	for _, r := range rows {
		if r[3].Str() == "apple" {
			apples = append(apples, r[0].Int())
		}
	}
	if !sort.SliceIsSorted(apples, func(i, j int) bool { return apples[i] < apples[j] }) {
		t.Fatalf("stability broken: %v", apples)
	}
}

func TestExprStringer(t *testing.T) {
	exprs := []Expr{
		Cmp(EQ, ColName("a"), ConstInt(1)),
		And(ConstInt(1)), Or(ConstInt(0)), Not(ConstInt(1)),
		Arith(Add, ColName("a"), ConstFloat(2)),
		InInts(ColName("a"), 1, 2), HasPrefix(ColName("s"), "x"),
		If(ConstInt(1), ConstInt(2), ConstInt(3)),
		Substr(ColName("s"), 0, 2),
	}
	for _, e := range exprs {
		if e.String() == "" {
			t.Fatalf("%T has empty String()", e)
		}
	}
}

func TestErrorPlanShortCircuits(t *testing.T) {
	boom := errors.New("boom")
	right := From(NewMemSource(salesSchema.Cols, testRows()))
	// Every builder must short-circuit on the carried error instead of
	// binding expressions or join keys against the nil schema (which
	// would panic in colIndex).
	p := FromError(boom).
		Filter(Cmp(GE, ColName("amount"), ConstFloat(1))).
		Project(NamedExpr{"id", ColName("id")}).
		Join(right, []string{"id"}, []string{"id"}).
		Agg([]string{"id"}, Agg{Count, nil, "n"}).
		Distinct().
		Sort(SortKey{Col: "id"}).
		TopK(3, SortKey{Col: "id"}).
		Limit(5)
	if p.Err() != boom {
		t.Fatalf("Err() = %v, want boom", p.Err())
	}
	if rows, err := p.RunCtx(context.Background()); err != boom || rows != nil {
		t.Fatalf("RunCtx = (%v, %v), want (nil, boom)", rows, err)
	}
	if n, err := p.CountCtx(context.Background()); err != boom || n != 0 {
		t.Fatalf("CountCtx = (%d, %v), want (0, boom)", n, err)
	}
	// The error also flows in from the right side of a join.
	if err := right.SemiJoin(FromError(boom), []string{"id"}, []string{"id"}).Err(); err != boom {
		t.Fatalf("right-side join error not carried: %v", err)
	}
}
