package exec

import (
	"fmt"
	"math"
	"math/big"
)

// exactSumPrec is the mantissa precision of the exact SUM accumulator.
// Any finite float64 is an integer multiple of 2^-1074 with magnitude
// below 2^1024, so a sum of up to 2^63 addends is a multiple of 2^-1074
// with magnitude below 2^1087 — at most 2162 significant bits. 2176
// (34 64-bit words) covers that with slack, so every Add is exact: the
// accumulated value is the true real-number sum, independent of the
// order rows arrive in. That is what makes parallel, spilled, and
// distributed partial aggregation bit-identical to a sequential scan —
// each partial is exact, merging partials is exact, and the single
// rounding to float64 happens once at render time.
const exactSumPrec = 2176

// maxExactSumBytes bounds the serialized accumulator accepted by
// decodeExactSum. A legitimate prec-2176 big.Float gob encoding is
// ~300 bytes; anything larger is hostile input.
const maxExactSumBytes = 4096

// exactSum accumulates float64 addends without rounding error.
// Non-finite addends are tracked as flags (IEEE summation involving a
// NaN is NaN; +Inf and -Inf together are NaN; otherwise the infinity
// wins), keeping the big.Float strictly finite.
type exactSum struct {
	f    *big.Float // exact running sum of finite addends; nil until first add
	nan  bool       // saw a NaN addend
	pinf bool       // saw a +Inf addend
	ninf bool       // saw a -Inf addend
}

// add folds one float64 into the sum.
func (s *exactSum) add(v float64) {
	switch {
	case math.IsNaN(v):
		s.nan = true
	case math.IsInf(v, 1):
		s.pinf = true
	case math.IsInf(v, -1):
		s.ninf = true
	default:
		if s.f == nil {
			s.f = new(big.Float).SetPrec(exactSumPrec)
		}
		s.f.Add(s.f, big.NewFloat(v))
	}
}

// merge folds another partial sum into this one.
func (s *exactSum) merge(o *exactSum) {
	s.nan = s.nan || o.nan
	s.pinf = s.pinf || o.pinf
	s.ninf = s.ninf || o.ninf
	if o.f == nil {
		return
	}
	if s.f == nil {
		s.f = new(big.Float).SetPrec(exactSumPrec).Set(o.f)
		return
	}
	s.f.Add(s.f, o.f)
}

// clone returns an independent copy (big.Float accumulators must never
// be shared between two growing states).
func (s *exactSum) clone() exactSum {
	c := exactSum{nan: s.nan, pinf: s.pinf, ninf: s.ninf}
	if s.f != nil {
		c.f = new(big.Float).SetPrec(exactSumPrec).Set(s.f)
	}
	return c
}

// round collapses the exact sum to the nearest float64 — the one place
// rounding happens. An overflowing finite sum rounds to ±Inf, which is
// the correctly-rounded result and is deterministic.
func (s *exactSum) round() float64 {
	switch {
	case s.nan || (s.pinf && s.ninf):
		return math.NaN()
	case s.pinf:
		return math.Inf(1)
	case s.ninf:
		return math.Inf(-1)
	case s.f == nil:
		return 0
	}
	v, _ := s.f.Float64()
	return v
}

const (
	sumFlagNaN  = 1 << 0
	sumFlagPInf = 1 << 1
	sumFlagNInf = 1 << 2
)

// encode serializes the accumulator: one flag byte followed by the
// big.Float gob encoding of the finite part (absent when no finite
// addend was seen). The gob encoding is deterministic for a given value
// and precision, so equal partials serialize identically.
func (s *exactSum) encode() []byte {
	var flags byte
	if s.nan {
		flags |= sumFlagNaN
	}
	if s.pinf {
		flags |= sumFlagPInf
	}
	if s.ninf {
		flags |= sumFlagNInf
	}
	out := []byte{flags}
	if s.f != nil {
		gb, err := s.f.GobEncode()
		if err != nil {
			// Only possible for a nil receiver; s.f is non-nil here.
			panic(fmt.Sprintf("exec: exactSum gob encode: %v", err))
		}
		out = append(out, gb...)
	}
	return out
}

// decodeExactSum parses an encoded accumulator, rejecting hostile input
// (oversized payloads, unknown flags, non-finite finite-parts) before
// allocating anything proportional to claimed sizes.
func decodeExactSum(b []byte) (exactSum, error) {
	var s exactSum
	if len(b) < 1 {
		return s, fmt.Errorf("exec: exact sum truncated")
	}
	if len(b) > maxExactSumBytes {
		return s, fmt.Errorf("exec: exact sum too large (%d bytes)", len(b))
	}
	flags := b[0]
	if flags&^byte(sumFlagNaN|sumFlagPInf|sumFlagNInf) != 0 {
		return s, fmt.Errorf("exec: exact sum has unknown flags %#x", flags)
	}
	s.nan = flags&sumFlagNaN != 0
	s.pinf = flags&sumFlagPInf != 0
	s.ninf = flags&sumFlagNInf != 0
	if rest := b[1:]; len(rest) > 0 {
		f := new(big.Float)
		if err := f.GobDecode(rest); err != nil {
			return exactSum{}, fmt.Errorf("exec: exact sum: %w", err)
		}
		if f.IsInf() {
			return exactSum{}, fmt.Errorf("exec: exact sum finite part is infinite")
		}
		if f.Prec() != exactSumPrec {
			f.SetPrec(exactSumPrec)
		}
		s.f = f
	}
	return s, nil
}
