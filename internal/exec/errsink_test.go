package exec

import (
	"context"
	"errors"
	"fmt"
	"testing"

	"htap/internal/types"
)

func sinkRows(n int) Source {
	rows := make([]types.Row, n)
	for i := range rows {
		rows[i] = types.Row{types.NewInt(int64(i)), types.NewInt(int64(i % 3))}
	}
	return NewMemSource([]types.Column{
		{Name: "id", Type: types.Int}, {Name: "grp", Type: types.Int},
	}, rows)
}

// TestErrSinkFailsPlan: an error delivered through ErrSink — e.g. a remote
// scan fragment dying mid-stream — must surface from RunCtx/CountCtx, not
// truncate the result silently.
func TestErrSinkFailsPlan(t *testing.T) {
	boom := errors.New("fragment lost")

	p := From(sinkRows(10))
	sink := p.ErrSink()
	if rows, err := p.RunCtx(context.Background()); err != nil || len(rows) != 10 {
		t.Fatalf("clean plan: %d rows, %v", len(rows), err)
	}

	p = From(sinkRows(10))
	sink = p.ErrSink()
	sink(boom)
	if _, err := p.RunCtx(context.Background()); !errors.Is(err, boom) {
		t.Fatalf("RunCtx error = %v, want %v", err, boom)
	}

	p = From(sinkRows(10))
	sink = p.ErrSink()
	sink(boom)
	if _, err := p.CountCtx(context.Background()); !errors.Is(err, boom) {
		t.Fatalf("CountCtx error = %v, want %v", err, boom)
	}
}

// TestErrSinkFirstWins: concurrent reporters race; the first error is the
// cause, later ones are dropped.
func TestErrSinkFirstWins(t *testing.T) {
	p := From(sinkRows(3))
	sink := p.ErrSink()
	first := errors.New("first")
	sink(first)
	sink(errors.New("second"))
	sink(nil) // nil reports are ignored
	if _, err := p.RunCtx(context.Background()); !errors.Is(err, first) {
		t.Fatalf("err = %v, want first error to stick", err)
	}
}

// TestErrSinkSurvivesDeriveAndAdopt: sinks registered on a plan must still
// fail the plan after operator chaining and a join's adoption of the right
// side.
func TestErrSinkSurvivesDeriveAndAdopt(t *testing.T) {
	boom := errors.New("late failure")

	left := From(sinkRows(6))
	rrows := make([]types.Row, 3)
	for i := range rrows {
		rrows[i] = types.Row{types.NewInt(int64(i)), types.NewString(fmt.Sprintf("g%d", i))}
	}
	right := From(NewMemSource([]types.Column{
		{Name: "rgrp", Type: types.Int}, {Name: "label", Type: types.String},
	}, rrows))
	rsink := right.ErrSink()

	joined := left.Join(right, []string{"grp"}, []string{"rgrp"}).Filter(
		Cmp(GE, ColName("id"), ConstInt(0)),
	)
	rsink(boom)
	if _, err := joined.RunCtx(context.Background()); !errors.Is(err, boom) {
		t.Fatalf("join plan error = %v, want adopted sink error %v", err, boom)
	}
}

// TestErrSinkParallel: the error must also surface from the parallel drain
// path.
func TestErrSinkParallel(t *testing.T) {
	p := From(sinkRows(64)).Parallel(4)
	sink := p.ErrSink()
	sink(fmt.Errorf("shard 2: %w", context.DeadlineExceeded))
	if _, err := p.RunCtx(context.Background()); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("parallel drain error = %v, want wrapped cause", err)
	}
}
