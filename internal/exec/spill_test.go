package exec

import (
	"context"
	"math"
	"testing"

	"htap/internal/disk"
	"htap/internal/types"
)

// govRows builds a deterministic mixed-type input large enough to blow
// small budgets: duplicate-heavy keys, exact-bit-sensitive floats, strings.
func govRows(n int) []types.Row {
	items := []string{"apple", "banana", "cherry", "durian"}
	rows := make([]types.Row, 0, n)
	for i := 0; i < n; i++ {
		rows = append(rows, types.Row{
			types.NewInt(int64(i)),
			types.NewInt(int64(i % 97)),
			types.NewFloat(float64(i%1000) * 0.1),
			types.NewString(items[i%len(items)]),
		})
	}
	return rows
}

// sameRowsBits asserts a and b are identical down to float bit patterns.
func sameRowsBits(t *testing.T, a, b []types.Row) {
	t.Helper()
	if len(a) != len(b) {
		t.Fatalf("row count: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if len(a[i]) != len(b[i]) {
			t.Fatalf("row %d arity: %d vs %d", i, len(a[i]), len(b[i]))
		}
		for j := range a[i] {
			da, db := a[i][j], b[i][j]
			if da.Kind != db.Kind {
				t.Fatalf("row %d col %d kind: %v vs %v", i, j, da.Kind, db.Kind)
			}
			switch da.Kind {
			case types.Float:
				if math.Float64bits(da.Float()) != math.Float64bits(db.Float()) {
					t.Fatalf("row %d col %d float bits: %v vs %v", i, j, da.Float(), db.Float())
				}
			default:
				if !da.Equal(db) {
					t.Fatalf("row %d col %d: %v vs %v", i, j, da, db)
				}
			}
		}
	}
}

func testGov(queryLimit int64) *Governor {
	g := NewGovernor(0, nil)
	g.SetQueryLimit(queryLimit)
	return g
}

func TestQueryMemHierarchy(t *testing.T) {
	g := NewGovernor(1000, nil)
	g.Class(DefaultClass, 500)
	q := g.StartQuery()
	q.SetLimit(100)
	if q.Over() {
		t.Fatal("over before any charge")
	}
	q.Grow(90)
	if q.Over() {
		t.Fatal("over under every limit")
	}
	q.Grow(20) // query limit (100) exceeded
	if !q.Over() {
		t.Fatal("query limit not enforced")
	}
	q.Shrink(20)
	q2 := g.Class(DefaultClass, 0).StartQuery()
	q2.Grow(450) // class total 540 > 500
	if !q.Over() || !q2.Over() {
		t.Fatal("class limit not enforced")
	}
	q2.Finish()
	if q.Over() {
		t.Fatal("finish did not release class charge")
	}
	if g.Used() != 90 {
		t.Fatalf("node used = %d, want 90", g.Used())
	}
	q.Finish()
	if g.Used() != 0 {
		t.Fatalf("node used after finish = %d", g.Used())
	}
	if g.MaxQueryPeak() < 110 {
		t.Fatalf("peak = %d, want >= 110", g.MaxQueryPeak())
	}
}

func TestSpillCodecRoundTrip(t *testing.T) {
	g := testGov(0)
	q := g.StartQuery()
	defer q.Finish()
	in := []types.Row{
		{types.NewInt(-5), types.NewFloat(0.1), types.NewString("x")},
		{types.NewInt(1 << 40), types.NewFloat(math.Inf(1)), types.NewString("")},
		{types.NewInt(0), types.NewFloat(-0.0), types.NewString("日本語")},
	}
	w := newSpillWriter(q, "codec")
	for _, r := range in {
		if err := w.add(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.close(); err != nil {
		t.Fatal(err)
	}
	c := newSpillCursor(q, w.name)
	var out []types.Row
	for {
		r, ok, err := c.next()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		out = append(out, r)
	}
	sameRowsBits(t, in, out)
	if g.SpillBytes() == 0 || g.SpillReadBytes() == 0 {
		t.Fatal("spill byte counters not advanced")
	}
}

// govPlans are the three materializing shapes, built fresh per run so each
// execution owns its operators.
var govPlans = map[string]func(qm *QueryMem) *Plan{
	"sort": func(qm *QueryMem) *Plan {
		return From(NewMemSource(salesSchema.Cols, govRows(20000))).WithMem(qm).
			Sort(SortKey{Col: "region"}, SortKey{Col: "item", Desc: true})
	},
	"join": func(qm *QueryMem) *Plan {
		left := govRows(8000)
		right := make([]types.Row, 0, 4000)
		for i := 0; i < 4000; i++ {
			right = append(right, types.Row{types.NewInt(int64(i % 97)), types.NewFloat(float64(i) * 0.25)})
		}
		rs := []types.Column{{Name: "r_key", Type: types.Int}, {Name: "r_val", Type: types.Float}}
		return From(NewMemSource(salesSchema.Cols, left)).WithMem(qm).
			Join(From(NewMemSource(rs, right)), []string{"region"}, []string{"r_key"})
	},
	"agg": func(qm *QueryMem) *Plan {
		rows := make([]types.Row, 0, 30000)
		for i := 0; i < 30000; i++ {
			rows = append(rows, sale(int64(i), int64(i%997), float64(i%773)*0.3, "itm"))
		}
		return From(NewMemSource(salesSchema.Cols, rows)).WithMem(qm).
			Agg([]string{"region"},
				Agg{Sum, ColName("amount"), "total"},
				Agg{Count, nil, "n"},
				Agg{Avg, ColName("amount"), "avg"},
				Agg{Min, ColName("amount"), "lo"},
				Agg{Max, ColName("id"), "hi"},
			)
	},
	"semijoin": func(qm *QueryMem) *Plan {
		right := make([]types.Row, 0, 8000)
		for i := 0; i < 8000; i++ {
			right = append(right, types.Row{types.NewInt(int64((i * 2) % 97)), types.NewFloat(float64(i))})
		}
		rs := []types.Column{{Name: "r_key", Type: types.Int}, {Name: "r_val", Type: types.Float}}
		return From(NewMemSource(salesSchema.Cols, govRows(6000))).WithMem(qm).
			SemiJoin(From(NewMemSource(rs, right)), []string{"region"}, []string{"r_key"})
	},
	"antijoin": func(qm *QueryMem) *Plan {
		right := make([]types.Row, 0, 8000)
		for i := 0; i < 8000; i++ {
			right = append(right, types.Row{types.NewInt(int64((i * 2) % 97)), types.NewFloat(float64(i))})
		}
		rs := []types.Column{{Name: "r_key", Type: types.Int}, {Name: "r_val", Type: types.Float}}
		return From(NewMemSource(salesSchema.Cols, govRows(6000))).WithMem(qm).
			AntiJoin(From(NewMemSource(rs, right)), []string{"region"}, []string{"r_key"})
	},
}

// TestSpillEquivalence is the core degradation property: a tiny budget
// must change only where state lives, never a single output bit.
func TestSpillEquivalence(t *testing.T) {
	for name, build := range govPlans {
		t.Run(name, func(t *testing.T) {
			want, err := build(nil).RunCtx(context.Background())
			if err != nil {
				t.Fatal(err)
			}
			g := testGov(16 << 10)
			got, err := build(g.StartQuery()).RunCtx(context.Background())
			if err != nil {
				t.Fatal(err)
			}
			sameRowsBits(t, want, got)
			if g.Spills() == 0 || g.SpillBytes() == 0 {
				t.Fatalf("budget did not force a spill (spills=%d bytes=%d)", g.Spills(), g.SpillBytes())
			}
			if g.LiveSpillFiles() != 0 {
				t.Fatalf("leaked %d spill files", g.LiveSpillFiles())
			}
		})
	}
}

// TestSpillSkewHitsDepthCap drives every row through one partition: the
// recursive re-partitioning cannot split it, so the ladder bottoms out at
// an in-memory join of the partition, counted as an over-budget event —
// results still exact.
func TestSpillSkewHitsDepthCap(t *testing.T) {
	mk := func(n int) []types.Row {
		rows := make([]types.Row, 0, n)
		for i := 0; i < n; i++ {
			rows = append(rows, types.Row{types.NewInt(7), types.NewFloat(float64(i))})
		}
		return rows
	}
	ls := []types.Column{{Name: "l_key", Type: types.Int}, {Name: "l_val", Type: types.Float}}
	rs := []types.Column{{Name: "r_key", Type: types.Int}, {Name: "r_val", Type: types.Float}}
	build := func(qm *QueryMem) *Plan {
		return From(NewMemSource(ls, mk(200))).WithMem(qm).
			Join(From(NewMemSource(rs, mk(200))), []string{"l_key"}, []string{"r_key"})
	}
	want, err := build(nil).RunCtx(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	g := testGov(2 << 10)
	got, err := build(g.StartQuery()).RunCtx(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	sameRowsBits(t, want, got)
	if g.OverBudget() == 0 {
		t.Fatal("depth cap never recorded an over-budget event")
	}
	if g.LiveSpillFiles() != 0 {
		t.Fatalf("leaked %d spill files", g.LiveSpillFiles())
	}
}

// TestSpillWriteFaultFailsCleanly injects certain write failure on every
// spill file: each governed shape must return the error with nil rows,
// leak no files, and leave the governor reusable.
func TestSpillWriteFaultFailsCleanly(t *testing.T) {
	for name, build := range govPlans {
		t.Run(name, func(t *testing.T) {
			g := testGov(16 << 10)
			g.Device().SetFaultPlan(&disk.FaultPlan{
				Seed:  11,
				Rules: []disk.FaultRule{{WriteErrRate: 1}},
			})
			rows, err := build(g.StartQuery()).RunCtx(context.Background())
			if err == nil {
				t.Fatal("spill write failure did not fail the query")
			}
			if rows != nil {
				t.Fatalf("partial results escaped: %d rows", len(rows))
			}
			if g.LiveSpillFiles() != 0 {
				t.Fatalf("leaked %d spill files", g.LiveSpillFiles())
			}
			if g.Used() != 0 {
				t.Fatalf("charges not released: %d", g.Used())
			}
			// The engine is not poisoned: disarm faults and rerun on the
			// same governor.
			g.Device().SetFaultPlan(nil)
			want, err := build(nil).RunCtx(context.Background())
			if err != nil {
				t.Fatal(err)
			}
			got, err := build(g.StartQuery()).RunCtx(context.Background())
			if err != nil {
				t.Fatalf("governor poisoned after fault: %v", err)
			}
			sameRowsBits(t, want, got)
		})
	}
}

// TestSpillCrashFailsCleanly crashes the spill device mid-spill
// (crash-after-N): the query fails, nothing leaks, and after Revive the
// governor serves queries again.
func TestSpillCrashFailsCleanly(t *testing.T) {
	g := testGov(16 << 10)
	g.Device().SetFaultPlan(&disk.FaultPlan{Seed: 3, CrashAfterWrites: 3})
	rows, err := govPlans["sort"](g.StartQuery()).RunCtx(context.Background())
	if err == nil {
		t.Fatal("device crash did not fail the query")
	}
	if rows != nil {
		t.Fatalf("partial results escaped: %d rows", len(rows))
	}
	if g.LiveSpillFiles() != 0 {
		t.Fatalf("leaked %d spill files", g.LiveSpillFiles())
	}
	g.Device().Revive()
	want, err := govPlans["sort"](nil).RunCtx(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	got, err := govPlans["sort"](g.StartQuery()).RunCtx(context.Background())
	if err != nil {
		t.Fatalf("governor unusable after revive: %v", err)
	}
	sameRowsBits(t, want, got)
}

// cancelAfterSource cancels a context after serving `after` batches, then
// keeps serving; the join build must stop pulling almost immediately.
type cancelAfterSource struct {
	src    Source
	after  int
	served int
	cancel context.CancelFunc
}

func (c *cancelAfterSource) Schema() []types.Column { return c.src.Schema() }

func (c *cancelAfterSource) Next() *Batch {
	if c.served == c.after {
		c.cancel()
	}
	c.served++
	return c.src.Next()
}

// TestJoinBuildCancellation: a cancelled query must abandon the hash-table
// build promptly instead of materializing the whole right side first.
func TestJoinBuildCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	// 100k build rows = ~98 batches; cancel after 2.
	right := make([]types.Row, 0, 100000)
	for i := 0; i < 100000; i++ {
		right = append(right, types.Row{types.NewInt(int64(i))})
	}
	rs := []types.Column{{Name: "r_key", Type: types.Int}}
	cs := &cancelAfterSource{src: NewMemSource(rs, right), after: 2, cancel: cancel}
	o := newHashJoin(InnerJoin, NewMemSource(salesSchema.Cols, govRows(100)), cs,
		[]string{"region"}, []string{"r_key"}, 1, ctx, nil)
	if b := o.Next(); b != nil {
		t.Fatalf("cancelled join produced a batch of %d rows", b.N)
	}
	if cs.served > 4 {
		t.Fatalf("build pulled %d batches after cancellation", cs.served)
	}
}
