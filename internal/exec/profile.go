// Query-level profiling: EXPLAIN ANALYZE operator statistics.
//
// Profiling is opt-in per plan. When a context carries a *QueryProfile
// (WithProfile), Plan.Ctx wraps the plan root — and derive wraps every
// operator added afterwards — in a statsOp that counts rows, batches, and
// wall time as batches flow through it. The wrapper is pass-through: it
// forwards batches untouched and delegates Split, so a profiled plan
// executes the same operators over the same morsels in the same order as
// an unprofiled one, and its rows are bit-identical at any fixed DOP (the
// golden test in internal/ch pins this). When no profile is attached,
// nothing is wrapped and the only cost is one context lookup per plan.
//
// Wall time is inclusive: an operator's time covers its children (the
// wrapper times Next calls, and blocking operators do their work inside
// the first Next). Under a parallel plan, part times sum across workers,
// so a root's wall time approximates CPU time, not elapsed time; the
// per-plan elapsed time is tracked separately by RunCtx.
package exec

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"htap/internal/obs"
	"htap/internal/types"
)

var (
	profileQueriesTotal = obs.Default.Counter("htap_exec_profile_queries_total", nil)
	profilePlansTotal   = obs.Default.Counter("htap_exec_profile_plans_total", nil)
)

// OpStats is one operator's profile counters. Split parts share their
// operator's OpStats, so all fields are atomics.
type OpStats struct {
	rowsOut    atomic.Int64
	batches    atomic.Int64
	wallNS     atomic.Int64
	scanned    atomic.Int64 // pushdown path: rows whose selection bits were evaluated
	matzd      atomic.Int64 // pushdown path: rows late-materialized
	spillParts atomic.Int64 // spill partitions this operator created
}

// RowsOut returns the rows the operator emitted.
func (st *OpStats) RowsOut() int64 { return st.rowsOut.Load() }

// WallNS returns the operator's inclusive wall time in nanoseconds
// (summed across parallel parts).
func (st *OpStats) WallNS() int64 { return st.wallNS.Load() }

// addSpillParts records spill partitions created by the operator; safe on
// a nil receiver so un-profiled spill paths cost one comparison.
func (st *OpStats) addSpillParts(n int) {
	if st != nil {
		st.spillParts.Add(int64(n))
	}
}

// annotate renders the bracketed stats suffix for one analyzed operator.
func (st *OpStats) annotate() string {
	var b strings.Builder
	fmt.Fprintf(&b, " [rows=%d batches=%d wall=%s",
		st.rowsOut.Load(), st.batches.Load(), fmtDur(st.wallNS.Load()))
	if sc := st.scanned.Load(); sc > 0 {
		m := st.matzd.Load()
		fmt.Fprintf(&b, " sel=%.1f%% scanned=%d materialized=%d",
			100*float64(m)/float64(sc), sc, m)
	}
	if sp := st.spillParts.Load(); sp > 0 {
		fmt.Fprintf(&b, " spill_parts=%d", sp)
	}
	b.WriteByte(']')
	return b.String()
}

func fmtDur(ns int64) string {
	return time.Duration(ns).Round(time.Microsecond).String()
}

// statAttacher is implemented by operators that feed counters into their
// wrapper's OpStats directly (scan selectivity, spill partitions).
type statAttacher interface {
	attachStats(*OpStats)
}

// statsOp wraps one operator, timing and counting its Next calls. Batches
// pass through untouched.
type statsOp struct {
	inner Source
	st    *OpStats
}

func newStatsOp(inner Source) *statsOp {
	s := &statsOp{inner: inner, st: &OpStats{}}
	if a, ok := inner.(statAttacher); ok {
		a.attachStats(s.st)
	}
	return s
}

func (s *statsOp) Schema() []types.Column { return s.inner.Schema() }

func (s *statsOp) Next() *Batch {
	start := time.Now()
	b := s.inner.Next()
	s.st.wallNS.Add(time.Since(start).Nanoseconds())
	if b != nil {
		s.st.rowsOut.Add(int64(b.N))
		s.st.batches.Add(1)
	}
	return b
}

// Split delegates to the wrapped operator and rewraps every part with the
// shared OpStats, so a split pipeline stays instrumented at every level
// and part counters aggregate into the one operator node.
func (s *statsOp) Split(n int) []Source {
	parts := trySplit(s.inner, n)
	if parts == nil {
		return nil
	}
	out := make([]Source, len(parts))
	for i, p := range parts {
		out[i] = &statsOp{inner: p, st: s.st}
	}
	return out
}

// explain delegates to the wrapped operator, so Plan.Explain renders a
// profiled plan identically to an unprofiled one.
func (s *statsOp) explain() (string, []Source) {
	return describe(s.inner)
}

// QueryProfile accumulates one query's execution profile: every plan the
// query ran (a CH query may run several), elapsed execution time, and the
// memory/spill footprint from the query's accountant. Safe for use by one
// query at a time; plans capture under the mutex.
type QueryProfile struct {
	mu         sync.Mutex
	arch       string
	plans      []string // analyzed plan renderings, in execution order
	execNS     int64
	admitNS    int64
	spillNS    int64
	spillBytes int64
	peakMem    int64
}

// NewQueryProfile returns an empty profile; thread it into execution with
// WithProfile.
func NewQueryProfile() *QueryProfile {
	profileQueriesTotal.Inc()
	return &QueryProfile{}
}

type profileCtxKey struct{}

// WithProfile returns a context carrying prof; plans whose Ctx sees it
// collect per-operator statistics into it.
func WithProfile(ctx context.Context, prof *QueryProfile) context.Context {
	return context.WithValue(orBackground(ctx), profileCtxKey{}, prof)
}

// ProfileFrom returns the profile carried by ctx, nil if none.
func ProfileFrom(ctx context.Context) *QueryProfile {
	if ctx == nil {
		return nil
	}
	prof, _ := ctx.Value(profileCtxKey{}).(*QueryProfile)
	return prof
}

// SetArch records the architecture label, first writer wins (one query
// runs on one engine).
func (qp *QueryProfile) SetArch(arch string) {
	if qp == nil {
		return
	}
	qp.mu.Lock()
	if qp.arch == "" {
		qp.arch = arch
	}
	qp.mu.Unlock()
}

// SetAdmitNS records the admission wait attributed to the query (servers
// measure it; local execution has none).
func (qp *QueryProfile) SetAdmitNS(ns int64) {
	if qp == nil {
		return
	}
	qp.mu.Lock()
	qp.admitNS = ns
	qp.mu.Unlock()
}

// AddRemote merges a server-side profile received over the wire: the
// rendered plan text plus the server's attributed times.
func (qp *QueryProfile) AddRemote(rendered string, execNS, admitNS, spillNS int64) {
	if qp == nil {
		return
	}
	qp.mu.Lock()
	if rendered != "" {
		qp.plans = append(qp.plans, rendered)
	}
	qp.execNS += execNS
	qp.admitNS += admitNS
	qp.spillNS += spillNS
	qp.mu.Unlock()
}

// ExecNS returns the summed elapsed execution time of the query's plans.
func (qp *QueryProfile) ExecNS() int64 {
	if qp == nil {
		return 0
	}
	qp.mu.Lock()
	defer qp.mu.Unlock()
	return qp.execNS
}

// AdmitNS returns the admission wait attributed to the query.
func (qp *QueryProfile) AdmitNS() int64 {
	if qp == nil {
		return 0
	}
	qp.mu.Lock()
	defer qp.mu.Unlock()
	return qp.admitNS
}

// SpillNS returns the spill I/O time attributed to the query.
func (qp *QueryProfile) SpillNS() int64 {
	if qp == nil {
		return 0
	}
	qp.mu.Lock()
	defer qp.mu.Unlock()
	return qp.spillNS
}

// PeakMem returns the query's peak charged memory in bytes.
func (qp *QueryProfile) PeakMem() int64 {
	if qp == nil {
		return 0
	}
	qp.mu.Lock()
	defer qp.mu.Unlock()
	return qp.peakMem
}

// Plans returns the analyzed plan renderings captured so far.
func (qp *QueryProfile) Plans() []string {
	if qp == nil {
		return nil
	}
	qp.mu.Lock()
	defer qp.mu.Unlock()
	out := make([]string, len(qp.plans))
	copy(out, qp.plans)
	return out
}

// capture records one executed plan: its analyzed rendering, its elapsed
// time, and the accountant's footprint. Accountant counters accumulate
// monotonically across a query's plans (CH queries share one accountant),
// so merging by max yields the query totals.
func (qp *QueryProfile) capture(p *Plan, elapsed time.Duration) {
	profilePlansTotal.Inc()
	rendered := p.ExplainAnalyze()
	qp.mu.Lock()
	qp.plans = append(qp.plans, rendered)
	qp.execNS += elapsed.Nanoseconds()
	if qm := p.qm; qm != nil {
		if v := qm.Peak(); v > qp.peakMem {
			qp.peakMem = v
		}
		if v := qm.SpillBytes(); v > qp.spillBytes {
			qp.spillBytes = v
		}
		if v := qm.SpillNS(); v > qp.spillNS {
			qp.spillNS = v
		}
	}
	qp.mu.Unlock()
	// Export the plan summary as span attributes when the query runs under
	// a trace, linking operator-level numbers into the distributed trace.
	if sp := obs.SpanFromContext(p.ctx); sp != nil {
		root, _ := describe(p.src)
		child := sp.Child("exec.plan").
			Attr("op", root).
			AttrInt("exec_ns", elapsed.Nanoseconds())
		if so, ok := p.src.(*statsOp); ok {
			child.AttrInt("rows", so.st.rowsOut.Load())
		}
		if qm := p.qm; qm != nil {
			child.AttrInt("peak_mem_bytes", qm.Peak()).
				AttrInt("spill_bytes", qm.SpillBytes())
		}
		child.End()
	}
}

// Render serializes the profile: a summary line plus each analyzed plan.
// This is the form the slow-query log retains and the wire protocol ships
// back to remote clients.
//
// A plan captured via AddRemote is itself a complete rendering (it starts
// with its own "profile:" header, carrying the server's arch and memory
// footprint); a profile that holds exactly one of those and nothing local
// — the ordinary remote-query case — renders as the server's profile
// verbatim rather than re-wrapping it under an empty local header.
func (qp *QueryProfile) Render() string {
	if qp == nil {
		return ""
	}
	qp.mu.Lock()
	defer qp.mu.Unlock()
	if len(qp.plans) == 1 && strings.HasPrefix(qp.plans[0], "profile:") {
		return qp.plans[0]
	}
	var b strings.Builder
	fmt.Fprintf(&b, "profile: arch=%s exec=%s admit=%s spill=%s peak_mem=%dB spill_bytes=%dB\n",
		orDash(qp.arch), fmtDur(qp.execNS), fmtDur(qp.admitNS), fmtDur(qp.spillNS),
		qp.peakMem, qp.spillBytes)
	n := 0
	for _, pl := range qp.plans {
		if strings.HasPrefix(pl, "profile:") {
			fmt.Fprintf(&b, "remote:\n%s", pl)
			continue
		}
		n++
		fmt.Fprintf(&b, "plan %d:\n%s", n, pl)
	}
	return b.String()
}

func orDash(s string) string {
	if s == "" {
		return "-"
	}
	return s
}

// enableProfile attaches prof to the plan and wraps the root source; call
// on the plan root before adding operators (Ctx does).
func (p *Plan) enableProfile(prof *QueryProfile) *Plan {
	if p.err != nil || prof == nil {
		return p
	}
	p.prof = prof
	if _, ok := p.src.(*statsOp); !ok {
		p.src = newStatsOp(p.src)
	}
	return p
}

// Profile attaches a profile directly (the context-free equivalent of
// running under WithProfile); call on the plan root before adding
// operators.
func (p *Plan) Profile(prof *QueryProfile) *Plan {
	return p.enableProfile(prof)
}

// ExplainAnalyze renders the plan's operator tree in the same shape as
// Explain, annotated with each profiled operator's collected statistics.
// Run the plan first; an unexecuted plan renders zero counters, and an
// unprofiled plan renders without annotations.
func (p *Plan) ExplainAnalyze() string {
	var b strings.Builder
	analyzeInto(&b, p.src, 0)
	if p.qm != nil {
		fmt.Fprintf(&b, "memory: peak=%dB spill_bytes=%dB spill_parts=%d spill_io=%s\n",
			p.qm.Peak(), p.qm.SpillBytes(), p.qm.SpillParts(), fmtDur(p.qm.SpillNS()))
	}
	return b.String()
}

func analyzeInto(b *strings.Builder, s Source, depth int) {
	desc, children := describe(s)
	b.WriteString(strings.Repeat("  ", depth))
	b.WriteString(desc)
	switch t := s.(type) {
	case *statsOp:
		b.WriteString(t.st.annotate())
	case *colScan:
		// A scan left unwrapped by a pushdown rewrite still carries its
		// attached counters; render the selectivity it observed.
		if st := t.st; st != nil {
			if sc := st.scanned.Load(); sc > 0 {
				m := st.matzd.Load()
				fmt.Fprintf(b, " [sel=%.1f%% scanned=%d materialized=%d]",
					100*float64(m)/float64(sc), sc, m)
			}
		}
	}
	b.WriteByte('\n')
	for _, c := range children {
		analyzeInto(b, c, depth+1)
	}
}
