package exec

import (
	"container/heap"

	"htap/internal/types"
)

// topKOp keeps only the k smallest rows under the sort keys, using a
// bounded max-heap instead of materializing and sorting the whole input —
// the standard optimization for the ORDER BY ... LIMIT k shape every "top
// customers/items" CH query has.
type topKOp struct {
	in   Source
	keys []SortKey
	k    int

	done bool
	rows []types.Row
	pos  int
}

type rowHeap struct {
	rows []types.Row
	less func(a, b types.Row) bool // true when a orders before b
}

func (h *rowHeap) Len() int { return len(h.rows) }

// Less inverts the ordering: the heap root is the WORST retained row, so
// it pops first when a better candidate arrives.
func (h *rowHeap) Less(i, j int) bool { return h.less(h.rows[j], h.rows[i]) }
func (h *rowHeap) Swap(i, j int)      { h.rows[i], h.rows[j] = h.rows[j], h.rows[i] }

func (h *rowHeap) Push(x any) { h.rows = append(h.rows, x.(types.Row)) }

func (h *rowHeap) Pop() any {
	last := h.rows[len(h.rows)-1]
	h.rows = h.rows[:len(h.rows)-1]
	return last
}

func (o *topKOp) Schema() []types.Column { return o.in.Schema() }

// topKLess builds a TOTAL order over rows of schema: the sort keys
// first, then every remaining column ascending. The tie-break matters
// for distributed pushdown: with a keys-only comparator, which of two
// key-equal rows survives a shard's local top-k depends on heap layout,
// so a pushed plan could retain a different key-equal row than an
// unpushed one. Under a total order every top-k over the same multiset
// retains the same rows, wherever the k-boundary ties fall.
func topKLess(schema []types.Column, keys []SortKey) func(a, b types.Row) bool {
	idxs := make([]int, len(keys))
	for i, k := range keys {
		idxs[i] = colIndex(schema, k.Col)
	}
	return func(a, b types.Row) bool {
		for ki, idx := range idxs {
			c := a[idx].Compare(b[idx])
			if c == 0 {
				continue
			}
			if keys[ki].Desc {
				return c > 0
			}
			return c < 0
		}
		for i := range a {
			if c := a[i].Compare(b[i]); c != 0 {
				return c < 0
			}
		}
		return false
	}
}

func (o *topKOp) run() {
	less := topKLess(o.in.Schema(), o.keys)
	h := &rowHeap{less: less}
	for {
		b := o.in.Next()
		if b == nil {
			break
		}
		for i := 0; i < b.N; i++ {
			r := b.Row(i)
			if h.Len() < o.k {
				heap.Push(h, r)
			} else if less(r, h.rows[0]) {
				h.rows[0] = r
				heap.Fix(h, 0)
			}
		}
	}
	// Drain in reverse pop order to emit ascending.
	out := make([]types.Row, h.Len())
	for i := len(out) - 1; i >= 0; i-- {
		out[i] = heap.Pop(h).(types.Row)
	}
	o.rows = out
	o.done = true
}

func (o *topKOp) Next() *Batch {
	if !o.done {
		o.run()
	}
	if o.pos >= len(o.rows) {
		return nil
	}
	b := NewBatch(o.Schema())
	for o.pos < len(o.rows) && b.N < BatchSize {
		b.AppendRow(o.rows[o.pos])
		o.pos++
	}
	return b
}

// NewTopK wraps in with a bounded top-k operator — the shard-side half
// of top-k pushdown uses it to cap each member's output at k rows.
func NewTopK(in Source, k int, keys []SortKey) Source {
	return &topKOp{in: in, keys: keys, k: k}
}

// TopK is Sort(keys...).Limit(k) with a bounded heap: equivalent output,
// O(n log k) time and O(k) memory instead of materializing the input.
// A source that can bound its own output (the dist scatter union) is
// offered the top-k first; the plan's own operator still runs over
// whatever comes back, so the pushdown only shrinks the stream.
func (p *Plan) TopK(k int, keys ...SortKey) *Plan {
	if p.err != nil {
		return p
	}
	if k <= 0 {
		return p.Limit(0)
	}
	src := p.src
	if so, ok := src.(*statsOp); ok {
		if _, ok := so.inner.(TopKPusher); ok {
			src = so.inner
		}
	}
	if tp, ok := src.(TopKPusher); ok {
		tp.PushTopK(k, keys)
	}
	// TopK is already O(k) memory; it needs no accountant, but the chain
	// keeps carrying the plan's context and accountants forward.
	return p.derive(&topKOp{in: p.src, keys: keys, k: k})
}
