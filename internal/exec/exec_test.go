package exec

import (
	"context"
	"testing"

	"htap/internal/colstore"
	"htap/internal/delta"
	"htap/internal/rowstore"
	"htap/internal/txn"
	"htap/internal/types"
)

var salesSchema = types.NewSchema("sales", 0,
	types.Column{Name: "id", Type: types.Int},
	types.Column{Name: "region", Type: types.Int},
	types.Column{Name: "amount", Type: types.Float},
	types.Column{Name: "item", Type: types.String},
)

func sale(id, region int64, amount float64, item string) types.Row {
	return types.Row{types.NewInt(id), types.NewInt(region), types.NewFloat(amount), types.NewString(item)}
}

func testRows() []types.Row {
	return []types.Row{
		sale(1, 1, 10, "apple"),
		sale(2, 1, 20, "banana"),
		sale(3, 2, 30, "apple"),
		sale(4, 2, 40, "cherry"),
		sale(5, 3, 50, "apple"),
	}
}

func TestFilterProject(t *testing.T) {
	p := From(NewMemSource(salesSchema.Cols, testRows())).
		Filter(Cmp(GE, ColName("amount"), ConstFloat(30))).
		Project(
			NamedExpr{"id", ColName("id")},
			NamedExpr{"double", Arith(Mul, ColName("amount"), ConstFloat(2))},
		)
	rows := p.Run()
	if len(rows) != 3 {
		t.Fatalf("got %d rows", len(rows))
	}
	if rows[0][1].Float() != 60 {
		t.Fatalf("project value = %v", rows[0][1])
	}
}

func TestAggGroupBy(t *testing.T) {
	p := From(NewMemSource(salesSchema.Cols, testRows())).
		Agg([]string{"region"},
			Agg{Sum, ColName("amount"), "total"},
			Agg{Count, nil, "n"},
			Agg{Avg, ColName("amount"), "avg"},
			Agg{Min, ColName("amount"), "lo"},
			Agg{Max, ColName("amount"), "hi"},
		).
		Sort(SortKey{Col: "region"})
	rows := p.Run()
	if len(rows) != 3 {
		t.Fatalf("groups = %d", len(rows))
	}
	// region 1: total 30, n 2, avg 15, lo 10, hi 20
	r := rows[0]
	if r[0].Int() != 1 || r[1].Float() != 30 || r[2].Int() != 2 || r[3].Float() != 15 ||
		r[4].Float() != 10 || r[5].Float() != 20 {
		t.Fatalf("region 1 aggregates = %v", r)
	}
}

func TestGlobalAggEmptyInput(t *testing.T) {
	p := From(NewMemSource(salesSchema.Cols, nil)).
		Agg(nil, Agg{Count, nil, "n"}, Agg{Sum, ColName("amount"), "s"})
	rows := p.Run()
	if len(rows) != 1 || rows[0][0].Int() != 0 || rows[0][1].Float() != 0 {
		t.Fatalf("empty global agg = %v", rows)
	}
}

func TestIntSumStaysInt(t *testing.T) {
	p := From(NewMemSource(salesSchema.Cols, testRows())).
		Agg(nil, Agg{Sum, ColName("region"), "s"})
	rows := p.Run()
	if rows[0][0].Kind != types.Int || rows[0][0].Int() != 9 {
		t.Fatalf("int sum = %v", rows[0][0])
	}
}

var regionSchema = []types.Column{
	{Name: "r_id", Type: types.Int},
	{Name: "r_name", Type: types.String},
}

func regionRows() []types.Row {
	return []types.Row{
		{types.NewInt(1), types.NewString("east")},
		{types.NewInt(2), types.NewString("west")},
	}
}

func TestInnerJoin(t *testing.T) {
	p := From(NewMemSource(salesSchema.Cols, testRows())).
		Join(From(NewMemSource(regionSchema, regionRows())), []string{"region"}, []string{"r_id"}).
		Sort(SortKey{Col: "id"})
	rows := p.Run()
	if len(rows) != 4 { // region 3 has no match
		t.Fatalf("join rows = %d", len(rows))
	}
	if rows[0][5].Str() != "east" {
		t.Fatalf("joined name = %v", rows[0][5])
	}
}

func TestSemiAntiJoin(t *testing.T) {
	left := func() *Plan { return From(NewMemSource(salesSchema.Cols, testRows())) }
	right := func() *Plan { return From(NewMemSource(regionSchema, regionRows())) }
	semi := left().SemiJoin(right(), []string{"region"}, []string{"r_id"}).Run()
	if len(semi) != 4 {
		t.Fatalf("semi = %d", len(semi))
	}
	anti := left().AntiJoin(right(), []string{"region"}, []string{"r_id"}).Run()
	if len(anti) != 1 || anti[0][0].Int() != 5 {
		t.Fatalf("anti = %v", anti)
	}
}

func TestJoinAmbiguousColumnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("ambiguous join should panic")
		}
	}()
	From(NewMemSource(salesSchema.Cols, nil)).
		Join(From(NewMemSource(salesSchema.Cols, nil)), []string{"id"}, []string{"id"})
}

func TestSortDescAndLimit(t *testing.T) {
	p := From(NewMemSource(salesSchema.Cols, testRows())).
		Sort(SortKey{Col: "amount", Desc: true}).
		Limit(2)
	rows := p.Run()
	if len(rows) != 2 || rows[0][0].Int() != 5 || rows[1][0].Int() != 4 {
		t.Fatalf("top-2 = %v", rows)
	}
}

func TestDistinct(t *testing.T) {
	p := From(NewMemSource(salesSchema.Cols, testRows())).
		Project(NamedExpr{"item", ColName("item")}).
		Distinct()
	if got := p.Count(); got != 3 {
		t.Fatalf("distinct items = %d", got)
	}
}

func TestExprSuite(t *testing.T) {
	rows := testRows()
	src := func() Source { return NewMemSource(salesSchema.Cols, rows) }
	cases := []struct {
		name string
		e    Expr
		want int
	}{
		{"eq", Cmp(EQ, ColName("region"), ConstInt(1)), 2},
		{"ne", Cmp(NE, ColName("region"), ConstInt(1)), 3},
		{"lt", Cmp(LT, ColName("amount"), ConstFloat(30)), 2},
		{"between", Between(ColName("region"), 2, 3), 3},
		{"in", InInts(ColName("region"), 1, 3), 3},
		{"and", And(Cmp(EQ, ColName("region"), ConstInt(2)), Cmp(GT, ColName("amount"), ConstFloat(35))), 1},
		{"or", Or(Cmp(EQ, ColName("region"), ConstInt(3)), Cmp(EQ, ColName("item"), ConstStr("cherry"))), 2},
		{"not", Not(Cmp(EQ, ColName("item"), ConstStr("apple"))), 2},
		{"prefix", HasPrefix(ColName("item"), "a"), 3},
		{"arith", Cmp(GT, Arith(Add, ColName("amount"), ConstFloat(5)), ConstFloat(40)), 2},
		{"empty-and", And(), 5},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if got := From(src()).Filter(c.e).Count(); got != c.want {
				t.Fatalf("%s: got %d, want %d", c.e, got, c.want)
			}
		})
	}
}

func TestArithIntDivision(t *testing.T) {
	src := NewMemSource(salesSchema.Cols, testRows()[:1])
	rows := From(src).Project(
		NamedExpr{"d", Arith(Div, ColName("region"), ConstInt(2))},
		NamedExpr{"z", Arith(Div, ColName("region"), ConstInt(0))},
	).Run()
	if rows[0][0].Float() != 0.5 {
		t.Fatalf("division = %v", rows[0][0])
	}
	if rows[0][1].Float() != 0 {
		t.Fatalf("division by zero should yield 0, got %v", rows[0][1])
	}
}

func TestRowScanSource(t *testing.T) {
	m := txn.NewManager()
	st := rowstore.New(1, salesSchema)
	for _, r := range testRows() {
		st.Load(r)
	}
	p := From(NewRowScan(context.Background(), st, m.Oracle().Watermark(), []string{"id", "amount"}, nil))
	rows := p.Run()
	if len(rows) != 5 || len(rows[0]) != 2 {
		t.Fatalf("rowscan = %v", rows)
	}
	// Key-range pushdown.
	p = From(NewRowScan(context.Background(), st, 0, nil, &ScanPred{Col: "id", Lo: 2, Hi: 4}))
	if got := p.Count(); got != 3 {
		t.Fatalf("range rowscan = %d", got)
	}
}

func TestColScanWithOverlay(t *testing.T) {
	tbl := colstore.NewTable(salesSchema)
	tbl.AppendRows(testRows())

	// No overlay: pure column scan.
	if got := From(NewColScan(context.Background(), tbl, nil, nil, nil)).Count(); got != 5 {
		t.Fatalf("pure scan = %d", got)
	}

	// Overlay updates row 1, deletes row 2, inserts row 6.
	d := delta.NewMem()
	d.Append(10, []txn.Write{
		{Table: 1, Key: 1, Op: txn.OpUpdate, Row: sale(1, 1, 99, "apple")},
		{Table: 1, Key: 2, Op: txn.OpDelete},
		{Table: 1, Key: 6, Op: txn.OpInsert, Row: sale(6, 4, 60, "fig")},
	})
	rows := From(NewColScan(context.Background(), tbl, nil, nil, d.Overlay(10))).Sort(SortKey{Col: "id"}).Run()
	if len(rows) != 5 {
		t.Fatalf("overlay scan = %d rows: %v", len(rows), rows)
	}
	if rows[0][2].Float() != 99 {
		t.Fatalf("updated amount = %v", rows[0][2])
	}
	if rows[4][0].Int() != 6 {
		t.Fatalf("inserted row missing: %v", rows)
	}
	for _, r := range rows {
		if r[0].Int() == 2 {
			t.Fatal("deleted row visible")
		}
	}
}

func TestColScanZonePruning(t *testing.T) {
	tbl := colstore.NewTable(salesSchema)
	rows := make([]types.Row, 0, 3*colstore.SegmentRows)
	for i := 0; i < 3*colstore.SegmentRows; i++ {
		rows = append(rows, sale(int64(i), int64(i), float64(i), "x"))
	}
	tbl.AppendRows(rows)
	pred := &ScanPred{Col: "region", Lo: 0, Hi: 10}
	got := From(NewColScan(context.Background(), tbl, nil, pred, nil)).
		Filter(Between(ColName("region"), 0, 10)).Count()
	if got != 11 {
		t.Fatalf("pruned scan = %d, want 11", got)
	}
}

func TestColScanProjection(t *testing.T) {
	tbl := colstore.NewTable(salesSchema)
	tbl.AppendRows(testRows())
	rows := From(NewColScan(context.Background(), tbl, []string{"item", "amount"}, nil, nil)).Run()
	if len(rows[0]) != 2 || rows[0][0].Kind != types.String {
		t.Fatalf("projection = %v", rows[0])
	}
}

func TestLimitAcrossBatches(t *testing.T) {
	rows := make([]types.Row, 0, 3000)
	for i := 0; i < 3000; i++ {
		rows = append(rows, sale(int64(i), 1, 1, "x"))
	}
	got := From(NewMemSource(salesSchema.Cols, rows)).Limit(1500).Count()
	if got != 1500 {
		t.Fatalf("limit = %d", got)
	}
}

func BenchmarkColScanAgg(b *testing.B) {
	tbl := colstore.NewTable(salesSchema)
	rows := make([]types.Row, 0, 64*1024)
	for i := 0; i < 64*1024; i++ {
		rows = append(rows, sale(int64(i), int64(i%16), float64(i%100), "item"))
	}
	tbl.AppendRows(rows)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		From(NewColScan(context.Background(), tbl, []string{"region", "amount"}, nil, nil)).
			Agg([]string{"region"}, Agg{Sum, ColName("amount"), "s"}).Count()
	}
}
