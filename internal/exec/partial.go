package exec

import (
	"context"
	"fmt"
	"strings"

	"htap/internal/types"
)

// This file is the executor half of distributed aggregate pushdown.
// A source that can evaluate grouped aggregation close to the data —
// the dist coordinator's scatter union — implements AggPusher; Plan.Agg
// offers it the aggregation before building a central hash aggregate.
// When the offer is accepted the plan becomes a combineAggOp: each
// shard ships combinable partial states (one PartialGroup per group)
// instead of raw rows, and the coordinator merges them with exactly the
// same mergeAggState machinery the parallel in-engine aggregate uses to
// merge worker tables. Because SUM/AVG accumulate in the exact
// big.Float representation (see exactsum.go), the combined result is
// bit-identical to gathering every row centrally — the equivalence
// tests assert exact equality, not epsilon closeness.

// AggState is one aggregate accumulator, exported opaquely so partial
// groups can cross package boundaries. Build them with NewPartialAgg or
// DecodePartial; combine them by handing the groups back to a plan.
type AggState = aggState

// PartialGroup is one group's key and per-aggregate partial states, as
// produced by a shard-side partial aggregation.
type PartialGroup struct {
	Key    types.Row
	States []AggState
}

// PartialSource streams partial groups. NextPartial returns nil when
// exhausted; a failing source reports through its error sink (see
// Plan.ErrSink) and then reads as exhausted, never as empty data.
type PartialSource interface {
	NextPartial() *PartialGroup
}

// AggPusher is offered a grouped aggregation by Plan.Agg. A non-nil
// return accepts the offer: one PartialSource per shard, in shard
// order. Returning nil declines (the plan falls back to a central
// aggregate over the raw row stream).
type AggPusher interface {
	PushAgg(groupBy []string, aggs []Agg, par int, ctx context.Context) []PartialSource
}

// TopKPusher is offered a bounded top-k by Plan.TopK. Accepting (true)
// means the source now yields at most k rows per shard in the keys'
// total order; the plan still applies its own final top-k, so accepting
// is an optimization, never a correctness transfer.
type TopKPusher interface {
	PushTopK(k int, keys []SortKey) bool
}

// BareColumn reports whether e is a plain column reference, and its
// name. Remote fragments can only push aggregates over bare columns —
// arbitrary expressions don't travel over the wire.
func BareColumn(e Expr) (string, bool) {
	if c, ok := e.(*colRef); ok {
		return c.name, true
	}
	return "", false
}

// UnionMembers exposes the member sources of a union built by NewUnion,
// in shard order, provided iteration has not started. It returns nil
// for any other source — in particular for the rewritten pipelines that
// filter pushdown can leave behind, which is exactly when per-member
// aggregate pushdown must not fire.
func UnionMembers(s Source) []Source {
	if u, ok := s.(*unionSource); ok && u.cur == 0 {
		return u.srcs
	}
	return nil
}

// NewPartialAgg builds the shard-side half of a pushed-down
// aggregation over in: a hash aggregate that stops before rendering,
// streaming its groups' raw states in first-seen order. par splits the
// input like any in-engine aggregate; the part-ordered merge keeps the
// group order a pure function of the input order.
func NewPartialAgg(in Source, groupBy []string, aggs []Agg, par int, ctx context.Context) PartialSource {
	return &partialAggSrc{o: newHashAgg(in, groupBy, aggs, par, ctx, nil)}
}

type partialAggSrc struct {
	o    *hashAggOp
	done bool
	ord  []*aggGroup
	pos  int
}

func (s *partialAggSrc) NextPartial() *PartialGroup {
	if !s.done {
		s.ord = s.o.buildTable().order
		s.done = true
	}
	if s.pos >= len(s.ord) {
		return nil
	}
	g := s.ord[s.pos]
	s.pos++
	return &PartialGroup{Key: g.key, States: g.states}
}

// combineAggOp is the coordinator half: merge per-shard partial groups
// in shard order into one table, then render with the descriptor
// aggregate's own finalizer. Merging shard tables in shard order is the
// same discipline the parallel aggregate applies to worker tables, and
// for the same reason — group output order (and the merge order of the
// exact sums) depends only on shard order, never on arrival timing.
type combineAggOp struct {
	o     *hashAggOp // descriptor: schema, agg kinds, render; its input is never drained
	parts []PartialSource
	done  bool
	out   []types.Row
	pos   int
}

func (c *combineAggOp) Schema() []types.Column { return c.o.schema }

func (c *combineAggOp) run() {
	t := newAggTable(c.o)
	for _, ps := range c.parts {
		if ps == nil {
			continue
		}
		for {
			pg := ps.NextPartial()
			if pg == nil {
				break
			}
			if len(pg.States) != len(c.o.aggs) {
				continue // DecodePartial enforces arity; skip rather than corrupt
			}
			g, created := t.lookup(pg.Key, keyHash(pg.Key))
			if created {
				g.ord = t.ordSeq
				t.ordSeq++
			}
			for ai := range c.o.aggs {
				mergeAggState(&g.states[ai], &pg.States[ai], c.o.aggs[ai].Kind)
			}
		}
	}
	c.out = c.o.render(t.order)
	c.done = true
}

func (c *combineAggOp) explain() (string, []Source) {
	aggs := make([]string, len(c.o.aggs))
	for i, a := range c.o.aggs {
		aggs[i] = a.Name
	}
	return fmt.Sprintf("CombinePartialAgg(shards=%d, groups=%d, aggs=[%s])",
		len(c.parts), len(c.o.groupBy), strings.Join(aggs, ", ")), nil
}

func (c *combineAggOp) Next() *Batch {
	if !c.done {
		c.run()
	}
	if c.pos >= len(c.out) {
		return nil
	}
	b := NewBatch(c.o.schema)
	for c.pos < len(c.out) && b.N < BatchSize {
		b.AppendRow(c.out[c.pos])
		c.pos++
	}
	return b
}

// EncodePartial serializes one partial group for the wire: [key...,
// then per aggregate sum (exact accumulator bytes in a String datum),
// isum, count, min, max], mirroring the spill-record layout. Unused
// min/max slots carry an Int(0) placeholder for fixed arity.
func EncodePartial(g *PartialGroup, aggs []Agg) types.Row {
	r := make(types.Row, 0, len(g.Key)+5*len(aggs))
	r = append(r, g.Key...)
	zero := types.NewInt(0)
	for ai := range aggs {
		st := &g.States[ai]
		r = append(r, types.NewString(string(st.sum.encode())), types.NewInt(st.isum), types.NewInt(st.count))
		if aggs[ai].Kind == Min && st.count > 0 {
			r = append(r, st.min)
		} else {
			r = append(r, zero)
		}
		if aggs[ai].Kind == Max && st.count > 0 {
			r = append(r, st.max)
		} else {
			r = append(r, zero)
		}
	}
	return r
}

// DecodePartial parses an EncodePartial record arriving off the wire,
// rejecting wrong arity, wrong accumulator kinds, and negative counts
// before any state reaches a combine table.
func DecodePartial(r types.Row, nKey int, aggs []Agg) (*PartialGroup, error) {
	if len(r) != nKey+5*len(aggs) {
		return nil, fmt.Errorf("exec: partial group has %d datums, want %d", len(r), nKey+5*len(aggs))
	}
	g := &PartialGroup{Key: r[:nKey:nKey], States: make([]AggState, len(aggs))}
	for ai := range aggs {
		off := nKey + 5*ai
		if r[off].Kind != types.String {
			return nil, fmt.Errorf("exec: partial sum state is %v, want String", r[off].Kind)
		}
		sum, err := decodeExactSum([]byte(r[off].Str()))
		if err != nil {
			return nil, err
		}
		if r[off+1].Kind != types.Int || r[off+2].Kind != types.Int {
			return nil, fmt.Errorf("exec: partial isum/count must be Int")
		}
		if r[off+2].I < 0 {
			return nil, fmt.Errorf("exec: partial count %d is negative", r[off+2].I)
		}
		g.States[ai] = AggState{
			sum:   sum,
			isum:  r[off+1].I,
			count: r[off+2].I,
			min:   r[off+3],
			max:   r[off+4],
		}
	}
	return g, nil
}

// PartialAgg runs the shard-side half of a pushed aggregation over this
// plan's pipeline and materializes every partial group — the server's
// entry point for a fragment carrying an aggregate spec. Errors from
// the pipeline (cancellation, fragment failures wired to the plan's
// error sinks) surface here, before any group is shipped.
func (p *Plan) PartialAgg(groupBy []string, aggs []Agg) ([]*PartialGroup, error) {
	if p.err != nil {
		return nil, p.err
	}
	defer p.FinishMem()
	src := NewPartialAgg(p.src, groupBy, aggs, p.par, p.ctx)
	var out []*PartialGroup
	for {
		pg := src.NextPartial()
		if pg == nil {
			break
		}
		out = append(out, pg)
	}
	if err := p.MemErr(); err != nil {
		return nil, err
	}
	if p.ctx != nil {
		if err := p.ctx.Err(); err != nil {
			return nil, err
		}
	}
	return out, nil
}
