package exec

import (
	"context"
	"fmt"
	"math/rand"
	"testing"

	"htap/internal/colstore"
	"htap/internal/delta"
	"htap/internal/types"
)

// pushSchema exercises every vector encoding: "id" raw/packed ints, "run"
// long RLE runs, "amt" raw floats, "tag" dictionary strings.
var pushSchema = types.NewSchema("push", 0,
	types.Column{Name: "id", Type: types.Int},
	types.Column{Name: "run", Type: types.Int},
	types.Column{Name: "amt", Type: types.Float},
	types.Column{Name: "tag", Type: types.String},
)

// pushTable builds a multi-segment table with deleted rows sprinkled in.
func pushTable(n int, deletes []int64) *colstore.Table {
	tbl := colstore.NewTable(pushSchema)
	rng := rand.New(rand.NewSource(3))
	rows := make([]types.Row, 0, n)
	for i := 0; i < n; i++ {
		rows = append(rows, types.Row{
			types.NewInt(int64(i)),
			types.NewInt(int64(i / 100 % 7)), // RLE: 100-row runs, values 0..6
			types.NewFloat(float64(rng.Intn(1000)) / 4),
			types.NewString(fmt.Sprintf("tag-%02d", rng.Intn(40))),
		})
	}
	tbl.AppendRows(rows)
	for _, k := range deletes {
		tbl.DeleteKey(k)
	}
	return tbl
}

func pushOverlay() *delta.Overlay {
	o := &delta.Overlay{Rows: make(map[int64]types.Row), Masked: make(map[int64]struct{})}
	// Updates of in-store keys (masked + re-emitted) and fresh inserts.
	for _, k := range []int64{5, 101, 9000} {
		o.Rows[k] = types.Row{types.NewInt(k), types.NewInt(3), types.NewFloat(50), types.NewString("tag-05")}
		o.Masked[k] = struct{}{}
	}
	o.Rows[1_000_001] = types.Row{types.NewInt(1_000_001), types.NewInt(9), types.NewFloat(0.25), types.NewString("zzz")}
	// A pure delete: masked with no replacement image.
	o.Masked[77] = struct{}{}
	return o
}

// pushPreds sweeps predicate shapes: every comparison operator on every
// column type, values exactly at and off RLE run boundaries, dictionary
// hits and misses, prefix and set membership, conjunctions with residuals,
// and shapes that must NOT push (disjunction, arithmetic, column-column).
func pushPreds() map[string]Expr {
	return map[string]Expr{
		"int-lt":          Cmp(LT, ColName("id"), ConstInt(500)),
		"int-le-edge":     Cmp(LE, ColName("id"), ConstInt(4095)), // segment boundary
		"int-ge-flip":     Cmp(LE, ConstInt(9500), ColName("id")), // const on the left
		"int-eq":          Cmp(EQ, ColName("id"), ConstInt(101)),
		"int-ne":          Cmp(NE, ColName("run"), ConstInt(3)),
		"rle-on-boundary": Cmp(LT, ColName("run"), ConstInt(3)), // run values are 0..6
		"rle-eq":          Cmp(EQ, ColName("run"), ConstInt(6)),
		"rle-miss":        Cmp(EQ, ColName("run"), ConstInt(42)),
		"int-vs-float":    Cmp(GT, ColName("run"), ConstFloat(2.5)), // widening compare
		"float-range":     Cmp(GE, ColName("amt"), ConstFloat(200)),
		"float-eq":        Cmp(EQ, ColName("amt"), ConstFloat(50)),
		"str-eq-hit":      Cmp(EQ, ColName("tag"), ConstStr("tag-05")),
		"str-eq-miss":     Cmp(EQ, ColName("tag"), ConstStr("tag-05x")),
		"str-lt":          Cmp(LT, ColName("tag"), ConstStr("tag-20")),
		"str-ge-absent":   Cmp(GE, ColName("tag"), ConstStr("tag-199")),
		"prefix":          HasPrefix(ColName("tag"), "tag-1"),
		"prefix-none":     HasPrefix(ColName("tag"), "nope"),
		"in-set":          InInts(ColName("run"), 1, 4, 6),
		"conjunction":     And(Cmp(LT, ColName("id"), ConstInt(5000)), Cmp(GE, ColName("amt"), ConstFloat(100))),
		"with-residual":   And(Cmp(EQ, ColName("run"), ConstInt(2)), Or(Cmp(LT, ColName("amt"), ConstFloat(10)), Cmp(GT, ColName("amt"), ConstFloat(240)))),
		"all-residual":    Or(Cmp(EQ, ColName("run"), ConstInt(0)), Cmp(EQ, ColName("run"), ConstInt(6))),
		"col-vs-col":      Cmp(LT, ColName("run"), ColName("id")),
		"arith":           Cmp(GT, Arith(Mul, ColName("amt"), ConstFloat(2)), ConstFloat(400)),
		"empty-result":    Cmp(GT, ColName("id"), ConstInt(1 << 40)),
	}
}

func pushRowsEqual(t *testing.T, name string, got, want []types.Row) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d rows, want %d", name, len(got), len(want))
	}
	for i := range got {
		if len(got[i]) != len(want[i]) {
			t.Fatalf("%s: row %d width %d, want %d", name, i, len(got[i]), len(want[i]))
		}
		for c := range got[i] {
			if got[i][c] != want[i][c] {
				t.Fatalf("%s: row %d col %d = %v, want %v", name, i, c, got[i][c], want[i][c])
			}
		}
	}
}

// TestPushdownMatchesNaiveFilter is the differential gate of the pushdown
// pipeline: for every predicate shape, the pushed-down plan must produce
// exactly the rows — same values, same order — as the same scan followed
// by a row-at-a-time filter operator, across projections, deleted rows,
// and a delta overlay, at DOP 1 and DOP 4.
func TestPushdownMatchesNaiveFilter(t *testing.T) {
	tbl := pushTable(10_000, []int64{0, 5, 4095, 4096, 9999})
	ctx := context.Background()
	projections := map[string][]string{
		"all":         nil,
		"covering":    {"id", "run", "amt", "tag"},
		"strings":     {"tag", "id"},
		"no-pred-col": {"amt"},
	}
	// Columns each predicate references: a filter can only bind against a
	// projection that includes them.
	predCols := map[string][]string{
		"int-lt": {"id"}, "int-le-edge": {"id"}, "int-ge-flip": {"id"},
		"int-eq": {"id"}, "int-ne": {"run"}, "rle-on-boundary": {"run"},
		"rle-eq": {"run"}, "rle-miss": {"run"}, "int-vs-float": {"run"},
		"float-range": {"amt"}, "float-eq": {"amt"}, "str-eq-hit": {"tag"},
		"str-eq-miss": {"tag"}, "str-lt": {"tag"}, "str-ge-absent": {"tag"},
		"prefix": {"tag"}, "prefix-none": {"tag"}, "in-set": {"run"},
		"conjunction": {"id", "amt"}, "with-residual": {"run", "amt"},
		"all-residual": {"run"}, "col-vs-col": {"run", "id"},
		"arith": {"amt"}, "empty-result": {"id"},
	}
	for pname, cols := range projections {
		for name, pred := range pushPreds() {
			if cols != nil {
				ok := true
				for _, pc := range predCols[name] {
					found := false
					for _, c := range cols {
						if c == pc {
							found = true
						}
					}
					ok = ok && found
				}
				if !ok {
					continue
				}
			}
			for _, overlay := range []*delta.Overlay{nil, pushOverlay()} {
				oname := "plain"
				if overlay != nil {
					oname = "overlay"
				}
				scan := func() Source { return NewColScan(ctx, tbl, cols, nil, overlay) }
				schema := scan().Schema()
				naive := From(&filterOp{in: scan(), expr: pred.Bind(schema)})
				want, err := naive.RunCtx(ctx)
				if err != nil {
					t.Fatal(err)
				}
				got, err := From(scan()).Filter(pred).RunCtx(ctx)
				if err != nil {
					t.Fatal(err)
				}
				pushRowsEqual(t, fmt.Sprintf("%s/%s/%s", pname, name, oname), got, want)
				gotPar, err := From(scan()).Parallel(4).Filter(pred).RunCtx(ctx)
				if err != nil {
					t.Fatal(err)
				}
				pushRowsEqual(t, fmt.Sprintf("%s/%s/%s/dop4", pname, name, oname), gotPar, want)
			}
		}
	}
}

// TestPushdownRewrites checks where predicates land in the plan tree.
func TestPushdownRewrites(t *testing.T) {
	ctx := context.Background()
	tbl := pushTable(100, nil)
	scan := func() Source { return NewColScan(ctx, tbl, nil, nil, nil) }

	// Fully pushable conjunction: no residual filter remains.
	p := From(scan()).Filter(And(Cmp(LT, ColName("id"), ConstInt(50)), Cmp(EQ, ColName("tag"), ConstStr("x"))))
	if _, ok := p.src.(*colScan); !ok {
		t.Fatalf("fully pushable filter left %T above the scan", p.src)
	}
	if s := p.Explain(); !contains(s, "pushdown=[") {
		t.Fatalf("explain missing pushdown: %s", s)
	}

	// Mixed: pushable conjunct absorbed, the disjunction stays residual.
	p = From(scan()).Filter(And(Cmp(LT, ColName("id"), ConstInt(50)),
		Or(Cmp(EQ, ColName("run"), ConstInt(1)), Cmp(EQ, ColName("run"), ConstInt(2)))))
	f, ok := p.src.(*filterOp)
	if !ok {
		t.Fatalf("expected residual filter, got %T", p.src)
	}
	if cs, ok := f.in.(*colScan); !ok || len(cs.pushed) != 1 {
		t.Fatalf("expected scan with 1 pushed pred under residual, got %T", f.in)
	}

	// Unpushable only: plan shape unchanged from a plain filter.
	p = From(scan()).Filter(Cmp(LT, ColName("run"), ColName("id")))
	if f, ok := p.src.(*filterOp); !ok {
		t.Fatalf("expected filter, got %T", p.src)
	} else if cs := f.in.(*colScan); len(cs.pushed) != 0 {
		t.Fatal("column-vs-column predicate must not push")
	}

	// NULL comparand must not push (its ordering semantics stay residual).
	p = From(scan()).Filter(Cmp(EQ, ColName("id"), &constExpr{}))
	if f, ok := p.src.(*filterOp); !ok {
		t.Fatalf("expected filter, got %T", p.src)
	} else if cs := f.in.(*colScan); len(cs.pushed) != 0 {
		t.Fatal("NULL comparand must not push")
	}

	// A started scan keeps the filter downstream.
	s := scan()
	s.Next()
	p = From(s).Filter(Cmp(LT, ColName("id"), ConstInt(50)))
	if _, ok := p.src.(*filterOp); !ok {
		t.Fatalf("started scan should not accept pushdown, got %T", p.src)
	}

	// Filters distribute over unions: both children absorb the predicate.
	u := NewUnion(scan(), scan())
	p = From(u).Filter(Cmp(LT, ColName("id"), ConstInt(50)))
	us, ok := p.src.(*unionSource)
	if !ok {
		t.Fatalf("expected union, got %T", p.src)
	}
	for i, c := range us.srcs {
		if cs, ok := c.(*colScan); !ok || len(cs.pushed) != 1 {
			t.Fatalf("union child %d: pushdown missing (%T)", i, c)
		}
	}
}

// TestPushdownSelectivityObserver checks the planner feedback hook fires
// with the observed density.
func TestPushdownSelectivityObserver(t *testing.T) {
	tbl := pushTable(4096, nil) // exactly one segment
	var got []float64
	tbl.SetSelObserver(func(sel float64) { got = append(got, sel) })
	n := From(NewColScan(context.Background(), tbl, nil, nil, nil)).
		Filter(Cmp(LT, ColName("id"), ConstInt(1024))).Count()
	if n != 1024 {
		t.Fatalf("count = %d", n)
	}
	if len(got) != 1 {
		t.Fatalf("observer fired %d times, want 1", len(got))
	}
	if want := 1024.0 / 4096.0; got[0] != want {
		t.Fatalf("observed density = %v, want %v", got[0], want)
	}
}

// TestPushdownZonePruneSkipsSegments checks float and string zone maps now
// prune whole segments, not just the legacy int path.
func TestPushdownZonePruneSkipsSegments(t *testing.T) {
	tbl := colstore.NewTable(pushSchema)
	rows := make([]types.Row, 0, 2*colstore.SegmentRows)
	for i := 0; i < 2*colstore.SegmentRows; i++ {
		tag := "lo"
		if i >= colstore.SegmentRows {
			tag = "zz-hi"
		}
		rows = append(rows, types.Row{
			types.NewInt(int64(i)),
			types.NewInt(0),
			types.NewFloat(float64(i)),
			types.NewString(tag),
		})
	}
	tbl.AppendRows(rows)
	ctx := context.Background()
	before := pushSegsPruned.Value()
	n := From(NewColScan(ctx, tbl, nil, nil, nil)).
		Filter(Cmp(GE, ColName("amt"), ConstFloat(float64(colstore.SegmentRows)))).Count()
	if n != colstore.SegmentRows {
		t.Fatalf("float-pruned count = %d", n)
	}
	if pushSegsPruned.Value() != before+1 {
		t.Fatalf("float zone prune did not skip a segment (%d -> %d)", before, pushSegsPruned.Value())
	}
	before = pushSegsPruned.Value()
	n = From(NewColScan(ctx, tbl, nil, nil, nil)).
		Filter(HasPrefix(ColName("tag"), "zz-")).Count()
	if n != colstore.SegmentRows {
		t.Fatalf("prefix-pruned count = %d", n)
	}
	if pushSegsPruned.Value() != before+1 {
		t.Fatal("string-prefix zone prune did not skip a segment")
	}
}
