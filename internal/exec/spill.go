// Spill I/O for bounded-memory operators.
//
// Spill files live on the governor's simulated disk device as append-only
// files of length-framed row blocks:
//
//	frame: 4-byte little-endian payload length, then payload
//	payload: concatenated types.AppendRow encodings
//
// The row encoding stores float bits verbatim, so a spilled row reloads
// bit-identically — the property every spilling operator's equivalence
// argument rests on. Writers buffer rows until flushAt bytes and retry
// clean injected write errors (disk.ErrInjected is a transient EIO) a few
// times; torn writes and crashes are not retried — the query fails cleanly
// through QueryMem.Fail. Readers stream one frame at a time, so reloading
// a spill file needs memory bounded by the frame size, not the file size.
package exec

import (
	"container/heap"
	"encoding/binary"
	"fmt"
	"runtime"
	"time"

	"htap/internal/disk"
	"htap/internal/types"
)

// coopYield yields the processor at morsel (batch) boundaries inside
// memory-governed operator loops — the spilling counterpart of
// sched.workerSet's per-unit Gosched. A grace join or external sort is a
// long CPU-bound loop; without these yields it monopolizes a core for
// whole scheduler slices on GOMAXPROCS=1 hosts and concurrent OLTP p99
// collapses (the memory gate in internal/chaos measures exactly this).
func coopYield() { runtime.Gosched() }

// spillFlushAt is the writer's buffered-bytes flush threshold; it bounds
// both writer memory and the reader's per-frame allocation.
const spillFlushAt = 64 << 10

// spillRetries bounds retries of clean injected write errors.
const spillRetries = 4

// spillWriter appends framed rows to one spill file.
type spillWriter struct {
	qm   *QueryMem
	name string
	buf  []byte
	rows int64 // total rows written (including buffered)
}

func newSpillWriter(qm *QueryMem, kind string) *spillWriter {
	return &spillWriter{qm: qm, name: qm.newFile(kind)}
}

func (w *spillWriter) add(r types.Row) error {
	if len(w.buf) == 0 {
		w.buf = append(w.buf, 0, 0, 0, 0) // frame length placeholder
	}
	w.buf = types.AppendRow(w.buf, r)
	w.rows++
	if len(w.buf) >= spillFlushAt {
		return w.flush()
	}
	return nil
}

func (w *spillWriter) flush() error {
	if len(w.buf) == 0 {
		return nil
	}
	binary.LittleEndian.PutUint32(w.buf, uint32(len(w.buf)-4))
	var err error
	for attempt := 0; attempt <= spillRetries; attempt++ {
		if attempt > 0 {
			spillRetryTotal.Inc()
		}
		start := time.Now()
		_, err = w.qm.g.dev.Append(w.name, w.buf)
		if err == nil {
			w.qm.noteSpillIO(int64(len(w.buf)), time.Since(start).Nanoseconds())
			w.qm.g.spillBytes.Add(int64(len(w.buf)))
			spillBytesTotal.Add(int64(len(w.buf)))
			w.buf = w.buf[:0]
			return nil
		}
		if err != disk.ErrInjected {
			break
		}
	}
	err = fmt.Errorf("exec: spill write %s: %w", w.name, err)
	w.qm.Fail(err)
	return err
}

// close flushes buffered rows; the file stays on disk for reading.
func (w *spillWriter) close() error { return w.flush() }

// spillCursor streams rows back from one spill file, one frame in memory
// at a time.
type spillCursor struct {
	qm   *QueryMem
	name string
	off  int64
	size int64
	rows []types.Row
	pos  int
}

func newSpillCursor(qm *QueryMem, name string) *spillCursor {
	return &spillCursor{qm: qm, name: name, size: qm.g.dev.Size(name)}
}

// next returns the next row; ok is false at end of file or on error (check
// err). Read failures also fail the query via QueryMem.Fail.
func (c *spillCursor) next() (types.Row, bool, error) {
	for c.pos >= len(c.rows) {
		if c.off >= c.size {
			return nil, false, nil
		}
		if err := c.readFrame(); err != nil {
			return nil, false, err
		}
	}
	r := c.rows[c.pos]
	c.pos++
	return r, true, nil
}

func (c *spillCursor) readFrame() error {
	var hdr [4]byte
	if err := c.fill(hdr[:]); err != nil {
		return err
	}
	n := binary.LittleEndian.Uint32(hdr[:])
	if n == 0 || c.off+int64(n) > c.size {
		return c.fail(fmt.Errorf("exec: corrupt spill frame in %s", c.name))
	}
	payload := make([]byte, n)
	if err := c.fill(payload); err != nil {
		return err
	}
	c.rows = c.rows[:0]
	c.pos = 0
	for len(payload) > 0 {
		r, sz, err := types.DecodeRow(payload)
		if err != nil {
			return c.fail(fmt.Errorf("exec: corrupt spill row in %s: %w", c.name, err))
		}
		payload = payload[sz:]
		c.rows = append(c.rows, r)
	}
	return nil
}

func (c *spillCursor) fill(p []byte) error {
	start := time.Now()
	if err := c.qm.g.dev.ReadAt(c.name, p, c.off); err != nil {
		return c.fail(fmt.Errorf("exec: spill read %s: %w", c.name, err))
	}
	c.qm.noteSpillIO(0, time.Since(start).Nanoseconds())
	c.off += int64(len(p))
	c.qm.g.spillRead.Add(int64(len(p)))
	spillReadTotal.Add(int64(len(p)))
	return nil
}

func (c *spillCursor) fail(err error) error {
	c.qm.Fail(err)
	return err
}

// --- ordered merge of tagged runs ---

// A tagged row carries its original ordinal as an Int datum in column 0.
// Operators that partition a stream (grace join probe output) tag rows
// before scattering, then mergeTagged reassembles the original order: the
// ordinals within each run are strictly increasing and disjoint across
// runs, so a k-way heap merge on the leading tag reproduces the sequence.

type taggedRun struct {
	cur *spillCursor
	row types.Row // head, tagged
}

type taggedHeap []*taggedRun

func (h taggedHeap) Len() int            { return len(h) }
func (h taggedHeap) Less(i, j int) bool  { return h[i].row[0].I < h[j].row[0].I }
func (h taggedHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *taggedHeap) Push(x interface{}) { *h = append(*h, x.(*taggedRun)) }
func (h *taggedHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// mergeTagged streams the runs' rows in ascending tag order, tag still
// attached — recursive consumers (grace sub-partition merges) re-emit the
// tagged rows into a parent run, and top-level consumers strip row[0].
// Consumed files are removed eagerly.
type mergeTagged struct {
	qm *QueryMem
	h  taggedHeap
}

func newMergeTagged(qm *QueryMem, files []string) (*mergeTagged, error) {
	m := &mergeTagged{qm: qm}
	for _, f := range files {
		cur := newSpillCursor(qm, f)
		row, ok, err := cur.next()
		if err != nil {
			return nil, err
		}
		if !ok {
			qm.removeFile(f)
			continue
		}
		m.h = append(m.h, &taggedRun{cur: cur, row: row})
	}
	heap.Init(&m.h)
	return m, nil
}

// next returns the next tagged row in tag order; ok is false when all
// runs are exhausted.
func (m *mergeTagged) next() (types.Row, bool, error) {
	if len(m.h) == 0 {
		return nil, false, nil
	}
	top := m.h[0]
	out := top.row
	row, ok, err := top.cur.next()
	if err != nil {
		return nil, false, err
	}
	if ok {
		top.row = row
		heap.Fix(&m.h, 0)
	} else {
		m.qm.removeFile(top.cur.name)
		heap.Pop(&m.h)
	}
	return out, true, nil
}

// --- partitioning ---

// spillFanout is the hash-partition fan-out of spilling operators.
const spillFanout = 8

// spillMaxDepth caps recursive re-partitioning; beyond it an operator
// processes the partition in memory and counts the over-budget event
// (pathological inputs: every row sharing one key).
const spillMaxDepth = 3

// partOf assigns a key hash to one of spillFanout partitions at the given
// recursion depth. Each depth remixes with a distinct odd multiplier so a
// partition that defeated one level's hash splits at the next.
func partOf(h uint64, depth int) int {
	h ^= uint64(depth+1) * 0x9E3779B97F4A7C15
	h *= 0xFF51AFD7ED558CCD
	h ^= h >> 33
	return int(h % spillFanout)
}

// hashRowKeys hashes the keyed columns of a materialized row with the same
// FNV chain hashKeys uses on batches, so batch-side and row-side
// partitioning agree.
func hashRowKeys(r types.Row, keys []int) uint64 {
	h := uint64(1469598103934665603)
	for _, k := range keys {
		h = r[k].Hash(h)
	}
	return h
}

// closeAll closes writers, returning the first error.
func closeAll(ws []*spillWriter) error {
	var first error
	for _, w := range ws {
		if err := w.close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// removeAll removes the writers' files.
func removeAll(qm *QueryMem, ws []*spillWriter) {
	for _, w := range ws {
		qm.removeFile(w.name)
	}
}

// batchFromRows rebuilds a columnar batch from materialized rows; spilled
// raw input replays through it so bound expressions evaluate unchanged.
func batchFromRows(schema []types.Column, rows []types.Row) *Batch {
	b := NewBatch(schema)
	for _, r := range rows {
		b.AppendRow(r)
	}
	return b
}
