package chaos

import (
	"testing"
)

// TestMemGate runs the memory-pressure gate end to end: hostile query
// bit-identical under a starved budget, clean failure under spill faults,
// TP p99 within its allowance, zero spill files left. RunMemGate embeds
// the assertions; the test adds the vacuity checks a refactor could
// silently relax.
func TestMemGate(t *testing.T) {
	rep, err := RunMemGate(MemGateConfig{Seed: 7})
	if err != nil {
		t.Fatalf("mem gate: %v (report %+v)", err, rep)
	}
	if rep.Footprint < 8*rep.Budget {
		t.Fatalf("footprint %d < 8x budget %d: the budget never pressured the query", rep.Footprint, rep.Budget)
	}
	if rep.Completed == 0 || rep.Spills == 0 || rep.SpillBytes == 0 {
		t.Fatalf("vacuous gate: completed=%d spills=%d spillBytes=%d", rep.Completed, rep.Spills, rep.SpillBytes)
	}
	t.Logf("footprint=%dB budget=%dB completed=%d faultFailed=%d spills=%d spillBytes=%d tpBase=%v tpLoad=%v",
		rep.Footprint, rep.Budget, rep.Completed, rep.FaultFailed, rep.Spills, rep.SpillBytes, rep.TPBaseP99, rep.TPLoadP99)
}

// TestMemGateDeterministicFaults pins the seeded fault schedule: two gates
// with the same seed observe the same completed/failed split, so a failing
// gate replays exactly.
func TestMemGateDeterministicFaults(t *testing.T) {
	a, err := RunMemGate(MemGateConfig{Seed: 11, TPTxns: 20, Runs: 4})
	if err != nil {
		t.Fatalf("first run: %v", err)
	}
	b, err := RunMemGate(MemGateConfig{Seed: 11, TPTxns: 20, Runs: 4})
	if err != nil {
		t.Fatalf("second run: %v", err)
	}
	if a.Completed != b.Completed || a.FaultFailed != b.FaultFailed {
		t.Fatalf("same seed, different fault schedule: (%d,%d) vs (%d,%d)",
			a.Completed, a.FaultFailed, b.Completed, b.FaultFailed)
	}
}
