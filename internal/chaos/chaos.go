// Package chaos is the crash-consistency harness: it runs CH-benCHmark-style
// read-modify-write transactions against an engine whose WAL device is armed
// with a fault plan, crashes the engine mid-commit at a deterministic
// injected point, recovers it from the surviving device, and verifies the
// durability invariants the paper's Table 2 takes for granted when it pairs
// every TP technique with "logging":
//
//  1. prefix-of-acknowledged-commits — every transaction whose Commit
//     returned nil is present after recovery, and nothing else is (the one
//     in-flight transaction whose flush tore is allowed to vanish, never to
//     half-appear);
//  2. atomicity across tables — a transaction's order-line insert and its
//     balance update recover together or not at all;
//  3. no aborted transaction is visible;
//  4. row store and column store agree after Sync — the analytical view of
//     the recovered engine matches its transactional view, key by key.
//
// Everything is seeded (the workload RNG and the device's FaultPlan), so a
// failing run replays exactly.
package chaos

import (
	"context"
	"errors"
	"fmt"
	"math/rand"

	"htap/internal/core"
	"htap/internal/disk"
	"htap/internal/exec"
	"htap/internal/types"
)

// Schemas returns the two-table workload schema: accounts carry a running
// balance and the sequence number of the last transaction that touched
// them; hist records one row per transaction (a thin order line).
func Schemas() []*types.Schema {
	return []*types.Schema{
		types.NewSchema("acct", 0,
			types.Column{Name: "id", Type: types.Int},
			types.Column{Name: "ver", Type: types.Int},
			types.Column{Name: "bal", Type: types.Float},
		),
		types.NewSchema("hist", 0,
			types.Column{Name: "id", Type: types.Int},
			types.Column{Name: "acct", Type: types.Int},
			types.Column{Name: "delta", Type: types.Float},
		),
	}
}

// Subject is one engine under test: how to open it fresh and how to recover
// it from a crashed WAL device.
type Subject struct {
	Name    string
	Open    func() (core.Engine, *disk.Device)
	Recover func(dev *disk.Device) (core.Engine, error)
}

// Subjects returns the WAL-recoverable architectures (A, C, D). B replicates
// through Raft instead of a local WAL and has no single-device crash model.
func Subjects() []Subject {
	return []Subject{
		{
			Name: "A",
			Open: func() (core.Engine, *disk.Device) {
				e := core.NewEngineA(core.ConfigA{Schemas: Schemas()})
				return e, e.WALDevice()
			},
			Recover: func(dev *disk.Device) (core.Engine, error) {
				return core.RecoverEngineA(core.ConfigA{Schemas: Schemas()}, dev)
			},
		},
		{
			Name: "C",
			Open: func() (core.Engine, *disk.Device) {
				e := core.NewEngineC(core.ConfigC{Schemas: Schemas(), Shards: 2, Disk: disk.MemConfig()})
				return e, e.WALDevice()
			},
			Recover: func(dev *disk.Device) (core.Engine, error) {
				return core.RecoverEngineC(core.ConfigC{Schemas: Schemas(), Shards: 2, Disk: disk.MemConfig()}, dev)
			},
		},
		{
			Name: "D",
			Open: func() (core.Engine, *disk.Device) {
				e := core.NewEngineD(core.ConfigD{Schemas: Schemas(), L1Rows: 4, L2Rows: 16})
				return e, e.WALDevice()
			},
			Recover: func(dev *disk.Device) (core.Engine, error) {
				return core.RecoverEngineD(core.ConfigD{Schemas: Schemas(), L1Rows: 4, L2Rows: 16}, dev)
			},
		},
	}
}

// Config sizes one chaos run.
type Config struct {
	Seed             int64
	Accounts         int   // rows preloaded into acct (default 8)
	CrashAfterWrites int64 // WAL-device Append count before the crash (default 13)
	MaxTxns          int64 // safety bound on the workload (default 1000)
	AbortEvery       int64 // every Nth transaction aborts voluntarily (0 disables)
}

func (c Config) normalize() Config {
	if c.Accounts <= 0 {
		c.Accounts = 8
	}
	if c.CrashAfterWrites <= 0 {
		c.CrashAfterWrites = 13
	}
	if c.MaxTxns <= 0 {
		c.MaxTxns = 1000
	}
	if c.AbortEvery < 0 {
		c.AbortEvery = 0
	}
	return c
}

// Report summarizes one crash-recover cycle.
type Report struct {
	Acked    int64 // commits acknowledged before the crash
	Aborted  int64 // voluntary aborts before the crash
	CrashSeq int64 // sequence number of the transaction in flight at the crash
	CrashErr error // the fault that killed it
	// Disk is the WAL device's counters snapshotted at the crash: the fault
	// ledger (crashes, torn writes, discarded bytes) a run can assert on.
	Disk disk.Stats
}

// model is the oracle state: what the database must contain if every
// acknowledged commit is durable and nothing else is.
type model struct {
	bal     map[int64]float64 // acct id -> expected balance
	ver     map[int64]int64   // acct id -> last acked txn seq
	acked   map[int64]int64   // txn seq -> acct it touched
	aborted []int64
}

func newModel(accounts int) *model {
	m := &model{bal: map[int64]float64{}, ver: map[int64]int64{}, acked: map[int64]int64{}}
	for k := int64(0); k < int64(accounts); k++ {
		m.bal[k] = 0
	}
	return m
}

func (m *model) ack(seq, acct int64, bal float64) {
	m.bal[acct] = bal
	m.ver[acct] = seq
	m.acked[seq] = acct
}

func acctRow(id, ver int64, bal float64) types.Row {
	return types.Row{types.NewInt(id), types.NewInt(ver), types.NewFloat(bal)}
}

func histRow(id, acct int64, delta float64) types.Row {
	return types.Row{types.NewInt(id), types.NewInt(acct), types.NewFloat(delta)}
}

// isDiskFault reports whether err originates from an injected device fault.
func isDiskFault(err error) bool {
	return errors.Is(err, disk.ErrCrashed) || errors.Is(err, disk.ErrTorn) || errors.Is(err, disk.ErrInjected)
}

// Run drives the workload on a fresh subject until the armed fault plan
// crashes the WAL device mid-commit, then recovers and verifies the
// invariants. It runs a second burst of transactions on the recovered
// engine and a second (fault-free) restart, so LSN continuity and
// post-recovery durability are exercised too.
func Run(sub Subject, cfg Config) (Report, error) {
	cfg = cfg.normalize()
	var rep Report

	e, dev := sub.Open()
	m := newModel(cfg.Accounts)
	// Seed the baseline through a committed (and therefore logged)
	// transaction: Engine.Load bypasses the WAL, and rows recovery cannot
	// see would fail the verifier for the wrong reason. The fault plan is
	// armed only after the baseline is durable.
	if err := core.Exec(context.Background(), e, func(tx core.Tx) error {
		for k := int64(0); k < int64(cfg.Accounts); k++ {
			if err := tx.Insert("acct", acctRow(k, 0, 0)); err != nil {
				return err
			}
		}
		return nil
	}); err != nil {
		return rep, fmt.Errorf("seed accounts: %w", err)
	}
	dev.SetFaultPlan(&disk.FaultPlan{Seed: cfg.Seed, CrashAfterWrites: cfg.CrashAfterWrites})

	rng := rand.New(rand.NewSource(cfg.Seed))
	seq := int64(0)
	for seq < cfg.MaxTxns {
		seq++
		crashed, err := m.step(e, rng, seq, cfg.AbortEvery, &rep)
		if err != nil {
			return rep, err
		}
		if crashed {
			rep.CrashSeq = seq
			break
		}
	}
	if rep.CrashErr == nil {
		return rep, errors.New("chaos: workload drained without hitting the crash trigger")
	}
	// The crashed device must refuse further commits — an engine that kept
	// acknowledging writes into a dead log would be lying.
	if err := oneTxn(e, seq+1, 0); err == nil {
		return rep, errors.New("chaos: commit acknowledged on a crashed device")
	}
	rep.Disk = dev.Stats()
	e.Close()

	// Restart: the machine comes back, the media survives.
	dev.Revive()
	r, err := sub.Recover(dev)
	if err != nil {
		return rep, fmt.Errorf("recover: %w", err)
	}
	if err := m.verify(r, rep.CrashSeq); err != nil {
		r.Close()
		return rep, fmt.Errorf("after first recovery: %w", err)
	}

	// The recovered engine must accept and persist new traffic.
	base := seq
	for i := int64(1); i <= 20; i++ {
		seq = base + i
		if _, err := m.step(r, rng, seq, cfg.AbortEvery, &Report{}); err != nil {
			r.Close()
			return rep, fmt.Errorf("post-recovery txn %d: %w", seq, err)
		}
	}
	r.Close()

	// Second restart, no fault this time: everything acked in both epochs
	// must still be there.
	r2, err := sub.Recover(dev)
	if err != nil {
		return rep, fmt.Errorf("second recover: %w", err)
	}
	defer r2.Close()
	if err := m.verify(r2, 0); err != nil {
		return rep, fmt.Errorf("after second recovery: %w", err)
	}
	return rep, nil
}

// step executes one read-modify-write transaction: bump an account's
// balance and insert its hist row. It returns crashed=true when the commit
// died on an injected device fault.
func (m *model) step(e core.Engine, rng *rand.Rand, seq, abortEvery int64, rep *Report) (crashed bool, err error) {
	k := int64(rng.Intn(len(m.bal)))
	tx := e.Begin(context.Background())
	cur, err := tx.Get("acct", k)
	if err != nil {
		tx.Abort()
		return false, fmt.Errorf("txn %d: read acct %d: %w", seq, k, err)
	}
	newBal := cur[2].Float() + 1
	if err := tx.Update("acct", acctRow(k, seq, newBal)); err != nil {
		tx.Abort()
		return false, fmt.Errorf("txn %d: update: %w", seq, err)
	}
	if err := tx.Insert("hist", histRow(seq, k, 1)); err != nil {
		tx.Abort()
		return false, fmt.Errorf("txn %d: insert: %w", seq, err)
	}
	if abortEvery > 0 && seq%abortEvery == 0 {
		tx.Abort()
		m.aborted = append(m.aborted, seq)
		rep.Aborted++
		return false, nil
	}
	if err := tx.Commit(); err != nil {
		if isDiskFault(err) {
			rep.CrashErr = err
			return true, nil
		}
		return false, fmt.Errorf("txn %d: commit: %w", seq, err)
	}
	m.ack(seq, k, newBal)
	rep.Acked++
	return false, nil
}

// oneTxn attempts a single throwaway commit (used to probe a dead device).
func oneTxn(e core.Engine, seq, k int64) error {
	tx := e.Begin(context.Background())
	cur, err := tx.Get("acct", k)
	if err != nil {
		tx.Abort()
		return nil // reads already failing is an acceptable way to be dead
	}
	if err := tx.Update("acct", acctRow(k, seq, cur[2].Float()+1)); err != nil {
		tx.Abort()
		return nil
	}
	return tx.Commit()
}

// verify checks the recovered engine against the model. inflight is the
// sequence number of the transaction killed by the crash (0 if none): it is
// the only non-acked transaction allowed to be absent-or-present — and even
// it may never be half-present.
func (m *model) verify(e core.Engine, inflight int64) error {
	tx := e.Begin(context.Background())
	defer tx.Abort()

	// Invariant 1+2: every acked transaction is fully present — its hist
	// row exists and its account version is at least as new.
	for seq, k := range m.acked {
		row, err := tx.Get("hist", seq)
		if err != nil {
			return fmt.Errorf("acked txn %d lost its hist row: %w", seq, err)
		}
		if row[1].Int() != k {
			return fmt.Errorf("hist %d points at acct %d, want %d", seq, row[1].Int(), k)
		}
	}
	for k, wantBal := range m.bal {
		row, err := tx.Get("acct", k)
		if err != nil {
			return fmt.Errorf("acct %d lost: %w", k, err)
		}
		if got := row[2].Float(); got != wantBal {
			return fmt.Errorf("acct %d balance = %v, want %v (acked prefix violated)", k, got, wantBal)
		}
		if got := row[1].Int(); got != m.ver[k] {
			return fmt.Errorf("acct %d version = %d, want %d", k, got, m.ver[k])
		}
	}

	// Invariant 3: no aborted transaction is visible.
	for _, seq := range m.aborted {
		if _, err := tx.Get("hist", seq); !errors.Is(err, core.ErrNotFound) {
			return fmt.Errorf("aborted txn %d visible after recovery (err=%v)", seq, err)
		}
	}
	// Invariant 1, other direction: nothing beyond the acked prefix. The
	// in-flight transaction was never acknowledged, so it must be gone —
	// its balance bump is already ruled out by the exact-balance check
	// above; its hist row must not exist either.
	if inflight > 0 {
		if _, err := tx.Get("hist", inflight); !errors.Is(err, core.ErrNotFound) {
			return fmt.Errorf("in-flight txn %d half-survived the crash (err=%v)", inflight, err)
		}
	}

	// Invariant 4: after Sync, the analytical path sees exactly the
	// transactional state.
	e.Sync()
	if got := e.Query(context.Background(), "hist", nil, nil).Count(); got != len(m.acked) {
		return fmt.Errorf("analytical hist count = %d, want %d acked", got, len(m.acked))
	}
	rows := e.Query(context.Background(), "acct", []string{"id", "ver", "bal"}, nil).Run()
	if len(rows) != len(m.bal) {
		return fmt.Errorf("analytical acct count = %d, want %d", len(rows), len(m.bal))
	}
	for _, row := range rows {
		k := row[0].Int()
		if row[2].Float() != m.bal[k] || row[1].Int() != m.ver[k] {
			return fmt.Errorf("column store acct %d = (ver %d, bal %v), row-store model wants (ver %d, bal %v)",
				k, row[1].Int(), row[2].Float(), m.ver[k], m.bal[k])
		}
	}

	// Architecture C's column store restarts cold; force a reload and check
	// the distributed columnar path explicitly.
	if cl, ok := e.(colLoader); ok {
		cl.LoadColumns("hist", []string{"id", "acct", "delta"})
		if got := exec.From(cl.ColSource("hist", []string{"id"}, nil)).Count(); got != len(m.acked) {
			return fmt.Errorf("IMCS hist count = %d, want %d acked", got, len(m.acked))
		}
	}
	return nil
}

// colLoader is the extract-and-push-down surface of architecture C.
type colLoader interface {
	LoadColumns(table string, cols []string)
	ColSource(table string, cols []string, pred *exec.ScanPred) exec.Source
}
