// Memory-pressure gate: the graceful-degradation counterpart of the
// crash-consistency harness in this package. Where Run crashes the WAL
// under transactions, RunMemGate starves the analytical executor of
// memory under a hostile query — a self-join + aggregation + sort over
// order_line whose materialized footprint dwarfs any sane budget — and
// verifies the degradation contract end to end:
//
//  1. correctness under pressure — with a per-query budget an order of
//     magnitude below the query's unbounded footprint, every completed
//     run returns rows bit-identical to the ungoverned baseline at the
//     same parallelism (spilling changes where state lives, never what
//     comes out);
//  2. faults on the spill path fail cleanly — with injected write errors
//     on the governor's spill device, a run either completes identically
//     (clean errors are retried) or fails with an error and nil rows,
//     never a partial result, and never poisons later runs;
//  3. isolation — concurrent OLTP latency under the spilling analytical
//     load stays within 2x its unloaded baseline (bounded memory is what
//     keeps the node from thrashing the transactional side);
//  4. hygiene — after every run, completed or failed, zero spill files
//     remain on the device.
//
// Everything is seeded; a failing gate replays exactly.
package chaos

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sort"
	"time"

	"htap/internal/ch"
	"htap/internal/core"
	"htap/internal/disk"
	"htap/internal/exec"
	"htap/internal/types"
)

// MemGateConfig sizes one memory-pressure run.
type MemGateConfig struct {
	Seed         int64
	Warehouses   int     // CH scale (default 2)
	Parallelism  int     // fixed analytical DOP (default 4)
	Runs         int     // governed hostile-query executions (default 6)
	TPTxns       int     // OLTP transactions measured per phase (default 200)
	WriteErrRate float64 // injected clean-error rate on spill appends (default 0.05)
}

func (c MemGateConfig) normalize() MemGateConfig {
	if c.Warehouses <= 0 {
		c.Warehouses = 2
	}
	if c.Parallelism <= 0 {
		c.Parallelism = 4
	}
	if c.Runs <= 0 {
		c.Runs = 6
	}
	if c.TPTxns <= 0 {
		c.TPTxns = 200
	}
	if c.WriteErrRate <= 0 {
		c.WriteErrRate = 0.05
	}
	return c
}

// MemGateReport summarizes one gate run.
type MemGateReport struct {
	Footprint   int64 // ungoverned per-query materialized peak, bytes
	Budget      int64 // per-query budget the governed runs got
	Completed   int   // governed runs that finished (and matched the baseline)
	FaultFailed int   // governed runs killed cleanly by an injected fault
	Spills      int64 // operators that switched to a spilling algorithm
	SpillBytes  int64 // bytes written to the spill device
	TPBaseP99   time.Duration
	TPLoadP99   time.Duration
}

// hostileQuery is the adversarial analytical workload: order_line
// self-joined on item id (quadratic per-item blowup feeding the join's
// build and probe sides), aggregated per item, sorted by descending
// revenue. All three materializing operators — hash join, hash aggregate,
// sort — sit on one plan, so a starved budget forces the full spill
// ladder. When the engine is governed, the two scans' accountants are
// collapsed into one so the whole query answers to a single budget,
// exactly as ch.RunQuery arranges for the 22 benchmark queries.
func hostileQuery(ctx context.Context, e core.Engine) ([]types.Row, error) {
	scan := func() *exec.Plan {
		return e.Query(ctx, ch.TOrderLine, []string{"ol_i_id", "ol_quantity", "ol_amount"}, nil)
	}
	left, right := scan(), scan()
	if qm := left.Mem(); qm != nil {
		if rqm := right.Mem(); rqm != nil && rqm != qm {
			rqm.Finish()
			right = right.WithMem(qm)
		}
	}
	right = right.Project(
		exec.NamedExpr{Name: "r_i_id", Expr: exec.ColName("ol_i_id")},
		exec.NamedExpr{Name: "r_amount", Expr: exec.ColName("ol_amount")},
	)
	return left.
		Join(right, []string{"ol_i_id"}, []string{"r_i_id"}).
		Agg([]string{"ol_i_id"},
			exec.Agg{Kind: exec.Sum, Expr: exec.ColName("r_amount"), Name: "revenue"},
			exec.Agg{Kind: exec.Sum, Expr: exec.ColName("ol_quantity"), Name: "qty"},
			exec.Agg{Kind: exec.Count, Name: "pairs"},
		).
		Sort(exec.SortKey{Col: "revenue", Desc: true}, exec.SortKey{Col: "ol_i_id"}).
		RunCtx(ctx)
}

// rowsIdentical is bit-exact equality: floats compare by their bit
// patterns, so even a sign-of-zero or association-order difference fails.
func rowsIdentical(a, b []types.Row) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if len(a[i]) != len(b[i]) {
			return false
		}
		for c := range a[i] {
			x, y := a[i][c], b[i][c]
			if x.Kind == types.Float && y.Kind == types.Float {
				if math.Float64bits(x.Float()) != math.Float64bits(y.Float()) {
					return false
				}
				continue
			}
			if !x.Equal(y) {
				return false
			}
		}
	}
	return true
}

// tpTxn is one OLTP unit: read-modify-write of an item's price.
func tpTxn(e core.Engine, k int64) error {
	tx := e.Begin(context.Background())
	row, err := tx.Get(ch.TItem, ch.ItemKey(k))
	if err != nil {
		tx.Abort()
		return err
	}
	up := row.Clone()
	up[4] = types.NewFloat(up[4].Float() + 0.01) // i_price
	if err := tx.Update(ch.TItem, up); err != nil {
		tx.Abort()
		return err
	}
	return tx.Commit()
}

// measureTP runs n item-update transactions and returns their p99 latency.
func measureTP(e core.Engine, n int, items int64) (time.Duration, error) {
	lat := make([]time.Duration, 0, n)
	for i := 0; i < n; i++ {
		k := int64(i)%items + 1
		t0 := time.Now()
		if err := tpTxn(e, k); err != nil {
			return 0, fmt.Errorf("tp txn %d: %w", i, err)
		}
		lat = append(lat, time.Since(t0))
	}
	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	return lat[len(lat)*99/100], nil
}

// RunMemGate drives the memory-pressure gate on architecture A (the
// in-process engine every other suite uses as golden) and verifies the
// four invariants in the package comment. The returned report carries the
// measured footprint, budget, and latencies for logging.
func RunMemGate(cfg MemGateConfig) (MemGateReport, error) {
	cfg = cfg.normalize()
	var rep MemGateReport

	e := core.NewEngineA(core.ConfigA{Schemas: ch.Schemas()})
	defer e.Close()
	scale := ch.SmallScale(cfg.Warehouses)
	scale.Seed = cfg.Seed
	if _, err := ch.NewGenerator(scale).Load(e); err != nil {
		return rep, fmt.Errorf("load: %w", err)
	}
	e.Sync()
	e.SetParallelism(cfg.Parallelism)
	ctx := context.Background()

	// Phase 1 — footprint: run ungoverned but accounted (a governor with
	// no limits charges memory without ever forcing a spill) to measure
	// the hostile query's materialized peak, and capture the baseline rows.
	meter := exec.NewGovernor(0, nil)
	e.SetMemGovernor(meter)
	baseline, err := hostileQuery(ctx, e)
	e.SetMemGovernor(nil)
	if err != nil {
		return rep, fmt.Errorf("ungoverned hostile query: %w", err)
	}
	if meter.Spills() != 0 {
		return rep, fmt.Errorf("metering governor spilled %d times; footprint is not the unbounded peak", meter.Spills())
	}
	rep.Footprint = meter.MaxQueryPeak()
	rep.Budget = rep.Footprint / 10
	if rep.Budget < 8<<10 {
		rep.Budget = 8 << 10
	}
	// The gate is only meaningful when the budget truly starves the query.
	if rep.Footprint < 8*rep.Budget {
		return rep, fmt.Errorf("footprint %d < 8x budget %d: scale too small to pressure the executor", rep.Footprint, rep.Budget)
	}

	// Phase 2 — governed runs under spill faults: every Append to the
	// spill device fails cleanly with probability WriteErrRate. The spill
	// writer retries clean errors a few times, so most runs complete —
	// and must then match the baseline bit for bit; a run that exhausts
	// its retries must fail with nil rows and leave the engine healthy.
	dev := disk.New(disk.MemConfig())
	gov := exec.NewGovernor(0, dev)
	gov.SetQueryLimit(rep.Budget)
	dev.SetFaultPlan(&disk.FaultPlan{
		Seed:  cfg.Seed,
		Rules: []disk.FaultRule{{WriteErrRate: cfg.WriteErrRate}}, // every spill file
	})
	e.SetMemGovernor(gov)
	for i := 0; i < cfg.Runs; i++ {
		rows, err := hostileQuery(ctx, e)
		if err != nil {
			if !errors.Is(err, disk.ErrInjected) {
				e.SetMemGovernor(nil)
				return rep, fmt.Errorf("governed run %d failed with a non-fault error: %w", i, err)
			}
			if rows != nil {
				e.SetMemGovernor(nil)
				return rep, fmt.Errorf("governed run %d returned %d rows alongside its error: partial result escaped", i, len(rows))
			}
			rep.FaultFailed++
			continue
		}
		if !rowsIdentical(baseline, rows) {
			e.SetMemGovernor(nil)
			return rep, fmt.Errorf("governed run %d diverged from the ungoverned baseline (%d vs %d rows)", i, len(rows), len(baseline))
		}
		rep.Completed++
	}
	dev.SetFaultPlan(nil)
	rep.Spills = gov.Spills()
	rep.SpillBytes = gov.SpillBytes()
	if rep.Completed == 0 {
		e.SetMemGovernor(nil)
		return rep, fmt.Errorf("no governed run completed (%d fault failures in %d runs): raise retries or lower WriteErrRate", rep.FaultFailed, cfg.Runs)
	}
	if rep.Spills == 0 || rep.SpillBytes == 0 {
		e.SetMemGovernor(nil)
		return rep, fmt.Errorf("budget %d forced no spills against footprint %d", rep.Budget, rep.Footprint)
	}

	// Phase 3 — TP isolation: p99 of item-update transactions alone, then
	// under the continuously spilling analytical load. The allowance has a
	// small absolute floor so sub-millisecond baselines on fast machines
	// don't turn scheduler jitter into a gate failure.
	items := int64(scale.Items)
	if rep.TPBaseP99, err = measureTP(e, cfg.TPTxns, items); err != nil {
		e.SetMemGovernor(nil)
		return rep, fmt.Errorf("baseline TP: %w", err)
	}
	stop := make(chan struct{})
	apDone := make(chan error, 1)
	go func() {
		for {
			select {
			case <-stop:
				apDone <- nil
				return
			default:
			}
			if _, err := hostileQuery(ctx, e); err != nil && !errors.Is(err, disk.ErrInjected) {
				apDone <- err
				return
			}
		}
	}()
	loadP99, tpErr := measureTP(e, cfg.TPTxns, items)
	close(stop)
	if err := <-apDone; err != nil {
		e.SetMemGovernor(nil)
		return rep, fmt.Errorf("analytical load: %w", err)
	}
	e.SetMemGovernor(nil)
	if tpErr != nil {
		return rep, fmt.Errorf("loaded TP: %w", tpErr)
	}
	rep.TPLoadP99 = loadP99
	allowed := 2 * rep.TPBaseP99
	if floor := 2 * time.Millisecond; allowed < floor {
		allowed = floor
	}
	if rep.TPLoadP99 > allowed {
		return rep, fmt.Errorf("TP p99 under analytical load = %v, allowed %v (baseline %v): spilling starved the transactional side",
			rep.TPLoadP99, allowed, rep.TPBaseP99)
	}

	// Phase 4 — hygiene: every run, completed or fault-killed, must have
	// cleaned up after itself.
	if n := gov.LiveSpillFiles(); n != 0 {
		return rep, fmt.Errorf("%d spill files left on the device after all runs", n)
	}
	return rep, nil
}
