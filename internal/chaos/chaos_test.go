package chaos

import (
	"errors"
	"testing"

	"htap/internal/disk"
)

// TestCrashRecoveryEveryArchitecture is the acceptance gate: each WAL-based
// architecture is crashed mid-commit by an injected disk fault, recovered,
// and checked against the model. Seeds are fixed, so every run injects the
// same tear at the same write.
func TestCrashRecoveryEveryArchitecture(t *testing.T) {
	for _, sub := range Subjects() {
		sub := sub
		t.Run(sub.Name, func(t *testing.T) {
			rep, err := Run(sub, Config{Seed: 1, CrashAfterWrites: 13})
			if err != nil {
				t.Fatal(err)
			}
			if rep.Acked == 0 {
				t.Fatal("crash happened before any commit was acknowledged; trigger too early to test anything")
			}
			if rep.CrashErr == nil || rep.CrashSeq == 0 {
				t.Fatalf("no crash recorded: %+v", rep)
			}
			if !errors.Is(rep.CrashErr, disk.ErrCrashed) {
				t.Fatalf("crash error = %v, want ErrCrashed", rep.CrashErr)
			}
			// The device's fault ledger must agree with the report: exactly
			// one crash, whose tear is also counted as a torn write, after a
			// healthy write for every acknowledged commit (plus the seed).
			if d := rep.Disk; d.Crashes != 1 || d.TornWrites != 1 || d.FaultsInjected != 0 {
				t.Fatalf("disk fault counters = %+v, want exactly one crash/tear", d)
			}
			if rep.Disk.WriteOps <= rep.Acked {
				t.Fatalf("WriteOps = %d with %d acked commits; successful flushes missing from the ledger",
					rep.Disk.WriteOps, rep.Acked)
			}
		})
	}
}

// TestCrashPointsAcrossSeeds moves the crash point around: early, mid, and
// late in the workload, with different torn-prefix draws. The invariants
// must hold wherever the tear lands.
func TestCrashPointsAcrossSeeds(t *testing.T) {
	for _, sub := range Subjects() {
		sub := sub
		t.Run(sub.Name, func(t *testing.T) {
			for _, cfg := range []Config{
				{Seed: 2, CrashAfterWrites: 2},
				{Seed: 3, CrashAfterWrites: 7},
				{Seed: 99, CrashAfterWrites: 29},
				{Seed: 7, CrashAfterWrites: 50, AbortEvery: 3},
			} {
				if _, err := Run(sub, cfg); err != nil {
					t.Fatalf("seed %d crash@%d: %v", cfg.Seed, cfg.CrashAfterWrites, err)
				}
			}
		})
	}
}

// TestRunIsDeterministic re-runs one configuration and demands identical
// reports: same number of acked commits, same crash point, same fault.
func TestRunIsDeterministic(t *testing.T) {
	sub := Subjects()[0]
	a, err := Run(sub, Config{Seed: 11, CrashAfterWrites: 9})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(sub, Config{Seed: 11, CrashAfterWrites: 9})
	if err != nil {
		t.Fatal(err)
	}
	if a.Acked != b.Acked || a.Aborted != b.Aborted || a.CrashSeq != b.CrashSeq {
		t.Fatalf("non-deterministic runs: %+v vs %+v", a, b)
	}
}
