// Package colstore implements the in-memory column store shared by every
// architecture in the paper's Figure 1: compressed columnar segments with
// zone maps and delete bitmaps, scanned in batches.
//
// The paper's §2.2(2) notes that HTAP OLAP sides rely on "aggregations over
// compressed data and single-instruction multiple-data (SIMD) instructions".
// Go has no SIMD intrinsics; the equivalent here is tight per-segment loops
// over decoded int64/float64 arrays, which the compiler vectorizes where it
// can, plus operating directly on compressed runs for RLE.
package colstore

import (
	"fmt"
	"math/bits"
	"sort"

	"htap/internal/types"
)

// Encoding identifies how a column vector is stored.
type Encoding uint8

// Supported encodings.
const (
	EncIntRaw Encoding = iota + 1
	EncIntRLE
	EncIntPacked
	EncFloatRaw
	EncStrDict
)

// String implements fmt.Stringer.
func (e Encoding) String() string {
	switch e {
	case EncIntRaw:
		return "int-raw"
	case EncIntRLE:
		return "int-rle"
	case EncIntPacked:
		return "int-packed"
	case EncFloatRaw:
		return "float-raw"
	case EncStrDict:
		return "str-dict"
	default:
		return fmt.Sprintf("Encoding(%d)", uint8(e))
	}
}

// Vector is one encoded column of a segment.
type Vector interface {
	Len() int
	Encoding() Encoding
	// Datum returns the value at row i.
	Datum(i int) types.Datum
	// Bytes estimates the encoded size in bytes.
	Bytes() int
}

// IntVector is implemented by vectors that can decode into an int64 slice.
type IntVector interface {
	Vector
	// Int returns the value at row i.
	Int(i int) int64
	// AppendInts appends rows [start, start+n) to dst.
	AppendInts(dst []int64, start, n int) []int64
}

// --- raw int64 ---

type intRaw struct{ v []int64 }

func (c *intRaw) Len() int                { return len(c.v) }
func (c *intRaw) Encoding() Encoding      { return EncIntRaw }
func (c *intRaw) Datum(i int) types.Datum { return types.NewInt(c.v[i]) }
func (c *intRaw) Bytes() int              { return 8 * len(c.v) }
func (c *intRaw) Int(i int) int64         { return c.v[i] }
func (c *intRaw) AppendInts(dst []int64, start, n int) []int64 {
	return append(dst, c.v[start:start+n]...)
}

// --- run-length encoded int64 ---

type intRLE struct {
	vals []int64
	ends []int32 // exclusive cumulative end of each run
	n    int
}

func (c *intRLE) Len() int           { return c.n }
func (c *intRLE) Encoding() Encoding { return EncIntRLE }
func (c *intRLE) Bytes() int         { return 12 * len(c.vals) }

func (c *intRLE) run(i int) int {
	return sort.Search(len(c.ends), func(j int) bool { return int(c.ends[j]) > i })
}

func (c *intRLE) Int(i int) int64         { return c.vals[c.run(i)] }
func (c *intRLE) Datum(i int) types.Datum { return types.NewInt(c.Int(i)) }

func (c *intRLE) AppendInts(dst []int64, start, n int) []int64 {
	r := c.run(start)
	i := start
	for i < start+n {
		end := int(c.ends[r])
		if end > start+n {
			end = start + n
		}
		v := c.vals[r]
		for ; i < end; i++ {
			dst = append(dst, v)
		}
		r++
	}
	return dst
}

// Runs calls fn(value, start, end) for each run overlapping [0, Len);
// RLE-aware aggregations use it to skip per-row work.
func (c *intRLE) Runs(fn func(v int64, start, end int) bool) {
	prev := 0
	for i, v := range c.vals {
		if !fn(v, prev, int(c.ends[i])) {
			return
		}
		prev = int(c.ends[i])
	}
}

// --- bit-packed int64 (frame of reference) ---

type intPacked struct {
	min   int64
	width uint // bits per value, 1..63
	words []uint64
	n     int
}

func (c *intPacked) Len() int           { return c.n }
func (c *intPacked) Encoding() Encoding { return EncIntPacked }
func (c *intPacked) Bytes() int         { return 8*len(c.words) + 16 }

func (c *intPacked) Int(i int) int64 {
	bitPos := uint(i) * c.width
	w, off := bitPos/64, bitPos%64
	v := c.words[w] >> off
	if off+c.width > 64 {
		v |= c.words[w+1] << (64 - off)
	}
	mask := uint64(1)<<c.width - 1
	return c.min + int64(v&mask)
}

func (c *intPacked) Datum(i int) types.Datum { return types.NewInt(c.Int(i)) }

func (c *intPacked) AppendInts(dst []int64, start, n int) []int64 {
	for i := start; i < start+n; i++ {
		dst = append(dst, c.Int(i))
	}
	return dst
}

// --- raw float64 ---

type floatRaw struct{ v []float64 }

func (c *floatRaw) Len() int                { return len(c.v) }
func (c *floatRaw) Encoding() Encoding      { return EncFloatRaw }
func (c *floatRaw) Datum(i int) types.Datum { return types.NewFloat(c.v[i]) }
func (c *floatRaw) Bytes() int              { return 8 * len(c.v) }

// Float returns the value at row i.
func (c *floatRaw) Float(i int) float64 { return c.v[i] }

// AppendFloats appends rows [start, start+n) to dst.
func (c *floatRaw) AppendFloats(dst []float64, start, n int) []float64 {
	return append(dst, c.v[start:start+n]...)
}

// FloatVector is implemented by vectors that decode into float64 slices.
type FloatVector interface {
	Vector
	Float(i int) float64
	AppendFloats(dst []float64, start, n int) []float64
}

// --- dictionary-encoded strings ---

type strDict struct {
	dict  []string // sorted ascending, deduplicated
	codes []uint32
}

func (c *strDict) Len() int                { return len(c.codes) }
func (c *strDict) Encoding() Encoding      { return EncStrDict }
func (c *strDict) Datum(i int) types.Datum { return types.NewString(c.dict[c.codes[i]]) }

func (c *strDict) Bytes() int {
	n := 4 * len(c.codes)
	for _, s := range c.dict {
		n += len(s) + 16
	}
	return n
}

// Str returns the value at row i.
func (c *strDict) Str(i int) string { return c.dict[c.codes[i]] }

// Code returns the dictionary code at row i; because the dictionary is
// sorted, code order is value order, so predicates compare codes.
func (c *strDict) Code(i int) uint32 { return c.codes[i] }

// CodeOf returns the dictionary code for s and whether it is present.
func (c *strDict) CodeOf(s string) (uint32, bool) {
	i := sort.SearchStrings(c.dict, s)
	if i < len(c.dict) && c.dict[i] == s {
		return uint32(i), true
	}
	return uint32(i), false
}

// Dict returns the sorted dictionary; the dictionary-encoded sorting merge
// of §2.2(3) (SAP HANA) relies on merging these sorted dictionaries.
func (c *strDict) Dict() []string { return c.dict }

// StrVector is implemented by dictionary string vectors.
type StrVector interface {
	Vector
	Str(i int) string
	Code(i int) uint32
	CodeOf(s string) (uint32, bool)
	Dict() []string
}

// --- builders ---

// EncodeInts picks an encoding for vals: RLE when runs compress well,
// frame-of-reference bit packing when the value range is narrow, raw
// otherwise.
func EncodeInts(vals []int64) Vector {
	if len(vals) == 0 {
		return &intRaw{}
	}
	runs := 1
	min, max := vals[0], vals[0]
	for i := 1; i < len(vals); i++ {
		if vals[i] != vals[i-1] {
			runs++
		}
		if vals[i] < min {
			min = vals[i]
		}
		if vals[i] > max {
			max = vals[i]
		}
	}
	if runs*4 <= len(vals) { // RLE pays off below ~25% distinct-adjacent
		c := &intRLE{n: len(vals)}
		prev := vals[0]
		for i := 1; i <= len(vals); i++ {
			if i == len(vals) || vals[i] != prev {
				c.vals = append(c.vals, prev)
				c.ends = append(c.ends, int32(i))
				if i < len(vals) {
					prev = vals[i]
				}
			}
		}
		return c
	}
	// Bit packing: beneficial when width < 64 by a useful margin. Guard the
	// subtraction against overflow for extreme ranges.
	spread := uint64(max) - uint64(min)
	width := uint(bits.Len64(spread))
	if width == 0 {
		width = 1
	}
	if width <= 32 {
		c := &intPacked{min: min, width: width, n: len(vals)}
		c.words = make([]uint64, (uint(len(vals))*width+63)/64)
		for i, v := range vals {
			u := uint64(v - min)
			bitPos := uint(i) * width
			w, off := bitPos/64, bitPos%64
			c.words[w] |= u << off
			if off+width > 64 {
				c.words[w+1] |= u >> (64 - off)
			}
		}
		return c
	}
	cp := make([]int64, len(vals))
	copy(cp, vals)
	return &intRaw{v: cp}
}

// EncodeFloats stores floats raw.
func EncodeFloats(vals []float64) Vector {
	cp := make([]float64, len(vals))
	copy(cp, vals)
	return &floatRaw{v: cp}
}

// EncodeStrings dictionary-encodes vals with a sorted dictionary.
func EncodeStrings(vals []string) Vector {
	uniq := make(map[string]struct{}, len(vals))
	for _, s := range vals {
		uniq[s] = struct{}{}
	}
	dict := make([]string, 0, len(uniq))
	for s := range uniq {
		dict = append(dict, s)
	}
	sort.Strings(dict)
	code := make(map[string]uint32, len(dict))
	for i, s := range dict {
		code[s] = uint32(i)
	}
	codes := make([]uint32, len(vals))
	for i, s := range vals {
		codes[i] = code[s]
	}
	return &strDict{dict: dict, codes: codes}
}
