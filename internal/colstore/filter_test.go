package colstore

import (
	"fmt"
	"math/rand"
	"testing"

	"htap/internal/bitmap"
	"htap/internal/types"
)

// naiveFilter reproduces FilterVec's contract via per-row Datum comparison,
// the reference the pushed-down evaluation must match bit for bit.
func naiveFilter(v Vector, op PredOp, d types.Datum, sel *bitmap.Bitmap) {
	for i := 0; i < v.Len(); i++ {
		if sel.Get(i) && !opMatch(op, v.Datum(i).Compare(d)) {
			sel.Clear(i)
		}
	}
}

func fullSel(n int) *bitmap.Bitmap {
	s := bitmap.New(n)
	s.Fill(n)
	return s
}

func selEqual(t *testing.T, got, want *bitmap.Bitmap, n int, msg string) {
	t.Helper()
	if got.Count() != want.Count() {
		t.Fatalf("%s: count %d want %d", msg, got.Count(), want.Count())
	}
	for i := 0; i < n; i++ {
		if got.Get(i) != want.Get(i) {
			t.Fatalf("%s: bit %d = %v, want %v", msg, i, got.Get(i), want.Get(i))
		}
	}
}

var allOps = []PredOp{PredEQ, PredNE, PredLT, PredLE, PredGT, PredGE}

// TestFilterVecInt covers every int encoding (raw, RLE, packed) against
// comparands on, between, below, and above the stored values — including
// exact run-boundary values for RLE.
func TestFilterVecInt(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	encodings := map[string][]int64{
		"raw":    make([]int64, 300),
		"rle":    make([]int64, 300),
		"packed": make([]int64, 300),
	}
	for i := range encodings["raw"] {
		encodings["raw"][i] = rng.Int63n(1 << 40) // wide spread stays raw
	}
	for i := range encodings["rle"] {
		encodings["rle"][i] = int64(i / 50) // six long runs
	}
	for i := range encodings["packed"] {
		encodings["packed"][i] = rng.Int63n(100)
	}
	comparands := func(vals []int64) []int64 {
		cs := []int64{vals[0], vals[len(vals)/2], vals[len(vals)-1], -1, 1 << 62}
		// RLE run-boundary values: first and last of a middle run.
		cs = append(cs, vals[49], vals[50], vals[250])
		return cs
	}
	for name, vals := range encodings {
		v := EncodeInts(vals)
		for _, op := range allOps {
			for _, c := range comparands(vals) {
				got := fullSel(v.Len())
				want := fullSel(v.Len())
				FilterVec(v, op, types.NewInt(c), got)
				naiveFilter(v, op, types.NewInt(c), want)
				selEqual(t, got, want, v.Len(), fmt.Sprintf("%s %s %d", name, op, c))
				// Float comparand against the int vector: Datum.Compare
				// widens; the encoded path must match.
				fc := types.NewFloat(float64(c) + 0.5)
				got2 := fullSel(v.Len())
				want2 := fullSel(v.Len())
				FilterVec(v, op, fc, got2)
				naiveFilter(v, op, fc, want2)
				selEqual(t, got2, want2, v.Len(), fmt.Sprintf("%s %s %v(float)", name, op, fc))
			}
		}
	}
}

// TestFilterVecPreservesCleared checks already-cleared bits (deleted rows)
// never reappear.
func TestFilterVecPreservesCleared(t *testing.T) {
	vals := []int64{5, 5, 5, 7, 7, 9}
	v := EncodeInts(vals)
	sel := fullSel(len(vals))
	sel.Clear(0)
	sel.Clear(3)
	FilterVec(v, PredGE, types.NewInt(5), sel) // keeps everything
	if sel.Get(0) || sel.Get(3) {
		t.Fatal("cleared bits resurrected")
	}
	if sel.Count() != 4 {
		t.Fatalf("count = %d, want 4", sel.Count())
	}
}

func TestFilterVecFloat(t *testing.T) {
	vals := []float64{1.5, -2.25, 0, 3.75, 3.75, 100}
	v := EncodeFloats(vals)
	for _, op := range allOps {
		for _, c := range []float64{-10, -2.25, 0, 3.75, 3.8, 1000} {
			got := fullSel(len(vals))
			want := fullSel(len(vals))
			FilterVec(v, op, types.NewFloat(c), got)
			naiveFilter(v, op, types.NewFloat(c), want)
			selEqual(t, got, want, len(vals), fmt.Sprintf("float %s %v", op, c))
		}
	}
}

// TestFilterVecStrDict sweeps comparands that are present, absent-between,
// below-min, and above-max, for every operator: the code-range reduction
// must agree with per-row string comparison in all four regimes.
func TestFilterVecStrDict(t *testing.T) {
	vals := []string{"cherry", "apple", "banana", "apple", "fig", "banana", "cherry"}
	v := EncodeStrings(vals)
	for _, op := range allOps {
		for _, c := range []string{"apple", "banana", "blueberry", "aaa", "zzz", "", "fig"} {
			got := fullSel(len(vals))
			want := fullSel(len(vals))
			FilterVec(v, op, types.NewString(c), got)
			naiveFilter(v, op, types.NewString(c), want)
			selEqual(t, got, want, len(vals), fmt.Sprintf("str %s %q", op, c))
		}
	}
}

func TestFilterStrPrefix(t *testing.T) {
	vals := []string{"ab", "abc", "abd", "b", "ba", "", "ab", "ac", "aab"}
	sv := EncodeStrings(vals).(StrVector)
	for _, prefix := range []string{"", "a", "ab", "abc", "abz", "b", "z"} {
		sel := fullSel(len(vals))
		FilterStrPrefix(sv, prefix, sel)
		for i, s := range vals {
			want := len(s) >= len(prefix) && s[:len(prefix)] == prefix
			if sel.Get(i) != want {
				t.Fatalf("prefix %q row %d (%q) = %v, want %v", prefix, i, s, sel.Get(i), want)
			}
		}
	}
}

func TestFilterIntSet(t *testing.T) {
	for name, vals := range map[string][]int64{
		"rle": {0, 0, 0, 0, 1, 1, 1, 1, 2, 2, 2, 2, 3, 3, 3, 3},
		"raw": {9, 1 << 41, 3, 9, 5, 7, 3},
	} {
		v := EncodeInts(vals).(IntVector)
		set := map[int64]struct{}{1: {}, 3: {}, 9: {}}
		sel := fullSel(len(vals))
		FilterIntSet(v, set, sel)
		for i, val := range vals {
			_, want := set[val]
			if sel.Get(i) != want {
				t.Fatalf("%s: row %d (%d) = %v, want %v", name, i, val, sel.Get(i), want)
			}
		}
	}
}

// TestGather checks every gather against Datum materialization, with
// ascending positions that straddle RLE run boundaries.
func TestGather(t *testing.T) {
	ints := make([]int64, 200)
	for i := range ints {
		ints[i] = int64(i / 40) // RLE
	}
	pos := []int{0, 39, 40, 41, 79, 80, 120, 199}
	iv := EncodeInts(ints).(IntVector)
	for i, got := range GatherInts(iv, pos, nil) {
		if want := ints[pos[i]]; got != want {
			t.Fatalf("GatherInts rle[%d] = %d, want %d", i, got, want)
		}
	}
	raw := []int64{1 << 40, 2, 3, 4, 5}
	rv := EncodeInts(raw).(IntVector)
	for i, got := range GatherInts(rv, []int{0, 2, 4}, nil) {
		if want := raw[[]int{0, 2, 4}[i]]; got != want {
			t.Fatalf("GatherInts raw[%d] = %d, want %d", i, got, want)
		}
	}
	floats := []float64{0.5, 1.5, 2.5, 3.5}
	fv := EncodeFloats(floats).(FloatVector)
	for i, got := range GatherFloats(fv, []int{1, 3}, nil) {
		if want := floats[[]int{1, 3}[i]]; got != want {
			t.Fatalf("GatherFloats[%d] = %v, want %v", i, got, want)
		}
	}
	strs := []string{"x", "y", "z", "y"}
	sv := EncodeStrings(strs).(StrVector)
	for i, got := range GatherStrs(sv, []int{0, 3}, nil) {
		if want := strs[[]int{0, 3}[i]]; got != want {
			t.Fatalf("GatherStrs[%d] = %q, want %q", i, got, want)
		}
	}
}

func TestDelSnapshotCaching(t *testing.T) {
	tbl := NewTable(testSchema)
	for i := int64(0); i < 10; i++ {
		tbl.Append(mkRow(i, i%3, float64(i), "t"))
	}
	tbl.Flush()
	seg := tbl.Segments()[0]
	s1 := seg.DelSnapshot()
	s2 := seg.DelSnapshot()
	if s1 != s2 {
		t.Fatal("snapshot not cached across calls with no deletes")
	}
	seg.DeleteRow(4)
	s3 := seg.DelSnapshot()
	if s3 == s1 {
		t.Fatal("snapshot not invalidated by a delete")
	}
	if s1.Get(4) {
		t.Fatal("old snapshot mutated by a later delete")
	}
	if !s3.Get(4) {
		t.Fatal("new snapshot missing the delete")
	}
}

func TestZoneMapPruneFloatStr(t *testing.T) {
	tbl := NewTable(testSchema)
	tbl.Append(mkRow(1, 1, 2.5, "banana"))
	tbl.Append(mkRow(2, 2, 7.5, "cherry"))
	tbl.Flush()
	z := &tbl.Segments()[0].Zones
	amt, tag := &(*z)[2], &(*z)[3]
	if !amt.PruneFloat(8, 100) || !amt.PruneFloat(-5, 2.4) {
		t.Fatal("PruneFloat should prune disjoint ranges")
	}
	if amt.PruneFloat(2.5, 2.5) || amt.PruneFloat(7.5, 100) {
		t.Fatal("PruneFloat pruned an intersecting range")
	}
	if !tag.PruneStr("", "az", true) || !tag.PruneStr("d", "", false) {
		t.Fatal("PruneStr should prune disjoint ranges")
	}
	if tag.PruneStr("banana", "banana", true) || tag.PruneStr("c", "", false) {
		t.Fatal("PruneStr pruned an intersecting range")
	}
	if !tag.PruneStrPrefix("a") || !tag.PruneStrPrefix("d") {
		t.Fatal("PruneStrPrefix should prune out-of-range prefixes")
	}
	if tag.PruneStrPrefix("ban") || tag.PruneStrPrefix("cherry") {
		t.Fatal("PruneStrPrefix pruned a matching prefix")
	}
}

func TestPrefixSucc(t *testing.T) {
	cases := map[string]string{"a": "b", "ab": "ac", "a\xff": "b", "name-": "name."}
	for p, want := range cases {
		got, ok := PrefixSucc(p)
		if !ok || got != want {
			t.Fatalf("PrefixSucc(%q) = %q,%v want %q", p, got, ok, want)
		}
	}
	for _, p := range []string{"", "\xff", "\xff\xff"} {
		if _, ok := PrefixSucc(p); ok {
			t.Fatalf("PrefixSucc(%q) should not exist", p)
		}
	}
}
