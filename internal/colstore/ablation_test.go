package colstore

// Ablation benchmarks for the column store's design choices: encoding
// selection, zone-map pruning, and dictionary encoding. Run with
//
//	go test -bench Ablation ./internal/colstore

import (
	"fmt"
	"math/rand"
	"testing"

	"htap/internal/types"
)

// sumVector is the common scan kernel: sum every value of an int vector.
func sumVector(v IntVector, buf []int64) int64 {
	buf = v.AppendInts(buf[:0], 0, v.Len())
	var s int64
	for _, x := range buf {
		s += x
	}
	return s
}

// BenchmarkAblationEncodings compares scan speed and size across the three
// int encodings on data shaped for each.
func BenchmarkAblationEncodings(b *testing.B) {
	const n = 256 * 1024
	rng := rand.New(rand.NewSource(1))
	shapes := map[string][]int64{
		"raw-wide":      make([]int64, n),
		"packed-narrow": make([]int64, n),
		"rle-runs":      make([]int64, n),
	}
	for i := 0; i < n; i++ {
		shapes["raw-wide"][i] = rng.Int63() - rng.Int63()
		shapes["packed-narrow"][i] = int64(rng.Intn(1024))
		shapes["rle-runs"][i] = int64(i / 4096)
	}
	for name, vals := range shapes {
		v := EncodeInts(vals).(IntVector)
		b.Run(fmt.Sprintf("%s/%v", name, v.(Vector).Encoding()), func(b *testing.B) {
			buf := make([]int64, 0, n)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				sumVector(v, buf)
			}
			b.ReportMetric(float64(v.(Vector).Bytes())/float64(8*n), "size-ratio")
		})
	}
}

// BenchmarkAblationZoneMaps measures a selective scan with pruning against
// the same scan with zone maps ignored.
func BenchmarkAblationZoneMaps(b *testing.B) {
	schema := types.NewSchema("t", 0,
		types.Column{Name: "id", Type: types.Int},
		types.Column{Name: "v", Type: types.Int},
	)
	tbl := NewTable(schema)
	const n = 128 * 1024
	rows := make([]types.Row, 0, n)
	for i := 0; i < n; i++ {
		rows = append(rows, types.Row{types.NewInt(int64(i)), types.NewInt(int64(i % 97))})
	}
	tbl.AppendRows(rows)
	segs := tbl.Segments()
	lo, hi := int64(1000), int64(1999) // hits a handful of segments

	scan := func(prune bool) int64 {
		var sum int64
		for _, seg := range segs {
			if prune && seg.Zones[0].PruneInt(lo, hi) {
				continue
			}
			keys := seg.Cols[0].(IntVector)
			vals := seg.Cols[1].(IntVector)
			for i := 0; i < seg.N; i++ {
				if k := keys.Int(i); k >= lo && k <= hi {
					sum += vals.Int(i)
				}
			}
		}
		return sum
	}
	want := scan(true)
	if got := scan(false); got != want {
		b.Fatalf("pruned scan disagrees: %d vs %d", got, want)
	}
	b.Run("pruned", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			scan(true)
		}
	})
	b.Run("unpruned", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			scan(false)
		}
	})
}

// BenchmarkAblationDictStrings compares predicate evaluation on
// dictionary codes against raw string comparison.
func BenchmarkAblationDictStrings(b *testing.B) {
	const n = 128 * 1024
	vals := make([]string, n)
	for i := range vals {
		vals[i] = fmt.Sprintf("customer-state-%02d", i%40)
	}
	v := EncodeStrings(vals).(StrVector)
	target := "customer-state-07"
	b.Run("dict-codes", func(b *testing.B) {
		code, ok := v.CodeOf(target)
		if !ok {
			b.Fatal("target missing")
		}
		for i := 0; i < b.N; i++ {
			hits := 0
			for r := 0; r < n; r++ {
				if v.Code(r) == code {
					hits++
				}
			}
		}
	})
	b.Run("raw-strings", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			hits := 0
			for r := 0; r < n; r++ {
				if v.Str(r) == target {
					hits++
				}
			}
		}
	})
}
