package colstore

import (
	"fmt"
	"sync"

	"htap/internal/bitmap"
	"htap/internal/types"
)

// SegmentRows is the target number of rows per sealed segment.
const SegmentRows = 4096

// ZoneMap holds per-column min/max statistics for one segment; scans use it
// to prune segments that cannot match a range predicate.
type ZoneMap struct {
	MinInt, MaxInt     int64
	MinFloat, MaxFloat float64
	MinStr, MaxStr     string
	valid              bool
}

// PruneInt reports whether the segment can be skipped for a predicate
// requiring the column to intersect [lo, hi].
func (z *ZoneMap) PruneInt(lo, hi int64) bool {
	return z.valid && (hi < z.MinInt || lo > z.MaxInt)
}

// PruneFloat reports whether the segment can be skipped for a predicate
// requiring the float column to intersect [lo, hi]. Unbounded ends are
// expressed with ±Inf.
func (z *ZoneMap) PruneFloat(lo, hi float64) bool {
	return z.valid && (hi < z.MinFloat || lo > z.MaxFloat)
}

// PruneStr reports whether the segment can be skipped for a predicate
// requiring the string column to intersect [lo, hi]. hiBounded false means
// the range is [lo, +inf); lo's natural zero "" is already unbounded below.
func (z *ZoneMap) PruneStr(lo, hi string, hiBounded bool) bool {
	return z.valid && ((hiBounded && hi < z.MinStr) || lo > z.MaxStr)
}

// PruneStrPrefix reports whether no value in the segment can start with
// prefix, using only the string min/max bounds.
func (z *ZoneMap) PruneStrPrefix(prefix string) bool {
	if !z.valid {
		return false
	}
	if z.MaxStr < prefix {
		return true
	}
	if succ, ok := PrefixSucc(prefix); ok && z.MinStr >= succ {
		return true
	}
	return false
}

// PrefixSucc returns the smallest string ordered after every string with
// the given prefix, and false when no such string exists (the prefix is
// empty or all 0xff bytes).
func PrefixSucc(p string) (string, bool) {
	b := []byte(p)
	for i := len(b) - 1; i >= 0; i-- {
		if b[i] != 0xff {
			b[i]++
			return string(b[:i+1]), true
		}
	}
	return "", false
}

// Segment is an immutable block of encoded column vectors plus a delete
// bitmap. Deleting marks bits; the data itself never changes, so concurrent
// scans need no row locks — the classic read-optimized main store.
type Segment struct {
	N     int
	Cols  []Vector
	Keys  []int64 // decoded primary keys, parallel to rows
	Zones []ZoneMap

	mu   sync.RWMutex
	dels *bitmap.Bitmap

	// snap caches the last delete-bitmap snapshot; it is valid while no
	// further row has been deleted (delete bits are only ever set, so the
	// set-bit count identifies a state). Scans take one snapshot per
	// segment instead of RLocking per row or cloning per batch.
	snap      *bitmap.Bitmap
	snapCount int
}

// Deleted reports whether row i is deleted.
func (s *Segment) Deleted(i int) bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.dels.Get(i)
}

// DeleteRow marks row i deleted.
func (s *Segment) DeleteRow(i int) {
	s.mu.Lock()
	s.dels.Set(i)
	s.mu.Unlock()
}

// LiveCount returns the number of live rows.
func (s *Segment) LiveCount() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.N - s.dels.Count()
}

// DelSnapshot returns a point-in-time snapshot of the delete bitmap,
// cached until the next delete. The returned bitmap is shared across
// callers and MUST be treated as read-only.
func (s *Segment) DelSnapshot() *bitmap.Bitmap {
	s.mu.RLock()
	if s.snap != nil && s.snapCount == s.dels.Count() {
		snap := s.snap
		s.mu.RUnlock()
		return snap
	}
	s.mu.RUnlock()
	s.mu.Lock()
	if s.snap == nil || s.snapCount != s.dels.Count() {
		s.snap = s.dels.Clone()
		s.snapCount = s.snap.Count()
	}
	snap := s.snap
	s.mu.Unlock()
	return snap
}

// DeleteMask returns a snapshot of the delete bitmap; the result is shared
// and read-only (see DelSnapshot).
func (s *Segment) DeleteMask() *bitmap.Bitmap {
	return s.DelSnapshot()
}

// Bytes estimates the encoded size of the segment.
func (s *Segment) Bytes() int {
	n := 8 * len(s.Keys)
	for _, c := range s.Cols {
		n += c.Bytes()
	}
	return n
}

// Row materializes row i as a types.Row.
func (s *Segment) Row(i int) types.Row {
	r := make(types.Row, len(s.Cols))
	for c, v := range s.Cols {
		r[c] = v.Datum(i)
	}
	return r
}

// Morsel is a contiguous run of rows [Lo, Hi) within one segment: the unit
// of work morsel-driven parallel scans hand to worker goroutines. Segments
// are immutable, so a morsel can be scanned without coordination; only the
// delete bitmap needs a snapshot (Segment.DeleteMask).
type Morsel struct {
	Seg    *Segment
	Lo, Hi int
}

// Morsels cuts the segments into morsels of at most rows rows each, in
// segment-then-offset order. The cut depends only on segment sizes — never
// on timing — so a scan partitioned over the same data yields the same
// morsel list every time.
func Morsels(segs []*Segment, rows int) []Morsel {
	if rows <= 0 {
		rows = SegmentRows
	}
	var ms []Morsel
	for _, seg := range segs {
		for lo := 0; lo < seg.N; lo += rows {
			hi := lo + rows
			if hi > seg.N {
				hi = seg.N
			}
			ms = append(ms, Morsel{Seg: seg, Lo: lo, Hi: hi})
		}
	}
	return ms
}

type loc struct {
	seg int
	idx int
}

// Table is a columnar table: a list of sealed segments plus a key locator
// used to propagate updates and deletes from the row side during data
// synchronization.
type Table struct {
	Schema *types.Schema

	mu      sync.RWMutex
	segs    []*Segment
	buf     []types.Row // loaded rows awaiting their segment (see Append)
	locator map[int64]loc
	applied uint64 // commit watermark covered by the segments (freshness)
	rebuild int64  // count of full rebuilds (DS technique iii)
	merges  int64  // count of delta merges (DS techniques i/ii)
	selObs  func(sel float64)
}

// SetSelObserver registers a callback invoked with the observed selection
// density (selected / scanned rows) each time a scan evaluates pushed-down
// predicates over one of this table's segments. Engines use it to feed the
// planner's selectivity feedback. fn must be safe for concurrent calls.
func (t *Table) SetSelObserver(fn func(sel float64)) {
	t.mu.Lock()
	t.selObs = fn
	t.mu.Unlock()
}

// SelObserver returns the registered selection-density observer, or nil.
func (t *Table) SelObserver() func(sel float64) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.selObs
}

// NewTable returns an empty columnar table.
func NewTable(schema *types.Schema) *Table {
	return &Table{Schema: schema, locator: make(map[int64]loc)}
}

// Builder accumulates rows and seals them into segments of a table.
type Builder struct {
	t    *Table
	rows []types.Row
}

// NewBuilder returns a builder appending into t.
func (t *Table) NewBuilder() *Builder { return &Builder{t: t} }

// Add buffers one row; the builder seals a segment each SegmentRows rows.
func (b *Builder) Add(row types.Row) {
	b.rows = append(b.rows, row)
	if len(b.rows) >= SegmentRows {
		b.Flush()
	}
}

// Flush seals any buffered rows into a segment.
func (b *Builder) Flush() {
	if len(b.rows) == 0 {
		return
	}
	seg := buildSegment(b.t.Schema, b.rows)
	b.t.addSegment(seg)
	b.rows = b.rows[:0]
}

func buildSegment(schema *types.Schema, rows []types.Row) *Segment {
	n := len(rows)
	seg := &Segment{
		N:     n,
		Cols:  make([]Vector, len(schema.Cols)),
		Keys:  make([]int64, n),
		Zones: make([]ZoneMap, len(schema.Cols)),
		dels:  bitmap.New(n),
	}
	for i, r := range rows {
		seg.Keys[i] = schema.Key(r)
	}
	for c, col := range schema.Cols {
		switch col.Type {
		case types.Int:
			vals := make([]int64, n)
			z := &seg.Zones[c]
			for i, r := range rows {
				v := r[c].Int()
				vals[i] = v
				if i == 0 || v < z.MinInt {
					z.MinInt = v
				}
				if i == 0 || v > z.MaxInt {
					z.MaxInt = v
				}
			}
			z.valid = true
			seg.Cols[c] = EncodeInts(vals)
		case types.Float:
			vals := make([]float64, n)
			z := &seg.Zones[c]
			for i, r := range rows {
				v := r[c].Float()
				vals[i] = v
				if i == 0 || v < z.MinFloat {
					z.MinFloat = v
				}
				if i == 0 || v > z.MaxFloat {
					z.MaxFloat = v
				}
			}
			z.valid = true
			seg.Cols[c] = EncodeFloats(vals)
		case types.String:
			vals := make([]string, n)
			z := &seg.Zones[c]
			for i, r := range rows {
				v := r[c].Str()
				vals[i] = v
				if i == 0 || v < z.MinStr {
					z.MinStr = v
				}
				if i == 0 || v > z.MaxStr {
					z.MaxStr = v
				}
			}
			z.valid = true
			seg.Cols[c] = EncodeStrings(vals)
		default:
			panic(fmt.Sprintf("colstore: unsupported column type %v", col.Type))
		}
	}
	return seg
}

func (t *Table) addSegment(seg *Segment) {
	t.mu.Lock()
	t.addSegmentLocked(seg)
	t.mu.Unlock()
}

func (t *Table) addSegmentLocked(seg *Segment) {
	si := len(t.segs)
	t.segs = append(t.segs, seg)
	for i, k := range seg.Keys {
		if old, ok := t.locator[k]; ok {
			// Upsert: the new image supersedes the old row.
			t.segs[old.seg].DeleteRow(old.idx)
		}
		t.locator[k] = loc{si, i}
	}
}

// Append buffers one row, sealing a full segment every SegmentRows rows.
// Bulk loaders call it per row; the buffered tail becomes visible to scans
// and key lookups at the next Flush (Segments, GetKey and DeleteKey flush
// implicitly).
func (t *Table) Append(row types.Row) {
	t.mu.Lock()
	t.buf = append(t.buf, row)
	if len(t.buf) >= SegmentRows {
		t.flushLocked()
	}
	t.mu.Unlock()
}

// Flush seals any buffered rows into a segment.
func (t *Table) Flush() {
	t.mu.Lock()
	t.flushLocked()
	t.mu.Unlock()
}

func (t *Table) flushLocked() {
	if len(t.buf) == 0 {
		return
	}
	t.addSegmentLocked(buildSegment(t.Schema, t.buf))
	t.buf = nil
}

// AppendRows seals rows directly into one or more segments; merges use it.
// Any buffered loads are sealed first: the upsert resolves supersession
// through the key locator, which only indexes sealed segments — a stale
// image still sitting in the buffer would otherwise dodge the tombstone
// and, once flushed, supersede the newer merged image.
func (t *Table) AppendRows(rows []types.Row) {
	t.Flush()
	for len(rows) > 0 {
		n := len(rows)
		if n > SegmentRows {
			n = SegmentRows
		}
		t.addSegment(buildSegment(t.Schema, rows[:n]))
		rows = rows[n:]
	}
}

// DeleteKey marks the live image of key deleted, reporting whether it was
// present.
func (t *Table) DeleteKey(key int64) bool {
	t.mu.Lock()
	t.flushLocked()
	l, ok := t.locator[key]
	var seg *Segment
	if ok {
		delete(t.locator, key)
		seg = t.segs[l.seg]
	}
	t.mu.Unlock()
	if !ok {
		return false
	}
	seg.DeleteRow(l.idx)
	return true
}

// GetKey materializes the live image of key, if present.
func (t *Table) GetKey(key int64) (types.Row, bool) {
	t.mu.RLock()
	if len(t.buf) > 0 {
		t.mu.RUnlock()
		t.Flush()
		t.mu.RLock()
	}
	l, ok := t.locator[key]
	var seg *Segment
	if ok {
		seg = t.segs[l.seg]
	}
	t.mu.RUnlock()
	if !ok || seg.Deleted(l.idx) {
		return nil, false
	}
	return seg.Row(l.idx), true
}

// Segments returns a snapshot of the sealed segments, flushing any
// buffered loads first.
func (t *Table) Segments() []*Segment {
	t.mu.RLock()
	if len(t.buf) > 0 {
		t.mu.RUnlock()
		t.Flush()
		t.mu.RLock()
	}
	defer t.mu.RUnlock()
	return append([]*Segment(nil), t.segs...)
}

// LiveRows returns the number of live rows across all segments.
func (t *Table) LiveRows() int {
	n := 0
	for _, s := range t.Segments() {
		n += s.LiveCount()
	}
	return n
}

// Bytes estimates the memory footprint of all segments.
func (t *Table) Bytes() int {
	n := 0
	for _, s := range t.Segments() {
		n += s.Bytes()
	}
	return n
}

// Applied returns the commit watermark the segments cover; rows committed
// after it are only visible through a delta store. This is the freshness
// boundary of §2.2(2).
func (t *Table) Applied() uint64 {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.applied
}

// SetApplied raises the applied watermark.
func (t *Table) SetApplied(ts uint64) {
	t.mu.Lock()
	if ts > t.applied {
		t.applied = ts
	}
	t.mu.Unlock()
}

// Reset discards all segments; rebuild-from-row-store uses it.
func (t *Table) Reset() {
	t.mu.Lock()
	t.segs = nil
	t.buf = nil
	t.locator = make(map[int64]loc)
	t.applied = 0
	t.rebuild++
	t.mu.Unlock()
}

// NoteMerge bumps the merge counter (stats only).
func (t *Table) NoteMerge() {
	t.mu.Lock()
	t.merges++
	t.mu.Unlock()
}

// Stats describes a table's physical state.
type Stats struct {
	Segments int
	LiveRows int
	Bytes    int
	Merges   int64
	Rebuilds int64
	Applied  uint64
}

// Stats returns a snapshot of table statistics.
func (t *Table) Stats() Stats {
	t.mu.RLock()
	segs := append([]*Segment(nil), t.segs...)
	st := Stats{Segments: len(segs), Merges: t.merges, Rebuilds: t.rebuild, Applied: t.applied}
	t.mu.RUnlock()
	for _, s := range segs {
		st.LiveRows += s.LiveCount()
		st.Bytes += s.Bytes()
	}
	return st
}
