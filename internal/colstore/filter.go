package colstore

import (
	"fmt"
	"math/bits"
	"sort"
	"strings"

	"htap/internal/bitmap"
	"htap/internal/types"
)

// Encoded predicate evaluation: scans push comparison predicates down to
// the segment vectors and evaluate them without decoding — raw arrays are
// compared in place, RLE runs are decided with one comparison per run, and
// dictionary-encoded strings are decided by one binary search of the
// sorted dictionary followed by integer code comparisons. The result is a
// selection bitmap the scan late-materializes from: only selected
// positions of only the projected columns are ever decoded.

// PredOp is a comparison operator evaluated against encoded vectors. It
// mirrors the executor's comparison operators.
type PredOp uint8

// Comparison operators for pushed-down predicates.
const (
	PredEQ PredOp = iota + 1
	PredNE
	PredLT
	PredLE
	PredGT
	PredGE
)

// String implements fmt.Stringer.
func (op PredOp) String() string {
	return [...]string{"?", "=", "!=", "<", "<=", ">", ">="}[op]
}

// opMatch reports whether a three-way comparison result c satisfies op.
// The comparison semantics are exactly types.Datum.Compare's, so a pushed
// predicate keeps precisely the rows a downstream filter would keep.
func opMatch(op PredOp, c int) bool {
	switch op {
	case PredEQ:
		return c == 0
	case PredNE:
		return c != 0
	case PredLT:
		return c < 0
	case PredLE:
		return c <= 0
	case PredGT:
		return c > 0
	default:
		return c >= 0
	}
}

// FilterVec clears every bit of sel whose row does not satisfy (op, d)
// over v. Rows already cleared (deleted, or dropped by an earlier
// predicate) are never re-examined. It returns the number of RLE runs that
// were decided wholesale — one comparison standing in for a whole run.
// The (vector, datum) kind pairing must have been validated by the caller;
// unsupported pairings panic, as they indicate a planner bug.
func FilterVec(v Vector, op PredOp, d types.Datum, sel *bitmap.Bitmap) int {
	switch vv := v.(type) {
	case *intRLE:
		return filterIntRLE(vv, op, d, sel)
	case IntVector:
		if d.Kind == types.Int {
			filterInt(vv, op, d.I, sel)
		} else {
			filterIntAsFloat(vv, op, d.Float(), sel)
		}
	case FloatVector:
		filterFloat(vv, op, d.Float(), sel)
	case StrVector:
		if d.Kind != types.String {
			panic(fmt.Sprintf("colstore: pushing %s comparand to string vector", d.Kind))
		}
		filterStrDict(vv, op, d.S, sel)
	default:
		panic(fmt.Sprintf("colstore: cannot filter %s vector", v.Encoding()))
	}
	return 0
}

// forEachSelected visits the set bits of sel in [0, n) ascending, clearing
// bit i whenever keep(i) is false.
func forEachSelected(sel *bitmap.Bitmap, n int, keep func(i int) bool) {
	for w := 0; w*64 < n; w++ {
		word := sel.Word(w)
		for word != 0 {
			i := w*64 + bits.TrailingZeros64(word)
			word &= word - 1
			if i >= n {
				return
			}
			if !keep(i) {
				sel.Clear(i)
			}
		}
	}
}

func cmpInt64(a, b int64) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	default:
		return 0
	}
}

func cmpFloat64(a, b float64) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	default:
		return 0
	}
}

func filterInt(v IntVector, op PredOp, val int64, sel *bitmap.Bitmap) {
	if raw, ok := v.(*intRaw); ok {
		vals := raw.v
		forEachSelected(sel, len(vals), func(i int) bool { return opMatch(op, cmpInt64(vals[i], val)) })
		return
	}
	forEachSelected(sel, v.Len(), func(i int) bool { return opMatch(op, cmpInt64(v.Int(i), val)) })
}

// filterIntAsFloat compares int rows against a float comparand by widening
// the row value — exactly what types.Datum.Compare does for mixed kinds.
func filterIntAsFloat(v IntVector, op PredOp, val float64, sel *bitmap.Bitmap) {
	forEachSelected(sel, v.Len(), func(i int) bool {
		return opMatch(op, cmpFloat64(float64(v.Int(i)), val))
	})
}

// filterIntRLE decides each run with a single comparison, clearing failing
// runs with word-masked range stores. Returns the number of runs decided.
func filterIntRLE(v *intRLE, op PredOp, d types.Datum, sel *bitmap.Bitmap) int {
	runs := 0
	v.Runs(func(rv int64, start, end int) bool {
		runs++
		var c int
		if d.Kind == types.Int {
			c = cmpInt64(rv, d.I)
		} else {
			c = cmpFloat64(float64(rv), d.Float())
		}
		if !opMatch(op, c) {
			sel.ClearRange(start, end)
		}
		return true
	})
	return runs
}

func filterFloat(v FloatVector, op PredOp, val float64, sel *bitmap.Bitmap) {
	if raw, ok := v.(*floatRaw); ok {
		vals := raw.v
		forEachSelected(sel, len(vals), func(i int) bool { return opMatch(op, cmpFloat64(vals[i], val)) })
		return
	}
	forEachSelected(sel, v.Len(), func(i int) bool { return opMatch(op, cmpFloat64(v.Float(i), val)) })
}

// filterStrDict binary-searches the sorted dictionary once, reducing the
// string comparison to an integer code-range test per row. Strings are
// never materialized.
func filterStrDict(v StrVector, op PredOp, val string, sel *bitmap.Bitmap) {
	code, found := v.CodeOf(val)
	// Express every operator as membership of [lo, hi] (inclusive, in
	// int64 space so empty ranges need no special casing), possibly
	// negated for NE.
	lo, hi, neg := int64(0), int64(v.Len()), false
	switch op {
	case PredEQ, PredNE:
		neg = op == PredNE
		if found {
			lo, hi = int64(code), int64(code)
		} else {
			lo, hi = 1, 0 // empty
		}
	case PredLT:
		lo, hi = 0, int64(code)-1
	case PredLE:
		hi = int64(code)
		if !found {
			hi--
		}
	case PredGT:
		lo = int64(code)
		if found {
			lo++
		}
	case PredGE:
		lo = int64(code)
	}
	forEachSelected(sel, v.Len(), func(i int) bool {
		c := int64(v.Code(i))
		in := c >= lo && c <= hi
		return in != neg
	})
}

// FilterStrPrefix clears sel bits whose row does not start with prefix.
// Prefix matches form one contiguous code range of the sorted dictionary,
// found with two binary searches.
func FilterStrPrefix(v StrVector, prefix string, sel *bitmap.Bitmap) {
	dict := v.Dict()
	lo := sort.SearchStrings(dict, prefix)
	hi := lo + sort.Search(len(dict)-lo, func(j int) bool {
		return !strings.HasPrefix(dict[lo+j], prefix)
	})
	forEachSelected(sel, v.Len(), func(i int) bool {
		c := int(v.Code(i))
		return c >= lo && c < hi
	})
}

// FilterIntSet clears sel bits whose row value is not a member of set; RLE
// vectors are decided per run. Returns the number of runs decided wholesale.
func FilterIntSet(v IntVector, set map[int64]struct{}, sel *bitmap.Bitmap) int {
	if rle, ok := v.(*intRLE); ok {
		runs := 0
		rle.Runs(func(rv int64, start, end int) bool {
			runs++
			if _, ok := set[rv]; !ok {
				sel.ClearRange(start, end)
			}
			return true
		})
		return runs
	}
	forEachSelected(sel, v.Len(), func(i int) bool {
		_, ok := set[v.Int(i)]
		return ok
	})
	return 0
}

// --- late materialization gathers ---

// GatherInts appends v's values at ascending positions pos to dst. RLE
// vectors are walked run-by-run (pos is sorted), avoiding the per-row
// binary search of Int.
func GatherInts(v IntVector, pos []int, dst []int64) []int64 {
	if rle, ok := v.(*intRLE); ok {
		ri := 0
		for _, i := range pos {
			for int(rle.ends[ri]) <= i {
				ri++
			}
			dst = append(dst, rle.vals[ri])
		}
		return dst
	}
	if raw, ok := v.(*intRaw); ok {
		for _, i := range pos {
			dst = append(dst, raw.v[i])
		}
		return dst
	}
	for _, i := range pos {
		dst = append(dst, v.Int(i))
	}
	return dst
}

// GatherFloats appends v's values at positions pos to dst.
func GatherFloats(v FloatVector, pos []int, dst []float64) []float64 {
	if raw, ok := v.(*floatRaw); ok {
		for _, i := range pos {
			dst = append(dst, raw.v[i])
		}
		return dst
	}
	for _, i := range pos {
		dst = append(dst, v.Float(i))
	}
	return dst
}

// GatherStrs appends v's values at positions pos to dst; only selected
// rows ever materialize a string.
func GatherStrs(v StrVector, pos []int, dst []string) []string {
	for _, i := range pos {
		dst = append(dst, v.Str(i))
	}
	return dst
}
