package colstore

import (
	"math/rand"
	"testing"
	"testing/quick"

	"htap/internal/types"
)

var testSchema = types.NewSchema("t", 0,
	types.Column{Name: "id", Type: types.Int},
	types.Column{Name: "grp", Type: types.Int},
	types.Column{Name: "amt", Type: types.Float},
	types.Column{Name: "tag", Type: types.String},
)

func mkRow(id, grp int64, amt float64, tag string) types.Row {
	return types.Row{types.NewInt(id), types.NewInt(grp), types.NewFloat(amt), types.NewString(tag)}
}

func TestEncodeIntsRoundTrip(t *testing.T) {
	cases := map[string][]int64{
		"empty":     {},
		"runs":      {1, 1, 1, 1, 2, 2, 2, 2, 3, 3, 3, 3},
		"narrow":    {100, 101, 102, 100, 105, 103},
		"wide":      {0, 1 << 40, -(1 << 40), 7, -9},
		"single":    {42},
		"extremes":  {-1 << 63, 1<<63 - 1, 0},
		"monotonic": {1, 2, 3, 4, 5, 6, 7, 8},
	}
	for name, vals := range cases {
		v := EncodeInts(vals)
		if v.Len() != len(vals) {
			t.Fatalf("%s: len %d want %d", name, v.Len(), len(vals))
		}
		iv, ok := v.(IntVector)
		if !ok {
			t.Fatalf("%s: not an IntVector", name)
		}
		for i, want := range vals {
			if got := iv.Int(i); got != want {
				t.Fatalf("%s[%d] (%v) = %d, want %d", name, i, v.Encoding(), got, want)
			}
			if d := v.Datum(i); d.Int() != want {
				t.Fatalf("%s[%d] datum = %v", name, i, d)
			}
		}
		if len(vals) > 2 {
			got := iv.AppendInts(nil, 1, len(vals)-2)
			for i, want := range vals[1 : len(vals)-1] {
				if got[i] != want {
					t.Fatalf("%s AppendInts[%d] (%v) = %d, want %d", name, i, v.Encoding(), got[i], want)
				}
			}
		}
	}
}

func TestEncodingSelection(t *testing.T) {
	runs := make([]int64, 1024)
	for i := range runs {
		runs[i] = int64(i / 128)
	}
	if e := EncodeInts(runs).Encoding(); e != EncIntRLE {
		t.Fatalf("runs encoded as %v, want RLE", e)
	}
	narrow := make([]int64, 1024)
	for i := range narrow {
		narrow[i] = 1000 + int64(i%7)*3
	}
	if e := EncodeInts(narrow).Encoding(); e != EncIntPacked {
		t.Fatalf("narrow encoded as %v, want packed", e)
	}
	wide := make([]int64, 1024)
	rng := rand.New(rand.NewSource(1))
	for i := range wide {
		wide[i] = rng.Int63() - rng.Int63()
	}
	if e := EncodeInts(wide).Encoding(); e != EncIntRaw {
		t.Fatalf("wide encoded as %v, want raw", e)
	}
}

func TestCompressionShrinks(t *testing.T) {
	vals := make([]int64, 8192)
	for i := range vals {
		vals[i] = int64(i % 4)
	}
	enc := EncodeInts(vals)
	if enc.Bytes() >= 8*len(vals)/4 {
		t.Fatalf("RLE size %d not < 25%% of raw %d", enc.Bytes(), 8*len(vals))
	}
}

func TestQuickIntEncodingRoundTrip(t *testing.T) {
	f := func(vals []int64, narrow bool) bool {
		if narrow {
			for i := range vals {
				vals[i] %= 512
			}
		}
		v := EncodeInts(vals).(IntVector)
		for i, want := range vals {
			if v.Int(i) != want {
				return false
			}
		}
		got := v.AppendInts(nil, 0, len(vals))
		for i := range vals {
			if got[i] != vals[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestStringDictSortedCodes(t *testing.T) {
	vals := []string{"pear", "apple", "pear", "fig", "apple"}
	v := EncodeStrings(vals).(StrVector)
	for i, want := range vals {
		if v.Str(i) != want {
			t.Fatalf("[%d] = %q, want %q", i, v.Str(i), want)
		}
	}
	d := v.Dict()
	for i := 1; i < len(d); i++ {
		if d[i] <= d[i-1] {
			t.Fatalf("dictionary not sorted: %v", d)
		}
	}
	// Code order must equal value order.
	ca, _ := v.CodeOf("apple")
	cp, _ := v.CodeOf("pear")
	if ca >= cp {
		t.Fatalf("codes not value-ordered: apple=%d pear=%d", ca, cp)
	}
	if _, ok := v.CodeOf("zzz"); ok {
		t.Fatal("CodeOf invented a code")
	}
}

func TestFloatRoundTrip(t *testing.T) {
	vals := []float64{1.5, -2.25, 0, 1e9}
	v := EncodeFloats(vals).(FloatVector)
	for i, want := range vals {
		if v.Float(i) != want {
			t.Fatalf("[%d] = %v", i, v.Float(i))
		}
	}
	got := v.AppendFloats(nil, 1, 2)
	if len(got) != 2 || got[0] != -2.25 || got[1] != 0 {
		t.Fatalf("AppendFloats = %v", got)
	}
}

func TestBuilderSealsSegments(t *testing.T) {
	tbl := NewTable(testSchema)
	b := tbl.NewBuilder()
	n := SegmentRows + 100
	for i := 0; i < n; i++ {
		b.Add(mkRow(int64(i), int64(i%10), float64(i), "x"))
	}
	b.Flush()
	segs := tbl.Segments()
	if len(segs) != 2 {
		t.Fatalf("segments = %d, want 2", len(segs))
	}
	if segs[0].N != SegmentRows || segs[1].N != 100 {
		t.Fatalf("segment sizes %d,%d", segs[0].N, segs[1].N)
	}
	if tbl.LiveRows() != n {
		t.Fatalf("live rows = %d, want %d", tbl.LiveRows(), n)
	}
}

func TestZoneMaps(t *testing.T) {
	tbl := NewTable(testSchema)
	rows := make([]types.Row, 100)
	for i := range rows {
		rows[i] = mkRow(int64(i), int64(i+1000), float64(i), "t")
	}
	tbl.AppendRows(rows)
	z := tbl.Segments()[0].Zones[1]
	if z.MinInt != 1000 || z.MaxInt != 1099 {
		t.Fatalf("zone map = [%d,%d]", z.MinInt, z.MaxInt)
	}
	if !z.PruneInt(2000, 3000) {
		t.Fatal("should prune disjoint range")
	}
	if z.PruneInt(1050, 1060) {
		t.Fatal("must not prune overlapping range")
	}
}

func TestUpsertAndDelete(t *testing.T) {
	tbl := NewTable(testSchema)
	tbl.AppendRows([]types.Row{mkRow(1, 1, 1, "a"), mkRow(2, 2, 2, "b")})
	// Upsert key 1 with a new image.
	tbl.AppendRows([]types.Row{mkRow(1, 9, 9, "z")})
	if tbl.LiveRows() != 2 {
		t.Fatalf("live rows = %d, want 2 after upsert", tbl.LiveRows())
	}
	r, ok := tbl.GetKey(1)
	if !ok || r[1].Int() != 9 {
		t.Fatalf("GetKey(1) = %v, %v", r, ok)
	}
	if !tbl.DeleteKey(2) {
		t.Fatal("DeleteKey(2) = false")
	}
	if tbl.DeleteKey(2) {
		t.Fatal("double delete reported true")
	}
	if _, ok := tbl.GetKey(2); ok {
		t.Fatal("deleted key still readable")
	}
	if tbl.LiveRows() != 1 {
		t.Fatalf("live rows = %d, want 1", tbl.LiveRows())
	}
}

func TestAppliedWatermark(t *testing.T) {
	tbl := NewTable(testSchema)
	tbl.SetApplied(5)
	tbl.SetApplied(3) // must not regress
	if tbl.Applied() != 5 {
		t.Fatalf("applied = %d", tbl.Applied())
	}
	tbl.Reset()
	if tbl.Applied() != 0 || len(tbl.Segments()) != 0 {
		t.Fatal("Reset incomplete")
	}
	if tbl.Stats().Rebuilds != 1 {
		t.Fatal("rebuild not counted")
	}
}

func TestSegmentRowMaterialize(t *testing.T) {
	tbl := NewTable(testSchema)
	tbl.AppendRows([]types.Row{mkRow(7, 8, 2.5, "hi")})
	seg := tbl.Segments()[0]
	r := seg.Row(0)
	if r[0].Int() != 7 || r[1].Int() != 8 || r[2].Float() != 2.5 || r[3].Str() != "hi" {
		t.Fatalf("Row = %v", r)
	}
}

func TestRLERuns(t *testing.T) {
	vals := []int64{5, 5, 5, 6, 6, 7}
	v := EncodeInts(vals)
	rle, ok := v.(*intRLE)
	if !ok {
		t.Skip("not RLE at this size") // encoding choice may differ
	}
	var total int64
	rle.Runs(func(val int64, start, end int) bool {
		total += val * int64(end-start)
		return true
	})
	if total != 5*3+6*2+7 {
		t.Fatalf("run sum = %d", total)
	}
}

func TestTableStats(t *testing.T) {
	tbl := NewTable(testSchema)
	tbl.AppendRows([]types.Row{mkRow(1, 1, 1, "a")})
	tbl.NoteMerge()
	st := tbl.Stats()
	if st.Segments != 1 || st.LiveRows != 1 || st.Merges != 1 || st.Bytes <= 0 {
		t.Fatalf("stats = %+v", st)
	}
}

// TestAppendRowsUpsertsBufferedLoads is the regression gate for a
// supersession bug: AppendRows resolves upserts through the key locator,
// which indexes only sealed segments. A row still sitting in the load
// buffer was invisible to the upsert, and when a later scan flushed the
// buffer, the stale image tombstoned the newer merged one — scans went
// permanently stale while key lookups stayed fresh.
func TestAppendRowsUpsertsBufferedLoads(t *testing.T) {
	tbl := NewTable(testSchema)
	tbl.Append(mkRow(1, 1, -10, "old"))
	tbl.Append(mkRow(2, 1, 5, "keep"))
	// Merge a newer image of key 1 while key 1 is still buffered.
	tbl.AppendRows([]types.Row{mkRow(1, 1, 18.01, "new")})

	if r, ok := tbl.GetKey(1); !ok || r[2].Float() != 18.01 {
		t.Fatalf("GetKey(1) = %v, %v; want the merged image", r, ok)
	}
	seen := map[int64]float64{}
	for _, seg := range tbl.Segments() {
		for i := 0; i < seg.N; i++ {
			if seg.Deleted(i) {
				continue
			}
			r := seg.Row(i)
			if _, dup := seen[r[0].Int()]; dup {
				t.Fatalf("key %d visible twice in scan", r[0].Int())
			}
			seen[r[0].Int()] = r[2].Float()
		}
	}
	if seen[1] != 18.01 {
		t.Fatalf("scan shows key 1 = %v, want merged image 18.01", seen[1])
	}
	if seen[2] != 5 {
		t.Fatalf("scan shows key 2 = %v, want 5", seen[2])
	}
	if tbl.LiveRows() != 2 {
		t.Fatalf("LiveRows = %d, want 2", tbl.LiveRows())
	}
}
