package dist

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"testing"

	"htap/internal/ch"
	"htap/internal/core"
	"htap/internal/twopc"
	"htap/internal/types"
)

// The rebalance equivalence gate: a live warehouse move must be
// invisible to query results and must neither lose nor duplicate a row,
// under transactional load and under injected cutover faults. The
// oracle is a plain single engine that receives the identical logical
// transactions but never rebalances — after every round, the
// coordinator's full state and all 22 CH query results must match it.
//
// Comparison is content-normalized exact equality: a move deletes rows
// on the source shard and appends them at the destination's end, so
// scan (and therefore tie) order legitimately permutes. Rows are sorted
// by their exact bit representation (float64 bits, not a rounded
// rendering) and then compared bit-for-bit — order may move, values may
// not.

// exactRowKey renders a row's exact bits for order normalization.
func exactRowKey(r types.Row) string {
	var b strings.Builder
	for _, d := range r {
		switch d.Kind {
		case types.Float:
			fmt.Fprintf(&b, "|f%016x", math.Float64bits(d.Float()))
		case types.Int:
			fmt.Fprintf(&b, "|i%d", d.Int())
		default:
			fmt.Fprintf(&b, "|s%s", d.Str())
		}
	}
	return b.String()
}

func normalizeExact(rows []types.Row) []types.Row {
	out := append([]types.Row(nil), rows...)
	sort.SliceStable(out, func(i, j int) bool { return exactRowKey(out[i]) < exactRowKey(out[j]) })
	return out
}

func exactEqualNormalized(a, b []types.Row) bool {
	return exactEqual(normalizeExact(a), normalizeExact(b))
}

// gatePair builds the oracle (plain arch A) and the subject (3-shard
// coordinator over arch A), identically loaded.
func gatePair(t *testing.T) (core.Engine, *Engine) {
	t.Helper()
	plain := core.NewEngineA(core.ConfigA{Schemas: ch.Schemas()})
	if _, err := ch.NewGenerator(eqDistScale()).Load(plain); err != nil {
		t.Fatal(err)
	}
	plain.Sync()
	engines := make([]core.Engine, 3)
	for i := range engines {
		engines[i] = core.NewEngineA(core.ConfigA{Schemas: ch.Schemas()})
	}
	d, err := New(3, engines...)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ch.NewGenerator(eqDistScale()).Load(d); err != nil {
		t.Fatal(err)
	}
	d.Sync()
	t.Cleanup(func() {
		plain.Close()
		d.Close()
	})
	return plain, d
}

// mirrorTxns applies n deterministic payment-shaped transactions to
// every engine in order: read-modify-write a customer balance, bump the
// warehouse YTD, insert a history row with an explicit key. The ch
// workload driver is unusable here — its history-key allocator is a
// process-global atomic, so two engines driving it would interleave
// keys and diverge. Explicit keys keep both engines bit-identical.
func mirrorTxns(t testing.TB, round, n int, engines ...core.Engine) {
	t.Helper()
	ctx := context.Background()
	for i := 0; i < n; i++ {
		w := int64(i%3) + 1
		dd := int64(i%3) + 1 // eqDistScale loads 3 districts per warehouse
		ckey := ch.CustomerKey(w, dd, int64(i%30)+1)
		hkey := int64(1)<<40 + int64(round)<<20 + int64(i)
		amount := float64(i%97) + 0.01*float64(round+1)
		for _, e := range engines {
			tx := e.Begin(ctx)
			cust, err := tx.Get(ch.TCustomer, ckey)
			if err != nil {
				tx.Abort()
				t.Fatalf("round %d txn %d: get customer on %s: %v", round, i, e.Name(), err)
			}
			cust = append(types.Row(nil), cust...)
			cust[7] = types.NewFloat(cust[7].Float() + amount)
			if err := tx.Update(ch.TCustomer, cust); err != nil {
				tx.Abort()
				t.Fatalf("round %d txn %d: update customer on %s: %v", round, i, e.Name(), err)
			}
			hist := types.Row{
				types.NewInt(hkey), types.NewInt(ckey), types.NewInt(w), types.NewInt(dd),
				types.NewInt(int64(round*1000 + i)), types.NewFloat(amount),
				types.NewString(fmt.Sprintf("gate-%d-%d", round, i)),
			}
			if err := tx.Insert(ch.THistory, hist); err != nil {
				tx.Abort()
				t.Fatalf("round %d txn %d: insert history on %s: %v", round, i, e.Name(), err)
			}
			if err := tx.Commit(); err != nil {
				t.Fatalf("round %d txn %d: commit on %s: %v", round, i, e.Name(), err)
			}
		}
	}
}

// fullState scans every table into a multiset keyed by exact row bits —
// the zero-lost-zero-duplicated oracle.
func fullState(t testing.TB, e core.Engine) map[string]int {
	t.Helper()
	out := make(map[string]int)
	for _, sch := range ch.Schemas() {
		rows, err := e.Query(context.Background(), sch.Name, nil, nil).RunCtx(context.Background())
		if err != nil {
			t.Fatalf("full scan of %s on %s: %v", sch.Name, e.Name(), err)
		}
		for _, r := range rows {
			if sch.Name == ch.THistory {
				// History keys come from a process-global sequence, so two
				// identically-loaded engines hold identical history rows
				// under different synthetic keys; compare contents only.
				r = r[1:]
			}
			out[sch.Name+exactRowKey(r)]++
		}
	}
	return out
}

func assertSameState(t *testing.T, stage string, plain core.Engine, d *Engine) {
	t.Helper()
	want, got := fullState(t, plain), fullState(t, d)
	for k, n := range want {
		if got[k] != n {
			t.Fatalf("%s: row %q count %d on coordinator, want %d (lost or duplicated)", stage, k, got[k], n)
		}
	}
	for k, n := range got {
		if want[k] != n {
			t.Fatalf("%s: coordinator has %d of unexpected row %q", stage, n, k)
		}
	}
}

func assertSameCH(t *testing.T, stage string, plain core.Engine, d *Engine) {
	t.Helper()
	want := runAll(t, plain, 1)
	got := runAll(t, d, 1)
	for q := 1; q <= 22; q++ {
		if !exactEqualNormalized(want[q], got[q]) {
			t.Errorf("%s: Q%02d diverges from the never-moved engine", stage, q)
		}
	}
}

// faultBranch injects cutover faults: failPrepare vetoes phase one (a
// clean, retryable failure); dropAck applies the commit but reports a
// lost acknowledgement (the indeterminate outcome the repair path must
// resolve).
type faultBranch struct {
	twopc.TxParticipant
	failPrepare bool
	dropAck     bool
}

func (b *faultBranch) Prepare(ctx context.Context) error {
	if b.failPrepare {
		return errors.New("injected: prepare failure")
	}
	return b.TxParticipant.Prepare(ctx)
}

func (b *faultBranch) Commit(ctx context.Context) error {
	err := b.TxParticipant.Commit(ctx)
	if err == nil && b.dropAck {
		return errors.New("injected: commit acknowledgement lost")
	}
	return err
}

// TestRebalanceEquivalenceGate drives a live move through three rounds
// — a vetoed cutover, an indeterminate cutover, and a clean move back —
// with transactional load applied before and during each move, checking
// CH results and full state against the never-moved oracle at every
// stage.
func TestRebalanceEquivalenceGate(t *testing.T) {
	plain, d := gatePair(t)
	ctx := context.Background()

	mirrorTxns(t, 0, 40, d, plain)
	plain.Sync()
	d.Sync()
	assertSameCH(t, "before any move", plain, d)
	assertSameState(t, "before any move", plain, d)

	// Round 1: prepare fault. The move must fail cleanly — routing table
	// unchanged, nothing moved, nothing lost.
	d.wrapBranch = func(p twopc.TxParticipant) twopc.TxParticipant {
		if p.Name() == "rebalance-dest" {
			return &faultBranch{TxParticipant: p, failPrepare: true}
		}
		return p
	}
	d.afterCopy = func() {
		// Load lands between the fuzzy snapshot and the fence: the
		// catch-up phase must absorb it even though this round aborts.
		mirrorTxns(t, 1, 25, d, plain)
		assertSameCH(t, "during vetoed move", plain, d)
	}
	if _, _, err := d.MoveRange(ctx, 2, 2, 2); err == nil {
		t.Fatal("cutover with injected prepare fault should fail")
	}
	d.wrapBranch, d.afterCopy = nil, nil
	if v := d.RouteVersion(); v != 1 {
		t.Fatalf("failed move changed routing version to %d", v)
	}
	plain.Sync()
	d.Sync()
	assertSameCH(t, "after vetoed move", plain, d)
	assertSameState(t, "after vetoed move", plain, d)

	// Round 2: lost commit acknowledgement. The repair path must
	// complete the move; the routing version must advance.
	d.wrapBranch = func(p twopc.TxParticipant) twopc.TxParticipant {
		if p.Name() == "rebalance-dest" {
			return &faultBranch{TxParticipant: p, dropAck: true}
		}
		return p
	}
	d.afterCopy = func() { mirrorTxns(t, 2, 25, d, plain) }
	moved, version, err := d.MoveRange(ctx, 2, 2, 2)
	if err != nil {
		t.Fatalf("move with dropped ack should repair and succeed: %v", err)
	}
	d.wrapBranch, d.afterCopy = nil, nil
	if moved == 0 {
		t.Fatal("move reported zero rows")
	}
	if version != 2 || d.RouteVersion() != 2 {
		t.Fatalf("routing version = %d (engine %d), want 2", version, d.RouteVersion())
	}
	if own := d.rtab.Load().shardOf(2); own != 2 {
		t.Fatalf("warehouse 2 owned by shard %d after move, want 2", own)
	}
	plain.Sync()
	d.Sync()
	assertSameCH(t, "after repaired move", plain, d)
	assertSameState(t, "after repaired move", plain, d)

	// Post-move load must route to the new owner and keep both engines
	// identical; then a clean move back exercises the fault-free path.
	mirrorTxns(t, 3, 40, d, plain)
	if _, version, err = d.MoveRange(ctx, 2, 2, 1); err != nil {
		t.Fatalf("clean move back: %v", err)
	}
	if version != 3 {
		t.Fatalf("routing version = %d after second move, want 3", version)
	}
	plain.Sync()
	d.Sync()
	assertSameCH(t, "after move back", plain, d)
	assertSameState(t, "after move back", plain, d)
}

// TestRebalanceUnderConcurrentLoad moves a warehouse while a writer
// goroutine keeps applying mirrored transactions and CH queries keep
// running. Queries issued mid-move must succeed; once the writer stops
// and the move completes, both engines must hold identical state.
func TestRebalanceUnderConcurrentLoad(t *testing.T) {
	plain, d := gatePair(t)
	ctx := context.Background()

	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for round := 10; ; round++ {
			select {
			case <-stop:
				return
			default:
			}
			// Subject first, oracle second, same order every round: a
			// single writer keeps the logical histories identical.
			mirrorTxns(t, round, 10, d, plain)
			if _, err := ch.RunQuery(ctx, d, 1); err != nil {
				t.Errorf("CH query during move: %v", err)
				return
			}
		}
	}()

	if _, _, err := d.MoveRange(ctx, 3, 3, 0); err != nil {
		t.Fatalf("move under load: %v", err)
	}
	close(stop)
	wg.Wait()

	plain.Sync()
	d.Sync()
	assertSameCH(t, "after move under load", plain, d)
	assertSameState(t, "after move under load", plain, d)
}
