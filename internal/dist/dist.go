package dist

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"

	"htap/internal/ch"
	"htap/internal/client"
	"htap/internal/core"
	"htap/internal/exec"
	"htap/internal/freshness"
	"htap/internal/sched"
	"htap/internal/twopc"
	"htap/internal/types"
)

// shardRef is one engine instance the coordinator fronts: an in-process
// core.Engine or a remote server reached through a client pool. Exactly
// one of local/remote is set.
type shardRef struct {
	name   string
	local  core.Engine
	remote *client.Remote
}

func (s *shardRef) begin(ctx context.Context) core.Tx {
	if s.local != nil {
		return s.local.Begin(ctx)
	}
	return s.remote.Begin(ctx)
}

// Engine is the distributed coordinator. It implements core.Engine, so
// every driver that runs against a single architecture — htapbench,
// chbench, the wire server — runs against N shards unchanged.
type Engine struct {
	shards []*shardRef
	rt     router // load-time layout; live ownership is rtab
	ts     []*types.Schema
	byName map[string]*types.Schema
	par    atomic.Int32
	gov    atomic.Pointer[exec.Governor]
	eps    *client.Endpoints // owned in remote mode; closed by Close
	base   string            // shard engine name, for Name()

	rtab     atomic.Pointer[routeTable] // live versioned warehouse→shard map
	pushdown atomic.Bool                // partial-agg / top-k pushdown enabled

	// Rebalance state: one move at a time (moveMu); fence blocks new
	// transactions from entering the moving range; the open-transaction
	// registry lets the move drain in-flight transactions that already
	// touched it. See rebalance.go.
	moveMu sync.Mutex
	fence  atomic.Pointer[moveFence]
	txMu   sync.Mutex
	open   map[*distTx]struct{}

	// Test hooks (rebalance gate): called between copy and fence, and
	// after branches are built but before the cutover 2PC; wrapBranch
	// injects prepare/commit faults into the cutover branches.
	afterCopy     func()
	beforeCutover func()
	wrapBranch    func(twopc.TxParticipant) twopc.TxParticipant
}

// New builds a coordinator over in-process shard engines. Shard i owns
// the i-th contiguous warehouse range (see router); engines must share a
// catalog, which the coordinator adopts from the first.
func New(warehouses int, engines ...core.Engine) (*Engine, error) {
	rt, err := newRouter(warehouses, len(engines))
	if err != nil {
		return nil, err
	}
	d := &Engine{rt: rt, base: engines[0].Name()}
	d.init()
	for i, e := range engines {
		d.shards = append(d.shards, &shardRef{name: fmt.Sprintf("shard-%d", i), local: e})
	}
	d.adoptCatalog(engines[0].Tables())
	return d, nil
}

// NewRemote builds a coordinator over remote shard servers, one per
// endpoint in registration order. The coordinator owns eps and closes it.
// Remote servers carry no catalog over the wire, so the CH-benCHmark
// catalog — the only dataset the warehouse router understands — is
// assumed.
func NewRemote(warehouses int, eps *client.Endpoints) (*Engine, error) {
	names := eps.Names()
	rt, err := newRouter(warehouses, len(names))
	if err != nil {
		return nil, err
	}
	d := &Engine{rt: rt, eps: eps}
	d.init()
	for _, n := range names {
		r := eps.Get(n)
		d.shards = append(d.shards, &shardRef{name: n, remote: r})
	}
	d.base = d.shards[0].remote.Arch().String()
	d.adoptCatalog(ch.Schemas())
	return d, nil
}

func (d *Engine) init() {
	d.rtab.Store(newRouteTable(d.rt))
	d.pushdown.Store(true)
	d.open = make(map[*distTx]struct{})
}

// SetPushdown enables or disables partial-aggregate and top-k pushdown
// (on by default). The differential equivalence suite flips it to
// compare pushed plans against raw-gather plans over identical data.
func (d *Engine) SetPushdown(on bool) { d.pushdown.Store(on) }

// RouteVersion returns the live routing-table version; each completed
// rebalance bumps it.
func (d *Engine) RouteVersion() int64 { return d.rtab.Load().version }

func (d *Engine) adoptCatalog(schemas []*types.Schema) {
	d.ts = schemas
	d.byName = make(map[string]*types.Schema, len(schemas))
	for _, s := range schemas {
		d.byName[s.Name] = s
	}
}

// Name implements core.Engine.
func (d *Engine) Name() string { return fmt.Sprintf("dist(%dx %s)", len(d.shards), d.base) }

// Arch implements core.Engine: the architecture of the shard engines.
func (d *Engine) Arch() core.Arch {
	if s := d.shards[0]; s.local != nil {
		return s.local.Arch()
	}
	return d.shards[0].remote.Arch()
}

// Shards reports the shard count.
func (d *Engine) Shards() int { return len(d.shards) }

// Tables implements core.Engine.
func (d *Engine) Tables() []*types.Schema { return d.ts }

// Schema implements core.Engine.
func (d *Engine) Schema(table string) *types.Schema { return d.byName[table] }

// Begin implements core.Engine. The transaction opens per-shard branches
// lazily as operations route to them; Commit drives one branch directly
// or all branches through two-phase commit.
func (d *Engine) Begin(ctx context.Context) core.Tx {
	if ctx == nil {
		ctx = context.Background()
	}
	t := &distTx{d: d, ctx: ctx, subs: make([]core.Tx, len(d.shards))}
	d.txMu.Lock()
	d.open[t] = struct{}{}
	d.txMu.Unlock()
	return t
}

// forget removes a finished transaction from the open registry.
func (d *Engine) forget(t *distTx) {
	d.txMu.Lock()
	delete(d.open, t)
	d.txMu.Unlock()
}

// Load implements core.Engine: rows route to their owning shard,
// replicated dimension rows land on every shard. Remote shards reject
// loads — they preload their own slice (cmd/htapd -shard-index).
func (d *Engine) Load(table string, row types.Row) error {
	sch := d.byName[table]
	if sch == nil {
		return fmt.Errorf("%w: %s", core.ErrNoTable, table)
	}
	if replicated(table) {
		for _, s := range d.shards {
			if err := d.loadOn(s, table, row); err != nil {
				return err
			}
		}
		return nil
	}
	w, ok := rowWarehouse(table, sch.Key(row), row)
	if !ok {
		return fmt.Errorf("dist: cannot route %s row", table)
	}
	return d.loadOn(d.shards[d.rtab.Load().shardOf(w)], table, row)
}

func (d *Engine) loadOn(s *shardRef, table string, row types.Row) error {
	if s.local == nil {
		return fmt.Errorf("dist: %s is remote; shard servers preload their own warehouse slice", s.name)
	}
	return s.local.Load(table, row)
}

// Sync implements core.Engine: one synchronization round on every shard.
func (d *Engine) Sync() {
	for _, s := range d.shards {
		if s.local != nil {
			s.local.Sync()
		} else {
			s.remote.Sync()
		}
	}
}

// SetMode implements core.Engine. Remote shards keep their server-side
// mode — the wire protocol has no mode control — so only in-process
// shards switch.
func (d *Engine) SetMode(m sched.Mode) {
	for _, s := range d.shards {
		if s.local != nil {
			s.local.SetMode(m)
		}
	}
}

// Freshness implements core.Engine: the coordinator is as stale as its
// most lagging shard.
func (d *Engine) Freshness() freshness.Snapshot {
	var worst freshness.Snapshot
	for _, s := range d.shards {
		var f freshness.Snapshot
		if s.local != nil {
			f = s.local.Freshness()
		} else {
			f = s.remote.Freshness()
		}
		if f.LagTS > worst.LagTS {
			worst.LagTS = f.LagTS
		}
		if f.LagTime > worst.LagTime {
			worst.LagTime = f.LagTime
		}
	}
	return worst
}

// Stats implements core.Engine: the sum over in-process shards. Remote
// shards export their own metrics endpoint and contribute nothing here.
func (d *Engine) Stats() core.Stats {
	var sum core.Stats
	for _, s := range d.shards {
		if s.local == nil {
			continue
		}
		st := s.local.Stats()
		sum.Commits += st.Commits
		sum.Aborts += st.Aborts
		sum.Conflicts += st.Conflicts
		sum.Merges += st.Merges
		sum.Rebuilds += st.Rebuilds
		sum.ColBytes += st.ColBytes
		sum.DeltaRows += st.DeltaRows
	}
	return sum
}

// Close implements core.Engine.
func (d *Engine) Close() {
	for _, s := range d.shards {
		if s.local != nil {
			s.local.Close()
		}
	}
	if d.eps != nil {
		d.eps.Close()
	}
}

// SetParallelism implements core.Paralleler for the coordinator's merge
// pipelines; zero restores the default (GOMAXPROCS).
func (d *Engine) SetParallelism(n int) { d.par.Store(int32(n)) }

func (d *Engine) dop() int {
	if v := d.par.Load(); v > 0 {
		return int(v)
	}
	return exec.DefaultParallelism()
}

// SetMemGovernor implements core.MemGoverned: coordinator-side merge
// operators (aggregations, sorts, joins over gathered rows) run under the
// attached budget. Shard-side budgets are the shard engines' own.
func (d *Engine) SetMemGovernor(g *exec.Governor) { d.gov.Store(g) }

// MemGovernor implements core.MemGoverned.
func (d *Engine) MemGovernor() *exec.Governor { return d.gov.Load() }

// Query implements core.Engine: scatter the scan to every owning shard
// and merge. The plan is wired exactly like a single engine's — context,
// parallelism, memory accountant, profile — plus an error sink that turns
// a failed shard fragment into a query error instead of missing rows.
func (d *Engine) Query(ctx context.Context, table string, cols []string, pred *exec.ScanPred) *exec.Plan {
	if ctx == nil {
		ctx = context.Background()
	}
	src, frags := d.scatter(ctx, table, cols, pred)
	if prof := exec.ProfileFrom(ctx); prof != nil {
		prof.SetArch("dist")
	}
	p := exec.From(src).Parallel(d.dop()).Ctx(ctx)
	if g := d.gov.Load(); g != nil {
		p = p.WithMem(g.StartQuery())
	}
	if len(frags) > 0 {
		sink := p.ErrSink()
		for _, f := range frags {
			f := f
			f.src.OnError(func(err error) {
				sink(fmt.Errorf("dist: fragment on %s: %w", f.shard, err))
				if d.eps != nil {
					d.eps.Report(f.shard, err)
				}
			})
		}
	}
	return p
}

// Source implements core.Engine. Callers holding a bare Source have no
// error channel; a remote fragment failure poisons its shard's stream
// (zero rows, never fabricated ones). Prefer Query, which surfaces such
// failures as query errors.
func (d *Engine) Source(ctx context.Context, table string, cols []string, pred *exec.ScanPred) exec.Source {
	if ctx == nil {
		ctx = context.Background()
	}
	src, _ := d.scatter(ctx, table, cols, pred)
	return src
}
