package dist

import "htap/internal/obs"

// Coordinator-level series. Shard engines keep exporting their own
// htap_engine_* / htap_exec_* series; these four describe only what the
// coordinator adds: transaction routing, scatter fan-out, and the row
// volume merged back from shards.
var (
	// htap_dist_txn_routed_total: transactions that touched exactly one
	// shard and committed directly, no prepare round.
	routedTxns = obs.Default.Counter("htap_dist_txn_routed_total", nil)
	// htap_dist_txn_cross_shard_total: transactions that touched several
	// shards and committed through two-phase commit.
	crossShardTxns = obs.Default.Counter("htap_dist_txn_cross_shard_total", nil)
	// htap_dist_scatter_fragments_total: per-shard scan fragments issued
	// by scatter–gather queries (fan-out, summed over queries).
	scatterFragments = obs.Default.Counter("htap_dist_scatter_fragments_total", nil)
	// htap_dist_merge_rows_total: rows the coordinator merged from shard
	// streams into query pipelines.
	mergeRowsTotal = obs.Default.Counter("htap_dist_merge_rows_total", nil)

	// htap_dist_partial_pushdowns_total: aggregations pushed into shard
	// fragments (the coordinator combined partial states instead of
	// merging raw rows).
	partialPushdowns = obs.Default.Counter("htap_dist_partial_pushdowns_total", nil)
	// htap_dist_partial_groups_total: partial-aggregation groups merged at
	// the coordinator. These replace merged rows on pushed plans, so the
	// merge-rows-vs-partial-groups ratio is the pushdown's row reduction.
	partialGroups = obs.Default.Counter("htap_dist_partial_groups_total", nil)
	// htap_dist_topk_pushdowns_total: top-k operators pushed into shard
	// fragments, bounding each shard's stream to k rows.
	topkPushdowns = obs.Default.Counter("htap_dist_topk_pushdowns_total", nil)

	// htap_dist_rebalance_moves_total: warehouse-range moves started.
	rebalanceMoves = obs.Default.Counter("htap_dist_rebalance_moves_total", nil)
	// htap_dist_rebalance_rows_moved_total: rows cut over to their new
	// shard by completed moves.
	rebalanceRows = obs.Default.Counter("htap_dist_rebalance_rows_moved_total", nil)
	// htap_dist_rebalance_catchup_rows_total: rows whose images changed
	// between a move's fuzzy snapshot and its fenced rescan — the work the
	// catch-up phase absorbed.
	rebalanceCatchup = obs.Default.Counter("htap_dist_rebalance_catchup_rows_total", nil)
	// htap_dist_rebalance_failures_total: moves that aborted (fence drain
	// timeout, cutover failure). The routing table is unchanged after a
	// failed move.
	rebalanceFailures = obs.Default.Counter("htap_dist_rebalance_failures_total", nil)
)
