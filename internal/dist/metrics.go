package dist

import "htap/internal/obs"

// Coordinator-level series. Shard engines keep exporting their own
// htap_engine_* / htap_exec_* series; these four describe only what the
// coordinator adds: transaction routing, scatter fan-out, and the row
// volume merged back from shards.
var (
	// htap_dist_txn_routed_total: transactions that touched exactly one
	// shard and committed directly, no prepare round.
	routedTxns = obs.Default.Counter("htap_dist_txn_routed_total", nil)
	// htap_dist_txn_cross_shard_total: transactions that touched several
	// shards and committed through two-phase commit.
	crossShardTxns = obs.Default.Counter("htap_dist_txn_cross_shard_total", nil)
	// htap_dist_scatter_fragments_total: per-shard scan fragments issued
	// by scatter–gather queries (fan-out, summed over queries).
	scatterFragments = obs.Default.Counter("htap_dist_scatter_fragments_total", nil)
	// htap_dist_merge_rows_total: rows the coordinator merged from shard
	// streams into query pipelines.
	mergeRowsTotal = obs.Default.Counter("htap_dist_merge_rows_total", nil)
)
