package dist

import (
	"context"
	"errors"
	"fmt"
	"time"

	"htap/internal/core"
	"htap/internal/twopc"
	"htap/internal/types"
)

// Online shard rebalancing: move a warehouse range between shard
// engines while transactions and queries keep running.
//
// The move is a fenced copy–catchup–cutover:
//
//  1. Fuzzy snapshot (unfenced): scan the source shard for every row
//     owned by the moving range while writes continue. The snapshot is
//     only a baseline for measuring catch-up volume — it is never what
//     gets installed.
//  2. Fence + drain: a fence blocks NEW transactions from routing into
//     the range (they park on the fence channel until cutover, or their
//     context dies); transactions that already touched the range before
//     the fence rose pass through and the drain loop waits for them to
//     finish. After the drain no in-flight transaction can write the
//     range.
//  3. Catch-up: sync the source engine so every committed write is
//     scan-visible, then rescan under the fence. This fenced rescan is
//     the authoritative row set; its diff against the snapshot is the
//     catch-up volume (htap_dist_rebalance_catchup_rows_total).
//  4. Cutover: one transaction on the destination inserts every row,
//     one on the source deletes every key, and both commit atomically
//     through twopc.CommitAll. A clean failure aborts both branches —
//     nothing moved, the move is retryable. An indeterminate commit
//     (lost acknowledgement) is repaired by re-checking both shards
//     row by row and completing whatever half survived.
//  5. Flip + unfence: install a new routing table (version+1) with one
//     atomic store, then release the fence. Parked transactions wake,
//     re-read the table, and route to the new owner.
//
// Scatter queries running concurrently with the cutover commit window
// can transiently observe the moving rows on both shards (destination
// commits before source in the ordered 2PC commit phase). The window is
// two in-process commits wide; the equivalence gate queries outside it
// and asserts bit-exact results, and the concurrent-load test asserts
// convergence after the move.

// moveFence marks warehouses [lo, hi] as moving. done closes when the
// move finishes (either way), releasing parked transactions.
type moveFence struct {
	lo, hi int64
	done   chan struct{}
}

// movedRow is one row image captured by the fenced rescan.
type movedRow struct {
	table string
	key   int64
	row   types.Row
}

// MoveRange moves warehouses [lo, hi] from their current owner to shard
// dest, returning the number of rows cut over and the routing-table
// version now in effect. The range must currently be owned by a single
// shard, and all shards must be in-process (remote shard stores are
// preloaded per server; moving them needs a data plane the wire
// protocol doesn't have).
func (d *Engine) MoveRange(ctx context.Context, lo, hi, dest int) (int64, int64, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if lo < 1 || hi > d.rt.warehouses || lo > hi {
		return 0, 0, fmt.Errorf("dist: warehouse range [%d, %d] outside [1, %d]", lo, hi, d.rt.warehouses)
	}
	if dest < 0 || dest >= len(d.shards) {
		return 0, 0, fmt.Errorf("dist: destination shard %d out of range", dest)
	}
	for _, s := range d.shards {
		if s.local == nil {
			return 0, 0, fmt.Errorf("dist: rebalance requires in-process shards (%s is remote)", s.name)
		}
	}

	d.moveMu.Lock()
	defer d.moveMu.Unlock()

	rt := d.rtab.Load()
	src := rt.owners[lo-1]
	for w := lo; w <= hi; w++ {
		if rt.owners[w-1] != src {
			return 0, 0, fmt.Errorf("dist: range [%d, %d] spans shards %d and %d; move one owner's range at a time",
				lo, hi, src, rt.owners[w-1])
		}
	}
	if src == dest {
		return 0, rt.version, nil
	}
	rebalanceMoves.Inc()

	// Phase 1: fuzzy snapshot.
	d.shards[src].local.Sync()
	snap, err := d.rangeRows(ctx, src, int64(lo), int64(hi))
	if err != nil {
		rebalanceFailures.Inc()
		return 0, rt.version, err
	}
	if d.afterCopy != nil {
		d.afterCopy()
	}

	// Phase 2: fence + drain.
	f := &moveFence{lo: int64(lo), hi: int64(hi), done: make(chan struct{})}
	d.fence.Store(f)
	unfenced := false
	unfence := func() {
		if !unfenced {
			unfenced = true
			d.fence.Store(nil)
			close(f.done)
		}
	}
	defer unfence()
	if err := d.drainTouchers(ctx, f.lo, f.hi); err != nil {
		rebalanceFailures.Inc()
		return 0, rt.version, err
	}

	// Phase 3: catch-up — the fenced rescan is authoritative.
	d.shards[src].local.Sync()
	final, err := d.rangeRows(ctx, src, int64(lo), int64(hi))
	if err != nil {
		rebalanceFailures.Inc()
		return 0, rt.version, err
	}
	rebalanceCatchup.Add(diffRows(snap, final))

	// Phase 4: cutover.
	moved, err := d.cutover(ctx, src, dest, final)
	if err != nil {
		rebalanceFailures.Inc()
		return 0, rt.version, err
	}

	// Phase 5: flip, then unfence.
	nt := rt.moved(lo, hi, dest)
	d.rtab.Store(nt)
	unfence()
	d.shards[src].local.Sync()
	d.shards[dest].local.Sync()
	rebalanceRows.Add(moved)
	return moved, nt.version, nil
}

// rangeRows scans every non-replicated table on shard si for rows owned
// by warehouses [lo, hi], in table catalog order and shard scan order.
func (d *Engine) rangeRows(ctx context.Context, si int, lo, hi int64) ([]movedRow, error) {
	e := d.shards[si].local
	var out []movedRow
	for _, sch := range d.ts {
		if replicated(sch.Name) {
			continue
		}
		rows, err := e.Query(ctx, sch.Name, nil, nil).RunCtx(ctx)
		if err != nil {
			return nil, fmt.Errorf("dist: rebalance scan of %s: %w", sch.Name, err)
		}
		for _, r := range rows {
			key := sch.Key(r)
			w, ok := rowWarehouse(sch.Name, key, r)
			if ok && w >= lo && w <= hi {
				out = append(out, movedRow{table: sch.Name, key: key, row: r})
			}
		}
	}
	return out, nil
}

// diffRows counts rows added, changed, or removed between two scans of
// the same range — the catch-up volume the fence absorbed.
func diffRows(snap, final []movedRow) int64 {
	type rk struct {
		table string
		key   int64
	}
	old := make(map[rk]types.Row, len(snap))
	for _, m := range snap {
		old[rk{m.table, m.key}] = m.row
	}
	var n int64
	for _, m := range final {
		prev, ok := old[rk{m.table, m.key}]
		if !ok || !rowEqual(prev, m.row) {
			n++
		}
		delete(old, rk{m.table, m.key})
	}
	return n + int64(len(old))
}

func rowEqual(a, b types.Row) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if !a[i].Equal(b[i]) {
			return false
		}
	}
	return true
}

// drainTouchers waits until no open transaction has routed into the
// fenced range. New entrants are parked on the fence, so the set can
// only shrink; a transaction that never finishes is the caller's
// context deadline to enforce.
func (d *Engine) drainTouchers(ctx context.Context, lo, hi int64) error {
	for {
		if err := ctx.Err(); err != nil {
			return fmt.Errorf("dist: rebalance drain: %w", err)
		}
		busy := false
		d.txMu.Lock()
		for t := range d.open {
			if t.touchedRange(lo, hi) {
				busy = true
				break
			}
		}
		d.txMu.Unlock()
		if !busy {
			return nil
		}
		time.Sleep(200 * time.Microsecond)
	}
}

// cutover atomically installs the fenced row set on dest and removes it
// from src through one two-phase commit: a destination branch holding
// only inserts and a source branch holding only deletes.
func (d *Engine) cutover(ctx context.Context, src, dest int, rows []movedRow) (int64, error) {
	destTx := d.shards[dest].local.Begin(ctx)
	srcTx := d.shards[src].local.Begin(ctx)
	abortBoth := func() {
		destTx.Abort()
		srcTx.Abort()
	}
	for _, m := range rows {
		if err := destTx.Insert(m.table, m.row); err != nil {
			abortBoth()
			return 0, fmt.Errorf("dist: cutover insert %s/%d: %w", m.table, m.key, err)
		}
	}
	for _, m := range rows {
		if err := srcTx.Delete(m.table, m.key); err != nil {
			abortBoth()
			return 0, fmt.Errorf("dist: cutover delete %s/%d: %w", m.table, m.key, err)
		}
	}
	branches := []twopc.TxParticipant{
		txBranch{name: "rebalance-dest", tx: destTx},
		txBranch{name: "rebalance-src", tx: srcTx},
	}
	if d.wrapBranch != nil {
		for i := range branches {
			branches[i] = d.wrapBranch(branches[i])
		}
	}
	if d.beforeCutover != nil {
		d.beforeCutover()
	}
	err := twopc.CommitAll(ctx, branches...)
	if err == nil {
		return int64(len(rows)), nil
	}
	var ind *twopc.IndeterminateError
	if errors.As(err, &ind) {
		// One branch may or may not have applied. Repair to the moved
		// state row by row: it is idempotent and resolves every
		// combination of half-applied outcomes the ordered commit phase
		// can leave behind.
		if rerr := d.resolveMove(src, dest, rows); rerr != nil {
			return 0, fmt.Errorf("dist: cutover indeterminate (%v); repair failed: %w", err, rerr)
		}
		return int64(len(rows)), nil
	}
	// Clean failure: CommitAll aborted every branch; nothing moved.
	return 0, fmt.Errorf("dist: cutover: %w", err)
}

// resolveMove forces the moved state after an indeterminate cutover:
// ensure dest holds every final row and src holds none of the keys.
func (d *Engine) resolveMove(src, dest int, rows []movedRow) error {
	ctx := context.Background()
	dt := d.shards[dest].local.Begin(ctx)
	for _, m := range rows {
		_, err := dt.Get(m.table, m.key)
		if err == nil {
			continue
		}
		if !errors.Is(err, core.ErrNotFound) {
			dt.Abort()
			return err
		}
		if err := dt.Insert(m.table, m.row); err != nil {
			dt.Abort()
			return err
		}
	}
	if err := dt.Commit(); err != nil {
		return err
	}
	st := d.shards[src].local.Begin(ctx)
	for _, m := range rows {
		_, err := st.Get(m.table, m.key)
		if errors.Is(err, core.ErrNotFound) {
			continue
		}
		if err != nil {
			st.Abort()
			return err
		}
		if err := st.Delete(m.table, m.key); err != nil {
			st.Abort()
			return err
		}
	}
	return st.Commit()
}
