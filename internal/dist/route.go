// Package dist is the distributed coordinator: one core.Engine fronting N
// shard engines — in-process instances or remote servers reached through
// internal/client — with the CH-benCHmark dataset sharded by warehouse.
//
// Placement follows the packed-key layout of internal/ch: every TPC-C fact
// table's primary key is warehouse-major, so a key maps to its warehouse
// (and therefore its shard) by integer division, and contiguous warehouse
// ranges per shard mean a union of shard scans in shard order reproduces
// the exact row order of a single engine — the property the golden
// equivalence suite pins. Dimension tables (item, supplier, nation,
// region) are replicated to every shard so single-warehouse transactions
// never leave their shard just to price an item.
//
// Transactions that stay on one shard commit directly; transactions that
// touch several (a NewOrder with remote items, a Payment against a remote
// customer) commit through twopc.CommitAll with the client's
// indeterminate-commit semantics. Analytical queries scatter fused
// filter+scan fragments to every shard and merge at the coordinator.
package dist

import (
	"fmt"

	"htap/internal/ch"
	"htap/internal/types"
)

// Warehouse extraction divisors, derived from the ch key packing:
//
//	DistrictKey  = w*100 + d
//	CustomerKey  = DistrictKey*100_000 + c  = w*10_000_000 + ...
//	OrderKey     = DistrictKey*10_000_000   = w*1_000_000_000 + ...
//	OrderLineKey = OrderKey*16              = w*16_000_000_000 + ...
//	StockKey     = w*1_000_000 + i
//
// route_test.go cross-checks these against the packing functions.
const (
	divDistrict  = 100
	divCustomer  = 100 * 100_000
	divOrder     = 100 * 10_000_000
	divOrderLine = 100 * 10_000_000 * 16
	divStock     = 1_000_000
)

// warehouseOfKey extracts the owning warehouse from a fact-table primary
// key. ok is false for replicated dimension tables and for history, whose
// keys come from a global sequence (history routes by its h_w_id column;
// see rowWarehouse).
func warehouseOfKey(table string, key int64) (w int64, ok bool) {
	switch table {
	case ch.TWarehouse:
		return key, true
	case ch.TDistrict:
		return key / divDistrict, true
	case ch.TCustomer:
		return key / divCustomer, true
	case ch.TOrders, ch.TNewOrder:
		return key / divOrder, true
	case ch.TOrderLine:
		return key / divOrderLine, true
	case ch.TStock:
		return key / divStock, true
	}
	return 0, false
}

// historyWID is the index of h_w_id in a history row.
const historyWID = 2

// rowWarehouse extracts the owning warehouse from a row image, covering
// tables whose key alone cannot route (history). ok mirrors warehouseOfKey.
func rowWarehouse(table string, key int64, row types.Row) (int64, bool) {
	if w, ok := warehouseOfKey(table, key); ok {
		return w, true
	}
	if table == ch.THistory && len(row) > historyWID {
		return row[historyWID].I, true
	}
	return 0, false
}

// replicated reports whether table is a dimension table present on every
// shard. Replicated reads stay local to whichever shard a transaction
// already opened; replicated writes broadcast.
func replicated(table string) bool {
	switch table {
	case ch.TItem, ch.TSupplier, ch.TNation, ch.TRegion:
		return true
	}
	return false
}

// router maps warehouses onto shards as balanced contiguous ranges:
// shard 0 owns the lowest warehouses, shard S-1 the highest, and the
// first warehouses%shards ranges are one warehouse longer. Contiguity is
// load-bearing — it is what makes shard-order unions reproduce single
// -engine row order.
type router struct {
	warehouses int
	shards     int
}

func newRouter(warehouses, shards int) (router, error) {
	if warehouses < 1 || shards < 1 {
		return router{}, fmt.Errorf("dist: need at least 1 warehouse and 1 shard (got %d, %d)", warehouses, shards)
	}
	if shards > warehouses {
		return router{}, fmt.Errorf("dist: %d shards over %d warehouses leaves empty shards", shards, warehouses)
	}
	return router{warehouses: warehouses, shards: shards}, nil
}

// shardOf returns the shard owning warehouse w (1-based). Out-of-range
// warehouses clamp to the nearest shard so a malformed key routes
// somewhere deterministic instead of panicking; the shard engine then
// reports not-found.
func (r router) shardOf(w int64) int {
	if w < 1 {
		return 0
	}
	if w > int64(r.warehouses) {
		return r.shards - 1
	}
	idx := w - 1
	base := int64(r.warehouses / r.shards)
	extra := int64(r.warehouses % r.shards)
	if idx < extra*(base+1) {
		return int(idx / (base + 1))
	}
	return int(extra + (idx-extra*(base+1))/base)
}

// rangeOf returns the inclusive warehouse range shard i owns.
func (r router) rangeOf(i int) (lo, hi int64) {
	base := int64(r.warehouses / r.shards)
	extra := int64(r.warehouses % r.shards)
	lo = 1 + int64(i)*base + min(int64(i), extra)
	size := base
	if int64(i) < extra {
		size++
	}
	return lo, lo + size - 1
}

// routeTable is the live, versioned warehouse→shard ownership map. The
// initial table mirrors the contiguous router layout; every rebalance
// installs a fresh table (new owners slice, version+1) with a single
// atomic pointer store, so routing reads never lock and never observe a
// half-updated move. The router itself keeps describing the load-time
// layout (PartitionLoad, initial placement).
type routeTable struct {
	version    int64
	warehouses int
	owners     []int // owners[w-1] = owning shard
}

func newRouteTable(rt router) *routeTable {
	owners := make([]int, rt.warehouses)
	for w := 1; w <= rt.warehouses; w++ {
		owners[w-1] = rt.shardOf(int64(w))
	}
	return &routeTable{version: 1, warehouses: rt.warehouses, owners: owners}
}

// shardOf returns warehouse w's current owner, clamping out-of-range
// warehouses like router.shardOf does.
func (t *routeTable) shardOf(w int64) int {
	if w < 1 {
		return t.owners[0]
	}
	if w > int64(t.warehouses) {
		return t.owners[t.warehouses-1]
	}
	return t.owners[w-1]
}

// moved returns a new table with warehouses [lo, hi] owned by dest and
// the version bumped.
func (t *routeTable) moved(lo, hi, dest int) *routeTable {
	owners := append([]int(nil), t.owners...)
	for w := lo; w <= hi; w++ {
		owners[w-1] = dest
	}
	return &routeTable{version: t.version + 1, warehouses: t.warehouses, owners: owners}
}
