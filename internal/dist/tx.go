package dist

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"htap/internal/ch"
	"htap/internal/core"
	"htap/internal/twopc"
	"htap/internal/types"
)

// distTx is one coordinator transaction: a lazy branch per shard, opened
// the first time an operation routes there. Single-warehouse TPC-C
// transactions therefore open exactly one branch and commit directly;
// only genuinely cross-warehouse work (remote NewOrder items, remote
// Payment customers) pays the prepare round.
type distTx struct {
	d    *Engine
	ctx  context.Context
	subs []core.Tx
	done bool

	mu      sync.Mutex
	touched []int64 // warehouses this transaction routed to
}

// shardFor routes warehouse w through the live table, honoring a
// rebalance fence: a transaction entering the moving range for the
// first time blocks until the cutover completes (or its context dies),
// while a transaction that already touched the range before the fence
// rose passes through — the move's drain phase is waiting on IT to
// finish, so parking it would deadlock.
func (t *distTx) shardFor(w int64) (int, error) {
	for {
		f := t.d.fence.Load()
		if f == nil || w < f.lo || w > f.hi || t.touchedRange(f.lo, f.hi) {
			break
		}
		select {
		case <-f.done:
		case <-t.ctx.Done():
			return 0, t.ctx.Err()
		}
	}
	t.mu.Lock()
	seen := false
	for _, tw := range t.touched {
		if tw == w {
			seen = true
			break
		}
	}
	if !seen {
		t.touched = append(t.touched, w)
	}
	t.mu.Unlock()
	return t.d.rtab.Load().shardOf(w), nil
}

// touchedRange reports whether the transaction already routed into
// [lo, hi].
func (t *distTx) touchedRange(lo, hi int64) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	for _, w := range t.touched {
		if w >= lo && w <= hi {
			return true
		}
	}
	return false
}

// errTxDone mirrors the engines' finished-transaction errors.
var errTxDone = errors.New("dist: transaction finished")

func (t *distTx) sub(i int) core.Tx {
	if t.subs[i] == nil {
		t.subs[i] = t.d.shards[i].begin(t.ctx)
	}
	return t.subs[i]
}

// readShard picks the branch for a replicated-table read: the lowest-index
// shard this transaction already opened, else shard 0. Preferring an open
// branch keeps a single-warehouse transaction on its one shard — routing
// dimension reads anywhere else would make every NewOrder cross-shard.
func (t *distTx) readShard() int {
	for i, s := range t.subs {
		if s != nil {
			return i
		}
	}
	return 0
}

func (t *distTx) route(table string, key int64) (int, error) {
	w, ok := warehouseOfKey(table, key)
	if !ok {
		return 0, fmt.Errorf("dist: cannot route %s by key", table)
	}
	return t.shardFor(w)
}

// Get implements core.Tx.
func (t *distTx) Get(table string, key int64) (types.Row, error) {
	if t.done {
		return nil, errTxDone
	}
	if replicated(table) {
		return t.sub(t.readShard()).Get(table, key)
	}
	if table == ch.THistory {
		// History keys come from a global sequence and carry no placement;
		// probe shards in order. TPC-C never reads history transactionally,
		// so the fan-out read is a test/debug convenience, not a hot path.
		for i := range t.d.shards {
			r, err := t.sub(i).Get(table, key)
			if err == nil || !errors.Is(err, core.ErrNotFound) {
				return r, err
			}
		}
		return nil, core.ErrNotFound
	}
	i, err := t.route(table, key)
	if err != nil {
		return nil, err
	}
	return t.sub(i).Get(table, key)
}

// writeShard routes a write by row image (covers history's h_w_id).
func (t *distTx) writeShard(table string, key int64, row types.Row) (int, error) {
	w, ok := rowWarehouse(table, key, row)
	if !ok {
		return 0, fmt.Errorf("dist: cannot route %s row", table)
	}
	return t.shardFor(w)
}

// Insert implements core.Tx. Replicated-table writes broadcast so every
// shard's copy stays identical.
func (t *distTx) Insert(table string, row types.Row) error {
	return t.write(table, row, func(tx core.Tx) error { return tx.Insert(table, row) })
}

// Update implements core.Tx.
func (t *distTx) Update(table string, row types.Row) error {
	return t.write(table, row, func(tx core.Tx) error { return tx.Update(table, row) })
}

func (t *distTx) write(table string, row types.Row, op func(core.Tx) error) error {
	if t.done {
		return errTxDone
	}
	sch := t.d.byName[table]
	if sch == nil {
		return fmt.Errorf("%w: %s", core.ErrNoTable, table)
	}
	if replicated(table) {
		for i := range t.d.shards {
			if err := op(t.sub(i)); err != nil {
				return err
			}
		}
		return nil
	}
	i, err := t.writeShard(table, sch.Key(row), row)
	if err != nil {
		return err
	}
	return op(t.sub(i))
}

// Delete implements core.Tx.
func (t *distTx) Delete(table string, key int64) error {
	if t.done {
		return errTxDone
	}
	if replicated(table) {
		for i := range t.d.shards {
			if err := t.sub(i).Delete(table, key); err != nil {
				return err
			}
		}
		return nil
	}
	i, err := t.route(table, key)
	if err != nil {
		return err
	}
	return t.sub(i).Delete(table, key)
}

// Commit implements core.Tx. One open branch commits directly — its own
// engine provides the one-shot semantics, and its error (retryable
// conflict, indeterminate remote commit) passes through unchanged.
// Several branches commit through twopc.CommitAll: parallel prepare,
// abort-all on any prepare failure (safe to retry), then ordered commit
// with indeterminate-commit semantics on a lost acknowledgement.
func (t *distTx) Commit() error {
	if t.done {
		return errTxDone
	}
	t.done = true
	t.d.forget(t)
	var branches []twopc.TxParticipant
	for i, s := range t.subs {
		if s != nil {
			branches = append(branches, txBranch{name: t.d.shards[i].name, tx: s})
		}
	}
	switch len(branches) {
	case 0:
		return nil
	case 1:
		routedTxns.Inc()
		return branches[0].Commit(t.ctx)
	default:
		crossShardTxns.Inc()
		return twopc.CommitAll(t.ctx, branches...)
	}
}

// Abort implements core.Tx.
func (t *distTx) Abort() {
	if t.done {
		return
	}
	t.done = true
	t.d.forget(t)
	for _, s := range t.subs {
		if s != nil {
			s.Abort()
		}
	}
}

// txBranch adapts one shard's engine transaction to a 2PC participant.
type txBranch struct {
	name string
	tx   core.Tx
}

// Name implements twopc.TxParticipant.
func (b txBranch) Name() string { return b.name }

// Prepare implements twopc.TxParticipant. Remote transactions expose a
// wire-level prepare vote; in-process engine transactions acquired every
// lock and passed every snapshot check as the writes were buffered (see
// internal/txn), so an open local branch is implicitly prepared.
func (b txBranch) Prepare(context.Context) error {
	if p, ok := b.tx.(interface{ Prepare() error }); ok {
		return p.Prepare()
	}
	return nil
}

// Commit implements twopc.TxParticipant.
func (b txBranch) Commit(context.Context) error { return b.tx.Commit() }

// Abort implements twopc.TxParticipant.
func (b txBranch) Abort(context.Context) { b.tx.Abort() }
