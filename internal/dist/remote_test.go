package dist

import (
	"context"
	"fmt"
	"math/rand"
	"testing"
	"time"

	"htap/internal/ch"
	"htap/internal/client"
	"htap/internal/core"
	"htap/internal/obs"
	"htap/internal/server"
	"htap/internal/types"
)

// startRemoteDist brings up n shard servers, each over an arch-A engine
// holding its PartitionLoad slice of the full dataset, and a NewRemote
// coordinator connected to all of them. This is the cmd/htapd
// -shard-index / -shard-addrs topology in-process.
func startRemoteDist(t *testing.T, warehouses, n int) *Engine {
	t.Helper()
	eps := make([]client.Endpoint, n)
	for i := 0; i < n; i++ {
		e := core.NewEngineA(core.ConfigA{Schemas: ch.Schemas()})
		part, err := PartitionLoad(e, warehouses, i, n)
		if err != nil {
			t.Fatal(err)
		}
		// Every shard server runs the same deterministic generator pass and
		// keeps only its slice, so the global history-key allocator advances
		// identically everywhere.
		if _, err := ch.NewGenerator(distScale(warehouses)).Load(part); err != nil {
			t.Fatalf("shard %d load: %v", i, err)
		}
		e.Sync()
		srv, err := server.Serve("127.0.0.1:0", server.Config{Engine: e, Reg: obs.NewRegistry()})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() {
			ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
			defer cancel()
			_ = srv.Shutdown(ctx)
			e.Close()
		})
		eps[i] = client.Endpoint{Name: fmt.Sprintf("shard-%d", i), Addr: srv.Addr()}
	}
	pool, err := client.ConnectEndpoints(context.Background(), eps, client.Options{Reg: obs.NewRegistry()})
	if err != nil {
		t.Fatal(err)
	}
	d, err := NewRemote(warehouses, pool)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(d.Close)
	return d
}

// TestRemoteCoordinatorMatchesLocal runs all 22 CH queries against a
// wire-attached 3-shard coordinator and an in-process one over the same
// dataset: the scatter frames, fragment streams, and coordinator merge
// must reproduce the local results bit-for-bit at DOP 1.
func TestRemoteCoordinatorMatchesLocal(t *testing.T) {
	remote := startRemoteDist(t, 3, 3)
	local, _ := newDistA(t, 3, 3)
	defer local.Close()

	want := runAll(t, local, 1)
	got := runAll(t, remote, 1)
	for q := 1; q <= 22; q++ {
		if !exactEqual(want[q], got[q]) {
			i, c, _ := rowsClose(want[q], got[q])
			t.Errorf("Q%02d: remote coordinator diverges from local (row %d col %d)", q, i, c)
		}
	}
}

// TestRemoteCrossShardCommit drives a cross-shard transaction whose
// branches are wire transactions: prepare votes travel over MsgPrepare,
// and both shards' effects must be visible afterwards.
func TestRemoteCrossShardCommit(t *testing.T) {
	d := startRemoteDist(t, 3, 3)
	ctx := context.Background()
	cross0 := crossShardTxns.Value()

	tx := d.Begin(ctx)
	var before [2]float64
	for i, wk := range []int64{1, 3} {
		row, err := tx.Get(ch.TWarehouse, ch.WarehouseKey(wk))
		if err != nil {
			t.Fatal(err)
		}
		before[i] = row[5].Float()
		up := row.Clone()
		up[5] = types.NewFloat(before[i] + 42)
		if err := tx.Update(ch.TWarehouse, up); err != nil {
			t.Fatal(err)
		}
	}
	if err := tx.Commit(); err != nil {
		t.Fatalf("remote cross-shard commit: %v", err)
	}
	if got := crossShardTxns.Value() - cross0; got != 1 {
		t.Fatalf("cross-shard counter moved by %d, want 1", got)
	}
	check := d.Begin(ctx)
	defer check.Abort()
	for i, wk := range []int64{1, 3} {
		row, err := check.Get(ch.TWarehouse, ch.WarehouseKey(wk))
		if err != nil {
			t.Fatal(err)
		}
		if row[5].Float() != before[i]+42 {
			t.Fatalf("warehouse %d ytd %v, want %v", wk, row[5].Float(), before[i]+42)
		}
	}
}

// TestRemoteDriverSlice runs a short TPC-C mix through the remote
// coordinator — the CI smoke in miniature.
func TestRemoteDriverSlice(t *testing.T) {
	d := startRemoteDist(t, 3, 3)
	drv := ch.NewDriver(d, distScale(3))
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 60; i++ {
		if err := drv.RunOne(context.Background(), rng); err != nil {
			t.Fatalf("txn %d: %v", i, err)
		}
	}
}
