package dist

import (
	"context"
	"fmt"
	"math"
	"sort"
	"strings"
	"testing"

	"htap/internal/ch"
	"htap/internal/core"
	"htap/internal/disk"
	"htap/internal/types"
)

// The distributed golden-equivalence suite extends the single-engine gate
// (internal/ch/equivalence_test.go) across shard counts: one CH dataset,
// all 22 queries, the same engine architecture behind 1, 2, and 3 shards.
//
//  1. At a fixed DOP, a plain engine and every shard count produce
//     bit-identical results over arch A: each shard's column store appends
//     in load order, the contiguous warehouse ranges make shard order equal
//     warehouse order, and the coordinator's merge concatenates shards in
//     that order — so the gathered stream replays the single-engine scan
//     exactly.
//  2. At DOP N, repeated runs on the same shard count are bit-identical,
//     and results agree with DOP 1 to the float epsilon (parallel merge
//     changes summation association, nothing else).
//  3. Arch C hash-shards its IMCS internally, so its scan order is not
//     load order; there the gate is order-normalized epsilon equality.

const eqEpsilon = 1e-9

func eqDistScale() ch.Scale {
	s := ch.SmallScale(3)
	s.Customers = 30
	s.Orders = 40
	s.Items = 60
	return s
}

// --- comparison helpers (mirrors internal/ch/equivalence_test.go) ---

func cellsClose(a, b types.Datum) bool {
	if a.Kind == types.Float && b.Kind == types.Float {
		x, y := a.Float(), b.Float()
		return math.Abs(x-y) <= eqEpsilon*math.Max(1, math.Max(math.Abs(x), math.Abs(y)))
	}
	return a.Equal(b)
}

func rowsClose(a, b []types.Row) (int, int, bool) {
	if len(a) != len(b) {
		return -1, -1, false
	}
	for i := range a {
		if len(a[i]) != len(b[i]) {
			return i, -1, false
		}
		for c := range a[i] {
			if !cellsClose(a[i][c], b[i][c]) {
				return i, c, false
			}
		}
	}
	return 0, 0, true
}

func exactEqual(a, b []types.Row) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if len(a[i]) != len(b[i]) {
			return false
		}
		for c := range a[i] {
			if !a[i][c].Equal(b[i][c]) {
				return false
			}
		}
	}
	return true
}

func normKey(r types.Row) string {
	var b strings.Builder
	for _, d := range r {
		if d.Kind == types.Float {
			fmt.Fprintf(&b, "|%.6e", d.Float())
		} else {
			fmt.Fprintf(&b, "|%v", d)
		}
	}
	return b.String()
}

func normalize(rows []types.Row) []types.Row {
	out := append([]types.Row(nil), rows...)
	sort.SliceStable(out, func(i, j int) bool { return normKey(out[i]) < normKey(out[j]) })
	return out
}

func runAll(t *testing.T, e core.Engine, par int) [][]types.Row {
	t.Helper()
	e.(core.Paralleler).SetParallelism(par)
	out := make([][]types.Row, 23)
	for q := 1; q <= 22; q++ {
		rows, err := ch.RunQuery(context.Background(), e, q)
		if err != nil {
			t.Fatalf("%s Q%02d at parallelism %d: %v", e.Name(), q, par, err)
		}
		out[q] = rows
	}
	return out
}

// eqConfigs builds a plain arch-A engine plus 1-, 2-, and 3-shard
// coordinators over arch-A shards, all loaded with the identical dataset.
func eqConfigs(t *testing.T) map[string]core.Engine {
	t.Helper()
	plain := core.NewEngineA(core.ConfigA{Schemas: ch.Schemas()})
	if _, err := ch.NewGenerator(eqDistScale()).Load(plain); err != nil {
		t.Fatalf("load plain: %v", err)
	}
	plain.Sync()
	cfgs := map[string]core.Engine{"plain-A": plain}
	for _, n := range []int{1, 2, 3} {
		engines := make([]core.Engine, n)
		for i := range engines {
			engines[i] = core.NewEngineA(core.ConfigA{Schemas: ch.Schemas()})
		}
		d, err := New(3, engines...)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := ch.NewGenerator(eqDistScale()).Load(d); err != nil {
			t.Fatalf("load %d-shard: %v", n, err)
		}
		d.Sync()
		cfgs[fmt.Sprintf("dist-%dx", n)] = d
	}
	t.Cleanup(func() {
		for _, e := range cfgs {
			e.Close()
		}
	})
	return cfgs
}

// TestDistGoldenEquivalence is the headline gate for the tentpole: the
// coordinator must be invisible to query results at every shard count.
func TestDistGoldenEquivalence(t *testing.T) {
	cfgs := eqConfigs(t)
	names := []string{"plain-A", "dist-1x", "dist-2x", "dist-3x"}

	// DOP 1: bit-identical across a plain engine and every shard count.
	golden := runAll(t, cfgs["plain-A"], 1)
	for _, name := range names[1:] {
		got := runAll(t, cfgs[name], 1)
		for q := 1; q <= 22; q++ {
			if !exactEqual(golden[q], got[q]) {
				i, c, _ := rowsClose(golden[q], got[q])
				t.Errorf("Q%02d: %s diverges from plain-A at DOP 1 (row %d col %d)", q, name, i, c)
			}
		}
	}

	// DOP N: repeat runs bit-identical per configuration; DOP 1 vs N agree
	// to the float epsilon.
	for _, name := range names {
		parA := runAll(t, cfgs[name], 4)
		parB := runAll(t, cfgs[name], 4)
		seq := runAll(t, cfgs[name], 1)
		for q := 1; q <= 22; q++ {
			if !exactEqual(parA[q], parB[q]) {
				t.Errorf("Q%02d: %s DOP 4 repeat runs diverge", q, name)
			}
			if i, c, ok := rowsClose(seq[q], parA[q]); !ok {
				t.Errorf("Q%02d: %s DOP 1 vs 4 diverge (row %d col %d)", q, name, i, c)
			}
		}
	}
}

// TestDistPushdownDifferential is the combine-correctness gate for
// partial-aggregate and top-k pushdown: every CH query must produce
// bit-identical results with pushdown enabled (partial states combined
// at the coordinator) and disabled (raw rows gathered and aggregated
// centrally), at every shard count and at sequential and parallel DOP.
// Exact summation (internal/exec exactSum) is what makes this bit-exact
// rather than epsilon-close: per-shard partial sums and the central sum
// round to float64 exactly once, from the same exact value.
func TestDistPushdownDifferential(t *testing.T) {
	cfgs := eqConfigs(t)
	for _, n := range []int{1, 2, 3} {
		name := fmt.Sprintf("dist-%dx", n)
		d := cfgs[name].(*Engine)
		for _, par := range []int{1, 4} {
			d.SetPushdown(true)
			pushed := runAll(t, d, par)
			d.SetPushdown(false)
			gathered := runAll(t, d, par)
			d.SetPushdown(true)
			for q := 1; q <= 22; q++ {
				if !exactEqual(pushed[q], gathered[q]) {
					i, c, _ := rowsClose(pushed[q], gathered[q])
					t.Errorf("Q%02d: %s DOP %d pushed vs gathered diverge (row %d col %d)", q, name, par, i, c)
				}
			}
		}
	}
}

// TestDistPushdownReducesMergeRows pins the point of the tentpole: on a
// decomposable wide GROUP BY (Q1), pushing partial aggregation must cut
// the coordinator's merged-row volume by at least 10× — shards send a
// handful of group states instead of every order line.
func TestDistPushdownReducesMergeRows(t *testing.T) {
	engines := make([]core.Engine, 3)
	for i := range engines {
		engines[i] = core.NewEngineA(core.ConfigA{Schemas: ch.Schemas()})
	}
	d, err := New(3, engines...)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	if _, err := ch.NewGenerator(eqDistScale()).Load(d); err != nil {
		t.Fatal(err)
	}
	d.Sync()

	run := func() (mergedRows, groups, pushes int64) {
		m0, g0, p0 := mergeRowsTotal.Value(), partialGroups.Value(), partialPushdowns.Value()
		if _, err := ch.RunQuery(context.Background(), d, 1); err != nil {
			t.Fatal(err)
		}
		return mergeRowsTotal.Value() - m0, partialGroups.Value() - g0, partialPushdowns.Value() - p0
	}

	d.SetPushdown(false)
	rawRows, _, rawPushes := run()
	d.SetPushdown(true)
	pushedRows, groups, pushes := run()

	if rawPushes != 0 {
		t.Fatalf("pushdown fired %d times while disabled", rawPushes)
	}
	if pushes == 0 {
		t.Fatal("Q1 did not push its aggregation; the differential gate would be vacuous")
	}
	if groups == 0 {
		t.Fatal("pushed Q1 merged no partial groups")
	}
	merged := pushedRows + groups // rows gathered by other pipelines + group states
	if merged*10 > rawRows {
		t.Fatalf("pushdown merged %d rows+groups vs %d raw rows; want >=10x reduction", merged, rawRows)
	}
}

// TestDistGoldenEquivalenceArchC covers the hash-sharded IMCS arch: scan
// order differs between a plain EngineC and sharded EngineCs (each shard
// hashes its own key subset), so equality is order-normalized with the
// float epsilon.
func TestDistGoldenEquivalenceArchC(t *testing.T) {
	loadCols := func(e *core.EngineC) {
		for _, sch := range ch.Schemas() {
			cols := make([]string, len(sch.Cols))
			for i, c := range sch.Cols {
				cols[i] = c.Name
			}
			e.LoadColumns(sch.Name, cols)
		}
	}
	newC := func() *core.EngineC {
		// SelFeedbackOff for the same reason as the single-engine suite:
		// feedback accumulated during the run must not flip access paths
		// between repeats.
		return core.NewEngineC(core.ConfigC{
			Schemas: ch.Schemas(), Shards: 2, Disk: disk.MemConfig(), SelFeedbackOff: true,
		})
	}

	plain := newC()
	if _, err := ch.NewGenerator(eqDistScale()).Load(plain); err != nil {
		t.Fatal(err)
	}
	loadCols(plain)
	plain.Sync()
	defer plain.Close()

	engines := make([]core.Engine, 3)
	for i := range engines {
		engines[i] = newC()
	}
	d, err := New(3, engines...)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ch.NewGenerator(eqDistScale()).Load(d); err != nil {
		t.Fatal(err)
	}
	for _, e := range engines {
		loadCols(e.(*core.EngineC))
	}
	d.Sync()
	defer d.Close()

	want := runAll(t, plain, 2)
	got := runAll(t, d, 2)
	for q := 1; q <= 22; q++ {
		if i, c, ok := rowsClose(normalize(want[q]), normalize(got[q])); !ok {
			t.Errorf("Q%02d: dist-3x arch C diverges from plain C normalized (row %d col %d)", q, i, c)
		}
	}
}
