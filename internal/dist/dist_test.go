package dist

import (
	"context"
	"math/rand"
	"testing"

	"htap/internal/ch"
	"htap/internal/core"
	"htap/internal/types"
)

func distScale(warehouses int) ch.Scale {
	s := ch.SmallScale(warehouses)
	s.Customers = 20
	s.Orders = 20
	s.Items = 50
	return s
}

// newDistA builds a coordinator over n in-process arch-A shards loaded
// with the full dataset (routed), returning the coordinator and the shard
// engines for white-box placement checks.
func newDistA(t *testing.T, warehouses, n int) (*Engine, []core.Engine) {
	t.Helper()
	engines := make([]core.Engine, n)
	for i := range engines {
		engines[i] = core.NewEngineA(core.ConfigA{Schemas: ch.Schemas()})
	}
	d, err := New(warehouses, engines...)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ch.NewGenerator(distScale(warehouses)).Load(d); err != nil {
		t.Fatalf("load: %v", err)
	}
	d.Sync()
	return d, engines
}

func countOn(e core.Engine, table string) int {
	return e.Query(context.Background(), table, nil, nil).Count()
}

// TestLoadRoutesByWarehouse checks placement after a routed bulk load:
// facts partition by warehouse range, dimensions replicate everywhere.
func TestLoadRoutesByWarehouse(t *testing.T) {
	d, shards := newDistA(t, 3, 3)
	defer d.Close()
	for i, e := range shards {
		if got := countOn(e, ch.TWarehouse); got != 1 {
			t.Fatalf("shard %d: %d warehouses, want 1", i, got)
		}
		items := countOn(e, ch.TItem)
		if items != distScale(3).Items {
			t.Fatalf("shard %d: %d items, want replicated %d", i, items, distScale(3).Items)
		}
		if countOn(e, ch.TStock) != distScale(3).Items {
			t.Fatalf("shard %d: stock not partitioned per warehouse", i)
		}
	}
	// The coordinator's own scan sees every shard's rows exactly once.
	if got, want := countOn(d, ch.TWarehouse), 3; got != want {
		t.Fatalf("coordinator sees %d warehouses, want %d", got, want)
	}
	if got, want := countOn(d, ch.TItem), distScale(3).Items; got != want {
		t.Fatalf("coordinator sees %d items, want %d (replicated tables must scan one shard)", got, want)
	}
}

// TestSingleShardTxnCommitsDirectly pins the routed fast path: a
// transaction confined to one warehouse opens one branch and bumps the
// routed counter, not the cross-shard one.
func TestSingleShardTxnCommitsDirectly(t *testing.T) {
	d, _ := newDistA(t, 3, 3)
	defer d.Close()
	ctx := context.Background()
	routed0, cross0 := routedTxns.Value(), crossShardTxns.Value()

	tx := d.Begin(ctx)
	row, err := tx.Get(ch.TDistrict, ch.DistrictKey(2, 1))
	if err != nil {
		t.Fatal(err)
	}
	up := row.Clone()
	up[6] = types.NewInt(row[6].Int() + 1)
	if err := tx.Update(ch.TDistrict, up); err != nil {
		t.Fatal(err)
	}
	// A dimension read must stay on the already-open shard.
	if _, err := tx.Get(ch.TItem, ch.ItemKey(1)); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if got := routedTxns.Value() - routed0; got != 1 {
		t.Fatalf("routed counter moved by %d, want 1", got)
	}
	if got := crossShardTxns.Value() - cross0; got != 0 {
		t.Fatalf("cross-shard counter moved by %d, want 0", got)
	}
}

// TestCrossShardTxnAtomic drives a Payment-shaped transaction across two
// shards — home warehouse YTD on one, remote customer balance on another
// — and checks both effects are visible after commit, with the
// cross-shard counter bumped.
func TestCrossShardTxnAtomic(t *testing.T) {
	d, _ := newDistA(t, 3, 3)
	defer d.Close()
	ctx := context.Background()
	cross0 := crossShardTxns.Value()

	homeKey, custKey := ch.WarehouseKey(1), ch.CustomerKey(3, 1, 5)
	tx := d.Begin(ctx)
	wrow, err := tx.Get(ch.TWarehouse, homeKey)
	if err != nil {
		t.Fatal(err)
	}
	nw := wrow.Clone()
	nw[5] = types.NewFloat(wrow[5].Float() + 100)
	if err := tx.Update(ch.TWarehouse, nw); err != nil {
		t.Fatal(err)
	}
	crow, err := tx.Get(ch.TCustomer, custKey)
	if err != nil {
		t.Fatal(err)
	}
	nc := crow.Clone()
	nc[7] = types.NewFloat(crow[7].Float() - 100)
	if err := tx.Update(ch.TCustomer, nc); err != nil {
		t.Fatal(err)
	}
	// History rows route by their h_w_id column, not their global key.
	if err := tx.Insert(ch.THistory, types.Row{
		types.NewInt(ch.NextHistoryKey()), types.NewInt(custKey), types.NewInt(1),
		types.NewInt(1), types.NewInt(0), types.NewFloat(100), types.NewString("remote-pay"),
	}); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatalf("cross-shard commit: %v", err)
	}
	if got := crossShardTxns.Value() - cross0; got != 1 {
		t.Fatalf("cross-shard counter moved by %d, want 1", got)
	}

	check := d.Begin(ctx)
	defer check.Abort()
	w2, err := check.Get(ch.TWarehouse, homeKey)
	if err != nil {
		t.Fatal(err)
	}
	if w2[5].Float() != wrow[5].Float()+100 {
		t.Fatalf("warehouse ytd %v, want %v", w2[5].Float(), wrow[5].Float()+100)
	}
	c2, err := check.Get(ch.TCustomer, custKey)
	if err != nil {
		t.Fatal(err)
	}
	if c2[7].Float() != crow[7].Float()-100 {
		t.Fatalf("customer balance %v, want %v", c2[7].Float(), crow[7].Float()-100)
	}
}

// TestCrossShardAbortLeavesNothing aborts a multi-branch transaction and
// verifies neither shard published its write.
func TestCrossShardAbortLeavesNothing(t *testing.T) {
	d, _ := newDistA(t, 3, 3)
	defer d.Close()
	ctx := context.Background()

	before := d.Begin(ctx)
	w1, _ := before.Get(ch.TWarehouse, ch.WarehouseKey(1))
	w3, _ := before.Get(ch.TWarehouse, ch.WarehouseKey(3))
	before.Abort()

	tx := d.Begin(ctx)
	for _, wk := range []int64{1, 3} {
		row, err := tx.Get(ch.TWarehouse, ch.WarehouseKey(wk))
		if err != nil {
			t.Fatal(err)
		}
		up := row.Clone()
		up[5] = types.NewFloat(row[5].Float() + 999)
		if err := tx.Update(ch.TWarehouse, up); err != nil {
			t.Fatal(err)
		}
	}
	tx.Abort()

	after := d.Begin(ctx)
	defer after.Abort()
	a1, _ := after.Get(ch.TWarehouse, ch.WarehouseKey(1))
	a3, _ := after.Get(ch.TWarehouse, ch.WarehouseKey(3))
	if a1[5].Float() != w1[5].Float() || a3[5].Float() != w3[5].Float() {
		t.Fatal("aborted cross-shard transaction leaked a write")
	}
}

// TestReplicatedWriteBroadcasts inserts a dimension row through the
// coordinator and checks every shard's copy.
func TestReplicatedWriteBroadcasts(t *testing.T) {
	d, shards := newDistA(t, 3, 3)
	defer d.Close()
	ctx := context.Background()
	key := int64(90_001)
	tx := d.Begin(ctx)
	if err := tx.Insert(ch.TItem, types.Row{
		types.NewInt(ch.ItemKey(key)), types.NewInt(key), types.NewInt(1),
		types.NewString("item-broadcast"), types.NewFloat(1.5), types.NewString("data"),
	}); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	for i, e := range shards {
		stx := e.Begin(ctx)
		if _, err := stx.Get(ch.TItem, ch.ItemKey(key)); err != nil {
			t.Fatalf("shard %d missing broadcast item: %v", i, err)
		}
		stx.Abort()
	}
}

// TestHistoryInsertRoutesByColumn pins history placement on the shard
// owning its h_w_id warehouse.
func TestHistoryInsertRoutesByColumn(t *testing.T) {
	d, shards := newDistA(t, 3, 3)
	defer d.Close()
	ctx := context.Background()
	before := countOn(shards[2], ch.THistory)
	tx := d.Begin(ctx)
	if err := tx.Insert(ch.THistory, types.Row{
		types.NewInt(ch.NextHistoryKey()), types.NewInt(ch.CustomerKey(3, 1, 1)), types.NewInt(3),
		types.NewInt(1), types.NewInt(0), types.NewFloat(1), types.NewString("h"),
	}); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	shards[2].Sync()
	if got := countOn(shards[2], ch.THistory); got != before+1 {
		t.Fatalf("history row not on shard 2 (have %d, want %d)", got, before+1)
	}
}

// TestDriverMixOverCoordinator runs the standard TPC-C mix through the
// unchanged ch.Driver against a 3-shard coordinator: every transaction
// must complete, remote order lines and remote payments must produce
// cross-shard commits, and the CH queries must run against the written
// state.
func TestDriverMixOverCoordinator(t *testing.T) {
	d, _ := newDistA(t, 3, 3)
	defer d.Close()
	ctx := context.Background()
	routed0, cross0 := routedTxns.Value(), crossShardTxns.Value()
	scatter0, merged0 := scatterFragments.Value(), mergeRowsTotal.Value()

	drv := ch.NewDriver(d, distScale(3))
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 400; i++ {
		if err := drv.RunOne(ctx, rng); err != nil {
			t.Fatalf("txn %d: %v", i, err)
		}
	}
	if routedTxns.Value() == routed0 {
		t.Fatal("no routed transactions recorded")
	}
	if crossShardTxns.Value() == cross0 {
		t.Fatal("no cross-shard transactions recorded: remote lines/payments never crossed")
	}
	d.Sync()
	for q := 1; q <= 22; q++ {
		if _, err := ch.RunQuery(ctx, d, q); err != nil {
			t.Fatalf("Q%02d: %v", q, err)
		}
	}
	if scatterFragments.Value() == scatter0 {
		t.Fatal("scatter fan-out counter never moved")
	}
	if mergeRowsTotal.Value() == merged0 {
		t.Fatal("merge row counter never moved")
	}
}
