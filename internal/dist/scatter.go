package dist

import (
	"context"
	"fmt"

	"htap/internal/client"
	"htap/internal/core"
	"htap/internal/exec"
	"htap/internal/types"
)

// fragRef pairs a remote fragment with its shard name, so Query can wire
// both the plan's error sink and the endpoint health report.
type fragRef struct {
	shard string
	src   *client.FragmentSource
}

// scatter builds the gather source for one table scan: a union of
// per-shard sources in shard (= warehouse) order, wrapped in the merge
// counter. Local shards contribute their engine's own analytical source;
// remote shards contribute a lazy fragment whose unsent window lets
// Plan.Filter push predicates into the frame. Replicated tables live on
// every shard, so only shard 0 scans — anything else would duplicate rows.
func (d *Engine) scatter(ctx context.Context, table string, cols []string, pred *exec.ScanPred) (exec.Source, []fragRef) {
	sch := d.byName[table]
	if sch == nil {
		return exec.NewUnion(), nil // carries the construction error
	}
	shards := d.shards
	if replicated(table) {
		shards = shards[:1]
	}
	proj := projectedSchema(sch, cols)
	srcs := make([]exec.Source, len(shards))
	var frags []fragRef
	for i, s := range shards {
		if s.local != nil {
			srcs[i] = s.local.Source(ctx, table, cols, pred)
			continue
		}
		fs := s.remote.Fragment(ctx, table, proj, pred)
		srcs[i] = fs
		frags = append(frags, fragRef{shard: s.name, src: fs})
	}
	scatterFragments.Add(int64(len(srcs)))
	return &mergeCount{inner: exec.NewUnion(srcs...), d: d}, frags
}

// projectedSchema resolves the scan's output schema from the catalog;
// unknown columns pass through as Int so the binder (which validates
// names itself) reports them, not a panic here.
func projectedSchema(sch *types.Schema, cols []string) []types.Column {
	if cols == nil {
		return sch.Cols
	}
	out := make([]types.Column, len(cols))
	for i, c := range cols {
		out[i] = types.Column{Name: c, Type: types.Int}
		if j := sch.ColIndex(c); j >= 0 {
			out[i] = sch.Cols[j]
		}
	}
	return out
}

// mergeCount is the coordinator's gather point: an order-preserving
// pass-through (exec.PassThrough) over the shard union that counts the
// rows merged back from shards. Being a PassThrough keeps the pushdown
// rewrite flowing into the union's children — and from there into local
// column scans or remote fragment frames — and splitting for parallel
// merge delegates to the union's part-ordered Split, each part keeping
// the count.
type mergeCount struct {
	inner exec.Source
	d     *Engine // for the pushdown switch; nil on Split parts
}

// Schema implements exec.Source.
func (m *mergeCount) Schema() []types.Column { return m.inner.Schema() }

// Next implements exec.Source.
func (m *mergeCount) Next() *exec.Batch {
	b := m.inner.Next()
	if b != nil {
		mergeRowsTotal.Add(int64(b.N))
	}
	return b
}

// InnerSource implements exec.PassThrough.
func (m *mergeCount) InnerSource() exec.Source { return m.inner }

// SetInnerSource implements exec.PassThrough.
func (m *mergeCount) SetInnerSource(s exec.Source) { m.inner = s }

// PushAgg implements exec.AggPusher: Plan.Agg offers the aggregation
// when this gather point is its direct input — i.e. every filter fused
// into the shard scans and nothing else in between. Acceptance is
// all-or-none across shards: local members aggregate in-process
// (exec.NewPartialAgg over the member source, arbitrary expressions);
// remote members ship the spec in their fragment frame, which restricts
// them to bare-column aggregates — if any remote member can't carry the
// spec, the whole offer is declined and the plan gathers raw rows.
func (m *mergeCount) PushAgg(groupBy []string, aggs []exec.Agg, par int, ctx context.Context) []exec.PartialSource {
	if m.d == nil || !m.d.pushdown.Load() {
		return nil
	}
	members := exec.UnionMembers(m.inner)
	if members == nil {
		return nil
	}
	for _, s := range members {
		if fs, ok := s.(*client.FragmentSource); ok {
			if !fs.CanPushAgg(groupBy, aggs) {
				return nil
			}
		}
	}
	out := make([]exec.PartialSource, len(members))
	for i, s := range members {
		if fs, ok := s.(*client.FragmentSource); ok {
			ps := fs.PushAgg(groupBy, aggs)
			if ps == nil {
				return nil
			}
			out[i] = &countingPartial{inner: ps}
			continue
		}
		out[i] = &countingPartial{inner: exec.NewPartialAgg(s, groupBy, aggs, par, ctx)}
	}
	partialPushdowns.Inc()
	return out
}

// countingPartial counts groups merged at the coordinator — the pushed
// plans' analogue of mergeRowsTotal, kept as a separate series so the
// merge-row reduction stays visible.
type countingPartial struct {
	inner exec.PartialSource
}

func (c *countingPartial) NextPartial() *exec.PartialGroup {
	g := c.inner.NextPartial()
	if g != nil {
		partialGroups.Inc()
	}
	return g
}

// PushTopK implements exec.TopKPusher: bound each shard member to the k
// smallest rows under keys before gathering. Local members wrap in the
// executor's own top-k operator; remote members ship the spec in their
// fragment frame (their reply stays a batch stream, now at most k
// rows). The plan keeps its final top-k over the union, so declining
// half-way (any remote member refusing) just declines the whole offer.
func (m *mergeCount) PushTopK(k int, keys []exec.SortKey) bool {
	if m.d == nil || !m.d.pushdown.Load() {
		return false
	}
	members := exec.UnionMembers(m.inner)
	if members == nil {
		return false
	}
	for _, s := range members {
		if fs, ok := s.(*client.FragmentSource); ok {
			if !fs.CanPushTopK(keys) {
				return false
			}
		}
	}
	wrapped := make([]exec.Source, len(members))
	for i, s := range members {
		if fs, ok := s.(*client.FragmentSource); ok {
			if !fs.PushTopK(k, keys) {
				return false
			}
			wrapped[i] = fs
			continue
		}
		wrapped[i] = exec.NewTopK(s, k, keys)
	}
	m.inner = exec.NewUnion(wrapped...)
	topkPushdowns.Inc()
	return true
}

// Split implements exec.Splitter by delegating to the inner union; parts
// concatenate in shard order, preserving the sequential row order.
func (m *mergeCount) Split(n int) []exec.Source {
	sp, ok := m.inner.(exec.Splitter)
	if !ok {
		return nil
	}
	parts := sp.Split(n)
	if parts == nil {
		return nil
	}
	out := make([]exec.Source, len(parts))
	for i, p := range parts {
		out[i] = &mergeCount{inner: p}
	}
	return out
}

// PartitionLoad wraps a shard server's engine so a full deterministic
// generator pass loads only that shard's slice: rows owned by warehouses
// in [its range] plus every replicated dimension row. Running the same
// generator on every shard keeps derived global state — notably the
// history-key allocator — identical across shard processes, so the
// coordinator's handshake watermark is consistent no matter which shard
// reports it.
func PartitionLoad(e core.Engine, warehouses, index, count int) (core.Engine, error) {
	rt, err := newRouter(warehouses, count)
	if err != nil {
		return nil, err
	}
	if index < 0 || index >= count {
		return nil, fmt.Errorf("dist: shard index %d out of range [0,%d)", index, count)
	}
	return &loadFilter{Engine: e, rt: rt, idx: index}, nil
}

type loadFilter struct {
	core.Engine
	rt  router
	idx int
}

// Load keeps replicated rows and rows whose warehouse falls in this
// shard's range; everything else is silently skipped (another shard owns
// it).
func (f *loadFilter) Load(table string, row types.Row) error {
	if replicated(table) {
		return f.Engine.Load(table, row)
	}
	sch := f.Engine.Schema(table)
	if sch == nil {
		return fmt.Errorf("dist: no schema for %s", table)
	}
	w, ok := rowWarehouse(table, sch.Key(row), row)
	if !ok {
		return fmt.Errorf("dist: cannot route %s row", table)
	}
	if f.rt.shardOf(w) != f.idx {
		return nil
	}
	return f.Engine.Load(table, row)
}
