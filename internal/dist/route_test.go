package dist

import (
	"context"
	"errors"
	"math/rand"
	"testing"

	"htap/internal/ch"
	"htap/internal/core"
	"htap/internal/types"
)

// TestWarehouseOfKeyMatchesPacking cross-checks the routing divisors
// against the ch packing functions for a spread of coordinates, including
// the cardinality maxima the packing reserves.
func TestWarehouseOfKeyMatchesPacking(t *testing.T) {
	for _, w := range []int64{1, 2, 7, 99, 4096} {
		cases := []struct {
			table string
			key   int64
		}{
			{ch.TWarehouse, ch.WarehouseKey(w)},
			{ch.TDistrict, ch.DistrictKey(w, 1)},
			{ch.TDistrict, ch.DistrictKey(w, 99)},
			{ch.TCustomer, ch.CustomerKey(w, 1, 1)},
			{ch.TCustomer, ch.CustomerKey(w, 99, 99_999)},
			{ch.TOrders, ch.OrderKey(w, 1, 1)},
			{ch.TOrders, ch.OrderKey(w, 99, 9_999_999)},
			{ch.TNewOrder, ch.OrderKey(w, 10, 42)},
			{ch.TOrderLine, ch.OrderLineKey(w, 1, 1, 1)},
			{ch.TOrderLine, ch.OrderLineKey(w, 99, 9_999_999, 15)},
			{ch.TStock, ch.StockKey(w, 1)},
			{ch.TStock, ch.StockKey(w, 999_999)},
		}
		for _, c := range cases {
			got, ok := warehouseOfKey(c.table, c.key)
			if !ok || got != w {
				t.Fatalf("warehouseOfKey(%s, %d) = %d, %v; want %d", c.table, c.key, got, ok, w)
			}
		}
	}
	for _, table := range []string{ch.TItem, ch.TSupplier, ch.TNation, ch.TRegion, ch.THistory} {
		if _, ok := warehouseOfKey(table, 1); ok {
			t.Fatalf("%s should not route by key", table)
		}
	}
}

// TestHistoryRoutesByRow pins history's placement: the key is a global
// sequence, the h_w_id column decides the shard.
func TestHistoryRoutesByRow(t *testing.T) {
	row := types.Row{
		types.NewInt(12345), types.NewInt(ch.CustomerKey(7, 3, 11)), types.NewInt(7),
		types.NewInt(3), types.NewInt(0), types.NewFloat(10), types.NewString("x"),
	}
	w, ok := rowWarehouse(ch.THistory, 12345, row)
	if !ok || w != 7 {
		t.Fatalf("rowWarehouse(history) = %d, %v; want 7", w, ok)
	}
}

// TestRouterRanges asserts the contiguous balanced partition: ranges
// cover [1, W] without gaps, sizes differ by at most one, and shardOf
// inverts rangeOf.
func TestRouterRanges(t *testing.T) {
	for _, tc := range []struct{ w, s int }{
		{1, 1}, {2, 1}, {3, 3}, {4, 3}, {5, 2}, {7, 3}, {10, 4}, {100, 7},
	} {
		rt, err := newRouter(tc.w, tc.s)
		if err != nil {
			t.Fatalf("newRouter(%d,%d): %v", tc.w, tc.s, err)
		}
		next := int64(1)
		for i := 0; i < tc.s; i++ {
			lo, hi := rt.rangeOf(i)
			if lo != next {
				t.Fatalf("w=%d s=%d shard %d: range starts at %d, want %d", tc.w, tc.s, i, lo, next)
			}
			size := hi - lo + 1
			if size < int64(tc.w/tc.s) || size > int64(tc.w/tc.s)+1 {
				t.Fatalf("w=%d s=%d shard %d: unbalanced size %d", tc.w, tc.s, i, size)
			}
			for w := lo; w <= hi; w++ {
				if got := rt.shardOf(w); got != i {
					t.Fatalf("w=%d s=%d: shardOf(%d) = %d, want %d", tc.w, tc.s, w, got, i)
				}
			}
			next = hi + 1
		}
		if next != int64(tc.w)+1 {
			t.Fatalf("w=%d s=%d: ranges cover up to %d, want %d", tc.w, tc.s, next-1, tc.w)
		}
		if rt.shardOf(0) != 0 || rt.shardOf(int64(tc.w)+5) != tc.s-1 {
			t.Fatalf("w=%d s=%d: out-of-range warehouses must clamp", tc.w, tc.s)
		}
	}
	if _, err := newRouter(2, 3); err == nil {
		t.Fatal("more shards than warehouses should be rejected")
	}
}

// TestRouteTableProperties drives the versioned table through random
// move sequences and asserts the routing invariants rebalancing relies
// on:
//
//   - total: every warehouse always has an owner in [0, shards)
//   - stable: shardOf is deterministic for a given version
//   - minimal: a move changes ownership exactly inside [lo, hi]
//   - monotone: each move bumps the version by one
func TestRouteTableProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for iter := 0; iter < 50; iter++ {
		warehouses := 1 + rng.Intn(40)
		shards := 1 + rng.Intn(5)
		if shards > warehouses {
			shards = warehouses
		}
		rt, err := newRouter(warehouses, shards)
		if err != nil {
			t.Fatal(err)
		}
		tab := newRouteTable(rt)
		if tab.version != 1 {
			t.Fatalf("fresh table version = %d, want 1", tab.version)
		}
		for step := 0; step < 8; step++ {
			lo := 1 + rng.Intn(warehouses)
			hi := lo + rng.Intn(warehouses-lo+1)
			dest := rng.Intn(shards)
			next := tab.moved(lo, hi, dest)

			if next.version != tab.version+1 {
				t.Fatalf("moved version = %d, want %d", next.version, tab.version+1)
			}
			for w := 1; w <= warehouses; w++ {
				own := next.shardOf(int64(w))
				if own < 0 || own >= shards {
					t.Fatalf("warehouse %d unowned after move: shard %d of %d", w, own, shards)
				}
				if own != next.shardOf(int64(w)) {
					t.Fatalf("shardOf(%d) unstable within one version", w)
				}
				switch {
				case w >= lo && w <= hi:
					if own != dest {
						t.Fatalf("moved warehouse %d owned by %d, want %d", w, own, dest)
					}
				default:
					if own != tab.shardOf(int64(w)) {
						t.Fatalf("move [%d,%d]->%d perturbed warehouse %d: %d -> %d",
							lo, hi, dest, w, tab.shardOf(int64(w)), own)
					}
				}
			}
			tab = next
		}
	}
}

// TestRouteRowsToExactlyOneOwner is the round-trip property: a routable
// row of every partitioned table reaches exactly one shard — the one
// its warehouse owns — under both key routing and row routing.
func TestRouteRowsToExactlyOneOwner(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	const warehouses, shards = 9, 3
	rt, err := newRouter(warehouses, shards)
	if err != nil {
		t.Fatal(err)
	}
	tab := newRouteTable(rt)
	for iter := 0; iter < 200; iter++ {
		w := 1 + rng.Int63n(warehouses)
		d := 1 + rng.Int63n(10)
		c := 1 + rng.Int63n(3000)
		keys := map[string]int64{
			ch.TWarehouse: ch.WarehouseKey(w),
			ch.TDistrict:  ch.DistrictKey(w, d),
			ch.TCustomer:  ch.CustomerKey(w, d, c),
			ch.TOrders:    ch.OrderKey(w, d, c),
			ch.TNewOrder:  ch.OrderKey(w, d, c),
			ch.TOrderLine: ch.OrderLineKey(w, d, c, 1+rng.Int63n(15)),
			ch.TStock:     ch.StockKey(w, 1+rng.Int63n(100_000)),
		}
		want := tab.shardOf(w)
		for table, key := range keys {
			got, ok := warehouseOfKey(table, key)
			if !ok {
				t.Fatalf("%s key %d does not route", table, key)
			}
			owners := 0
			for s := 0; s < shards; s++ {
				if tab.shardOf(got) == s {
					owners++
				}
			}
			if owners != 1 || tab.shardOf(got) != want {
				t.Fatalf("%s key %d: %d owners, shard %d, want exactly shard %d",
					table, key, owners, tab.shardOf(got), want)
			}
		}
	}
}

// TestReplicatedBroadcastInvariant pins the replicated-dimension
// invariant the scatter plan relies on (only shard 0 scans them): a
// replicated write through the coordinator lands on EVERY shard, and a
// partitioned write lands on exactly its owner.
func TestReplicatedBroadcastInvariant(t *testing.T) {
	engines := make([]core.Engine, 3)
	for i := range engines {
		engines[i] = core.NewEngineA(core.ConfigA{Schemas: ch.Schemas()})
	}
	d, err := New(6, engines...)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()

	itemKey := int64(77)
	item := types.Row{
		types.NewInt(itemKey), types.NewInt(itemKey), types.NewInt(1),
		types.NewString("widget"), types.NewFloat(9.99), types.NewString("data"),
	}
	tx := d.Begin(context.Background())
	if err := tx.Insert(ch.TItem, item); err != nil {
		t.Fatal(err)
	}
	wk := ch.WarehouseKey(5)
	wh := types.Row{
		types.NewInt(wk), types.NewInt(5), types.NewString("w5"),
		types.NewString("st"), types.NewFloat(0.1), types.NewFloat(300000),
	}
	if err := tx.Insert(ch.TWarehouse, wh); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	d.Sync()

	owner := d.rtab.Load().shardOf(5)
	for i, e := range engines {
		etx := e.Begin(context.Background())
		if _, err := etx.Get(ch.TItem, itemKey); err != nil {
			t.Errorf("shard %d missing replicated item row: %v", i, err)
		}
		_, err := etx.Get(ch.TWarehouse, wk)
		if i == owner && err != nil {
			t.Errorf("owner shard %d missing warehouse row: %v", i, err)
		}
		if i != owner && !errors.Is(err, core.ErrNotFound) {
			t.Errorf("non-owner shard %d: warehouse get = %v, want not-found", i, err)
		}
		etx.Abort()
	}
}
