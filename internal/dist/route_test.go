package dist

import (
	"testing"

	"htap/internal/ch"
	"htap/internal/types"
)

// TestWarehouseOfKeyMatchesPacking cross-checks the routing divisors
// against the ch packing functions for a spread of coordinates, including
// the cardinality maxima the packing reserves.
func TestWarehouseOfKeyMatchesPacking(t *testing.T) {
	for _, w := range []int64{1, 2, 7, 99, 4096} {
		cases := []struct {
			table string
			key   int64
		}{
			{ch.TWarehouse, ch.WarehouseKey(w)},
			{ch.TDistrict, ch.DistrictKey(w, 1)},
			{ch.TDistrict, ch.DistrictKey(w, 99)},
			{ch.TCustomer, ch.CustomerKey(w, 1, 1)},
			{ch.TCustomer, ch.CustomerKey(w, 99, 99_999)},
			{ch.TOrders, ch.OrderKey(w, 1, 1)},
			{ch.TOrders, ch.OrderKey(w, 99, 9_999_999)},
			{ch.TNewOrder, ch.OrderKey(w, 10, 42)},
			{ch.TOrderLine, ch.OrderLineKey(w, 1, 1, 1)},
			{ch.TOrderLine, ch.OrderLineKey(w, 99, 9_999_999, 15)},
			{ch.TStock, ch.StockKey(w, 1)},
			{ch.TStock, ch.StockKey(w, 999_999)},
		}
		for _, c := range cases {
			got, ok := warehouseOfKey(c.table, c.key)
			if !ok || got != w {
				t.Fatalf("warehouseOfKey(%s, %d) = %d, %v; want %d", c.table, c.key, got, ok, w)
			}
		}
	}
	for _, table := range []string{ch.TItem, ch.TSupplier, ch.TNation, ch.TRegion, ch.THistory} {
		if _, ok := warehouseOfKey(table, 1); ok {
			t.Fatalf("%s should not route by key", table)
		}
	}
}

// TestHistoryRoutesByRow pins history's placement: the key is a global
// sequence, the h_w_id column decides the shard.
func TestHistoryRoutesByRow(t *testing.T) {
	row := types.Row{
		types.NewInt(12345), types.NewInt(ch.CustomerKey(7, 3, 11)), types.NewInt(7),
		types.NewInt(3), types.NewInt(0), types.NewFloat(10), types.NewString("x"),
	}
	w, ok := rowWarehouse(ch.THistory, 12345, row)
	if !ok || w != 7 {
		t.Fatalf("rowWarehouse(history) = %d, %v; want 7", w, ok)
	}
}

// TestRouterRanges asserts the contiguous balanced partition: ranges
// cover [1, W] without gaps, sizes differ by at most one, and shardOf
// inverts rangeOf.
func TestRouterRanges(t *testing.T) {
	for _, tc := range []struct{ w, s int }{
		{1, 1}, {2, 1}, {3, 3}, {4, 3}, {5, 2}, {7, 3}, {10, 4}, {100, 7},
	} {
		rt, err := newRouter(tc.w, tc.s)
		if err != nil {
			t.Fatalf("newRouter(%d,%d): %v", tc.w, tc.s, err)
		}
		next := int64(1)
		for i := 0; i < tc.s; i++ {
			lo, hi := rt.rangeOf(i)
			if lo != next {
				t.Fatalf("w=%d s=%d shard %d: range starts at %d, want %d", tc.w, tc.s, i, lo, next)
			}
			size := hi - lo + 1
			if size < int64(tc.w/tc.s) || size > int64(tc.w/tc.s)+1 {
				t.Fatalf("w=%d s=%d shard %d: unbalanced size %d", tc.w, tc.s, i, size)
			}
			for w := lo; w <= hi; w++ {
				if got := rt.shardOf(w); got != i {
					t.Fatalf("w=%d s=%d: shardOf(%d) = %d, want %d", tc.w, tc.s, w, got, i)
				}
			}
			next = hi + 1
		}
		if next != int64(tc.w)+1 {
			t.Fatalf("w=%d s=%d: ranges cover up to %d, want %d", tc.w, tc.s, next-1, tc.w)
		}
		if rt.shardOf(0) != 0 || rt.shardOf(int64(tc.w)+5) != tc.s-1 {
			t.Fatalf("w=%d s=%d: out-of-range warehouses must clamp", tc.w, tc.s)
		}
	}
	if _, err := newRouter(2, 3); err == nil {
		t.Fatal("more shards than warehouses should be rejected")
	}
}
