package raft

import (
	"math/rand"
	"sync"
	"time"

	"htap/internal/obs"
)

// Transport observability: deliveries held back by simulated latency and
// messages the loss model discarded.
var (
	mDelayedSends = obs.Default.Counter("htap_raft_delayed_sends_total", nil)
	mDroppedMsgs  = obs.Default.Counter("htap_raft_dropped_messages_total", nil)
)

// Network is an in-process transport connecting the nodes of one Raft
// group. It substitutes for a real wire (DESIGN.md "Substitutions"):
// messages are delivered asynchronously with configurable latency and loss,
// which is enough to exercise elections, retries and learner lag.
type Network struct {
	mu       sync.RWMutex
	nodes    map[int]*Node
	latency  time.Duration
	dropRate float64
	rng      *rand.Rand
	rngMu    sync.Mutex
	isolated map[int]bool

	// Delayed deliveries share one FIFO queue drained by a single worker
	// goroutine instead of one goroutine per message: a chatty group under
	// latency used to fan out thousands of sleeping goroutines, and
	// per-message goroutines also reordered same-link messages at random.
	qMu      sync.Mutex
	queue    []delayed
	draining bool
}

// delayed is one in-flight message waiting out its latency.
type delayed struct {
	due time.Time
	dst *Node
	msg Message
}

// NewNetwork returns an empty network.
func NewNetwork(latency time.Duration, dropRate float64) *Network {
	return &Network{
		nodes:    make(map[int]*Node),
		latency:  latency,
		dropRate: dropRate,
		rng:      rand.New(rand.NewSource(42)),
		isolated: make(map[int]bool),
	}
}

// Register attaches a node to the network.
func (nw *Network) Register(n *Node) {
	nw.mu.Lock()
	nw.nodes[n.cfg.ID] = n
	nw.mu.Unlock()
}

// Isolate cuts a node off (both directions); pass false to heal.
func (nw *Network) Isolate(id int, cut bool) {
	nw.mu.Lock()
	nw.isolated[id] = cut
	nw.mu.Unlock()
}

// Send implements Transport.
func (nw *Network) Send(msg Message) {
	nw.mu.RLock()
	dst := nw.nodes[msg.To]
	cut := nw.isolated[msg.From] || nw.isolated[msg.To]
	nw.mu.RUnlock()
	if dst == nil || cut {
		return
	}
	if nw.dropRate > 0 {
		nw.rngMu.Lock()
		drop := nw.rng.Float64() < nw.dropRate
		nw.rngMu.Unlock()
		if drop {
			mDroppedMsgs.Inc()
			return
		}
	}
	if nw.latency > 0 {
		nw.enqueue(dst, msg)
		return
	}
	dst.Step(msg)
}

// enqueue schedules msg for delivery after the network latency, starting the
// drain worker if one is not already running. All messages share the same
// latency, so FIFO order is due order and the queue preserves per-link
// ordering.
func (nw *Network) enqueue(dst *Node, msg Message) {
	mDelayedSends.Inc()
	nw.qMu.Lock()
	nw.queue = append(nw.queue, delayed{due: time.Now().Add(nw.latency), dst: dst, msg: msg})
	start := !nw.draining
	nw.draining = true
	nw.qMu.Unlock()
	if start {
		go nw.drain()
	}
}

// drain delivers queued messages in order, sleeping until each is due, and
// exits when the queue empties.
func (nw *Network) drain() {
	for {
		nw.qMu.Lock()
		if len(nw.queue) == 0 {
			nw.draining = false
			nw.qMu.Unlock()
			return
		}
		d := nw.queue[0]
		nw.queue = nw.queue[1:]
		nw.qMu.Unlock()
		if wait := time.Until(d.due); wait > 0 {
			time.Sleep(wait)
		}
		d.dst.Step(d.msg)
	}
}

// Group is a convenience bundle: a network plus its nodes, used by tests
// and by the distributed engine.
type Group struct {
	Net   *Network
	Nodes map[int]*Node
}

// NewLocalGroup builds and starts a Raft group with voter IDs 0..voters-1
// and learner IDs voters..voters+learners-1. apply receives committed
// entries per node.
func NewLocalGroup(voters, learners int, latency time.Duration, apply func(nodeID int, e Entry)) *Group {
	return NewLocalGroupWith(voters, learners, latency, Config{}, apply)
}

// NewLocalGroupWith is NewLocalGroup with a configuration template: the
// template's timing and compaction knobs apply to every node.
func NewLocalGroupWith(voters, learners int, latency time.Duration, tmpl Config, apply func(nodeID int, e Entry)) *Group {
	nw := NewNetwork(latency, 0)
	var voterIDs, learnerIDs []int
	for i := 0; i < voters; i++ {
		voterIDs = append(voterIDs, i)
	}
	for i := voters; i < voters+learners; i++ {
		learnerIDs = append(learnerIDs, i)
	}
	g := &Group{Net: nw, Nodes: make(map[int]*Node)}
	for _, id := range append(append([]int{}, voterIDs...), learnerIDs...) {
		id := id
		cfg := tmpl
		cfg.ID = id
		cfg.Voters = voterIDs
		cfg.Learners = learnerIDs
		cfg.Transport = nw
		if cfg.ProposeTimeout == 0 {
			cfg.ProposeTimeout = 500 * time.Millisecond
		}
		if apply != nil {
			cfg.Apply = func(e Entry) { apply(id, e) }
		}
		n := NewNode(cfg)
		nw.Register(n)
		g.Nodes[id] = n
	}
	for _, n := range g.Nodes {
		n.Start()
	}
	return g
}

// WaitLeader blocks until some voter is leader, returning it.
func (g *Group) WaitLeader(timeout time.Duration) *Node {
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		for _, n := range g.Nodes {
			if n.IsLeader() {
				return n
			}
		}
		time.Sleep(2 * time.Millisecond)
	}
	return nil
}

// Leader returns the current leader, or nil. After a partition heals there
// can briefly be two claimants; the higher term is the real leader.
func (g *Group) Leader() *Node {
	var best *Node
	var bestTerm uint64
	for _, n := range g.Nodes {
		if st := n.Status(); st.Role == Leader && st.Term >= bestTerm {
			best, bestTerm = n, st.Term
		}
	}
	return best
}

// Stop shuts down every node.
func (g *Group) Stop() {
	for _, n := range g.Nodes {
		n.Stop()
	}
}
