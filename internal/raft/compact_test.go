package raft

import (
	"fmt"
	"testing"
	"time"
)

// compactGroup builds a group with compaction enabled.
func compactGroup(voters, learners, every int, rec *applyRecorder) *Group {
	nw := NewNetwork(0, 0)
	var voterIDs, learnerIDs []int
	for i := 0; i < voters; i++ {
		voterIDs = append(voterIDs, i)
	}
	for i := voters; i < voters+learners; i++ {
		learnerIDs = append(learnerIDs, i)
	}
	g := &Group{Net: nw, Nodes: make(map[int]*Node)}
	for _, id := range append(append([]int{}, voterIDs...), learnerIDs...) {
		id := id
		cfg := Config{
			ID: id, Voters: voterIDs, Learners: learnerIDs, Transport: nw,
			ProposeTimeout: 500 * time.Millisecond, CompactEvery: every,
		}
		if rec != nil {
			cfg.Apply = func(e Entry) { rec.apply(id, e) }
		}
		n := NewNode(cfg)
		nw.Register(n)
		g.Nodes[id] = n
		n.Start()
	}
	return g
}

func TestCompactionBoundsLog(t *testing.T) {
	rec := newRecorder()
	g := compactGroup(3, 1, 16, rec)
	defer g.Stop()
	l := g.WaitLeader(3 * time.Second)
	if l == nil {
		t.Fatal("no leader")
	}
	const total = 200
	for i := 0; i < total; i++ {
		if _, err := l.Propose(Command(fmt.Sprintf("c%d", i))); err != nil {
			t.Fatalf("propose %d: %v", i, err)
		}
	}
	for id := 0; id < 4; id++ {
		if !rec.waitLen(id, total, 5*time.Second) {
			t.Fatalf("node %d applied %d", id, len(rec.get(id)))
		}
	}
	// Give heartbeats a moment to spread the compaction bound.
	deadline := time.Now().Add(3 * time.Second)
	for time.Now().Before(deadline) {
		if st := l.Status(); st.LogLen < total/2 && st.LogStart > 0 {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	st := l.Status()
	if st.LogStart == 0 || st.LogLen >= total {
		t.Fatalf("leader never compacted: %+v", st)
	}
	// Order and completeness survive compaction.
	got := rec.get(0)
	for i := 0; i < total; i++ {
		if got[i] != fmt.Sprintf("c%d", i) {
			t.Fatalf("entry %d = %q", i, got[i])
		}
	}
	// New proposals still commit after compaction.
	if _, err := l.Propose(Command("after-compact")); err != nil {
		t.Fatalf("post-compaction propose: %v", err)
	}
}

func TestCompactionPinnedByLaggingPeer(t *testing.T) {
	rec := newRecorder()
	g := compactGroup(3, 1, 8, rec)
	defer g.Stop()
	l := g.WaitLeader(3 * time.Second)
	if l == nil {
		t.Fatal("no leader")
	}
	// Cut the learner off: its matchIndex pins the log.
	g.Net.Isolate(3, true)
	for i := 0; i < 50; i++ {
		if _, err := l.Propose(Command(fmt.Sprintf("p%d", i))); err != nil {
			t.Fatalf("propose: %v", err)
		}
	}
	if st := l.Status(); st.LogStart > 0 {
		t.Fatalf("compacted past an isolated peer: %+v", st)
	}
	// Heal: the learner catches up from the retained log, then compaction
	// proceeds.
	g.Net.Isolate(3, false)
	if !rec.waitLen(3, 50, 5*time.Second) {
		t.Fatalf("learner caught up only to %d", len(rec.get(3)))
	}
	deadline := time.Now().Add(3 * time.Second)
	for time.Now().Before(deadline) {
		if l.Status().LogStart > 0 {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("log never compacted after heal: %+v", l.Status())
}

func TestCompactionDisabledByDefault(t *testing.T) {
	rec := newRecorder()
	g := NewLocalGroup(1, 0, 0, rec.apply)
	defer g.Stop()
	l := g.WaitLeader(3 * time.Second)
	for i := 0; i < 40; i++ {
		if _, err := l.Propose(Command("x")); err != nil {
			t.Fatal(err)
		}
	}
	if st := l.Status(); st.LogStart != 0 || st.LogLen != 40 {
		t.Fatalf("log compacted without being asked: %+v", st)
	}
}
