// Package raft implements the Raft consensus protocol: randomized leader
// election, log replication, quorum commit — and learner (non-voting)
// replicas, which are the key to architecture B.
//
// TiDB's HTAP design (paper §2.1(b), §2.2(1)) replicates the Raft log from
// the leader to followers holding row-store replicas, and also ships it to
// learner nodes that apply the same log into columnar replicas: "The logs
// are also sent to learner nodes that store the data in columnar format."
// Learners receive AppendEntries and apply committed commands but neither
// vote nor count toward the commit quorum, so analytical replicas can lag
// without stalling transactions — high isolation, reduced freshness,
// exactly the trade-off Table 1 records for this architecture.
//
// Scope: logs are in-memory (engines journal payloads in their own WAL),
// and membership is fixed at construction. Snapshots and log compaction are
// out of scope for bounded benchmark runs.
package raft

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"htap/internal/obs"
)

// Process-wide Raft observability (htap_raft_*). Every node in every group
// shares these series: experiments run one group at a time, and what the
// scrape answers is "how much consensus work is this process doing".
var (
	mProposals    = obs.Default.Counter("htap_raft_proposals_total", nil)
	mProposalErrs = obs.Default.Counter("htap_raft_proposal_failures_total", nil)
	mElections    = obs.Default.Counter("htap_raft_elections_total", nil)
)

// Command is an opaque state-machine command.
type Command []byte

// Entry is one replicated log entry. Index is 1-based.
type Entry struct {
	Term  uint64
	Index uint64
	Cmd   Command
}

// Role is a node's current role.
type Role uint8

// Node roles. Learners never leave RoleLearner.
const (
	Follower Role = iota + 1
	Candidate
	Leader
	RoleLearner
)

func (r Role) String() string {
	return [...]string{"?", "follower", "candidate", "leader", "learner"}[r]
}

// MsgType discriminates protocol messages.
type MsgType uint8

// Protocol messages.
const (
	MsgVoteReq MsgType = iota + 1
	MsgVoteResp
	MsgAppendReq
	MsgAppendResp
)

// Message is a Raft RPC. A single struct covers all four message kinds.
type Message struct {
	Type MsgType
	From int
	To   int
	Term uint64

	// Vote request/response.
	LastLogIndex uint64
	LastLogTerm  uint64
	Granted      bool

	// Append request/response.
	PrevLogIndex uint64
	PrevLogTerm  uint64
	Entries      []Entry
	LeaderCommit uint64
	Success      bool
	MatchIndex   uint64
	// CompactBelow tells followers which prefix every replica already
	// holds, so they may truncate it too.
	CompactBelow uint64
}

// Transport delivers messages between nodes. Send must not block
// indefinitely; best-effort delivery is sufficient (Raft tolerates loss).
type Transport interface {
	Send(msg Message)
}

// Config configures a node.
type Config struct {
	ID       int
	Voters   []int // including self when the node votes
	Learners []int
	Transport
	// Apply is invoked, in log order, for every committed entry, on voters
	// and learners alike. It runs on the node's apply goroutine.
	Apply func(Entry)

	HeartbeatInterval  time.Duration
	ElectionTimeoutMin time.Duration
	ElectionTimeoutMax time.Duration
	// ProposeTimeout bounds how long Propose waits for commit+apply. A
	// deposed-but-unaware leader would otherwise block proposals forever.
	// Commands must therefore be idempotent under retry; every command in
	// this repository is (row upserts carry their commit timestamp, and the
	// 2PC state machine tolerates duplicate prepare/commit/abort).
	ProposeTimeout time.Duration
	// CompactEvery truncates the in-memory log once more than this many
	// applied entries are held AND every peer (learners included) has
	// matched them. Zero disables compaction. Entries are only dropped
	// when no replica can still need them, so no snapshot transfer is
	// required; a long-partitioned peer simply pins the log.
	CompactEvery int
}

func (c *Config) defaults() {
	if c.HeartbeatInterval == 0 {
		c.HeartbeatInterval = 10 * time.Millisecond
	}
	if c.ElectionTimeoutMin == 0 {
		c.ElectionTimeoutMin = 60 * time.Millisecond
	}
	if c.ElectionTimeoutMax == 0 {
		c.ElectionTimeoutMax = 120 * time.Millisecond
	}
	if c.ProposeTimeout == 0 {
		c.ProposeTimeout = 2 * time.Second
	}
}

// ErrNotLeader is returned by Propose on a non-leader.
var ErrNotLeader = errors.New("raft: not leader")

// ErrStopped is returned when the node has shut down.
var ErrStopped = errors.New("raft: stopped")

// ErrTimeout is returned when a proposal does not commit within the
// configured ProposeTimeout (typically because this replica lost
// leadership without learning it).
var ErrTimeout = errors.New("raft: proposal timed out")

type proposal struct {
	cmd   Command
	reply chan proposeResult
}

type proposeResult struct {
	index uint64
	term  uint64
	err   error
}

type waiter struct {
	term uint64
	ch   chan error
}

// Node is one Raft participant.
type Node struct {
	cfg     Config
	learner bool

	mu          sync.Mutex
	role        Role
	term        uint64
	votedFor    int
	log         []Entry // log[0] is a sentinel at index logStart
	logStart    uint64  // index of the compacted prefix boundary
	commitIndex uint64
	applied     uint64
	leaderHint  int
	votes       map[int]bool
	nextIndex   map[int]uint64
	matchIndex  map[int]uint64
	waiters     map[uint64]waiter
	electionDue time.Time

	inbox    chan Message
	proposes chan proposal
	applyC   chan struct{}
	stopC    chan struct{}
	done     sync.WaitGroup
	rng      *rand.Rand
}

// NewNode constructs a node; call Start to run it.
func NewNode(cfg Config) *Node {
	cfg.defaults()
	n := &Node{
		cfg:        cfg,
		role:       Follower,
		votedFor:   -1,
		log:        make([]Entry, 1),
		waiters:    make(map[uint64]waiter),
		inbox:      make(chan Message, 1024),
		proposes:   make(chan proposal, 256),
		applyC:     make(chan struct{}, 1),
		stopC:      make(chan struct{}),
		rng:        rand.New(rand.NewSource(int64(cfg.ID)*7919 + time.Now().UnixNano())),
		leaderHint: -1,
	}
	for _, l := range cfg.Learners {
		if l == cfg.ID {
			n.learner = true
			n.role = RoleLearner
		}
	}
	return n
}

// Start launches the node's event and apply loops.
func (n *Node) Start() {
	n.mu.Lock()
	n.resetElectionTimer()
	n.mu.Unlock()
	n.done.Add(2)
	go n.run()
	go n.applyLoop()
}

// Stop terminates the node.
func (n *Node) Stop() {
	close(n.stopC)
	n.done.Wait()
}

// Step delivers a message to the node (called by the transport).
func (n *Node) Step(msg Message) {
	select {
	case n.inbox <- msg:
	case <-n.stopC:
	}
}

// Propose submits a command; it returns once the command is committed and
// applied, or fails with ErrNotLeader / ErrStopped.
func (n *Node) Propose(cmd Command) (uint64, error) {
	mProposals.Inc()
	p := proposal{cmd: cmd, reply: make(chan proposeResult, 1)}
	select {
	case n.proposes <- p:
	case <-n.stopC:
		mProposalErrs.Inc()
		return 0, ErrStopped
	}
	var res proposeResult
	select {
	case res = <-p.reply:
	case <-n.stopC:
		mProposalErrs.Inc()
		return 0, ErrStopped
	}
	if res.err != nil {
		mProposalErrs.Inc()
	}
	return res.index, res.err
}

// IsLeader reports whether the node currently believes it is leader.
func (n *Node) IsLeader() bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.role == Leader
}

// Status summarizes the node state for tests and monitoring.
type Status struct {
	ID          int
	Role        Role
	Term        uint64
	CommitIndex uint64
	Applied     uint64
	LogLen      int    // entries physically held (after compaction)
	LogStart    uint64 // compacted prefix boundary
}

// Status returns a snapshot of node state.
func (n *Node) Status() Status {
	n.mu.Lock()
	defer n.mu.Unlock()
	return Status{
		ID: n.cfg.ID, Role: n.role, Term: n.term,
		CommitIndex: n.commitIndex, Applied: n.applied,
		LogLen: len(n.log) - 1, LogStart: n.logStart,
	}
}

func (n *Node) resetElectionTimer() {
	span := n.cfg.ElectionTimeoutMax - n.cfg.ElectionTimeoutMin
	d := n.cfg.ElectionTimeoutMin + time.Duration(n.rng.Int63n(int64(span)+1))
	n.electionDue = time.Now().Add(d)
}

func (n *Node) lastLog() (uint64, uint64) {
	e := n.log[len(n.log)-1]
	return e.Index, e.Term
}

// entryAt returns the entry with logical index i (i > logStart).
func (n *Node) entryAt(i uint64) Entry { return n.log[i-n.logStart] }

// termAt returns the term of logical index i (valid for i >= logStart;
// the sentinel carries the compacted boundary's term).
func (n *Node) termAt(i uint64) uint64 { return n.log[i-n.logStart].Term }

// holds reports whether logical index i is still in the log (sentinel
// included).
func (n *Node) holds(i uint64) bool {
	return i >= n.logStart && i-n.logStart < uint64(len(n.log))
}

// compactToLocked drops entries at or below idx, keeping a sentinel.
func (n *Node) compactToLocked(idx uint64) {
	if idx <= n.logStart {
		return
	}
	last, _ := n.lastLog()
	if idx > last {
		idx = last
	}
	cut := idx - n.logStart
	rest := n.log[cut:] // rest[0] becomes the new sentinel
	nl := make([]Entry, len(rest))
	copy(nl, rest)
	nl[0].Cmd = nil // the sentinel carries only (Index, Term)
	n.log = nl
	n.logStart = idx
}

// maybeCompactLocked truncates the applied prefix once it exceeds the
// configured bound and every peer has replicated it. Followers compact to
// the leader-advertised safe bound instead (see handleAppendReqLocked).
func (n *Node) maybeCompactLocked() {
	if n.cfg.CompactEvery <= 0 || n.role != Leader {
		return
	}
	if n.applied <= n.logStart || n.applied-n.logStart < uint64(n.cfg.CompactEvery) {
		return
	}
	safe := n.applied
	for _, id := range n.peers() {
		if m := n.matchIndex[id]; m < safe {
			safe = m
		}
	}
	n.compactToLocked(safe)
}

func (n *Node) quorum() int { return len(n.cfg.Voters)/2 + 1 }

// peers returns every other node, voters and learners alike.
func (n *Node) peers() []int {
	out := make([]int, 0, len(n.cfg.Voters)+len(n.cfg.Learners))
	for _, id := range n.cfg.Voters {
		if id != n.cfg.ID {
			out = append(out, id)
		}
	}
	for _, id := range n.cfg.Learners {
		if id != n.cfg.ID {
			out = append(out, id)
		}
	}
	return out
}

func (n *Node) run() {
	defer n.done.Done()
	ticker := time.NewTicker(n.cfg.HeartbeatInterval / 2)
	defer ticker.Stop()
	for {
		select {
		case <-n.stopC:
			n.failAllWaiters(ErrStopped)
			return
		case msg := <-n.inbox:
			n.handle(msg)
		case p := <-n.proposes:
			n.handlePropose(p)
		case <-ticker.C:
			n.tick()
		}
	}
}

func (n *Node) tick() {
	n.mu.Lock()
	defer n.mu.Unlock()
	switch n.role {
	case Leader:
		n.maybeCompactLocked() // peers may have caught up since the last apply
		n.broadcastAppendLocked()
	case Follower, Candidate:
		if time.Now().After(n.electionDue) {
			n.startElectionLocked()
		}
	}
}

func (n *Node) startElectionLocked() {
	mElections.Inc()
	n.role = Candidate
	n.term++
	n.votedFor = n.cfg.ID
	n.votes = map[int]bool{n.cfg.ID: true}
	n.resetElectionTimer()
	lastIdx, lastTerm := n.lastLog()
	for _, id := range n.cfg.Voters {
		if id == n.cfg.ID {
			continue
		}
		n.cfg.Send(Message{
			Type: MsgVoteReq, From: n.cfg.ID, To: id, Term: n.term,
			LastLogIndex: lastIdx, LastLogTerm: lastTerm,
		})
	}
	if len(n.cfg.Voters) == 1 {
		n.becomeLeaderLocked()
	}
}

func (n *Node) becomeLeaderLocked() {
	n.role = Leader
	n.leaderHint = n.cfg.ID
	n.nextIndex = make(map[int]uint64)
	n.matchIndex = make(map[int]uint64)
	lastIdx, _ := n.lastLog()
	for _, id := range n.peers() {
		n.nextIndex[id] = lastIdx + 1
		n.matchIndex[id] = 0
	}
	n.broadcastAppendLocked()
}

func (n *Node) stepDownLocked(term uint64) {
	if term > n.term {
		n.term = term
		n.votedFor = -1
	}
	if !n.learner {
		n.role = Follower
	}
	n.resetElectionTimer()
}

func (n *Node) handle(msg Message) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if msg.Term > n.term {
		n.stepDownLocked(msg.Term)
	}
	switch msg.Type {
	case MsgVoteReq:
		n.handleVoteReqLocked(msg)
	case MsgVoteResp:
		n.handleVoteRespLocked(msg)
	case MsgAppendReq:
		n.handleAppendReqLocked(msg)
	case MsgAppendResp:
		n.handleAppendRespLocked(msg)
	}
}

func (n *Node) handleVoteReqLocked(msg Message) {
	granted := false
	if !n.learner && msg.Term >= n.term && (n.votedFor == -1 || n.votedFor == msg.From) {
		lastIdx, lastTerm := n.lastLog()
		upToDate := msg.LastLogTerm > lastTerm ||
			(msg.LastLogTerm == lastTerm && msg.LastLogIndex >= lastIdx)
		if upToDate {
			granted = true
			n.votedFor = msg.From
			n.resetElectionTimer()
		}
	}
	n.cfg.Send(Message{Type: MsgVoteResp, From: n.cfg.ID, To: msg.From, Term: n.term, Granted: granted})
}

func (n *Node) handleVoteRespLocked(msg Message) {
	if n.role != Candidate || msg.Term != n.term || !msg.Granted {
		return
	}
	n.votes[msg.From] = true
	if len(n.votes) >= n.quorum() {
		n.becomeLeaderLocked()
	}
}

func (n *Node) handleAppendReqLocked(msg Message) {
	resp := Message{Type: MsgAppendResp, From: n.cfg.ID, To: msg.From, Term: n.term}
	if msg.Term < n.term {
		n.cfg.Send(resp)
		return
	}
	// Valid leader for this term.
	if !n.learner {
		n.role = Follower
	}
	n.leaderHint = msg.From
	n.resetElectionTimer()

	// Log-matching check. A PrevLogIndex below our compacted prefix can
	// only reference committed entries we already hold; acknowledge them.
	if msg.PrevLogIndex < n.logStart {
		resp.Success = true
		resp.MatchIndex = n.logStart
		n.cfg.Send(resp)
		return
	}
	if msg.PrevLogIndex > 0 {
		if !n.holds(msg.PrevLogIndex) || n.termAt(msg.PrevLogIndex) != msg.PrevLogTerm {
			n.cfg.Send(resp) // Success=false; leader will back off
			return
		}
	}
	// Append, truncating conflicts.
	for _, e := range msg.Entries {
		if e.Index <= n.logStart {
			continue // already compacted, therefore committed and matching
		}
		if n.holds(e.Index) {
			if n.termAt(e.Index) != e.Term {
				n.log = n.log[:e.Index-n.logStart]
				n.log = append(n.log, e)
			}
		} else {
			n.log = append(n.log, e)
		}
	}
	if msg.CompactBelow > 0 {
		bound := msg.CompactBelow
		if bound > n.applied {
			bound = n.applied
		}
		n.compactToLocked(bound)
	}
	lastNew := msg.PrevLogIndex + uint64(len(msg.Entries))
	if msg.LeaderCommit > n.commitIndex {
		ci := msg.LeaderCommit
		if lastNew < ci {
			ci = lastNew
		}
		if ci > n.commitIndex {
			n.commitIndex = ci
			n.kickApply()
		}
	}
	resp.Success = true
	resp.MatchIndex = lastNew
	n.cfg.Send(resp)
}

func (n *Node) handleAppendRespLocked(msg Message) {
	if n.role != Leader || msg.Term != n.term {
		return
	}
	if msg.Success {
		if msg.MatchIndex > n.matchIndex[msg.From] {
			n.matchIndex[msg.From] = msg.MatchIndex
			n.nextIndex[msg.From] = msg.MatchIndex + 1
			n.advanceCommitLocked()
		}
		return
	}
	// Back off and retry.
	if n.nextIndex[msg.From] > 1 {
		n.nextIndex[msg.From]--
	}
	n.sendAppendLocked(msg.From)
}

// advanceCommitLocked commits the highest index replicated on a quorum of
// voters in the current term. Learners never count.
func (n *Node) advanceCommitLocked() {
	lastIdx, _ := n.lastLog()
	for idx := lastIdx; idx > n.commitIndex; idx-- {
		if n.termAt(idx) != n.term {
			break // only current-term entries commit by counting (Raft §5.4.2)
		}
		count := 1 // self
		for _, id := range n.cfg.Voters {
			if id != n.cfg.ID && n.matchIndex[id] >= idx {
				count++
			}
		}
		if count >= n.quorum() {
			n.commitIndex = idx
			n.kickApply()
			break
		}
	}
}

func (n *Node) sendAppendLocked(to int) {
	next := n.nextIndex[to]
	if next <= n.logStart {
		next = n.logStart + 1
	}
	prevIdx := next - 1
	var prevTerm uint64
	if n.holds(prevIdx) {
		prevTerm = n.termAt(prevIdx)
	}
	var entries []Entry
	last, _ := n.lastLog()
	if next <= last {
		entries = append(entries, n.log[next-n.logStart:]...)
	}
	var compactBelow uint64
	if n.cfg.CompactEvery > 0 && n.role == Leader {
		compactBelow = n.logStart
	}
	n.cfg.Send(Message{
		Type: MsgAppendReq, From: n.cfg.ID, To: to, Term: n.term,
		PrevLogIndex: prevIdx, PrevLogTerm: prevTerm,
		Entries: entries, LeaderCommit: n.commitIndex,
		CompactBelow: compactBelow,
	})
}

func (n *Node) broadcastAppendLocked() {
	for _, id := range n.peers() {
		n.sendAppendLocked(id)
	}
}

func (n *Node) handlePropose(p proposal) {
	n.mu.Lock()
	if n.role != Leader {
		n.mu.Unlock()
		p.reply <- proposeResult{err: fmt.Errorf("%w (hint: node %d)", ErrNotLeader, n.leaderHint)}
		return
	}
	lastIdx, _ := n.lastLog()
	e := Entry{Term: n.term, Index: lastIdx + 1, Cmd: p.cmd}
	n.log = append(n.log, e)
	n.waiters[e.Index] = waiter{term: e.Term, ch: make(chan error, 1)}
	w := n.waiters[e.Index]
	n.broadcastAppendLocked()
	if len(n.cfg.Voters) == 1 {
		n.commitIndex = e.Index
		n.kickApply()
	}
	n.mu.Unlock()
	// Wait for apply outside the lock, bounded by the propose timeout.
	timeout := n.cfg.ProposeTimeout
	go func() {
		timer := time.NewTimer(timeout)
		defer timer.Stop()
		select {
		case err := <-w.ch:
			p.reply <- proposeResult{index: e.Index, term: e.Term, err: err}
		case <-timer.C:
			p.reply <- proposeResult{index: e.Index, term: e.Term, err: ErrTimeout}
		}
	}()
}

func (n *Node) failAllWaiters(err error) {
	n.mu.Lock()
	for idx, w := range n.waiters {
		w.ch <- err
		delete(n.waiters, idx)
	}
	n.mu.Unlock()
}

func (n *Node) kickApply() {
	select {
	case n.applyC <- struct{}{}:
	default:
	}
}

func (n *Node) applyLoop() {
	defer n.done.Done()
	for {
		select {
		case <-n.stopC:
			return
		case <-n.applyC:
		}
		for {
			n.mu.Lock()
			if n.applied >= n.commitIndex {
				n.maybeCompactLocked()
				n.mu.Unlock()
				break
			}
			n.applied++
			e := n.entryAt(n.applied)
			w, hasWaiter := n.waiters[e.Index]
			if hasWaiter {
				delete(n.waiters, e.Index)
			}
			n.mu.Unlock()
			if n.cfg.Apply != nil {
				n.cfg.Apply(e)
			}
			if hasWaiter {
				if w.term == e.Term {
					w.ch <- nil
				} else {
					w.ch <- ErrNotLeader // entry was overwritten by a new leader
				}
			}
		}
	}
}
