package raft

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

// applyRecorder tracks applied entries per node.
type applyRecorder struct {
	mu   sync.Mutex
	byID map[int][]string
}

func newRecorder() *applyRecorder { return &applyRecorder{byID: make(map[int][]string)} }

func (r *applyRecorder) apply(id int, e Entry) {
	r.mu.Lock()
	r.byID[id] = append(r.byID[id], string(e.Cmd))
	r.mu.Unlock()
}

func (r *applyRecorder) get(id int) []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]string(nil), r.byID[id]...)
}

func (r *applyRecorder) waitLen(id, n int, timeout time.Duration) bool {
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if len(r.get(id)) >= n {
			return true
		}
		time.Sleep(2 * time.Millisecond)
	}
	return false
}

func TestElectsSingleLeader(t *testing.T) {
	g := NewLocalGroup(3, 0, 0, nil)
	defer g.Stop()
	if g.WaitLeader(3*time.Second) == nil {
		t.Fatal("no leader elected")
	}
	time.Sleep(50 * time.Millisecond)
	leaders := 0
	for _, n := range g.Nodes {
		if n.IsLeader() {
			leaders++
		}
	}
	if leaders != 1 {
		t.Fatalf("leaders = %d", leaders)
	}
}

func TestProposeReplicatesToAll(t *testing.T) {
	rec := newRecorder()
	g := NewLocalGroup(3, 0, 0, rec.apply)
	defer g.Stop()
	l := g.WaitLeader(3 * time.Second)
	if l == nil {
		t.Fatal("no leader")
	}
	for i := 0; i < 5; i++ {
		if _, err := l.Propose(Command(fmt.Sprintf("cmd%d", i))); err != nil {
			t.Fatalf("propose %d: %v", i, err)
		}
	}
	for id := 0; id < 3; id++ {
		if !rec.waitLen(id, 5, 3*time.Second) {
			t.Fatalf("node %d applied %v", id, rec.get(id))
		}
		got := rec.get(id)
		for i := 0; i < 5; i++ {
			if got[i] != fmt.Sprintf("cmd%d", i) {
				t.Fatalf("node %d order: %v", id, got)
			}
		}
	}
}

func TestProposeOnFollowerFails(t *testing.T) {
	g := NewLocalGroup(3, 0, 0, nil)
	defer g.Stop()
	l := g.WaitLeader(3 * time.Second)
	if l == nil {
		t.Fatal("no leader")
	}
	for _, n := range g.Nodes {
		if n == l {
			continue
		}
		if _, err := n.Propose(Command("x")); !errors.Is(err, ErrNotLeader) {
			t.Fatalf("follower propose: %v", err)
		}
		break
	}
}

func TestLearnerReceivesButDoesNotVote(t *testing.T) {
	rec := newRecorder()
	g := NewLocalGroup(3, 1, 0, rec.apply)
	defer g.Stop()
	l := g.WaitLeader(3 * time.Second)
	if l == nil {
		t.Fatal("no leader")
	}
	if _, err := l.Propose(Command("a")); err != nil {
		t.Fatal(err)
	}
	// Learner (id 3) applies the committed entry.
	if !rec.waitLen(3, 1, 3*time.Second) {
		t.Fatal("learner did not apply")
	}
	if st := g.Nodes[3].Status(); st.Role != RoleLearner {
		t.Fatalf("learner role = %v", st.Role)
	}
}

func TestCommitNotBlockedByLearnerLag(t *testing.T) {
	rec := newRecorder()
	g := NewLocalGroup(3, 1, 0, rec.apply)
	defer g.Stop()
	l := g.WaitLeader(3 * time.Second)
	if l == nil {
		t.Fatal("no leader")
	}
	// Cut the learner off entirely: proposals must still commit on the
	// voter quorum (this is the isolation property of architecture B).
	g.Net.Isolate(3, true)
	done := make(chan error, 1)
	go func() {
		_, err := l.Propose(Command("y"))
		done <- err
	}()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("propose with lagging learner: %v", err)
		}
	case <-time.After(3 * time.Second):
		t.Fatal("commit blocked by learner")
	}
	// Heal: the learner catches up.
	g.Net.Isolate(3, false)
	if !rec.waitLen(3, 1, 3*time.Second) {
		t.Fatal("learner never caught up")
	}
}

func TestLeaderFailover(t *testing.T) {
	rec := newRecorder()
	g := NewLocalGroup(3, 0, 0, rec.apply)
	defer g.Stop()
	l := g.WaitLeader(3 * time.Second)
	if l == nil {
		t.Fatal("no leader")
	}
	if _, err := l.Propose(Command("before")); err != nil {
		t.Fatal(err)
	}
	g.Net.Isolate(l.cfg.ID, true)
	// A new leader emerges among the remaining voters.
	var nl *Node
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		for _, n := range g.Nodes {
			if n != l && n.IsLeader() {
				nl = n
			}
		}
		if nl != nil {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if nl == nil {
		t.Fatal("no new leader after isolation")
	}
	if _, err := nl.Propose(Command("after")); err != nil {
		t.Fatalf("propose on new leader: %v", err)
	}
	// Heal the old leader; it must step down and converge on the same log.
	g.Net.Isolate(l.cfg.ID, false)
	if !rec.waitLen(l.cfg.ID, 2, 5*time.Second) {
		t.Fatalf("old leader log: %v", rec.get(l.cfg.ID))
	}
	got := rec.get(l.cfg.ID)
	if got[0] != "before" || got[1] != "after" {
		t.Fatalf("old leader applied %v", got)
	}
}

func TestSingleVoterCommitsImmediately(t *testing.T) {
	rec := newRecorder()
	g := NewLocalGroup(1, 1, 0, rec.apply)
	defer g.Stop()
	l := g.WaitLeader(3 * time.Second)
	if l == nil {
		t.Fatal("single voter did not become leader")
	}
	if _, err := l.Propose(Command("solo")); err != nil {
		t.Fatal(err)
	}
	if !rec.waitLen(0, 1, time.Second) {
		t.Fatal("not applied on voter")
	}
	if !rec.waitLen(1, 1, 3*time.Second) {
		t.Fatal("not applied on learner")
	}
}

func TestConvergenceUnderMessageLoss(t *testing.T) {
	if testing.Short() {
		t.Skip("lossy-network test is slow")
	}
	rec := newRecorder()
	nw := NewNetwork(0, 0.2)
	voterIDs := []int{0, 1, 2}
	g := &Group{Net: nw, Nodes: make(map[int]*Node)}
	for _, id := range voterIDs {
		id := id
		n := NewNode(Config{
			ID: id, Voters: voterIDs, Transport: nw,
			Apply: func(e Entry) { rec.apply(id, e) },
		})
		nw.Register(n)
		g.Nodes[id] = n
		n.Start()
	}
	defer g.Stop()

	committed := 0
	deadline := time.Now().Add(10 * time.Second)
	for committed < 10 && time.Now().Before(deadline) {
		l := g.Leader()
		if l == nil {
			time.Sleep(10 * time.Millisecond)
			continue
		}
		if _, err := l.Propose(Command(fmt.Sprintf("c%d", committed))); err == nil {
			committed++
		}
	}
	if committed < 10 {
		t.Fatalf("only %d commits under 20%% loss", committed)
	}
	for id := range g.Nodes {
		if !rec.waitLen(id, 10, 5*time.Second) {
			t.Fatalf("node %d applied only %d", id, len(rec.get(id)))
		}
	}
	// Logs must be identical prefixes.
	a, b, c := rec.get(0)[:10], rec.get(1)[:10], rec.get(2)[:10]
	for i := 0; i < 10; i++ {
		if a[i] != b[i] || a[i] != c[i] {
			t.Fatalf("divergent logs at %d: %q %q %q", i, a[i], b[i], c[i])
		}
	}
}
